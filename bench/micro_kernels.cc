/**
 * @file
 * Micro-benchmarks (google-benchmark) of the hot simulation kernels:
 * crossbar MVM, preprocessing sort, tile-meta extraction and the
 * node-level PageRank sweep. These track the *simulator's* own
 * performance, not the modelled hardware.
 */

#include <benchmark/benchmark.h>

#include <filesystem>
#include <sstream>

#include "common/random.hh"
#include "driver/driver.hh"
#include "driver/golden_cache.hh"
#include "graph/generator.hh"
#include "graph/preprocess.hh"
#include "graphr/engine/plan_cache.hh"
#include "graphr/node.hh"
#include "graphr/tile_meta.hh"
#include "rram/crossbar.hh"
#include "service/server.hh"
#include "store/plan_store.hh"

namespace
{

using namespace graphr;

void
BM_CrossbarMvm(benchmark::State &state)
{
    const auto dim = static_cast<std::uint32_t>(state.range(0));
    DeviceParams params;
    Crossbar cb(dim, params);
    Rng rng(1);
    for (std::uint32_t r = 0; r < dim; ++r)
        for (std::uint32_t c = 0; c < dim; ++c)
            cb.programValue(r, c,
                            FixedPoint::fromRaw(
                                static_cast<FixedPoint::Raw>(
                                    rng.below(65536)),
                                0));
    std::vector<FixedPoint::Raw> x(dim);
    for (auto &v : x)
        v = static_cast<FixedPoint::Raw>(rng.below(65536));
    for (auto _ : state) {
        benchmark::DoNotOptimize(cb.mvmRaw(x));
    }
    state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_CrossbarMvm)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void
BM_CrossbarMvmSparse(benchmark::State &state)
{
    // Dense-vs-sparse kernel cost: arg 1 is the number of occupied
    // wordlines of a 32x32 crossbar. Real power-law tiles leave most
    // rows empty, and the row-occupancy mask skips them outright —
    // the gap to the dense row is the per-MVM win.
    const auto dim = static_cast<std::uint32_t>(state.range(0));
    const auto occupied = static_cast<std::uint32_t>(state.range(1));
    DeviceParams params;
    Crossbar cb(dim, params);
    Rng rng(1);
    for (std::uint32_t r = 0; r < occupied; ++r) {
        // Spread occupied rows across the array.
        const std::uint32_t row = r * dim / std::max(occupied, 1u);
        for (std::uint32_t c = 0; c < dim; ++c)
            cb.programValue(row, c,
                            FixedPoint::fromRaw(
                                static_cast<FixedPoint::Raw>(
                                    1 + rng.below(65535)),
                                0));
    }
    std::vector<FixedPoint::Raw> x(dim);
    for (auto &v : x)
        v = static_cast<FixedPoint::Raw>(rng.below(65536));
    for (auto _ : state) {
        benchmark::DoNotOptimize(cb.mvmRaw(x));
    }
    state.SetItemsProcessed(state.iterations() * dim * dim);
    state.SetLabel(occupied == dim ? "dense"
                                   : std::to_string(occupied) + "/" +
                                         std::to_string(dim) + " rows");
}
BENCHMARK(BM_CrossbarMvmSparse)
    ->Args({32, 32})
    ->Args({32, 8})
    ->Args({32, 2})
    ->Args({32, 0});

void
BM_Preprocess(benchmark::State &state)
{
    const auto edges = static_cast<EdgeId>(state.range(0));
    const CooGraph g = makeRmat({.numVertices =
                                     static_cast<VertexId>(edges / 8),
                                 .numEdges = edges,
                                 .seed = 2});
    const GridPartition part(g.numVertices(), TilingParams{});
    for (auto _ : state) {
        OrderedEdgeList ordered(g, part);
        benchmark::DoNotOptimize(ordered.numNonEmptyTiles());
    }
    state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_Preprocess)->Arg(10000)->Arg(100000)->Arg(1000000);

void
BM_TileMeta(benchmark::State &state)
{
    const auto edges = static_cast<EdgeId>(state.range(0));
    const CooGraph g = makeRmat({.numVertices =
                                     static_cast<VertexId>(edges / 8),
                                 .numEdges = edges,
                                 .seed = 3});
    const GridPartition part(g.numVertices(), TilingParams{});
    const OrderedEdgeList ordered(g, part);
    for (auto _ : state) {
        TileMetaTable meta(ordered);
        benchmark::DoNotOptimize(meta.totalNnz());
    }
    state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_TileMeta)->Arg(10000)->Arg(100000);

void
BM_PlanPrepareCold(benchmark::State &state)
{
    // Cost of a cache miss: fingerprint + partition + O(E log E)
    // sort + tile-meta extraction.
    const auto edges = static_cast<EdgeId>(state.range(0));
    const CooGraph g = makeRmat({.numVertices =
                                     static_cast<VertexId>(edges / 8),
                                 .numEdges = edges,
                                 .seed = 5});
    const TilingParams tiling;
    for (auto _ : state) {
        PlanCache::instance().clear();
        benchmark::DoNotOptimize(PlanCache::instance().get(g, tiling));
    }
    state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_PlanPrepareCold)->Arg(10000)->Arg(100000)->Arg(1000000);

void
BM_PlanCacheHit(benchmark::State &state)
{
    // Cost of a cache hit: fingerprint + lookup. The gap to
    // BM_PlanPrepareCold is what every re-run/backend saves.
    const auto edges = static_cast<EdgeId>(state.range(0));
    const CooGraph g = makeRmat({.numVertices =
                                     static_cast<VertexId>(edges / 8),
                                 .numEdges = edges,
                                 .seed = 5});
    const TilingParams tiling;
    PlanCache::instance().get(g, tiling);
    for (auto _ : state) {
        benchmark::DoNotOptimize(PlanCache::instance().get(g, tiling));
    }
    state.SetItemsProcessed(state.iterations() * edges);
    PlanCache::instance().clear();
}
BENCHMARK(BM_PlanCacheHit)->Arg(10000)->Arg(100000)->Arg(1000000);

void
BM_PlanStoreColdVsWarm(benchmark::State &state)
{
    // The cold-start win of the on-disk preprocessing store: arg 1
    // selects a cold start (0: fingerprint + partition + O(E log E)
    // sort + meta extraction, i.e. what a storeless process pays) or
    // a warm start (1: validated artifact load through the store's
    // mmap/chunked path — no sort at all).
    const auto edges = static_cast<EdgeId>(state.range(0));
    const bool warm = state.range(1) != 0;
    const CooGraph g = makeRmat({.numVertices =
                                     static_cast<VertexId>(edges / 8),
                                 .numEdges = edges,
                                 .seed = 5});
    const TilingParams tiling;
    const std::uint64_t fingerprint = graphFingerprint(g);

    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "graphr_bench_plan_store")
            .string();
    std::filesystem::remove_all(dir);
    const PlanStore store(dir);
    store.save(TilePlan(g, tiling), tiling);

    for (auto _ : state) {
        if (warm) {
            benchmark::DoNotOptimize(store.load(fingerprint, tiling));
        } else {
            const TilePlan plan(g, tiling);
            benchmark::DoNotOptimize(plan.ordered.numNonEmptyTiles());
        }
    }
    state.SetItemsProcessed(state.iterations() * edges);
    state.SetLabel(warm ? "warm" : "cold");
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_PlanStoreColdVsWarm)
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({1000000, 0})
    ->Args({1000000, 1});

void
BM_FunctionalPageRank(benchmark::State &state)
{
    // Functional wall-clock, reprogram-per-sweep (arg 0) vs resident
    // weights (arg 1, ProgramCharging::kOnce programs each tile once
    // per run and replays the stored crossbar state afterwards).
    GraphRConfig cfg;
    cfg.tiling.crossbarDim = 8;
    cfg.tiling.crossbarsPerGe = 4;
    cfg.tiling.numGe = 4;
    cfg.functional = true;
    cfg.programCharging = state.range(0) != 0
                              ? ProgramCharging::kOnce
                              : ProgramCharging::kPerSweep;
    const CooGraph g = makeRmat(
        {.numVertices = 512, .numEdges = 4096, .seed = 6});
    GraphRNode node(cfg);
    PageRankParams params;
    params.maxIterations = 10;
    params.tolerance = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(node.runPageRank(g, params).seconds);
    }
    state.SetItemsProcessed(state.iterations() * g.numEdges() * 10);
    state.SetLabel(state.range(0) != 0 ? "resident" : "reprogram");
}
BENCHMARK(BM_FunctionalPageRank)->Arg(0)->Arg(1);

void
BM_NodePageRankSweep(benchmark::State &state)
{
    const auto edges = static_cast<EdgeId>(state.range(0));
    const CooGraph g = makeRmat({.numVertices =
                                     static_cast<VertexId>(edges / 8),
                                 .numEdges = edges,
                                 .seed = 4});
    GraphRNode node;
    PageRankParams params;
    params.maxIterations = 10;
    params.tolerance = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(node.runPageRank(g, params).seconds);
    }
    state.SetItemsProcessed(state.iterations() * edges * 10);
}
BENCHMARK(BM_NodePageRankSweep)->Arg(100000);

void
BM_SweepThroughput(benchmark::State &state)
{
    // Driver sweep throughput (runs/sec) at --jobs 1/2/4/8: the full
    // workload x backend matrix on one small graph. Warm caches: the
    // plan and golden results are shared, so this measures the
    // parallel execution scaling, not preprocessing.
    driver::SweepSpec spec;
    spec.workloads = {"all"};
    spec.backends = {"all"};
    spec.datasets = {"rmat:vertices=256,edges=2048,seed=3"};
    spec.params =
        driver::ParamMap::parse("epochs=1,features=4,iterations=5");
    spec.jobs = static_cast<std::uint32_t>(state.range(0));
    const std::size_t runs = runSweep(spec).size(); // warm-up
    for (auto _ : state) {
        benchmark::DoNotOptimize(runSweep(spec).size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(runs));
    state.SetLabel("jobs=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_SweepThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void
BM_ServeWarmVsColdRequest(benchmark::State &state)
{
    // Per-request latency of the serving daemon: arg 0 selects a cold
    // request (caches dropped before each one, so the daemon re-pays
    // dataset resolution and the O(E log E) sort — what a one-shot
    // graphr_run process pays) or a warm one (1: the process-resident
    // PlanCache answers, the paper's online-phase steady state).
    const bool warm = state.range(0) != 0;
    service::Server server(service::ServeOptions{});
    const std::string request =
        "{\"id\":\"r\",\"type\":\"run\",\"workload\":\"pagerank\","
        "\"backend\":\"outofcore\","
        "\"dataset\":\"rmat:vertices=16384,edges=131072,seed=5\"}\n";
    if (warm) {
        std::istringstream in(request);
        std::ostringstream out;
        server.serve(in, out);
    }
    for (auto _ : state) {
        if (!warm) {
            state.PauseTiming();
            PlanCache::instance().clear();
            driver::clearGoldenCache();
            state.ResumeTiming();
        }
        std::istringstream in(request);
        std::ostringstream out;
        server.serve(in, out);
        benchmark::DoNotOptimize(out.str().size());
    }
    state.SetLabel(warm ? "warm" : "cold");
}
BENCHMARK(BM_ServeWarmVsColdRequest)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
