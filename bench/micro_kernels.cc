/**
 * @file
 * Micro-benchmarks of the hot simulation kernels: crossbar MVM,
 * preprocessing sort, tile-meta extraction, plan cache/store paths,
 * the node-level PageRank sweep, driver sweep throughput and serving
 * request latency. These track the *simulator's* own performance,
 * not the modelled hardware.
 *
 * Runs on the in-tree perf harness (src/perf/bench.hh) — no external
 * benchmark library. Each case does its setup, then times an inner
 * loop of kernel invocations across --reps repetitions (after
 * --warmups untimed ones) and reports min/median/IQR per invocation
 * plus a throughput rate.
 *
 *   bench_micro_kernels [--filter SUBSTR] [--reps N] [--warmups N]
 *                       [--list]
 */

#include <cstdint>
#include <filesystem>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/table.hh"
#include "driver/driver.hh"
#include "driver/golden_cache.hh"
#include "graph/generator.hh"
#include "graph/preprocess.hh"
#include "graphr/engine/plan_cache.hh"
#include "graphr/node.hh"
#include "graphr/tile_meta.hh"
#include "perf/bench.hh"
#include "rram/crossbar.hh"
#include "rram/simd/simd.hh"
#include "service/server.hh"
#include "store/plan_store.hh"

namespace
{

using namespace graphr;

/** One finished case: per-invocation timing + a throughput count. */
struct CaseResult
{
    perf::RepStats stats;
    /** Kernel invocations per timed repetition (the inner loop). */
    std::uint64_t itersPerRep = 1;
    /** Work items (edges, cells, runs) per kernel invocation. */
    std::uint64_t itemsPerIter = 1;
    std::string label;
};

/** A registered micro-benchmark: setup runs inside run(). */
struct MicroCase
{
    std::string name;
    std::function<CaseResult(const perf::RepOptions &)> run;
};

/** Time @p iters invocations of @p body per repetition. */
perf::RepStats
timeLoop(const perf::RepOptions &rep, std::uint64_t iters,
         const std::function<void()> &body)
{
    return perf::measure(rep, [&] {
        for (std::uint64_t i = 0; i < iters; ++i)
            body();
    });
}

CaseResult
crossbarMvm(const perf::RepOptions &rep, std::uint32_t dim)
{
    DeviceParams params;
    Crossbar cb(dim, params);
    Rng rng(1);
    for (std::uint32_t r = 0; r < dim; ++r)
        for (std::uint32_t c = 0; c < dim; ++c)
            cb.programValue(
                r, c,
                FixedPoint::fromRaw(static_cast<FixedPoint::Raw>(
                                        rng.below(65536)),
                                    0));
    std::vector<FixedPoint::Raw> x(dim);
    for (auto &v : x)
        v = static_cast<FixedPoint::Raw>(rng.below(65536));
    const std::uint64_t iters = 2048;
    CaseResult result;
    result.stats = timeLoop(
        rep, iters, [&] { perf::doNotOptimize(cb.mvmRaw(x)); });
    result.itersPerRep = iters;
    result.itemsPerIter = static_cast<std::uint64_t>(dim) * dim;
    return result;
}

CaseResult
crossbarMvmSparse(const perf::RepOptions &rep, std::uint32_t dim,
                  std::uint32_t occupied)
{
    // Dense-vs-sparse kernel cost: `occupied` wordlines of a dim x dim
    // crossbar hold values. Real power-law tiles leave most rows
    // empty, and the row-occupancy mask skips them outright — the gap
    // to the dense row is the per-MVM win.
    DeviceParams params;
    Crossbar cb(dim, params);
    Rng rng(1);
    for (std::uint32_t r = 0; r < occupied; ++r) {
        // Spread occupied rows across the array.
        const std::uint32_t row = r * dim / std::max(occupied, 1u);
        for (std::uint32_t c = 0; c < dim; ++c)
            cb.programValue(
                row, c,
                FixedPoint::fromRaw(static_cast<FixedPoint::Raw>(
                                        1 + rng.below(65535)),
                                    0));
    }
    std::vector<FixedPoint::Raw> x(dim);
    for (auto &v : x)
        v = static_cast<FixedPoint::Raw>(rng.below(65536));
    const std::uint64_t iters = 2048;
    CaseResult result;
    result.stats = timeLoop(
        rep, iters, [&] { perf::doNotOptimize(cb.mvmRaw(x)); });
    result.itersPerRep = iters;
    result.itemsPerIter = static_cast<std::uint64_t>(dim) * dim;
    result.label = occupied == dim
                       ? "dense"
                       : std::to_string(occupied) + "/" +
                             std::to_string(dim) + " rows";
    return result;
}

CaseResult
crossbarMvmSimd(const perf::RepOptions &rep, simd::Level level,
                std::uint32_t dim, std::uint32_t occupied)
{
    // Same MVM under a pinned kernel tier: the spread between the
    // scalar row and the dispatched SSE/AVX2 rows is the SIMD win on
    // this host. Results are byte-identical across tiers (the exact
    // path is pure mod-2^64 integer arithmetic), so only time moves.
    DeviceParams params;
    Crossbar cb(dim, params);
    cb.setSimdKernels(simd::kernelsFor(level));
    Rng rng(1);
    for (std::uint32_t r = 0; r < occupied; ++r) {
        const std::uint32_t row = r * dim / std::max(occupied, 1u);
        for (std::uint32_t c = 0; c < dim; ++c)
            cb.programValue(
                row, c,
                FixedPoint::fromRaw(static_cast<FixedPoint::Raw>(
                                        1 + rng.below(65535)),
                                    0));
    }
    std::vector<FixedPoint::Raw> x(dim);
    for (auto &v : x)
        v = static_cast<FixedPoint::Raw>(rng.below(65536));
    const std::uint64_t iters = 4096;
    CaseResult result;
    result.stats = timeLoop(
        rep, iters, [&] { perf::doNotOptimize(cb.mvmRaw(x)); });
    result.itersPerRep = iters;
    result.itemsPerIter = static_cast<std::uint64_t>(occupied) * dim;
    result.label = occupied == dim
                       ? "dense"
                       : std::to_string(occupied) + "/" +
                             std::to_string(dim) + " rows";
    return result;
}

CaseResult
preprocessSort(const perf::RepOptions &rep, EdgeId edges)
{
    const CooGraph g = makeRmat({.numVertices =
                                     static_cast<VertexId>(edges / 8),
                                 .numEdges = edges,
                                 .seed = 2});
    const GridPartition part(g.numVertices(), TilingParams{});
    CaseResult result;
    result.stats = timeLoop(rep, 1, [&] {
        OrderedEdgeList ordered(g, part);
        perf::doNotOptimize(ordered.numNonEmptyTiles());
    });
    result.itemsPerIter = edges;
    return result;
}

CaseResult
tileMeta(const perf::RepOptions &rep, EdgeId edges)
{
    const CooGraph g = makeRmat({.numVertices =
                                     static_cast<VertexId>(edges / 8),
                                 .numEdges = edges,
                                 .seed = 3});
    const GridPartition part(g.numVertices(), TilingParams{});
    const OrderedEdgeList ordered(g, part);
    const std::uint64_t iters = 4;
    CaseResult result;
    result.stats = timeLoop(rep, iters, [&] {
        TileMetaTable meta(ordered);
        perf::doNotOptimize(meta.totalNnz());
    });
    result.itersPerRep = iters;
    result.itemsPerIter = edges;
    return result;
}

CaseResult
planPrepareCold(const perf::RepOptions &rep, EdgeId edges)
{
    // Cost of a cache miss: fingerprint + partition + O(E log E)
    // sort + tile-meta extraction.
    const CooGraph g = makeRmat({.numVertices =
                                     static_cast<VertexId>(edges / 8),
                                 .numEdges = edges,
                                 .seed = 5});
    const TilingParams tiling;
    CaseResult result;
    result.stats = timeLoop(rep, 1, [&] {
        PlanCache::instance().clear();
        perf::doNotOptimize(PlanCache::instance().get(g, tiling));
    });
    result.itemsPerIter = edges;
    PlanCache::instance().clear();
    return result;
}

CaseResult
planCacheHit(const perf::RepOptions &rep, EdgeId edges)
{
    // Cost of a cache hit: fingerprint + lookup. The gap to
    // plan_prepare_cold is what every re-run/backend saves.
    const CooGraph g = makeRmat({.numVertices =
                                     static_cast<VertexId>(edges / 8),
                                 .numEdges = edges,
                                 .seed = 5});
    const TilingParams tiling;
    PlanCache::instance().get(g, tiling);
    const std::uint64_t iters = 256;
    CaseResult result;
    result.stats = timeLoop(rep, iters, [&] {
        perf::doNotOptimize(PlanCache::instance().get(g, tiling));
    });
    result.itersPerRep = iters;
    result.itemsPerIter = edges;
    PlanCache::instance().clear();
    return result;
}

CaseResult
planStoreColdVsWarm(const perf::RepOptions &rep, EdgeId edges,
                    bool warm)
{
    // The cold-start win of the on-disk preprocessing store: cold
    // pays fingerprint + partition + O(E log E) sort + meta
    // extraction (what a storeless process pays); warm is a validated
    // artifact load through the store's mmap/chunked path — no sort.
    const CooGraph g = makeRmat({.numVertices =
                                     static_cast<VertexId>(edges / 8),
                                 .numEdges = edges,
                                 .seed = 5});
    const TilingParams tiling;
    const std::uint64_t fingerprint = graphFingerprint(g);

    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "graphr_bench_plan_store")
            .string();
    std::filesystem::remove_all(dir);
    const PlanStore store(dir);
    store.save(TilePlan(g, tiling), tiling);

    CaseResult result;
    if (warm) {
        result.stats = timeLoop(rep, 1, [&] {
            perf::doNotOptimize(store.load(fingerprint, tiling));
        });
    } else {
        result.stats = timeLoop(rep, 1, [&] {
            const TilePlan plan(g, tiling);
            perf::doNotOptimize(plan.ordered.numNonEmptyTiles());
        });
    }
    result.itemsPerIter = edges;
    result.label = warm ? "warm" : "cold";
    std::filesystem::remove_all(dir);
    return result;
}

CaseResult
functionalPageRank(const perf::RepOptions &rep, bool resident)
{
    // Functional wall-clock, reprogram-per-sweep vs resident weights
    // (ProgramCharging::kOnce programs each tile once per run and
    // replays the stored crossbar state afterwards).
    GraphRConfig cfg;
    cfg.tiling.crossbarDim = 8;
    cfg.tiling.crossbarsPerGe = 4;
    cfg.tiling.numGe = 4;
    cfg.functional = true;
    cfg.programCharging = resident ? ProgramCharging::kOnce
                                   : ProgramCharging::kPerSweep;
    const CooGraph g =
        makeRmat({.numVertices = 512, .numEdges = 4096, .seed = 6});
    GraphRNode node(cfg);
    PageRankParams params;
    params.maxIterations = 10;
    params.tolerance = 0.0;
    CaseResult result;
    result.stats = timeLoop(rep, 1, [&] {
        perf::doNotOptimize(node.runPageRank(g, params).seconds);
    });
    result.itemsPerIter = g.numEdges() * 10;
    result.label = resident ? "resident" : "reprogram";
    return result;
}

CaseResult
nodePageRankSweep(const perf::RepOptions &rep, EdgeId edges)
{
    const CooGraph g = makeRmat({.numVertices =
                                     static_cast<VertexId>(edges / 8),
                                 .numEdges = edges,
                                 .seed = 4});
    GraphRNode node;
    PageRankParams params;
    params.maxIterations = 10;
    params.tolerance = 0.0;
    CaseResult result;
    result.stats = timeLoop(rep, 1, [&] {
        perf::doNotOptimize(node.runPageRank(g, params).seconds);
    });
    result.itemsPerIter = edges * 10;
    return result;
}

CaseResult
sweepThroughput(const perf::RepOptions &rep, std::uint32_t jobs)
{
    // Driver sweep throughput at --jobs N: the full workload x
    // backend matrix on one small graph. Warm caches: the plan and
    // golden results are shared, so this measures the parallel
    // execution scaling, not preprocessing.
    driver::SweepSpec spec;
    spec.workloads = {"all"};
    spec.backends = {"all"};
    spec.datasets = {"rmat:vertices=256,edges=2048,seed=3"};
    spec.params =
        driver::ParamMap::parse("epochs=1,features=4,iterations=5");
    spec.jobs = jobs;
    const std::size_t runs = runSweep(spec).size(); // warm-up
    CaseResult result;
    result.stats = timeLoop(
        rep, 1, [&] { perf::doNotOptimize(runSweep(spec).size()); });
    result.itemsPerIter = runs;
    result.label = "jobs=" + std::to_string(jobs);
    return result;
}

CaseResult
serveRequest(const perf::RepOptions &rep, bool warm)
{
    // Per-request latency of the serving daemon: cold drops the
    // caches before each request, so the daemon re-pays dataset
    // resolution and the O(E log E) sort (what a one-shot graphr_run
    // process pays); warm is answered by the process-resident
    // PlanCache — the paper's online-phase steady state.
    service::Server server(service::ServeOptions{});
    const std::string request =
        "{\"id\":\"r\",\"type\":\"run\",\"workload\":\"pagerank\","
        "\"backend\":\"outofcore\","
        "\"dataset\":\"rmat:vertices=16384,edges=131072,seed=5\"}\n";
    if (warm) {
        std::istringstream in(request);
        std::ostringstream out;
        server.serve(in, out);
    }
    CaseResult result;
    result.stats = timeLoop(rep, 1, [&] {
        if (!warm) {
            // Cache drops are part of the scenario, not overhead
            // worth excluding: the sort they force dominates anyway.
            PlanCache::instance().clear();
            driver::clearGoldenCache();
        }
        std::istringstream in(request);
        std::ostringstream out;
        server.serve(in, out);
        perf::doNotOptimize(out.str().size());
    });
    result.itemsPerIter = 1;
    result.label = warm ? "warm" : "cold";
    return result;
}

std::vector<MicroCase>
allCases()
{
    using perf::RepOptions;
    std::vector<MicroCase> cases;
    const auto add = [&cases](std::string name, auto fn) {
        cases.push_back({std::move(name), std::move(fn)});
    };

    for (const std::uint32_t dim : {4u, 8u, 16u, 32u})
        add("crossbar_mvm/" + std::to_string(dim),
            [dim](const RepOptions &r) { return crossbarMvm(r, dim); });
    for (const std::uint32_t occ : {32u, 8u, 2u, 0u})
        add("crossbar_mvm_sparse/32x" + std::to_string(occ),
            [occ](const RepOptions &r) {
                return crossbarMvmSparse(r, 32, occ);
            });
    // One row per supported kernel tier; hosts without SSE4.1/AVX2
    // simply register fewer rows.
    for (const simd::Level level :
         {simd::Level::kScalar, simd::Level::kSse,
          simd::Level::kAvx2}) {
        if (!simd::levelSupported(level))
            continue;
        for (const std::uint32_t occ : {64u, 8u})
            add(std::string("crossbar_mvm_simd/") +
                    simd::levelName(level) + "/" +
                    (occ == 64u ? "dense" : "sparse"),
                [level, occ](const RepOptions &r) {
                    return crossbarMvmSimd(r, level, 64, occ);
                });
    }
    for (const EdgeId e : {EdgeId(10000), EdgeId(100000),
                           EdgeId(1000000)})
        add("preprocess_sort/" + std::to_string(e),
            [e](const RepOptions &r) { return preprocessSort(r, e); });
    for (const EdgeId e : {EdgeId(10000), EdgeId(100000)})
        add("tile_meta/" + std::to_string(e),
            [e](const RepOptions &r) { return tileMeta(r, e); });
    for (const EdgeId e : {EdgeId(10000), EdgeId(100000),
                           EdgeId(1000000)})
        add("plan_prepare_cold/" + std::to_string(e),
            [e](const RepOptions &r) {
                return planPrepareCold(r, e);
            });
    for (const EdgeId e : {EdgeId(10000), EdgeId(100000),
                           EdgeId(1000000)})
        add("plan_cache_hit/" + std::to_string(e),
            [e](const RepOptions &r) { return planCacheHit(r, e); });
    for (const EdgeId e : {EdgeId(100000), EdgeId(1000000)})
        for (const bool warm : {false, true})
            add("plan_store/" + std::to_string(e) + "/" +
                    (warm ? "warm" : "cold"),
                [e, warm](const RepOptions &r) {
                    return planStoreColdVsWarm(r, e, warm);
                });
    for (const bool resident : {false, true})
        add(std::string("functional_pagerank/") +
                (resident ? "resident" : "reprogram"),
            [resident](const RepOptions &r) {
                return functionalPageRank(r, resident);
            });
    add("node_pagerank_sweep/100000", [](const RepOptions &r) {
        return nodePageRankSweep(r, 100000);
    });
    for (const std::uint32_t jobs : {1u, 2u, 4u, 8u})
        add("sweep_throughput/jobs=" + std::to_string(jobs),
            [jobs](const RepOptions &r) {
                return sweepThroughput(r, jobs);
            });
    for (const bool warm : {false, true})
        add(std::string("serve_request/") + (warm ? "warm" : "cold"),
            [warm](const RepOptions &r) {
                return serveRequest(r, warm);
            });
    return cases;
}

/** Seconds formatted with an auto unit (ns/us/ms/s). */
std::string
humanSeconds(double s)
{
    std::ostringstream os;
    os.precision(3);
    if (s < 1e-6)
        os << s * 1e9 << " ns";
    else if (s < 1e-3)
        os << s * 1e6 << " us";
    else if (s < 1.0)
        os << s * 1e3 << " ms";
    else
        os << s << " s";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    perf::RepOptions rep;
    rep.reps = 3;
    rep.warmups = 1;
    std::string filter;
    bool list = false;

    const std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const auto next = [&](const std::string &flag) {
            if (i + 1 >= args.size()) {
                std::cerr << "error: " << flag << " needs a value\n";
                std::exit(1);
            }
            return args[++i];
        };
        if (args[i] == "--filter") {
            filter = next(args[i]);
        } else if (args[i] == "--reps") {
            rep.reps = static_cast<unsigned>(
                std::stoul(next("--reps")));
        } else if (args[i] == "--warmups") {
            rep.warmups = static_cast<unsigned>(
                std::stoul(next("--warmups")));
        } else if (args[i] == "--list") {
            list = true;
        } else if (args[i] == "--help" || args[i] == "-h") {
            std::cout
                << "bench_micro_kernels [--filter SUBSTR] [--reps N]"
                   " [--warmups N] [--list]\n";
            return 0;
        } else {
            std::cerr << "error: unknown flag '" << args[i]
                      << "' (see --help)\n";
            return 1;
        }
    }

    const std::vector<MicroCase> cases = allCases();
    if (list) {
        for (const MicroCase &c : cases)
            std::cout << c.name << "\n";
        return 0;
    }

    TextTable table;
    table.header({"bench", "label", "reps", "min/iter", "median/iter",
                  "iqr", "items/s"});
    bool ran = false;
    for (const MicroCase &c : cases) {
        if (!filter.empty() && c.name.find(filter) == std::string::npos)
            continue;
        std::cerr << "[bench] " << c.name << "\n";
        const CaseResult result = c.run(rep);
        ran = true;
        const double per_iter_median =
            result.stats.median() /
            static_cast<double>(result.itersPerRep);
        const double per_iter_min =
            result.stats.min() /
            static_cast<double>(result.itersPerRep);
        const double rate =
            per_iter_median > 0.0
                ? static_cast<double>(result.itemsPerIter) /
                      per_iter_median
                : 0.0;
        std::ostringstream rate_os;
        rate_os.precision(3);
        rate_os << rate;
        table.row({c.name, result.label, std::to_string(rep.reps),
                   humanSeconds(per_iter_min),
                   humanSeconds(per_iter_median),
                   humanSeconds(result.stats.iqr() /
                                static_cast<double>(result.itersPerRep)),
                   rate_os.str()});
    }
    if (!ran) {
        std::cerr << "error: no benchmark matches filter '" << filter
                  << "'\n";
        return 1;
    }
    table.print(std::cout);
    return 0;
}
