/**
 * @file
 * Regenerates paper Figure 19: GraphR performance and energy saving
 * compared to the GPU platform (Tesla K40c running Gunrock /
 * CuMF_SGD), normalised to the CPU baseline.
 *
 * Workloads as in the paper: PageRank and SSSP on LiveJournal, CF on
 * Netflix. Paper-reported shape: GraphR 1.69x-2.19x faster than GPU
 * and 4.77x-8.91x more energy efficient; GPU gap larger on the
 * MAC-dominated PR/CF than on SSSP.
 */

#include "baselines/gpu_model.hh"
#include "bench/bench_util.hh"

int
main()
{
    using namespace graphr;
    using namespace graphr::bench;

    banner("Figure 19: GraphR vs GPU (normalized to CPU)",
           "GraphR (HPCA'18), Figure 19");

    CpuModel cpu;
    GpuModel gpu;
    GraphRNode node;

    PageRankParams pr_params;
    pr_params.maxIterations = kPrIterations;
    pr_params.tolerance = 0.0;

    struct Row
    {
        std::string app;
        double cpu_s, gpu_s, graphr_s;
        double cpu_j, gpu_j, graphr_j;
    };
    std::vector<Row> rows;

    {
        const CooGraph lj = loadDataset(DatasetId::kLiveJournal);
        std::cerr << "LJ generated: " << lj.numVertices() << " / "
                  << lj.numEdges() << "\n";
        const BaselineReport c = cpu.runPageRank(lj, kPrIterations);
        const BaselineReport g = gpu.runPageRank(lj, kPrIterations);
        const SimReport r = node.runPageRank(lj, pr_params);
        rows.push_back({"PR(LJ)", c.seconds, g.seconds, r.seconds,
                        c.joules, g.joules, r.joules});

        const BaselineReport cs = cpu.runSssp(lj, 0);
        const BaselineReport gs = gpu.runSssp(lj, 0);
        const SimReport rs = node.runSssp(lj, 0);
        rows.push_back({"SSSP(LJ)", cs.seconds, gs.seconds, rs.seconds,
                        cs.joules, gs.joules, rs.joules});
    }
    {
        const CooGraph nf = loadDataset(DatasetId::kNetflix);
        const CfParams cf = netflixCfParams(nf);
        const BaselineReport c = cpu.runCf(nf, cf);
        const BaselineReport g = gpu.runCf(nf, cf);
        const SimReport r = node.runCf(nf, cf);
        rows.push_back({"CF(NF)", c.seconds, g.seconds, r.seconds,
                        c.joules, g.joules, r.joules});
    }

    TextTable perf;
    perf.header({"workload", "CPU", "GPU", "GraphR",
                 "GraphR/GPU speedup"});
    TextTable energy;
    energy.header({"workload", "CPU", "GPU", "GraphR",
                   "GraphR/GPU energy saving"});
    for (const Row &r : rows) {
        perf.row({r.app, "1.00", TextTable::num(r.cpu_s / r.gpu_s),
                  TextTable::num(r.cpu_s / r.graphr_s),
                  TextTable::num(r.gpu_s / r.graphr_s)});
        energy.row({r.app, "1.00", TextTable::num(r.cpu_j / r.gpu_j),
                    TextTable::num(r.cpu_j / r.graphr_j),
                    TextTable::num(r.gpu_j / r.graphr_j)});
    }
    std::cout << "(a) Performance normalized to CPU\n";
    perf.print(std::cout);
    std::cout << "\n(b) Energy saving normalized to CPU\n";
    energy.print(std::cout);
    std::cout << "\npaper shape: GraphR 1.69x-2.19x faster and "
                 "4.77x-8.91x more energy efficient than GPU\n";
    return 0;
}
