/**
 * @file
 * Ablation A6: out-of-core execution (paper Fig. 9 workflow).
 *
 * Runs PageRank on WebGoogle with the graph streamed from storage,
 * sweeping block size and storage class. Because the preprocessed
 * order makes every access sequential, even disk-resident graphs
 * keep the node busy once the storage can sustain the edge stream —
 * the paper's case for GraphR as a drop-in out-of-core accelerator.
 */

#include "bench/bench_util.hh"
#include "graphr/out_of_core.hh"

int
main()
{
    using namespace graphr;
    using namespace graphr::bench;

    banner("Ablation A6: out-of-core streaming (PageRank on WG)",
           "GraphR (HPCA'18), Fig. 9 / section 3.3");

    const CooGraph g = loadDataset(DatasetId::kWebGoogle);
    PageRankParams params;
    params.maxIterations = kPrIterations;
    params.tolerance = 0.0;

    struct StorageClass
    {
        const char *name;
        StorageParams params;
    };
    const StorageClass storages[] = {
        {"HDD (0.15 GB/s)", {0.15, 8000.0, 15.0}},
        {"SATA SSD (0.5 GB/s)", {0.5, 80.0, 10.0}},
        {"NVMe SSD (3 GB/s)", {3.0, 10.0, 6.0}},
    };

    TextTable table;
    table.header({"storage", "block size", "blocks", "disk (s)",
                  "node (s)", "end-to-end (s)", "bound by"});
    for (const StorageClass &storage : storages) {
        for (std::uint32_t block : {0u, 131072u}) {
            GraphRConfig cfg;
            cfg.tiling.blockSize = block;
            OutOfCoreRunner runner(cfg, storage.params);
            const OutOfCoreReport rep = runner.runPageRank(g, params);
            table.row(
                {storage.name,
                 block == 0 ? "whole graph" : std::to_string(block),
                 std::to_string(rep.numBlocks),
                 TextTable::sci(rep.diskSeconds),
                 TextTable::sci(rep.node.seconds),
                 TextTable::sci(rep.totalSeconds),
                 rep.diskSeconds > rep.node.seconds ? "disk" : "node"});
        }
        std::cerr << "done " << storage.name << "\n";
    }
    table.print(std::cout);
    std::cout << "\nexpected: all storage classes bottleneck a strict "
                 "re-stream-every-iteration schedule (the node sweeps "
                 "in ms); this is why the paper's in-memory setting "
                 "keeps blocks resident in memory ReRAM and loads "
                 "each block from disk once, with sequential-only "
                 "I/O. Sequential streaming narrows the HDD-to-NVMe "
                 "gap to the raw ~20x bandwidth ratio.\n";
    return 0;
}
