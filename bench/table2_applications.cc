/**
 * @file
 * Regenerates paper Table 2: the vertex programs GraphR supports,
 * their processEdge/reduce operations and mapping pattern — and
 * proves each mapping by executing it functionally on the analog
 * datapath and checking against the golden implementation.
 */

#include <cmath>

#include "algorithms/spmv.hh"
#include "algorithms/traversal.hh"
#include "bench/bench_util.hh"
#include "common/random.hh"
#include "graph/generator.hh"

int
main()
{
    using namespace graphr;
    using namespace graphr::bench;

    banner("Table 2: Applications in GraphR",
           "GraphR (HPCA'18), Table 2");

    TextTable table;
    table.header({"application", "vertex property", "processEdge()",
                  "reduce()", "pattern", "active list",
                  "functional check"});

    // Small functional configuration (exact datapath).
    GraphRConfig cfg;
    cfg.tiling.crossbarDim = 4;
    cfg.tiling.crossbarsPerGe = 2;
    cfg.tiling.numGe = 2;
    cfg.functional = true;
    GraphRNode node(cfg);

    const CooGraph g = makeRmat({.numVertices = 64,
                                 .numEdges = 512,
                                 .maxWeight = 15.0,
                                 .seed = 61});

    // SpMV.
    {
        std::vector<Value> x(g.numVertices());
        Rng rng(3);
        for (auto &v : x)
            v = rng.uniform();
        std::vector<Value> y;
        node.runSpmv(g, x, &y);
        const std::vector<Value> golden = spmv(g, x);
        double err = 0.0;
        for (VertexId v = 0; v < g.numVertices(); ++v)
            err = std::max(err, std::abs(y[v] - golden[v]));
        table.row({"SpMV", "value",
                   "V.prop / V.outdeg * E.weight", "sum",
                   "parallel MAC", "not required",
                   err < 0.05 ? "PASS" : "FAIL"});
    }
    // PageRank.
    {
        PageRankParams params;
        params.maxIterations = 15;
        params.tolerance = 0.0;
        std::vector<Value> ranks;
        node.runPageRank(g, params, &ranks);
        const PageRankResult golden = pagerank(g, params);
        double err = 0.0;
        for (VertexId v = 0; v < g.numVertices(); ++v)
            err = std::max(err,
                           std::abs(ranks[v] - golden.ranks[v]));
        table.row({"PageRank", "rank value",
                   "r * V.prop / V.outdeg",
                   "sum + (1-r)/|V|", "parallel MAC", "not required",
                   err < 0.02 ? "PASS" : "FAIL"});
    }
    // BFS.
    {
        std::vector<Value> dist;
        node.runBfs(g, 0, &dist);
        const TraversalResult golden = bfs(g, 0);
        bool exact = true;
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            const bool gi = std::isinf(golden.dist[v]);
            const bool di = std::isinf(dist[v]);
            exact &= gi == di && (gi || dist[v] == golden.dist[v]);
        }
        table.row({"BFS", "level", "1 + V.prop", "min",
                   "parallel add-op", "required",
                   exact ? "PASS (exact)" : "FAIL"});
    }
    // SSSP.
    {
        std::vector<Value> dist;
        node.runSssp(g, 0, &dist);
        const TraversalResult golden = sssp(g, 0);
        bool exact = true;
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            const bool gi = std::isinf(golden.dist[v]);
            const bool di = std::isinf(dist[v]);
            exact &= gi == di && (gi || dist[v] == golden.dist[v]);
        }
        table.row({"SSSP", "path length", "E.weight + V.prop", "min",
                   "parallel add-op", "required",
                   exact ? "PASS (exact)" : "FAIL"});
    }

    table.print(std::cout);
    std::cout << "\nparallelization degree: parallel MAC ~ C*C*N*G, "
                 "parallel add-op ~ C*N*G (paper section 4)\n";
    return 0;
}
