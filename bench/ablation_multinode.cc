/**
 * @file
 * Ablation A5: multi-node scaling (paper section 3.1's multi-node
 * setting — "each block is processed by a GraphR node; data
 * movements happen between GraphR nodes").
 *
 * Sweeps the cluster size for PageRank on LiveJournal and reports
 * the per-iteration compute/communication split: stripes shrink the
 * per-node sweep while the all-gather grows, giving the classic
 * strong-scaling knee.
 */

#include "bench/bench_util.hh"
#include "graphr/multi_node.hh"

int
main()
{
    using namespace graphr;
    using namespace graphr::bench;

    banner("Ablation A5: multi-node scaling (PageRank on LJ)",
           "GraphR (HPCA'18), section 3.1 multi-node setting");

    const CooGraph g = loadDataset(DatasetId::kLiveJournal);
    PageRankParams params;
    params.maxIterations = kPrIterations;
    params.tolerance = 0.0;

    double single_seconds = 0.0;
    TextTable table;
    table.header({"nodes", "time (s)", "speedup", "comm share",
                  "energy (J)", "slowest sweep (s)"});
    for (std::uint32_t nodes : {1u, 2u, 4u, 8u, 16u}) {
        MultiNodeGraphR cluster(GraphRConfig{}, nodes);
        const MultiNodeReport rep = cluster.runPageRank(g, params);
        if (nodes == 1)
            single_seconds = rep.seconds;
        double max_sweep = 0.0;
        for (double s : rep.nodeSweepSeconds)
            max_sweep = std::max(max_sweep, s);
        table.row({std::to_string(nodes), TextTable::sci(rep.seconds),
                   TextTable::num(single_seconds / rep.seconds),
                   TextTable::num(rep.commShare() * 100.0, 1) + "%",
                   TextTable::sci(rep.joules),
                   TextTable::sci(max_sweep)});
        std::cerr << "done nodes=" << nodes << "\n";
    }
    table.print(std::cout);
    std::cout << "\nexpected: near-linear compute scaling until the "
                 "all-gather dominates.\n";
    return 0;
}
