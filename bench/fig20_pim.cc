/**
 * @file
 * Regenerates paper Figure 20: GraphR performance and energy saving
 * compared to the PIM (Tesseract-like) platform, normalised to the
 * CPU baseline.
 *
 * Workloads as in the paper: PageRank and SSSP on WV, AZ and LJ.
 * Paper-reported shape: GraphR 1.16x-4.12x faster and 3.67x-10.96x
 * more energy efficient than PIM.
 */

#include "baselines/pim_model.hh"
#include "bench/bench_util.hh"

int
main()
{
    using namespace graphr;
    using namespace graphr::bench;

    banner("Figure 20: GraphR vs PIM (normalized to CPU)",
           "GraphR (HPCA'18), Figure 20");

    CpuModel cpu;
    PimModel pim;
    GraphRNode node;

    PageRankParams pr_params;
    pr_params.maxIterations = kPrIterations;
    pr_params.tolerance = 0.0;

    const std::vector<DatasetId> sets = {
        DatasetId::kWikiVote, DatasetId::kAmazon,
        DatasetId::kLiveJournal};

    TextTable perf;
    perf.header({"workload", "CPU", "PIM", "GraphR",
                 "GraphR/PIM speedup"});
    TextTable energy;
    energy.header({"workload", "CPU", "PIM", "GraphR",
                   "GraphR/PIM energy saving"});

    std::vector<double> perf_ratios;
    std::vector<double> energy_ratios;

    auto record = [&](const std::string &label, double cpu_s,
                      double pim_s, double graphr_s, double cpu_j,
                      double pim_j, double graphr_j) {
        perf.row({label, "1.00", TextTable::num(cpu_s / pim_s),
                  TextTable::num(cpu_s / graphr_s),
                  TextTable::num(pim_s / graphr_s)});
        energy.row({label, "1.00", TextTable::num(cpu_j / pim_j),
                    TextTable::num(cpu_j / graphr_j),
                    TextTable::num(pim_j / graphr_j)});
        perf_ratios.push_back(pim_s / graphr_s);
        energy_ratios.push_back(pim_j / graphr_j);
    };

    for (const DatasetId id : sets) {
        const DatasetInfo &info = datasetInfo(id);
        const CooGraph g = loadDataset(id);
        const BaselineReport c = cpu.runPageRank(g, kPrIterations);
        const BaselineReport p = pim.runPageRank(g, kPrIterations);
        const SimReport r = node.runPageRank(g, pr_params);
        record("PR(" + info.shortName + ")", c.seconds, p.seconds,
               r.seconds, c.joules, p.joules, r.joules);
        std::cerr << "done PR " << info.shortName << "\n";
    }
    for (const DatasetId id : sets) {
        const DatasetInfo &info = datasetInfo(id);
        const CooGraph g = loadDataset(id);
        const BaselineReport c = cpu.runSssp(g, 0);
        const BaselineReport p = pim.runSssp(g, 0);
        const SimReport r = node.runSssp(g, 0);
        record("SSSP(" + info.shortName + ")", c.seconds, p.seconds,
               r.seconds, c.joules, p.joules, r.joules);
        std::cerr << "done SSSP " << info.shortName << "\n";
    }

    std::cout << "(a) Performance normalized to CPU\n";
    perf.print(std::cout);
    std::cout << "\n(b) Energy saving normalized to CPU\n";
    energy.print(std::cout);

    double pmin = 1e30, pmax = 0, emin = 1e30, emax = 0;
    for (double v : perf_ratios) {
        pmin = std::min(pmin, v);
        pmax = std::max(pmax, v);
    }
    for (double v : energy_ratios) {
        emin = std::min(emin, v);
        emax = std::max(emax, v);
    }
    std::cout << "\nGraphR vs PIM: speedup " << TextTable::num(pmin)
              << "x-" << TextTable::num(pmax)
              << "x (paper: 1.16x-4.12x), energy "
              << TextTable::num(emin) << "x-" << TextTable::num(emax)
              << "x (paper: 3.67x-10.96x)\n";
    return 0;
}
