/**
 * @file
 * Ablation A3: graph-engine count and ADC sharing sweep.
 *
 * The paper fixes G = 64 GEs with one shared 1.0 GSps ADC per GE.
 * This bench sweeps both knobs for PageRank on Amazon: GE count
 * trades area for tile-level parallelism; ADC sharing trades area
 * and power against conversion throughput (the classic ReRAM
 * accelerator bottleneck).
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace graphr;
    using namespace graphr::bench;

    banner("Ablation A3: GE count / ADC sharing (PageRank on AZ)",
           "design choice, GraphR (HPCA'18) section 5.2");

    const CooGraph g = loadDataset(DatasetId::kAmazon);
    PageRankParams pr_params;
    pr_params.maxIterations = kPrIterations;
    pr_params.tolerance = 0.0;

    std::cout << "(a) GE count sweep (N = 32, 1 ADC/GE)\n";
    TextTable ge_table;
    ge_table.header({"G", "tile width", "time (s)", "energy (J)"});
    for (std::uint32_t ge : {16u, 32u, 64u, 128u}) {
        GraphRConfig cfg;
        cfg.tiling.numGe = ge;
        GraphRNode node(cfg);
        const SimReport rep = node.runPageRank(g, pr_params);
        ge_table.row({std::to_string(ge),
                      std::to_string(8ull * 32 * ge),
                      TextTable::sci(rep.seconds),
                      TextTable::sci(rep.joules)});
        std::cerr << "done G=" << ge << "\n";
    }
    ge_table.print(std::cout);

    std::cout << "\n(b) ADC sharing sweep (paper config, varying "
                 "ADCs per GE)\n";
    TextTable adc_table;
    adc_table.header({"ADCs/GE", "time (s)", "energy (J)"});
    for (int adcs : {1, 2, 4, 8}) {
        GraphRConfig cfg;
        cfg.device.adcsPerGe = adcs;
        GraphRNode node(cfg);
        const SimReport rep = node.runPageRank(g, pr_params);
        adc_table.row({std::to_string(adcs),
                       TextTable::sci(rep.seconds),
                       TextTable::sci(rep.joules)});
        std::cerr << "done adcs=" << adcs << "\n";
    }
    adc_table.print(std::cout);
    std::cout << "\nexpected: more GEs widen tiles (fewer, emptier "
                 "tiles: diminishing returns); extra ADCs help only "
                 "when conversion exceeds the GE cycle.\n";
    return 0;
}
