/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries.
 *
 * Every bench regenerates one table or figure of the paper. Datasets
 * are synthetic stand-ins at a configurable scale (see
 * graph/datasets.hh); the GRAPHR_DATASET_SCALE environment variable
 * overrides the default scale for quick or full runs.
 */

#ifndef GRAPHR_BENCH_BENCH_UTIL_HH
#define GRAPHR_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>
#include <vector>

#include "algorithms/collaborative_filtering.hh"
#include "algorithms/pagerank.hh"
#include "baselines/cpu_model.hh"
#include "common/table.hh"
#include "driver/dataset.hh"
#include "graph/datasets.hh"
#include "graphr/node.hh"

namespace graphr::bench
{

/** PageRank iteration count used throughout the evaluation. */
inline constexpr int kPrIterations = 20;

/** CF epochs used throughout the evaluation. */
inline constexpr int kCfEpochs = 3;

/** The six non-bipartite datasets of Table 3, in order. */
inline const std::vector<DatasetId> &
graphDatasets()
{
    static const std::vector<DatasetId> ids = {
        DatasetId::kWikiVote,    DatasetId::kSlashdot,
        DatasetId::kAmazon,      DatasetId::kWebGoogle,
        DatasetId::kLiveJournal, DatasetId::kOrkut,
    };
    return ids;
}

/** Generate a dataset at its bench scale (via the driver resolver). */
inline CooGraph
loadDataset(DatasetId id)
{
    return driver::resolveDataset(datasetInfo(id).shortName,
                                  benchScale(id))
        .graph;
}

/** CF parameters for the Netflix workload (feature length 32). */
inline CfParams
netflixCfParams(const CooGraph &ratings)
{
    CfParams params;
    // Items were appended after users by the bipartite generator; the
    // user count is the highest src + 1.
    VertexId users = 0;
    for (const Edge &e : ratings.edges())
        users = std::max(users, e.src + 1);
    params.numUsers = users;
    params.featureLength = 32;
    params.epochs = kCfEpochs;
    return params;
}

/** Banner printed at the top of each bench. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "==========================================================\n"
              << title << "\n"
              << "reproduces: " << paper_ref << "\n"
              << "==========================================================\n\n";
}

} // namespace graphr::bench

#endif // GRAPHR_BENCH_BENCH_UTIL_HH
