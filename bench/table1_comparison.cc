/**
 * @file
 * Regenerates paper Table 1: comparison of architectures for graph
 * processing. The qualitative rows come from the paper; the
 * quantitative access-pattern section is *measured* by running
 * PageRank on WV through each model and counting sequential bytes
 * vs random accesses, demonstrating GraphR's all-sequential claim.
 */

#include "baselines/gpu_model.hh"
#include "baselines/pim_model.hh"
#include "bench/bench_util.hh"

int
main()
{
    using namespace graphr;
    using namespace graphr::bench;

    banner("Table 1: Comparison of Architectures for Graph Processing",
           "GraphR (HPCA'18), Table 1");

    TextTable qual;
    qual.header({"", "CPU", "GPU", "Tesseract(PIM)", "GraphR"});
    qual.row({"process edge", "instruction", "instruction",
              "instruction", "ReRAM crossbar"});
    qual.row({"reduce", "instruction", "instruction",
              "instr + inter-cube", "crossbar or sALU"});
    qual.row({"processing model", "sync/async", "sync", "sync",
              "sync"});
    qual.row({"data movement", "memory hierarchy", "PCIe + GDDR",
              "between cubes", "memory ReRAM <-> GE"});
    qual.row({"memory access", "random + seq", "random + seq",
              "random + seq", "sequential only"});
    qual.row({"generality", "all algorithms", "vertex program",
              "vertex program", "vertex program in SpMV"});
    qual.print(std::cout);

    std::cout << "\nmeasured access pattern, PageRank x "
              << kPrIterations << " iterations on WV:\n\n";

    const CooGraph g = loadDataset(DatasetId::kWikiVote);
    CpuModel cpu;
    GpuModel gpu;
    PimModel pim;
    GraphRNode node;
    PageRankParams pr_params;
    pr_params.maxIterations = kPrIterations;
    pr_params.tolerance = 0.0;

    const BaselineReport c = cpu.runPageRank(g, kPrIterations);
    const BaselineReport gp = gpu.runPageRank(g, kPrIterations);
    const BaselineReport p = pim.runPageRank(g, kPrIterations);
    const SimReport r = node.runPageRank(g, pr_params);

    TextTable quant;
    quant.header({"platform", "sequential bytes", "random accesses",
                  "DRAM line fetches", "time (s)"});
    quant.row({"CPU", std::to_string(c.sequentialBytes),
               std::to_string(c.randomAccesses),
               std::to_string(c.dramAccesses),
               TextTable::sci(c.seconds)});
    quant.row({"GPU", std::to_string(gp.sequentialBytes),
               std::to_string(gp.randomAccesses), "-",
               TextTable::sci(gp.seconds)});
    quant.row({"PIM", std::to_string(p.sequentialBytes),
               std::to_string(p.randomAccesses), "-",
               TextTable::sci(p.seconds)});
    quant.row({"GraphR", std::to_string(r.events.memBytes),
               "0 (all sequential)", "0 (no DRAM)",
               TextTable::sci(r.seconds)});
    quant.print(std::cout);
    return 0;
}
