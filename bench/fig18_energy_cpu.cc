/**
 * @file
 * Regenerates paper Figure 18: GraphR energy saving over the CPU
 * baseline (same application x dataset sweep as Figure 17).
 *
 * Paper-reported shape: geomean 33.82x, max 217.88x (SpMV on SD),
 * min 4.50x (SSSP on OK).
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace graphr;
    using namespace graphr::bench;

    banner("Figure 18: GraphR Energy Saving Normalized to CPU",
           "GraphR (HPCA'18), Figure 18");

    CpuModel cpu;
    GraphRNode node;

    PageRankParams pr_params;
    pr_params.maxIterations = kPrIterations;
    pr_params.tolerance = 0.0;

    TextTable table;
    table.header({"app", "dataset", "energy saving vs CPU"});
    std::vector<double> all;
    double max_saving = 0.0;
    double min_saving = 1e30;
    std::string max_label;
    std::string min_label;

    auto record = [&](const std::string &app, const std::string &ds,
                      double saving) {
        table.row({app, ds, TextTable::num(saving)});
        all.push_back(saving);
        if (saving > max_saving) {
            max_saving = saving;
            max_label = app + "/" + ds;
        }
        if (saving < min_saving) {
            min_saving = saving;
            min_label = app + "/" + ds;
        }
    };

    for (const DatasetId id : graphDatasets()) {
        const DatasetInfo &info = datasetInfo(id);
        const CooGraph g = loadDataset(id);
        const std::vector<Value> x(g.numVertices(), 1.0);
        record("PageRank", info.shortName,
               cpu.runPageRank(g, kPrIterations).joules /
                   node.runPageRank(g, pr_params).joules);
        record("BFS", info.shortName,
               cpu.runBfs(g, 0).joules / node.runBfs(g, 0).joules);
        record("SSSP", info.shortName,
               cpu.runSssp(g, 0).joules / node.runSssp(g, 0).joules);
        record("SpMV", info.shortName,
               cpu.runSpmv(g).joules / node.runSpmv(g, x).joules);
        std::cerr << "done " << info.shortName << "\n";
    }
    {
        const CooGraph ratings = loadDataset(DatasetId::kNetflix);
        const CfParams cf = netflixCfParams(ratings);
        record("CF", "NF",
               cpu.runCf(ratings, cf).joules /
                   GraphRNode().runCf(ratings, cf).joules);
        std::cerr << "done NF\n";
    }

    table.print(std::cout);
    std::cout << "\ngeomean energy saving: "
              << TextTable::num(geomean(all))
              << "x   (paper: 33.82x)\n";
    std::cout << "max: " << TextTable::num(max_saving) << "x on "
              << max_label << "   (paper: 217.88x on SpMV/SD)\n";
    std::cout << "min: " << TextTable::num(min_saving) << "x on "
              << min_label << "   (paper: 4.50x on SSSP/OK)\n";
    return 0;
}
