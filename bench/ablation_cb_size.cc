/**
 * @file
 * Ablation A1: crossbar size sweep.
 *
 * Section 3.1 argues the sparsity waste is confined to crossbars of
 * "moderate size (e.g. 8x8)". This bench sweeps C for PageRank on
 * Slashdot at constant total cell count (C^2 * N * G cells), showing
 * the occupancy/parallelism trade-off the paper's choice of C = 8
 * balances: bigger crossbars waste more cells on zeros, smaller ones
 * lose parallelism and add ADC pressure per useful cell.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace graphr;
    using namespace graphr::bench;

    banner("Ablation A1: Crossbar Size Sweep (PageRank on SD)",
           "design choice, GraphR (HPCA'18) section 3.1");

    const CooGraph g = loadDataset(DatasetId::kSlashdot);
    CpuModel cpu;
    const double cpu_s = cpu.runPageRank(g, kPrIterations).seconds;
    const double cpu_j = cpu.runPageRank(g, kPrIterations).joules;

    PageRankParams pr_params;
    pr_params.maxIterations = kPrIterations;
    pr_params.tolerance = 0.0;

    TextTable table;
    table.header({"C", "N", "G", "total cells", "occupancy",
                  "time (s)", "energy (J)", "speedup", "energy saving"});

    // Keep C*C*N*G = 8*8*32*64 = 131072 cells constant.
    const std::uint64_t total_cells = 8ull * 8 * 32 * 64;
    for (std::uint32_t c : {4u, 8u, 16u, 32u}) {
        GraphRConfig cfg;
        cfg.tiling.crossbarDim = c;
        const std::uint64_t per_cb =
            static_cast<std::uint64_t>(c) * c;
        const std::uint64_t crossbars = total_cells / per_cb;
        cfg.tiling.numGe = 64;
        cfg.tiling.crossbarsPerGe =
            static_cast<std::uint32_t>(crossbars / cfg.tiling.numGe);
        GraphRNode node(cfg);
        const SimReport rep = node.runPageRank(g, pr_params);
        table.row({std::to_string(c),
                   std::to_string(cfg.tiling.crossbarsPerGe),
                   std::to_string(cfg.tiling.numGe),
                   std::to_string(per_cb * cfg.tiling.crossbarsPerGe *
                                  cfg.tiling.numGe),
                   TextTable::num(rep.occupancy, 4),
                   TextTable::sci(rep.seconds),
                   TextTable::sci(rep.joules),
                   TextTable::num(cpu_s / rep.seconds),
                   TextTable::num(cpu_j / rep.joules)});
        std::cerr << "done C=" << c << "\n";
    }
    table.print(std::cout);
    std::cout << "\nexpected: occupancy falls as C grows (sparsity "
                 "waste inside tiles); the paper picks C = 8.\n";
    return 0;
}
