/**
 * @file
 * Ablation A7: analog imprecision tolerance.
 *
 * The paper's core argument for analog computation (section 1): "the
 * iterative algorithms could tolerate the imprecise values by
 * nature" and integer algorithms "are resilient to errors". This
 * bench makes the claim quantitative: sweep the cell-programming
 * variation sigma (in 4-bit level units) and measure PageRank rank
 * error / top-10 overlap and SSSP distance mismatch rate on the
 * functional datapath.
 */

#include <algorithm>
#include <cmath>

#include "algorithms/pagerank.hh"
#include "algorithms/traversal.hh"
#include "bench/bench_util.hh"
#include "graph/generator.hh"

namespace
{

using namespace graphr;

/** Indices of the k largest entries. */
std::vector<VertexId>
topK(const std::vector<Value> &values, std::size_t k)
{
    std::vector<VertexId> order(values.size());
    for (VertexId v = 0; v < values.size(); ++v)
        order[v] = v;
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&values](VertexId a, VertexId b) {
                          return values[a] > values[b];
                      });
    order.resize(k);
    return order;
}

double
overlap(const std::vector<VertexId> &a, const std::vector<VertexId> &b)
{
    std::size_t hits = 0;
    for (VertexId v : a)
        hits += std::count(b.begin(), b.end(), v) > 0 ? 1 : 0;
    return static_cast<double>(hits) / static_cast<double>(a.size());
}

} // namespace

int
main()
{
    using namespace graphr::bench;

    banner("Ablation A7: tolerance to analog imprecision",
           "GraphR (HPCA'18), section 1 error-resilience claim");

    const CooGraph g = makeRmat({.numVertices = 96,
                                 .numEdges = 900,
                                 .maxWeight = 15.0,
                                 .seed = 95});

    GraphRConfig base;
    base.tiling.crossbarDim = 4;
    base.tiling.crossbarsPerGe = 2;
    base.tiling.numGe = 2;
    base.functional = true;

    PageRankParams pr_params;
    pr_params.maxIterations = 15;
    pr_params.tolerance = 0.0;
    const PageRankResult golden_pr = pagerank(g, pr_params);
    const std::vector<VertexId> golden_top = topK(golden_pr.ranks, 10);
    const TraversalResult golden_ss = sssp(g, 0);

    TextTable table;
    table.header({"sigma (levels)", "PR max |err|", "PR top-10 overlap",
                  "SSSP exact-match rate"});
    for (double sigma : {0.0, 0.1, 0.25, 0.5, 1.0}) {
        GraphRConfig cfg = base;
        cfg.variationSigma = sigma;
        GraphRNode node(cfg);

        std::vector<Value> ranks;
        node.runPageRank(g, pr_params, &ranks);
        double max_err = 0.0;
        for (VertexId v = 0; v < g.numVertices(); ++v)
            max_err = std::max(max_err,
                               std::abs(ranks[v] - golden_pr.ranks[v]));

        std::vector<Value> dist;
        node.runSssp(g, 0, &dist);
        std::uint64_t exact = 0;
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            const bool gi = std::isinf(golden_ss.dist[v]);
            const bool di = std::isinf(dist[v]);
            exact += (gi == di && (gi || dist[v] == golden_ss.dist[v]))
                         ? 1
                         : 0;
        }
        table.row({TextTable::num(sigma, 2),
                   TextTable::sci(max_err, 2),
                   TextTable::num(overlap(topK(ranks, 10), golden_top) *
                                      100.0,
                                  0) +
                       "%",
                   TextTable::num(static_cast<double>(exact) /
                                      g.numVertices() * 100.0,
                                  1) +
                       "%"});
        std::cerr << "done sigma=" << sigma << "\n";
    }
    table.print(std::cout);
    std::cout << "\nexpected: ranking survives sub-level noise (the "
                 "paper's tolerance claim); SSSP integer labels stay "
                 "exact until noise flips a full 4-bit level.\n";
    return 0;
}
