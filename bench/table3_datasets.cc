/**
 * @file
 * Regenerates paper Table 3: the evaluation datasets.
 *
 * Prints the paper-reported sizes next to the synthetic stand-ins
 * generated at bench scale, including the density each stand-in
 * preserves (density drives Fig. 21).
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace graphr;
    using namespace graphr::bench;

    banner("Table 3: Graph Datasets", "GraphR (HPCA'18), Table 3");

    TextTable table;
    table.header({"dataset", "paper |V|", "paper |E|", "scale",
                  "gen |V|", "gen |E|", "paper density", "gen density"});
    for (const DatasetInfo &info : allDatasets()) {
        const double scale = benchScale(info.id);
        const CooGraph g = makeDataset(info.id, scale);
        const double paper_density =
            static_cast<double>(info.paperEdges) /
            (static_cast<double>(info.paperVertices) *
             static_cast<double>(info.paperVertices));
        table.row({info.shortName + " (" + info.fullName + ")",
                   std::to_string(info.paperVertices),
                   std::to_string(info.paperEdges),
                   TextTable::num(scale, 0) + "x",
                   std::to_string(g.numVertices()),
                   std::to_string(g.numEdges()),
                   TextTable::sci(paper_density),
                   TextTable::sci(g.density())});
    }
    table.print(std::cout);
    std::cout << "\nNote: stand-ins are R-MAT (bipartite for NF) with\n"
                 "matched density; set GRAPHR_DATASET_SCALE=1 to "
                 "regenerate full-size graphs.\n";
    return 0;
}
