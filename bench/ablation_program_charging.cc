/**
 * @file
 * Ablation A4: streaming (per-sweep) vs resident (program-once)
 * execution.
 *
 * GraphR's default models the paper's streaming-apply: each sweep
 * re-streams subgraphs into the GEs, paying write energy every time
 * (latency hidden by bank overlap). Section 3.2's observation that a
 * GE doubles as a memory mat suggests the alternative: keep the
 * whole graph resident and pay programming once. This bench
 * quantifies the gap on PageRank across iteration counts.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace graphr;
    using namespace graphr::bench;

    banner("Ablation A4: per-sweep streaming vs resident graph",
           "design choice, GraphR (HPCA'18) sections 3.2-3.3");

    const CooGraph g = loadDataset(DatasetId::kAmazon);

    TextTable table;
    table.header({"iterations", "policy", "time (s)", "energy (J)",
                  "write energy share"});
    for (int iters : {5, 20, 80}) {
        PageRankParams params;
        params.maxIterations = iters;
        params.tolerance = 0.0;
        for (const auto policy : {ProgramCharging::kPerSweep,
                                  ProgramCharging::kOnce}) {
            GraphRConfig cfg;
            cfg.programCharging = policy;
            GraphRNode node(cfg);
            const SimReport rep = node.runPageRank(g, params);
            table.row(
                {std::to_string(iters),
                 policy == ProgramCharging::kPerSweep
                     ? "stream per sweep"
                     : "resident (program once)",
                 TextTable::sci(rep.seconds),
                 TextTable::sci(rep.joules),
                 TextTable::num(rep.energy.write / rep.joules * 100.0,
                                1) +
                     "%"});
        }
        std::cerr << "done iters=" << iters << "\n";
    }
    table.print(std::cout);
    std::cout << "\nexpected: the resident policy amortises write "
                 "energy with iteration count; streaming pays it "
                 "linearly (the paper's energy numbers match the "
                 "streaming shape).\n";
    return 0;
}
