/**
 * @file
 * Regenerates paper Figure 21: GraphR performance and energy saving
 * (vs CPU) as a function of dataset density, for PageRank and SSSP
 * on WV, SD, AZ, WG and LJ.
 *
 * Paper-reported shape: as the sparsity increases (density
 * decreases), performance and energy saving slightly decrease,
 * because more edge tiles must be traversed per useful non-zero.
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace graphr;
    using namespace graphr::bench;

    banner("Figure 21: Sensitivity to Sparsity",
           "GraphR (HPCA'18), Figure 21");

    CpuModel cpu;
    GraphRNode node;
    PageRankParams pr_params;
    pr_params.maxIterations = kPrIterations;
    pr_params.tolerance = 0.0;

    const std::vector<DatasetId> sets = {
        DatasetId::kWikiVote, DatasetId::kSlashdot, DatasetId::kAmazon,
        DatasetId::kWebGoogle, DatasetId::kLiveJournal};

    TextTable table;
    table.header({"dataset", "density", "tile occupancy",
                  "PR speedup", "PR energy saving", "SSSP speedup",
                  "SSSP energy saving"});

    std::vector<double> densities;
    std::vector<double> pr_speedups;
    for (const DatasetId id : sets) {
        const DatasetInfo &info = datasetInfo(id);
        const CooGraph g = loadDataset(id);

        const BaselineReport cpu_pr = cpu.runPageRank(g, kPrIterations);
        const SimReport graphr_pr = node.runPageRank(g, pr_params);
        const BaselineReport cpu_ss = cpu.runSssp(g, 0);
        const SimReport graphr_ss = node.runSssp(g, 0);

        table.row({info.shortName, TextTable::sci(g.density()),
                   TextTable::num(graphr_pr.occupancy, 4),
                   TextTable::num(cpu_pr.seconds / graphr_pr.seconds),
                   TextTable::num(cpu_pr.joules / graphr_pr.joules),
                   TextTable::num(cpu_ss.seconds / graphr_ss.seconds),
                   TextTable::num(cpu_ss.joules / graphr_ss.joules)});
        densities.push_back(g.density());
        pr_speedups.push_back(cpu_pr.seconds / graphr_pr.seconds);
        std::cerr << "done " << info.shortName << "\n";
    }

    table.print(std::cout);
    std::cout << "\npaper shape: speedup/saving mildly decrease as "
                 "density decreases\n(datasets above are ordered from "
                 "densest, WV, to sparsest, LJ).\n";
    return 0;
}
