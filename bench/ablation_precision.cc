/**
 * @file
 * Ablation A8: cell resolution and node area.
 *
 * The paper "conservatively assumes the 4-bit ReRAM cell" (section
 * 3.2) against the 5-bit capability reported in [26]. This bench
 * sweeps the cell resolution: fewer bits per cell mean more slices
 * per 16-bit value (more physical bitlines, more ADC samples, more
 * area); more bits per cell shrink the array but demand finer analog
 * programming. Reports the timing/energy of PageRank on SD plus the
 * NVSim-style area of each design point.
 */

#include "bench/bench_util.hh"
#include "rram/area.hh"

int
main()
{
    using namespace graphr;
    using namespace graphr::bench;

    banner("Ablation A8: cell resolution sweep (PageRank on SD)",
           "design choice, GraphR (HPCA'18) section 3.2 data format");

    const CooGraph g = loadDataset(DatasetId::kSlashdot);
    PageRankParams params;
    params.maxIterations = kPrIterations;
    params.tolerance = 0.0;

    TextTable table;
    table.header({"cell bits", "slices/value", "time (s)", "energy (J)",
                  "area (mm^2)"});
    for (int bits : {2, 4, 8}) {
        GraphRConfig cfg;
        cfg.device.cellBits = bits;
        // Drivers apply inputs at the same per-pass resolution.
        cfg.device.inputSlices = cfg.device.slicesPerValue();
        GraphRNode node(cfg);
        const SimReport rep = node.runPageRank(g, params);
        const AreaBreakdown area =
            nodeArea(cfg.tiling, cfg.device);
        table.row({std::to_string(bits),
                   std::to_string(cfg.device.slicesPerValue()),
                   TextTable::sci(rep.seconds),
                   TextTable::sci(rep.joules),
                   TextTable::num(area.total(), 3)});
        std::cerr << "done bits=" << bits << "\n";
    }
    table.print(std::cout);

    std::cout << "\npaper-configuration node area:\n";
    const GraphRConfig paper_cfg;
    nodeArea(paper_cfg.tiling, paper_cfg.device).print(std::cout);
    std::cout << "\nexpected: 2-bit cells double the physical array "
                 "and S/H cost vs 4-bit; 8-bit halves them but "
                 "exceeds demonstrated programming accuracy.\n";
    return 0;
}
