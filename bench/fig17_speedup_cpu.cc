/**
 * @file
 * Regenerates paper Figure 17: GraphR speedup over the CPU baseline
 * for PageRank, BFS, SSSP and SpMV on the six graph datasets, plus
 * CF on Netflix, with the geometric mean over all 25 executions.
 *
 * Paper-reported shape: geomean 16.01x, max 132.67x (SpMV on WV),
 * min 2.40x (SSSP on OK); parallel-MAC workloads (PR, SpMV) above
 * parallel-add-op ones (BFS, SSSP).
 */

#include "bench/bench_util.hh"

namespace
{

using namespace graphr;
using namespace graphr::bench;

struct Cell
{
    std::string app;
    std::string dataset;
    double speedup;
};

} // namespace

int
main()
{
    banner("Figure 17: GraphR Speedup Compared to CPU",
           "GraphR (HPCA'18), Figure 17");

    CpuModel cpu;
    GraphRNode node; // paper configuration

    std::vector<Cell> cells;
    PageRankParams pr_params;
    pr_params.maxIterations = kPrIterations;
    pr_params.tolerance = 0.0;

    for (const DatasetId id : graphDatasets()) {
        const DatasetInfo &info = datasetInfo(id);
        const CooGraph g = loadDataset(id);
        const std::vector<Value> x(g.numVertices(), 1.0);

        const double pr = cpu.runPageRank(g, kPrIterations).seconds /
                          node.runPageRank(g, pr_params).seconds;
        const double bfs_s =
            cpu.runBfs(g, 0).seconds / node.runBfs(g, 0).seconds;
        const double sssp_s =
            cpu.runSssp(g, 0).seconds / node.runSssp(g, 0).seconds;
        const double spmv_s =
            cpu.runSpmv(g).seconds / node.runSpmv(g, x).seconds;
        cells.push_back({"PageRank", info.shortName, pr});
        cells.push_back({"BFS", info.shortName, bfs_s});
        cells.push_back({"SSSP", info.shortName, sssp_s});
        cells.push_back({"SpMV", info.shortName, spmv_s});
        std::cout << "done " << info.shortName << "\n";
    }

    {
        const CooGraph ratings = loadDataset(DatasetId::kNetflix);
        const CfParams cf = netflixCfParams(ratings);
        cells.push_back({"CF", "NF",
                         cpu.runCf(ratings, cf).seconds /
                             GraphRNode().runCf(ratings, cf).seconds});
        std::cout << "done NF\n\n";
    }

    TextTable table;
    table.header({"app", "dataset", "speedup vs CPU"});
    std::vector<double> all;
    double max_speedup = 0.0;
    double min_speedup = 1e30;
    std::string max_label;
    std::string min_label;
    for (const Cell &c : cells) {
        table.row({c.app, c.dataset, TextTable::num(c.speedup)});
        all.push_back(c.speedup);
        if (c.speedup > max_speedup) {
            max_speedup = c.speedup;
            max_label = c.app + "/" + c.dataset;
        }
        if (c.speedup < min_speedup) {
            min_speedup = c.speedup;
            min_label = c.app + "/" + c.dataset;
        }
    }
    table.print(std::cout);

    std::cout << "\ngeomean speedup: " << TextTable::num(geomean(all))
              << "x   (paper: 16.01x)\n";
    std::cout << "max: " << TextTable::num(max_speedup) << "x on "
              << max_label << "   (paper: 132.67x on SpMV/WV)\n";
    std::cout << "min: " << TextTable::num(min_speedup) << "x on "
              << min_label << "   (paper: 2.40x on SSSP/OK)\n";
    return 0;
}
