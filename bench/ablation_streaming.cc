/**
 * @file
 * Ablation A2: column-major vs row-major streaming-apply order.
 *
 * Section 3.3 picks column-major because it needs a RegO only as
 * large as one subgraph's destination range, while row-major needs
 * RegO covering every destination of a source stripe; row-major in
 * exchange reads RegI once per stripe. Since ReRAM-technology
 * register writes cost more than reads, column-major wins. This
 * bench quantifies both register footprints and traffic on real
 * tile streams (PageRank on SD and WG).
 */

#include <set>

#include "bench/bench_util.hh"
#include "graph/preprocess.hh"
#include "graphr/tile_meta.hh"

int
main()
{
    using namespace graphr;
    using namespace graphr::bench;

    banner("Ablation A2: Streaming-Apply Order (column vs row major)",
           "GraphR (HPCA'18), section 3.3 / Figure 11");

    TextTable table;
    table.header({"dataset", "order", "RegO entries", "RegI reads",
                  "RegO writes", "reg energy (J)"});

    const DeviceParams dev;
    for (const DatasetId id :
         {DatasetId::kSlashdot, DatasetId::kWebGoogle}) {
        const DatasetInfo &info = datasetInfo(id);
        const CooGraph g = loadDataset(id);
        const GridPartition part(g.numVertices(), TilingParams{});
        const OrderedEdgeList ordered(g, part);
        const TileMetaTable meta(ordered);

        // Column-major (GraphR's choice): RegO spans one tile's
        // destinations; RegI is re-read for every tile (C sources).
        const std::uint64_t col_rego = part.tileWidth();
        std::uint64_t col_regi_reads = 0;
        std::uint64_t col_rego_writes = 0;
        // Row-major: tiles with the same source stripe processed
        // together; RegI read once per stripe, RegO spans the whole
        // destination range of the stripe (the padded vertex count
        // in the single-block setting).
        const std::uint64_t row_rego = part.paddedVertices();
        std::uint64_t row_regi_reads = 0;
        std::uint64_t row_rego_writes = 0;

        // Row-major visits tiles grouped by source stripe, so RegI is
        // read once per *distinct* stripe, not once per tile.
        std::set<std::uint64_t> stripes;
        for (const TileMeta &m : meta.tiles()) {
            col_regi_reads += part.crossbarDim();
            col_rego_writes += m.nnzColumns;
            row_rego_writes += m.nnzColumns;
            stripes.insert(m.row0);
        }
        row_regi_reads =
            static_cast<std::uint64_t>(stripes.size()) *
            part.crossbarDim();

        const double pj = 1e-12;
        const double col_j =
            (static_cast<double>(col_regi_reads) +
             2.0 * static_cast<double>(col_rego_writes)) *
            dev.regAccessEnergyPj * pj;
        const double row_j =
            (static_cast<double>(row_regi_reads) +
             2.0 * static_cast<double>(row_rego_writes)) *
            dev.regAccessEnergyPj * pj;

        table.row({info.shortName, "column-major (GraphR)",
                   std::to_string(col_rego),
                   std::to_string(col_regi_reads),
                   std::to_string(col_rego_writes),
                   TextTable::sci(col_j)});
        table.row({info.shortName, "row-major",
                   std::to_string(row_rego),
                   std::to_string(row_regi_reads),
                   std::to_string(row_rego_writes),
                   TextTable::sci(row_j)});
        std::cerr << "done " << info.shortName << "\n";
    }
    table.print(std::cout);
    std::cout << "\nexpected: row-major needs a RegO ~|V|/tileWidth "
                 "times larger for a modest saving in RegI reads;\n"
                 "GraphR picks column-major (register writes are the "
                 "expensive operation).\n";
    return 0;
}
