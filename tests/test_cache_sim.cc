/**
 * @file
 * Tests for the multi-level cache + DRAM model.
 */

#include <gtest/gtest.h>

#include "baselines/cache_sim.hh"

namespace graphr
{
namespace
{

TEST(CacheLevelTest, HitAfterInsert)
{
    CacheLevel level(CacheLevelParams{1024, 2, 64, 4});
    EXPECT_FALSE(level.access(0));
    EXPECT_TRUE(level.access(0));
}

TEST(CacheLevelTest, LruEviction)
{
    // 2 ways, 8 sets (1024 / (64*2)). Lines 0, 8, 16 map to set 0.
    CacheLevel level(CacheLevelParams{1024, 2, 64, 4});
    EXPECT_FALSE(level.access(0));
    EXPECT_FALSE(level.access(8));
    EXPECT_FALSE(level.access(16)); // evicts line 0
    EXPECT_FALSE(level.access(0));  // miss again
    EXPECT_TRUE(level.access(16));  // still resident
}

TEST(CacheLevelTest, ResetClears)
{
    CacheLevel level(CacheLevelParams{1024, 2, 64, 4});
    level.access(5);
    level.reset();
    EXPECT_FALSE(level.access(5));
}

TEST(CacheHierarchyTest, LatencyIncreasesDownTheHierarchy)
{
    CacheHierarchy h;
    const std::uint32_t miss_all = h.access(0); // cold: DRAM
    const std::uint32_t hit_l1 = h.access(0);
    EXPECT_GT(miss_all, hit_l1);
    EXPECT_EQ(hit_l1, h.params().l1.hitCycles);
    EXPECT_EQ(miss_all, h.params().l1.hitCycles +
                            h.params().l2.hitCycles +
                            h.params().l3.hitCycles +
                            h.params().dramCycles);
}

TEST(CacheHierarchyTest, StatsAccumulate)
{
    CacheHierarchy h;
    h.access(0);
    h.access(0);
    h.access(64);
    EXPECT_EQ(h.stats().accesses, 3u);
    EXPECT_EQ(h.stats().l1Hits, 1u);
    EXPECT_EQ(h.stats().dramAccesses, 2u);
}

TEST(CacheHierarchyTest, SequentialStreamHitsMostly)
{
    CacheHierarchy h;
    // 64-byte lines: 8 consecutive 8-byte words share one line.
    for (std::uint64_t addr = 0; addr < 8000; addr += 8)
        h.access(addr);
    const CacheStats &s = h.stats();
    EXPECT_GT(static_cast<double>(s.l1Hits) /
                  static_cast<double>(s.accesses),
              0.8);
}

TEST(CacheHierarchyTest, RandomLargeFootprintMissesToDram)
{
    CacheHierarchy h;
    // Stride far beyond L3 capacity.
    std::uint64_t addr = 0;
    for (int i = 0; i < 20000; ++i) {
        h.access(addr);
        addr += 64 * 1024 + 64; // unique lines, no reuse
    }
    const CacheStats &s = h.stats();
    EXPECT_EQ(s.dramAccesses, s.accesses);
}

TEST(CacheHierarchyTest, WorkingSetFitsInL3NotL1)
{
    CacheHierarchy h;
    // 4 MB working set: misses L1/L2 but fits the 20 MB L3.
    const std::uint64_t lines = 4 * 1024 * 1024 / 64;
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t l = 0; l < lines; ++l)
            h.access(l * 64);
    const CacheStats &s = h.stats();
    // After the cold pass, L3 serves the rest.
    EXPECT_GT(s.l3Hits, s.accesses / 2);
    EXPECT_LT(s.dramAccesses, s.accesses / 2);
}

} // namespace
} // namespace graphr
