/**
 * @file
 * Property tests for the compressed plan-artifact edge codec.
 *
 * The codec must be proven byte-exact and corruption-safe before the
 * store depends on it, so this suite drives it two ways: a seeded
 * generator sweeps adversarial edge distributions (empty tiles,
 * single-edge tiles, max-degree rows, duplicate runs, near-2^32
 * vertex ids, every weight mode) asserting encode -> decode is
 * bit-identical to the raw path, and a malformed-stream matrix
 * (truncation at every byte, flipped bits, hand-crafted structural
 * violations) asserts the decoder throws CodecError instead of
 * crashing, allocating unboundedly, or returning wrong edges.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "graph/generator.hh"
#include "graph/partition.hh"
#include "graph/preprocess.hh"
#include "graphr/engine/tile_plan.hh"
#include "store/edge_codec.hh"

namespace graphr
{
namespace
{

/** Small tiling so single tiles are easy to fill: 4x16 cells. */
TilingParams
smallTiling()
{
    return TilingParams{.crossbarDim = 4,
                        .crossbarsPerGe = 2,
                        .numGe = 2,
                        .blockSize = 0};
}

/** LEB128 append, for hand-crafting malformed streams. */
void
putV(std::vector<unsigned char> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<unsigned char>(v) | 0x80u);
        v >>= 7;
    }
    out.push_back(static_cast<unsigned char>(v));
}

/**
 * Sort arbitrary in-range edges into canonical streaming order and
 * build the tile directory — the reference path the codec must match,
 * without materialising per-vertex arrays (so near-2^32 vertex counts
 * stay cheap).
 */
OrderedEdgeList
orderEdges(const GridPartition &part, std::vector<Edge> edges)
{
    std::vector<std::uint64_t> keys(edges.size());
    std::vector<std::uint32_t> perm(edges.size());
    for (std::size_t e = 0; e < edges.size(); ++e) {
        keys[e] = part.globalOrderId(edges[e].src, edges[e].dst);
        perm[e] = static_cast<std::uint32_t>(e);
    }
    std::stable_sort(perm.begin(), perm.end(),
                     [&keys](std::uint32_t a, std::uint32_t b) {
                         return keys[a] < keys[b];
                     });
    std::vector<Edge> sorted(edges.size());
    std::vector<TileSpan> tiles;
    const std::uint64_t capacity = part.tileCapacity();
    std::uint64_t prev_tile = ~std::uint64_t{0};
    for (std::size_t e = 0; e < edges.size(); ++e) {
        sorted[e] = edges[perm[e]];
        const std::uint64_t tile = keys[perm[e]] / capacity;
        if (tile != prev_tile) {
            tiles.push_back(TileSpan{tile, e, 1});
            prev_tile = tile;
        } else {
            ++tiles.back().numEdges;
        }
    }
    return OrderedEdgeList(part, std::move(sorted), std::move(tiles));
}

/** Bit-pattern edge equality: NaN payloads and -0.0 must survive,
 *  which float == cannot express. */
void
expectEdgesBitIdentical(std::span<const Edge> a, std::span<const Edge> b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].src, b[i].src) << "edge " << i;
        EXPECT_EQ(a[i].dst, b[i].dst) << "edge " << i;
        EXPECT_EQ(std::bit_cast<std::uint64_t>(
                      static_cast<double>(a[i].weight)),
                  std::bit_cast<std::uint64_t>(
                      static_cast<double>(b[i].weight)))
            << "edge " << i;
    }
}

/** Encode, stream-decode, and require a bit-identical ordered list. */
std::vector<unsigned char>
expectRoundTrip(const GridPartition &part,
                const OrderedEdgeList &ordered)
{
    std::vector<unsigned char> bytes =
        encodeEdgeStream(part, ordered.edges(), ordered.tiles());
    EdgeStreamDecoder dec(part, bytes.data(), bytes.size());
    EXPECT_EQ(dec.totalEdges(), ordered.edges().size());
    EXPECT_EQ(dec.totalTiles(), ordered.tiles().size());
    const OrderedEdgeList decoded(part, dec);
    expectEdgesBitIdentical(decoded.edges(), ordered.edges());
    EXPECT_EQ(decoded.tiles().size(), ordered.tiles().size());
    for (std::size_t t = 0; t < std::min(decoded.tiles().size(),
                                         ordered.tiles().size());
         ++t) {
        EXPECT_EQ(decoded.tiles()[t].tileIndex,
                  ordered.tiles()[t].tileIndex);
        EXPECT_EQ(decoded.tiles()[t].firstEdge,
                  ordered.tiles()[t].firstEdge);
        EXPECT_EQ(decoded.tiles()[t].numEdges,
                  ordered.tiles()[t].numEdges);
    }
    return bytes;
}

/** Expect CodecError from constructing + fully draining a stream. */
void
expectDecodeThrows(const GridPartition &part,
                   const std::vector<unsigned char> &bytes)
{
    EXPECT_THROW(
        {
            EdgeStreamDecoder dec(part, bytes.data(), bytes.size());
            TileChunkSource::Chunk chunk;
            while (dec.next(chunk)) {
            }
        },
        CodecError);
}

/**
 * Seeded random edge set for one tiling: sample (tile, local cell)
 * pairs, keep the ones that land on real (unpadded) vertices.
 */
std::vector<Edge>
randomEdges(const GridPartition &part, std::size_t want,
            std::uint32_t seed, int weight_style)
{
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<std::uint64_t> tile_of(
        0, part.numTiles() - 1);
    std::uniform_int_distribution<std::uint64_t> cell_of(
        0, part.tileCapacity() - 1);
    std::vector<Edge> edges;
    while (edges.size() < want) {
        const std::uint64_t order =
            tile_of(rng) * part.tileCapacity() + cell_of(rng);
        std::uint64_t i = 0;
        std::uint64_t j = 0;
        part.cellOfOrderId(order, i, j);
        if (i >= part.numVertices() || j >= part.numVertices())
            continue;
        Edge e;
        e.src = static_cast<VertexId>(i);
        e.dst = static_cast<VertexId>(j);
        switch (weight_style) {
        case 0:
            e.weight = 1.0;
            break;
        case 1:
            e.weight = 2.5;
            break;
        default:
            e.weight = std::uniform_real_distribution<double>(
                -100.0, 100.0)(rng);
            break;
        }
        edges.push_back(e);
    }
    return edges;
}

// ------------------------------------------------------- round trips

TEST(EdgeCodec, EmptyEdgeListRoundTrips)
{
    const GridPartition part(64, smallTiling());
    const OrderedEdgeList ordered = orderEdges(part, {});
    const std::vector<unsigned char> bytes =
        expectRoundTrip(part, ordered);
    EXPECT_EQ(bytes.size(), 2u); // two zero varints, nothing else
}

TEST(EdgeCodec, SingleEdgeRoundTrips)
{
    const GridPartition part(64, smallTiling());
    expectRoundTrip(part,
                    orderEdges(part, {Edge{3, 17, 1.0}}));
}

TEST(EdgeCodec, SingleEdgePerManyTilesRoundTrips)
{
    const GridPartition part(64, smallTiling());
    std::vector<Edge> edges;
    for (VertexId v = 0; v < 64; v += 4)
        edges.push_back(Edge{v, v, 1.0});
    expectRoundTrip(part, orderEdges(part, std::move(edges)));
}

TEST(EdgeCodec, DenseFullTileRoundTrips)
{
    // Every cell of one tile occupied: all deltas are exactly 1, the
    // smallest possible k, no exceptions.
    const GridPartition part(64, smallTiling());
    std::vector<Edge> edges;
    for (VertexId i = 0; i < 4; ++i)
        for (VertexId j = 0; j < 16; ++j)
            edges.push_back(Edge{i, j, 1.0});
    const OrderedEdgeList ordered =
        orderEdges(part, std::move(edges));
    const std::vector<unsigned char> bytes =
        expectRoundTrip(part, ordered);
    // 64 dense edges must beat one byte per edge by a wide margin.
    EXPECT_LT(bytes.size(), 24u);
}

TEST(EdgeCodec, MaxDegreeRowRoundTrips)
{
    // One source with an edge to every vertex: within a tile the
    // same-row cells are spaced exactly crossbarDim apart.
    const GridPartition part(64, smallTiling());
    std::vector<Edge> edges;
    for (VertexId j = 0; j < 64; ++j)
        edges.push_back(Edge{5, j, 1.0});
    expectRoundTrip(part, orderEdges(part, std::move(edges)));
}

TEST(EdgeCodec, DuplicateFreeSortedRunRoundTrips)
{
    const GridPartition part(128, TilingParams{});
    std::vector<Edge> edges;
    for (VertexId v = 0; v < 128; ++v)
        edges.push_back(Edge{v, (v * 7 + 3) % 128, 1.0});
    expectRoundTrip(part, orderEdges(part, std::move(edges)));
}

TEST(EdgeCodec, DuplicateEdgesWithDistinctWeightsRoundTrip)
{
    // The same cell repeated: zero deltas, and the weights force the
    // raw per-edge mode. Order within a duplicate run is preserved
    // (the sort is stable), so weights must come back in sequence.
    const GridPartition part(64, smallTiling());
    std::vector<Edge> edges;
    for (int r = 0; r < 9; ++r)
        edges.push_back(Edge{2, 6, 1.0 + r});
    expectRoundTrip(part, orderEdges(part, std::move(edges)));
}

TEST(EdgeCodec, DuplicateEdgesWithSharedWeightRoundTrip)
{
    const GridPartition part(64, smallTiling());
    std::vector<Edge> edges(7, Edge{1, 9, 3.25});
    expectRoundTrip(part, orderEdges(part, edges));
}

TEST(EdgeCodec, NearMax32BitVertexIdsRoundTrip)
{
    // The padded grid near 2^32 vertices exceeds 32-bit arithmetic
    // everywhere except the final endpoint cast — exactly the regime
    // where a missed widening would corrupt silently.
    const VertexId v_max = std::numeric_limits<VertexId>::max();
    const GridPartition part(v_max, TilingParams{});
    std::vector<Edge> edges = {
        Edge{v_max - 1, v_max - 1, 1.0},
        Edge{v_max - 2, 0, 1.0},
        Edge{0, v_max - 1, 1.0},
        Edge{v_max - 9, v_max - 3, 2.0},
    };
    expectRoundTrip(part, orderEdges(part, std::move(edges)));
}

TEST(EdgeCodec, FirstTileNotZeroRoundTrips)
{
    const GridPartition part(64, smallTiling());
    // Only cells whose tile index is far from zero.
    std::vector<Edge> edges = {Edge{60, 63, 1.0}, Edge{63, 60, 1.0}};
    const OrderedEdgeList ordered =
        orderEdges(part, std::move(edges));
    ASSERT_GT(ordered.tiles().front().tileIndex, 0u);
    expectRoundTrip(part, ordered);
}

TEST(EdgeCodec, LargeTileGapsRoundTrip)
{
    const GridPartition part(128, TilingParams{});
    std::vector<Edge> edges = {Edge{0, 0, 1.0}, Edge{127, 127, 1.0}};
    expectRoundTrip(part, orderEdges(part, std::move(edges)));
}

TEST(EdgeCodec, NegativeZeroWeightSurvivesBitExactly)
{
    const GridPartition part(64, smallTiling());
    expectRoundTrip(part, orderEdges(part, {Edge{1, 2, -0.0}}));
}

TEST(EdgeCodec, NanPayloadWeightSurvivesBitExactly)
{
    const GridPartition part(64, smallTiling());
    const double quiet = std::bit_cast<double>(
        std::uint64_t{0x7ff8dead'beef0001});
    std::vector<Edge> edges = {Edge{0, 0, quiet}, Edge{0, 1, quiet},
                               Edge{0, 2, 1.0}};
    expectRoundTrip(part, orderEdges(part, std::move(edges)));
}

TEST(EdgeCodec, DenormalAndInfinityWeightsRoundTrip)
{
    const GridPartition part(64, smallTiling());
    std::vector<Edge> edges = {
        Edge{0, 0, std::numeric_limits<double>::denorm_min()},
        Edge{0, 1, std::numeric_limits<double>::infinity()},
        Edge{0, 2, -std::numeric_limits<double>::infinity()},
        Edge{0, 3, std::numeric_limits<double>::min()},
    };
    expectRoundTrip(part, orderEdges(part, std::move(edges)));
}

TEST(EdgeCodec, ConstantNonUnitWeightsUseSharedPattern)
{
    const GridPartition part(64, smallTiling());
    std::vector<Edge> shared;
    std::vector<Edge> raw;
    for (VertexId j = 0; j < 16; ++j) {
        shared.push_back(Edge{0, j, 7.125});
        raw.push_back(Edge{0, j, 7.125 + j});
    }
    const std::vector<unsigned char> shared_bytes =
        expectRoundTrip(part, orderEdges(part, std::move(shared)));
    const std::vector<unsigned char> raw_bytes =
        expectRoundTrip(part, orderEdges(part, std::move(raw)));
    // One shared 8-byte pattern vs 16 raw ones.
    EXPECT_LT(shared_bytes.size() + 100u, raw_bytes.size());
}

TEST(EdgeCodec, ExceptionHeavyDeltasRoundTrip)
{
    // Mostly tiny deltas with a few enormous ones: the big deltas
    // must flow through the exception stream, not widen k for all.
    const GridPartition part(128, TilingParams{});
    std::vector<Edge> edges;
    for (VertexId j = 0; j < 8; ++j)
        edges.push_back(Edge{0, j, 1.0});
    edges.push_back(Edge{7, 127, 1.0}); // far cell, same tile
    for (VertexId j = 0; j < 8; ++j)
        edges.push_back(Edge{1, j, 1.0});
    expectRoundTrip(part, orderEdges(part, std::move(edges)));
}

TEST(EdgeCodec, ZeroDeltaRunsRoundTrip)
{
    // Long duplicate runs: the zero-run coder must cover multi-byte
    // run lengths (>127 forces a two-byte varint).
    const GridPartition part(64, smallTiling());
    std::vector<Edge> edges(300, Edge{2, 11, 1.0});
    edges.push_back(Edge{3, 11, 1.0});
    expectRoundTrip(part, orderEdges(part, std::move(edges)));
}

TEST(EdgeCodec, RandomSmallTilingSweepRoundTrips)
{
    const GridPartition part(61, smallTiling()); // odd |V|: padding
    for (std::uint32_t seed = 1; seed <= 12; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        expectRoundTrip(
            part, orderEdges(part, randomEdges(part, 50 * seed, seed,
                                               seed % 3)));
    }
}

TEST(EdgeCodec, RandomDefaultTilingSweepRoundTrips)
{
    const GridPartition part(5000, TilingParams{});
    for (std::uint32_t seed = 1; seed <= 6; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        expectRoundTrip(
            part, orderEdges(part, randomEdges(part, 2000, 77 + seed,
                                               seed % 3)));
    }
}

TEST(EdgeCodec, RandomBlockedTilingSweepRoundTrips)
{
    TilingParams tiling = smallTiling();
    tiling.blockSize = 32; // multiple blocks: exercise block order
    const GridPartition part(100, tiling);
    for (std::uint32_t seed = 1; seed <= 6; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        expectRoundTrip(
            part, orderEdges(part, randomEdges(part, 400, 990 + seed,
                                               seed % 3)));
    }
}

TEST(EdgeCodec, RmatThroughRealPreprocessingRoundTrips)
{
    // End-to-end shape: the actual sorting constructor, not the
    // test-local reference order.
    const CooGraph g =
        makeRmat({.numVertices = 512, .numEdges = 8192, .seed = 21});
    const GridPartition part(g.numVertices(), TilingParams{});
    const OrderedEdgeList ordered(g, part);
    expectRoundTrip(part, ordered);
}

TEST(EdgeCodec, CursorTilePlanMatchesDirectPreparation)
{
    // The production consumer: TilePlan built from the decode cursor
    // must equal a fresh prepare, metadata included, because warm
    // results are promised byte-identical.
    const CooGraph g =
        makeRmat({.numVertices = 256, .numEdges = 4096, .seed = 5});
    const TilingParams tiling;
    const TilePlan direct(g, tiling);
    const std::vector<unsigned char> bytes = encodeEdgeStream(
        direct.partition, direct.ordered.edges(),
        direct.ordered.tiles());

    EdgeStreamDecoder dec(direct.partition, bytes.data(),
                          bytes.size());
    const TilePlan streamed(g.numVertices(), tiling, dec,
                            direct.fingerprint);

    EXPECT_EQ(streamed.fingerprint, direct.fingerprint);
    expectEdgesBitIdentical(streamed.ordered.edges(),
                            direct.ordered.edges());
    EXPECT_EQ(streamed.meta.totalNnz(), direct.meta.totalNnz());
    ASSERT_EQ(streamed.meta.tiles().size(),
              direct.meta.tiles().size());
    for (std::size_t t = 0; t < direct.meta.tiles().size(); ++t) {
        const TileMeta &a = direct.meta.tiles()[t];
        const TileMeta &b = streamed.meta.tiles()[t];
        EXPECT_EQ(a.tileIndex, b.tileIndex);
        EXPECT_EQ(a.row0, b.row0);
        EXPECT_EQ(a.col0, b.col0);
        EXPECT_EQ(a.nnz, b.nnz);
        EXPECT_EQ(a.crossbarsUsed, b.crossbarsUsed);
        EXPECT_EQ(a.maxRowsProgrammed, b.maxRowsProgrammed);
        EXPECT_EQ(a.rowMask, b.rowMask);
        EXPECT_EQ(a.nnzColumns, b.nnzColumns);
        EXPECT_EQ(a.rowNnz, b.rowNnz);
    }
}

TEST(EdgeCodec, CursorDrainDoesNotCountAsASort)
{
    const CooGraph g =
        makeRmat({.numVertices = 256, .numEdges = 2048, .seed = 11});
    const TilePlan direct(g, TilingParams{});
    const std::vector<unsigned char> bytes = encodeEdgeStream(
        direct.partition, direct.ordered.edges(),
        direct.ordered.tiles());
    const std::uint64_t sorts_before =
        OrderedEdgeList::sortsPerformed();
    EdgeStreamDecoder dec(direct.partition, bytes.data(),
                          bytes.size());
    const OrderedEdgeList decoded(direct.partition, dec);
    EXPECT_EQ(decoded.edges().size(), direct.ordered.edges().size());
    EXPECT_EQ(OrderedEdgeList::sortsPerformed(), sorts_before);
}

TEST(EdgeCodec, CompressionRatioAtScaleBeatsHalfRaw)
{
    // Acceptance bar: <= 0.5x the raw 16-byte edge records on an
    // rmat graph at >= 1M edges.
    const CooGraph g = makeRmat({.numVertices = 131072,
                                 .numEdges = 1u << 20,
                                 .seed = 7});
    const GridPartition part(g.numVertices(), TilingParams{});
    const OrderedEdgeList ordered(g, part);
    const std::vector<unsigned char> bytes =
        encodeEdgeStream(part, ordered.edges(), ordered.tiles());
    const double bytes_per_edge =
        static_cast<double>(bytes.size()) /
        static_cast<double>(ordered.edges().size());
    EXPECT_LE(bytes_per_edge, 8.0)
        << "compressed stream is " << bytes_per_edge
        << " bytes/edge against a raw record of 16";
}

// --------------------------------------------- malformed streams

TEST(EdgeCodec, EncoderRejectsOutOfOrderInput)
{
    const GridPartition part(64, smallTiling());
    // Two edges of one tile in descending cell order: a caller bug
    // the encoder must refuse rather than emit an invalid stream.
    const std::vector<Edge> edges = {Edge{0, 5, 1.0},
                                     Edge{0, 1, 1.0}};
    const std::vector<TileSpan> tiles = {TileSpan{0, 0, 2}};
    EXPECT_THROW(
        encodeEdgeStream(part, edges, tiles), CodecError);
}

TEST(EdgeCodec, EncoderRejectsNonContiguousDirectory)
{
    const GridPartition part(64, smallTiling());
    const std::vector<Edge> edges = {Edge{0, 0, 1.0},
                                     Edge{0, 1, 1.0}};
    const std::vector<TileSpan> tiles = {TileSpan{0, 1, 1}};
    EXPECT_THROW(
        encodeEdgeStream(part, edges, tiles), CodecError);
}

TEST(EdgeCodec, TruncationAtEveryByteIsRejected)
{
    const GridPartition part(64, smallTiling());
    const OrderedEdgeList ordered = orderEdges(
        part, randomEdges(part, 120, 424242, 2));
    const std::vector<unsigned char> bytes =
        encodeEdgeStream(part, ordered.edges(), ordered.tiles());
    ASSERT_GT(bytes.size(), 8u);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        SCOPED_TRACE("cut at " + std::to_string(cut));
        expectDecodeThrows(
            part, std::vector<unsigned char>(bytes.begin(),
                                             bytes.begin() + cut));
    }
}

TEST(EdgeCodec, FlippedBitSweepNeverCrashes)
{
    // Bit flips may or may not be detectable (a flipped weight bit is
    // a different valid stream), but every outcome must be either a
    // clean CodecError or a successful decode of the declared totals
    // — never a crash, hang, or out-of-bounds access (the sanitizer
    // jobs run this test too).
    const GridPartition part(64, smallTiling());
    const OrderedEdgeList ordered = orderEdges(
        part, randomEdges(part, 60, 31337, 2));
    const std::vector<unsigned char> bytes =
        encodeEdgeStream(part, ordered.edges(), ordered.tiles());
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        std::vector<unsigned char> mutated = bytes;
        mutated[bit / 8] ^= static_cast<unsigned char>(
            1u << (bit % 8));
        try {
            EdgeStreamDecoder dec(part, mutated.data(),
                                  mutated.size());
            TileChunkSource::Chunk chunk;
            std::uint64_t edges = 0;
            while (dec.next(chunk))
                edges += chunk.edges.size();
            EXPECT_EQ(edges, dec.totalEdges());
        } catch (const CodecError &) {
            // rejected cleanly: the desired common case
        }
    }
}

TEST(EdgeCodec, RandomGarbageNeverCrashes)
{
    const GridPartition part(128, TilingParams{});
    std::mt19937_64 rng(99);
    for (int round = 0; round < 200; ++round) {
        std::vector<unsigned char> junk(
            std::uniform_int_distribution<std::size_t>(0, 64)(rng));
        for (unsigned char &b : junk)
            b = static_cast<unsigned char>(rng());
        try {
            EdgeStreamDecoder dec(part, junk.data(), junk.size());
            TileChunkSource::Chunk chunk;
            while (dec.next(chunk)) {
            }
        } catch (const CodecError &) {
        }
    }
}

TEST(EdgeCodec, DeclaredEdgeTotalMismatchIsRejected)
{
    // Preamble says two edges, the single tile carries one.
    const GridPartition part(64, smallTiling());
    std::vector<unsigned char> s;
    putV(s, 1); // tiles
    putV(s, 2); // edges (lie)
    putV(s, 0); // tile 0
    putV(s, 1); // one edge
    s.push_back(0); // flags: mode 0, k 0
    putV(s, 0); // first local id
    expectDecodeThrows(part, s);
}

TEST(EdgeCodec, ZeroEdgeTileIsRejected)
{
    const GridPartition part(64, smallTiling());
    std::vector<unsigned char> s;
    putV(s, 1);
    putV(s, 1);
    putV(s, 0);
    putV(s, 0); // numEdges == 0: not a canonical stream
    s.push_back(0);
    putV(s, 0);
    expectDecodeThrows(part, s);
}

TEST(EdgeCodec, TileIndexOutsideGridIsRejected)
{
    const GridPartition part(64, smallTiling());
    std::vector<unsigned char> s;
    putV(s, 1);
    putV(s, 1);
    putV(s, part.numTiles()); // one past the last tile
    putV(s, 1);
    s.push_back(0);
    putV(s, 0);
    expectDecodeThrows(part, s);
}

TEST(EdgeCodec, ZeroTileGapIsRejected)
{
    // Two records for the same tile: violates strict streaming order.
    const GridPartition part(64, smallTiling());
    std::vector<unsigned char> s;
    putV(s, 2);
    putV(s, 2);
    putV(s, 0);
    putV(s, 1);
    s.push_back(0);
    putV(s, 0);
    putV(s, 0); // gap 0 -> same tile again
    putV(s, 1);
    s.push_back(0);
    putV(s, 1);
    expectDecodeThrows(part, s);
}

TEST(EdgeCodec, FirstLocalIdBeyondCapacityIsRejected)
{
    const GridPartition part(64, smallTiling());
    std::vector<unsigned char> s;
    putV(s, 1);
    putV(s, 1);
    putV(s, 0);
    putV(s, 1);
    s.push_back(0);
    putV(s, part.tileCapacity()); // one past the last cell
    expectDecodeThrows(part, s);
}

TEST(EdgeCodec, UnknownWeightModeIsRejected)
{
    const GridPartition part(64, smallTiling());
    std::vector<unsigned char> s;
    putV(s, 1);
    putV(s, 1);
    putV(s, 0);
    putV(s, 1);
    s.push_back(3); // weight mode 3 is unassigned
    putV(s, 0);
    expectDecodeThrows(part, s);
}

TEST(EdgeCodec, PaddingRegionEdgeIsRejected)
{
    // A cell that exists in the padded grid but whose endpoint lies
    // beyond the real vertex count: structurally fine, semantically
    // out of range.
    const GridPartition part(10, smallTiling()); // padded to 16 cols
    std::vector<unsigned char> s;
    putV(s, 1);
    putV(s, 1);
    putV(s, 0);
    putV(s, 1);
    s.push_back(0);
    // Column 12 of tile 0 (vertex 12 >= 10): local id 12 * 4.
    putV(s, 48);
    expectDecodeThrows(part, s);
}

TEST(EdgeCodec, NonCanonicalZeroExceptionIsRejected)
{
    // The exception stream may only carry non-zero high parts; an
    // explicit zero has a canonical run-length representation.
    const GridPartition part(64, smallTiling());
    std::vector<unsigned char> s;
    putV(s, 1);
    putV(s, 2);
    putV(s, 0);
    putV(s, 2);
    s.push_back(0); // k = 0: every delta is an exception
    putV(s, 0);
    putV(s, 0); // zero-run of 0, then...
    putV(s, 0); // ...an exception value of 0
    expectDecodeThrows(part, s);
}

TEST(EdgeCodec, TrailingBytesAreRejected)
{
    const GridPartition part(64, smallTiling());
    const OrderedEdgeList ordered =
        orderEdges(part, {Edge{1, 2, 1.0}});
    std::vector<unsigned char> bytes =
        encodeEdgeStream(part, ordered.edges(), ordered.tiles());
    bytes.push_back(0);
    expectDecodeThrows(part, bytes);
}

TEST(EdgeCodec, ZeroTilesWithDeclaredEdgesIsRejected)
{
    const GridPartition part(64, smallTiling());
    std::vector<unsigned char> s;
    putV(s, 0);
    putV(s, 5);
    EXPECT_THROW(EdgeStreamDecoder(part, s.data(), s.size()),
                 CodecError);
}

TEST(EdgeCodec, ImplausibleDeclaredTotalsAreRejectedBeforeAllocation)
{
    // A tiny stream declaring 2^40 edges must be refused up front —
    // the decode-expansion bound is what makes a hostile artifact
    // unable to force an unbounded allocation.
    const GridPartition part(64, smallTiling());
    std::vector<unsigned char> s;
    putV(s, 1);
    putV(s, std::uint64_t{1} << 40);
    EXPECT_THROW(EdgeStreamDecoder(part, s.data(), s.size()),
                 CodecError);

    std::vector<unsigned char> t;
    putV(t, std::uint64_t{1} << 40); // tile count also bounded
    putV(t, std::uint64_t{1} << 40);
    EXPECT_THROW(EdgeStreamDecoder(part, t.data(), t.size()),
                 CodecError);
}

TEST(EdgeCodec, EmptyBufferIsRejected)
{
    const GridPartition part(64, smallTiling());
    const std::vector<unsigned char> empty;
    EXPECT_THROW(EdgeStreamDecoder(part, empty.data(), empty.size()),
                 CodecError);
}

TEST(EdgeCodec, OverlongVarintIsRejected)
{
    const GridPartition part(64, smallTiling());
    // Eleven continuation bytes: past any valid 64-bit varint.
    const std::vector<unsigned char> s(11, 0xff);
    EXPECT_THROW(EdgeStreamDecoder(part, s.data(), s.size()),
                 CodecError);
}

} // namespace
} // namespace graphr
