/**
 * @file
 * Bit-exactness and dispatch-policy tests for the SIMD crossbar MVM
 * datapath (rram/simd/). The contract under test: every kernel tier
 * (scalar, SSE, AVX2) computes identical mod-2^64 results for any
 * input, so swapping tiers can never change a simulation output.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "rram/crossbar.hh"
#include "rram/device_params.hh"
#include "rram/simd/simd.hh"

namespace graphr
{
namespace
{

std::vector<simd::Level>
supportedLevels()
{
    std::vector<simd::Level> levels;
    for (const simd::Level level :
         {simd::Level::kScalar, simd::Level::kSse,
          simd::Level::kAvx2}) {
        if (simd::levelSupported(level))
            levels.push_back(level);
    }
    return levels;
}

// ------------------------------------------------------------ kernels

TEST(SimdKernelTest, AxpyAgreesAcrossTiersAtAllWidths)
{
    // Every width from 1 to 100 covers all vector-tail combinations
    // (AVX2 strides 8 columns, SSE 4, plus scalar remainders).
    Rng rng(42);
    for (std::size_t n = 1; n <= 100; ++n) {
        std::vector<std::uint16_t> row(n);
        for (auto &v : row)
            v = static_cast<std::uint16_t>(rng.below(65536));
        const std::uint64_t in = rng.below(65536);
        std::vector<std::uint64_t> base(n);
        for (auto &v : base)
            v = rng.next();

        std::vector<std::uint64_t> reference;
        for (const simd::Level level : supportedLevels()) {
            std::vector<std::uint64_t> acc = base;
            simd::kernelsFor(level).mvmRowAxpy(row.data(), n,
                                               in, acc.data());
            if (reference.empty())
                reference = acc;
            else
                EXPECT_EQ(acc, reference)
                    << "tier " << simd::levelName(level)
                    << " diverges at width " << n;
        }
        // The scalar tier is the executable spec: check it against a
        // direct reimplementation once per width.
        std::vector<std::uint64_t> expect = base;
        for (std::size_t c = 0; c < n; ++c)
            expect[c] += in * row[c];
        EXPECT_EQ(reference, expect) << "width " << n;
    }
}

TEST(SimdKernelTest, AxpyMaxValuesDoNotOverflowLanes)
{
    // 0xFFFF * 0xFFFF accumulated many times stays well inside 64
    // bits; the kernels must not saturate or wrap 32-bit lanes.
    const std::size_t n = 17;
    std::vector<std::uint16_t> row(n, 0xFFFF);
    for (const simd::Level level : supportedLevels()) {
        std::vector<std::uint64_t> acc(n, 0);
        for (int rep = 0; rep < 1000; ++rep)
            simd::kernelsFor(level).mvmRowAxpy(row.data(), n,
                                               0xFFFF, acc.data());
        for (const std::uint64_t v : acc)
            EXPECT_EQ(v, 1000ull * 0xFFFFull * 0xFFFFull)
                << simd::levelName(level);
    }
}

// ----------------------------------------------------------- dispatch

TEST(SimdDispatchTest, LevelNamesRoundTrip)
{
    for (const simd::Level level :
         {simd::Level::kScalar, simd::Level::kSse,
          simd::Level::kAvx2}) {
        const auto parsed = simd::parseLevelName(simd::levelName(level));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, level);
    }
    EXPECT_FALSE(simd::parseLevelName("auto").has_value());
    EXPECT_FALSE(simd::parseLevelName("").has_value());
    EXPECT_FALSE(simd::parseLevelName("avx512").has_value());
}

TEST(SimdDispatchTest, ResolvePolicy)
{
    using simd::Level;
    using simd::detail::resolveLevel;
    // No override: the best supported tier wins.
    EXPECT_EQ(resolveLevel(nullptr, Level::kAvx2), Level::kAvx2);
    EXPECT_EQ(resolveLevel("", Level::kSse), Level::kSse);
    EXPECT_EQ(resolveLevel("auto", Level::kAvx2), Level::kAvx2);
    // Explicit lower tiers are honoured.
    EXPECT_EQ(resolveLevel("scalar", Level::kAvx2), Level::kScalar);
    EXPECT_EQ(resolveLevel("sse", Level::kAvx2), Level::kSse);
    // Requests above the host's best tier fall back to the best.
    EXPECT_EQ(resolveLevel("avx2", Level::kSse), Level::kSse);
    EXPECT_EQ(resolveLevel("avx2", Level::kScalar), Level::kScalar);
    // Unknown names fall back to the best.
    EXPECT_EQ(resolveLevel("turbo9000", Level::kAvx2), Level::kAvx2);
}

TEST(SimdDispatchTest, ActiveLevelIsSupported)
{
    EXPECT_TRUE(simd::levelSupported(simd::activeLevel()));
    EXPECT_EQ(simd::activeKernels().level, simd::activeLevel());
    EXPECT_TRUE(simd::levelSupported(simd::bestSupportedLevel()));
}

TEST(SimdDispatchTest, KernelsForScalarAlwaysAvailable)
{
    const simd::Kernels &k = simd::kernelsFor(simd::Level::kScalar);
    EXPECT_EQ(k.level, simd::Level::kScalar);
    ASSERT_NE(k.mvmRowAxpy, nullptr);
}

// ----------------------------------------------------- crossbar paths

/** Program a pseudo-random crossbar; occupied < dim leaves gaps. */
Crossbar
makeCrossbar(std::uint32_t dim, std::uint32_t occupied,
             std::uint64_t seed)
{
    DeviceParams params;
    Crossbar cb(dim, params);
    Rng rng(seed);
    for (std::uint32_t r = 0; r < occupied; ++r) {
        const std::uint32_t row =
            occupied == dim ? r : r * dim / std::max(occupied, 1u);
        for (std::uint32_t c = 0; c < dim; ++c) {
            // Sprinkle zeros so sparse columns exist inside occupied
            // rows too.
            const auto raw = static_cast<FixedPoint::Raw>(
                rng.below(4) == 0 ? 0 : rng.below(65536));
            cb.programValue(row, c, FixedPoint::fromRaw(raw, 0));
        }
    }
    return cb;
}

TEST(CrossbarSimdTest, MvmIdenticalAcrossTiers)
{
    // Dims straddle every vector width boundary: smaller than one
    // SSE/AVX2 vector, non-multiples, exact multiples, and the
    // paper-scale 64.
    for (const std::uint32_t dim :
         {1u, 2u, 3u, 5u, 8u, 13u, 16u, 31u, 32u, 33u, 48u, 63u,
          64u}) {
        for (const bool sparse : {false, true}) {
            const std::uint32_t occupied =
                sparse ? std::max(1u, dim / 4) : dim;
            Rng rng(dim * 2 + sparse);
            std::vector<FixedPoint::Raw> x(dim);
            for (auto &v : x)
                v = static_cast<FixedPoint::Raw>(rng.below(65536));

            std::vector<std::uint64_t> reference;
            for (const simd::Level level : supportedLevels()) {
                Crossbar cb = makeCrossbar(dim, occupied, 7 + dim);
                cb.setSimdKernels(simd::kernelsFor(level));
                const std::vector<std::uint64_t> got = cb.mvmRaw(x);
                if (reference.empty())
                    reference = got;
                else
                    EXPECT_EQ(got, reference)
                        << "tier " << simd::levelName(level)
                        << " dim " << dim << " sparse " << sparse;
            }
        }
    }
}

TEST(CrossbarSimdTest, MvmMatchesDigitalReference)
{
    // The dispatched path must still equal the digital fixed-point
    // SpMV: y[c] = sum_r x[r] * W[r][c] in plain 64-bit integers.
    const std::uint32_t dim = 33;
    Crossbar cb = makeCrossbar(dim, dim, 3);
    Rng rng(5);
    std::vector<FixedPoint::Raw> x(dim);
    for (auto &v : x)
        v = static_cast<FixedPoint::Raw>(rng.below(65536));
    const std::vector<std::uint64_t> got = cb.mvmRaw(x);
    for (std::uint32_t c = 0; c < dim; ++c) {
        std::uint64_t expect = 0;
        for (std::uint32_t r = 0; r < dim; ++r)
            expect += static_cast<std::uint64_t>(x[r]) *
                      cb.storedRaw(r, c);
        EXPECT_EQ(got[c], expect) << "col " << c;
    }
}

TEST(CrossbarSimdTest, SelectRowIdenticalAcrossTiers)
{
    for (const std::uint32_t dim : {1u, 7u, 32u, 63u}) {
        std::vector<FixedPoint::Raw> reference;
        for (const simd::Level level : supportedLevels()) {
            Crossbar cb = makeCrossbar(dim, dim, 11);
            cb.setSimdKernels(simd::kernelsFor(level));
            const std::vector<FixedPoint::Raw> got =
                cb.selectRow(dim / 2);
            if (reference.empty())
                reference = got;
            else
                EXPECT_EQ(got, reference)
                    << simd::levelName(level) << " dim " << dim;
        }
    }
}

TEST(CrossbarSimdTest, VariationPathUnaffectedByKernelTier)
{
    // With variation on, the scalar slice-serial walk runs whatever
    // kernel set is installed: identical noise stream, identical
    // outputs — swapping tiers must not perturb the RNG order.
    const std::uint32_t dim = 16;
    Rng rng(9);
    std::vector<FixedPoint::Raw> x(dim);
    for (auto &v : x)
        v = static_cast<FixedPoint::Raw>(rng.below(65536));

    std::vector<std::uint64_t> reference;
    for (const simd::Level level : supportedLevels()) {
        Crossbar cb = makeCrossbar(dim, dim, 13);
        cb.setSimdKernels(simd::kernelsFor(level));
        cb.setVariation(1.5, 77);
        std::vector<std::uint64_t> out = cb.mvmRaw(x);
        // Two back-to-back MVMs consume RNG draws in sequence; both
        // must match across tiers.
        const std::vector<std::uint64_t> out2 = cb.mvmRaw(x);
        out.insert(out.end(), out2.begin(), out2.end());
        if (reference.empty())
            reference = out;
        else
            EXPECT_EQ(out, reference) << simd::levelName(level);
    }
}

TEST(CrossbarSimdTest, EmptyCrossbarFastAndZero)
{
    DeviceParams params;
    for (const simd::Level level : supportedLevels()) {
        Crossbar cb(8, params);
        cb.setSimdKernels(simd::kernelsFor(level));
        const std::vector<FixedPoint::Raw> x(8, 0xFFFF);
        const std::vector<std::uint64_t> out = cb.mvmRaw(x);
        EXPECT_EQ(out, std::vector<std::uint64_t>(8, 0));
    }
}

} // namespace
} // namespace graphr
