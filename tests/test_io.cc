/**
 * @file
 * Tests for graph serialisation (text and binary round trips).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generator.hh"
#include "graph/io.hh"

namespace graphr
{
namespace
{

TEST(TextIoTest, RoundTripPreservesGraph)
{
    const CooGraph g = makeRmat({.numVertices = 100,
                                 .numEdges = 800,
                                 .maxWeight = 9.0,
                                 .seed = 71});
    std::stringstream buffer;
    saveEdgeListText(g, buffer);
    const CooGraph back = loadEdgeListText(buffer);
    ASSERT_EQ(back.numVertices(), g.numVertices());
    ASSERT_EQ(back.numEdges(), g.numEdges());
    for (std::size_t i = 0; i < g.numEdges(); ++i)
        EXPECT_EQ(back.edges()[i], g.edges()[i]);
}

TEST(TextIoTest, ParsesTwoColumnUnweighted)
{
    std::stringstream in("0 1\n1 2\n2 0\n");
    const CooGraph g = loadEdgeListText(in);
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_EQ(g.numEdges(), 3u);
    for (const Edge &e : g.edges())
        EXPECT_DOUBLE_EQ(e.weight, 1.0);
}

TEST(TextIoTest, SkipsCommentsAndBlankLines)
{
    std::stringstream in("# SNAP style header\n\n0 1 2.5\n# mid\n1 0\n");
    const CooGraph g = loadEdgeListText(in);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_DOUBLE_EQ(g.edges()[0].weight, 2.5);
}

TEST(TextIoTest, HonorsVertexCountHeader)
{
    std::stringstream in("# vertices: 50\n0 1\n");
    const CooGraph g = loadEdgeListText(in);
    EXPECT_EQ(g.numVertices(), 50u);
}

TEST(TextIoTest, VertexCountFromMaxIdWithoutHeader)
{
    std::stringstream in("3 9\n9 3\n");
    const CooGraph g = loadEdgeListText(in);
    EXPECT_EQ(g.numVertices(), 10u);
}

TEST(TextIoTest, MalformedLineIsFatal)
{
    std::stringstream in("0 1\nnot an edge\n");
    EXPECT_EXIT(loadEdgeListText(in), ::testing::ExitedWithCode(1),
                "malformed");
}

TEST(BinaryIoTest, RoundTripExact)
{
    const CooGraph g = makeRmat({.numVertices = 200,
                                 .numEdges = 1500,
                                 .maxWeight = 15.0,
                                 .seed = 72});
    std::stringstream buffer;
    saveBinary(g, buffer);
    const CooGraph back = loadBinary(buffer);
    ASSERT_EQ(back.numVertices(), g.numVertices());
    ASSERT_EQ(back.numEdges(), g.numEdges());
    for (std::size_t i = 0; i < g.numEdges(); ++i)
        EXPECT_EQ(back.edges()[i], g.edges()[i]);
}

TEST(BinaryIoTest, RejectsWrongMagic)
{
    std::stringstream in("NOPE....");
    EXPECT_EXIT(loadBinary(in), ::testing::ExitedWithCode(1),
                "not a GraphR");
}

TEST(BinaryIoTest, RejectsTruncatedFile)
{
    const CooGraph g = makeChain(8);
    std::stringstream buffer;
    saveBinary(g, buffer);
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream cut(bytes);
    EXPECT_EXIT(loadBinary(cut), ::testing::ExitedWithCode(1),
                "truncated");
}

TEST(BinaryIoTest, EmptyGraphRoundTrips)
{
    const CooGraph g(5, {});
    std::stringstream buffer;
    saveBinary(g, buffer);
    const CooGraph back = loadBinary(buffer);
    EXPECT_EQ(back.numVertices(), 5u);
    EXPECT_EQ(back.numEdges(), 0u);
}

TEST(FileIoTest, TextAndBinaryFilesWork)
{
    const CooGraph g = makeStar(16);
    const std::string text_path = "/tmp/graphr_io_test.txt";
    const std::string bin_path = "/tmp/graphr_io_test.bin";
    saveEdgeListText(g, text_path);
    saveBinary(g, bin_path);
    const CooGraph t = loadEdgeListText(text_path);
    const CooGraph b = loadBinary(bin_path);
    EXPECT_EQ(t.numEdges(), g.numEdges());
    EXPECT_EQ(b.numEdges(), g.numEdges());
}

} // namespace
} // namespace graphr
