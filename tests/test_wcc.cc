/**
 * @file
 * Tests for weakly connected components: golden label propagation,
 * the union-find reference, and the GraphR add-op mapping.
 */

#include <gtest/gtest.h>

#include "algorithms/wcc.hh"
#include "graph/generator.hh"
#include "graphr/node.hh"

namespace graphr
{
namespace
{

TEST(WccTest, SingleChainIsOneComponent)
{
    const CooGraph g = makeChain(20);
    const WccResult res = wcc(g);
    EXPECT_EQ(res.numComponents, 1u);
    for (VertexId v = 0; v < 20; ++v)
        EXPECT_EQ(res.labels[v], 0u);
}

TEST(WccTest, DisconnectedPiecesCounted)
{
    // Two chains and one isolated vertex: 3 components.
    CooGraph g(9, {});
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(3, 4);
    g.addEdge(4, 5);
    // vertices 6,7 joined; 8 isolated
    g.addEdge(6, 7);
    const WccResult res = wcc(g);
    EXPECT_EQ(res.numComponents, 4u);
    EXPECT_EQ(res.labels[2], 0u);
    EXPECT_EQ(res.labels[5], 3u);
    EXPECT_EQ(res.labels[7], 6u);
    EXPECT_EQ(res.labels[8], 8u);
}

TEST(WccTest, DirectionIgnored)
{
    // 0 -> 1 and 2 -> 1: weak connectivity joins all three.
    CooGraph g(3, {});
    g.addEdge(0, 1);
    g.addEdge(2, 1);
    const WccResult res = wcc(g);
    EXPECT_EQ(res.numComponents, 1u);
}

TEST(WccTest, MatchesUnionFindOnRandomGraphs)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
        const CooGraph g = makeRmat({.numVertices = 300,
                                     .numEdges = 500, // sparse: many CCs
                                     .seed = seed});
        const WccResult lp = wcc(g);
        const WccResult uf = wccUnionFind(g);
        EXPECT_EQ(lp.numComponents, uf.numComponents) << "seed " << seed;
        for (VertexId v = 0; v < g.numVertices(); ++v)
            EXPECT_EQ(lp.labels[v], uf.labels[v])
                << "seed " << seed << " vertex " << v;
    }
}

TEST(WccTest, LabelsAreComponentMinima)
{
    const CooGraph g = makeRmat(
        {.numVertices = 200, .numEdges = 400, .seed = 9});
    const WccResult res = wcc(g);
    // Property: every vertex's label is <= its own id and is itself
    // labelled by itself (a component representative).
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_LE(res.labels[v], v);
        EXPECT_EQ(res.labels[res.labels[v]], res.labels[v]);
    }
}

TEST(SymmetrizeTest, AddsReverseEdges)
{
    CooGraph g(3, {});
    g.addEdge(0, 1, 5.0);
    g.addEdge(2, 2, 1.0); // self loop: not duplicated
    const CooGraph sym = symmetrize(g);
    EXPECT_EQ(sym.numEdges(), 3u);
}

TEST(WccGraphRTest, FunctionalMatchesGolden)
{
    const CooGraph g = makeRmat(
        {.numVertices = 80, .numEdges = 150, .seed = 73});
    GraphRConfig cfg;
    cfg.tiling.crossbarDim = 4;
    cfg.tiling.crossbarsPerGe = 2;
    cfg.tiling.numGe = 2;
    cfg.functional = true;
    GraphRNode node(cfg);

    std::vector<VertexId> labels;
    const SimReport rep = node.runWcc(g, &labels);
    const WccResult golden = wcc(g);
    ASSERT_EQ(labels.size(), golden.labels.size());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(labels[v], golden.labels[v]) << "vertex " << v;
    EXPECT_GT(rep.iterations, 0u);
    EXPECT_EQ(rep.algorithm, "wcc");
}

TEST(WccGraphRTest, TimingModeReportsSchedule)
{
    const CooGraph g = makeRmat(
        {.numVertices = 2000, .numEdges = 8000, .seed = 74});
    GraphRNode node; // paper configuration, timing-only
    std::vector<VertexId> labels;
    const SimReport rep = node.runWcc(g, &labels);
    EXPECT_GT(rep.seconds, 0.0);
    EXPECT_GT(rep.joules, 0.0);
    EXPECT_GT(rep.tilesProcessed, 0u);
    const WccResult golden = wcc(g);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(labels[v], golden.labels[v]);
}

TEST(WccGraphRTest, ComponentCountOnGrid)
{
    // A grid is fully connected: one component.
    const CooGraph g = makeGrid2d(8, 8);
    GraphRNode node;
    std::vector<VertexId> labels;
    node.runWcc(g, &labels);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(labels[v], 0u);
}

} // namespace
} // namespace graphr
