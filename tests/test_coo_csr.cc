/**
 * @file
 * Unit tests for the COO container and CSR/CSC adjacency builder.
 */

#include <gtest/gtest.h>

#include "graph/coo.hh"
#include "graph/csr.hh"

namespace graphr
{
namespace
{

CooGraph
paperGraph()
{
    // The 8-vertex graph of paper Fig. 5(a).
    CooGraph g(8, {});
    const std::pair<int, int> edges[] = {
        {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 0}, {3, 0}, {3, 1},
        {4, 1}, {5, 0}, {5, 1}, {6, 0}, {6, 1}, {6, 2}, {6, 3},
        {7, 1}, {7, 2}, {4, 6}, {4, 7}, {5, 6}, {5, 7}, {6, 4},
        {6, 5}, {7, 4}, {7, 6}, {7, 7},
    };
    for (const auto &[s, d] : edges)
        g.addEdge(static_cast<VertexId>(s), static_cast<VertexId>(d));
    return g;
}

TEST(CooTest, ConstructionAndCounts)
{
    const CooGraph g = paperGraph();
    EXPECT_EQ(g.numVertices(), 8u);
    EXPECT_EQ(g.numEdges(), 25u);
}

TEST(CooTest, DegreesMatchPaperFigure)
{
    const CooGraph g = paperGraph();
    const auto out = g.outDegrees();
    const auto in = g.inDegrees();
    EXPECT_EQ(out[0], 2u);
    EXPECT_EQ(out[6], 6u);
    EXPECT_EQ(out[7], 5u);
    std::uint64_t total_out = 0;
    std::uint64_t total_in = 0;
    for (VertexId v = 0; v < 8; ++v) {
        total_out += out[v];
        total_in += in[v];
    }
    EXPECT_EQ(total_out, g.numEdges());
    EXPECT_EQ(total_in, g.numEdges());
}

TEST(CooTest, SortBySourceOrdersPairs)
{
    CooGraph g(4, {});
    g.addEdge(3, 1);
    g.addEdge(0, 2);
    g.addEdge(3, 0);
    g.addEdge(1, 3);
    g.sortBySource();
    const auto edges = g.edges();
    for (std::size_t i = 1; i < edges.size(); ++i) {
        const bool ordered =
            edges[i - 1].src < edges[i].src ||
            (edges[i - 1].src == edges[i].src &&
             edges[i - 1].dst <= edges[i].dst);
        EXPECT_TRUE(ordered);
    }
}

TEST(CooTest, DedupeRemovesDuplicatePairs)
{
    CooGraph g(3, {});
    g.addEdge(0, 1, 5.0);
    g.addEdge(0, 1, 7.0);
    g.addEdge(1, 2);
    g.dedupe();
    EXPECT_EQ(g.numEdges(), 2u);
}

TEST(CooTest, RemoveSelfLoops)
{
    CooGraph g(3, {});
    g.addEdge(0, 0);
    g.addEdge(0, 1);
    g.addEdge(2, 2);
    g.removeSelfLoops();
    EXPECT_EQ(g.numEdges(), 1u);
    EXPECT_EQ(g.edges()[0].dst, 1u);
}

TEST(CooTest, DensityMatchesDefinition)
{
    const CooGraph g = paperGraph();
    EXPECT_DOUBLE_EQ(g.density(), 25.0 / 64.0);
}

TEST(CsrTest, OutNeighborsMatchEdges)
{
    const CooGraph g = paperGraph();
    const CsrGraph csr(g, CsrGraph::Direction::kOut);
    EXPECT_EQ(csr.numEdges(), g.numEdges());
    EXPECT_EQ(csr.degree(6), 6u);

    std::uint64_t found = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        found += csr.neighbors(v).size();
    EXPECT_EQ(found, g.numEdges());

    // Every COO edge appears under its source.
    for (const Edge &e : g.edges()) {
        bool present = false;
        for (const Adjacency &adj : csr.neighbors(e.src))
            present |= adj.neighbor == e.dst;
        EXPECT_TRUE(present) << e.src << "->" << e.dst;
    }
}

TEST(CsrTest, InNeighborsMatchEdges)
{
    const CooGraph g = paperGraph();
    const CsrGraph csc(g, CsrGraph::Direction::kIn);
    for (const Edge &e : g.edges()) {
        bool present = false;
        for (const Adjacency &adj : csc.neighbors(e.dst))
            present |= adj.neighbor == e.src;
        EXPECT_TRUE(present);
    }
}

TEST(CsrTest, WeightsPreserved)
{
    CooGraph g(3, {});
    g.addEdge(0, 1, 2.5);
    g.addEdge(1, 2, 7.25);
    const CsrGraph csr(g, CsrGraph::Direction::kOut);
    EXPECT_DOUBLE_EQ(csr.neighbors(0)[0].weight, 2.5);
    EXPECT_DOUBLE_EQ(csr.neighbors(1)[0].weight, 7.25);
}

TEST(CsrTest, OffsetsMonotone)
{
    const CooGraph g = paperGraph();
    const CsrGraph csr(g, CsrGraph::Direction::kOut);
    const auto offsets = csr.offsets();
    ASSERT_EQ(offsets.size(), g.numVertices() + 1);
    for (std::size_t i = 1; i < offsets.size(); ++i)
        EXPECT_LE(offsets[i - 1], offsets[i]);
    EXPECT_EQ(offsets.back(), g.numEdges());
}

} // namespace
} // namespace graphr
