/**
 * @file
 * Unit tests for the synthetic graph generators and named datasets.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/datasets.hh"
#include "graph/generator.hh"

namespace graphr
{
namespace
{

TEST(RmatTest, ProducesRequestedCounts)
{
    RmatParams p;
    p.numVertices = 1000;
    p.numEdges = 5000;
    const CooGraph g = makeRmat(p);
    EXPECT_EQ(g.numVertices(), 1000u);
    EXPECT_EQ(g.numEdges(), 5000u);
    for (const Edge &e : g.edges()) {
        EXPECT_LT(e.src, 1000u);
        EXPECT_LT(e.dst, 1000u);
        EXPECT_NE(e.src, e.dst); // self loops removed by default
    }
}

TEST(RmatTest, DeterministicForSeed)
{
    RmatParams p;
    p.numVertices = 256;
    p.numEdges = 1024;
    p.seed = 5;
    const CooGraph a = makeRmat(p);
    const CooGraph b = makeRmat(p);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    for (std::size_t i = 0; i < a.numEdges(); ++i)
        EXPECT_EQ(a.edges()[i], b.edges()[i]);
}

TEST(RmatTest, SkewedDegreeDistribution)
{
    RmatParams p;
    p.numVertices = 4096;
    p.numEdges = 40960;
    const CooGraph g = makeRmat(p);
    const auto deg = g.outDegrees();
    EdgeId max_deg = 0;
    for (EdgeId d : deg)
        max_deg = std::max(max_deg, d);
    const double mean =
        static_cast<double>(g.numEdges()) / g.numVertices();
    // R-MAT hubs should far exceed the mean degree.
    EXPECT_GT(static_cast<double>(max_deg), 8.0 * mean);
}

TEST(RmatTest, WeightsWithinRange)
{
    RmatParams p;
    p.numVertices = 128;
    p.numEdges = 512;
    p.maxWeight = 15.0;
    const CooGraph g = makeRmat(p);
    for (const Edge &e : g.edges()) {
        EXPECT_GE(e.weight, 1.0);
        EXPECT_LE(e.weight, 15.0);
        EXPECT_DOUBLE_EQ(e.weight, std::floor(e.weight));
    }
}

TEST(ErdosRenyiTest, CountsAndNoSelfLoops)
{
    const CooGraph g = makeErdosRenyi(500, 2000, 3);
    EXPECT_EQ(g.numVertices(), 500u);
    EXPECT_EQ(g.numEdges(), 2000u);
    for (const Edge &e : g.edges())
        EXPECT_NE(e.src, e.dst);
}

TEST(Grid2dTest, StructureIsBidirectional4Connected)
{
    const CooGraph g = makeGrid2d(5, 4);
    EXPECT_EQ(g.numVertices(), 20u);
    // Edges: horizontal 4*4*2 + vertical 5*3*2 = 62.
    EXPECT_EQ(g.numEdges(), 62u);
    // Every edge has its reverse with the same weight.
    for (const Edge &e : g.edges()) {
        bool reverse = false;
        for (const Edge &r : g.edges()) {
            if (r.src == e.dst && r.dst == e.src &&
                r.weight == e.weight) {
                reverse = true;
                break;
            }
        }
        EXPECT_TRUE(reverse);
    }
}

TEST(SimpleTopologiesTest, ChainStarComplete)
{
    const CooGraph chain = makeChain(10);
    EXPECT_EQ(chain.numEdges(), 9u);
    const CooGraph star = makeStar(10);
    EXPECT_EQ(star.numEdges(), 9u);
    EXPECT_EQ(star.outDegrees()[0], 9u);
    const CooGraph complete = makeComplete(5);
    EXPECT_EQ(complete.numEdges(), 20u);
}

TEST(BipartiteTest, EdgesGoUserToItem)
{
    const CooGraph g = makeBipartiteRatings(100, 20, 1000, 9);
    EXPECT_EQ(g.numVertices(), 120u);
    EXPECT_EQ(g.numEdges(), 1000u);
    for (const Edge &e : g.edges()) {
        EXPECT_LT(e.src, 100u);
        EXPECT_GE(e.dst, 100u);
        EXPECT_GE(e.weight, 1.0);
        EXPECT_LE(e.weight, 5.0);
    }
}

TEST(DatasetTest, TableHasSevenEntries)
{
    EXPECT_EQ(allDatasets().size(), 7u);
    EXPECT_EQ(datasetInfo(DatasetId::kWikiVote).shortName, "WV");
    EXPECT_EQ(datasetInfo(DatasetId::kNetflix).bipartite, true);
}

TEST(DatasetTest, ScaledGenerationApproximatesDensity)
{
    const DatasetInfo &info = datasetInfo(DatasetId::kWikiVote);
    const CooGraph g = makeDataset(DatasetId::kWikiVote, 4.0);
    const double paper_density =
        static_cast<double>(info.paperEdges) /
        (static_cast<double>(info.paperVertices) * info.paperVertices);
    // Vertex count scales by sqrt(4)=2, edges by 4: density preserved.
    EXPECT_NEAR(g.density() / paper_density, 1.0, 0.25);
}

TEST(DatasetTest, NetflixStandInIsBipartite)
{
    const CooGraph g = makeDataset(DatasetId::kNetflix, 512.0);
    const DatasetInfo &info = datasetInfo(DatasetId::kNetflix);
    EXPECT_EQ(g.numEdges(),
              static_cast<EdgeId>(info.paperEdges / 512.0));
}

} // namespace
} // namespace graphr
