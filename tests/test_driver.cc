/**
 * @file
 * Unit tests for the workload driver: param parsing, registries
 * (including unknown-name errors), dataset resolution, CLI argument
 * parsing, end-to-end runs, and a golden-file check of the JSON
 * report for a fixed-seed R-MAT PageRank run.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "driver/cli.hh"
#include "driver/driver.hh"
#include "driver/run_result.hh"

namespace graphr::driver
{
namespace
{

// ------------------------------------------------------------ ParamMap

TEST(ParamMapTest, ParsesKeyValuePairs)
{
    const ParamMap map = ParamMap::parse("a=1,b=two,c=3.5");
    EXPECT_EQ(map.size(), 3u);
    EXPECT_EQ(map.getInt("a", 0), 1);
    EXPECT_EQ(map.getString("b"), "two");
    EXPECT_DOUBLE_EQ(map.getDouble("c", 0.0), 3.5);
}

TEST(ParamMapTest, EmptyAndDefaults)
{
    const ParamMap map = ParamMap::parse("");
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.getInt("missing", 7), 7);
    EXPECT_EQ(map.getString("missing", "d"), "d");
    EXPECT_TRUE(map.getBool("missing", true));
}

TEST(ParamMapTest, MalformedEntriesThrow)
{
    EXPECT_THROW(ParamMap::parse("novalue"), DriverError);
    EXPECT_THROW(ParamMap::parse("=x"), DriverError);
}

TEST(ParamMapTest, BadTypedValuesThrow)
{
    const ParamMap map = ParamMap::parse("n=abc,f=1.2.3,b=maybe");
    EXPECT_THROW(map.getInt("n", 0), DriverError);
    EXPECT_THROW(map.getDouble("f", 0.0), DriverError);
    EXPECT_THROW(map.getBool("b", false), DriverError);
}

TEST(ParamMapTest, LastDuplicateWins)
{
    const ParamMap map = ParamMap::parse("a=1,a=2");
    EXPECT_EQ(map.getInt("a", 0), 2);
    EXPECT_EQ(map.size(), 1u);
}

TEST(ParamMapTest, TracksUnreadKeys)
{
    const ParamMap map = ParamMap::parse("used=1,unused=2");
    map.getInt("used", 0);
    const std::vector<std::string> unread = map.unreadKeys();
    ASSERT_EQ(unread.size(), 1u);
    EXPECT_EQ(unread[0], "unused");
    EXPECT_THROW(map.rejectUnread("test"), DriverError);
}

// ---------------------------------------------------- workload registry

TEST(WorkloadRegistryTest, HasAllSixAlgorithms)
{
    const std::vector<std::string> names = allWorkloadNames();
    const std::set<std::string> set(names.begin(), names.end());
    EXPECT_EQ(set, (std::set<std::string>{"spmv", "pagerank", "bfs",
                                          "sssp", "wcc", "cf"}));
}

TEST(WorkloadRegistryTest, LookupByName)
{
    EXPECT_EQ(findWorkload("pagerank").kind, WorkloadKind::kPageRank);
    EXPECT_EQ(findWorkload("wcc").kind, WorkloadKind::kWcc);
}

TEST(WorkloadRegistryTest, UnknownNameThrowsWithKnownList)
{
    try {
        findWorkload("page-rank");
        FAIL() << "expected DriverError";
    } catch (const DriverError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("unknown workload"), std::string::npos);
        EXPECT_NE(msg.find("pagerank"), std::string::npos);
    }
}

TEST(WorkloadRegistryTest, ParamsApplied)
{
    const Workload w = makeWorkload(
        "pagerank", ParamMap::parse("damping=0.9,iterations=5"));
    EXPECT_DOUBLE_EQ(w.params.pagerank.damping, 0.9);
    EXPECT_EQ(w.params.pagerank.maxIterations, 5);

    const Workload s =
        makeWorkload("sssp", ParamMap::parse("source=3"));
    EXPECT_EQ(s.params.source, 3u);

    const Workload c =
        makeWorkload("cf", ParamMap::parse("features=8,epochs=2"));
    EXPECT_EQ(c.params.cf.featureLength, 8);
    EXPECT_EQ(c.params.cf.epochs, 2);
}

TEST(WorkloadRegistryTest, UnknownParamKeyThrows)
{
    EXPECT_THROW(makeWorkload("pagerank", ParamMap::parse("dampng=0.9")),
                 DriverError);
    // A key of a *different* workload is tolerated (sweeps share one
    // parameter map across workloads).
    EXPECT_NO_THROW(
        makeWorkload("pagerank", ParamMap::parse("source=2")));
}

TEST(WorkloadRegistryTest, InvalidValuesThrow)
{
    EXPECT_THROW(
        makeWorkload("pagerank", ParamMap::parse("damping=1.5")),
        DriverError);
    EXPECT_THROW(
        makeWorkload("pagerank", ParamMap::parse("iterations=0")),
        DriverError);
    EXPECT_THROW(makeWorkload("cf", ParamMap::parse("epochs=0")),
                 DriverError);
    // NaN must not slip through range checks.
    EXPECT_THROW(
        makeWorkload("pagerank", ParamMap::parse("damping=nan")),
        DriverError);
    EXPECT_THROW(
        makeWorkload("pagerank", ParamMap::parse("tolerance=nan")),
        DriverError);
}

// ----------------------------------------------------- backend registry

TEST(BackendRegistryTest, HasAllSixBackends)
{
    EXPECT_EQ(allBackendNames(),
              (std::vector<std::string>{"graphr", "multinode",
                                        "outofcore", "cpu", "gpu",
                                        "pim"}));
}

TEST(BackendRegistryTest, MakeByName)
{
    const BackendOptions options;
    for (const std::string &name : allBackendNames()) {
        const std::unique_ptr<Backend> backend =
            makeBackend(name, options);
        ASSERT_NE(backend, nullptr);
        EXPECT_EQ(backend->name(), name);
    }
}

TEST(BackendRegistryTest, UnknownNameThrowsWithKnownList)
{
    try {
        makeBackend("tpu", BackendOptions{});
        FAIL() << "expected DriverError";
    } catch (const DriverError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("unknown backend"), std::string::npos);
        EXPECT_NE(msg.find("graphr"), std::string::npos);
    }
}

// ----------------------------------------------------- dataset resolver

TEST(DatasetResolverTest, TableNamesMatchFlexibly)
{
    for (const std::string spec :
         {"wiki-vote", "WV", "WikiVote", "wikivote"}) {
        const ResolvedDataset ds = resolveDataset(spec, /*scale=*/16.0);
        EXPECT_EQ(ds.name, "wiki-vote") << spec;
        EXPECT_GT(ds.graph.numVertices(), 0u);
        EXPECT_FALSE(ds.bipartite);
    }
}

TEST(DatasetResolverTest, RmatSpec)
{
    const ResolvedDataset ds =
        resolveDataset("rmat:vertices=256,edges=1024,seed=5");
    EXPECT_EQ(ds.name, "rmat");
    EXPECT_EQ(ds.graph.numVertices(), 256u);
    // R-MAT drops self loops, so the count is near but below target.
    EXPECT_LE(ds.graph.numEdges(), 1024u);
    EXPECT_GT(ds.graph.numEdges(), 900u);
}

TEST(DatasetResolverTest, TopologySpecs)
{
    EXPECT_EQ(resolveDataset("chain:n=8").graph.numEdges(), 7u);
    EXPECT_EQ(resolveDataset("star:n=9").graph.numEdges(), 8u);
    EXPECT_EQ(resolveDataset("grid:width=4,height=4")
                  .graph.numVertices(),
              16u);
}

TEST(DatasetResolverTest, BipartiteKnowsUsers)
{
    const ResolvedDataset ds =
        resolveDataset("bipartite:users=32,items=16,ratings=200");
    EXPECT_TRUE(ds.bipartite);
    EXPECT_EQ(ds.numUsers, 32u);
    EXPECT_EQ(ds.graph.numVertices(), 48u);
}

TEST(DatasetResolverTest, TableNamesTakeScaleSeedParams)
{
    const ResolvedDataset a = resolveDataset("wiki-vote:scale=16");
    const ResolvedDataset b = resolveDataset("wiki-vote", 16.0);
    EXPECT_EQ(a.graph.numVertices(), b.graph.numVertices());
    EXPECT_EQ(a.graph.numEdges(), b.graph.numEdges());
    // Only scale/seed are valid on a table name.
    EXPECT_THROW(resolveDataset("wiki-vote:vertices=64"), DriverError);
    EXPECT_THROW(resolveDataset("wiki-vote:scale=nan"), DriverError);
}

TEST(DatasetResolverTest, NanScaleThrows)
{
    EXPECT_THROW(resolveDataset(
                     "wiki-vote", std::nan("")),
                 DriverError);
}

TEST(DatasetResolverTest, UnknownNameThrowsWithKnownList)
{
    try {
        resolveDataset("twitter");
        FAIL() << "expected DriverError";
    } catch (const DriverError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("unknown dataset"), std::string::npos);
        EXPECT_NE(msg.find("wiki-vote"), std::string::npos);
    }
}

TEST(DatasetResolverTest, UnknownSpecKeyThrows)
{
    EXPECT_THROW(resolveDataset("rmat:vertices=64,degree=4"),
                 DriverError);
    EXPECT_THROW(resolveDataset("rmat:vertices"), DriverError);
}

TEST(DatasetResolverTest, FileRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "/driver_test_graph.txt";
    {
        std::ofstream out(path);
        out << "# vertices: 4\n0 1 2.5\n1 2 1.0\n2 3 1.0\n";
    }
    const ResolvedDataset ds = resolveDataset("file:" + path);
    EXPECT_EQ(ds.graph.numVertices(), 4u);
    EXPECT_EQ(ds.graph.numEdges(), 3u);
    EXPECT_EQ(ds.name, "driver_test_graph.txt");
}

// ------------------------------------------------------------------ CLI

TEST(CliTest, ParsesFullInvocation)
{
    const CliOptions opts = parseCli(
        {"--algo", "pagerank,sssp", "--backend", "graphr", "--dataset",
         "rmat:vertices=64,edges=256", "--dataset", "wiki-vote",
         "--param", "damping=0.9", "--param", "source=2", "--scale",
         "8", "--seed", "7", "--nodes", "2", "--out", "r.json",
         "--matrix"});
    EXPECT_EQ(opts.sweep.workloads,
              (std::vector<std::string>{"pagerank", "sssp"}));
    EXPECT_EQ(opts.sweep.backends, (std::vector<std::string>{"graphr"}));
    ASSERT_EQ(opts.sweep.datasets.size(), 2u);
    EXPECT_EQ(opts.sweep.datasets[1], "wiki-vote");
    EXPECT_DOUBLE_EQ(opts.sweep.params.getDouble("damping", 0), 0.9);
    EXPECT_EQ(opts.sweep.params.getInt("source", 0), 2);
    EXPECT_DOUBLE_EQ(opts.sweep.scale, 8.0);
    EXPECT_EQ(opts.sweep.seed, 7u);
    EXPECT_EQ(opts.sweep.backendOptions.numNodes, 2u);
    EXPECT_EQ(opts.outPath, "r.json");
    EXPECT_TRUE(opts.matrix);
    EXPECT_TRUE(opts.isSweep());
}

TEST(CliTest, DefaultsAreSingleRun)
{
    const CliOptions opts = parseCli({});
    EXPECT_EQ(opts.sweep.workloads,
              (std::vector<std::string>{"pagerank"}));
    EXPECT_EQ(opts.sweep.backends,
              (std::vector<std::string>{"graphr"}));
    ASSERT_EQ(opts.sweep.datasets.size(), 1u);
    EXPECT_FALSE(opts.isSweep());
    EXPECT_FALSE(opts.matrix);
    EXPECT_FALSE(opts.list);
}

TEST(CliTest, ErrorsOnBadFlags)
{
    EXPECT_THROW(parseCli({"--bogus"}), DriverError);
    EXPECT_THROW(parseCli({"--algo"}), DriverError);
    EXPECT_THROW(parseCli({"--scale", "0.5"}), DriverError);
    EXPECT_THROW(parseCli({"--nodes", "0"}), DriverError);
    EXPECT_THROW(parseCli({"--seed", "x"}), DriverError);
    // Scalar flags must consume their whole value.
    EXPECT_THROW(parseCli({"--seed", "7,scale=999"}), DriverError);
    EXPECT_THROW(parseCli({"--seed", ""}), DriverError);
    // 32-bit parameter overflow must not wrap.
    EXPECT_THROW(makeWorkload("pagerank",
                              ParamMap::parse("iterations=5000000000")),
                 DriverError);
    EXPECT_THROW(
        makeWorkload("bfs", ParamMap::parse("source=4294967301")),
        DriverError);
}

TEST(CliTest, FunctionalFlagSetsConfig)
{
    const CliOptions opts = parseCli({"--functional"});
    EXPECT_TRUE(opts.sweep.backendOptions.config.functional);
}

TEST(CliTest, PlanDirFlagPlumbsTheStore)
{
    const CliOptions opts = parseCli({"--plan-dir", "plans"});
    EXPECT_EQ(opts.command, CliCommand::kRun);
    EXPECT_EQ(opts.sweep.store.planDir, "plans");
    EXPECT_THROW(parseCli({"--plan-dir", ""}), DriverError);
    EXPECT_THROW(parseCli({"--plan-dir"}), DriverError);
}

TEST(CliTest, PrepareSubcommandProjectsItsSpec)
{
    const CliOptions opts = parseCli(
        {"prepare", "--dataset", "wiki-vote", "--dataset", "chain:n=8",
         "--plan-dir", "plans", "--scale", "4", "--seed", "7",
         "--jobs", "3"});
    EXPECT_EQ(opts.command, CliCommand::kPrepare);
    EXPECT_EQ(opts.prepare.datasets,
              (std::vector<std::string>{"wiki-vote", "chain:n=8"}));
    EXPECT_EQ(opts.prepare.store.planDir, "plans");
    EXPECT_DOUBLE_EQ(opts.prepare.scale, 4.0);
    EXPECT_EQ(opts.prepare.seed, 7u);
    EXPECT_EQ(opts.prepare.jobs, 3u);
    EXPECT_TRUE(opts.prepare.symmetrized);
    // No surprise default dataset for prepare.
    EXPECT_TRUE(parseCli({"prepare", "--plan-dir", "p"})
                    .prepare.datasets.empty());
}

TEST(CliTest, StoreStatsSubcommand)
{
    const CliOptions opts =
        parseCli({"store", "stats", "--plan-dir", "plans"});
    EXPECT_EQ(opts.command, CliCommand::kStoreStats);
    EXPECT_EQ(opts.prepare.store.planDir, "plans");
    // 'store' without an action is an error naming the known one.
    EXPECT_THROW(parseCli({"store"}), DriverError);
    EXPECT_THROW(parseCli({"store", "prune"}), DriverError);
}

TEST(CliTest, UnknownSubcommandNamesTheKnownOnes)
{
    try {
        parseCli({"frobnicate"});
        FAIL() << "expected DriverError";
    } catch (const DriverError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("unknown subcommand 'frobnicate'"),
                  std::string::npos);
        EXPECT_NE(msg.find("prepare"), std::string::npos);
        EXPECT_NE(msg.find("store stats"), std::string::npos);
    }
}

// ----------------------------------------------------------- end-to-end

TEST(DriverRunTest, SingleRunProducesWork)
{
    RunSpec spec;
    spec.workload = "pagerank";
    spec.backend = "graphr";
    spec.dataset = "rmat:vertices=128,edges=512,seed=3";
    const RunResult result = runOne(spec);
    EXPECT_EQ(result.workload, "pagerank");
    EXPECT_EQ(result.backend, "graphr");
    EXPECT_EQ(result.dataset, "rmat");
    EXPECT_GT(result.seconds, 0.0);
    EXPECT_GT(result.joules, 0.0);
    EXPECT_GT(result.iterations, 0u);
    EXPECT_GT(result.edgesProcessed, 0u);
}

TEST(DriverRunTest, SourceOutOfRangeThrows)
{
    RunSpec spec;
    spec.workload = "bfs";
    spec.backend = "graphr";
    spec.dataset = "chain:n=8";
    spec.params = ParamMap::parse("source=99");
    EXPECT_THROW(runOne(spec), DriverError);
}

TEST(DriverRunTest, FullMatrixExecutes)
{
    // Acceptance criterion: every (workload, backend) pair from the
    // registries runs on at least one dataset.
    SweepSpec spec;
    spec.workloads = {"all"};
    spec.backends = {"all"};
    spec.datasets = {"rmat:vertices=128,edges=512,seed=3"};
    spec.params = ParamMap::parse("epochs=1,features=4,iterations=5");
    const std::vector<RunResult> results = runSweep(spec);
    ASSERT_EQ(results.size(),
              allWorkloadNames().size() * allBackendNames().size());
    for (const RunResult &r : results) {
        EXPECT_GT(r.seconds, 0.0)
            << r.workload << " x " << r.backend;
        EXPECT_GT(r.joules, 0.0) << r.workload << " x " << r.backend;
    }

    // The matrix renderer covers the full cross product.
    std::ostringstream matrix;
    printMatrix(matrix, results);
    for (const std::string &b : allBackendNames())
        EXPECT_NE(matrix.str().find(b), std::string::npos);
    for (const std::string &w : allWorkloadNames())
        EXPECT_NE(matrix.str().find(w), std::string::npos);
}

TEST(DriverRunTest, OneNodeClusterMatchesSingleNode)
{
    // With one node and no communication, the multinode cost model
    // must collapse to the single-node schedule for every workload
    // whose sweep count matches GraphRNode's (spmv/cf).
    for (const std::string algo : {"spmv", "cf"}) {
        RunSpec spec;
        spec.workload = algo;
        spec.dataset = "bipartite:users=64,items=32,ratings=512";
        spec.params = ParamMap::parse("epochs=2,features=8");

        spec.backend = "graphr";
        const RunResult single = runOne(spec);
        spec.backend = "multinode";
        spec.backendOptions.numNodes = 1;
        const RunResult cluster = runOne(spec);
        EXPECT_NEAR(cluster.seconds, single.seconds,
                    single.seconds * 1e-9)
            << algo;
    }
}

TEST(DriverRunTest, SweepRejectsUnknownNamesUpfront)
{
    SweepSpec spec;
    spec.workloads = {"pagerank", "page-rank"};
    spec.datasets = {"chain:n=4"};
    EXPECT_THROW(runSweep(spec), DriverError);
}

// ----------------------------------------------------------- golden file

std::string
goldenPath()
{
    return std::string(GRAPHR_GOLDEN_DIR) + "/pagerank_rmat.json";
}

std::string
runGoldenReport()
{
    RunSpec spec;
    spec.workload = "pagerank";
    spec.backend = "graphr";
    spec.dataset = "rmat:vertices=256,edges=2048,seed=7";
    spec.params = ParamMap::parse("iterations=10,tolerance=0");
    const RunResult result = runOne(spec);
    std::ostringstream oss;
    writeResultsJson(oss, {result});
    return oss.str();
}

TEST(GoldenReportTest, MatchesCheckedInJson)
{
    std::ifstream in(goldenPath());
    ASSERT_TRUE(in) << "missing golden file " << goldenPath()
                    << " — regenerate with "
                       "GRAPHR_UPDATE_GOLDEN=1 ./test_driver";
    std::stringstream want;
    want << in.rdbuf();
    EXPECT_EQ(runGoldenReport(), want.str())
        << "JSON report drifted; if the cost model changed "
           "intentionally, regenerate with GRAPHR_UPDATE_GOLDEN=1";
}

/** Regeneration helper: GRAPHR_UPDATE_GOLDEN=1 rewrites the file. */
TEST(GoldenReportTest, UpdateGoldenWhenRequested)
{
    if (!std::getenv("GRAPHR_UPDATE_GOLDEN"))
        GTEST_SKIP() << "set GRAPHR_UPDATE_GOLDEN=1 to rewrite";
    std::ofstream out(goldenPath());
    ASSERT_TRUE(out);
    out << runGoldenReport();
}

} // namespace
} // namespace graphr::driver
