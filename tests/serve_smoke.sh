#!/usr/bin/env bash
# End-to-end smoke of the graphr_serve daemon (run from ctest and CI):
# pipe three JSONL requests — two identical run requests (the second
# must be answered from the process-resident plan cache) and a status
# barrier — through --stdin, then assert:
#   1. exactly one response line per request, ids echoed in order;
#   2. the duplicate-plan request's report is byte-identical to the
#      first (only the echoed id differs);
#   3. status shows the plan-cache hit the duplicate produced.
set -eu

serve_bin="$1"
out="$(mktemp)"
trap 'rm -f "$out"' EXIT

printf '%s\n' \
  '{"id":"r1","type":"run","workload":"pagerank","backend":"outofcore","dataset":"rmat:vertices=128,edges=512,seed=3"}' \
  '{"id":"r2","type":"run","workload":"pagerank","backend":"outofcore","dataset":"rmat:vertices=128,edges=512,seed=3"}' \
  '{"id":"q1","type":"status"}' \
  | "$serve_bin" --stdin > "$out"

test "$(wc -l < "$out")" -eq 3

r1="$(sed -n 1p "$out" | sed 's/"id":"r1"/"id":"X"/')"
r2="$(sed -n 2p "$out" | sed 's/"id":"r2"/"id":"X"/')"
if [ "$r1" != "$r2" ]; then
  echo "duplicate-plan request reports differ:" >&2
  echo "  $r1" >&2
  echo "  $r2" >&2
  exit 1
fi

status_line="$(sed -n 3p "$out")"
echo "$status_line" | grep -q '"id":"q1"'
echo "$status_line" | grep -o '"plan_cache":{[^}]*}' \
  | grep -q '"hits":1' \
  || { echo "no plan-cache hit in: $status_line" >&2; exit 1; }
echo "$status_line" | grep -o '"served":{[^}]*}' \
  | grep -q '"completed":2'

echo "serve smoke ok"
