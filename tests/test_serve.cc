/**
 * @file
 * Tests for the graphr_serve serving core: the request parser's
 * error paths (malformed JSON, unknown type/workload/backend/dataset,
 * queue overflow — all structured responses, never a crash), the
 * warm-state guarantees (a repeated request is plan-cache-hot and
 * edge-sort-free), response/one-shot-driver equivalence, and
 * serial-vs-concurrent byte-identical response streams.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_reader.hh"
#include "driver/driver.hh"
#include "driver/golden_cache.hh"
#include "graph/preprocess.hh"
#include "graphr/engine/plan_cache.hh"
#include "perf/counters.hh"
#include "service/request.hh"
#include "service/server.hh"

namespace graphr
{
namespace
{

namespace fs = std::filesystem;

/** Isolates the process-wide caches around every test. */
class ServeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        resetCaches();
    }

    void
    TearDown() override
    {
        resetCaches();
    }

    static void
    resetCaches()
    {
        PlanCache::instance().setStore(nullptr);
        PlanCache::instance().clear();
        driver::clearGoldenCache();
        // The status latency summary reads the process-wide perf
        // registry; reset it so each test sees only its own requests.
        perf::Registry::instance().resetAll();
    }
};

/** One serve session over string streams; returns the response text. */
std::string
serveText(service::Server &server, const std::string &input)
{
    std::istringstream in(input);
    std::ostringstream out;
    server.serve(in, out);
    return out.str();
}

std::string
serveText(const std::string &input,
          const service::ServeOptions &options = {})
{
    service::Server server(options);
    return serveText(server, input);
}

/** Split response text into lines (each one JSON object). */
std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        out.push_back(line);
    return out;
}

/** Every response must parse back as one JSON object per line. */
JsonValue
parsedResponse(const std::string &line)
{
    const JsonValue v = JsonValue::parse(line);
    EXPECT_TRUE(v.isObject()) << line;
    return v;
}

void
expectError(const std::string &line, const std::string &id,
            const std::string &fragment)
{
    const JsonValue v = parsedResponse(line);
    EXPECT_FALSE(v.find("ok")->asBool()) << line;
    if (id.empty())
        EXPECT_TRUE(v.find("id")->isNull()) << line;
    else
        EXPECT_EQ(v.find("id")->asString(), id) << line;
    EXPECT_NE(v.find("error")->asString().find(fragment),
              std::string::npos)
        << "expected '" << fragment << "' in: " << line;
}

const char *const kRunRequest =
    R"({"id":"r1","type":"run","workload":"pagerank",)"
    R"("backend":"outofcore","dataset":"rmat:vertices=128,edges=1024,seed=9"})";

TEST_F(ServeTest, MalformedJsonIsAStructuredErrorResponse)
{
    const auto out = lines(serveText("{\"id\": \"x\", nope\n"));
    ASSERT_EQ(out.size(), 1u);
    expectError(out[0], "", "JSON error");
}

TEST_F(ServeTest, MissingOrBadIdIsAnError)
{
    const auto out = lines(serveText(
        "{\"type\":\"status\"}\n{\"id\":\"\",\"type\":\"status\"}\n"
        "{\"id\":7,\"type\":\"status\"}\n"));
    ASSERT_EQ(out.size(), 3u);
    expectError(out[0], "", "needs a string 'id'");
    expectError(out[1], "", "non-empty");
    expectError(out[2], "", "non-empty");
}

TEST_F(ServeTest, UnknownTypeIsAnError)
{
    const auto out =
        lines(serveText("{\"id\":\"x\",\"type\":\"frobnicate\"}\n"));
    ASSERT_EQ(out.size(), 1u);
    expectError(out[0], "x", "unknown request type 'frobnicate'");
}

TEST_F(ServeTest, UnknownNamesAndMembersAreErrors)
{
    const auto out = lines(serveText(
        R"({"id":"a","type":"run","workload":"nope","dataset":"chain:n=8"})"
        "\n"
        R"({"id":"b","type":"run","backend":"nope","dataset":"chain:n=8"})"
        "\n"
        R"({"id":"c","type":"run","dataset":"chain:n=8","plan_dir":"x"})"
        "\n"
        R"({"id":"d","type":"run","workload":"pagerank"})"
        "\n"));
    ASSERT_EQ(out.size(), 4u);
    expectError(out[0], "a", "unknown workload 'nope'");
    expectError(out[1], "b", "unknown backend 'nope'");
    expectError(out[2], "c", "unknown member 'plan_dir'");
    expectError(out[3], "d", "needs 'dataset'");
}

TEST_F(ServeTest, UnknownDatasetFailsAtExecutionWithAnErrorResponse)
{
    const auto out = lines(serveText(
        R"({"id":"a","type":"run","dataset":"no-such-graph"})" "\n"));
    ASSERT_EQ(out.size(), 1u);
    expectError(out[0], "a", "no-such-graph");
}

TEST_F(ServeTest, RunRequestRejectsListValuedSpecs)
{
    const auto out = lines(serveText(
        R"({"id":"a","type":"run","workloads":["all"],"dataset":"chain:n=8"})"
        "\n"));
    ASSERT_EQ(out.size(), 1u);
    expectError(out[0], "a", "exactly one");
}

TEST_F(ServeTest, QueueDepthBoundsAdmission)
{
    service::ServeOptions options;
    options.queueDepth = 0; // reject every work request
    const auto out = lines(serveText(
        std::string(kRunRequest) + "\n" +
            R"({"id":"q","type":"status"})" + "\n",
        options));
    ASSERT_EQ(out.size(), 2u);
    expectError(out[0], "r1", "queue full");
    const JsonValue status = parsedResponse(out[1]);
    EXPECT_TRUE(status.find("ok")->asBool());
    EXPECT_EQ(status.find("served")->find("rejected")->asU64(), 1u);
    EXPECT_EQ(status.find("served")->find("admitted")->asU64(), 0u);
}

TEST_F(ServeTest, ResponseMatchesOneShotDriverExecution)
{
    // The serve pipeline (JSON -> spec -> batch -> pool) must produce
    // byte-identical results to calling the driver directly with the
    // same spec — the one-shot graphr_run path.
    driver::SweepSpec spec;
    spec.workloads = {"pagerank"};
    spec.backends = {"outofcore"};
    spec.datasets = {"rmat:vertices=128,edges=1024,seed=9"};
    const std::vector<driver::RunResult> direct =
        driver::runSweep(spec, nullptr);
    const std::string expected =
        service::resultsResponse("r1", "run", direct);

    resetCaches();
    const auto out = lines(serveText(std::string(kRunRequest) + "\n"));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], expected);
}

TEST_F(ServeTest, WarmRepeatRequestHitsThePlanCacheAndSkipsTheSort)
{
    service::Server server({});

    const std::uint64_t sorts_before =
        OrderedEdgeList::sortsPerformed();
    const std::string first =
        serveText(server, std::string(kRunRequest) + "\n");
    const std::uint64_t sorts_cold =
        OrderedEdgeList::sortsPerformed() - sorts_before;
    EXPECT_GT(sorts_cold, 0u);

    // Second session on the same server: resident plan, zero sorts.
    const std::string second =
        serveText(server, std::string(kRunRequest) + "\n");
    EXPECT_EQ(OrderedEdgeList::sortsPerformed() - sorts_before,
              sorts_cold)
        << "warm request re-sorted the edge list";
    EXPECT_EQ(first, second);

    // And the status barrier reports the hit.
    const auto status = lines(
        serveText(server, "{\"id\":\"q\",\"type\":\"status\"}\n"));
    ASSERT_EQ(status.size(), 1u);
    const JsonValue v = parsedResponse(status[0]);
    EXPECT_GE(v.find("plan_cache")->find("hits")->asU64(), 1u);
    EXPECT_EQ(v.find("served")->find("completed")->asU64(), 2u);
}

TEST_F(ServeTest, StatusReportsCumulativeRequestLatencySummary)
{
    // Three work requests then a status barrier: the latency summary
    // must count exactly the answered work requests (the registry was
    // reset in SetUp) with a consistent min <= median <= max.
    service::Server server({});
    serveText(server,
              R"({"id":"a","type":"run","dataset":"chain:n=64"})" "\n"
              R"({"id":"b","type":"run","dataset":"star:n=64"})" "\n"
              R"({"id":"bad","type":"run","dataset":"no-such"})" "\n");
    const auto status = lines(
        serveText(server, "{\"id\":\"q\",\"type\":\"status\"}\n"));
    ASSERT_EQ(status.size(), 1u);
    const JsonValue v = parsedResponse(status[0]);
    const JsonValue *latency = v.find("latency");
    ASSERT_NE(latency, nullptr);
    // Failed requests are answered (and timed) too.
    EXPECT_EQ(latency->find("count")->asU64(), 3u);
    const double min_ms = latency->find("min_ms")->asDouble();
    const double median_ms = latency->find("median_ms")->asDouble();
    const double max_ms = latency->find("max_ms")->asDouble();
    EXPECT_GE(min_ms, 0.0);
    EXPECT_LE(min_ms, median_ms);
    EXPECT_LE(median_ms, max_ms);
}

TEST_F(ServeTest, ConcurrentExecutionMatchesSerialByteForByte)
{
    // Distinct datasets (deterministic cache misses), a sweep, and a
    // trailing status barrier. Only the status "jobs" and "latency"
    // fields may differ between worker counts.
    const std::string input =
        R"({"id":"r1","type":"run","dataset":"chain:n=64"})" "\n"
        R"({"id":"r2","type":"run","dataset":"star:n=64"})" "\n"
        R"({"id":"r3","type":"run","dataset":"grid:width=8,height=8"})" "\n"
        R"({"id":"s1","type":"sweep","workloads":["pagerank","wcc"],)"
        R"("datasets":["chain:n=64"]})" "\n"
        R"({"id":"q","type":"status"})" "\n";

    service::ServeOptions serial;
    serial.jobs = 1;
    const std::string serial_out = serveText(input, serial);

    resetCaches();
    service::ServeOptions concurrent;
    concurrent.jobs = 4;
    const std::string concurrent_out = serveText(input, concurrent);

    const auto strip_variable = [](const std::string &text) {
        // The status "jobs" field reports the actual worker count,
        // and the "latency" summary is wall-clock; both are the only
        // jobs-dependent bytes.
        const std::string no_jobs = std::regex_replace(
            text, std::regex("\"jobs\":\\d+"), "\"jobs\":N");
        return std::regex_replace(no_jobs,
                                  std::regex("\"latency\":\\{[^}]*\\}"),
                                  "\"latency\":{}");
    };
    EXPECT_EQ(strip_variable(serial_out),
              strip_variable(concurrent_out));

    // Sanity: every id answered, in admission order.
    const auto out = lines(serial_out);
    ASSERT_EQ(out.size(), 5u);
    const char *expected_ids[] = {"r1", "r2", "r3", "s1", "q"};
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(parsedResponse(out[i]).find("id")->asString(),
                  expected_ids[i]);
    }
}

TEST_F(ServeTest, AFailingRequestCannotPoisonConcurrentRequests)
{
    // Each request executes as its own pool task; the bad dataset
    // must answer alone with an error while the good requests around
    // it answer normally.
    service::ServeOptions options;
    options.jobs = 4;
    const auto out = lines(serveText(
        R"({"id":"g1","type":"run","dataset":"chain:n=64"})" "\n"
        R"({"id":"bad","type":"run","dataset":"no-such-graph"})" "\n"
        R"({"id":"g2","type":"run","dataset":"star:n=64"})" "\n",
        options));
    ASSERT_EQ(out.size(), 3u);
    EXPECT_TRUE(parsedResponse(out[0]).find("ok")->asBool()) << out[0];
    expectError(out[1], "bad", "no-such-graph");
    EXPECT_TRUE(parsedResponse(out[2]).find("ok")->asBool()) << out[2];

    // The good responses match what the requests yield on their own.
    resetCaches();
    const auto solo_g1 = lines(serveText(
        R"({"id":"g1","type":"run","dataset":"chain:n=64"})" "\n"));
    const auto solo_g2 = lines(serveText(
        R"({"id":"g2","type":"run","dataset":"star:n=64"})" "\n"));
    EXPECT_EQ(out[0], solo_g1.at(0));
    EXPECT_EQ(out[2], solo_g2.at(0));
}

TEST_F(ServeTest, PrepareNeedsADaemonPlanStore)
{
    const auto out = lines(serveText(
        R"({"id":"p","type":"prepare","datasets":["chain:n=16"]})"
        "\n"));
    ASSERT_EQ(out.size(), 1u);
    expectError(out[0], "p", "--plan-dir");
}

TEST_F(ServeTest, PrepareWritesArtifactsTheNextRunLoadsSortFree)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "serve_plans";
    fs::remove_all(dir);

    service::ServeOptions options;
    options.store.planDir = dir.string();
    service::Server server(options);

    const auto prepared = lines(serveText(
        server,
        R"({"id":"p","type":"prepare",)"
        R"("datasets":["rmat:vertices=128,edges=1024,seed=9"]})"
        "\n"));
    ASSERT_EQ(prepared.size(), 1u);
    const JsonValue p = parsedResponse(prepared[0]);
    ASSERT_TRUE(p.find("ok")->asBool()) << prepared[0];
    EXPECT_EQ(p.find("prepared")->items().size(), 2u)
        << "plain + symmetrized variants";

    // Drop the in-memory cache: the run must warm-load from disk
    // without a single edge sort.
    PlanCache::instance().clear();
    const std::uint64_t sorts_before =
        OrderedEdgeList::sortsPerformed();
    const auto run =
        lines(serveText(server, std::string(kRunRequest) + "\n"));
    ASSERT_EQ(run.size(), 1u);
    EXPECT_TRUE(parsedResponse(run[0]).find("ok")->asBool()) << run[0];
    EXPECT_EQ(OrderedEdgeList::sortsPerformed(), sorts_before);

    const auto status = lines(
        serveText(server, "{\"id\":\"q\",\"type\":\"status\"}\n"));
    const JsonValue v = parsedResponse(status[0]);
    EXPECT_GE(v.find("store")->find("load_hits")->asU64(), 1u);
    EXPECT_GE(v.find("store")->find("saves")->asU64(), 2u);

    fs::remove_all(dir);
}

TEST_F(ServeTest, TenantNameIsValidated)
{
    // The tenant names a <plan-dir> subdirectory, so the charset is
    // traversal-proof by construction; status is not tenant-scoped.
    const auto out = lines(serveText(
        R"({"id":"a","type":"run","dataset":"chain:n=8","tenant":"../evil"})"
        "\n"
        R"({"id":"b","type":"run","dataset":"chain:n=8","tenant":""})"
        "\n"
        R"({"id":"c","type":"run","dataset":"chain:n=8","tenant":7})"
        "\n"
        R"({"id":"d","type":"status","tenant":"acme"})" "\n"));
    ASSERT_EQ(out.size(), 4u);
    expectError(out[0], "a", "'tenant' must be");
    expectError(out[1], "b", "'tenant' must be");
    expectError(out[2], "c", "'tenant' must be");
    expectError(out[3], "d", "not tenant-scoped");
}

TEST_F(ServeTest, TenantNeedsADaemonPlanStore)
{
    const auto out = lines(serveText(
        R"({"id":"a","type":"run","dataset":"chain:n=8","tenant":"acme"})"
        "\n"));
    ASSERT_EQ(out.size(), 1u);
    expectError(out[0], "a", "--plan-dir");
}

TEST_F(ServeTest, TenantNamespacesIsolatePlansOnDiskAndInMemory)
{
    const fs::path dir = fs::path(::testing::TempDir()) / "tenant_plans";
    fs::remove_all(dir);

    service::ServeOptions options;
    options.store.planDir = dir.string();
    service::Server server(options);

    const std::string dataset = "rmat:vertices=128,edges=1024,seed=9";
    const auto runAs = [&](const std::string &id,
                           const std::string &tenant) {
        const auto out = lines(serveText(
            server, "{\"id\":\"" + id + "\",\"type\":\"run\","
                    "\"workload\":\"pagerank\","
                    "\"backend\":\"outofcore\","
                    "\"dataset\":\"" + dataset + "\","
                    "\"tenant\":\"" + tenant + "\"}\n"));
        EXPECT_EQ(out.size(), 1u);
        EXPECT_TRUE(parsedResponse(out.at(0)).find("ok")->asBool())
            << out.at(0);
        return out.at(0);
    };
    const auto artifactCount = [](const fs::path &tenant_dir) {
        std::size_t n = 0;
        if (fs::is_directory(tenant_dir))
            for (const auto &entry :
                 fs::directory_iterator(tenant_dir))
                n += entry.is_regular_file() ? 1 : 0;
        return n;
    };

    // Cold run as acme: plan built (sorted) and saved under acme/.
    const std::string acme_report = runAs("a1", "acme");
    EXPECT_GT(artifactCount(dir / "acme"), 0u);

    // Same plan as beta: the in-memory plan cache is namespaced per
    // tenant store, so this must rebuild (sort again), never reuse
    // acme's resident plan or load acme's artifact — and it saves
    // its own copy under beta/.
    const std::uint64_t sorts_after_acme =
        OrderedEdgeList::sortsPerformed();
    const std::string beta_report = runAs("b1", "beta");
    EXPECT_GT(OrderedEdgeList::sortsPerformed(), sorts_after_acme)
        << "beta reused acme's plan across the tenant boundary";
    EXPECT_EQ(artifactCount(dir / "beta"),
              artifactCount(dir / "acme"));

    // The reports themselves are byte-identical apart from the id:
    // isolation must not change results.
    const auto strip_id = [](const std::string &text) {
        return std::regex_replace(text, std::regex("\"id\":\"[^\"]*\""),
                                  "\"id\":\"X\"");
    };
    EXPECT_EQ(strip_id(acme_report), strip_id(beta_report));

    // Warm same-tenant restart: with the memory cache dropped, the
    // acme run loads its own artifact sort-free.
    PlanCache::instance().clear();
    const std::uint64_t sorts_before_warm =
        OrderedEdgeList::sortsPerformed();
    runAs("a2", "acme");
    EXPECT_EQ(OrderedEdgeList::sortsPerformed(), sorts_before_warm)
        << "acme's warm run did not load from its own namespace";

    // Status reports per-tenant served counters, name-sorted.
    const auto status = lines(
        serveText(server, "{\"id\":\"q\",\"type\":\"status\"}\n"));
    ASSERT_EQ(status.size(), 1u);
    const JsonValue v = parsedResponse(status[0]);
    const JsonValue *tenants = v.find("tenants");
    ASSERT_NE(tenants, nullptr);
    ASSERT_EQ(tenants->members().size(), 2u);
    EXPECT_EQ(tenants->members()[0].first, "acme");
    EXPECT_EQ(tenants->members()[0].second.find("served")->asU64(),
              2u);
    EXPECT_EQ(tenants->members()[1].first, "beta");
    EXPECT_EQ(tenants->members()[1].second.find("served")->asU64(),
              1u);

    fs::remove_all(dir);
}

TEST_F(ServeTest, StatusReportsTheStdinSessionInItsConnectionsBlock)
{
    // A lone blocking session is connection 1 of 1; every fault-free
    // counter that can be zero must be zero.
    service::Server server({});
    const auto out = lines(serveText(
        server, std::string(kRunRequest) + "\n" +
                    "{\"id\":\"q\",\"type\":\"status\"}\n"));
    ASSERT_EQ(out.size(), 2u);
    const JsonValue v = parsedResponse(out[1]);
    const JsonValue *conns = v.find("connections");
    ASSERT_NE(conns, nullptr) << out[1];
    EXPECT_EQ(conns->find("active")->asU64(), 1u);
    EXPECT_EQ(conns->find("total_accepted")->asU64(), 1u);
    const auto &per = conns->find("per_connection")->items();
    ASSERT_EQ(per.size(), 1u);
    EXPECT_EQ(per[0].find("conn")->asU64(), 1u);
    EXPECT_EQ(per[0].find("admitted")->asU64(), 1u);
    EXPECT_EQ(per[0].find("rejected")->asU64(), 0u);
    EXPECT_EQ(per[0].find("completed")->asU64(), 1u);
    EXPECT_EQ(per[0].find("failed")->asU64(), 0u);
    EXPECT_TRUE(v.find("tenants")->members().empty());
}

} // namespace
} // namespace graphr
