#!/usr/bin/env bash
# SIMD dispatch parity: the same functional run must produce
# byte-identical JSON reports whether the crossbar MVM accumulates
# through the scalar kernel (GRAPHR_SIMD=scalar) or whatever tier the
# cpuid dispatcher picks (unset), and — where the host supports it —
# under an explicit GRAPHR_SIMD=avx2.
#
# Usage: simd_parity.sh <path-to-graphr_run>
set -euo pipefail

run="${1:?usage: simd_parity.sh <graphr_run>}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

args=(--algo all --backend graphr --functional
      --dataset rmat:vertices=64,edges=256,seed=3
      --param iterations=3,epochs=1,features=4)

GRAPHR_SIMD=scalar "$run" "${args[@]}" \
    --out "$workdir/scalar.json" >/dev/null
env -u GRAPHR_SIMD "$run" "${args[@]}" \
    --out "$workdir/auto.json" >/dev/null

cmp "$workdir/scalar.json" "$workdir/auto.json" || {
    echo "FAIL: scalar vs dispatched reports differ" >&2
    exit 1
}

if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
    GRAPHR_SIMD=avx2 "$run" "${args[@]}" \
        --out "$workdir/avx2.json" >/dev/null
    cmp "$workdir/scalar.json" "$workdir/avx2.json" || {
        echo "FAIL: scalar vs avx2 reports differ" >&2
        exit 1
    }
fi

echo "PASS: SIMD tiers byte-identical"
