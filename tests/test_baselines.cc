/**
 * @file
 * Tests for the CPU / GPU / PIM baseline models.
 */

#include <gtest/gtest.h>

#include "baselines/cpu_model.hh"
#include "baselines/gpu_model.hh"
#include "baselines/pim_model.hh"
#include "graph/generator.hh"

namespace graphr
{
namespace
{

CooGraph
testGraph()
{
    return makeRmat({.numVertices = 2000,
                     .numEdges = 16000,
                     .maxWeight = 15.0,
                     .seed = 51});
}

TEST(CpuModelTest, PageRankScalesWithIterations)
{
    CpuModel cpu;
    const CooGraph g = testGraph();
    const BaselineReport r5 = cpu.runPageRank(g, 5);
    const BaselineReport r10 = cpu.runPageRank(g, 10);
    EXPECT_GT(r5.seconds, 0.0);
    EXPECT_NEAR(r10.seconds / r5.seconds, 2.0, 0.05);
    EXPECT_EQ(r10.edgesProcessed, 2 * r5.edgesProcessed);
}

TEST(CpuModelTest, EnergyIncludesDram)
{
    CpuModel cpu;
    const CooGraph g = testGraph();
    const BaselineReport r = cpu.runPageRank(g, 5);
    EXPECT_GT(r.joules, cpu.params().packageWatts * r.seconds * 0.99);
    EXPECT_GT(r.dramAccesses, 0u);
}

TEST(CpuModelTest, TraversalVisitsReachableEdges)
{
    CpuModel cpu;
    const CooGraph g = testGraph();
    const BaselineReport r = cpu.runBfs(g, 0);
    EXPECT_GT(r.iterations, 1u);
    EXPECT_GT(r.edgesProcessed, 0u);
    // Synchronous relaxation may revisit edges across rounds but the
    // volume stays within iterations * |E|.
    EXPECT_LE(r.edgesProcessed, r.iterations * g.numEdges());
}

TEST(CpuModelTest, SsspAndBfsSameStructure)
{
    CpuModel cpu;
    const CooGraph g = testGraph();
    const BaselineReport b = cpu.runBfs(g, 0);
    const BaselineReport s = cpu.runSssp(g, 0);
    EXPECT_EQ(b.platform, "cpu");
    EXPECT_EQ(s.algorithm, "sssp");
    EXPECT_GT(s.seconds, 0.0);
    EXPECT_GT(b.seconds, 0.0);
}

TEST(CpuModelTest, CfCostGrowsWithK)
{
    CpuModel cpu;
    const CooGraph ratings = makeBipartiteRatings(400, 80, 6000, 52);
    CfParams k8;
    k8.numUsers = 400;
    k8.featureLength = 8;
    k8.epochs = 2;
    CfParams k32 = k8;
    k32.featureLength = 32;
    EXPECT_GT(cpu.runCf(ratings, k32).seconds,
              cpu.runCf(ratings, k8).seconds);
}

TEST(GpuModelTest, TransferChargedOnce)
{
    GpuModel gpu;
    const CooGraph g = testGraph();
    const BaselineReport r1 = gpu.runPageRank(g, 1);
    const BaselineReport r10 = gpu.runPageRank(g, 10);
    // 10 iterations cost less than 10x one iteration because the
    // PCIe transfer amortises.
    EXPECT_LT(r10.seconds, 10.0 * r1.seconds);
    EXPECT_GT(r10.seconds, r1.seconds);
}

TEST(GpuModelTest, BandwidthBoundScaling)
{
    GpuModel gpu;
    const CooGraph small = makeRmat(
        {.numVertices = 1000, .numEdges = 8000, .seed = 53});
    const CooGraph big = makeRmat(
        {.numVertices = 1000, .numEdges = 64000, .seed = 53});
    const BaselineReport rs = gpu.runPageRank(small, 10);
    const BaselineReport rb = gpu.runPageRank(big, 10);
    EXPECT_GT(rb.seconds, rs.seconds);
    EXPECT_GT(rb.joules, rs.joules);
}

TEST(GpuModelTest, TraversalRoundsMatchGolden)
{
    GpuModel gpu;
    const CooGraph g = testGraph();
    const BaselineReport r = gpu.runBfs(g, 0);
    EXPECT_GT(r.iterations, 1u);
    EXPECT_GT(r.joules, 0.0);
}

TEST(GpuModelTest, CfComputeBound)
{
    GpuModel gpu;
    const CooGraph ratings = makeBipartiteRatings(400, 80, 6000, 54);
    CfParams cf;
    cf.numUsers = 400;
    cf.featureLength = 32;
    cf.epochs = 3;
    const BaselineReport r = gpu.runCf(ratings, cf);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_EQ(r.iterations, 3u);
}

TEST(PimModelTest, FasterThanCpuOnPageRank)
{
    // Tesseract's headline claim: order-of-magnitude speedup over
    // conventional systems on graph workloads.
    CpuModel cpu;
    PimModel pim;
    const CooGraph g = testGraph();
    const BaselineReport rc = cpu.runPageRank(g, 10);
    const BaselineReport rp = pim.runPageRank(g, 10);
    EXPECT_GT(rc.seconds / rp.seconds, 2.0);
}

TEST(PimModelTest, CoreCountMatchesConfig)
{
    PimModel pim;
    EXPECT_EQ(pim.totalCores(), 512u);
}

TEST(PimModelTest, BarrierCostPerIteration)
{
    PimModel pim;
    const CooGraph tiny = makeChain(16);
    const BaselineReport r = pim.runPageRank(tiny, 100);
    // Tiny graph: barrier dominates; 100 iterations >= 100 barriers.
    EXPECT_GE(r.seconds, 100.0 * pim.params().barrierUs * 1e-6);
}

TEST(PimModelTest, TraversalActiveEdgesOnly)
{
    PimModel pim;
    const CooGraph g = testGraph();
    const BaselineReport full = pim.runPageRank(g, 1);
    const BaselineReport bfs_r = pim.runBfs(g, 0);
    // Per-round PIM BFS work is bounded by whole-graph sweeps.
    EXPECT_LE(bfs_r.edgesProcessed,
              bfs_r.iterations * full.edgesProcessed);
}

} // namespace
} // namespace graphr
