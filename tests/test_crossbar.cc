/**
 * @file
 * Tests for the functional ReRAM crossbar (analog MVM model).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "rram/cell.hh"
#include "rram/crossbar.hh"

namespace graphr
{
namespace
{

TEST(CellTest, ProgramAndRead)
{
    Cell cell;
    EXPECT_EQ(cell.level(), 0u);
    cell.program(9);
    EXPECT_EQ(cell.level(), 9u);
}

TEST(CellTest, ConductanceMonotoneInLevel)
{
    DeviceParams params;
    Cell lo;
    Cell hi;
    lo.program(0);
    hi.program(15);
    EXPECT_LT(lo.conductance(params), hi.conductance(params));
    EXPECT_NEAR(lo.conductance(params), 1.0 / params.hrsOhm, 1e-12);
    EXPECT_NEAR(hi.conductance(params), 1.0 / params.lrsOhm, 1e-12);
}

TEST(CellTest, VariationZeroIsExact)
{
    Cell cell;
    cell.program(7);
    Rng rng(1);
    EXPECT_EQ(cell.readWithVariation(0.0, rng, 16), 7u);
}

TEST(CellTest, VariationStaysInRange)
{
    Cell cell;
    cell.program(15);
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const std::uint8_t v = cell.readWithVariation(2.0, rng, 16);
        EXPECT_LE(v, 15u);
    }
}

TEST(CrossbarTest, StoreAndReadBackRaw)
{
    DeviceParams params;
    Crossbar cb(4, params);
    cb.programValue(1, 2, FixedPoint::fromRaw(0xABCD, 0));
    EXPECT_EQ(cb.storedRaw(1, 2), 0xABCD);
    EXPECT_EQ(cb.storedRaw(0, 0), 0u);
}

TEST(CrossbarTest, ClearZeroesEverything)
{
    DeviceParams params;
    Crossbar cb(4, params);
    cb.programValue(3, 3, FixedPoint::fromRaw(0xFFFF, 0));
    cb.clear();
    EXPECT_EQ(cb.storedRaw(3, 3), 0u);
    EXPECT_EQ(cb.occupiedRows(), 0u);
}

TEST(CrossbarTest, MvmMatchesDigitalDotProduct)
{
    DeviceParams params;
    const std::uint32_t dim = 8;
    Crossbar cb(dim, params);
    Rng rng(42);

    std::vector<std::vector<std::uint64_t>> w(
        dim, std::vector<std::uint64_t>(dim, 0));
    for (std::uint32_t r = 0; r < dim; ++r) {
        for (std::uint32_t c = 0; c < dim; ++c) {
            w[r][c] = rng.below(65536);
            cb.programValue(r, c,
                            FixedPoint::fromRaw(
                                static_cast<FixedPoint::Raw>(w[r][c]),
                                0));
        }
    }
    std::vector<FixedPoint::Raw> x(dim);
    for (auto &v : x)
        v = static_cast<FixedPoint::Raw>(rng.below(65536));

    const std::vector<std::uint64_t> y = cb.mvmRaw(x);
    for (std::uint32_t c = 0; c < dim; ++c) {
        std::uint64_t expect = 0;
        for (std::uint32_t r = 0; r < dim; ++r)
            expect += static_cast<std::uint64_t>(x[r]) * w[r][c];
        EXPECT_EQ(y[c], expect) << "column " << c;
    }
}

TEST(CrossbarTest, MvmZeroInputGivesZero)
{
    DeviceParams params;
    Crossbar cb(4, params);
    cb.programValue(0, 0, FixedPoint::fromRaw(0x1234, 0));
    const std::vector<std::uint64_t> y =
        cb.mvmRaw(std::vector<FixedPoint::Raw>(4, 0));
    for (std::uint64_t v : y)
        EXPECT_EQ(v, 0u);
}

TEST(CrossbarTest, SelectRowReturnsStoredValues)
{
    DeviceParams params;
    Crossbar cb(4, params);
    cb.programValue(2, 0, FixedPoint::fromRaw(5, 0));
    cb.programValue(2, 3, FixedPoint::fromRaw(11, 0));
    const auto row = cb.selectRow(2);
    EXPECT_EQ(row[0], 5u);
    EXPECT_EQ(row[1], 0u);
    EXPECT_EQ(row[2], 0u);
    EXPECT_EQ(row[3], 11u);
}

TEST(CrossbarTest, OccupiedRowsCountsDistinctRows)
{
    DeviceParams params;
    Crossbar cb(4, params);
    cb.programValue(0, 1, FixedPoint::fromRaw(1, 0));
    cb.programValue(0, 2, FixedPoint::fromRaw(1, 0));
    cb.programValue(3, 0, FixedPoint::fromRaw(1, 0));
    EXPECT_EQ(cb.occupiedRows(), 2u);
}

TEST(CrossbarTest, VariationPerturbsButBounded)
{
    DeviceParams params;
    Crossbar cb(4, params);
    for (std::uint32_t r = 0; r < 4; ++r)
        for (std::uint32_t c = 0; c < 4; ++c)
            cb.programValue(r, c, FixedPoint::quantize(0.5, 12));
    cb.setVariation(0.5, 7);

    std::vector<FixedPoint::Raw> x(4, FixedPoint::quantize(1.0, 12).raw());
    const auto noisy = cb.mvmRaw(x);
    cb.setVariation(0.0, 7);
    const auto exact = cb.mvmRaw(x);
    double max_rel = 0.0;
    for (std::uint32_t c = 0; c < 4; ++c) {
        const double rel =
            std::abs(static_cast<double>(noisy[c]) -
                     static_cast<double>(exact[c])) /
            static_cast<double>(exact[c]);
        max_rel = std::max(max_rel, rel);
    }
    EXPECT_GT(max_rel, 0.0); // noise actually does something
    // Half-level sigma on the one tuned slice (level 8 of raw 2048)
    // perturbs a column sum by at most a few level-steps: bounded.
    EXPECT_LT(max_rel, 0.25);
}

/** Property: MVM distributes over input decomposition. */
class CrossbarLinearityTest : public ::testing::TestWithParam<int>
{
};

TEST_P(CrossbarLinearityTest, MvmIsLinearInInput)
{
    DeviceParams params;
    const std::uint32_t dim = 8;
    Crossbar cb(dim, params);
    Rng rng(GetParam());
    for (std::uint32_t r = 0; r < dim; ++r)
        for (std::uint32_t c = 0; c < dim; ++c)
            cb.programValue(
                r, c,
                FixedPoint::fromRaw(
                    static_cast<FixedPoint::Raw>(rng.below(4096)), 0));

    std::vector<FixedPoint::Raw> x1(dim);
    std::vector<FixedPoint::Raw> x2(dim);
    std::vector<FixedPoint::Raw> sum(dim);
    for (std::uint32_t r = 0; r < dim; ++r) {
        x1[r] = static_cast<FixedPoint::Raw>(rng.below(30000));
        x2[r] = static_cast<FixedPoint::Raw>(rng.below(30000));
        sum[r] = static_cast<FixedPoint::Raw>(x1[r] + x2[r]);
    }
    const auto y1 = cb.mvmRaw(x1);
    const auto y2 = cb.mvmRaw(x2);
    const auto ys = cb.mvmRaw(sum);
    for (std::uint32_t c = 0; c < dim; ++c)
        EXPECT_EQ(ys[c], y1[c] + y2[c]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossbarLinearityTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------- row-occupancy skip

/** Digital reference MVM from the exactly stored raw values. */
std::vector<std::uint64_t>
denseReferenceMvm(const Crossbar &cb,
                  const std::vector<FixedPoint::Raw> &x)
{
    std::vector<std::uint64_t> y(cb.dim(), 0);
    for (std::uint32_t c = 0; c < cb.dim(); ++c)
        for (std::uint32_t r = 0; r < cb.dim(); ++r)
            y[c] += static_cast<std::uint64_t>(x[r]) * cb.storedRaw(r, c);
    return y;
}

/**
 * Row skipping must be bit-exact against a dense digital MVM for the
 * weight/input shapes of all six algorithms: fractional PageRank/CF
 * weights, raw SpMV values, unit BFS weights, integer SSSP distances
 * and WCC's all-zero weights — each programmed sparsely so most rows
 * are unoccupied.
 */
TEST(CrossbarOccupancyTest, SparseMvmMatchesDenseReferencePerAlgorithm)
{
    struct Pattern
    {
        const char *algo;
        int fracBits;
        double loWeight, hiWeight;
    };
    const Pattern patterns[] = {
        {"pagerank", 15, 0.001, 0.9},
        {"spmv", 8, 0.1, 100.0},
        {"bfs", 0, 1.0, 1.0},
        {"sssp", 0, 1.0, 255.0},
        {"wcc", 0, 0.0, 0.0},
        {"cf", 12, 0.01, 4.9},
    };

    DeviceParams params;
    const std::uint32_t dim = 16;
    Rng rng(99);
    for (const Pattern &p : patterns) {
        Crossbar cb(dim, params);
        // Sparse power-law-ish fill: ~2 occupied rows of 16.
        for (int e = 0; e < 6; ++e) {
            const auto r = static_cast<std::uint32_t>(rng.below(4));
            const auto c = static_cast<std::uint32_t>(rng.below(dim));
            const double w =
                p.loWeight +
                rng.uniform() * (p.hiWeight - p.loWeight);
            cb.programValue(r, c, FixedPoint::quantize(w, p.fracBits));
        }
        std::vector<FixedPoint::Raw> x(dim);
        for (auto &v : x)
            v = static_cast<FixedPoint::Raw>(rng.below(65536));

        EXPECT_EQ(cb.mvmRaw(x), denseReferenceMvm(cb, x)) << p.algo;
        EXPECT_LE(cb.occupiedRows(), 4u) << p.algo;
    }
}

TEST(CrossbarOccupancyTest, EmptyCrossbarSkipsToZeros)
{
    DeviceParams params;
    Crossbar cb(8, params);
    EXPECT_EQ(cb.occupiedRows(), 0u);
    EXPECT_TRUE(cb.occupiedRowIndices().empty());
    const std::vector<std::uint64_t> y =
        cb.mvmRaw(std::vector<FixedPoint::Raw>(8, 0xFFFF));
    for (const std::uint64_t v : y)
        EXPECT_EQ(v, 0u);
}

TEST(CrossbarOccupancyTest, ZeroProgramsLeaveRowsUnoccupied)
{
    // WCC programs zero-weight edges: the cells stay at level 0, so
    // the row mask must not claim the row may hold nonzeros (presence
    // is tracked separately by the GE array).
    DeviceParams params;
    Crossbar cb(8, params);
    cb.programValue(2, 1, FixedPoint::quantize(0.0, 0));
    EXPECT_FALSE(cb.rowMayHoldNonzero(2));
    cb.programValue(2, 5, FixedPoint::fromRaw(42, 0));
    EXPECT_TRUE(cb.rowMayHoldNonzero(2));
    EXPECT_EQ(cb.occupiedRowIndices(),
              (std::vector<std::uint32_t>{2}));
}

TEST(CrossbarOccupancyTest, SelectRowSkipsUnoccupiedRows)
{
    DeviceParams params;
    Crossbar cb(4, params);
    cb.programValue(1, 0, FixedPoint::fromRaw(9, 0));
    const std::vector<FixedPoint::Raw> empty_row = cb.selectRow(3);
    for (const FixedPoint::Raw v : empty_row)
        EXPECT_EQ(v, 0u);
    EXPECT_EQ(cb.selectRow(1)[0], 9u);
}

TEST(CrossbarOccupancyTest, ClearResetsOccupancyAndCells)
{
    DeviceParams params;
    Crossbar cb(8, params);
    cb.programValue(0, 0, FixedPoint::fromRaw(0xFFFF, 0));
    cb.programValue(7, 7, FixedPoint::fromRaw(0x1234, 0));
    EXPECT_EQ(cb.occupiedRows(), 2u);
    cb.clear();
    EXPECT_EQ(cb.occupiedRows(), 0u);
    EXPECT_TRUE(cb.occupiedRowIndices().empty());
    for (std::uint32_t r = 0; r < 8; ++r)
        for (std::uint32_t c = 0; c < 8; ++c)
            EXPECT_EQ(cb.storedRaw(r, c), 0u);

    // Reprogram after clear: occupancy and results rebuild cleanly.
    cb.programValue(3, 2, FixedPoint::fromRaw(7, 0));
    std::vector<FixedPoint::Raw> x(8, 0);
    x[3] = 2;
    EXPECT_EQ(cb.mvmRaw(x)[2], 14u);
}

TEST(CrossbarOccupancyTest, VariationRngNeutralToZeroPrograms)
{
    // Two crossbars with the same variation seed and the same nonzero
    // cells must read identically even if one of them additionally
    // "programmed" zero values elsewhere: level-0 cells never consume
    // an RNG draw, so the row skip cannot shift the noise stream.
    DeviceParams params;
    Crossbar a(8, params);
    Crossbar b(8, params);
    for (Crossbar *cb : {&a, &b}) {
        cb->programValue(1, 3, FixedPoint::fromRaw(0x00F3, 0));
        cb->programValue(5, 0, FixedPoint::fromRaw(0x1201, 0));
    }
    b.programValue(0, 0, FixedPoint::quantize(0.0, 0));
    b.programValue(6, 6, FixedPoint::quantize(0.0, 0));
    a.setVariation(1.5, 77);
    b.setVariation(1.5, 77);

    std::vector<FixedPoint::Raw> x(8);
    for (std::uint32_t r = 0; r < 8; ++r)
        x[r] = static_cast<FixedPoint::Raw>(r * 111 + 1);
    for (int pass = 0; pass < 3; ++pass)
        EXPECT_EQ(a.mvmRaw(x), b.mvmRaw(x)) << "pass " << pass;
    EXPECT_EQ(a.selectRow(5), b.selectRow(5));
}

} // namespace
} // namespace graphr
