#!/usr/bin/env bash
# Concurrent-serving smoke (run from ctest and CI): one graphr_serve
# daemon on an ephemeral loopback port serving 8 simultaneous
# graphr_loadgen connections x 50 requests each, then a graceful
# SIGTERM. Asserts:
#   1. every request is answered ok — zero errors, zero timeouts,
#      zero transport failures across all 400 requests;
#   2. admission is fair: the replay is closed-loop, so every
#      connection must complete exactly its own 50 requests and the
#      per-connection fairness spread must be 0 — no connection may
#      be starved by its siblings;
#   3. SIGTERM drains cleanly: the daemon exits 0.
set -eu

serve_bin="$1"
loadgen_bin="$2"

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
  if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -TERM "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "loadgen smoke: $*" >&2; exit 1; }

# Two request templates, so the replay interleaves distinct plans and
# the daemon's warm caches carry most of the load.
cat > "$workdir/trace.jsonl" <<'EOF'
{"type":"run","workload":"pagerank","backend":"outofcore","dataset":"rmat:vertices=128,edges=512,seed=3"}
{"type":"run","workload":"wcc","backend":"graphr","dataset":"chain:n=64"}
EOF

"$serve_bin" --port 0 --jobs 2 2> "$workdir/serve.log" &
daemon_pid=$!

# --port 0 picks a free port and logs it; wait for the line.
port=""
for _ in $(seq 1 100); do
  port="$(sed -n \
    's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
    "$workdir/serve.log" | head -n 1)"
  [ -n "$port" ] && break
  kill -0 "$daemon_pid" 2>/dev/null \
    || fail "daemon died before listening: $(cat "$workdir/serve.log")"
  sleep 0.1
done
[ -n "$port" ] || fail "daemon never reported its port"

out="$("$loadgen_bin" --port "$port" --connections 8 --requests 50 \
  --trace "$workdir/trace.jsonl" --timeout-ms 120000)" \
  || fail "loadgen exited nonzero: $out"
echo "$out"

expect() { # substring the summary line must contain
  echo "$out" | grep -qF "$1" || fail "expected $1 in: $out"
}
expect '"sent":400'
expect '"ok":400'
expect '"errors":0'
expect '"timed_out":0'
expect '"transport_failures":0'
expect '"spread":0'

kill -TERM "$daemon_pid"
wait "$daemon_pid" || fail "daemon exited nonzero after SIGTERM"
daemon_pid=""

echo "loadgen smoke ok"
