/**
 * @file
 * Tests for the NVSim-style node area model.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "rram/area.hh"

namespace graphr
{
namespace
{

TEST(AreaTest, BreakdownSumsToTotal)
{
    const TilingParams tiling;
    const DeviceParams device;
    const AreaBreakdown area = nodeArea(tiling, device);
    EXPECT_NEAR(area.total(),
                area.crossbars + area.adcs + area.sampleHolds +
                    area.drivers + area.shiftAdds + area.salus +
                    area.registers + area.controller,
                1e-12);
    EXPECT_GT(area.total(), 0.0);
}

TEST(AreaTest, ScalesWithGeCount)
{
    TilingParams small;
    small.numGe = 16;
    TilingParams big;
    big.numGe = 64;
    const DeviceParams device;
    const AreaBreakdown a = nodeArea(small, device);
    const AreaBreakdown b = nodeArea(big, device);
    EXPECT_GT(b.total(), a.total());
    EXPECT_NEAR(b.adcs / a.adcs, 4.0, 1e-9);
    EXPECT_NEAR(b.crossbars / a.crossbars, 4.0, 1e-9);
}

TEST(AreaTest, FinerCellsCostMoreArray)
{
    const TilingParams tiling;
    DeviceParams coarse;
    coarse.cellBits = 8; // 2 slices per value
    DeviceParams fine;
    fine.cellBits = 2; // 8 slices per value
    const AreaBreakdown a = nodeArea(tiling, coarse);
    const AreaBreakdown b = nodeArea(tiling, fine);
    EXPECT_NEAR(b.crossbars / a.crossbars, 4.0, 1e-9);
    EXPECT_GT(b.sampleHolds, a.sampleHolds);
}

TEST(AreaTest, CrossbarsAreSmallPartOfNode)
{
    // The paper's low-hardware-cost argument: the 4F^2 ReRAM array is
    // tiny relative to the mixed-signal periphery.
    const AreaBreakdown area = nodeArea(TilingParams{}, DeviceParams{});
    EXPECT_LT(area.crossbars, area.adcs + area.drivers +
                                  area.sampleHolds + area.controller);
}

TEST(AreaTest, TechnologyShrinkReducesArray)
{
    AreaParams n32;
    n32.featureNm = 32.0;
    AreaParams n16;
    n16.featureNm = 16.0;
    const AreaBreakdown a = nodeArea(TilingParams{}, DeviceParams{}, n32);
    const AreaBreakdown b = nodeArea(TilingParams{}, DeviceParams{}, n16);
    EXPECT_NEAR(a.crossbars / b.crossbars, 4.0, 1e-9);
}

TEST(AreaTest, PrintsAllComponents)
{
    std::ostringstream oss;
    nodeArea(TilingParams{}, DeviceParams{}).print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("crossbars"), std::string::npos);
    EXPECT_NE(out.find("ADCs"), std::string::npos);
    EXPECT_NE(out.find("total"), std::string::npos);
}

} // namespace
} // namespace graphr
