/**
 * @file
 * Tests for the GraphR node's timing/energy accounting (timing-only
 * mode, the configuration benches use).
 */

#include <gtest/gtest.h>

#include "graph/datasets.hh"
#include "graph/generator.hh"
#include "graphr/node.hh"

namespace graphr
{
namespace
{

GraphRConfig
paperConfig()
{
    // Paper section 5.2: C=8, N=32, G=64.
    return GraphRConfig{};
}

TEST(NodeTimingTest, DefaultsMatchPaperConfiguration)
{
    const GraphRConfig cfg = paperConfig();
    EXPECT_EQ(cfg.tiling.crossbarDim, 8u);
    EXPECT_EQ(cfg.tiling.crossbarsPerGe, 32u);
    EXPECT_EQ(cfg.tiling.numGe, 64u);
    EXPECT_EQ(cfg.device.cellBits, 4);
    EXPECT_EQ(cfg.device.valueBits, 16);
    EXPECT_NEAR(cfg.device.readLatencyNs, 29.31, 1e-9);
    EXPECT_NEAR(cfg.device.writeLatencyNs, 50.88, 1e-9);
}

TEST(NodeTimingTest, PageRankReportIsConsistent)
{
    const CooGraph g = makeRmat(
        {.numVertices = 2000, .numEdges = 20000, .seed = 41});
    GraphRNode node(paperConfig());
    PageRankParams params;
    params.maxIterations = 10;
    params.tolerance = 0.0;
    const SimReport rep = node.runPageRank(g, params);

    EXPECT_EQ(rep.iterations, 10u);
    EXPECT_GT(rep.seconds, 0.0);
    EXPECT_GT(rep.joules, 0.0);
    EXPECT_EQ(rep.edgesProcessed, 10u * g.numEdges());
    EXPECT_GT(rep.tilesProcessed, 0u);
    EXPECT_GT(rep.occupancy, 0.0);
    // Energy breakdown must sum to the total.
    EXPECT_NEAR(rep.energy.total(), rep.joules, 1e-15);
}

TEST(NodeTimingTest, TimeScalesWithIterationsPerSweepCharging)
{
    const CooGraph g = makeRmat(
        {.numVertices = 1000, .numEdges = 8000, .seed = 42});
    GraphRConfig cfg = paperConfig();
    cfg.programCharging = ProgramCharging::kPerSweep;
    cfg.iterationOverheadNs = 0.0; // exact 2x check below
    GraphRNode node(cfg);
    PageRankParams p5;
    p5.maxIterations = 5;
    p5.tolerance = 0.0;
    PageRankParams p10;
    p10.maxIterations = 10;
    p10.tolerance = 0.0;
    const SimReport r5 = node.runPageRank(g, p5);
    const SimReport r10 = node.runPageRank(g, p10);
    EXPECT_NEAR(r10.seconds, 2.0 * r5.seconds, 1e-12);
    EXPECT_NEAR(r10.joules, 2.0 * r5.joules, 1e-12);
}

TEST(NodeTimingTest, ResidentGraphAmortisesProgramming)
{
    // Under the kOnce policy, programming is charged once: doubling
    // iterations must less than double the time, and the marginal
    // iteration cost must be iteration-independent.
    const CooGraph g = makeRmat(
        {.numVertices = 1000, .numEdges = 8000, .seed = 42});
    GraphRConfig cfg = paperConfig();
    cfg.programCharging = ProgramCharging::kOnce;
    GraphRNode node(cfg);
    PageRankParams p5;
    p5.maxIterations = 5;
    p5.tolerance = 0.0;
    PageRankParams p10;
    p10.maxIterations = 10;
    p10.tolerance = 0.0;
    PageRankParams p15;
    p15.maxIterations = 15;
    p15.tolerance = 0.0;
    const SimReport r5 = node.runPageRank(g, p5);
    const SimReport r10 = node.runPageRank(g, p10);
    const SimReport r15 = node.runPageRank(g, p15);
    EXPECT_LT(r10.seconds, 2.0 * r5.seconds);
    EXPECT_GT(r10.seconds, r5.seconds);
    EXPECT_NEAR(r15.seconds - r10.seconds, r10.seconds - r5.seconds,
                1e-12);
    // Programming energy identical regardless of iteration count.
    EXPECT_DOUBLE_EQ(r5.energy.write, r10.energy.write);
}

TEST(NodeTimingTest, EnergyGrowsWithGraphSize)
{
    GraphRNode node(paperConfig());
    PageRankParams params;
    params.maxIterations = 5;
    params.tolerance = 0.0;
    const CooGraph small = makeRmat(
        {.numVertices = 1000, .numEdges = 5000, .seed = 43});
    const CooGraph big = makeRmat(
        {.numVertices = 1000, .numEdges = 40000, .seed = 43});
    const SimReport rs = node.runPageRank(small, params);
    const SimReport rb = node.runPageRank(big, params);
    EXPECT_GT(rb.joules, rs.joules);
    EXPECT_GT(rb.seconds, rs.seconds);
}

TEST(NodeTimingTest, SpmvIsOneSweep)
{
    const CooGraph g = makeRmat(
        {.numVertices = 1000, .numEdges = 8000, .seed = 44});
    GraphRNode node(paperConfig());
    const std::vector<Value> x(g.numVertices(), 1.0);
    const SimReport rep = node.runSpmv(g, x);
    EXPECT_EQ(rep.iterations, 1u);
    EXPECT_EQ(rep.edgesProcessed, g.numEdges());
}

TEST(NodeTimingTest, BfsProcessesSubsetOfTiles)
{
    const CooGraph g = makeRmat(
        {.numVertices = 2000, .numEdges = 10000, .seed = 45});
    GraphRNode node(paperConfig());
    const SimReport rep = node.runBfs(g, 0);
    EXPECT_GT(rep.iterations, 1u);
    // Add-op rounds only touch tiles with active sources, so the
    // per-round average must be below the total tile count.
    EXPECT_GT(rep.tilesSkipped, 0u);
    EXPECT_GT(rep.activeRowOps, 0u);
}

TEST(NodeTimingTest, SsspSlowerThanPageRankPerEdge)
{
    // Parallel add-op serialises rows: per processed edge, SSSP time
    // should exceed PageRank's (paper's explanation for lower BFS /
    // SSSP speedups).
    const CooGraph g = makeRmat({.numVertices = 2000,
                                 .numEdges = 20000,
                                 .maxWeight = 15.0,
                                 .seed = 46});
    GraphRNode node(paperConfig());
    PageRankParams params;
    params.maxIterations = 10;
    params.tolerance = 0.0;
    const SimReport pr = node.runPageRank(g, params);
    const SimReport ss = node.runSssp(g, 0);
    const double pr_per_edge =
        pr.seconds / static_cast<double>(pr.edgesProcessed);
    const double ss_per_edge =
        ss.seconds / static_cast<double>(ss.edgesProcessed);
    EXPECT_GT(ss_per_edge, pr_per_edge);
}

TEST(NodeTimingTest, CfScalesWithFeatureLength)
{
    const CooGraph ratings = makeBipartiteRatings(500, 100, 5000, 47);
    GraphRNode node(paperConfig());
    CfParams k8;
    k8.numUsers = 500;
    k8.featureLength = 8;
    k8.epochs = 2;
    CfParams k32 = k8;
    k32.featureLength = 32;
    const SimReport r8 = node.runCf(ratings, k8);
    const SimReport r32 = node.runCf(ratings, k32);
    EXPECT_GT(r32.seconds, r8.seconds);
    EXPECT_GT(r32.joules, r8.joules);
}

TEST(NodeTimingTest, PipeliningNeverSlower)
{
    const CooGraph g = makeRmat(
        {.numVertices = 1500, .numEdges = 12000, .seed = 48});
    GraphRConfig piped = paperConfig();
    piped.pipelineTiles = true;
    GraphRConfig serial = paperConfig();
    serial.pipelineTiles = false;
    PageRankParams params;
    params.maxIterations = 5;
    params.tolerance = 0.0;
    const SimReport rp = GraphRNode(piped).runPageRank(g, params);
    const SimReport rs = GraphRNode(serial).runPageRank(g, params);
    EXPECT_LE(rp.seconds, rs.seconds);
    // Event energy is identical; only the peripheral (busy-time)
    // component grows with the longer serial execution.
    EXPECT_LE(rp.joules, rs.joules);
    EXPECT_DOUBLE_EQ(rp.energy.write, rs.energy.write);
    EXPECT_DOUBLE_EQ(rp.energy.adc, rs.energy.adc);
}

TEST(NodeTimingTest, EmptyTilesAreFree)
{
    // A chain leaves most of the grid empty; the report must show
    // skipped tiles and cost far below the dense equivalent.
    const CooGraph chain = makeChain(4096);
    GraphRNode node(paperConfig());
    PageRankParams params;
    params.maxIterations = 1;
    params.tolerance = 0.0;
    const SimReport rep = node.runPageRank(chain, params);
    EXPECT_GT(rep.tilesSkipped, 0u);
}

TEST(NodeTimingTest, WriteEnergyDominates)
{
    // With 3.91 nJ writes vs pJ-scale reads, programming dominates
    // the GraphR energy budget on MAC workloads.
    const CooGraph g = makeRmat(
        {.numVertices = 2000, .numEdges = 20000, .seed = 49});
    GraphRNode node(paperConfig());
    PageRankParams params;
    params.maxIterations = 5;
    params.tolerance = 0.0;
    const SimReport rep = node.runPageRank(g, params);
    EXPECT_GT(rep.energy.write, rep.energy.read);
    EXPECT_GT(rep.energy.write, rep.energy.adc);
}

} // namespace
} // namespace graphr
