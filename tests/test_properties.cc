/**
 * @file
 * Cross-module property tests: invariants that must hold for every
 * (graph, architecture) combination, swept with TEST_P.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "algorithms/pagerank.hh"
#include "algorithms/traversal.hh"
#include "graph/generator.hh"
#include "graphr/node.hh"
#include "graphr/tile_meta.hh"
#include "rram/salu.hh"

namespace graphr
{
namespace
{

/** (crossbarDim, crossbarsPerGe, numGe, vertices, edges, seed). */
using ConfigPoint = std::tuple<std::uint32_t, std::uint32_t,
                               std::uint32_t, VertexId, EdgeId,
                               std::uint64_t>;

class NodePropertyTest : public ::testing::TestWithParam<ConfigPoint>
{
  protected:
    GraphRConfig
    config() const
    {
        const auto [c, n, g, nv, ne, seed] = GetParam();
        (void)nv;
        (void)ne;
        (void)seed;
        GraphRConfig cfg;
        cfg.tiling.crossbarDim = c;
        cfg.tiling.crossbarsPerGe = n;
        cfg.tiling.numGe = g;
        return cfg;
    }

    CooGraph
    graph() const
    {
        const auto [c, n, g, nv, ne, seed] = GetParam();
        (void)c;
        (void)n;
        (void)g;
        return makeRmat({.numVertices = nv,
                         .numEdges = ne,
                         .maxWeight = 15.0,
                         .seed = seed});
    }
};

TEST_P(NodePropertyTest, PageRankReportInvariants)
{
    const CooGraph g = graph();
    GraphRNode node(config());
    PageRankParams params;
    params.maxIterations = 5;
    params.tolerance = 0.0;
    const SimReport rep = node.runPageRank(g, params);

    EXPECT_EQ(rep.iterations, 5u);
    EXPECT_EQ(rep.edgesProcessed, 5u * g.numEdges());
    EXPECT_GT(rep.seconds, 0.0);
    EXPECT_GT(rep.joules, 0.0);
    EXPECT_GT(rep.occupancy, 0.0);
    EXPECT_LE(rep.occupancy, 1.0);
    // Breakdown must account for the total exactly.
    EXPECT_NEAR(rep.energy.total(), rep.joules,
                1e-12 * std::max(1.0, rep.joules));
    // Component times are each bounded by... the serial sum.
    EXPECT_LE(rep.seconds, rep.programSeconds + rep.computeSeconds +
                               rep.streamSeconds + 1e-3);
}

TEST_P(NodePropertyTest, TileAccountingConsistent)
{
    const CooGraph g = graph();
    const GraphRConfig cfg = config();
    const GridPartition part(g.numVertices(), cfg.tiling);
    const OrderedEdgeList ordered(g, part);
    const TileMetaTable meta(ordered);

    // Tile metadata conserves edges and respects geometry.
    std::uint64_t nnz = 0;
    for (const TileMeta &m : meta.tiles()) {
        nnz += m.nnz;
        EXPECT_GT(m.nnz, 0u);
        EXPECT_GE(m.crossbarsUsed, 1u);
        EXPECT_LE(m.crossbarsUsed,
                  cfg.tiling.crossbarsPerGe * cfg.tiling.numGe);
        EXPECT_GE(m.maxRowsProgrammed, 1u);
        EXPECT_LE(m.maxRowsProgrammed, cfg.tiling.crossbarDim);
        EXPECT_LE(m.nnzColumns, m.nnz);
        EXPECT_LE(m.nnzColumns, part.tileWidth());
        std::uint64_t row_sum = 0;
        for (std::uint32_t r : m.rowNnz)
            row_sum += r;
        EXPECT_EQ(row_sum, m.nnz);
    }
    EXPECT_EQ(nnz, g.numEdges());
    EXPECT_EQ(meta.totalNnz(), g.numEdges());
}

TEST_P(NodePropertyTest, SsspActiveRowsBounded)
{
    const CooGraph g = graph();
    GraphRNode node(config());
    const SimReport rep = node.runSssp(g, 0);
    // Every processed tile has >= 1 active row and <= C rows.
    EXPECT_GE(rep.activeRowOps, rep.tilesProcessed);
    EXPECT_LE(rep.activeRowOps,
              rep.tilesProcessed * config().tiling.crossbarDim);
}

TEST_P(NodePropertyTest, EnergyMonotoneInIterations)
{
    const CooGraph g = graph();
    GraphRNode node(config());
    PageRankParams p2;
    p2.maxIterations = 2;
    p2.tolerance = 0.0;
    PageRankParams p6;
    p6.maxIterations = 6;
    p6.tolerance = 0.0;
    const SimReport r2 = node.runPageRank(g, p2);
    const SimReport r6 = node.runPageRank(g, p6);
    EXPECT_GT(r6.joules, r2.joules);
    EXPECT_GT(r6.seconds, r2.seconds);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NodePropertyTest,
    ::testing::Values(
        ConfigPoint{4u, 2u, 2u, 200, 1500, 1},
        ConfigPoint{8u, 4u, 4u, 500, 4000, 2},
        ConfigPoint{8u, 32u, 64u, 3000, 24000, 3},
        ConfigPoint{16u, 8u, 8u, 1000, 8000, 4},
        ConfigPoint{4u, 16u, 16u, 800, 2000, 5},
        ConfigPoint{32u, 2u, 4u, 400, 3000, 6}));

TEST(SaluTest, AllOpsBehave)
{
    Salu salu(SaluOp::kAdd);
    EXPECT_DOUBLE_EQ(salu.reduce(2.0, 3.0), 5.0);
    salu.configure(SaluOp::kMin);
    EXPECT_DOUBLE_EQ(salu.reduce(2.0, 3.0), 2.0);
    salu.configure(SaluOp::kMax);
    EXPECT_DOUBLE_EQ(salu.reduce(2.0, 3.0), 3.0);
    EXPECT_EQ(salu.opCount(), 3u);
    salu.resetCount();
    EXPECT_EQ(salu.opCount(), 0u);
}

TEST(SaluTest, VectorReduceMatchesPaperFigure15)
{
    // Fig. 15(a): add [2,4,5,3]+[7,2,3,1] -> [9,6,8,4].
    Salu add(SaluOp::kAdd);
    std::vector<double> reg = {2, 4, 5, 3};
    add.reduceInto(reg, {7, 2, 3, 1});
    EXPECT_EQ(reg, (std::vector<double>{9, 6, 8, 4}));

    // Fig. 15(b): min [3,9,4,2] vs [5,6,4,7] -> [3,6,4,2].
    Salu min_op(SaluOp::kMin);
    std::vector<double> reg2 = {5, 6, 4, 7};
    min_op.reduceInto(reg2, {3, 9, 4, 2});
    EXPECT_EQ(reg2, (std::vector<double>{3, 6, 4, 2}));
}

TEST(SaluTest, LengthMismatchPanics)
{
    Salu salu(SaluOp::kAdd);
    std::vector<double> reg = {1.0};
    EXPECT_DEATH(salu.reduceInto(reg, {1.0, 2.0}), "");
}

/** PageRank invariants across damping factors. */
class PageRankDampingTest : public ::testing::TestWithParam<double>
{
};

TEST_P(PageRankDampingTest, StochasticAndConverging)
{
    const CooGraph g = makeRmat(
        {.numVertices = 400, .numEdges = 3000, .seed = 10});
    PageRankParams params;
    params.damping = GetParam();
    params.maxIterations = 100;
    params.tolerance = 1e-10;
    const PageRankResult res = pagerank(g, params);
    double sum = 0.0;
    for (Value r : res.ranks) {
        EXPECT_GE(r, 0.0);
        sum += r;
    }
    EXPECT_NEAR(sum, 1.0, 1e-8);
    EXPECT_TRUE(res.converged);
}

INSTANTIATE_TEST_SUITE_P(Damping, PageRankDampingTest,
                         ::testing::Values(0.5, 0.8, 0.85, 0.95));

/** SSSP distance labels are a fixpoint for any source. */
class SsspSourceTest : public ::testing::TestWithParam<VertexId>
{
};

TEST_P(SsspSourceTest, FixpointNoEdgeRelaxable)
{
    const CooGraph g = makeRmat({.numVertices = 300,
                                 .numEdges = 2500,
                                 .maxWeight = 9.0,
                                 .seed = 11});
    const TraversalResult res = sssp(g, GetParam());
    for (const Edge &e : g.edges()) {
        if (std::isinf(res.dist[e.src]))
            continue;
        EXPECT_LE(res.dist[e.dst], res.dist[e.src] + e.weight + 1e-9);
    }
    EXPECT_DOUBLE_EQ(res.dist[GetParam()], 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sources, SsspSourceTest,
                         ::testing::Values(0, 1, 17, 123, 299));

} // namespace
} // namespace graphr
