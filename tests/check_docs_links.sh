#!/usr/bin/env bash
# Docs link check (run from ctest and CI): every relative markdown
# link in README.md and docs/*.md must resolve to an existing file or
# directory, so the docs tree cannot silently rot as files move.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
status=0

for doc in "$root"/README.md "$root"/docs/*.md; do
  [ -f "$doc" ] || continue
  dir="$(dirname "$doc")"
  # Markdown links: the (target) of every ](target); external URLs
  # and pure in-page anchors are skipped.
  grep -oE '\]\([^)]+\)' "$doc" | sed -e 's/^](//' -e 's/)$//' \
    | while IFS= read -r target; do
      case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
      esac
      path="${target%%#*}"
      [ -n "$path" ] || continue
      if [ ! -e "$dir/$path" ]; then
        echo "broken link in ${doc#"$root"/}: $target"
        exit 1
      fi
    done || status=1
done

if [ "$status" -eq 0 ]; then
  echo "docs links ok"
fi
exit "$status"
