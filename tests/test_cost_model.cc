/**
 * @file
 * Tests for the GraphR tile cost model and energy ledger.
 */

#include <gtest/gtest.h>

#include "graphr/cost_model.hh"
#include "rram/energy.hh"

namespace graphr
{
namespace
{

TileMeta
meta(std::uint64_t nnz, std::uint32_t crossbars, std::uint32_t max_rows,
     std::uint64_t nnz_cols)
{
    TileMeta m;
    m.nnz = nnz;
    m.crossbarsUsed = crossbars;
    m.maxRowsProgrammed = max_rows;
    m.nnzColumns = nnz_cols;
    return m;
}

GraphRConfig
smallConfig()
{
    GraphRConfig cfg;
    cfg.tiling.crossbarDim = 8;
    cfg.tiling.crossbarsPerGe = 4;
    cfg.tiling.numGe = 4;
    return cfg;
}

TEST(CostModelTest, ProgramTimeScalesWithRowDepth)
{
    const GraphRConfig cfg = smallConfig();
    const CostModel model(cfg);
    EnergyEvents ev;
    const TileCost one = model.macTile(meta(8, 2, 1, 8), ev);
    const TileCost four = model.macTile(meta(8, 2, 4, 8), ev);
    EXPECT_NEAR(four.programNs, 4.0 * one.programNs, 1e-9);
    EXPECT_NEAR(one.programNs, cfg.device.writeLatencyNs, 1e-9);
}

TEST(CostModelTest, ComputeTimeIndependentOfRowDepth)
{
    const CostModel model(smallConfig());
    EnergyEvents ev;
    const TileCost a = model.macTile(meta(8, 2, 1, 8), ev);
    const TileCost b = model.macTile(meta(8, 2, 8, 8), ev);
    EXPECT_DOUBLE_EQ(a.computeNs, b.computeNs);
}

TEST(CostModelTest, AdcTimeScalesWithCrossbars)
{
    const CostModel model(smallConfig());
    EnergyEvents ev;
    const TileCost narrow = model.macTile(meta(8, 1, 1, 8), ev);
    const TileCost wide = model.macTile(meta(8, 16, 1, 8), ev);
    EXPECT_GT(wide.computeNs, narrow.computeNs);
}

TEST(CostModelTest, PipelineTakesMaxSerialTakesSum)
{
    TileCost cost;
    cost.programNs = 100.0;
    cost.overlappedProgramNs = 25.0; // 4 banks programming in overlap
    cost.computeNs = 40.0;
    cost.streamNs = 10.0;
    // Pipelined: bank-overlapped programming hides behind compute.
    EXPECT_DOUBLE_EQ(cost.totalNs(true), 40.0);
    // Serial: full latencies add.
    EXPECT_DOUBLE_EQ(cost.totalNs(false), 150.0);
}

TEST(CostModelTest, ProgramOverlapDepthBounds)
{
    const CostModel model(smallConfig()); // N*G = 16 crossbars
    EXPECT_DOUBLE_EQ(model.programOverlapDepth(1), 16.0);
    EXPECT_DOUBLE_EQ(model.programOverlapDepth(4), 4.0);
    EXPECT_DOUBLE_EQ(model.programOverlapDepth(16), 1.0);
    // More crossbars than exist: clamped at 1 (no speedup).
    EXPECT_DOUBLE_EQ(model.programOverlapDepth(32), 1.0);
}

TEST(CostModelTest, MacPassesScaleComputeNotProgram)
{
    const CostModel model(smallConfig());
    EnergyEvents ev1;
    EnergyEvents ev8;
    const TileCost p1 = model.macTile(meta(16, 4, 4, 12), ev1, 1);
    const TileCost p8 = model.macTile(meta(16, 4, 4, 12), ev8, 8);
    EXPECT_DOUBLE_EQ(p8.programNs, p1.programNs);
    EXPECT_GT(p8.computeNs, 7.0 * p1.computeNs);
    EXPECT_EQ(ev8.arrayReads, 8 * ev1.arrayReads);
    EXPECT_EQ(ev8.adcSamples, 8 * ev1.adcSamples);
    EXPECT_EQ(ev8.arrayWrites, ev1.arrayWrites);
    EXPECT_EQ(ev8.memBytes, ev1.memBytes);
}

TEST(CostModelTest, AddOpScalesWithActiveRows)
{
    const CostModel model(smallConfig());
    const double dispatch = smallConfig().device.tileDispatchNs;
    EnergyEvents ev;
    const TileCost one = model.addOpTile(meta(16, 4, 4, 12), 1, ev);
    const TileCost four = model.addOpTile(meta(16, 4, 4, 12), 4, ev);
    // Rows are serial on top of a fixed per-tile dispatch cost.
    EXPECT_NEAR(four.computeNs - dispatch,
                4.0 * (one.computeNs - dispatch), 1e-9);
    EXPECT_DOUBLE_EQ(four.programNs, one.programNs);
}

TEST(CostModelTest, EventsAreEmitted)
{
    const CostModel model(smallConfig());
    EnergyEvents ev;
    model.macTile(meta(10, 3, 2, 9), ev);
    EXPECT_EQ(ev.arrayWrites, 6u); // crossbars * maxRows
    EXPECT_GT(ev.arrayReads, 0u);
    EXPECT_GT(ev.adcSamples, 0u);
    EXPECT_GT(ev.memBytes, 0u);
}

TEST(CostModelTest, MoreAdcsShortenConversion)
{
    GraphRConfig few = smallConfig();
    few.device.adcsPerGe = 1;
    GraphRConfig many = smallConfig();
    many.device.adcsPerGe = 8;
    EnergyEvents ev;
    const TileCost slow = CostModel(few).macTile(meta(8, 16, 1, 8), ev);
    const TileCost fast = CostModel(many).macTile(meta(8, 16, 1, 8), ev);
    EXPECT_GT(slow.computeNs, fast.computeNs);
}

TEST(EnergyLedgerTest, BreakdownSumsToTotal)
{
    DeviceParams params;
    EnergyLedger ledger(params);
    ledger.events().arrayWrites = 100;
    ledger.events().arrayReads = 200;
    ledger.events().adcSamples = 300;
    ledger.events().sampleHolds = 300;
    ledger.events().shiftAdds = 50;
    ledger.events().saluOps = 60;
    ledger.events().regAccesses = 70;
    ledger.events().memBytes = 1000;
    const EnergyBreakdown b = ledger.breakdown();
    EXPECT_NEAR(b.total(),
                b.write + b.read + b.adc + b.sampleHold + b.shiftAdd +
                    b.salu + b.reg + b.memory,
                1e-18);
    EXPECT_GT(b.total(), 0.0);
    // Writes dominate at 3.91 nJ per op.
    EXPECT_GT(b.write, b.read);
}

TEST(EnergyLedgerTest, EventsAddUp)
{
    EnergyEvents a;
    a.arrayWrites = 1;
    a.memBytes = 10;
    EnergyEvents b;
    b.arrayWrites = 2;
    b.adcSamples = 5;
    a += b;
    EXPECT_EQ(a.arrayWrites, 3u);
    EXPECT_EQ(a.adcSamples, 5u);
    EXPECT_EQ(a.memBytes, 10u);
}

} // namespace
} // namespace graphr
