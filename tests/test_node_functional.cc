/**
 * @file
 * End-to-end functional tests: GraphR's analog datapath must agree
 * with the golden algorithms (integration across graph, rram and
 * graphr modules).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/pagerank.hh"
#include "common/random.hh"
#include "algorithms/spmv.hh"
#include "algorithms/traversal.hh"
#include "graph/generator.hh"
#include "graphr/node.hh"

namespace graphr
{
namespace
{

/** Small tiling so functional runs stay fast. */
GraphRConfig
functionalConfig()
{
    GraphRConfig cfg;
    cfg.tiling.crossbarDim = 4;
    cfg.tiling.crossbarsPerGe = 2;
    cfg.tiling.numGe = 2;
    cfg.functional = true;
    cfg.weightFracBits = 12;
    cfg.inputFracBits = 12;
    return cfg;
}

TEST(NodeFunctionalTest, SsspMatchesGoldenExactly)
{
    const CooGraph g = makeRmat({.numVertices = 60,
                                 .numEdges = 500,
                                 .maxWeight = 15.0,
                                 .seed = 31});
    GraphRNode node(functionalConfig());
    std::vector<Value> dist;
    node.runSssp(g, 0, &dist);

    const TraversalResult golden = sssp(g, 0);
    ASSERT_EQ(dist.size(), golden.dist.size());
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (std::isinf(golden.dist[v])) {
            EXPECT_TRUE(std::isinf(dist[v])) << "vertex " << v;
        } else {
            EXPECT_DOUBLE_EQ(dist[v], golden.dist[v]) << "vertex " << v;
        }
    }
}

TEST(NodeFunctionalTest, BfsMatchesGoldenExactly)
{
    const CooGraph g =
        makeRmat({.numVertices = 80, .numEdges = 700, .seed = 32});
    GraphRNode node(functionalConfig());
    std::vector<Value> dist;
    node.runBfs(g, 1, &dist);

    const TraversalResult golden = bfs(g, 1);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (std::isinf(golden.dist[v])) {
            EXPECT_TRUE(std::isinf(dist[v]));
        } else {
            EXPECT_DOUBLE_EQ(dist[v], golden.dist[v]);
        }
    }
}

TEST(NodeFunctionalTest, SsspOnGridExact)
{
    const CooGraph g = makeGrid2d(6, 5, 3, 9.0);
    GraphRNode node(functionalConfig());
    std::vector<Value> dist;
    node.runSssp(g, 0, &dist);
    const TraversalResult golden = sssp(g, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_DOUBLE_EQ(dist[v], golden.dist[v]);
}

TEST(NodeFunctionalTest, PageRankCloseToGolden)
{
    const CooGraph g =
        makeRmat({.numVertices = 50, .numEdges = 400, .seed = 33});
    GraphRNode node(functionalConfig());
    PageRankParams params;
    params.maxIterations = 15;
    params.tolerance = 0.0; // fixed iteration count on both sides
    std::vector<Value> ranks;
    node.runPageRank(g, params, &ranks);

    const PageRankResult golden = pagerank(g, params);
    double max_err = 0.0;
    double sum = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        max_err = std::max(max_err,
                           std::abs(ranks[v] - golden.ranks[v]));
        sum += ranks[v];
    }
    // 12-bit quantisation error accumulates mildly over 15 rounds.
    EXPECT_LT(max_err, 0.02);
    EXPECT_NEAR(sum, 1.0, 0.05);
}

TEST(NodeFunctionalTest, PageRankRankingPreserved)
{
    // Quantisation must not scramble the ordering of clearly
    // separated ranks: compare top vertex.
    const CooGraph g = makeStar(20);
    GraphRNode node(functionalConfig());
    PageRankParams params;
    params.maxIterations = 20;
    std::vector<Value> ranks;
    node.runPageRank(g, params, &ranks);
    const PageRankResult golden = pagerank(g, params);
    // All leaves equal-ranked above hub in both.
    EXPECT_GT(ranks[1], ranks[0]);
    EXPECT_GT(golden.ranks[1], golden.ranks[0]);
}

TEST(NodeFunctionalTest, SpmvCloseToGolden)
{
    const CooGraph g = makeRmat({.numVertices = 40,
                                 .numEdges = 300,
                                 .maxWeight = 3.0,
                                 .seed = 34});
    GraphRNode node(functionalConfig());
    std::vector<Value> x(g.numVertices());
    Rng rng(5);
    for (auto &v : x)
        v = rng.uniform();
    std::vector<Value> y;
    node.runSpmv(g, x, &y);

    const std::vector<Value> golden = spmv(g, x);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_NEAR(y[v], golden[v], 0.01) << "vertex " << v;
}

TEST(NodeFunctionalTest, VariationDegradesGracefully)
{
    // With mild cell variation the SSSP result may differ, but
    // PageRank ordering of a strongly separated graph survives —
    // the paper's error-resilience claim.
    const CooGraph g = makeStar(16);
    GraphRConfig cfg = functionalConfig();
    cfg.variationSigma = 0.3;
    GraphRNode node(cfg);
    PageRankParams params;
    params.maxIterations = 10;
    std::vector<Value> ranks;
    node.runPageRank(g, params, &ranks);
    EXPECT_GT(ranks[3], ranks[0]);
}

TEST(NodeFunctionalTest, FunctionalAndTimingOnlySameSchedule)
{
    // The SimReport of a functional run and a timing-only run must
    // agree on schedule statistics (tiles, edges) for MAC sweeps.
    const CooGraph g =
        makeRmat({.numVertices = 64, .numEdges = 500, .seed = 35});
    GraphRConfig func_cfg = functionalConfig();
    GraphRConfig time_cfg = functionalConfig();
    time_cfg.functional = false;

    PageRankParams params;
    params.maxIterations = 5;
    params.tolerance = 0.0;

    GraphRNode func_node(func_cfg);
    GraphRNode time_node(time_cfg);
    const SimReport a = func_node.runPageRank(g, params);
    const SimReport b = time_node.runPageRank(g, params);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.tilesProcessed, b.tilesProcessed);
    EXPECT_EQ(a.edgesProcessed, b.edgesProcessed);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_DOUBLE_EQ(a.joules, b.joules);
}

} // namespace
} // namespace graphr
