/**
 * @file
 * Tests of the parallel sweep machinery: the ThreadPool, shared-cache
 * concurrency (PlanCache per-key once-construction, golden-PageRank
 * cache hammering), and — the headline property — that a parallel
 * `all x all` sweep produces byte-identical JSON to the serial path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/lru_cache.hh"
#include "common/thread_pool.hh"
#include "driver/driver.hh"
#include "driver/golden_cache.hh"
#include "driver/run_result.hh"
#include "graph/generator.hh"
#include "graphr/engine/plan_cache.hh"

namespace graphr
{
namespace
{

using driver::DriverError;
using driver::RunResult;
using driver::SweepSpec;

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);

    // The pool is reusable after a wait().
    for (int i = 0; i < 10; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 110);
}

TEST(ThreadPoolTest, DestructorDrainsQueue)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { ++counter; });
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), 1u);
    EXPECT_GE(ThreadPool::effectiveJobs(0), 1u);
    EXPECT_EQ(ThreadPool::effectiveJobs(3), 3u);
}

// ------------------------------------------------- PlanCache concurrency

TEST(ParallelCacheTest, PlanCacheBuildsEachKeyOnce)
{
    // Many threads hammer a private cache with a handful of graphs;
    // per-key once-construction means the miss count equals the key
    // count and every thread sees the same plan object per graph.
    constexpr int kGraphs = 4;
    constexpr int kThreads = 8;
    constexpr int kItersPerThread = 25;

    std::vector<CooGraph> graphs;
    for (int g = 0; g < kGraphs; ++g) {
        graphs.push_back(makeRmat({.numVertices = 128,
                                   .numEdges = 512,
                                   .seed = 100 + static_cast<std::uint64_t>(g)}));
    }

    PlanCache cache;
    const TilingParams tiling;
    std::vector<std::vector<TilePlanPtr>> seen(kThreads);
    {
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                for (int i = 0; i < kItersPerThread; ++i) {
                    const int g = (t + i) % kGraphs;
                    seen[static_cast<std::size_t>(t)].push_back(
                        cache.get(graphs[static_cast<std::size_t>(g)],
                                  tiling));
                }
            });
        }
        for (std::thread &thread : threads)
            thread.join();
    }

    EXPECT_EQ(cache.stats().misses, static_cast<std::uint64_t>(kGraphs));
    EXPECT_EQ(cache.stats().hits,
              static_cast<std::uint64_t>(kThreads * kItersPerThread -
                                         kGraphs));
    EXPECT_EQ(cache.size(), static_cast<std::size_t>(kGraphs));

    // One distinct plan pointer per graph across all threads.
    std::set<const TilePlan *> distinct;
    for (const auto &thread_seen : seen)
        for (const TilePlanPtr &plan : thread_seen)
            distinct.insert(plan.get());
    EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kGraphs));
}

TEST(ParallelCacheTest, FailedBuildPropagatesAndRetries)
{
    // PlanCache's factory cannot be made to fail from the outside, so
    // exercise the retry contract directly on the shared LruCache
    // template both caches are built on.
    struct Hash
    {
        std::size_t operator()(const int &k) const
        {
            return static_cast<std::size_t>(k);
        }
    };
    LruCache<int, int, Hash> lru(4);
    EXPECT_THROW(lru.getOrBuild(1,
                                []() -> std::shared_ptr<const int> {
                                    throw std::runtime_error("boom");
                                }),
                 std::runtime_error);
    // The failed entry was dropped: a later build succeeds.
    bool hit = true;
    const std::shared_ptr<const int> value = lru.getOrBuild(
        1, [] { return std::make_shared<const int>(7); }, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(*value, 7);
}

TEST(ParallelCacheTest, GoldenCacheHammering)
{
    driver::clearGoldenCache();
    const CooGraph graph =
        makeRmat({.numVertices = 128, .numEdges = 512, .seed = 17});
    PageRankParams params;
    params.maxIterations = 20;

    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const PageRankResult>> results(kThreads);
    {
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                for (int i = 0; i < 10; ++i) {
                    results[static_cast<std::size_t>(t)] =
                        driver::cachedGoldenPageRank(graph, params);
                }
            });
        }
        for (std::thread &thread : threads)
            thread.join();
    }

    EXPECT_EQ(driver::goldenCacheStats().misses, 1u);
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(results[static_cast<std::size_t>(t)].get(),
                  results[0].get());
    driver::clearGoldenCache();
}

// --------------------------------------------------- sweep determinism

SweepSpec
fullMatrixSpec()
{
    SweepSpec spec;
    spec.workloads = {"all"};
    spec.backends = {"all"};
    spec.datasets = {"rmat:vertices=128,edges=512,seed=3",
                     "chain:n=16"};
    spec.params =
        driver::ParamMap::parse("epochs=1,features=4,iterations=5");
    return spec;
}

std::string
sweepJson(const SweepSpec &spec)
{
    std::ostringstream oss;
    writeResultsJson(oss, runSweep(spec));
    return oss.str();
}

TEST(ParallelSweepTest, JsonByteIdenticalAcrossJobCounts)
{
    SweepSpec spec = fullMatrixSpec();
    spec.jobs = 1;
    const std::string serial = sweepJson(spec);
    spec.jobs = 4;
    const std::string parallel = sweepJson(spec);
    EXPECT_EQ(serial, parallel);

    spec.jobs = 0; // hardware concurrency
    EXPECT_EQ(serial, sweepJson(spec));
}

TEST(ParallelSweepTest, ProgressLinesAreWholeLines)
{
    SweepSpec spec = fullMatrixSpec();
    spec.jobs = 4;
    std::ostringstream progress;
    const std::vector<RunResult> results = runSweep(spec, &progress);

    std::istringstream lines(progress.str());
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        EXPECT_TRUE(line.starts_with("running ")) << line;
        EXPECT_TRUE(line.ends_with(" ...")) << line;
        ++count;
    }
    EXPECT_EQ(count, results.size());
}

TEST(ParallelSweepTest, ErrorsSurfaceDeterministically)
{
    // An out-of-range BFS source fails on every backend; the parallel
    // path must still throw DriverError (the first error in spec
    // order) rather than crash or deadlock.
    SweepSpec spec;
    spec.workloads = {"bfs"};
    spec.backends = {"all"};
    spec.datasets = {"chain:n=8"};
    spec.params = driver::ParamMap::parse("source=99");
    spec.jobs = 4;
    EXPECT_THROW(runSweep(spec), DriverError);
}

TEST(ParallelSweepTest, DatasetResolvedOncePerSpec)
{
    // Two specs naming the same generator resolve independently, but
    // each spec is resolved exactly once per sweep: the run results
    // of duplicated combinations must be identical objects
    // value-wise. (The per-spec once-construction is exercised by
    // every parallel test; this checks the visible contract.)
    SweepSpec spec;
    spec.workloads = {"pagerank"};
    spec.backends = {"graphr", "cpu", "gpu", "pim"};
    spec.datasets = {"rmat:vertices=128,edges=512,seed=3"};
    spec.jobs = 4;
    const std::vector<RunResult> results = runSweep(spec);
    ASSERT_EQ(results.size(), 4u);
    for (const RunResult &r : results) {
        EXPECT_EQ(r.dataset, "rmat");
        EXPECT_EQ(r.vertices, results[0].vertices);
        EXPECT_EQ(r.edges, results[0].edges);
    }
}

} // namespace
} // namespace graphr
