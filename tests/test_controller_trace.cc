/**
 * @file
 * Tests for the controller instruction trace (paper Fig. 10).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generator.hh"
#include "graph/preprocess.hh"
#include "graphr/controller_trace.hh"

namespace graphr
{
namespace
{

OrderedEdgeList
makeOrdered(VertexId nv, EdgeId ne, std::uint32_t block = 0)
{
    static std::vector<CooGraph> keep_alive;
    keep_alive.push_back(
        makeRmat({.numVertices = nv, .numEdges = ne, .seed = 111}));
    TilingParams tiling;
    tiling.crossbarDim = 4;
    tiling.crossbarsPerGe = 2;
    tiling.numGe = 2;
    tiling.blockSize = block;
    const GridPartition part(nv, tiling);
    return OrderedEdgeList(keep_alive.back(), part);
}

TEST(ControllerTraceTest, OpCountsMatchSchedule)
{
    const OrderedEdgeList ordered = makeOrdered(64, 400);
    const ControllerTrace trace(ordered, 3);

    const std::uint64_t tiles = ordered.numNonEmptyTiles();
    EXPECT_EQ(trace.count(ControllerOp::Kind::kLoadSubgraph), 3 * tiles);
    EXPECT_EQ(trace.count(ControllerOp::Kind::kProcess), 3 * tiles);
    EXPECT_EQ(trace.count(ControllerOp::Kind::kReduce), 3 * tiles);
    EXPECT_EQ(trace.count(ControllerOp::Kind::kCheckConv), 3u);
    EXPECT_EQ(trace.count(ControllerOp::Kind::kApply), 3u);
}

TEST(ControllerTraceTest, WellFormedPerFigure10Grammar)
{
    const OrderedEdgeList ordered = makeOrdered(96, 800, 32);
    const ControllerTrace trace(ordered, 2);
    EXPECT_TRUE(trace.wellFormed());
}

TEST(ControllerTraceTest, BlocksLoadInStreamingOrder)
{
    const OrderedEdgeList ordered = makeOrdered(96, 800, 32);
    const ControllerTrace trace(ordered, 1);
    std::uint64_t prev_block = 0;
    bool first = true;
    for (const ControllerOp &op : trace.ops()) {
        if (op.kind != ControllerOp::Kind::kLoadBlock)
            continue;
        if (!first)
            EXPECT_GT(op.tileIndex, prev_block);
        prev_block = op.tileIndex;
        first = false;
    }
    EXPECT_FALSE(first) << "at least one block load expected";
}

TEST(ControllerTraceTest, EdgePayloadConserved)
{
    const OrderedEdgeList ordered = makeOrdered(64, 500);
    const ControllerTrace trace(ordered, 1);
    std::uint64_t loaded = 0;
    for (const ControllerOp &op : trace.ops()) {
        if (op.kind == ControllerOp::Kind::kLoadSubgraph)
            loaded += op.payload;
    }
    EXPECT_EQ(loaded, 500u);
}

TEST(ControllerTraceTest, PrintEmitsOnePerLine)
{
    const OrderedEdgeList ordered = makeOrdered(32, 100);
    const ControllerTrace trace(ordered, 1);
    std::ostringstream oss;
    trace.print(oss);
    std::uint64_t lines = 0;
    for (char c : oss.str())
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, trace.ops().size());
    EXPECT_NE(oss.str().find("LOAD_SUBGRAPH"), std::string::npos);
    EXPECT_NE(oss.str().find("CHECK_CONV"), std::string::npos);
}

TEST(ControllerTraceTest, EmptyIterationsEmptyTrace)
{
    const OrderedEdgeList ordered = makeOrdered(32, 100);
    const ControllerTrace trace(ordered, 0);
    EXPECT_TRUE(trace.ops().empty());
    EXPECT_TRUE(trace.wellFormed());
}

} // namespace
} // namespace graphr
