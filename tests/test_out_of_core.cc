/**
 * @file
 * Tests for the out-of-core execution driver (paper Fig. 9).
 */

#include <gtest/gtest.h>

#include "graph/generator.hh"
#include "graphr/out_of_core.hh"

namespace graphr
{
namespace
{

GraphRConfig
blockedConfig(std::uint32_t block_size)
{
    GraphRConfig cfg;
    cfg.tiling.blockSize = block_size;
    return cfg;
}

TEST(OutOfCoreTest, PageRankStreamsAllEdgesPerIteration)
{
    const CooGraph g = makeRmat(
        {.numVertices = 4000, .numEdges = 30000, .seed = 81});
    OutOfCoreRunner runner(blockedConfig(0), StorageParams{});
    PageRankParams params;
    params.maxIterations = 10;
    params.tolerance = 0.0;
    const OutOfCoreReport rep = runner.runPageRank(g, params);
    EXPECT_EQ(rep.bytesStreamed,
              10ull * g.numEdges() *
                  runner.config().bytesPerEdge);
    EXPECT_GT(rep.diskSeconds, 0.0);
    EXPECT_GE(rep.totalSeconds, rep.node.seconds * 0.999);
    EXPECT_GE(rep.totalSeconds, rep.diskSeconds * 0.999);
}

TEST(OutOfCoreTest, PipelineTakesMaxOfDiskAndCompute)
{
    const CooGraph g = makeRmat(
        {.numVertices = 2000, .numEdges = 16000, .seed = 82});
    PageRankParams params;
    params.maxIterations = 5;
    params.tolerance = 0.0;
    // Very slow disk: end-to-end equals disk time.
    StorageParams slow;
    slow.seqBandwidthGBs = 0.001;
    const OutOfCoreReport rep =
        OutOfCoreRunner(blockedConfig(0), slow).runPageRank(g, params);
    EXPECT_NEAR(rep.totalSeconds, rep.diskSeconds,
                rep.diskSeconds * 1e-9);
    // Very fast disk: end-to-end equals node time.
    StorageParams fast;
    fast.seqBandwidthGBs = 10000.0;
    fast.accessLatencyUs = 0.0;
    const OutOfCoreReport rep2 =
        OutOfCoreRunner(blockedConfig(0), fast).runPageRank(g, params);
    EXPECT_NEAR(rep2.totalSeconds, rep2.node.seconds,
                rep2.node.seconds * 1e-9);
}

TEST(OutOfCoreTest, SmallerBlocksMoreSwitches)
{
    const CooGraph g = makeRmat(
        {.numVertices = 60000, .numEdges = 200000, .seed = 83});
    PageRankParams params;
    params.maxIterations = 2;
    params.tolerance = 0.0;
    const OutOfCoreReport one_block =
        OutOfCoreRunner(blockedConfig(0), StorageParams{})
            .runPageRank(g, params);
    const OutOfCoreReport four_blocks =
        OutOfCoreRunner(blockedConfig(32768), StorageParams{})
            .runPageRank(g, params);
    EXPECT_EQ(one_block.numBlocks, 1u);
    EXPECT_GT(four_blocks.numBlocks, 1u);
    // Extra block switches cost extra disk latency.
    EXPECT_GT(four_blocks.diskSeconds, one_block.diskSeconds);
}

TEST(OutOfCoreTest, SsspStreamsOnlyActiveBlockRows)
{
    const CooGraph g = makeRmat({.numVertices = 60000,
                                 .numEdges = 200000,
                                 .maxWeight = 15.0,
                                 .seed = 84});
    PageRankParams params;
    params.maxIterations = 1;
    params.tolerance = 0.0;
    OutOfCoreRunner runner(blockedConfig(16384), StorageParams{});
    const OutOfCoreReport pr = runner.runPageRank(g, params);
    const OutOfCoreReport ss = runner.runSssp(g, 0);
    // SSSP rounds skip inactive block rows: bytes per round average
    // below a full sweep.
    const double pr_bytes_per_iter =
        static_cast<double>(pr.bytesStreamed);
    const double ss_bytes_per_round =
        static_cast<double>(ss.bytesStreamed) /
        static_cast<double>(ss.node.iterations);
    EXPECT_LT(ss_bytes_per_round, pr_bytes_per_iter * 1.001);
    EXPECT_GT(ss.bytesStreamed, 0u);
}

TEST(OutOfCoreTest, EnergyIncludesDisk)
{
    const CooGraph g = makeRmat(
        {.numVertices = 2000, .numEdges = 16000, .seed = 85});
    PageRankParams params;
    params.maxIterations = 5;
    params.tolerance = 0.0;
    const OutOfCoreReport rep =
        OutOfCoreRunner(blockedConfig(0), StorageParams{})
            .runPageRank(g, params);
    EXPECT_GT(rep.diskJoules, 0.0);
    EXPECT_NEAR(rep.totalJoules, rep.node.joules + rep.diskJoules,
                1e-15);
}

} // namespace
} // namespace graphr
