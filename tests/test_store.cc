/**
 * @file
 * Tests for the on-disk preprocessing store: artifact round-trips,
 * every corruption/mismatch path degrading to a fresh prepare (never
 * a crash, identical results), write-through from PlanCache, the
 * zero-sort warm-start guarantee for out-of-core sweeps, and
 * cold-vs-warm-vs-no-store byte-identical golden JSON at --jobs 1
 * and 4.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/checksum.hh"
#include "common/failpoint.hh"
#include "driver/driver.hh"
#include "driver/prepare.hh"
#include "driver/run_result.hh"
#include "graph/generator.hh"
#include "graph/preprocess.hh"
#include "graphr/engine/plan_cache.hh"
#include "perf/counters.hh"
#include "store/plan_store.hh"

namespace graphr
{
namespace
{

namespace fs = std::filesystem;

/** Small fixed-seed graph reused across the suite. */
CooGraph
testGraph()
{
    return makeRmat({.numVertices = 128, .numEdges = 1024, .seed = 9});
}

/** Fresh, empty store directory under the gtest temp root. */
std::string
freshDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) /
                         ("plan_store_" + name);
    fs::remove_all(dir);
    return dir.string();
}

void
expectPlansEqual(const TilePlan &a, const TilePlan &b)
{
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.partition.numVertices(), b.partition.numVertices());
    EXPECT_EQ(a.partition.blockSize(), b.partition.blockSize());

    ASSERT_EQ(a.ordered.edges().size(), b.ordered.edges().size());
    for (std::size_t i = 0; i < a.ordered.edges().size(); ++i) {
        EXPECT_EQ(a.ordered.edges()[i], b.ordered.edges()[i])
            << "edge " << i;
    }
    ASSERT_EQ(a.ordered.tiles().size(), b.ordered.tiles().size());
    for (std::size_t i = 0; i < a.ordered.tiles().size(); ++i) {
        EXPECT_EQ(a.ordered.tiles()[i].tileIndex,
                  b.ordered.tiles()[i].tileIndex);
        EXPECT_EQ(a.ordered.tiles()[i].firstEdge,
                  b.ordered.tiles()[i].firstEdge);
        EXPECT_EQ(a.ordered.tiles()[i].numEdges,
                  b.ordered.tiles()[i].numEdges);
    }
    EXPECT_EQ(a.meta.totalNnz(), b.meta.totalNnz());
    ASSERT_EQ(a.meta.tiles().size(), b.meta.tiles().size());
    for (std::size_t i = 0; i < a.meta.tiles().size(); ++i) {
        const TileMeta &ma = a.meta.tiles()[i];
        const TileMeta &mb = b.meta.tiles()[i];
        EXPECT_EQ(ma.tileIndex, mb.tileIndex);
        EXPECT_EQ(ma.row0, mb.row0);
        EXPECT_EQ(ma.col0, mb.col0);
        EXPECT_EQ(ma.nnz, mb.nnz);
        EXPECT_EQ(ma.crossbarsUsed, mb.crossbarsUsed);
        EXPECT_EQ(ma.maxRowsProgrammed, mb.maxRowsProgrammed);
        EXPECT_EQ(ma.rowMask, mb.rowMask);
        EXPECT_EQ(ma.nnzColumns, mb.nnzColumns);
        EXPECT_EQ(ma.rowNnz, mb.rowNnz);
    }
}

/** Isolates the process-wide PlanCache (store detached, entries
 *  dropped) around every test in the suite. */
class PlanStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PlanCache::instance().setStore(nullptr);
        PlanCache::instance().clear();
    }

    void
    TearDown() override
    {
        PlanCache::instance().setStore(nullptr);
        PlanCache::instance().clear();
    }
};

TEST_F(PlanStoreTest, RoundTripPreservesEveryArtifactField)
{
    const std::string dir = freshDir("roundtrip");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan direct(g, tiling);

    PlanStore store(dir);
    store.save(direct, tiling);
    EXPECT_TRUE(store.contains(direct.fingerprint, tiling));

    const TilePlanPtr loaded = store.load(direct.fingerprint, tiling);
    ASSERT_NE(loaded, nullptr);
    expectPlansEqual(direct, *loaded);
    EXPECT_EQ(store.stats().loadHits, 1u);
    EXPECT_EQ(store.stats().saves, 1u);
}

TEST_F(PlanStoreTest, ChunkedReadFallbackMatchesMmap)
{
    const std::string dir = freshDir("nommap");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan direct(g, tiling);
    PlanStore store(dir);
    store.save(direct, tiling);

    ::setenv("GRAPHR_STORE_NO_MMAP", "1", 1);
    const TilePlanPtr loaded = store.load(direct.fingerprint, tiling);
    ::unsetenv("GRAPHR_STORE_NO_MMAP");
    ASSERT_NE(loaded, nullptr);
    expectPlansEqual(direct, *loaded);
}

TEST_F(PlanStoreTest, SaveIsAtomicNoTemporariesSurvive)
{
    const std::string dir = freshDir("atomic");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    PlanStore store(dir);
    store.save(TilePlan(g, tiling), tiling);

    std::size_t files = 0;
    for (const fs::directory_entry &e : fs::directory_iterator(dir)) {
        ++files;
        EXPECT_EQ(e.path().extension(), ".gplan") << e.path();
    }
    EXPECT_EQ(files, 1u);
}

TEST_F(PlanStoreTest, MissingArtifactIsAMiss)
{
    PlanStore store(freshDir("miss"));
    EXPECT_EQ(store.load(0x1234u, TilingParams{}), nullptr);
    EXPECT_EQ(store.stats().loadMisses, 1u);
    EXPECT_EQ(store.stats().loadRejects, 0u);
}

TEST_F(PlanStoreTest, UnusableDirectoriesThrowActionableErrors)
{
    // A path that exists but is a file.
    const std::string file_path =
        freshDir("not_a_dir_parent") + "_file";
    {
        fs::create_directories(fs::path(file_path).parent_path());
        std::ofstream os(file_path);
        os << "x";
    }
    try {
        PlanStore store(file_path);
        FAIL() << "expected StoreError";
    } catch (const StoreError &err) {
        EXPECT_NE(std::string(err.what()).find("not a directory"),
                  std::string::npos);
    }
    // Read-only mode on a missing directory names the path.
    try {
        PlanStore store(freshDir("absent"), PlanStore::Mode::kReadOnly);
        FAIL() << "expected StoreError";
    } catch (const StoreError &err) {
        EXPECT_NE(std::string(err.what()).find("does not exist"),
                  std::string::npos);
    }
}

// ------------------------------------------------ corruption paths
//
// Every corrupted or mismatched artifact must degrade to a fresh
// prepare through PlanCache — same results, one more sort, no crash.

/** Path of the single artifact saved for (g, tiling) in dir. */
std::string
artifactPath(const std::string &dir, const TilePlan &plan,
             const TilingParams &tiling)
{
    return (fs::path(dir) /
            PlanStore::fileName(plan.fingerprint, tiling))
        .string();
}

/** Assert a store whose artifact was damaged falls back cleanly. */
void
expectFreshPrepareFallback(const std::string &dir, const CooGraph &g,
                           const TilingParams &tiling,
                           const TilePlan &direct)
{
    PlanStore store(dir);
    EXPECT_EQ(store.load(direct.fingerprint, tiling), nullptr);
    EXPECT_GE(store.stats().loadRejects, 1u);

    // End to end: PlanCache with this store attached re-prepares and
    // produces an identical plan.
    PlanCache cache;
    cache.setStore(std::make_shared<PlanStore>(dir));
    const std::uint64_t sorts_before =
        OrderedEdgeList::sortsPerformed();
    const TilePlanPtr plan = cache.get(g, tiling);
    EXPECT_EQ(OrderedEdgeList::sortsPerformed(), sorts_before + 1)
        << "fallback must re-run the preprocessing sort";
    expectPlansEqual(direct, *plan);
}

TEST_F(PlanStoreTest, TruncatedFileFallsBackToFreshPrepare)
{
    const std::string dir = freshDir("truncated");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan direct(g, tiling);
    PlanStore(dir).save(direct, tiling);

    const std::string file = artifactPath(dir, direct, tiling);
    fs::resize_file(file, fs::file_size(file) - 7);
    expectFreshPrepareFallback(dir, g, tiling, direct);

    // Truncated into the header too.
    fs::resize_file(file, 10);
    expectFreshPrepareFallback(dir, g, tiling, direct);
}

TEST_F(PlanStoreTest, FlippedPayloadByteFallsBackToFreshPrepare)
{
    const std::string dir = freshDir("bitflip");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan direct(g, tiling);
    PlanStore(dir).save(direct, tiling);

    const std::string file = artifactPath(dir, direct, tiling);
    std::fstream io(file,
                    std::ios::in | std::ios::out | std::ios::binary);
    io.seekp(100); // inside the edge records
    char byte = 0;
    io.seekg(100);
    io.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    io.seekp(100);
    io.write(&byte, 1);
    io.close();

    expectFreshPrepareFallback(dir, g, tiling, direct);
}

TEST_F(PlanStoreTest, WrongFormatVersionFallsBackToFreshPrepare)
{
    const std::string dir = freshDir("version");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan direct(g, tiling);
    PlanStore(dir).save(direct, tiling);

    // The version field lives at byte offset 4 (after the magic).
    const std::string file = artifactPath(dir, direct, tiling);
    std::fstream io(file,
                    std::ios::in | std::ios::out | std::ios::binary);
    const std::uint32_t bogus = PlanStore::kFormatVersion + 1;
    io.seekp(4);
    io.write(reinterpret_cast<const char *>(&bogus), sizeof(bogus));
    io.close();

    expectFreshPrepareFallback(dir, g, tiling, direct);
}

TEST_F(PlanStoreTest, FingerprintMismatchFallsBackToFreshPrepare)
{
    // An artifact of a *different* graph copied over this graph's
    // file name: header checksum passes, but the fingerprint is
    // stale and must be rejected.
    const std::string dir = freshDir("stale");
    const TilingParams tiling;
    const CooGraph g = testGraph();
    const TilePlan direct(g, tiling);
    const CooGraph other =
        makeRmat({.numVertices = 128, .numEdges = 1024, .seed = 10});
    const TilePlan other_plan(other, tiling);
    ASSERT_NE(direct.fingerprint, other_plan.fingerprint);

    PlanStore store(dir);
    store.save(other_plan, tiling);
    fs::copy_file(artifactPath(dir, other_plan, tiling),
                  artifactPath(dir, direct, tiling));

    expectFreshPrepareFallback(dir, g, tiling, direct);
}

TEST_F(PlanStoreTest, SemanticallyInvalidArtifactIsRejected)
{
    // Checksums guard against corruption, not buggy writers: an
    // artifact whose payload is internally consistent bytes but
    // semantic nonsense (a tile origin outside the graph) must be
    // rejected before it can reach downstream index arithmetic. Only
    // the raw codec carries a metadata table (the delta codec
    // recomputes it on load), so pin the save to the raw layout.
    const std::string dir = freshDir("semantic");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan direct(g, tiling);

    std::vector<Edge> edges(direct.ordered.edges().begin(),
                            direct.ordered.edges().end());
    std::vector<TileSpan> spans(direct.ordered.tiles().begin(),
                                direct.ordered.tiles().end());
    std::vector<TileMeta> meta = direct.meta.tiles();
    meta.front().row0 += std::uint64_t{1} << 20;
    const TilePlan bogus(g.numVertices(), tiling, std::move(edges),
                         std::move(spans), std::move(meta),
                         direct.meta.totalNnz(), direct.fingerprint);

    PlanStore store(dir);
    ::setenv("GRAPHR_STORE_RAW", "1", 1);
    store.save(bogus, tiling);
    ::unsetenv("GRAPHR_STORE_RAW");
    EXPECT_EQ(store.load(direct.fingerprint, tiling), nullptr);
    EXPECT_GE(store.stats().loadRejects, 1u);

    // The listing flags it rather than crashing on it.
    const std::string text = driver::storeStatsText(StoreSpec{dir});
    EXPECT_NE(text.find("corrupt"), std::string::npos);
}

TEST_F(PlanStoreTest, TilingMismatchIsRejected)
{
    // Same trick for tiling: copy an artifact onto a file name that
    // claims a different block size.
    const std::string dir = freshDir("tiling");
    const CooGraph g = testGraph();
    TilingParams tiling;
    const TilePlan direct(g, tiling);
    PlanStore store(dir);
    store.save(direct, tiling);

    TilingParams blocked = tiling;
    blocked.blockSize = 64;
    fs::copy_file(
        artifactPath(dir, direct, tiling),
        (fs::path(dir) /
         PlanStore::fileName(direct.fingerprint, blocked))
            .string());
    EXPECT_EQ(store.load(direct.fingerprint, blocked), nullptr);
    EXPECT_GE(store.stats().loadRejects, 1u);
}

// --------------------------------------------- PlanCache integration

TEST_F(PlanStoreTest, PlanCacheWritesThroughOnMiss)
{
    const std::string dir = freshDir("writethrough");
    const CooGraph g = testGraph();
    const TilingParams tiling;

    PlanCache cache;
    const auto store = std::make_shared<PlanStore>(dir);
    cache.setStore(store);
    const TilePlanPtr built = cache.get(g, tiling);
    EXPECT_EQ(store->stats().saves, 1u);
    EXPECT_TRUE(store->contains(built->fingerprint, tiling));

    // A second cache (fresh memory level) loads instead of sorting.
    PlanCache cold;
    cold.setStore(std::make_shared<PlanStore>(dir));
    const std::uint64_t sorts_before =
        OrderedEdgeList::sortsPerformed();
    const TilePlanPtr loaded = cold.get(g, tiling);
    EXPECT_EQ(OrderedEdgeList::sortsPerformed(), sorts_before);
    expectPlansEqual(*built, *loaded);
}

TEST_F(PlanStoreTest, StoreStatsTextListsArtifacts)
{
    const std::string dir = freshDir("statstext");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan direct(g, tiling);
    PlanStore(dir).save(direct, tiling);

    const std::string text = driver::storeStatsText(StoreSpec{dir});
    EXPECT_NE(text.find("1 artifact"), std::string::npos);
    EXPECT_NE(text.find(PlanStore::fileName(direct.fingerprint,
                                            tiling)),
              std::string::npos);
    EXPECT_NE(text.find("ok"), std::string::npos);

    // Corrupt it: the listing flags the artifact instead of hiding it.
    fs::resize_file(artifactPath(dir, direct, tiling), 40);
    const std::string corrupt =
        driver::storeStatsText(StoreSpec{dir});
    EXPECT_NE(corrupt.find("corrupt"), std::string::npos);
}

// -------------------------------------------------- driver-level

constexpr const char *kDataset = "rmat:vertices=128,edges=512,seed=3";

driver::SweepSpec
sweepSpec(const std::string &plan_dir, std::uint32_t jobs)
{
    driver::SweepSpec spec;
    spec.workloads = {"all"};
    spec.backends = {"outofcore"};
    spec.datasets = {kDataset};
    spec.params =
        driver::ParamMap::parse("epochs=1,features=4,iterations=5");
    spec.jobs = jobs;
    spec.store.planDir = plan_dir;
    return spec;
}

std::string
sweepJson(const driver::SweepSpec &spec)
{
    PlanCache::instance().clear();
    std::ostringstream oss;
    driver::writeResultsJson(oss, driver::runSweep(spec));
    return oss.str();
}

TEST_F(PlanStoreTest, WarmStoreOutOfCoreSweepDoesZeroSorts)
{
    const std::string dir = freshDir("warm_sweep");

    // Offline step: prepare the dataset (plain + symmetrised).
    driver::PrepareSpec prep;
    prep.datasets = {kDataset};
    prep.store.planDir = dir;
    const std::vector<driver::PrepareResult> prepared =
        driver::runPrepare(prep);
    ASSERT_EQ(prepared.size(), 2u);
    EXPECT_FALSE(prepared[0].reused);
    EXPECT_EQ(prepared[0].variant, "plain");
    EXPECT_EQ(prepared[1].variant, "symmetrized");

    // Online step, cold process simulated by clearing the in-memory
    // level: the whole out-of-core sweep must not sort a single edge
    // list.
    PlanCache::instance().clear();
    const std::uint64_t sorts_before =
        OrderedEdgeList::sortsPerformed();
    const std::string warm = sweepJson(sweepSpec(dir, 1));
    EXPECT_EQ(OrderedEdgeList::sortsPerformed(), sorts_before)
        << "warm-store sweep performed an edge sort";

    // And the report is byte-identical to the storeless path.
    const std::string none = sweepJson(sweepSpec("", 1));
    EXPECT_EQ(warm, none);

    // Preparing again reuses the artifacts.
    const std::vector<driver::PrepareResult> again =
        driver::runPrepare(prep);
    EXPECT_TRUE(again[0].reused);
    EXPECT_TRUE(again[1].reused);
}

TEST_F(PlanStoreTest, ColdWarmAndStorelessSweepsAreByteIdentical)
{
    for (const std::uint32_t jobs : {1u, 4u}) {
        const std::string dir =
            freshDir("determinism_j" + std::to_string(jobs));
        const std::string none = sweepJson(sweepSpec("", jobs));
        const std::string cold = sweepJson(sweepSpec(dir, jobs));
        const std::string warm = sweepJson(sweepSpec(dir, jobs));
        EXPECT_EQ(none, cold) << "jobs=" << jobs;
        EXPECT_EQ(cold, warm) << "jobs=" << jobs;
    }
}

TEST_F(PlanStoreTest, RunSweepRejectsUnusablePlanDir)
{
    const std::string file_path = freshDir("plan_dir_file") + "_f";
    {
        std::ofstream os(file_path);
        os << "x";
    }
    driver::SweepSpec spec = sweepSpec(file_path, 1);
    try {
        driver::runSweep(spec);
        FAIL() << "expected DriverError";
    } catch (const driver::DriverError &err) {
        EXPECT_NE(std::string(err.what()).find("--plan-dir"),
                  std::string::npos);
    }
}

TEST_F(PlanStoreTest, PrepareValidatesItsSpec)
{
    driver::PrepareSpec no_dir;
    no_dir.datasets = {kDataset};
    EXPECT_THROW(driver::runPrepare(no_dir), driver::DriverError);

    driver::PrepareSpec no_data;
    no_data.store.planDir = freshDir("prep_nodata");
    EXPECT_THROW(driver::runPrepare(no_data), driver::DriverError);

    driver::PrepareSpec bad_dataset;
    bad_dataset.datasets = {"no-such-dataset"};
    bad_dataset.store.planDir = freshDir("prep_baddata");
    EXPECT_THROW(driver::runPrepare(bad_dataset),
                 driver::DriverError);
}

TEST_F(PlanStoreTest, ParallelPrepareMatchesSerial)
{
    const std::string serial_dir = freshDir("prep_serial");
    const std::string parallel_dir = freshDir("prep_parallel");
    driver::PrepareSpec spec;
    spec.datasets = {kDataset, "chain:n=64", "grid:width=8,height=8"};

    spec.store.planDir = serial_dir;
    spec.jobs = 1;
    const std::vector<driver::PrepareResult> serial =
        driver::runPrepare(spec);
    spec.store.planDir = parallel_dir;
    spec.jobs = 4;
    const std::vector<driver::PrepareResult> parallel =
        driver::runPrepare(spec);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].dataset, parallel[i].dataset);
        EXPECT_EQ(serial[i].variant, parallel[i].variant);
        EXPECT_EQ(serial[i].fingerprint, parallel[i].fingerprint);
        EXPECT_EQ(serial[i].file, parallel[i].file);
        // Same artifacts, byte for byte.
        const std::string a =
            (fs::path(serial_dir) / serial[i].file).string();
        const std::string b =
            (fs::path(parallel_dir) / parallel[i].file).string();
        std::ifstream fa(a, std::ios::binary);
        std::ifstream fb(b, std::ios::binary);
        std::stringstream sa, sb;
        sa << fa.rdbuf();
        sb << fb.rdbuf();
        EXPECT_EQ(sa.str(), sb.str()) << serial[i].file;
    }
}

// ------------------------------------- compressed-format corruption
//
// The v2 payload is a codec-tagged compressed stream; this matrix
// drives corruption through every layer that could catch it: the
// payload checksum (plain flips), the stream decoder (re-checksummed
// garbage), version gating (old artifacts), and the mid-decode
// failpoint. Every row degrades to a fresh prepare — never a crash —
// and bumps store.degraded_loads.

std::vector<unsigned char>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string s = ss.str();
    return std::vector<unsigned char>(s.begin(), s.end());
}

void
writeFileBytes(const std::string &path,
               const std::vector<unsigned char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/**
 * Recompute the payload checksum (offset 72) and header checksum
 * (offset 80, over the first 80 bytes) after mutating an artifact, so
 * the mutation reaches the stream decoder instead of being caught by
 * the checksum layer.
 */
void
resealChecksums(std::vector<unsigned char> &bytes)
{
    ASSERT_GE(bytes.size(), 88u);
    const std::uint64_t payload_sum =
        fnv1a64(bytes.data() + 88, bytes.size() - 88);
    std::memcpy(bytes.data() + 72, &payload_sum, 8);
    const std::uint64_t header_sum = fnv1a64(bytes.data(), 80);
    std::memcpy(bytes.data() + 80, &header_sum, 8);
}

TEST_F(PlanStoreTest, CompressedPayloadBitFlipSweepDegrades)
{
    // Plain single-byte flips across the compressed payload: every
    // one is caught by the payload checksum before the decoder runs.
    const std::string dir = freshDir("cflip");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan direct(g, tiling);
    PlanStore(dir).save(direct, tiling);
    const std::string file = artifactPath(dir, direct, tiling);
    const std::vector<unsigned char> pristine = readFileBytes(file);
    ASSERT_GT(pristine.size(), 96u);

    for (std::size_t at = 88; at < pristine.size();
         at += 17) { // sample across the whole stream
        SCOPED_TRACE("flip at byte " + std::to_string(at));
        std::vector<unsigned char> mutated = pristine;
        mutated[at] ^= 0x20;
        writeFileBytes(file, mutated);
        PlanStore store(dir);
        EXPECT_EQ(store.load(direct.fingerprint, tiling), nullptr);
        EXPECT_EQ(store.stats().loadRejects, 1u);
    }
    writeFileBytes(file, pristine);
    EXPECT_NE(PlanStore(dir).load(direct.fingerprint, tiling),
              nullptr);
}

TEST_F(PlanStoreTest, ValidHeaderGarbageStreamDegrades)
{
    // A hostile writer can make checksums match arbitrary bytes, so
    // reseal after replacing the stream with garbage: the decoder
    // itself must reject, and the end-to-end path must re-prepare.
    const std::string dir = freshDir("garbage");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan direct(g, tiling);
    PlanStore(dir).save(direct, tiling);
    const std::string file = artifactPath(dir, direct, tiling);

    std::vector<unsigned char> bytes = readFileBytes(file);
    // Keep the codec tag, trash the stream body (0xff runs decode as
    // overlong varints and are rejected deterministically).
    for (std::size_t i = 92; i < bytes.size(); ++i)
        bytes[i] = 0xff;
    resealChecksums(bytes);
    writeFileBytes(file, bytes);
    expectFreshPrepareFallback(dir, g, tiling, direct);

    // An unknown codec tag is rejected the same way.
    bytes = readFileBytes(file);
    std::memcpy(bytes.data() + 88, "????", 4);
    resealChecksums(bytes);
    writeFileBytes(file, bytes);
    PlanStore store(dir);
    EXPECT_EQ(store.load(direct.fingerprint, tiling), nullptr);
}

TEST_F(PlanStoreTest, TruncatedCompressedStreamDegrades)
{
    // Truncation *with* a reseal: the header's payload-size field
    // catches it first; truncation of just the stream body (size
    // field patched too) reaches the decoder's totals check.
    const std::string dir = freshDir("ctrunc");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan direct(g, tiling);
    PlanStore(dir).save(direct, tiling);
    const std::string file = artifactPath(dir, direct, tiling);

    std::vector<unsigned char> bytes = readFileBytes(file);
    bytes.resize(bytes.size() - 9);
    const std::uint64_t new_payload = bytes.size() - 88;
    std::memcpy(bytes.data() + 64, &new_payload, 8);
    resealChecksums(bytes);
    writeFileBytes(file, bytes);
    expectFreshPrepareFallback(dir, g, tiling, direct);
}

TEST_F(PlanStoreTest, OldFormatVersionArtifactIsRepreparedAndUpgraded)
{
    // The PR-4 versioning contract: an artifact written under an
    // older kFormatVersion is rejected by version gating, the caller
    // re-prepares transparently, and the write-through save leaves an
    // upgraded artifact behind.
    const std::string dir = freshDir("oldversion");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan direct(g, tiling);
    PlanStore(dir).save(direct, tiling);
    const std::string file = artifactPath(dir, direct, tiling);

    std::vector<unsigned char> bytes = readFileBytes(file);
    const std::uint32_t v1 = 1;
    std::memcpy(bytes.data() + 4, &v1, 4);
    resealChecksums(bytes);
    writeFileBytes(file, bytes);

    expectFreshPrepareFallback(dir, g, tiling, direct);

    // expectFreshPrepareFallback's PlanCache had the store attached,
    // so the re-prepare wrote through: the file is v2 again.
    const std::vector<PlanArtifactInfo> infos = PlanStore(dir).list();
    ASSERT_EQ(infos.size(), 1u);
    EXPECT_TRUE(infos[0].valid) << infos[0].issue;
    EXPECT_EQ(infos[0].version, PlanStore::kFormatVersion);
}

TEST_F(PlanStoreTest, DegradedLoadCounterTracksEveryReject)
{
    const std::string dir = freshDir("degraded");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan direct(g, tiling);
    PlanStore(dir).save(direct, tiling);
    const std::string file = artifactPath(dir, direct, tiling);
    fs::resize_file(file, 50);

    perf::Counter &degraded =
        perf::Registry::instance().counter("store.degraded_loads");
    const std::uint64_t before = degraded.value();
    EXPECT_EQ(PlanStore(dir).load(direct.fingerprint, tiling),
              nullptr);
    EXPECT_EQ(degraded.value(), before + 1);
}

TEST_F(PlanStoreTest, ReadFailpointsMidDecodeDegradeOrRecover)
{
    // store.read.* fire inside the buffered reader while the
    // compressed artifact streams in: EINTR is transient (absorbed by
    // the retry loop, load still succeeds), a short read truncates
    // (degrade to fresh prepare).
    const std::string dir = freshDir("readfp");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan direct(g, tiling);
    PlanStore(dir).save(direct, tiling);
    ::setenv("GRAPHR_STORE_NO_MMAP", "1", 1);

    failpoint::configure("store.read.eintr:1@1");
    const TilePlanPtr recovered =
        PlanStore(dir).load(direct.fingerprint, tiling);
    ASSERT_NE(recovered, nullptr);
    expectPlansEqual(direct, *recovered);

    failpoint::configure("store.read.short:1@1");
    {
        PlanStore store(dir);
        EXPECT_EQ(store.load(direct.fingerprint, tiling), nullptr);
        EXPECT_EQ(store.stats().loadRejects, 1u);
    }

    // End to end while the fault is armed: PlanCache degrades to a
    // fresh prepare and still produces an identical plan. (The
    // artifact itself is undamaged — once the failpoint is disarmed
    // it loads normally again.)
    failpoint::configure("store.read.short:1@1");
    PlanCache cache;
    cache.setStore(std::make_shared<PlanStore>(dir));
    const std::uint64_t sorts_before =
        OrderedEdgeList::sortsPerformed();
    const TilePlanPtr reprepared = cache.get(g, tiling);
    EXPECT_EQ(OrderedEdgeList::sortsPerformed(), sorts_before + 1)
        << "fallback must re-run the preprocessing sort";
    expectPlansEqual(direct, *reprepared);

    failpoint::disarmAll();
    ::unsetenv("GRAPHR_STORE_NO_MMAP");
    const TilePlanPtr healthy =
        PlanStore(dir).load(direct.fingerprint, tiling);
    ASSERT_NE(healthy, nullptr);
    expectPlansEqual(direct, *healthy);
}

TEST_F(PlanStoreTest, DecodeFailpointFallsBackToFreshPrepare)
{
    // store.decode.fail faults the stream decoder itself mid-load —
    // the CodecError is contained by the store's reject path.
    const std::string dir = freshDir("decodefp");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan direct(g, tiling);
    PlanStore(dir).save(direct, tiling);

    failpoint::configure("store.decode.fail:1@1");
    {
        PlanStore store(dir);
        EXPECT_EQ(store.load(direct.fingerprint, tiling), nullptr);
        EXPECT_EQ(store.stats().loadRejects, 1u);
    }
    failpoint::disarmAll();

    // Disarmed, the same artifact loads fine — nothing was damaged.
    const TilePlanPtr loaded =
        PlanStore(dir).load(direct.fingerprint, tiling);
    ASSERT_NE(loaded, nullptr);
    expectPlansEqual(direct, *loaded);
}

// --------------------------------------------- raw escape hatch

TEST_F(PlanStoreTest, RawEscapeHatchWritesUncompressedArtifacts)
{
    const std::string raw_dir = freshDir("raw");
    const std::string delta_dir = freshDir("delta");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan direct(g, tiling);

    ::setenv("GRAPHR_STORE_RAW", "1", 1);
    PlanStore(raw_dir).save(direct, tiling);
    ::unsetenv("GRAPHR_STORE_RAW");
    PlanStore(delta_dir).save(direct, tiling);

    const std::vector<PlanArtifactInfo> raw_list =
        PlanStore(raw_dir).list();
    const std::vector<PlanArtifactInfo> delta_list =
        PlanStore(delta_dir).list();
    ASSERT_EQ(raw_list.size(), 1u);
    ASSERT_EQ(delta_list.size(), 1u);
    EXPECT_TRUE(raw_list[0].valid) << raw_list[0].issue;
    EXPECT_TRUE(delta_list[0].valid) << delta_list[0].issue;
    EXPECT_EQ(raw_list[0].codec, "raw");
    EXPECT_EQ(delta_list[0].codec, "delta");

    // Both decode to the same plan; the compressed one is at most
    // half the raw bytes even at this small size.
    const TilePlanPtr from_raw =
        PlanStore(raw_dir).load(direct.fingerprint, tiling);
    const TilePlanPtr from_delta =
        PlanStore(delta_dir).load(direct.fingerprint, tiling);
    ASSERT_NE(from_raw, nullptr);
    ASSERT_NE(from_delta, nullptr);
    expectPlansEqual(direct, *from_raw);
    expectPlansEqual(direct, *from_delta);
    EXPECT_LE(delta_list[0].bytes * 2, raw_list[0].bytes);
}

TEST_F(PlanStoreTest, RawAndCompressedWarmSweepsAreByteIdentical)
{
    // The whole point of recomputing metadata on decode: warm sweep
    // reports must not depend on the artifact codec, serial or
    // parallel.
    for (const std::uint32_t jobs : {1u, 4u}) {
        const std::string raw_dir =
            freshDir("codec_raw_j" + std::to_string(jobs));
        const std::string delta_dir =
            freshDir("codec_delta_j" + std::to_string(jobs));

        ::setenv("GRAPHR_STORE_RAW", "1", 1);
        sweepJson(sweepSpec(raw_dir, jobs)); // cold, writes raw
        ::unsetenv("GRAPHR_STORE_RAW");
        sweepJson(sweepSpec(delta_dir, jobs)); // cold, writes delta

        const std::string warm_raw =
            sweepJson(sweepSpec(raw_dir, jobs));
        const std::string warm_delta =
            sweepJson(sweepSpec(delta_dir, jobs));
        EXPECT_EQ(warm_raw, warm_delta) << "jobs=" << jobs;
    }
}

// --------------------------------------------- golden artifact

/** The golden run: must mirror test_driver's runGoldenReport(). */
std::string
goldenRunJson(const std::string &plan_dir)
{
    driver::RunSpec spec;
    spec.workload = "pagerank";
    spec.backend = "graphr";
    spec.dataset = "rmat:vertices=256,edges=2048,seed=7";
    spec.params = driver::ParamMap::parse("iterations=10,tolerance=0");
    spec.store.planDir = plan_dir;
    PlanCache::instance().clear();
    const driver::RunResult result = driver::runOne(spec);
    std::ostringstream oss;
    driver::writeResultsJson(oss, {result});
    return oss.str();
}

TEST_F(PlanStoreTest, GoldenCompressedArtifactDecodesToGoldenReport)
{
    // Format-drift tripwire: a checked-in compressed artifact must
    // keep decoding — sort-free — to the exact golden sweep JSON. If
    // the codec or the artifact layout changes incompatibly, this
    // fails at review time instead of corrupting user stores.
    const fs::path golden(GRAPHR_GOLDEN_DIR);
    const std::string dir = freshDir("golden_artifact");
    fs::create_directories(dir);
    std::size_t copied = 0;
    for (const fs::directory_entry &e : fs::directory_iterator(golden)) {
        if (e.path().extension() == ".gplan") {
            fs::copy_file(e.path(),
                          fs::path(dir) / e.path().filename());
            ++copied;
        }
    }
    ASSERT_GE(copied, 1u)
        << "no golden .gplan artifact — regenerate with "
           "GRAPHR_UPDATE_GOLDEN=1 ./test_store";

    // Every checked-in artifact validates as a current-version
    // compressed artifact.
    for (const PlanArtifactInfo &info : PlanStore(dir).list()) {
        EXPECT_TRUE(info.valid) << info.file << ": " << info.issue;
        EXPECT_EQ(info.version, PlanStore::kFormatVersion)
            << info.file;
        EXPECT_EQ(info.codec, "delta") << info.file;
    }

    const std::uint64_t sorts_before =
        OrderedEdgeList::sortsPerformed();
    const std::string report = goldenRunJson(dir);
    EXPECT_EQ(OrderedEdgeList::sortsPerformed(), sorts_before)
        << "golden artifact did not satisfy the prepare";

    std::ifstream in((golden / "pagerank_rmat.json").string());
    ASSERT_TRUE(in) << "missing golden JSON report";
    std::stringstream want;
    want << in.rdbuf();
    EXPECT_EQ(report, want.str())
        << "compressed-artifact run drifted from the golden report";
}

/** Regeneration helper: GRAPHR_UPDATE_GOLDEN=1 rewrites the golden
 *  compressed artifact (the JSON report belongs to test_driver). */
TEST_F(PlanStoreTest, UpdateGoldenArtifactWhenRequested)
{
    if (!std::getenv("GRAPHR_UPDATE_GOLDEN"))
        GTEST_SKIP() << "set GRAPHR_UPDATE_GOLDEN=1 to rewrite";
    const fs::path golden(GRAPHR_GOLDEN_DIR);
    for (const fs::directory_entry &e :
         fs::directory_iterator(golden)) {
        if (e.path().extension() == ".gplan")
            fs::remove(e.path());
    }
    driver::PrepareSpec prep;
    prep.datasets = {"rmat:vertices=256,edges=2048,seed=7"};
    prep.store.planDir = golden.string();
    const std::vector<driver::PrepareResult> out =
        driver::runPrepare(prep);
    ASSERT_EQ(out.size(), 2u);
}

} // namespace
} // namespace graphr
