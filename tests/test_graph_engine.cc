/**
 * @file
 * Tests for the functional graph-engine array (tile-level datapath).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/spmv.hh"
#include "graph/generator.hh"
#include "graph/partition.hh"
#include "graph/preprocess.hh"
#include "graphr/tile_meta.hh"
#include "rram/graph_engine.hh"

namespace graphr
{
namespace
{

TEST(GraphEngineTest, GeometryMatchesParameters)
{
    DeviceParams params;
    EnergyLedger ledger(params);
    GraphEngineArray ge(4, 8, params, ledger);
    EXPECT_EQ(ge.crossbarDim(), 4u);
    EXPECT_EQ(ge.numCrossbars(), 8u);
    EXPECT_EQ(ge.tileWidth(), 32u);
}

TEST(GraphEngineTest, ProgramTileActivityCounts)
{
    DeviceParams params;
    EnergyLedger ledger(params);
    GraphEngineArray ge(4, 4, params, ledger);

    // Two edges in crossbar 0 (cols 0..3), one in crossbar 2.
    std::vector<Edge> edges = {
        {0, 1, 2.0}, {2, 1, 3.0}, {1, 9, 4.0}};
    const TileActivity act = ge.programTile(edges, 0, 0, 0);
    EXPECT_EQ(act.cellWrites, 3u);
    EXPECT_EQ(act.crossbarsUsed, 2u);
    EXPECT_EQ(act.maxRowsProgrammed, 2u); // crossbar 0 rows {0, 2}
    EXPECT_EQ(act.rowWriteOps, 3u);       // 2 rows + 1 row
    EXPECT_EQ(ledger.events().arrayWrites, 3u);
}

TEST(GraphEngineTest, MacMatchesDigitalSpmv)
{
    DeviceParams params;
    EnergyLedger ledger(params);
    const std::uint32_t dim = 4;
    GraphEngineArray ge(dim, 4, params, ledger);

    // Small weighted graph inside a single tile (16 columns).
    CooGraph g(16, {});
    g.addEdge(0, 1, 0.5);
    g.addEdge(0, 5, 1.25);
    g.addEdge(1, 1, 2.0);
    g.addEdge(2, 9, 0.75);
    g.addEdge(3, 15, 3.0);

    const int wf = 8;
    const int xf = 8;
    ge.programTile(g.edges(), 0, 0, wf);

    const std::vector<double> x = {0.5, 1.0, 2.0, 0.25};
    const std::vector<double> y = ge.runMac(x, xf, wf);

    // Digital reference on the same graph restricted to rows 0..3.
    std::vector<Value> full_x(16, 0.0);
    for (std::size_t i = 0; i < 4; ++i)
        full_x[i] = x[i];
    const std::vector<Value> expect = spmvRaw(g, full_x);
    for (std::uint32_t c = 0; c < 16; ++c)
        EXPECT_NEAR(y[c], expect[c], 0.01) << "column " << c;
}

TEST(GraphEngineTest, MacExactForIntegerData)
{
    DeviceParams params;
    EnergyLedger ledger(params);
    GraphEngineArray ge(4, 2, params, ledger);

    std::vector<Edge> edges = {{0, 0, 3.0}, {1, 0, 5.0}, {2, 7, 2.0}};
    ge.programTile(edges, 0, 0, 0);
    const std::vector<double> x = {2.0, 10.0, 4.0, 0.0};
    const std::vector<double> y = ge.runMac(x, 0, 0);
    EXPECT_DOUBLE_EQ(y[0], 2.0 * 3.0 + 10.0 * 5.0);
    EXPECT_DOUBLE_EQ(y[7], 4.0 * 2.0);
    EXPECT_DOUBLE_EQ(y[1], 0.0);
}

TEST(GraphEngineTest, AddOpComputesRelaxation)
{
    DeviceParams params;
    EnergyLedger ledger(params);
    GraphEngineArray ge(4, 2, params, ledger);

    // Row 1 has edges to columns 0 (w=5) and 6 (w=2).
    std::vector<Edge> edges = {{1, 0, 5.0}, {1, 6, 2.0}, {2, 3, 9.0}};
    ge.programTile(edges, 0, 0, 0);

    const std::vector<double> cand = ge.runAddOp(1, 10.0, 0);
    EXPECT_DOUBLE_EQ(cand[0], 15.0);
    EXPECT_DOUBLE_EQ(cand[6], 12.0);
    // Absent columns are "M" (infinity), even where other rows have
    // edges.
    EXPECT_TRUE(std::isinf(cand[3]));
    EXPECT_TRUE(std::isinf(cand[1]));
}

TEST(GraphEngineTest, RowMaskMatchesEdges)
{
    DeviceParams params;
    EnergyLedger ledger(params);
    GraphEngineArray ge(4, 2, params, ledger);
    std::vector<Edge> edges = {{1, 0, 1.0}, {1, 6, 1.0}, {3, 2, 1.0}};
    ge.programTile(edges, 0, 0, 0);
    const auto mask1 = ge.rowMask(1);
    EXPECT_TRUE(mask1[0]);
    EXPECT_TRUE(mask1[6]);
    EXPECT_FALSE(mask1[2]);
    const auto mask0 = ge.rowMask(0);
    for (bool b : mask0)
        EXPECT_FALSE(b);
}

TEST(GraphEngineTest, TileRelativeCoordinatesRespected)
{
    DeviceParams params;
    EnergyLedger ledger(params);
    GraphEngineArray ge(4, 2, params, ledger);
    // Tile origin at (row0=8, col0=16).
    std::vector<Edge> edges = {{9, 17, 4.0}};
    ge.programTile(edges, 8, 16, 0);
    const std::vector<double> y =
        ge.runMac({0.0, 1.0, 0.0, 0.0}, 0, 0);
    EXPECT_DOUBLE_EQ(y[1], 4.0);
}

TEST(GraphEngineTest, ReprogramOverwritesPreviousTile)
{
    DeviceParams params;
    EnergyLedger ledger(params);
    GraphEngineArray ge(4, 2, params, ledger);
    std::vector<Edge> first = {{0, 0, 7.0}};
    ge.programTile(first, 0, 0, 0);
    std::vector<Edge> second = {{1, 1, 3.0}};
    ge.programTile(second, 0, 0, 0);
    const std::vector<double> y =
        ge.runMac({1.0, 1.0, 1.0, 1.0}, 0, 0);
    EXPECT_DOUBLE_EQ(y[0], 0.0); // old edge gone
    EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(GraphEngineTest, ActivityAgreesWithTileMeta)
{
    // The functional programTile and the analytic TileMetaTable must
    // count the same crossbars/rows: the cost model depends on it.
    const CooGraph g =
        makeRmat({.numVertices = 64, .numEdges = 600,
                  .maxWeight = 15.0, .seed = 21});
    TilingParams tp;
    tp.crossbarDim = 4;
    tp.crossbarsPerGe = 2;
    tp.numGe = 2;
    tp.blockSize = 32;
    const GridPartition part(g.numVertices(), tp);
    const OrderedEdgeList ordered(g, part);
    const TileMetaTable table(ordered);

    DeviceParams params;
    EnergyLedger ledger(params);
    GraphEngineArray ge(tp.crossbarDim,
                        tp.crossbarsPerGe * tp.numGe, params, ledger);

    ASSERT_EQ(table.tiles().size(), ordered.tiles().size());
    for (std::size_t t = 0; t < table.tiles().size(); ++t) {
        const TileMeta &meta = table.tiles()[t];
        const TileSpan &span = ordered.tiles()[t];
        const TileActivity act = ge.programTile(
            ordered.tileEdges(span), meta.row0, meta.col0, 0);
        EXPECT_EQ(act.crossbarsUsed, meta.crossbarsUsed);
        EXPECT_EQ(act.maxRowsProgrammed, meta.maxRowsProgrammed);
        EXPECT_EQ(act.cellWrites, meta.nnz);
    }
}

TEST(GraphEngineTest, EnergyEventsAccumulate)
{
    DeviceParams params;
    EnergyLedger ledger(params);
    GraphEngineArray ge(4, 2, params, ledger);
    std::vector<Edge> edges = {{0, 0, 1.0}, {1, 5, 1.0}};
    ge.programTile(edges, 0, 0, 0);
    ge.runMac({1.0, 1.0, 0.0, 0.0}, 0, 0);
    const EnergyEvents &ev = ledger.events();
    EXPECT_GT(ev.arrayWrites, 0u);
    EXPECT_GT(ev.arrayReads, 0u);
    EXPECT_GT(ev.adcSamples, 0u);
    EXPECT_GT(ledger.totalJoules(), 0.0);
}

} // namespace
} // namespace graphr
