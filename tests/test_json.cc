/**
 * @file
 * Unit tests for the minimal JSON writer (common/json).
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "common/json.hh"

namespace graphr
{
namespace
{

TEST(JsonWriterTest, EmptyObjectAndArray)
{
    std::ostringstream obj;
    JsonWriter(obj).beginObject().endObject();
    EXPECT_EQ(obj.str(), "{}");

    std::ostringstream arr;
    JsonWriter(arr).beginArray().endArray();
    EXPECT_EQ(arr.str(), "[]");
}

TEST(JsonWriterTest, CompactObject)
{
    std::ostringstream oss;
    JsonWriter w(oss, /*indent=*/0);
    w.beginObject();
    w.field("a", std::uint64_t{1});
    w.field("b", "x");
    w.field("c", true);
    w.key("d").null();
    w.endObject();
    EXPECT_EQ(oss.str(), "{\"a\":1,\"b\":\"x\",\"c\":true,\"d\":null}");
}

TEST(JsonWriterTest, PrettyNesting)
{
    std::ostringstream oss;
    JsonWriter w(oss, /*indent=*/2);
    w.beginObject();
    w.key("list");
    w.beginArray();
    w.value(std::uint64_t{1});
    w.value(std::uint64_t{2});
    w.endArray();
    w.endObject();
    EXPECT_EQ(oss.str(), "{\n  \"list\": [\n    1,\n    2\n  ]\n}");
}

TEST(JsonWriterTest, ArrayOfObjects)
{
    std::ostringstream oss;
    JsonWriter w(oss, /*indent=*/0);
    w.beginArray();
    w.beginObject().field("i", 0).endObject();
    w.beginObject().field("i", 1).endObject();
    w.endArray();
    EXPECT_EQ(oss.str(), "[{\"i\":0},{\"i\":1}]");
}

TEST(JsonWriterTest, EscapesStrings)
{
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(JsonWriter::escape(std::string_view("a\x01z", 3)),
              "a\\u0001z");
}

TEST(JsonWriterTest, FormatDoubleDeterministic)
{
    EXPECT_EQ(JsonWriter::formatDouble(0.0), "0");
    EXPECT_EQ(JsonWriter::formatDouble(1.5), "1.5");
    EXPECT_EQ(JsonWriter::formatDouble(1e-9), "1e-09");
    EXPECT_EQ(JsonWriter::formatDouble(1.0 / 3.0), "0.333333333333");
    // Non-finite values are emitted as strings (JSON has no inf/nan).
    EXPECT_EQ(JsonWriter::formatDouble(
                  std::numeric_limits<double>::infinity()),
              "\"inf\"");
    EXPECT_EQ(JsonWriter::formatDouble(
                  std::numeric_limits<double>::quiet_NaN()),
              "\"nan\"");
}

TEST(JsonWriterTest, NegativeNumbers)
{
    std::ostringstream oss;
    JsonWriter w(oss, 0);
    w.beginArray();
    w.value(std::int64_t{-3});
    w.value(-2.5);
    w.endArray();
    EXPECT_EQ(oss.str(), "[-3,-2.5]");
}

} // namespace
} // namespace graphr
