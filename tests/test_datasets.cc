/**
 * @file
 * Additional dataset and scaling tests: the synthetic stand-ins must
 * preserve the structural properties (size ratios, density, skew)
 * that GraphR's evaluation depends on.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "graph/datasets.hh"
#include "graph/generator.hh"

namespace graphr
{
namespace
{

TEST(DatasetScalingTest, EdgesScaleLinearly)
{
    const CooGraph s4 = makeDataset(DatasetId::kWikiVote, 4.0);
    const CooGraph s8 = makeDataset(DatasetId::kWikiVote, 8.0);
    EXPECT_NEAR(static_cast<double>(s4.numEdges()) / s8.numEdges(), 2.0,
                0.01);
}

TEST(DatasetScalingTest, VerticesScaleBySqrt)
{
    const CooGraph s1 = makeDataset(DatasetId::kWikiVote, 1.0);
    const CooGraph s4 = makeDataset(DatasetId::kWikiVote, 4.0);
    EXPECT_NEAR(static_cast<double>(s1.numVertices()) /
                    s4.numVertices(),
                2.0, 0.05);
}

TEST(DatasetScalingTest, DensityPreservedAcrossScales)
{
    for (double scale : {1.0, 4.0, 16.0}) {
        const CooGraph g = makeDataset(DatasetId::kSlashdot, scale);
        const DatasetInfo &info = datasetInfo(DatasetId::kSlashdot);
        const double paper_density =
            static_cast<double>(info.paperEdges) /
            (static_cast<double>(info.paperVertices) *
             info.paperVertices);
        EXPECT_NEAR(g.density() / paper_density, 1.0, 0.2)
            << "scale " << scale;
    }
}

TEST(DatasetScalingTest, DatasetsKeepPaperDensityOrdering)
{
    // Table 3 density ordering at bench scale: WV > SD > AZ > WG.
    const double wv = makeDataset(DatasetId::kWikiVote, 4).density();
    const double sd = makeDataset(DatasetId::kSlashdot, 4).density();
    const double az = makeDataset(DatasetId::kAmazon, 4).density();
    EXPECT_GT(wv, sd);
    EXPECT_GT(sd, az);
}

TEST(DatasetScalingTest, DistinctSeedsDistinctGraphs)
{
    const CooGraph a = makeDataset(DatasetId::kWikiVote, 8.0, 1);
    const CooGraph b = makeDataset(DatasetId::kWikiVote, 8.0, 2);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    bool differs = false;
    for (std::size_t i = 0; i < a.numEdges() && !differs; ++i)
        differs = !(a.edges()[i] == b.edges()[i]);
    EXPECT_TRUE(differs);
}

TEST(DatasetScalingTest, DatasetsAreDeterministic)
{
    const CooGraph a = makeDataset(DatasetId::kAmazon, 16.0, 7);
    const CooGraph b = makeDataset(DatasetId::kAmazon, 16.0, 7);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    for (std::size_t i = 0; i < a.numEdges(); ++i)
        EXPECT_EQ(a.edges()[i], b.edges()[i]);
}

TEST(BenchScaleTest, EnvironmentOverrideWorks)
{
    ::setenv("GRAPHR_DATASET_SCALE", "64", 1);
    EXPECT_DOUBLE_EQ(benchScale(DatasetId::kWikiVote), 64.0);
    EXPECT_DOUBLE_EQ(benchScale(DatasetId::kOrkut), 64.0);
    ::unsetenv("GRAPHR_DATASET_SCALE");
    // Defaults: large datasets scale harder.
    EXPECT_GT(benchScale(DatasetId::kOrkut),
              benchScale(DatasetId::kWikiVote));
}

TEST(BenchScaleTest, RejectsInvalidOverride)
{
    ::setenv("GRAPHR_DATASET_SCALE", "0.5", 1);
    // Falls back to the per-dataset default.
    EXPECT_DOUBLE_EQ(benchScale(DatasetId::kWikiVote),
                     kSmallBenchScale);
    ::unsetenv("GRAPHR_DATASET_SCALE");
}

TEST(RmatSkewTest, DegreeDistributionHeavyTailed)
{
    const CooGraph g = makeDataset(DatasetId::kSlashdot, 16.0);
    const auto deg = g.outDegrees();
    // Count vertices holding the top decile of edge mass.
    std::vector<EdgeId> sorted(deg.begin(), deg.end());
    std::sort(sorted.rbegin(), sorted.rend());
    EdgeId cum = 0;
    std::size_t hubs = 0;
    while (cum < g.numEdges() / 2 && hubs < sorted.size())
        cum += sorted[hubs++];
    // Half the edges concentrate on under 10% of vertices (skew).
    EXPECT_LT(static_cast<double>(hubs) / g.numVertices(), 0.10);
}

} // namespace
} // namespace graphr
