/**
 * @file
 * Tests for the TCP connection layer (src/net/) and the blocking
 * client library (src/client/): LineBuffer's bounded-memory JSONL
 * framing, the listener's port handling and SO_REUSEADDR rebinding,
 * and the event loop end to end — per-connection response streams
 * byte-identical to a blocking session at any worker count, and the
 * per-connection admission quota keeping a greedy client from
 * starving its siblings.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "client/client.hh"
#include "common/failpoint.hh"
#include "common/json_reader.hh"
#include "driver/golden_cache.hh"
#include "graphr/engine/plan_cache.hh"
#include "net/event_loop.hh"
#include "net/line_buffer.hh"
#include "net/listener.hh"
#include "perf/counters.hh"
#include "service/server.hh"

namespace graphr
{
namespace
{

using net::LineBuffer;

// ------------------------------------------------------- LineBuffer

TEST(LineBufferTest, FramesLinesAcrossArbitraryChunkBoundaries)
{
    LineBuffer buf(1024);
    const std::string text = "alpha\nbeta\ngamma\n";
    for (const char c : text)
        buf.append(&c, 1); // worst-case fragmentation
    EXPECT_EQ(buf.pendingLines(), 3u);

    std::string line;
    ASSERT_EQ(buf.pop(line), LineBuffer::Next::kLine);
    EXPECT_EQ(line, "alpha");
    ASSERT_EQ(buf.pop(line), LineBuffer::Next::kLine);
    EXPECT_EQ(line, "beta");
    ASSERT_EQ(buf.pop(line), LineBuffer::Next::kLine);
    EXPECT_EQ(line, "gamma");
    EXPECT_EQ(buf.pop(line), LineBuffer::Next::kNone);
}

TEST(LineBufferTest, OversizedLineIsDiscardedAndReportedOnce)
{
    // Same discipline as the blocking reader: exactly cap bytes is
    // still a line, one byte more is consumed-and-discarded and
    // surfaces as a single kOversized event.
    LineBuffer buf(4);
    const std::string text = "abcd\nabcde\nok\n";
    buf.append(text.data(), text.size());

    std::string line;
    ASSERT_EQ(buf.pop(line), LineBuffer::Next::kLine);
    EXPECT_EQ(line, "abcd");
    EXPECT_EQ(buf.pop(line), LineBuffer::Next::kOversized);
    ASSERT_EQ(buf.pop(line), LineBuffer::Next::kLine);
    EXPECT_EQ(line, "ok");
    EXPECT_EQ(buf.pop(line), LineBuffer::Next::kNone);
}

TEST(LineBufferTest, ZeroCapMeansUnlimited)
{
    LineBuffer buf(0);
    const std::string big(64 * 1024, 'x');
    buf.append(big.data(), big.size());
    buf.append("\n", 1);
    std::string line;
    ASSERT_EQ(buf.pop(line), LineBuffer::Next::kLine);
    EXPECT_EQ(line, big);
}

TEST(LineBufferTest, FinishPromotesTheTrailingFragment)
{
    LineBuffer buf(1024);
    buf.append("tail", 4);
    std::string line;
    EXPECT_EQ(buf.pop(line), LineBuffer::Next::kNone);
    buf.finish();
    ASSERT_EQ(buf.pop(line), LineBuffer::Next::kLine);
    EXPECT_EQ(line, "tail");
    // A clean EOF with nothing pending promotes nothing.
    buf.finish();
    EXPECT_EQ(buf.pop(line), LineBuffer::Next::kNone);
}

// --------------------------------------------------------- Listener

TEST(ListenerTest, PicksAndLogsAFreePortForPortZero)
{
    std::ostringstream log;
    net::Listener listener(0, log);
    EXPECT_GT(listener.port(), 0);
    EXPECT_NE(log.str().find("listening on 127.0.0.1:" +
                             std::to_string(listener.port())),
              std::string::npos)
        << log.str();
    EXPECT_FALSE(listener.closed());
    listener.close();
    EXPECT_TRUE(listener.closed());
    listener.close(); // idempotent (the SIGTERM path may race EOF)
}

TEST(ListenerTest, RebindsAPortWithAConnectionInTimeWait)
{
    // Accept a connection and close it server-side first: that parks
    // the server's end in TIME_WAIT on this port. Without
    // SO_REUSEADDR the rebind below fails with EADDRINUSE.
    std::ostringstream log;
    int port = 0;
    {
        net::Listener first(0, log);
        port = first.port();
        client::Client client(port);
        int conn_fd = -1;
        for (int i = 0; i < 500 && conn_fd < 0; ++i) {
            conn_fd = first.acceptClient(log);
            if (conn_fd < 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
        }
        ASSERT_GE(conn_fd, 0) << "accept never completed";
        ::close(conn_fd);
    }
    net::Listener second(port, log);
    EXPECT_EQ(second.port(), port);
}

// -------------------------------------------------------- EventLoop

/** Isolates the process-wide caches around every test. */
class NetServeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        resetCaches();
    }

    void
    TearDown() override
    {
        failpoint::disarmAll();
        resetCaches();
    }

    static void
    resetCaches()
    {
        PlanCache::instance().setStore(nullptr);
        PlanCache::instance().clear();
        driver::clearGoldenCache();
        perf::Registry::instance().resetAll();
    }
};

/** One in-process daemon: Server + Listener + EventLoop thread. */
struct LoopHarness
{
    std::ostringstream log; // declared first: listener/loop borrow it
    service::Server server;
    net::Listener listener;
    net::EventLoop loop;
    std::thread thread;

    explicit LoopHarness(const service::ServeOptions &options,
                         const net::EventLoopOptions &loop_options = {})
        : server(options), listener(0, log),
          loop(server, listener, loop_options, log)
    {
        thread = std::thread([this] { loop.run(); });
    }

    ~LoopHarness()
    {
        server.requestStop();
        loop.wake();
        thread.join();
    }
};

const std::vector<std::string> kStreamRequests = {
    R"({"id":"r1","type":"run","dataset":"chain:n=64"})",
    R"({"id":"s1","type":"sweep","workloads":["pagerank","wcc"],)"
    R"("datasets":["star:n=64"]})",
    R"({"id":"r2","type":"run","dataset":"grid:width=8,height=8"})",
};

/** The same requests through a blocking stdin-style session. */
std::string
blockingStream()
{
    std::string input;
    for (const std::string &line : kStreamRequests)
        input += line + "\n";
    std::istringstream in(input);
    std::ostringstream out;
    service::ServeOptions options;
    options.jobs = 1;
    service::Server server(options);
    server.serve(in, out);
    return out.str();
}

void
expectConnectionsMatchBlocking(std::uint32_t jobs)
{
    const std::string expected = blockingStream();
    ASSERT_FALSE(expected.empty());

    PlanCache::instance().clear();
    driver::clearGoldenCache();
    perf::Registry::instance().resetAll();

    service::ServeOptions options;
    options.jobs = jobs;
    LoopHarness harness(options);

    // Every connection pipelines the whole request stream at once,
    // concurrently with its siblings; each must read back exactly
    // the blocking session's bytes, in admission order.
    constexpr int kConnections = 3;
    std::vector<std::string> streams(kConnections);
    std::vector<std::string> errors(kConnections);
    std::vector<std::thread> clients;
    clients.reserve(kConnections);
    for (int c = 0; c < kConnections; ++c) {
        clients.emplace_back([&, c] {
            try {
                client::Client client(harness.listener.port());
                client.setRecvTimeoutMs(120000);
                for (const std::string &line : kStreamRequests)
                    client.sendLine(line);
                for (std::size_t i = 0; i < kStreamRequests.size();
                     ++i)
                    streams[c] += client.recvLine() + "\n";
            } catch (const client::ClientError &err) {
                errors[c] = err.what();
            }
        });
    }
    for (std::thread &t : clients)
        t.join();

    for (int c = 0; c < kConnections; ++c) {
        EXPECT_EQ(errors[c], "") << "connection " << c;
        EXPECT_EQ(streams[c], expected) << "connection " << c;
    }
}

TEST_F(NetServeTest, ConnectionStreamsMatchTheBlockingSessionSerial)
{
    expectConnectionsMatchBlocking(1);
}

TEST_F(NetServeTest, ConnectionStreamsMatchTheBlockingSessionJobs4)
{
    expectConnectionsMatchBlocking(4);
}

TEST_F(NetServeTest, GreedyClientIsBoundedAndCannotStarveASibling)
{
    // Stall every worker task: the greedy burst's head occupies the
    // lone worker while the rest of the burst is dispatched, so the
    // per-connection quota (2) must reject the excess — and the
    // polite sibling's request must still be admitted and served.
    failpoint::configure("pool.task.slow@*=300");
    service::ServeOptions options;
    options.jobs = 1;
    options.connQueueDepth = 2;
    LoopHarness harness(options);

    client::Client greedy(harness.listener.port());
    greedy.setRecvTimeoutMs(120000);
    constexpr int kBurst = 8;
    for (int i = 0; i < kBurst; ++i)
        greedy.sendLine(R"({"id":"g)" + std::to_string(i) +
                        R"(","type":"run","dataset":"chain:n=64"})");

    client::Client polite(harness.listener.port());
    polite.setRecvTimeoutMs(120000);
    const std::string answer = polite.request(
        R"({"id":"p","type":"run","dataset":"star:n=64"})");
    EXPECT_NE(answer.find("\"ok\":true"), std::string::npos)
        << answer;

    int ok = 0;
    int rejected = 0;
    for (int i = 0; i < kBurst; ++i) {
        const std::string response = greedy.recvLine();
        if (response.find("queue full") != std::string::npos)
            ++rejected;
        else if (response.find("\"ok\":true") != std::string::npos)
            ++ok;
    }
    EXPECT_EQ(ok, static_cast<int>(options.connQueueDepth));
    EXPECT_EQ(ok + rejected, kBurst);
    failpoint::disarmAll();
}

TEST_F(NetServeTest, StatusReportsTheConnectionLayer)
{
    LoopHarness harness({});

    client::Client first(harness.listener.port());
    first.setRecvTimeoutMs(120000);
    client::Client second(harness.listener.port());
    second.setRecvTimeoutMs(120000);

    // Order the observations: the second connection completes a work
    // request (so it is accepted and counted) before the first asks.
    const std::string work = second.request(
        R"({"id":"w","type":"run","dataset":"chain:n=64"})");
    ASSERT_NE(work.find("\"ok\":true"), std::string::npos) << work;

    const std::string status =
        first.request(R"({"id":"q","type":"status"})");
    const JsonValue v = JsonValue::parse(status);
    const JsonValue *conns = v.find("connections");
    ASSERT_NE(conns, nullptr) << status;
    EXPECT_EQ(conns->find("active")->asU64(), 2u);
    EXPECT_EQ(conns->find("total_accepted")->asU64(), 2u);
    const auto &per = conns->find("per_connection")->items();
    ASSERT_EQ(per.size(), 2u);
    std::uint64_t admitted = 0;
    for (const JsonValue &entry : per) {
        admitted += entry.find("admitted")->asU64();
        // Fault-free zero-stability: nothing rejected, nothing failed.
        EXPECT_EQ(entry.find("rejected")->asU64(), 0u);
        EXPECT_EQ(entry.find("failed")->asU64(), 0u);
    }
    EXPECT_EQ(admitted, 1u) << "exactly the one work request";
    // No request carried a tenant: the tenants block stays empty.
    EXPECT_TRUE(v.find("tenants")->members().empty());
}

} // namespace
} // namespace graphr
