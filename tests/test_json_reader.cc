/**
 * @file
 * Tests for the strict JSON reader: round-trips of every value type,
 * escape handling, raw-token integer reads, and — most importantly
 * for the serving daemon — every malformed-input path throwing
 * JsonParseError instead of crashing or mis-parsing.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/json_reader.hh"

namespace graphr
{
namespace
{

TEST(JsonReader, ParsesScalars)
{
    EXPECT_TRUE(JsonValue::parse("null").isNull());
    EXPECT_TRUE(JsonValue::parse("true").asBool());
    EXPECT_FALSE(JsonValue::parse("false").asBool());
    EXPECT_DOUBLE_EQ(JsonValue::parse("0.85").asDouble(), 0.85);
    EXPECT_DOUBLE_EQ(JsonValue::parse("-2e3").asDouble(), -2000.0);
    EXPECT_EQ(JsonValue::parse("\"hi\"").asString(), "hi");
    EXPECT_EQ(JsonValue::parse("  42  ").asU64(), 42u);
}

TEST(JsonReader, UnderflowRoundsToZeroButOverflowIsRejected)
{
    // Subnormal underflow loses precision like any rounding; it must
    // not become a parse error (that would drop the request id in a
    // serve response). Overflow to infinity stays a hard error.
    EXPECT_DOUBLE_EQ(JsonValue::parse("1e-400").asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(JsonValue::parse("-1.5e-400").asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(
        JsonValue::parse("0.0000000000000000000001e-380").asDouble(),
        0.0);
    EXPECT_THROW(JsonValue::parse("1e400"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("-123.4e999"), JsonParseError);
}

TEST(JsonReader, NumberTokenKeepsTheSourceSpelling)
{
    EXPECT_EQ(JsonValue::parse("0.850").numberToken(), "0.850");
    EXPECT_EQ(JsonValue::parse("1e-3").numberToken(), "1e-3");
}

TEST(JsonReader, U64SurvivesAboveDoublePrecision)
{
    // 2^63 + 1 is not representable as a double; the raw token is.
    EXPECT_EQ(JsonValue::parse("9223372036854775809").asU64(),
              9223372036854775809ull);
    EXPECT_THROW(JsonValue::parse("-1").asU64(), JsonParseError);
    EXPECT_THROW(JsonValue::parse("1.5").asU64(), JsonParseError);
    // Integral exponent forms are accepted.
    EXPECT_EQ(JsonValue::parse("1e3").asU64(), 1000u);
}

TEST(JsonReader, ParsesNestedContainers)
{
    const JsonValue v = JsonValue::parse(
        R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
    ASSERT_TRUE(v.isObject());
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_EQ(a->items()[0].asU64(), 1u);
    EXPECT_EQ(a->items()[2].find("b")->asString(), "c");
    EXPECT_TRUE(v.find("d")->find("e")->isNull());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonReader, DecodesEscapes)
{
    const JsonValue v = JsonValue::parse(
        R"("q\" b\\ s\/ \b\f\n\r\t u\u0041 e\u00e9")");
    EXPECT_EQ(v.asString(),
              "q\" b\\ s/ \b\f\n\r\t uA e\xc3\xa9");
    // Surrogate pair: U+1F600 as UTF-8.
    EXPECT_EQ(JsonValue::parse(R"("\ud83d\ude00")").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(JsonReader, DuplicateKeysResolveLastWins)
{
    const JsonValue v = JsonValue::parse(R"({"k": 1, "k": 2})");
    EXPECT_EQ(v.members().size(), 2u);
    EXPECT_EQ(v.find("k")->asU64(), 2u);
}

TEST(JsonReader, RejectsMalformedInput)
{
    const char *bad[] = {
        "",                      // empty
        "{",                     // unterminated object
        "[1, 2",                 // unterminated array
        "{\"a\": 1,}",           // trailing comma
        "{\"a\" 1}",             // missing colon
        "{a: 1}",                // unquoted key
        "\"unterminated",        // unterminated string
        "\"bad \\x escape\"",    // unknown escape
        "\"\\ud83d\"",           // unpaired surrogate
        "01",                    // leading zero
        "1.",                    // digitless fraction
        "1e",                    // digitless exponent
        "nul",                   // truncated literal
        "true false",            // trailing value
        "\"tab\tinside\"",       // raw control character
        "1e999",                 // overflows double to infinity
        "-1e999",                // overflows double to -infinity
    };
    for (const char *text : bad) {
        EXPECT_THROW(JsonValue::parse(text), JsonParseError)
            << "input: " << text;
    }
}

TEST(JsonReader, RejectsRunawayNesting)
{
    std::string deep;
    for (int i = 0; i < JsonValue::kMaxDepth + 2; ++i)
        deep += "[";
    EXPECT_THROW(JsonValue::parse(deep), JsonParseError);
}

TEST(JsonReader, TypeMismatchesThrow)
{
    const JsonValue v = JsonValue::parse("[1]");
    EXPECT_THROW(v.asString(), JsonParseError);
    EXPECT_THROW(v.asBool(), JsonParseError);
    EXPECT_THROW(v.members(), JsonParseError);
    EXPECT_THROW(JsonValue::parse("{}").items(), JsonParseError);
}

} // namespace
} // namespace graphr
