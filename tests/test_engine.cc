/**
 * @file
 * Tests of the tile-execution engine layer (graphr/engine/): plan
 * fingerprinting, PlanCache reuse across runs/backends, config
 * validation (the crossbarDim <= 64 row-mask invariant), functional
 * vs reference equivalence for all six algorithms through the shared
 * TileExecutor, resident-weight (ProgramCharging::kOnce) program
 * counting, the driver's golden-PageRank cache, and SIMD-tier
 * independence of whole-sweep JSON reports.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "algorithms/pagerank.hh"
#include "algorithms/spmv.hh"
#include "algorithms/traversal.hh"
#include "algorithms/wcc.hh"
#include "common/random.hh"
#include "driver/driver.hh"
#include "driver/golden_cache.hh"
#include "graph/generator.hh"
#include "graphr/engine/plan_cache.hh"
#include "graphr/engine/tile_executor.hh"
#include "graphr/node.hh"
#include "graphr/out_of_core.hh"
#include "rram/simd/simd.hh"

namespace graphr
{
namespace
{

/** Small tiling so functional runs stay fast. */
GraphRConfig
functionalConfig()
{
    GraphRConfig cfg;
    cfg.tiling.crossbarDim = 4;
    cfg.tiling.crossbarsPerGe = 2;
    cfg.tiling.numGe = 2;
    cfg.functional = true;
    return cfg;
}

// -------------------------------------------------------- fingerprint

TEST(FingerprintTest, DeterministicAndSensitive)
{
    const CooGraph a =
        makeRmat({.numVertices = 64, .numEdges = 256, .seed = 1});
    const CooGraph b =
        makeRmat({.numVertices = 64, .numEdges = 256, .seed = 1});
    EXPECT_EQ(graphFingerprint(a), graphFingerprint(b));

    CooGraph c = a;
    c.mutableEdges()[0].weight += 1.0;
    EXPECT_NE(graphFingerprint(a), graphFingerprint(c));

    const CooGraph d =
        makeRmat({.numVertices = 64, .numEdges = 256, .seed = 2});
    EXPECT_NE(graphFingerprint(a), graphFingerprint(d));
}

// --------------------------------------------------------- plan cache

TEST(PlanCacheTest, ReusesSamePlanAcrossLookups)
{
    PlanCache &cache = PlanCache::instance();
    cache.clear();
    const CooGraph g =
        makeRmat({.numVertices = 128, .numEdges = 512, .seed = 7});
    const TilingParams tiling;

    const TilePlanPtr first = cache.get(g, tiling);
    const TilePlanPtr second = cache.get(g, tiling);
    EXPECT_EQ(first.get(), second.get()) << "plan must be shared";
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCacheTest, DistinctTilingBuildsDistinctPlan)
{
    PlanCache &cache = PlanCache::instance();
    cache.clear();
    const CooGraph g =
        makeRmat({.numVertices = 128, .numEdges = 512, .seed = 7});

    TilingParams coarse;
    TilingParams fine;
    fine.crossbarDim = 4;
    const TilePlanPtr a = cache.get(g, coarse);
    const TilePlanPtr b = cache.get(g, fine);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(PlanCacheTest, EvictionKeepsHandlesValid)
{
    PlanCache &cache = PlanCache::instance();
    cache.clear();
    cache.setCapacity(1);
    const CooGraph a = makeChain(32);
    const CooGraph b = makeChain(33);
    const TilingParams tiling;

    const TilePlanPtr pa = cache.get(a, tiling);
    const TilePlanPtr pb = cache.get(b, tiling); // evicts a's entry
    EXPECT_EQ(cache.size(), 1u);
    // The evicted plan is still alive through our handle.
    EXPECT_GT(pa->meta.totalNnz(), 0u);
    // Re-requesting a is a miss again.
    cache.get(a, tiling);
    EXPECT_EQ(cache.stats().misses, 3u);
    cache.setCapacity(PlanCache::kDefaultCapacity);
}

TEST(PlanCacheTest, SharedAcrossRunnersAndBackends)
{
    PlanCache &cache = PlanCache::instance();
    cache.clear();
    const CooGraph g =
        makeRmat({.numVertices = 128, .numEdges = 512, .seed = 11});

    GraphRConfig cfg;
    GraphRNode node(cfg);
    PageRankParams pr;
    pr.maxIterations = 5;
    node.runPageRank(g, pr);
    EXPECT_FALSE(node.lastEngineStats().planCacheHit);

    const std::vector<Value> x(g.numVertices(), 1.0);
    node.runSpmv(g, x);
    EXPECT_TRUE(node.lastEngineStats().planCacheHit);

    OutOfCoreRunner ooc(cfg, StorageParams{});
    ooc.runSpmv(g, x);

    EXPECT_EQ(cache.stats().misses, 1u)
        << "one prepare per (graph, tiling) across runners";
}

TEST(PlanCacheTest, DriverSweepPreparesOncePerGraphAndTiling)
{
    PlanCache &cache = PlanCache::instance();
    cache.clear();

    driver::SweepSpec spec;
    spec.workloads = {"all"};
    spec.backends = {"graphr", "outofcore"};
    spec.datasets = {"rmat:vertices=128,edges=512,seed=3"};
    spec.params =
        driver::ParamMap::parse("epochs=1,features=4,iterations=5");
    const std::vector<driver::RunResult> results =
        driver::runSweep(spec);
    EXPECT_EQ(results.size(), 12u);

    // Six algorithms x two backends share exactly two plans: the
    // graph itself and its symmetrised variant (WCC).
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_GT(cache.stats().hits, 0u);
}

// --------------------------------------------------- config validation

TEST(ConfigValidationTest, RejectsRowMaskOverflowingCrossbars)
{
    GraphRConfig cfg;
    cfg.tiling.crossbarDim = 128; // would shift a uint64_t out of range
    EXPECT_THROW(GraphRNode{cfg}, ConfigError);
    EXPECT_THROW(MultiNodeGraphR(cfg, 2), ConfigError);
    EXPECT_THROW(OutOfCoreRunner(cfg, StorageParams{}), ConfigError);
    cfg.tiling.crossbarDim = 64; // largest legal dimension
    EXPECT_NO_THROW(GraphRNode{cfg});
}

TEST(ConfigValidationTest, RejectsDegenerateParameters)
{
    GraphRConfig cfg;
    cfg.tiling.crossbarDim = 0;
    EXPECT_THROW(GraphRNode{cfg}, ConfigError);

    cfg = GraphRConfig{};
    cfg.tiling.numGe = 0;
    EXPECT_THROW(GraphRNode{cfg}, ConfigError);

    cfg = GraphRConfig{};
    cfg.weightFracBits = 17;
    EXPECT_THROW(GraphRNode{cfg}, ConfigError);

    cfg = GraphRConfig{};
    cfg.variationSigma = -1.0;
    EXPECT_THROW(GraphRNode{cfg}, ConfigError);
}

// ------------------------------- functional equivalence, six algorithms

TEST(EngineFunctionalTest, PageRankMatchesReference)
{
    const CooGraph g =
        makeRmat({.numVertices = 50, .numEdges = 400, .seed = 41});
    GraphRNode node(functionalConfig());
    PageRankParams params;
    params.maxIterations = 12;
    params.tolerance = 0.0;
    std::vector<Value> ranks;
    node.runPageRank(g, params, &ranks);

    const PageRankResult golden = pagerank(g, params);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_NEAR(ranks[v], golden.ranks[v], 0.02) << "vertex " << v;
}

TEST(EngineFunctionalTest, SpmvMatchesReference)
{
    const CooGraph g = makeRmat({.numVertices = 40,
                                 .numEdges = 300,
                                 .maxWeight = 3.0,
                                 .seed = 42});
    GraphRNode node(functionalConfig());
    std::vector<Value> x(g.numVertices());
    Rng rng(9);
    for (auto &v : x)
        v = rng.uniform();
    std::vector<Value> y;
    node.runSpmv(g, x, &y);
    const std::vector<Value> golden = spmv(g, x);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_NEAR(y[v], golden[v], 0.01) << "vertex " << v;
}

TEST(EngineFunctionalTest, SpmvStaysExactUnderVariation)
{
    // SpMV is the exactness-validation workload: cell variation must
    // not perturb it (it applies to the resilience experiments —
    // PageRank and the add-op traversals — only).
    const CooGraph g = makeRmat({.numVertices = 40,
                                 .numEdges = 300,
                                 .maxWeight = 3.0,
                                 .seed = 42});
    GraphRConfig cfg = functionalConfig();
    cfg.variationSigma = 0.5;
    GraphRNode node(cfg);
    std::vector<Value> x(g.numVertices(), 1.0);
    std::vector<Value> y;
    node.runSpmv(g, x, &y);
    const std::vector<Value> golden = spmv(g, x);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_NEAR(y[v], golden[v], 0.01) << "vertex " << v;
}

TEST(EngineFunctionalTest, BfsMatchesReferenceExactly)
{
    const CooGraph g =
        makeRmat({.numVertices = 70, .numEdges = 600, .seed = 43});
    GraphRNode node(functionalConfig());
    std::vector<Value> dist;
    node.runBfs(g, 0, &dist);
    const TraversalResult golden = bfs(g, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (std::isinf(golden.dist[v]))
            EXPECT_TRUE(std::isinf(dist[v])) << "vertex " << v;
        else
            EXPECT_DOUBLE_EQ(dist[v], golden.dist[v]) << "vertex " << v;
    }
}

TEST(EngineFunctionalTest, SsspMatchesReferenceExactly)
{
    const CooGraph g = makeRmat({.numVertices = 60,
                                 .numEdges = 500,
                                 .maxWeight = 15.0,
                                 .seed = 44});
    GraphRNode node(functionalConfig());
    std::vector<Value> dist;
    node.runSssp(g, 0, &dist);
    const TraversalResult golden = sssp(g, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (std::isinf(golden.dist[v]))
            EXPECT_TRUE(std::isinf(dist[v])) << "vertex " << v;
        else
            EXPECT_DOUBLE_EQ(dist[v], golden.dist[v]) << "vertex " << v;
    }
}

TEST(EngineFunctionalTest, WccMatchesReferenceExactly)
{
    const CooGraph g =
        makeRmat({.numVertices = 90, .numEdges = 300, .seed = 45});
    GraphRNode node(functionalConfig());
    std::vector<VertexId> labels;
    node.runWcc(g, &labels);
    const WccResult golden = wcc(g);
    ASSERT_EQ(labels.size(), golden.labels.size());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(labels[v], golden.labels[v]) << "vertex " << v;
}

TEST(EngineFunctionalTest, CfScheduleIndependentOfFunctionalFlag)
{
    // CF semantics always come from the golden SGD; the functional
    // flag must not change the modelled schedule or its cost.
    const CooGraph ratings = makeBipartiteRatings(32, 16, 200, 21);
    CfParams params;
    params.featureLength = 4;
    params.epochs = 2;
    params.numUsers = 32;

    GraphRNode functional(functionalConfig());
    GraphRConfig timing_cfg = functionalConfig();
    timing_cfg.functional = false;
    GraphRNode timing(timing_cfg);

    const SimReport a = functional.runCf(ratings, params);
    const SimReport b = timing.runCf(ratings, params);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_DOUBLE_EQ(a.joules, b.joules);
    EXPECT_EQ(a.tilesProcessed, b.tilesProcessed);
    EXPECT_EQ(a.edgesProcessed, b.edgesProcessed);
}

// ------------------------------------------- resident weights (kOnce)

TEST(ResidentWeightTest, KOnceProgramsEachTileOncePerRun)
{
    const CooGraph g =
        makeRmat({.numVertices = 64, .numEdges = 500, .seed = 51});
    GraphRConfig cfg = functionalConfig();
    cfg.programCharging = ProgramCharging::kOnce;
    GraphRNode node(cfg);

    PageRankParams params;
    params.maxIterations = 6;
    params.tolerance = 0.0;
    node.runPageRank(g, params);

    const std::uint64_t tiles =
        PlanCache::instance().get(g, cfg.tiling)->meta.tiles().size();
    ASSERT_GT(tiles, 0u);
    EXPECT_EQ(node.lastEngineStats().functionalTilePrograms, tiles);
    EXPECT_EQ(node.lastEngineStats().functionalTileLoads, tiles * 5);
}

TEST(ResidentWeightTest, PerSweepReprogramsEveryIteration)
{
    const CooGraph g =
        makeRmat({.numVertices = 64, .numEdges = 500, .seed = 51});
    GraphRConfig cfg = functionalConfig(); // kPerSweep default
    GraphRNode node(cfg);

    PageRankParams params;
    params.maxIterations = 6;
    params.tolerance = 0.0;
    node.runPageRank(g, params);

    const std::uint64_t tiles =
        PlanCache::instance().get(g, cfg.tiling)->meta.tiles().size();
    EXPECT_EQ(node.lastEngineStats().functionalTilePrograms, tiles * 6);
    EXPECT_EQ(node.lastEngineStats().functionalTileLoads, 0u);
}

TEST(ResidentWeightTest, KOnceResultsMatchReprogramExactly)
{
    const CooGraph g = makeRmat({.numVertices = 50,
                                 .numEdges = 400,
                                 .maxWeight = 9.0,
                                 .seed = 52});
    PageRankParams params;
    params.maxIterations = 8;
    params.tolerance = 0.0;

    GraphRConfig per_sweep = functionalConfig();
    GraphRConfig once = functionalConfig();
    once.programCharging = ProgramCharging::kOnce;

    std::vector<Value> ranks_per_sweep;
    std::vector<Value> ranks_once;
    GraphRNode(per_sweep).runPageRank(g, params, &ranks_per_sweep);
    GraphRNode(once).runPageRank(g, params, &ranks_once);
    ASSERT_EQ(ranks_per_sweep.size(), ranks_once.size());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_DOUBLE_EQ(ranks_once[v], ranks_per_sweep[v]);

    std::vector<Value> dist_per_sweep;
    std::vector<Value> dist_once;
    GraphRNode(per_sweep).runSssp(g, 0, &dist_per_sweep);
    GraphRNode(once).runSssp(g, 0, &dist_once);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (std::isinf(dist_per_sweep[v]))
            EXPECT_TRUE(std::isinf(dist_once[v])) << "vertex " << v;
        else
            EXPECT_DOUBLE_EQ(dist_once[v], dist_per_sweep[v])
                << "vertex " << v;
    }
}

TEST(ResidentWeightTest, AddOpProgramsEachTileAtMostOnce)
{
    const CooGraph g =
        makeRmat({.numVertices = 64, .numEdges = 500, .seed = 53});
    GraphRConfig cfg = functionalConfig();
    cfg.programCharging = ProgramCharging::kOnce;
    GraphRNode node(cfg);

    std::vector<Value> dist;
    node.runBfs(g, 0, &dist);

    const std::uint64_t tiles =
        PlanCache::instance().get(g, cfg.tiling)->meta.tiles().size();
    EXPECT_LE(node.lastEngineStats().functionalTilePrograms, tiles);

    const TraversalResult golden = bfs(g, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (std::isinf(golden.dist[v]))
            EXPECT_TRUE(std::isinf(dist[v]));
        else
            EXPECT_DOUBLE_EQ(dist[v], golden.dist[v]);
    }
}

// ----------------------------------------------- driver golden cache

TEST(GoldenCacheTest, BaselinesShareOneGoldenPageRank)
{
    driver::clearGoldenCache();

    driver::SweepSpec spec;
    spec.workloads = {"pagerank"};
    spec.backends = {"cpu", "gpu", "pim"};
    spec.datasets = {"rmat:vertices=128,edges=512,seed=3"};
    const std::vector<driver::RunResult> results =
        driver::runSweep(spec);
    ASSERT_EQ(results.size(), 3u);
    // All three baselines report the same iteration count ...
    EXPECT_EQ(results[0].iterations, results[1].iterations);
    EXPECT_EQ(results[1].iterations, results[2].iterations);
    // ... computed exactly once.
    EXPECT_EQ(driver::goldenCacheStats().misses, 1u);
    EXPECT_EQ(driver::goldenCacheStats().hits, 2u);
}

TEST(GoldenCacheTest, DistinctParamsMiss)
{
    driver::clearGoldenCache();
    const CooGraph g =
        makeRmat({.numVertices = 64, .numEdges = 256, .seed = 5});
    PageRankParams a;
    PageRankParams b;
    b.maxIterations = a.maxIterations + 1;
    driver::cachedGoldenPageRank(g, a);
    driver::cachedGoldenPageRank(g, b);
    driver::cachedGoldenPageRank(g, a);
    EXPECT_EQ(driver::goldenCacheStats().misses, 2u);
    EXPECT_EQ(driver::goldenCacheStats().hits, 1u);
}

// ------------------------------------------- report stability on reuse

TEST(EngineReportTest, CacheHitReportIdenticalToCacheMiss)
{
    PlanCache::instance().clear();
    const CooGraph g =
        makeRmat({.numVertices = 128, .numEdges = 512, .seed = 61});
    GraphRNode node{GraphRConfig{}};
    PageRankParams params;
    params.maxIterations = 10;
    params.tolerance = 0.0;

    const SimReport cold = node.runPageRank(g, params); // cache miss
    const SimReport warm = node.runPageRank(g, params); // cache hit
    EXPECT_FALSE(cold.algorithm.empty());
    EXPECT_DOUBLE_EQ(warm.seconds, cold.seconds);
    EXPECT_DOUBLE_EQ(warm.joules, cold.joules);
    EXPECT_EQ(warm.tilesProcessed, cold.tilesProcessed);
    EXPECT_EQ(warm.tilesSkipped, cold.tilesSkipped);
    EXPECT_EQ(warm.edgesProcessed, cold.edgesProcessed);
    EXPECT_TRUE(node.lastEngineStats().planCacheHit);
}

// ------------------------------------------------ SIMD tier parity

TEST(SimdSweepParityTest, FunctionalSweepJsonIdenticalAcrossTiers)
{
    // The whole-system bit-exactness contract: a functional sweep of
    // all six algorithms must serialise to byte-identical JSON no
    // matter which kernel tier accumulates the crossbar MVMs. This is
    // what lets CI run GRAPHR_SIMD=scalar and GRAPHR_SIMD=avx2 jobs
    // against the same goldens.
    const simd::Level original = simd::activeLevel();

    driver::SweepSpec spec;
    spec.workloads = {"all"};
    spec.backends = {"graphr"};
    spec.datasets = {"rmat:vertices=64,edges=256,seed=3"};
    spec.params =
        driver::ParamMap::parse("epochs=1,features=4,iterations=3");
    spec.backendOptions.config.functional = true;
    spec.backendOptions.config.tiling.crossbarDim = 8;
    spec.backendOptions.config.tiling.crossbarsPerGe = 2;
    spec.backendOptions.config.tiling.numGe = 2;

    const auto sweep_json = [&spec] {
        PlanCache::instance().clear();
        driver::clearGoldenCache();
        std::ostringstream os;
        driver::writeResultsJson(os, driver::runSweep(spec));
        return os.str();
    };

    simd::setActiveLevelForTest(simd::Level::kScalar);
    const std::string scalar_json = sweep_json();

    simd::setActiveLevelForTest(simd::bestSupportedLevel());
    const std::string best_json = sweep_json();

    simd::setActiveLevelForTest(original);

    ASSERT_FALSE(scalar_json.empty());
    EXPECT_EQ(scalar_json, best_json)
        << "functional sweep output depends on the SIMD tier";
}

} // namespace
} // namespace graphr
