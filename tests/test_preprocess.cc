/**
 * @file
 * Tests for the streaming-apply preprocessing (section 3.4).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "graph/generator.hh"
#include "graph/partition.hh"
#include "graph/preprocess.hh"

namespace graphr
{
namespace
{

TilingParams
tiling(std::uint32_t c, std::uint32_t n, std::uint32_t g,
       std::uint32_t b = 0)
{
    TilingParams t;
    t.crossbarDim = c;
    t.crossbarsPerGe = n;
    t.numGe = g;
    t.blockSize = b;
    return t;
}

TEST(PreprocessTest, OutputIsPermutationOfInput)
{
    const CooGraph g = makeRmat({.numVertices = 200,
                                 .numEdges = 1500,
                                 .maxWeight = 15.0,
                                 .seed = 3});
    const GridPartition part(g.numVertices(), tiling(4, 2, 2, 32));
    const OrderedEdgeList ordered(g, part);

    ASSERT_EQ(ordered.edges().size(), g.numEdges());
    std::multiset<std::tuple<VertexId, VertexId, double>> in;
    std::multiset<std::tuple<VertexId, VertexId, double>> out;
    for (const Edge &e : g.edges())
        in.insert({e.src, e.dst, e.weight});
    for (const Edge &e : ordered.edges())
        out.insert({e.src, e.dst, e.weight});
    EXPECT_EQ(in, out);
}

TEST(PreprocessTest, EdgesSortedByGlobalOrderId)
{
    const CooGraph g =
        makeRmat({.numVertices = 300, .numEdges = 2000, .seed = 4});
    const GridPartition part(g.numVertices(), tiling(8, 2, 2));
    const OrderedEdgeList ordered(g, part);
    for (std::size_t i = 1; i < ordered.edges().size(); ++i) {
        const Edge &a = ordered.edges()[i - 1];
        const Edge &b = ordered.edges()[i];
        EXPECT_LE(part.globalOrderId(a.src, a.dst),
                  part.globalOrderId(b.src, b.dst));
    }
}

TEST(PreprocessTest, TileDirectoryCoversAllEdges)
{
    const CooGraph g =
        makeRmat({.numVertices = 128, .numEdges = 900, .seed = 5});
    const GridPartition part(g.numVertices(), tiling(4, 2, 2, 64));
    const OrderedEdgeList ordered(g, part);

    std::uint64_t covered = 0;
    std::uint64_t prev_tile = 0;
    bool first = true;
    for (const TileSpan &span : ordered.tiles()) {
        covered += span.numEdges;
        if (!first)
            EXPECT_GT(span.tileIndex, prev_tile)
                << "tiles must be strictly increasing";
        prev_tile = span.tileIndex;
        first = false;
        // All edges in the span really belong to the tile.
        for (const Edge &e : ordered.tileEdges(span))
            EXPECT_EQ(part.tileIndex(e.src, e.dst), span.tileIndex);
    }
    EXPECT_EQ(covered, g.numEdges());
}

TEST(PreprocessTest, EmptyTilesAbsentFromDirectory)
{
    // A chain has exactly one edge per (v, v+1) cell: most tiles of a
    // fine partition are empty and must not appear.
    const CooGraph g = makeChain(64);
    const GridPartition part(g.numVertices(), tiling(4, 2, 2, 32));
    const OrderedEdgeList ordered(g, part);
    for (const TileSpan &span : ordered.tiles())
        EXPECT_GT(span.numEdges, 0u);
    EXPECT_LT(ordered.numNonEmptyTiles(), part.numTiles());
}

TEST(PreprocessTest, OccupancyBounds)
{
    const CooGraph g =
        makeRmat({.numVertices = 256, .numEdges = 4000, .seed = 6});
    const GridPartition part(g.numVertices(), tiling(8, 2, 2));
    const OrderedEdgeList ordered(g, part);
    EXPECT_GT(ordered.occupancy(), 0.0);
    EXPECT_LE(ordered.occupancy(), 1.0);
}

TEST(PreprocessTest, DenseGraphFillsTiles)
{
    const CooGraph g = makeComplete(16);
    const GridPartition part(g.numVertices(), tiling(4, 2, 2, 16));
    const OrderedEdgeList ordered(g, part);
    // Complete graph: every tile of the single 16x16 block is full
    // except diagonal cells.
    EXPECT_EQ(ordered.numNonEmptyTiles(), part.numTiles());
    EXPECT_NEAR(ordered.occupancy(), 240.0 / 256.0, 1e-12);
}

TEST(PreprocessTest, TilesOfBlockFiltersCorrectly)
{
    const CooGraph g =
        makeRmat({.numVertices = 64, .numEdges = 600, .seed = 8});
    const GridPartition part(g.numVertices(), tiling(4, 2, 2, 32));
    const OrderedEdgeList ordered(g, part);
    std::uint64_t total = 0;
    for (std::uint64_t b = 0; b < part.numBlocks(); ++b) {
        for (const TileSpan &span : ordered.tilesOfBlock(b)) {
            EXPECT_EQ(span.tileIndex / part.tilesPerBlock(), b);
            ++total;
        }
    }
    EXPECT_EQ(total, ordered.numNonEmptyTiles());
}

/** Property sweep: streaming order invariants for many configs. */
class PreprocessPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                     std::uint32_t>>
{
};

TEST_P(PreprocessPropertyTest, BlockMajorThenTileMajorOrder)
{
    const auto [c, n, g_, b] = GetParam();
    const CooGraph graph =
        makeRmat({.numVertices = 96, .numEdges = 1200, .seed = 10});
    const GridPartition part(graph.numVertices(), tiling(c, n, g_, b));
    const OrderedEdgeList ordered(graph, part);

    // Walking the ordered list, the block index must be
    // non-decreasing, and within a block the tile index too.
    std::uint64_t prev_block = 0;
    std::uint64_t prev_tile = 0;
    bool first = true;
    for (const Edge &e : ordered.edges()) {
        const std::uint64_t tile = part.tileIndex(e.src, e.dst);
        const std::uint64_t block = tile / part.tilesPerBlock();
        if (!first) {
            EXPECT_GE(block, prev_block);
            if (block == prev_block)
                EXPECT_GE(tile, prev_tile);
        }
        prev_block = block;
        prev_tile = tile;
        first = false;
    }
}

TEST_P(PreprocessPropertyTest, WithinTileColumnMajor)
{
    const auto [c, n, g_, b] = GetParam();
    const CooGraph graph =
        makeRmat({.numVertices = 96, .numEdges = 1200, .seed = 10});
    const GridPartition part(graph.numVertices(), tiling(c, n, g_, b));
    const OrderedEdgeList ordered(graph, part);

    for (const TileSpan &span : ordered.tiles()) {
        const auto edges = ordered.tileEdges(span);
        for (std::size_t i = 1; i < edges.size(); ++i) {
            // Column-major within the tile: dst (column) groups are
            // non-decreasing; ties ordered by src.
            const Edge &a = edges[i - 1];
            const Edge &e = edges[i];
            const bool ok = a.dst < e.dst ||
                            (a.dst == e.dst && a.src <= e.src);
            EXPECT_TRUE(ok) << "(" << a.src << "," << a.dst << ") then ("
                            << e.src << "," << e.dst << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PreprocessPropertyTest,
    ::testing::Values(std::make_tuple(4u, 2u, 2u, 32u),
                      std::make_tuple(4u, 2u, 2u, 0u),
                      std::make_tuple(8u, 2u, 4u, 0u),
                      std::make_tuple(2u, 4u, 2u, 16u),
                      std::make_tuple(8u, 8u, 1u, 64u),
                      std::make_tuple(16u, 1u, 1u, 32u)));

} // namespace
} // namespace graphr
