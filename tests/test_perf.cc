/**
 * @file
 * Unit tests for the perf telemetry subsystem (src/perf/): counter
 * registry semantics and thread-safety, the log-linear latency
 * histogram, the repetition controller's order statistics, the
 * BENCH_*.json round-trip through common/json_reader, and the
 * regression comparator the CI gate runs on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_reader.hh"
#include "common/thread_pool.hh"
#include "perf/bench.hh"
#include "perf/compare.hh"
#include "perf/counters.hh"
#include "perf/report.hh"
#include "perf/suite.hh"

namespace
{

using namespace graphr;
using namespace graphr::perf;

// ---------------------------------------------------------- counters

TEST(PerfCounter, AddAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(PerfCounter, RecordMaxIsAPeakGauge)
{
    Counter c;
    c.recordMax(7);
    c.recordMax(3); // below the peak: no effect
    EXPECT_EQ(c.value(), 7u);
    c.recordMax(9);
    EXPECT_EQ(c.value(), 9u);
}

TEST(PerfRegistry, SameNameSameCounter)
{
    Registry &reg = Registry::instance();
    Counter &a = reg.counter("test_perf.same_name");
    Counter &b = reg.counter("test_perf.same_name");
    EXPECT_EQ(&a, &b);
    a.reset();
    b.add(3);
    EXPECT_EQ(a.value(), 3u);
    const std::map<std::string, std::uint64_t> values =
        reg.counterValues();
    const auto it = values.find("test_perf.same_name");
    ASSERT_NE(it, values.end());
    EXPECT_EQ(it->second, 3u);
}

TEST(PerfRegistry, ConcurrentPublishAndRegisterIsExact)
{
    // The hot-path contract: concurrent add()s on shared counters and
    // concurrent first-use registrations of distinct names must lose
    // nothing. Run under TSan in CI.
    Registry &reg = Registry::instance();
    reg.counter("test_perf.shared").reset();
    constexpr unsigned kThreads = 8;
    constexpr unsigned kAdds = 10000;
    ThreadPool pool(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.submit([&reg, t] {
            // Each task also registers its own fresh name, racing the
            // others' map insertions.
            Counter &own = reg.counter("test_perf.own." +
                                       std::to_string(t));
            own.reset();
            Counter &shared = reg.counter("test_perf.shared");
            LatencyHistogram &lat =
                reg.latency("test_perf.latency");
            for (unsigned i = 0; i < kAdds; ++i) {
                shared.add();
                own.add();
                lat.record(i + 1);
            }
        });
    }
    pool.wait();
    EXPECT_EQ(reg.counter("test_perf.shared").value(),
              std::uint64_t{kThreads} * kAdds);
    for (unsigned t = 0; t < kThreads; ++t)
        EXPECT_EQ(reg.counter("test_perf.own." + std::to_string(t))
                      .value(),
                  std::uint64_t{kAdds});
    EXPECT_EQ(reg.latency("test_perf.latency").count(),
              std::uint64_t{kThreads} * kAdds);
}

// --------------------------------------------------------- histogram

TEST(PerfHistogram, EmptyIsAllZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(PerfHistogram, ExactStatsAndSmallValues)
{
    LatencyHistogram h;
    for (const std::uint64_t v : {3u, 1u, 4u, 1u, 5u})
        h.record(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 5u);
    EXPECT_EQ(h.sum(), 14u);
    // Values below 16 land in exact buckets: the median of
    // {1,1,3,4,5} is 3 exactly.
    EXPECT_EQ(h.quantile(0.5), 3u);
    EXPECT_EQ(h.quantile(1.0), 5u);
}

TEST(PerfHistogram, QuantileWithinBucketResolution)
{
    // A uniform spread over [1, 1e6] ns: every quantile must come
    // back within one log-linear sub-bucket (~2^-4 ≈ 6.25% worst
    // case, plus clamping to [min, max]).
    LatencyHistogram h;
    constexpr std::uint64_t kN = 100000;
    for (std::uint64_t i = 1; i <= kN; ++i)
        h.record(i * 10);
    EXPECT_EQ(h.count(), kN);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), kN * 10);
    for (const double q : {0.25, 0.5, 0.9, 0.99}) {
        const double exact = q * static_cast<double>(kN) * 10.0;
        const double got = static_cast<double>(h.quantile(q));
        EXPECT_NEAR(got, exact, exact * 0.07)
            << "q=" << q;
    }
    EXPECT_EQ(h.quantile(1.0), kN * 10);
}

// ------------------------------------------------- order statistics

TEST(PerfStats, MedianAndIqr)
{
    EXPECT_DOUBLE_EQ(median({}), 0.0);
    EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
    EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(iqr({}), 0.0);
    EXPECT_DOUBLE_EQ(iqr({5.0}), 0.0);
    // 1..8: type-7 quartiles q25 = 2.75, q75 = 6.25.
    EXPECT_NEAR(iqr({1, 2, 3, 4, 5, 6, 7, 8}), 3.5, 1e-12);
}

TEST(PerfStats, QuantileSortedInterpolates)
{
    const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(quantileSorted(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(quantileSorted(v, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(quantileSorted(v, 0.5), 25.0);
}

// ------------------------------------------------------- measure()

TEST(PerfMeasure, RunsWarmupsUntimedAndCapturesCounterDeltas)
{
    Registry::instance().counter("test_perf.measure").reset();
    unsigned calls = 0;
    RepOptions options;
    options.warmups = 2;
    options.reps = 3;
    const RepStats stats = measure(options, [&calls] {
        ++calls;
        Registry::instance().counter("test_perf.measure").add();
    });
    // Warmups run the body but are neither timed nor counted in the
    // counter window.
    EXPECT_EQ(calls, 5u);
    ASSERT_EQ(stats.seconds.size(), 3u);
    for (const double s : stats.seconds)
        EXPECT_GE(s, 0.0);
    const auto it = stats.counterDeltas.find("test_perf.measure");
    ASSERT_NE(it, stats.counterDeltas.end());
    EXPECT_EQ(it->second, 3u);
    EXPECT_DOUBLE_EQ(stats.perRep("test_perf.measure"), 1.0);
    EXPECT_DOUBLE_EQ(stats.perRep("test_perf.no_such"), 0.0);
}

TEST(PerfMeasure, ZeroRepsThrows)
{
    RepOptions options;
    options.reps = 0;
    EXPECT_THROW(measure(options, [] {}), PerfError);
}

// ------------------------------------------------ BENCH round-trip

BenchReport
sampleReport()
{
    BenchReport report;
    report.suite = "unit";
    report.environment.compiler = "testc 1.0";
    report.environment.buildType = "release";
    report.environment.hardwareThreads = 4;

    BenchMetric wall;
    wall.name = "unit.wall_s";
    wall.unit = "s";
    wall.value = 0.125;
    wall.gated = false;
    wall.better = "lower";
    wall.warmups = 1;
    wall.reps = 3;
    wall.min = 0.12;
    wall.medianSeconds = 0.125;
    wall.iqrSeconds = 0.01;
    wall.samples = {0.12, 0.125, 0.13};
    wall.counters["unit.sorts"] = 6;
    report.metrics.push_back(wall);

    BenchMetric runs;
    runs.name = "unit.runs";
    runs.unit = "count";
    runs.value = 36;
    runs.gated = true;
    runs.better = "higher";
    report.metrics.push_back(runs);
    return report;
}

TEST(PerfReport, JsonRoundTripThroughJsonReader)
{
    const BenchReport report = sampleReport();
    std::ostringstream os;
    writeBenchJson(os, report);

    const JsonValue root = JsonValue::parse(os.str());
    EXPECT_EQ(root.find("schema")->asString(), "graphr-bench");
    EXPECT_EQ(root.find("schema_version")->asU64(),
              static_cast<std::uint64_t>(BenchReport::kSchemaVersion));

    const BenchReport back = parseBenchReport(root);
    EXPECT_EQ(back.suite, "unit");
    EXPECT_EQ(back.environment.compiler, "testc 1.0");
    EXPECT_EQ(back.environment.buildType, "release");
    EXPECT_EQ(back.environment.hardwareThreads, 4u);
    ASSERT_EQ(back.metrics.size(), 2u);

    const BenchMetric *wall = back.find("unit.wall_s");
    ASSERT_NE(wall, nullptr);
    EXPECT_EQ(wall->unit, "s");
    EXPECT_DOUBLE_EQ(wall->value, 0.125);
    EXPECT_FALSE(wall->gated);
    EXPECT_EQ(wall->better, "lower");
    EXPECT_EQ(wall->warmups, 1u);
    EXPECT_EQ(wall->reps, 3u);
    EXPECT_DOUBLE_EQ(wall->min, 0.12);
    EXPECT_DOUBLE_EQ(wall->medianSeconds, 0.125);
    EXPECT_DOUBLE_EQ(wall->iqrSeconds, 0.01);
    ASSERT_EQ(wall->samples.size(), 3u);
    EXPECT_DOUBLE_EQ(wall->samples[1], 0.125);
    ASSERT_EQ(wall->counters.size(), 1u);
    EXPECT_EQ(wall->counters.at("unit.sorts"), 6u);

    const BenchMetric *runs = back.find("unit.runs");
    ASSERT_NE(runs, nullptr);
    EXPECT_TRUE(runs->gated);
    EXPECT_EQ(runs->better, "higher");
    EXPECT_DOUBLE_EQ(runs->value, 36.0);
    EXPECT_EQ(runs->reps, 0u);
    EXPECT_EQ(back.find("unit.no_such"), nullptr);
}

TEST(PerfReport, RejectsWrongSchemaAndVersion)
{
    EXPECT_THROW(parseBenchReport(JsonValue::parse(
                     R"({"schema":"not-bench","schema_version":1,)"
                     R"("suite":"s","environment":{"compiler":"c",)"
                     R"("build_type":"release","hardware_threads":1},)"
                     R"("metrics":[]})")),
                 PerfError);
    EXPECT_THROW(parseBenchReport(JsonValue::parse(
                     R"({"schema":"graphr-bench","schema_version":99,)"
                     R"("suite":"s","environment":{"compiler":"c",)"
                     R"("build_type":"release","hardware_threads":1},)"
                     R"("metrics":[]})")),
                 PerfError);
    // Missing required field (no suite).
    EXPECT_THROW(parseBenchReport(JsonValue::parse(
                     R"({"schema":"graphr-bench","schema_version":1,)"
                     R"("environment":{"compiler":"c",)"
                     R"("build_type":"release","hardware_threads":1},)"
                     R"("metrics":[]})")),
                 PerfError);
    // Bad improvement direction.
    EXPECT_THROW(
        parseBenchReport(JsonValue::parse(
            R"({"schema":"graphr-bench","schema_version":1,)"
            R"("suite":"s","environment":{"compiler":"c",)"
            R"("build_type":"release","hardware_threads":1},)"
            R"("metrics":[{"name":"m","unit":"s","value":1,)"
            R"("gated":true,"better":"sideways"}]})")),
        PerfError);
}

TEST(PerfReport, LoadBenchFileMissingPathThrows)
{
    EXPECT_THROW(loadBenchFile("/no/such/dir/BENCH_none.json"),
                 PerfError);
}

// ------------------------------------------------------ comparator

BenchReport
gatedOnly(double value, const std::string &better = "lower")
{
    BenchReport report;
    report.suite = "unit";
    BenchMetric m;
    m.name = "unit.metric";
    m.unit = "s";
    m.value = value;
    m.gated = true;
    m.better = better;
    report.metrics.push_back(m);
    return report;
}

TEST(PerfCompare, RegressionBeyondThresholdFailsGate)
{
    const CompareReport cmp =
        compareBench(gatedOnly(1.0), gatedOnly(1.5));
    ASSERT_EQ(cmp.metrics.size(), 1u);
    EXPECT_EQ(cmp.metrics[0].outcome, MetricOutcome::kRegressed);
    EXPECT_NEAR(cmp.metrics[0].deltaPct, 50.0, 1e-9);
    EXPECT_EQ(cmp.regressed, 1u);
    EXPECT_FALSE(cmp.ok());
}

TEST(PerfCompare, WithinThresholdPasses)
{
    CompareOptions options;
    options.thresholdPct = 10.0;
    const CompareReport cmp =
        compareBench(gatedOnly(1.0), gatedOnly(1.05), options);
    EXPECT_EQ(cmp.metrics[0].outcome, MetricOutcome::kOk);
    EXPECT_TRUE(cmp.ok());
    // The same 5% move fails a tighter gate.
    options.thresholdPct = 1.0;
    EXPECT_FALSE(
        compareBench(gatedOnly(1.0), gatedOnly(1.05), options).ok());
}

TEST(PerfCompare, ImprovementPasses)
{
    const CompareReport cmp =
        compareBench(gatedOnly(1.0), gatedOnly(0.5));
    EXPECT_EQ(cmp.metrics[0].outcome, MetricOutcome::kImproved);
    EXPECT_EQ(cmp.improved, 1u);
    EXPECT_TRUE(cmp.ok());
}

TEST(PerfCompare, HigherIsBetterFlipsDirection)
{
    // runs 4 -> 2 is a 50% regression of a higher-is-better metric.
    const CompareReport down = compareBench(
        gatedOnly(4.0, "higher"), gatedOnly(2.0, "higher"));
    EXPECT_EQ(down.metrics[0].outcome, MetricOutcome::kRegressed);
    EXPECT_NEAR(down.metrics[0].deltaPct, 50.0, 1e-9);
    EXPECT_FALSE(down.ok());
    const CompareReport up = compareBench(
        gatedOnly(4.0, "higher"), gatedOnly(8.0, "higher"));
    EXPECT_EQ(up.metrics[0].outcome, MetricOutcome::kImproved);
    EXPECT_TRUE(up.ok());
}

TEST(PerfCompare, ZeroBaselineJumpTripsGate)
{
    // 0 -> 1 sorts cannot be expressed as a percentage; it must still
    // gate (counted as +100%).
    const CompareReport cmp =
        compareBench(gatedOnly(0.0), gatedOnly(1.0));
    EXPECT_EQ(cmp.metrics[0].outcome, MetricOutcome::kRegressed);
    EXPECT_FALSE(cmp.ok());
    EXPECT_TRUE(compareBench(gatedOnly(0.0), gatedOnly(0.0)).ok());
}

TEST(PerfCompare, MissingGatedMetricFailsGate)
{
    BenchReport empty;
    empty.suite = "unit";
    const CompareReport cmp = compareBench(gatedOnly(1.0), empty);
    ASSERT_EQ(cmp.metrics.size(), 1u);
    EXPECT_EQ(cmp.metrics[0].outcome, MetricOutcome::kMissing);
    EXPECT_EQ(cmp.missing, 1u);
    EXPECT_FALSE(cmp.ok());
}

TEST(PerfCompare, UngatedMetricNeverFailsUnlessGateAll)
{
    BenchReport base = gatedOnly(1.0);
    base.metrics[0].gated = false;
    BenchReport bad = gatedOnly(9.0);
    bad.metrics[0].gated = false;
    EXPECT_TRUE(compareBench(base, bad).ok());
    // An ungated metric going missing is fine too.
    BenchReport empty;
    EXPECT_TRUE(compareBench(base, empty).ok());
    // --gate-all widens the gate to everything.
    CompareOptions options;
    options.gateAll = true;
    EXPECT_FALSE(compareBench(base, bad, options).ok());
    EXPECT_FALSE(compareBench(base, empty, options).ok());
}

TEST(PerfCompare, CandidateOnlyMetricIsNewAndInformational)
{
    BenchReport empty;
    const CompareReport cmp = compareBench(empty, gatedOnly(1.0));
    ASSERT_EQ(cmp.metrics.size(), 1u);
    EXPECT_EQ(cmp.metrics[0].outcome, MetricOutcome::kNew);
    EXPECT_TRUE(cmp.ok());
}

TEST(PerfCompare, ReportNamesTheRegressedMetric)
{
    const CompareReport cmp =
        compareBench(gatedOnly(1.0), gatedOnly(1.5));
    std::ostringstream os;
    printCompareReport(os, cmp, CompareOptions{});
    EXPECT_NE(os.str().find("unit.metric"), std::string::npos);
    EXPECT_NE(os.str().find("REGRESSED"), std::string::npos);
    EXPECT_NE(os.str().find("gate FAILED"), std::string::npos);
}

// ----------------------------------------------------------- suites

TEST(PerfSuite, RegistryListsSmallAndRejectsUnknown)
{
    const std::vector<std::string> names = suiteNames();
    ASSERT_FALSE(names.empty());
    EXPECT_TRUE(isSuiteName("small"));
    EXPECT_FALSE(isSuiteName("no_such_suite"));
    EXPECT_THROW(runSuite("no_such_suite"), PerfError);
}

TEST(PerfSuite, SmallSuiteGatedMetricsAreDeterministic)
{
    // The CI gate's premise: gated metrics of the small suite must be
    // bit-identical run to run (same process, same machine — the
    // cross-machine half of the premise is that they are work/model
    // metrics, which tests/golden already pins for the simulator).
    SuiteOptions options;
    options.reps = 1;
    options.warmups = 1;
    const BenchReport a = runSuite("small", options);
    const BenchReport b = runSuite("small", options);
    ASSERT_EQ(a.metrics.size(), b.metrics.size());
    for (std::size_t i = 0; i < a.metrics.size(); ++i) {
        if (!a.metrics[i].gated)
            continue;
        EXPECT_EQ(a.metrics[i].name, b.metrics[i].name);
        EXPECT_DOUBLE_EQ(a.metrics[i].value, b.metrics[i].value)
            << a.metrics[i].name;
    }
    // The pinned-seed fingerprint invariant ran and passed.
    const BenchMetric *stable =
        a.find("dataset.rmat_small.fingerprint_stable");
    ASSERT_NE(stable, nullptr);
    EXPECT_DOUBLE_EQ(stable->value, 1.0);
    EXPECT_TRUE(stable->gated);
}

} // namespace
