/**
 * @file
 * Tests for the multi-node GraphR cluster model (paper section 3.1).
 */

#include <gtest/gtest.h>

#include "graph/generator.hh"
#include "graphr/multi_node.hh"

namespace graphr
{
namespace
{

CooGraph
testGraph()
{
    return makeRmat(
        {.numVertices = 8000, .numEdges = 64000, .seed = 91});
}

PageRankParams
prParams()
{
    PageRankParams params;
    params.maxIterations = 10;
    params.tolerance = 0.0;
    return params;
}

TEST(MultiNodeTest, SingleNodeHasNoCommunication)
{
    MultiNodeGraphR cluster(GraphRConfig{}, 1);
    const MultiNodeReport rep =
        cluster.runPageRank(testGraph(), prParams());
    EXPECT_EQ(rep.numNodes, 1u);
    EXPECT_DOUBLE_EQ(rep.commSeconds, 0.0);
    EXPECT_DOUBLE_EQ(rep.commJoules, 0.0);
    EXPECT_GT(rep.seconds, 0.0);
}

TEST(MultiNodeTest, ComputePartScalesDown)
{
    const CooGraph g = testGraph();
    const PageRankParams params = prParams();
    const MultiNodeReport one =
        MultiNodeGraphR(GraphRConfig{}, 1).runPageRank(g, params);
    const MultiNodeReport four =
        MultiNodeGraphR(GraphRConfig{}, 4).runPageRank(g, params);
    // The slowest node's sweep must be well below the single-node
    // sweep (stripes split the edges).
    double one_max = 0.0;
    double four_max = 0.0;
    for (double s : one.nodeSweepSeconds)
        one_max = std::max(one_max, s);
    for (double s : four.nodeSweepSeconds)
        four_max = std::max(four_max, s);
    EXPECT_LT(four_max, one_max);
    EXPECT_EQ(four.nodeSweepSeconds.size(), 4u);
}

TEST(MultiNodeTest, CommunicationGrowsWithNodes)
{
    const CooGraph g = testGraph();
    const PageRankParams params = prParams();
    const MultiNodeReport two =
        MultiNodeGraphR(GraphRConfig{}, 2).runPageRank(g, params);
    const MultiNodeReport eight =
        MultiNodeGraphR(GraphRConfig{}, 8).runPageRank(g, params);
    EXPECT_GT(eight.commJoules, two.commJoules);
    EXPECT_GT(eight.commShare(), 0.0);
}

TEST(MultiNodeTest, EdgesPartitionedCompletely)
{
    // Every edge lands in exactly one stripe: summing per-node sweep
    // energies with zero-width links reproduces total edge coverage.
    const CooGraph g = testGraph();
    const PageRankParams params = prParams();
    LinkParams free_link;
    free_link.energyPjPerByte = 0.0;
    std::uint64_t stripe_edges = 0;
    const std::uint32_t nodes = 4;
    const std::uint64_t stripe =
        (g.numVertices() + nodes - 1) / nodes;
    for (const Edge &e : g.edges()) {
        EXPECT_LT(e.dst / stripe, nodes);
        ++stripe_edges;
    }
    EXPECT_EQ(stripe_edges, g.numEdges());
    const MultiNodeReport rep =
        MultiNodeGraphR(GraphRConfig{}, nodes, free_link)
            .runPageRank(g, params);
    EXPECT_GT(rep.joules, 0.0);
}

TEST(MultiNodeTest, SlowLinkDominatesAtHighNodeCount)
{
    const CooGraph g = testGraph();
    const PageRankParams params = prParams();
    LinkParams slow;
    slow.bandwidthGBs = 0.0001;
    const MultiNodeReport rep =
        MultiNodeGraphR(GraphRConfig{}, 8, slow).runPageRank(g, params);
    EXPECT_GT(rep.commShare(), 0.9);
}

TEST(MultiNodeTest, IterationCountMatchesGolden)
{
    const CooGraph g = testGraph();
    PageRankParams params;
    params.maxIterations = 7;
    params.tolerance = 0.0;
    const MultiNodeReport rep =
        MultiNodeGraphR(GraphRConfig{}, 2).runPageRank(g, params);
    EXPECT_EQ(rep.iterations, 7u);
}

} // namespace
} // namespace graphr
