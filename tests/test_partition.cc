/**
 * @file
 * Unit and property tests for the grid partitioner (paper Eqs. 1-9).
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "graph/partition.hh"

namespace graphr
{
namespace
{

TilingParams
tiling(std::uint32_t c, std::uint32_t n, std::uint32_t g,
       std::uint32_t b = 0)
{
    TilingParams t;
    t.crossbarDim = c;
    t.crossbarsPerGe = n;
    t.numGe = g;
    t.blockSize = b;
    return t;
}

TEST(PartitionTest, PaperFigure12Geometry)
{
    // Fig. 12: V=64, B=32, C=4, N=2, G=2 -> subgraph 4x16, 16 tiles
    // per block, 4 blocks.
    const GridPartition part(64, tiling(4, 2, 2, 32));
    EXPECT_EQ(part.tileWidth(), 16u);
    EXPECT_EQ(part.blockSize(), 32u);
    EXPECT_EQ(part.paddedVertices(), 64u);
    EXPECT_EQ(part.blocksPerDim(), 2u);
    EXPECT_EQ(part.tileRowsPerBlock(), 8u);
    EXPECT_EQ(part.tileColsPerBlock(), 2u);
    EXPECT_EQ(part.tilesPerBlock(), 16u);
    EXPECT_EQ(part.numBlocks(), 4u);
    EXPECT_EQ(part.numTiles(), 64u);
    EXPECT_EQ(part.tileCapacity(), 64u);
}

TEST(PartitionTest, SingleBlockPadsToTileWidth)
{
    const GridPartition part(100, tiling(8, 4, 4));
    // tileWidth = 8*4*4 = 128; block rounds 100 up to 128.
    EXPECT_EQ(part.tileWidth(), 128u);
    EXPECT_EQ(part.blockSize(), 128u);
    EXPECT_EQ(part.paddedVertices(), 128u);
    EXPECT_EQ(part.numBlocks(), 1u);
}

TEST(PartitionTest, BlockIndexIsColumnMajor)
{
    const GridPartition part(64, tiling(4, 2, 2, 32));
    // B(0,0) -> B(1,0) -> B(0,1) -> B(1,1) per paper section 3.4.
    EXPECT_EQ(part.blockIndex(0, 0), 0u);
    EXPECT_EQ(part.blockIndex(1, 0), 1u);
    EXPECT_EQ(part.blockIndex(0, 1), 2u);
    EXPECT_EQ(part.blockIndex(1, 1), 3u);
}

TEST(PartitionTest, TileIndexColumnMajorWithinBlock)
{
    const GridPartition part(64, tiling(4, 2, 2, 32));
    // Within block 0: tile (row 0, col 0) = 0, (row 1, col 0) = 1,
    // ..., (row 0, col 1) = 8.
    EXPECT_EQ(part.tileIndex(0, 0), 0u);
    EXPECT_EQ(part.tileIndex(4, 0), 1u);
    EXPECT_EQ(part.tileIndex(28, 0), 7u);
    EXPECT_EQ(part.tileIndex(0, 16), 8u);
    // First tile of block B(1,0) (rows 32.., cols 0..).
    EXPECT_EQ(part.tileIndex(32, 0), 16u);
    // First tile of block B(0,1) (rows 0.., cols 32..).
    EXPECT_EQ(part.tileIndex(0, 32), 32u);
}

TEST(PartitionTest, TileCoordRoundTrip)
{
    const GridPartition part(64, tiling(4, 2, 2, 32));
    for (std::uint64_t t = 0; t < part.numTiles(); ++t) {
        const TileCoord coord = part.tileCoord(t);
        std::uint64_t row0 = 0;
        std::uint64_t col0 = 0;
        part.tileOrigin(coord, row0, col0);
        EXPECT_EQ(part.tileIndex(static_cast<VertexId>(row0),
                                 static_cast<VertexId>(col0)),
                  t);
    }
}

TEST(PartitionTest, OrderIdColumnMajorWithinTile)
{
    const GridPartition part(64, tiling(4, 2, 2, 32));
    // Cells of tile 0, column-major: (0,0)=0, (1,0)=1, ..., (0,1)=4.
    EXPECT_EQ(part.globalOrderId(0, 0), 0u);
    EXPECT_EQ(part.globalOrderId(1, 0), 1u);
    EXPECT_EQ(part.globalOrderId(3, 0), 3u);
    EXPECT_EQ(part.globalOrderId(0, 1), 4u);
    // First cell of tile 1 (rows 4..7).
    EXPECT_EQ(part.globalOrderId(4, 0), 64u);
}

/** Property sweep over architectural parameter combinations. */
class PartitionPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                     std::uint32_t, VertexId>>
{
};

TEST_P(PartitionPropertyTest, OrderIdIsABijection)
{
    const auto [c, n, g, b, v] = GetParam();
    const GridPartition part(v, tiling(c, n, g, b));
    const std::uint64_t pv = part.paddedVertices();
    ASSERT_LE(pv * pv, 1u << 20) << "test sweep too large";

    std::set<std::uint64_t> ids;
    for (std::uint64_t i = 0; i < pv; ++i) {
        for (std::uint64_t j = 0; j < pv; ++j) {
            const std::uint64_t id = part.globalOrderId(
                static_cast<VertexId>(i), static_cast<VertexId>(j));
            EXPECT_LT(id, pv * pv);
            ids.insert(id);
            // Inverse is consistent.
            std::uint64_t ri = 0;
            std::uint64_t rj = 0;
            part.cellOfOrderId(id, ri, rj);
            EXPECT_EQ(ri, i);
            EXPECT_EQ(rj, j);
        }
    }
    EXPECT_EQ(ids.size(), pv * pv) << "order ids must be unique";
}

TEST_P(PartitionPropertyTest, OrderIdGroupsTilesContiguously)
{
    const auto [c, n, g, b, v] = GetParam();
    const GridPartition part(v, tiling(c, n, g, b));
    const std::uint64_t pv = part.paddedVertices();
    ASSERT_LE(pv * pv, 1u << 20);

    // All cells of tile k occupy [k*cap, (k+1)*cap).
    for (std::uint64_t i = 0; i < pv; ++i) {
        for (std::uint64_t j = 0; j < pv; ++j) {
            const std::uint64_t id = part.globalOrderId(
                static_cast<VertexId>(i), static_cast<VertexId>(j));
            const std::uint64_t tile = part.tileIndex(
                static_cast<VertexId>(i), static_cast<VertexId>(j));
            EXPECT_EQ(id / part.tileCapacity(), tile);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionPropertyTest,
    ::testing::Values(
        std::make_tuple(4u, 2u, 2u, 32u, VertexId{64}),
        std::make_tuple(4u, 2u, 2u, 0u, VertexId{64}),
        std::make_tuple(8u, 2u, 2u, 0u, VertexId{100}),
        std::make_tuple(4u, 4u, 1u, 16u, VertexId{64}),
        std::make_tuple(2u, 2u, 2u, 8u, VertexId{30}),
        std::make_tuple(8u, 4u, 4u, 256u, VertexId{1000}),
        std::make_tuple(16u, 2u, 2u, 0u, VertexId{200})));

TEST(PartitionTest, RejectsZeroParameters)
{
    EXPECT_DEATH(GridPartition(0, tiling(4, 2, 2)), "");
}

} // namespace
} // namespace graphr
