/**
 * @file
 * Tests for the golden reference algorithms (Table 2 workloads).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/collaborative_filtering.hh"
#include "algorithms/pagerank.hh"
#include "algorithms/spmv.hh"
#include "algorithms/traversal.hh"
#include "graph/generator.hh"

namespace graphr
{
namespace
{

TEST(PageRankTest, RanksSumToOne)
{
    const CooGraph g =
        makeRmat({.numVertices = 500, .numEdges = 4000, .seed = 1});
    const PageRankResult res = pagerank(g, {.maxIterations = 50});
    double sum = 0.0;
    for (Value r : res.ranks)
        sum += r;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRankTest, ConvergesOnSmallGraph)
{
    const CooGraph g = makeComplete(10);
    const PageRankResult res =
        pagerank(g, {.maxIterations = 100, .tolerance = 1e-10});
    EXPECT_TRUE(res.converged);
    // Complete graph is symmetric: uniform ranks.
    for (Value r : res.ranks)
        EXPECT_NEAR(r, 0.1, 1e-8);
}

TEST(PageRankTest, StarConcentratesRankAtLeaves)
{
    // Star 0 -> {1..9}: hub has no in-edges, so leaves outrank it.
    const CooGraph g = makeStar(10);
    const PageRankResult res = pagerank(g, {.maxIterations = 60});
    for (VertexId v = 1; v < 10; ++v)
        EXPECT_GT(res.ranks[v], res.ranks[0]);
}

TEST(PageRankTest, MatchesHandComputedTwoVertexCycle)
{
    CooGraph g(2, {});
    g.addEdge(0, 1);
    g.addEdge(1, 0);
    const PageRankResult res =
        pagerank(g, {.damping = 0.8, .maxIterations = 200,
                     .tolerance = 1e-12});
    // Symmetric cycle: exact answer 0.5 each.
    EXPECT_NEAR(res.ranks[0], 0.5, 1e-10);
    EXPECT_NEAR(res.ranks[1], 0.5, 1e-10);
}

TEST(PageRankTest, DanglingMassRedistributed)
{
    // 0 -> 1, 1 dangles. Ranks must still sum to 1.
    CooGraph g(2, {});
    g.addEdge(0, 1);
    const PageRankResult res = pagerank(g, {.maxIterations = 100});
    EXPECT_NEAR(res.ranks[0] + res.ranks[1], 1.0, 1e-9);
    EXPECT_GT(res.ranks[1], res.ranks[0]);
}

TEST(BfsTest, ChainLevels)
{
    const CooGraph g = makeChain(8);
    const TraversalResult res = bfs(g, 0);
    for (VertexId v = 0; v < 8; ++v)
        EXPECT_DOUBLE_EQ(res.dist[v], static_cast<double>(v));
    EXPECT_EQ(res.iterations, 8); // last round discovers nothing new
}

TEST(BfsTest, UnreachableStaysInfinite)
{
    CooGraph g(4, {});
    g.addEdge(0, 1);
    const TraversalResult res = bfs(g, 0);
    EXPECT_DOUBLE_EQ(res.dist[1], 1.0);
    EXPECT_TRUE(std::isinf(res.dist[2]));
    EXPECT_TRUE(std::isinf(res.dist[3]));
}

TEST(BfsTest, ParentsFormTree)
{
    const CooGraph g =
        makeRmat({.numVertices = 200, .numEdges = 2000, .seed = 2});
    const TraversalResult res = bfs(g, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (std::isinf(res.dist[v]) || v == 0)
            continue;
        ASSERT_NE(res.parent[v], kInvalidVertex);
        EXPECT_DOUBLE_EQ(res.dist[v], res.dist[res.parent[v]] + 1.0);
    }
}

TEST(SsspTest, PaperFigure16Example)
{
    // The 8-vertex block of paper Fig. 16(c1): sources i0..i3 with
    // initial distances [4,3,1,2], W = [M,1,5,M; M,M,3,1; M,M,M,M;
    // M,M,1,M], initial dest distances [7,6,M,M].
    // We reproduce with explicit vertices: i0..i3 = 0..3, j0..j3 =
    // 4..7, plus a virtual source 8 wired to match initial labels.
    CooGraph g(9, {});
    g.addEdge(8, 0, 4.0);
    g.addEdge(8, 1, 3.0);
    g.addEdge(8, 2, 1.0);
    g.addEdge(8, 3, 2.0);
    g.addEdge(8, 4, 7.0);
    g.addEdge(8, 5, 6.0);
    g.addEdge(0, 5, 1.0);
    g.addEdge(0, 6, 5.0);
    g.addEdge(1, 6, 3.0);
    g.addEdge(1, 7, 1.0);
    g.addEdge(3, 6, 1.0);
    const TraversalResult res = sssp(g, 8);
    // Paper's final labels after t=4: [7,5,3,4] for j0..j3.
    EXPECT_DOUBLE_EQ(res.dist[4], 7.0);
    EXPECT_DOUBLE_EQ(res.dist[5], 5.0);
    EXPECT_DOUBLE_EQ(res.dist[6], 3.0);
    EXPECT_DOUBLE_EQ(res.dist[7], 4.0);
}

TEST(SsspTest, TriangleInequalityInvariant)
{
    const CooGraph g = makeRmat({.numVertices = 300,
                                 .numEdges = 3000,
                                 .maxWeight = 15.0,
                                 .seed = 3});
    const TraversalResult res = sssp(g, 0);
    // Property: for every edge (u, v), dist[v] <= dist[u] + w.
    for (const Edge &e : g.edges()) {
        if (std::isinf(res.dist[e.src]))
            continue;
        EXPECT_LE(res.dist[e.dst], res.dist[e.src] + e.weight + 1e-9);
    }
}

TEST(SsspTest, BfsIsUnitWeightSssp)
{
    CooGraph g = makeRmat({.numVertices = 200, .numEdges = 1500,
                           .seed = 4});
    // Force unit weights, then bfs == sssp.
    for (Edge &e : g.mutableEdges())
        e.weight = 1.0;
    const TraversalResult b = bfs(g, 5);
    const TraversalResult s = sssp(g, 5);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (std::isinf(b.dist[v])) {
            EXPECT_TRUE(std::isinf(s.dist[v]));
        } else {
            EXPECT_DOUBLE_EQ(b.dist[v], s.dist[v]);
        }
    }
}

TEST(SsspTest, GridShortestPathsAreManhattanBounded)
{
    const CooGraph g = makeGrid2d(6, 6, 7, 1.0); // unit weights
    const TraversalResult res = sssp(g, 0);
    for (VertexId y = 0; y < 6; ++y) {
        for (VertexId x = 0; x < 6; ++x) {
            EXPECT_DOUBLE_EQ(res.dist[y * 6 + x],
                             static_cast<double>(x + y));
        }
    }
}

TEST(RelaxationSweepTest, MatchesBatchSssp)
{
    const CooGraph g = makeRmat({.numVertices = 150,
                                 .numEdges = 1200,
                                 .maxWeight = 7.0,
                                 .seed = 5});
    const TraversalResult batch = sssp(g, 0);
    RelaxationSweep sweep(g, 0, false);
    int rounds = 0;
    while (!sweep.done()) {
        sweep.step();
        ++rounds;
    }
    EXPECT_EQ(rounds, batch.iterations);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (std::isinf(batch.dist[v])) {
            EXPECT_TRUE(std::isinf(sweep.dist()[v]));
        } else {
            EXPECT_DOUBLE_EQ(sweep.dist()[v], batch.dist[v]);
        }
    }
}

TEST(SpmvTest, MatchesDenseComputation)
{
    CooGraph g(4, {});
    g.addEdge(0, 2, 3.0);
    g.addEdge(0, 3, 8.0);
    g.addEdge(1, 2, 7.0);
    g.addEdge(2, 0, 1.0);
    g.addEdge(3, 1, 4.0);
    g.addEdge(3, 3, 2.0);
    const std::vector<Value> x = {1.0, 2.0, 3.0, 4.0};
    const std::vector<Value> y = spmvRaw(g, x);
    // y[dst] = sum over edges into dst of x[src] * w.
    EXPECT_DOUBLE_EQ(y[0], 3.0 * 1.0);
    EXPECT_DOUBLE_EQ(y[1], 4.0 * 4.0);
    EXPECT_DOUBLE_EQ(y[2], 1.0 * 3.0 + 2.0 * 7.0);
    EXPECT_DOUBLE_EQ(y[3], 1.0 * 8.0 + 4.0 * 2.0);
}

TEST(SpmvTest, NormalizedVariantUsesOutDegree)
{
    CooGraph g(3, {});
    g.addEdge(0, 1, 1.0);
    g.addEdge(0, 2, 1.0);
    const std::vector<Value> y = spmv(g, {1.0, 0.0, 0.0});
    EXPECT_DOUBLE_EQ(y[1], 0.5);
    EXPECT_DOUBLE_EQ(y[2], 0.5);
}

TEST(CfTest, RmseDecreasesOverEpochs)
{
    const CooGraph ratings = makeBipartiteRatings(200, 50, 4000, 6);
    CfParams params;
    params.numUsers = 200;
    params.featureLength = 8;
    params.epochs = 8;
    const CfResult res = collaborativeFiltering(ratings, params);
    ASSERT_EQ(res.rmsePerEpoch.size(), 8u);
    EXPECT_LT(res.rmsePerEpoch.back(), res.rmsePerEpoch.front());
    EXPECT_LT(res.rmsePerEpoch.back(), 1.5);
}

TEST(CfTest, FactorDimensionsCorrect)
{
    const CooGraph ratings = makeBipartiteRatings(10, 5, 100, 7);
    CfParams params;
    params.numUsers = 10;
    params.featureLength = 4;
    params.epochs = 1;
    const CfResult res = collaborativeFiltering(ratings, params);
    EXPECT_EQ(res.userFactors.size(), 40u);
    EXPECT_EQ(res.itemFactors.size(), 20u);
}

} // namespace
} // namespace graphr
