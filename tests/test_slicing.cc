/**
 * @file
 * Bit-slicing correctness: the analog datapath's defining invariant
 * is that slice-wise computation with shift-and-add recombination is
 * *exactly* the full-precision integer arithmetic. These tests prove
 * it at every level: cell, value, dot product, crossbar.
 */

#include <gtest/gtest.h>

#include "common/fixed_point.hh"
#include "common/random.hh"
#include "rram/crossbar.hh"

namespace graphr
{
namespace
{

/** Slice-wise dot product computed the way the hardware does. */
std::uint64_t
slicewiseDot(const std::vector<FixedPoint::Raw> &x,
             const std::vector<FixedPoint::Raw> &w)
{
    std::uint64_t acc = 0;
    for (int in_s = 0; in_s < kSlicesPerValue; ++in_s) {
        std::array<std::uint64_t, kSlicesPerValue> partials{};
        for (int w_s = 0; w_s < kSlicesPerValue; ++w_s) {
            std::uint64_t bitline = 0;
            for (std::size_t i = 0; i < x.size(); ++i) {
                const std::uint64_t in_nib =
                    (x[i] >> (in_s * kCellBits)) & 0xF;
                const std::uint64_t w_nib =
                    (w[i] >> (w_s * kCellBits)) & 0xF;
                bitline += in_nib * w_nib;
            }
            partials[static_cast<std::size_t>(w_s)] = bitline;
        }
        acc += FixedPoint::shiftAdd(partials) << (in_s * kCellBits);
    }
    return acc;
}

TEST(SlicingTest, SliceDotEqualsIntegerDot)
{
    Rng rng(201);
    for (int trial = 0; trial < 300; ++trial) {
        const std::size_t n = 1 + rng.below(16);
        std::vector<FixedPoint::Raw> x(n);
        std::vector<FixedPoint::Raw> w(n);
        std::uint64_t expect = 0;
        for (std::size_t i = 0; i < n; ++i) {
            x[i] = static_cast<FixedPoint::Raw>(rng.below(65536));
            w[i] = static_cast<FixedPoint::Raw>(rng.below(65536));
            expect += static_cast<std::uint64_t>(x[i]) * w[i];
        }
        EXPECT_EQ(slicewiseDot(x, w), expect) << "trial " << trial;
    }
}

TEST(SlicingTest, CrossbarAgreesWithSlicewiseReference)
{
    DeviceParams params;
    const std::uint32_t dim = 8;
    Crossbar cb(dim, params);
    Rng rng(202);

    std::vector<std::vector<FixedPoint::Raw>> w(
        dim, std::vector<FixedPoint::Raw>(dim));
    for (std::uint32_t r = 0; r < dim; ++r) {
        for (std::uint32_t c = 0; c < dim; ++c) {
            w[r][c] = static_cast<FixedPoint::Raw>(rng.below(65536));
            cb.programValue(r, c, FixedPoint::fromRaw(w[r][c], 0));
        }
    }
    std::vector<FixedPoint::Raw> x(dim);
    for (auto &v : x)
        v = static_cast<FixedPoint::Raw>(rng.below(65536));

    const auto y = cb.mvmRaw(x);
    for (std::uint32_t c = 0; c < dim; ++c) {
        std::vector<FixedPoint::Raw> column(dim);
        for (std::uint32_t r = 0; r < dim; ++r)
            column[r] = w[r][c];
        EXPECT_EQ(y[c], slicewiseDot(x, column)) << "column " << c;
    }
}

TEST(SlicingTest, MaxOperandsDoNotOverflow)
{
    // Worst case: 64 rows of 0xFFFF * 0xFFFF must fit the 64-bit
    // accumulator with room to spare.
    const std::uint64_t worst =
        64ull * 0xFFFFull * 0xFFFFull;
    EXPECT_LT(worst, std::uint64_t{1} << 45);
    DeviceParams params;
    Crossbar cb(8, params);
    for (std::uint32_t r = 0; r < 8; ++r)
        for (std::uint32_t c = 0; c < 8; ++c)
            cb.programValue(r, c, FixedPoint::fromRaw(0xFFFF, 0));
    const auto y =
        cb.mvmRaw(std::vector<FixedPoint::Raw>(8, 0xFFFF));
    for (std::uint32_t c = 0; c < 8; ++c)
        EXPECT_EQ(y[c], 8ull * 0xFFFF * 0xFFFF);
}

TEST(SlicingTest, QuantizedProductErrorBounded)
{
    // |x*w - Q(x)*Q(w)| <= (|x| + |w| + step) * step for frac bits f.
    Rng rng(203);
    const int f = 10;
    for (int trial = 0; trial < 200; ++trial) {
        const double x = rng.uniform() * 8.0;
        const double w = rng.uniform() * 4.0;
        const double qx = FixedPoint::quantize(x, f).toDouble();
        const double qw = FixedPoint::quantize(w, f).toDouble();
        const double bound =
            (x + w + quantStep(f)) * quantStep(f) * 0.51;
        EXPECT_NEAR(qx * qw, x * w, bound + 1e-12) << "trial " << trial;
    }
}

TEST(SlicingTest, FracBitsComposeUnderMultiplication)
{
    // raw(x, fx) * raw(w, fw) interpreted at fx+fw frac bits equals
    // the real product up to quantisation.
    const FixedPoint x = FixedPoint::quantize(1.5, 8);
    const FixedPoint w = FixedPoint::quantize(2.25, 8);
    const double product =
        static_cast<double>(x.raw()) * w.raw() /
        static_cast<double>(1u << 16);
    EXPECT_NEAR(product, 1.5 * 2.25, 0.01);
}

} // namespace
} // namespace graphr
