/**
 * @file
 * Tests for the deterministic fault-injection registry and the
 * hardened paths behind it: the GRAPHR_FAILPOINTS grammar (count,
 * @nth, =arg, rejection of typos), exact fire-on-Nth-hit counting,
 * the PlanStore durability contract under injected fsync/rename/write
 * failures (loud error, no torn or stray files), transparent retry of
 * transient store I/O faults, short-read degradation to a cache miss,
 * the LruCache failed-build retry contract via cache.build.fail, and
 * the server's per-request deadline and oversized-line hardening.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.hh"
#include "common/json_reader.hh"
#include "graph/generator.hh"
#include "graphr/engine/plan_cache.hh"
#include "perf/counters.hh"
#include "service/server.hh"
#include "store/plan_store.hh"

namespace graphr
{
namespace
{

namespace fs = std::filesystem;

/** Isolates failpoints, caches and perf counters around each test. */
class FailpointTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        reset();
    }

    void
    TearDown() override
    {
        ::unsetenv("GRAPHR_STORE_NO_MMAP");
        reset();
    }

    static void
    reset()
    {
        failpoint::disarmAll();
        PlanCache::instance().setStore(nullptr);
        PlanCache::instance().clear();
        perf::Registry::instance().resetAll();
    }
};

std::uint64_t
counterValue(std::string_view name)
{
    return perf::Registry::instance().counter(name).value();
}

/** Small fixed-seed graph reused across the suite. */
CooGraph
testGraph()
{
    return makeRmat({.numVertices = 128, .numEdges = 1024, .seed = 9});
}

/** Fresh, empty store directory under the gtest temp root. */
std::string
freshDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("failpoint_" + name);
    fs::remove_all(dir);
    return dir.string();
}

std::size_t
filesIn(const std::string &dir)
{
    std::size_t n = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        (void)entry;
        ++n;
    }
    return n;
}

/** One serve session over string streams; returns the response text. */
std::string
serveText(service::Server &server, const std::string &input)
{
    std::istringstream in(input);
    std::ostringstream out;
    server.serve(in, out);
    return out.str();
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        out.push_back(line);
    return out;
}

// ---------------------------------------------------------------------
// Registry and spec grammar
// ---------------------------------------------------------------------

TEST_F(FailpointTest, UnarmedRegistryIsDisabledAndSitesNeverFire)
{
    EXPECT_FALSE(failpoint::enabled());
    EXPECT_FALSE(GRAPHR_FAILPOINT("store.open.fail"));
    EXPECT_TRUE(failpoint::stats().empty());
}

TEST_F(FailpointTest, DefaultEntryFiresExactlyOnceOnTheFirstHit)
{
    failpoint::configure("store.open.fail");
    EXPECT_TRUE(failpoint::enabled());
    EXPECT_TRUE(GRAPHR_FAILPOINT("store.open.fail"));
    EXPECT_FALSE(GRAPHR_FAILPOINT("store.open.fail"));
    EXPECT_FALSE(GRAPHR_FAILPOINT("store.open.fail"));

    const auto stats = failpoint::stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].site, "store.open.fail");
    EXPECT_EQ(stats[0].hits, 3u);
    EXPECT_EQ(stats[0].fires, 1u);
}

TEST_F(FailpointTest, CountAndNthSelectAnExactHitWindow)
{
    // Fire twice, starting at the third hit: hits 3 and 4 only.
    failpoint::configure("store.open.fail:2@3");
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i)
        fired.push_back(GRAPHR_FAILPOINT("store.open.fail"));
    const std::vector<bool> expected = {false, false, true,
                                        true,  false, false};
    EXPECT_EQ(fired, expected);
    EXPECT_EQ(counterValue("failpoint.fires"), 2u);
}

TEST_F(FailpointTest, WildcardsFireOnEveryHit)
{
    failpoint::configure("store.open.fail:1@*,store.mmap.fail:*");
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(GRAPHR_FAILPOINT("store.open.fail")) << i;
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(GRAPHR_FAILPOINT("store.mmap.fail")) << i;
    EXPECT_EQ(counterValue("failpoint.fires"), 10u);
}

TEST_F(FailpointTest, ArgPayloadReachesTheSiteOnlyWhenGiven)
{
    failpoint::configure("pool.task.slow=7");
    std::uint64_t arg = 999;
    EXPECT_TRUE(GRAPHR_FAILPOINT_ARG("pool.task.slow", &arg));
    EXPECT_EQ(arg, 7u);

    failpoint::configure("pool.task.slow"); // no payload this time
    arg = 999;
    EXPECT_TRUE(GRAPHR_FAILPOINT_ARG("pool.task.slow", &arg));
    EXPECT_EQ(arg, 999u) << "site default must be left untouched";
}

TEST_F(FailpointTest, MalformedSpecsAndUnknownSitesAreRejected)
{
    EXPECT_THROW(failpoint::configure("no.such.site"),
                 failpoint::FailpointError);
    EXPECT_THROW(failpoint::configure("store.open.fail:x"),
                 failpoint::FailpointError);
    EXPECT_THROW(failpoint::configure("store.open.fail:0"),
                 failpoint::FailpointError);
    EXPECT_THROW(failpoint::configure("store.open.fail@0"),
                 failpoint::FailpointError);
    EXPECT_THROW(failpoint::configure("store.open.fail:"),
                 failpoint::FailpointError);
    EXPECT_THROW(failpoint::configure(":3"),
                 failpoint::FailpointError);
    // A failed configure must not leave the registry half-armed.
    EXPECT_FALSE(failpoint::enabled());
}

TEST_F(FailpointTest, EmptySpecDisarmsEverything)
{
    failpoint::configure("store.open.fail:*");
    EXPECT_TRUE(failpoint::enabled());
    failpoint::configure("");
    EXPECT_FALSE(failpoint::enabled());
    EXPECT_FALSE(GRAPHR_FAILPOINT("store.open.fail"));
}

TEST_F(FailpointTest, KnownSitesAreSortedAndNonEmpty)
{
    const auto sites = failpoint::knownSites();
    ASSERT_GE(sites.size(), 10u);
    for (std::size_t i = 1; i < sites.size(); ++i)
        EXPECT_LT(sites[i - 1], sites[i]) << "worklist must be sorted";
}

// ---------------------------------------------------------------------
// PlanStore durability and degradation under injected faults
// ---------------------------------------------------------------------

TEST_F(FailpointTest, FsyncFailureFailsTheSaveLoudlyWithNoStrayFiles)
{
    const std::string dir = freshDir("fsync");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan plan(g, tiling);
    PlanStore store(dir);

    failpoint::configure("store.fsync.fail");
    EXPECT_THROW(store.save(plan, tiling), StoreError);
    EXPECT_FALSE(store.contains(plan.fingerprint, tiling));
    EXPECT_EQ(filesIn(dir), 0u)
        << "failed save left a stray temp file";

    // The store recovers the moment the fault clears.
    failpoint::disarmAll();
    store.save(plan, tiling);
    EXPECT_NE(store.load(plan.fingerprint, tiling), nullptr);
    fs::remove_all(dir);
}

TEST_F(FailpointTest, RenameFailureLeavesTheOldArtifactIntact)
{
    const std::string dir = freshDir("rename");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan plan(g, tiling);
    PlanStore store(dir);
    store.save(plan, tiling); // the survivor

    failpoint::configure("store.rename.fail");
    EXPECT_THROW(store.save(plan, tiling), StoreError);
    EXPECT_EQ(filesIn(dir), 1u) << "temp not cleaned after failure";
    const TilePlanPtr survivor = store.load(plan.fingerprint, tiling);
    ASSERT_NE(survivor, nullptr);
    EXPECT_EQ(survivor->fingerprint, plan.fingerprint);
    fs::remove_all(dir);
}

TEST_F(FailpointTest, ShortWriteIsResumedAndRoundTripsByteExact)
{
    const std::string dir = freshDir("shortwrite");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan plan(g, tiling);
    PlanStore store(dir);

    failpoint::configure("store.write.short:3@1");
    store.save(plan, tiling); // must succeed despite the short writes
    EXPECT_GE(counterValue("store.retries"), 3u);

    failpoint::disarmAll();
    const TilePlanPtr loaded = store.load(plan.fingerprint, tiling);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->fingerprint, plan.fingerprint);
    ASSERT_EQ(loaded->ordered.edges().size(),
              plan.ordered.edges().size());
    EXPECT_EQ(loaded->meta.totalNnz(), plan.meta.totalNnz());
    fs::remove_all(dir);
}

TEST_F(FailpointTest, TransientReadFaultIsRetriedInvisibly)
{
    const std::string dir = freshDir("eintr");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan plan(g, tiling);
    PlanStore store(dir);
    store.save(plan, tiling);

    // Force the buffered (read-loop) path and interrupt it once.
    ::setenv("GRAPHR_STORE_NO_MMAP", "1", 1);
    failpoint::configure("store.read.eintr:1@1");
    const TilePlanPtr loaded = store.load(plan.fingerprint, tiling);
    ASSERT_NE(loaded, nullptr) << "EINTR must be invisible";
    EXPECT_EQ(loaded->fingerprint, plan.fingerprint);
    EXPECT_GE(counterValue("store.retries"), 1u);
    EXPECT_EQ(counterValue("store.degraded_loads"), 0u);
    fs::remove_all(dir);
}

TEST_F(FailpointTest, ShortReadDegradesToAMissAndTheNextLoadRecovers)
{
    const std::string dir = freshDir("shortread");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan plan(g, tiling);
    PlanStore store(dir);
    store.save(plan, tiling);

    ::setenv("GRAPHR_STORE_NO_MMAP", "1", 1);
    failpoint::configure("store.read.short:1@1");
    EXPECT_EQ(store.load(plan.fingerprint, tiling), nullptr)
        << "a truncated read must degrade to a miss, not crash";
    EXPECT_EQ(store.stats().loadRejects, 1u);
    EXPECT_EQ(counterValue("store.degraded_loads"), 1u);

    // The file on disk was never damaged: the next load succeeds.
    failpoint::disarmAll();
    EXPECT_NE(store.load(plan.fingerprint, tiling), nullptr);
    fs::remove_all(dir);
}

TEST_F(FailpointTest, MmapFailureFallsBackToTheBufferedReader)
{
    const std::string dir = freshDir("mmap");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan plan(g, tiling);
    PlanStore store(dir);
    store.save(plan, tiling);

    failpoint::configure("store.mmap.fail:1@1");
    const TilePlanPtr loaded = store.load(plan.fingerprint, tiling);
    ASSERT_NE(loaded, nullptr) << "mmap failure has a fallback";
    EXPECT_EQ(loaded->fingerprint, plan.fingerprint);
    EXPECT_EQ(counterValue("store.degraded_loads"), 0u);
    fs::remove_all(dir);
}

TEST_F(FailpointTest, UnreadableArtifactDegradesToAMiss)
{
    const std::string dir = freshDir("openfail");
    const CooGraph g = testGraph();
    const TilingParams tiling;
    const TilePlan plan(g, tiling);
    PlanStore store(dir);
    store.save(plan, tiling);

    failpoint::configure("store.open.fail:1@1");
    EXPECT_EQ(store.load(plan.fingerprint, tiling), nullptr);
    failpoint::disarmAll();
    EXPECT_NE(store.load(plan.fingerprint, tiling), nullptr);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// PlanCache build failure: the LruCache retry contract
// ---------------------------------------------------------------------

TEST_F(FailpointTest, FailedPlanBuildReachesTheCallerAndIsRetried)
{
    const CooGraph g = testGraph();
    const TilingParams tiling;

    failpoint::configure("cache.build.fail");
    EXPECT_THROW(PlanCache::instance().get(g, tiling, nullptr),
                 std::runtime_error);
    EXPECT_EQ(PlanCache::instance().size(), 0u)
        << "a failed build must not leave a cached slot behind";

    // The failpoint is spent: the very next get() rebuilds cleanly
    // (as a miss — nothing was cached by the failure).
    bool hit = true;
    const TilePlanPtr plan =
        PlanCache::instance().get(g, tiling, &hit);
    ASSERT_NE(plan, nullptr);
    EXPECT_FALSE(hit);
    EXPECT_EQ(PlanCache::instance().size(), 1u);
}

// ---------------------------------------------------------------------
// Server hardening: deadlines and oversized lines
// ---------------------------------------------------------------------

TEST_F(FailpointTest, SlowRequestMissesItsDeadlineWithAStructuredError)
{
    service::ServeOptions options;
    options.requestTimeoutMs = 30;
    service::Server server(options);

    // Stall the worker far past the deadline, then check the request
    // is answered (in its slot, structured) rather than hung/dropped.
    failpoint::configure("pool.task.slow:1@1=300");
    const auto out = lines(serveText(
        server,
        R"({"id":"slow","type":"run","dataset":"chain:n=16"})" "\n"
        R"({"id":"q","type":"status"})" "\n"));
    ASSERT_EQ(out.size(), 2u);
    const JsonValue slow = JsonValue::parse(out[0]);
    EXPECT_EQ(slow.find("id")->asString(), "slow");
    EXPECT_FALSE(slow.find("ok")->asBool());
    EXPECT_NE(slow.find("error")->asString().find("timeout"),
              std::string::npos)
        << out[0];

    const JsonValue status = JsonValue::parse(out[1]);
    EXPECT_EQ(status.find("served")->find("timed_out")->asU64(), 1u);
    EXPECT_EQ(status.find("served")->find("failed")->asU64(), 0u)
        << "timeouts are counted separately from failures";
    EXPECT_EQ(counterValue("serve.timeouts"), 1u);
}

TEST_F(FailpointTest, FastRequestsAreUntouchedByTheDeadline)
{
    service::ServeOptions options;
    options.requestTimeoutMs = 60000;
    service::Server server(options);
    const auto out = lines(serveText(
        server,
        R"({"id":"r","type":"run","dataset":"chain:n=16"})" "\n"));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(JsonValue::parse(out[0]).find("ok")->asBool())
        << out[0];
    EXPECT_EQ(counterValue("serve.timeouts"), 0u);
}

TEST_F(FailpointTest, OversizedLineGetsAStructuredErrorNotSilence)
{
    service::ServeOptions options;
    options.maxLineBytes = 64;
    service::Server server(options);

    const std::string big =
        R"({"id":"big","type":"run","junk":")" +
        std::string(200, 'x') + "\"}";
    ASSERT_GT(big.size(), options.maxLineBytes);
    const auto out = lines(serveText(
        server,
        big + "\n" +
            R"({"id":"ok","type":"run","dataset":"chain:n=16"})" "\n"
            R"({"id":"q","type":"status"})" "\n"));
    ASSERT_EQ(out.size(), 3u) << "every line answered, none dropped";

    const JsonValue refused = JsonValue::parse(out[0]);
    EXPECT_TRUE(refused.find("id")->isNull())
        << "the id is inside the discarded bytes";
    EXPECT_FALSE(refused.find("ok")->asBool());
    EXPECT_NE(refused.find("error")->asString().find("64-byte limit"),
              std::string::npos)
        << out[0];

    // The session continues: the next (valid) request is served.
    EXPECT_TRUE(JsonValue::parse(out[1]).find("ok")->asBool())
        << out[1];
    const JsonValue status = JsonValue::parse(out[2]);
    EXPECT_EQ(status.find("served")->find("invalid")->asU64(), 1u);
    EXPECT_EQ(status.find("served")->find("completed")->asU64(), 1u);
}

} // namespace
} // namespace graphr
