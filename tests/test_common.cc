/**
 * @file
 * Unit tests for src/common: RNG, fixed point, stats, tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/fixed_point.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace graphr
{
namespace
{

TEST(TypesTest, UnitConversions)
{
    EXPECT_DOUBLE_EQ(toSeconds(1'000'000'000'000ull), 1.0);
    EXPECT_DOUBLE_EQ(toJoules(1'000'000'000'000'000ull), 1.0);
    EXPECT_EQ(nsToPs(1.0), 1000u);
    EXPECT_EQ(nsToPs(29.31), 29310u);
    EXPECT_EQ(pjToFj(1.08), 1080u);
}

TEST(RngTest, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowRespectsBound)
{
    Rng rng(13);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.below(17);
        EXPECT_LT(v, 17u);
        seen.insert(v);
    }
    // All 17 residues should appear in 1000 draws.
    EXPECT_EQ(seen.size(), 17u);
}

TEST(RngTest, NormalMoments)
{
    Rng rng(17);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(2.0, 3.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(FixedPointTest, QuantizeRoundTrip)
{
    const FixedPoint fp = FixedPoint::quantize(0.5, 12);
    EXPECT_NEAR(fp.toDouble(), 0.5, quantStep(12));
    EXPECT_EQ(fp.raw(), 2048u);
}

TEST(FixedPointTest, QuantizeZeroAndSaturation)
{
    EXPECT_EQ(FixedPoint::quantize(0.0, 12).raw(), 0u);
    // 16.0 saturates at 12 fractional bits (max ~15.9998).
    EXPECT_EQ(FixedPoint::quantize(1e9, 12).raw(), 65535u);
}

TEST(FixedPointTest, IntegerModeIsExact)
{
    for (int v : {0, 1, 7, 255, 65535}) {
        const FixedPoint fp =
            FixedPoint::quantize(static_cast<double>(v), 0);
        EXPECT_DOUBLE_EQ(fp.toDouble(), static_cast<double>(v));
    }
}

TEST(FixedPointTest, SlicesRecomposeRaw)
{
    const FixedPoint fp = FixedPoint::fromRaw(0xBEEF, 0);
    EXPECT_EQ(fp.slice(0), 0xF);
    EXPECT_EQ(fp.slice(1), 0xE);
    EXPECT_EQ(fp.slice(2), 0xE);
    EXPECT_EQ(fp.slice(3), 0xB);
    FixedPoint::Raw raw = 0;
    for (int s = kSlicesPerValue - 1; s >= 0; --s)
        raw = static_cast<FixedPoint::Raw>((raw << 4) | fp.slice(s));
    EXPECT_EQ(raw, 0xBEEF);
}

TEST(FixedPointTest, ShiftAddMatchesDirectProduct)
{
    // sum over slices of (partial << 4*i) must equal the value when
    // partials are the value's own slices.
    Rng rng(23);
    for (int trial = 0; trial < 200; ++trial) {
        const auto raw =
            static_cast<FixedPoint::Raw>(rng.below(65536));
        const FixedPoint fp = FixedPoint::fromRaw(raw, 0);
        std::array<std::uint64_t, kSlicesPerValue> partials{};
        for (int s = 0; s < kSlicesPerValue; ++s)
            partials[static_cast<std::size_t>(s)] = fp.slice(s);
        EXPECT_EQ(FixedPoint::shiftAdd(partials), raw);
    }
}

TEST(StatGroupTest, AddSetGetMerge)
{
    StatGroup a;
    a.add("x", 3);
    a.add("x", 4);
    a.set("y", 10);
    EXPECT_EQ(a.get("x"), 7u);
    EXPECT_EQ(a.get("y"), 10u);
    EXPECT_EQ(a.get("missing"), 0u);
    EXPECT_FALSE(a.has("missing"));

    StatGroup b;
    b.add("x", 1);
    b.add("z", 2);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 8u);
    EXPECT_EQ(a.get("z"), 2u);
}

TEST(StatGroupTest, DumpFormat)
{
    StatGroup g;
    g.set("alpha", 1);
    g.set("beta", 2);
    std::ostringstream oss;
    g.dump(oss, "pre.");
    EXPECT_EQ(oss.str(), "pre.alpha 1\npre.beta 2\n");
}

TEST(TableTest, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(TableTest, RendersAlignedColumns)
{
    TextTable t;
    t.header({"a", "bbbb"});
    t.row({"xx", "y"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("xx"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

} // namespace
} // namespace graphr
