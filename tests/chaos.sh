#!/usr/bin/env bash
# Chaos sweep of the graphr_serve daemon (run from ctest and CI).
#
# The worklist is the binary's own failpoint registry
# (graphr_serve --list-failpoints), so a newly added site cannot be
# forgotten here: every site this script does not know how to
# classify fails the sweep with an instruction to extend it.
#
# For every site the same request stream is served with
# GRAPHR_FAILPOINTS=<site>:1@1 armed, and:
#   1. the daemon must exit 0 — no injected fault may crash it;
#   2. sites classified `transient` (absorbed by retry/fallback/
#      degradation) must produce work responses byte-identical to the
#      fault-free baseline, and the status line must prove the fault
#      actually fired (failpoint.fires >= 1);
#   3. sites classified `erroring` must answer the affected request
#      with a structured `"ok":false` error while later requests in
#      the same session still match the baseline;
#   4. sites classified `session` (the fd-level permanent faults) end
#      the client session early — only the clean exit is asserted.
#
# Two extra scenarios close the loop on the server hardening: a
# deadline miss (pool.task.slow vs --request-timeout-ms) must yield a
# structured timeout, and an oversized request line must yield a
# structured error with the session continuing.
set -eu

serve_bin="$1"
run_bin="$2"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

dataset='rmat:vertices=128,edges=512,seed=3'

requests() {
  printf '%s\n' \
    '{"id":"r1","type":"run","workload":"pagerank","backend":"outofcore","dataset":"'"$dataset"'"}' \
    '{"id":"r2","type":"run","workload":"wcc","backend":"outofcore","dataset":"'"$dataset"'"}' \
    '{"id":"q1","type":"status"}'
}

work_lines() { # responses to the run requests, id order
  grep -e '"id":"r1"' -e '"id":"r2"' "$1" || true
}

fail() {
  echo "chaos: $*" >&2
  exit 1
}

# Plans prepared fault-free: the read-path sites need an artifact on
# disk to load (a fresh daemon run would build instead of load).
prepared="$workdir/prepared_plans"
"$run_bin" prepare --dataset "$dataset" --plan-dir "$prepared" \
  > /dev/null

# Fault-free baseline. Whether a plan is store-loaded or rebuilt, the
# run reports are byte-identical (the store round-trip tests pin
# that), so one baseline serves every per-site directory layout.
baseline="$workdir/baseline"
requests | "$serve_bin" --stdin --plan-dir "$prepared" > "$baseline"
test "$(wc -l < "$baseline")" -eq 3 || fail "baseline incomplete"
work_lines "$baseline" > "$workdir/baseline_work"

sites="$("$serve_bin" --list-failpoints)"
test -n "$sites" || fail "--list-failpoints returned nothing"

for site in $sites; do
  # Classification drives both the directory layout (read-path sites
  # load a prepared artifact; write-path sites save into an empty
  # directory) and the assertion tier.
  plan_dir="$workdir/plans_$site"
  env_extra=()
  case "$site" in
    store.open.fail|store.mmap.fail)
      kind=transient; cp -r "$prepared" "$plan_dir" ;;
    store.decode.fail)
      # Compressed-stream decode faults mid-load: the store degrades
      # to a fresh prepare and the response stays byte-identical.
      kind=transient; cp -r "$prepared" "$plan_dir" ;;
    store.read.eintr|store.read.short)
      # Only the buffered (non-mmap) reader has a read loop to fault.
      kind=transient; cp -r "$prepared" "$plan_dir"
      env_extra=(GRAPHR_STORE_NO_MMAP=1) ;;
    store.write.fail|store.write.short|store.fsync.fail|store.rename.fail)
      kind=transient; mkdir -p "$plan_dir" ;;
    serve.read.eintr|serve.write.short|pool.task.slow)
      kind=transient; mkdir -p "$plan_dir" ;;
    cache.build.fail)
      kind=erroring; mkdir -p "$plan_dir" ;;
    serve.read.eio|serve.write.eio)
      kind=session; mkdir -p "$plan_dir" ;;
    net.accept.fail|net.conn.read.fail|net.conn.write.fail)
      # Connection-layer sites: nothing on the --stdin path can reach
      # them, so each gets a dedicated TCP scenario below.
      continue ;;
    *)
      fail "unclassified failpoint site '$site' — extend tests/chaos.sh" ;;
  esac

  out="$workdir/out_$site"
  if ! requests | env "${env_extra[@]+"${env_extra[@]}"}" \
      GRAPHR_FAILPOINTS="$site:1@1" \
      "$serve_bin" --stdin --plan-dir "$plan_dir" > "$out"; then
    fail "$site: daemon exited nonzero"
  fi

  case "$kind" in
    transient)
      work_lines "$out" > "$workdir/work_$site"
      if ! cmp -s "$workdir/baseline_work" "$workdir/work_$site"; then
        {
          echo "--- baseline"; cat "$workdir/baseline_work"
          echo "--- with fault"; cat "$workdir/work_$site"
        } >&2
        fail "$site: transient fault changed a work response"
      fi
      robustness="$(grep -o '"robustness":{[^}]*}' "$out")" \
        || fail "$site: no robustness block in status"
      if echo "$robustness" | grep -q '"failpoint.fires":0'; then
        fail "$site: armed failpoint never fired (site unreached)"
      fi
      ;;
    erroring)
      grep -q '"id":"r1","ok":false' "$out" \
        || fail "$site: expected a structured error for r1"
      grep -e '"id":"r2"' "$out" > "$workdir/work_$site" || true
      if ! grep -e '"id":"r2"' "$workdir/baseline_work" \
          | cmp -s - "$workdir/work_$site"; then
        fail "$site: the request after the fault diverged"
      fi
      ;;
    session)
      : # clean exit already asserted; the session may end early
      ;;
  esac
  echo "chaos: $site ($kind) ok"
done

# Deadline scenario: a stalled worker must miss --request-timeout-ms
# and be answered with a structured timeout, counted as timed_out.
out="$workdir/out_timeout"
requests | GRAPHR_FAILPOINTS='pool.task.slow:1@1=400' \
  "$serve_bin" --stdin --request-timeout-ms 50 > "$out" \
  || fail "timeout scenario: daemon exited nonzero"
grep -q '"id":"r1","ok":false,"error":"timeout' "$out" \
  || fail "timeout scenario: no structured timeout for r1"
# r2 was queued behind the stalled r1, so its admission-to-response
# clock may expire too — assert the count is nonzero, not exact.
grep -o '"served":{[^}]*}' "$out" | grep -q '"timed_out":[1-9]' \
  || fail "timeout scenario: status did not count the timeout"

# Oversized-line scenario: the over-limit line gets a structured
# error (null id) and the session continues with the next request.
out="$workdir/out_oversized"
big_line='{"id":"big","type":"run","junk":"'
big_line="$big_line$(printf 'x%.0s' $(seq 1 200))\"}"
# The cap must sit between the real request lines (~115 bytes) and
# the junk line (~235 bytes): only the junk line may be refused.
{ printf '%s\n' "$big_line"; requests; } \
  | "$serve_bin" --stdin --max-line-bytes 128 > "$out" \
  || fail "oversized scenario: daemon exited nonzero"
grep -q '"id":null,"ok":false,"error":"request line exceeds' "$out" \
  || fail "oversized scenario: no structured error for the long line"
if ! cmp -s "$workdir/baseline_work" <(work_lines "$out"); then
  fail "oversized scenario: later requests diverged"
fi

# ---------------------------------------------------------- TCP layer
# The net.* sites live on the accept/read/write path of the TCP event
# loop. Each scenario runs its own daemon on an ephemeral port with
# the fault armed, drives it over /dev/tcp, and must end with a clean
# SIGTERM exit — an injected connection fault may never take the
# daemon (or a sibling connection) down with it.

tcp_daemon_pid=""
cleanup_tcp() {
  if [ -n "$tcp_daemon_pid" ] && kill -0 "$tcp_daemon_pid" 2>/dev/null
  then
    kill -TERM "$tcp_daemon_pid" 2>/dev/null || true
    wait "$tcp_daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup_tcp EXIT

start_tcp_daemon() { # $1=site armed, $2=log file; sets tcp_daemon_pid
  GRAPHR_FAILPOINTS="$1:1@1" "$serve_bin" --port 0 2> "$2" &
  tcp_daemon_pid=$!
}

tcp_port() { # $1=log file; waits for and prints the logged port
  local port=""
  for _ in $(seq 1 100); do
    port="$(sed -n \
      's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
      "$1" | head -n 1)"
    if [ -n "$port" ]; then echo "$port"; return 0; fi
    kill -0 "$tcp_daemon_pid" 2>/dev/null || return 1
    sleep 0.1
  done
  return 1
}

stop_tcp_daemon() { # $1=site (for the failure message)
  kill -TERM "$tcp_daemon_pid"
  wait "$tcp_daemon_pid" || fail "$1: daemon exited nonzero"
  tcp_daemon_pid=""
}

read_responses() { # $1=fd, $2=count, $3=out file, $4=site
  : > "$3"
  local i line
  for i in $(seq 1 "$2"); do
    IFS= read -r -t 60 line <&"$1" \
      || fail "$4: response $i timed out or the connection closed"
    printf '%s\n' "$line" >> "$3"
  done
}

# net.accept.fail is transient: it fails the accept(2) attempt before
# the syscall, so the connection stays in the kernel backlog and the
# next poll pass picks it up — the client only sees added latency.
site=net.accept.fail
log="$workdir/tcp_log_$site"
start_tcp_daemon "$site" "$log"
port="$(tcp_port "$log")" || fail "$site: daemon never listened"
exec 3<>"/dev/tcp/127.0.0.1/$port" || fail "$site: connect refused"
requests >&3
read_responses 3 3 "$workdir/out_tcp_$site" "$site"
exec 3<&- 3>&-
if ! cmp -s "$workdir/baseline_work" \
    <(work_lines "$workdir/out_tcp_$site"); then
  fail "$site: responses diverged after the absorbed accept fault"
fi
grep -o '"robustness":{[^}]*}' "$workdir/out_tcp_$site" \
    | grep -q '"failpoint.fires":0' \
  && fail "$site: armed failpoint never fired"
grep -q 'accept failed (injected fault)' "$log" \
  || fail "$site: no retry diagnostic in the daemon log"
stop_tcp_daemon "$site"
echo "chaos: $site (tcp transient) ok"

# net.conn.read.fail and net.conn.write.fail are fatal for the one
# connection they hit: the victim gets a clean close (EOF, no partial
# line), the daemon stays up, and a sibling connection served
# afterwards must produce byte-identical work responses.
for site in net.conn.read.fail net.conn.write.fail; do
  log="$workdir/tcp_log_$site"
  start_tcp_daemon "$site" "$log"
  port="$(tcp_port "$log")" || fail "$site: daemon never listened"

  # Victim first: its first read (or first response write) trips the
  # armed fault and the daemon must close just this connection. The
  # read below blocks until that close, so it doubles as the
  # synchronisation point before the sibling connects.
  exec 3<>"/dev/tcp/127.0.0.1/$port" || fail "$site: connect refused"
  printf '%s\n' '{"id":"v1","type":"status"}' >&3
  # A read-fault teardown closes with the request bytes unread, so
  # the victim may see RST instead of FIN — either way, no response.
  if IFS= read -r -t 60 line <&3 2>/dev/null; then
    fail "$site: victim connection got a response despite the fault"
  fi
  exec 3<&- 3>&-
  grep -q "closed" "$log" \
    || fail "$site: no teardown diagnostic in the daemon log"

  # Sibling afterwards: the fault is spent, the stream is untouched.
  exec 4<>"/dev/tcp/127.0.0.1/$port" \
    || fail "$site: sibling connect refused"
  requests >&4
  read_responses 4 3 "$workdir/out_tcp_$site" "$site"
  exec 4<&- 4>&-
  if ! cmp -s "$workdir/baseline_work" \
      <(work_lines "$workdir/out_tcp_$site"); then
    fail "$site: sibling responses diverged"
  fi
  stop_tcp_daemon "$site"
  echo "chaos: $site (tcp connection-fatal) ok"
done

echo "serve chaos ok"
