/**
 * @file
 * Unit tests for the shared FNV-1a checksum primitive: reference
 * vectors, streaming equivalence, the word-mix layout, and the
 * guarantee that graphFingerprint is built on the same fold (so the
 * fingerprint and the plan store's checksums cannot drift apart).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <string>

#include "common/checksum.hh"
#include "graph/generator.hh"
#include "graphr/engine/tile_plan.hh"

namespace graphr
{
namespace
{

std::uint64_t
fnvOfString(const std::string &s)
{
    return fnv1a64(s.data(), s.size());
}

TEST(ChecksumTest, ReferenceVectors)
{
    // Standard FNV-1a 64 test vectors.
    EXPECT_EQ(fnvOfString(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnvOfString("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnvOfString("foobar"), 0x85944171f73967e8ull);
    EXPECT_EQ(fnvOfString("hello"), 0xa430d84680aabd0bull);
}

TEST(ChecksumTest, StreamingSplitsAreEquivalent)
{
    const std::string data = "the quick brown fox jumps over";
    const std::uint64_t whole = fnvOfString(data);
    for (std::size_t cut = 0; cut <= data.size(); ++cut) {
        Fnv1a64 h;
        h.update(data.data(), cut);
        h.update(data.data() + cut, data.size() - cut);
        EXPECT_EQ(h.digest(), whole) << "cut at " << cut;
    }
}

TEST(ChecksumTest, UpdateWordMatchesLittleEndianBytes)
{
    const std::uint64_t word = 0x0123456789abcdefull;
    Fnv1a64 via_word;
    via_word.updateWord(word);

    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<unsigned char>((word >> (8 * i)) & 0xff);
    Fnv1a64 via_bytes;
    via_bytes.update(bytes, sizeof(bytes));

    EXPECT_EQ(via_word.digest(), via_bytes.digest());
}

TEST(ChecksumTest, DifferentInputsDiffer)
{
    EXPECT_NE(fnvOfString("plan-a"), fnvOfString("plan-b"));
    Fnv1a64 a;
    a.updateWord(1);
    Fnv1a64 b;
    b.updateWord(2);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(ChecksumTest, GraphFingerprintUsesSharedPrimitive)
{
    // Recompute graphFingerprint by hand with Fnv1a64 — if the
    // fingerprint ever switches hash, this breaks loudly (and the
    // plan store format version must bump with it).
    const CooGraph g = makeRmat(
        {.numVertices = 64, .numEdges = 256, .seed = 11});
    Fnv1a64 h;
    h.updateWord(g.numVertices());
    h.updateWord(g.numEdges());
    for (const Edge &e : g.edges()) {
        h.updateWord((static_cast<std::uint64_t>(e.src) << 32) |
                     static_cast<std::uint64_t>(e.dst));
        h.updateWord(std::bit_cast<std::uint64_t>(
            static_cast<double>(e.weight)));
    }
    EXPECT_EQ(graphFingerprint(g), h.digest());
}

TEST(ChecksumTest, FingerprintIsOrderAndValueSensitive)
{
    CooGraph a(4, {});
    a.addEdge(0, 1);
    a.addEdge(2, 3);
    CooGraph b(4, {});
    b.addEdge(2, 3);
    b.addEdge(0, 1);
    EXPECT_NE(graphFingerprint(a), graphFingerprint(b));

    CooGraph c(4, {});
    c.addEdge(0, 1);
    c.addEdge(2, 3, 2.0);
    EXPECT_NE(graphFingerprint(a), graphFingerprint(c));
}

} // namespace
} // namespace graphr
