/**
 * @file
 * End-to-end integration tests chaining modules the way the bench
 * binaries and a downstream user would: generate -> serialise ->
 * reload -> preprocess -> simulate -> compare against baselines.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "algorithms/pagerank.hh"
#include "algorithms/spmv.hh"
#include "algorithms/traversal.hh"
#include "baselines/cpu_model.hh"
#include "baselines/gpu_model.hh"
#include "baselines/pim_model.hh"
#include "graph/datasets.hh"
#include "graph/generator.hh"
#include "graph/io.hh"
#include "graphr/multi_node.hh"
#include "graphr/node.hh"
#include "graphr/out_of_core.hh"

namespace graphr
{
namespace
{

TEST(IntegrationTest, SerialiseReloadSimulatePipeline)
{
    // The full user pipeline: generate, save, load, run — results
    // must be identical to running on the original graph.
    const CooGraph original = makeDataset(DatasetId::kWikiVote, 64.0);
    std::stringstream buffer;
    saveBinary(original, buffer);
    const CooGraph reloaded = loadBinary(buffer);

    GraphRNode node;
    PageRankParams params;
    params.maxIterations = 5;
    params.tolerance = 0.0;
    const SimReport a = node.runPageRank(original, params);
    const SimReport b = node.runPageRank(reloaded, params);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_DOUBLE_EQ(a.joules, b.joules);
    EXPECT_EQ(a.tilesProcessed, b.tilesProcessed);
}

TEST(IntegrationTest, GraphRBeatsCpuOnMacWorkloads)
{
    // The headline claim at small scale: GraphR outruns the CPU
    // baseline on MAC-pattern workloads and uses less energy.
    const CooGraph g = makeDataset(DatasetId::kWikiVote, 16.0);
    GraphRNode node;
    CpuModel cpu;
    PageRankParams params;
    params.maxIterations = 10;
    params.tolerance = 0.0;
    const SimReport r = node.runPageRank(g, params);
    const BaselineReport c = cpu.runPageRank(g, 10);
    EXPECT_GT(c.seconds / r.seconds, 2.0);
    EXPECT_GT(c.joules / r.joules, 5.0);
}

TEST(IntegrationTest, MacBeatsAddOpPerEdge)
{
    // Paper Fig. 17's structural result: parallel-MAC workloads gain
    // more than parallel-add-op ones.
    const CooGraph g = makeDataset(DatasetId::kSlashdot, 64.0);
    GraphRNode node;
    CpuModel cpu;
    PageRankParams params;
    params.maxIterations = 10;
    params.tolerance = 0.0;
    const double pr_speedup =
        cpu.runPageRank(g, 10).seconds /
        node.runPageRank(g, params).seconds;
    const double sssp_speedup =
        cpu.runSssp(g, 0).seconds / node.runSssp(g, 0).seconds;
    EXPECT_GT(pr_speedup, sssp_speedup);
}

TEST(IntegrationTest, PlatformOrderingOnPageRank)
{
    // Expected platform ordering on a mid-size graph: GraphR fastest,
    // then PIM/GPU, CPU last (paper Figs. 17/19/20 composite).
    const CooGraph g = makeDataset(DatasetId::kAmazon, 64.0);
    GraphRNode node;
    CpuModel cpu;
    GpuModel gpu;
    PimModel pim;
    PageRankParams params;
    params.maxIterations = 10;
    params.tolerance = 0.0;
    const double t_graphr = node.runPageRank(g, params).seconds;
    const double t_cpu = cpu.runPageRank(g, 10).seconds;
    const double t_gpu = gpu.runPageRank(g, 10).seconds;
    const double t_pim = pim.runPageRank(g, 10).seconds;
    EXPECT_LT(t_graphr, t_cpu);
    EXPECT_LT(t_gpu, t_cpu);
    EXPECT_LT(t_pim, t_cpu);
    EXPECT_LT(t_graphr, t_gpu);
}

TEST(IntegrationTest, OutOfCoreWrapsNodeConsistently)
{
    const CooGraph g = makeDataset(DatasetId::kWikiVote, 64.0);
    PageRankParams params;
    params.maxIterations = 5;
    params.tolerance = 0.0;
    GraphRConfig cfg;
    OutOfCoreRunner runner(cfg, StorageParams{});
    const OutOfCoreReport oc = runner.runPageRank(g, params);
    const SimReport direct = GraphRNode(cfg).runPageRank(g, params);
    EXPECT_DOUBLE_EQ(oc.node.seconds, direct.seconds);
    EXPECT_GE(oc.totalSeconds, direct.seconds * 0.999);
}

TEST(IntegrationTest, MultiNodeConsistentWithSingleNodeSweep)
{
    const CooGraph g = makeDataset(DatasetId::kWikiVote, 64.0);
    PageRankParams params;
    params.maxIterations = 5;
    params.tolerance = 0.0;
    MultiNodeGraphR cluster(GraphRConfig{}, 1);
    const MultiNodeReport mn = cluster.runPageRank(g, params);
    // One node, no communication: end-to-end = sweeps * per-sweep.
    ASSERT_EQ(mn.nodeSweepSeconds.size(), 1u);
    EXPECT_NEAR(mn.seconds, mn.nodeSweepSeconds[0] * 5.0,
                mn.seconds * 1e-9);
}

TEST(IntegrationTest, AllFourAlgorithmsAgreeWithGoldenFunctionally)
{
    // One functional node, four algorithms, one graph — the Table 2
    // end-to-end check at integration level.
    const CooGraph g = makeRmat({.numVertices = 48,
                                 .numEdges = 300,
                                 .maxWeight = 7.0,
                                 .seed = 101});
    GraphRConfig cfg;
    cfg.tiling.crossbarDim = 4;
    cfg.tiling.crossbarsPerGe = 2;
    cfg.tiling.numGe = 2;
    cfg.functional = true;
    GraphRNode node(cfg);

    std::vector<Value> dist;
    node.runSssp(g, 0, &dist);
    const TraversalResult golden_ss = sssp(g, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (!std::isinf(golden_ss.dist[v]))
            EXPECT_DOUBLE_EQ(dist[v], golden_ss.dist[v]);
    }

    std::vector<Value> levels;
    node.runBfs(g, 0, &levels);
    const TraversalResult golden_bfs = bfs(g, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (!std::isinf(golden_bfs.dist[v]))
            EXPECT_DOUBLE_EQ(levels[v], golden_bfs.dist[v]);
    }

    PageRankParams params;
    params.maxIterations = 10;
    params.tolerance = 0.0;
    std::vector<Value> ranks;
    node.runPageRank(g, params, &ranks);
    const PageRankResult golden_pr = pagerank(g, params);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_NEAR(ranks[v], golden_pr.ranks[v], 0.02);

    std::vector<Value> x(g.numVertices(), 0.5);
    std::vector<Value> y;
    node.runSpmv(g, x, &y);
    const std::vector<Value> golden_y = spmv(g, x);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_NEAR(y[v], golden_y[v], 0.02);
}

} // namespace
} // namespace graphr
