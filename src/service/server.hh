/**
 * @file
 * The long-lived batch-serving core of graphr_serve.
 *
 * A Server owns a worker pool and process-resident warm state (the
 * PlanCache with an optionally attached PlanStore, the golden-result
 * cache) and answers JSONL request streams. Since the connection
 * layer (src/net/) arrived, a Server serves many streams at once:
 * each client connection opens a Session — the per-connection unit of
 * response ordering, admission quota and counters — and feeds it
 * request lines; the Server fans the work across one shared pool and
 * hands each Session its responses back in that session's admission
 * order. The paper's offline/online split is what makes this shape
 * pay: the first request for a (graph x tiling) prepares (or
 * store-loads) the plan, every later one — from any connection — is
 * sort-free.
 *
 * Scheduling model:
 *  - Admission is bounded twice: globally (at most `queueDepth`
 *    requests outstanding across all sessions) and per session (at
 *    most `connQueueDepth` outstanding per connection, when set).
 *    The per-session quota is the fairness mechanism: one greedy
 *    connection can fill its own quota and collect structured
 *    "connection queue full" rejections, but it cannot occupy the
 *    global depth and starve its siblings.
 *  - Every run/sweep/prepare request is one task on the worker
 *    pool (a run is the single-combination SweepSpec case), so a
 *    burst of requests fans across all --jobs workers; plan reuse
 *    across requests and connections comes from the process-wide
 *    PlanCache, and a failing request answers alone.
 *  - Responses are written in per-session admission order
 *    (completion order may differ), so a fixed request stream yields
 *    byte-identical run/sweep/prepare responses at any --jobs and
 *    regardless of what sibling connections are doing.
 *  - A request may carry a "tenant" name: its plan artifacts then
 *    live in `<plan-dir>/<tenant>/` (a per-tenant PlanStore namespace
 *    with its own memory-cache namespace), so independent users
 *    cannot poison each other's artifact store. Tenant names are
 *    validated against path traversal at parse time.
 *  - "status" is a barrier: it drains everything admitted before it
 *    on every session, then reports cache occupancy, served-request
 *    counters, the connections block and per-tenant counters —
 *    deterministic numbers, which the CI smoke relies on.
 *
 * Thread-safety: handleLine()/handleOversizedLine() for one Session
 *  must be called from one thread at a time (the event loop or the
 *  blocking serve() reader); different Sessions may be fed from
 *  different threads. Sinks are invoked with the server mutex held,
 *  from whatever thread completes the request — keep them cheap
 *  (buffer-append) or accept the serialisation (stream write).
 *  requestStop() may be called from any thread or from a signal
 *  handler (it only stores a lock-free atomic).
 */

#ifndef GRAPHR_SERVICE_SERVER_HH
#define GRAPHR_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "service/request.hh"

namespace graphr
{
class PlanStore;
}

namespace graphr::service
{

/** Daemon configuration (the graphr_serve flag surface). */
struct ServeOptions
{
    /** Worker threads executing requests (0 = hardware threads). */
    std::uint32_t jobs = 1;
    /**
     * Max outstanding requests (admitted, not yet answered) across
     * every session; further work requests get a structured "queue
     * full" rejection. 0 means reject everything — useful only for
     * tests.
     */
    std::uint32_t queueDepth = 256;
    /**
     * Max outstanding requests per session/connection (0 = no
     * per-session quota, only the global bound applies — the
     * single-client stdin default). The daemon's TCP mode sets this
     * so one greedy connection saturates its own quota, not the
     * global depth.
     */
    std::uint32_t connQueueDepth = 0;
    /**
     * Per-request wall-clock deadline in milliseconds (admission to
     * response; 0 = none). A request that misses it is answered with
     * a structured `"error":"timeout..."` line in its admission slot
     * — ordering, backpressure and drain semantics are unchanged, the
     * caller just learns the result was abandoned. Work already
     * running is never killed mid-flight (results may still warm the
     * caches); work that is still queued when its deadline passes is
     * skipped entirely.
     */
    std::uint32_t requestTimeoutMs = 0;
    /**
     * Longest accepted request line in bytes (0 = unlimited). Longer
     * lines are consumed with bounded memory and answered with a
     * structured error instead of growing daemon memory without
     * limit — the session then continues at the next line.
     */
    std::size_t maxLineBytes = 1 << 20;
    /**
     * Daemon-wide plan store root. Per-request plan directories are
     * deliberately not part of the request grammar; the one sanctioned
     * form of per-request redirection is the validated "tenant" name,
     * which selects the `<plan-dir>/<tenant>/` namespace.
     */
    StoreSpec store;
};

/** Served-request counters (monotonic over the server's lifetime). */
struct ServeCounters
{
    std::uint64_t admitted = 0;  ///< work requests accepted
    std::uint64_t completed = 0; ///< answered with ok == true
    std::uint64_t failed = 0;    ///< admitted but answered with error
    std::uint64_t rejected = 0;  ///< bounced by an admission bound
    std::uint64_t invalid = 0;   ///< malformed/oversized lines
    std::uint64_t timedOut = 0;  ///< missed the per-request deadline
};

/** One serving daemon instance. */
class Server
{
  public:
    class Session;
    using SessionPtr = std::shared_ptr<Session>;
    /**
     * Receives one finished response line (no trailing newline) per
     * call, in the session's admission order. Invoked with the server
     * mutex held, possibly from a worker thread — must not call back
     * into the Server.
     */
    using ResponseSink = std::function<void(std::string &&)>;

    /**
     * Construct the daemon: spins up the worker pool and attaches
     * options.store to the process-wide PlanCache (throws
     * driver::DriverError when the directory is unusable — fail at
     * startup, not on the first request).
     */
    explicit Server(const ServeOptions &options);

    /** Drains outstanding work, then detaches the plan store. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Serve one request stream on the calling thread: read JSONL
     * requests from @p in until EOF or requestStop(), answer each on
     * @p out (one line per request, admission order, flushed per
     * line). Returns after every request this stream admitted has
     * been answered. Implemented as one Session over the connection
     * seam below; call again with a new stream to serve the next
     * client on the same warm state.
     */
    void serve(std::istream &in, std::ostream &out);

    // ------------------------------------------------ connection seam
    // The multi-client surface src/net/EventLoop drives. One Session
    // per client connection; the caller owns line framing (see
    // net/line_buffer.hh) and feeds complete lines in.

    /** Open a session: responses flow to @p sink in admission order.
     *  Counted in the status "connections" block. */
    SessionPtr openSession(ResponseSink sink);

    /**
     * Close a session: its sink is dropped immediately (responses of
     * still-running requests are computed, counted, then discarded)
     * and it leaves the active set. Idempotent.
     */
    void closeSession(const SessionPtr &session);

    /** Parse, validate, admit and dispatch one request line for a
     *  session. Never blocks on I/O; may block on the status barrier
     *  or (blocking sessions only) response backpressure. */
    void handleLine(const SessionPtr &session, const std::string &line);

    /** Answer a line the bounded reader refused (too long) with a
     *  structured error in the session's admission slot. */
    void handleOversizedLine(const SessionPtr &session);

    /** Admitted-but-unanswered requests on this session — the event
     *  loop's read-backpressure signal. */
    std::size_t sessionBacklog(const Session &session) const;

    /** Block until every request this session admitted is answered
     *  (its sink has seen every line). */
    void drainSession(const Session &session);

    /** Block until every admitted request on every session is
     *  answered — the shutdown barrier. */
    void drainAll();

    /**
     * Ask every serving loop to stop after the line it is processing
     * and drain. Async-signal-safe (lock-free store).
     */
    void requestStop() { stop_.store(true); }

    bool stopRequested() const { return stop_.load(); }

    /** The stop flag itself, for read loops that block in I/O
     *  (fd_stream.hh turns an interrupted read into EOF with it). */
    const std::atomic<bool> &stopFlag() const { return stop_; }

    ServeCounters counters() const;

  private:
    /** Whether @p admitted 's deadline has already passed (always
     *  false with requestTimeoutMs == 0). */
    bool deadlineExpired(
        std::chrono::steady_clock::time_point admitted) const;

    /**
     * Record a response and flush the session's in-order prefix.
     * @p admitted is the request's admission time: the admission ->
     * response latency is published into the perf counter registry
     * ("serve.request_ns"), which status reports as the cumulative
     * per-request latency summary. When the request missed its
     * deadline, @p text is replaced by the structured timeout error
     * (@p id is needed for exactly that rewrite). @p tenant, when
     * non-empty, bumps that tenant's served counter.
     */
    void finishJob(const SessionPtr &session, std::uint64_t seq,
                   const std::string &id, std::string text, bool ok,
                   std::chrono::steady_clock::time_point admitted,
                   const std::string &tenant);
    void respondImmediate(Session &session, std::uint64_t seq,
                          std::string text);
    /** Push the session's ready in-order prefix into its sink.
     *  Caller holds mutex_. */
    void flushSessionLocked(Session &session);

    /**
     * The `<plan-dir>/<tenant>/` store namespace, created lazily and
     * kept for the server's lifetime (stats stay cumulative). Caller
     * holds mutex_. Throws StoreError when the directory is unusable
     * and DriverError when the daemon has no store at all.
     */
    std::shared_ptr<PlanStore>
    tenantStoreLocked(const std::string &tenant);

    /** Status payload; caller holds mutex_ and has drained. */
    std::string statusTextLocked(const std::string &id) const;

    ServeOptions options_;
    ThreadPool pool_;
    std::atomic<bool> stop_{false};

    mutable std::mutex mutex_;
    std::condition_variable idle_; ///< outstanding work / buffers moved
    /** Admitted-but-unanswered work requests across all sessions
     *  (the global admission bound). */
    std::uint64_t outstanding_ = 0;
    ServeCounters counters_;

    /** Sessions still open, in open order (the status
     *  "connections.per_connection" listing). */
    std::vector<SessionPtr> sessions_;
    std::uint64_t nextSessionId_ = 1;
    std::uint64_t totalSessions_ = 0;

    /** Tenant namespaces: `<plan-dir>/<tenant>/` stores (lazily
     *  opened, kept attached) and per-tenant answered-request
     *  counters, both keyed by the validated tenant name. */
    std::map<std::string, std::shared_ptr<PlanStore>> tenantStores_;
    std::map<std::string, std::uint64_t> tenantServed_;
};

/**
 * One client connection's serving state: the per-connection request
 * sequence, the admission-ordered response reorder buffer, the sink,
 * and the per-connection counters the status "connections" block
 * reports. Create via Server::openSession; all mutation goes through
 * the Server (the Session itself is passive data).
 */
class Server::Session
{
  public:
    /** Stable 1-based id, echoed as "conn" in status. */
    std::uint64_t id() const { return id_; }

  private:
    friend class Server;

    Session(std::uint64_t id, ResponseSink sink)
        : id_(id), sink_(std::move(sink))
    {
    }

    std::uint64_t id_;
    ResponseSink sink_;      ///< dropped (nullptr) once closed
    bool open_ = true;
    /** Blocking sessions (the serve() reader) pause their reader when
     *  the reorder buffer outgrows the queue depth; event-loop
     *  sessions apply backpressure at the socket instead. */
    bool blockingReader_ = false;

    std::uint64_t outstanding_ = 0; ///< admitted, not yet answered
    std::uint64_t nextSeq_ = 0;     ///< next admission slot
    std::uint64_t nextFlush_ = 0;   ///< next slot the sink gets
    std::map<std::uint64_t, std::string> ready_;
    ServeCounters counters_;
};

} // namespace graphr::service

#endif // GRAPHR_SERVICE_SERVER_HH
