/**
 * @file
 * The long-lived batch-serving core of graphr_serve.
 *
 * A Server owns a worker pool and process-resident warm state (the
 * PlanCache with an optionally attached PlanStore, the golden-result
 * cache) and answers JSONL request streams: serve() reads requests
 * from a stream, executes them on the pool, and writes one response
 * line per request. The paper's offline/online split is what makes
 * this shape pay: the first request for a (graph x tiling) prepares
 * (or store-loads) the plan, every later one is sort-free.
 *
 * Scheduling model:
 *  - Admission is bounded: at most `queueDepth` requests may be
 *    outstanding (admitted, not yet answered); requests beyond that
 *    are rejected with a structured "queue full" error, never
 *    silently dropped.
 *  - Every run/sweep/prepare request is one task on the worker
 *    pool (a run is the single-combination SweepSpec case), so a
 *    burst of requests fans across all --jobs workers; plan reuse
 *    across requests comes from the process-wide PlanCache, and a
 *    failing request answers alone without touching its neighbours.
 *  - Responses are written in admission order (completion order may
 *    differ), so a fixed request stream yields byte-identical
 *    run/sweep/prepare responses at any worker count (the status
 *    response's "jobs" field reports the actual worker count and is
 *    the one jobs-dependent byte).
 *  - "status" is a barrier: it drains everything admitted before it,
 *    then reports cache occupancy and served-request counters —
 *    deterministic numbers, which the CI smoke relies on.
 *
 * Thread-safety: serve() is blocking and must be called from one
 *  thread at a time (sessions are sequential; warm state persists
 *  across them). requestStop() may be called from any thread or from
 *  a signal handler (it only stores a lock-free atomic); the current
 *  session then finishes in-flight work, flushes every pending
 *  response, and returns — the graceful-drain path for SIGTERM/EOF.
 */

#ifndef GRAPHR_SERVICE_SERVER_HH
#define GRAPHR_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

#include "common/thread_pool.hh"
#include "service/request.hh"

namespace graphr::service
{

/** Daemon configuration (the graphr_serve flag surface). */
struct ServeOptions
{
    /** Worker threads executing requests (0 = hardware threads). */
    std::uint32_t jobs = 1;
    /**
     * Max outstanding requests (admitted, not yet answered); further
     * work requests get a structured "queue full" rejection. 0 means
     * reject everything — useful only for tests.
     */
    std::uint32_t queueDepth = 256;
    /**
     * Per-request wall-clock deadline in milliseconds (admission to
     * response; 0 = none). A request that misses it is answered with
     * a structured `"error":"timeout..."` line in its admission slot
     * — ordering, backpressure and drain semantics are unchanged, the
     * caller just learns the result was abandoned. Work already
     * running is never killed mid-flight (results may still warm the
     * caches); work that is still queued when its deadline passes is
     * skipped entirely.
     */
    std::uint32_t requestTimeoutMs = 0;
    /**
     * Longest accepted request line in bytes (0 = unlimited). Longer
     * lines are consumed with bounded memory and answered with a
     * structured error instead of growing daemon memory without
     * limit — the session then continues at the next line.
     */
    std::size_t maxLineBytes = 1 << 20;
    /**
     * Daemon-wide plan store. Per-request plan directories are
     * deliberately not part of the request grammar: the store hangs
     * off the process-wide PlanCache, so switching it per request
     * under concurrency would let requests detach each other's
     * warm state.
     */
    StoreSpec store;
};

/** Served-request counters (monotonic over the server's lifetime). */
struct ServeCounters
{
    std::uint64_t admitted = 0;  ///< work requests accepted
    std::uint64_t completed = 0; ///< answered with ok == true
    std::uint64_t failed = 0;    ///< admitted but answered with error
    std::uint64_t rejected = 0;  ///< bounced by the admission bound
    std::uint64_t invalid = 0;   ///< malformed/oversized lines
    std::uint64_t timedOut = 0;  ///< missed the per-request deadline
};

/** One serving daemon instance. */
class Server
{
  public:
    /**
     * Construct the daemon: spins up the worker pool and attaches
     * options.store to the process-wide PlanCache (throws
     * driver::DriverError when the directory is unusable — fail at
     * startup, not on the first request).
     */
    explicit Server(const ServeOptions &options);

    /** Drains outstanding work, then detaches the plan store. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Serve one request stream: read JSONL requests from @p in until
     * EOF or requestStop(), answer each on @p out (one line per
     * request, admission order, flushed per line). Returns after
     * every admitted request has been answered. Call again with a new
     * stream to serve the next connection on the same warm state.
     */
    void serve(std::istream &in, std::ostream &out);

    /**
     * Ask the current serve() call to stop after the line it is
     * processing and drain. Async-signal-safe (lock-free store).
     */
    void requestStop() { stop_.store(true); }

    bool stopRequested() const { return stop_.load(); }

    /** The stop flag itself, for read loops that block in I/O
     *  (fd_stream.hh turns an interrupted read into EOF with it). */
    const std::atomic<bool> &stopFlag() const { return stop_; }

    ServeCounters counters() const;

  private:
    /** Parse, validate, admit and dispatch one request line. */
    void handleLine(const std::string &line);

    /** Answer a line the bounded reader refused (too long) with a
     *  structured error in its admission slot. */
    void handleOversizedLine();

    /** Whether @p admitted 's deadline has already passed (always
     *  false with requestTimeoutMs == 0). */
    bool deadlineExpired(
        std::chrono::steady_clock::time_point admitted) const;

    /**
     * Record a response and flush everything now in order.
     * @p admitted is the request's admission time: the admission ->
     * response latency is published into the perf counter registry
     * ("serve.request_ns"), which status reports as the cumulative
     * per-request latency summary. When the request missed its
     * deadline, @p text is replaced by the structured timeout error
     * (@p id is needed for exactly that rewrite).
     */
    void finishJob(std::uint64_t seq, const std::string &id,
                   std::string text, bool ok,
                   std::chrono::steady_clock::time_point admitted);
    void respondImmediate(std::uint64_t seq, std::string text);
    void flushLocked();

    /** Status payload; caller holds mutex_ and has drained. */
    std::string statusTextLocked(const std::string &id) const;

    /** Block until every admitted request has been answered. */
    void drain();

    ServeOptions options_;
    ThreadPool pool_;
    std::atomic<bool> stop_{false};

    mutable std::mutex mutex_;
    std::condition_variable idle_; ///< outstanding_ hit zero
    /** Admitted-but-unanswered work requests (the admission bound). */
    std::uint64_t outstanding_ = 0;
    ServeCounters counters_;

    /** Response sequencing: seq -> response text once ready. */
    std::uint64_t nextSeq_ = 0;
    std::uint64_t nextFlush_ = 0;
    std::map<std::uint64_t, std::string> ready_;
    std::ostream *out_ = nullptr;
};

} // namespace graphr::service

#endif // GRAPHR_SERVICE_SERVER_HH
