#include "server.hh"

#include <exception>
#include <sstream>

#include "common/json.hh"
#include "driver/golden_cache.hh"
#include "graphr/engine/plan_cache.hh"
#include "perf/counters.hh"
#include "store/plan_store.hh"

namespace graphr::service
{

namespace
{

/** Cumulative admission->response latency of work requests. */
perf::LatencyHistogram &
requestLatency()
{
    static perf::LatencyHistogram &histogram =
        perf::Registry::instance().latency("serve.request_ns");
    return histogram;
}

/** Publish one served-request event into the perf registry. */
void
bump(std::string_view name)
{
    perf::Registry::instance().counter(name).add();
}

/** Strip surrounding whitespace (JSONL lines may end in \r). */
std::string
trimmed(const std::string &line)
{
    std::size_t first = 0;
    std::size_t last = line.size();
    while (first < last &&
           (line[first] == ' ' || line[first] == '\t'))
        ++first;
    while (last > first &&
           (line[last - 1] == ' ' || line[last - 1] == '\t' ||
            line[last - 1] == '\r' || line[last - 1] == '\n'))
        --last;
    return line.substr(first, last - first);
}

/**
 * std::getline with a byte cap. Returns false only at immediate EOF
 * (no line at all). @p complete reports whether the terminating
 * newline was seen — false means the stream ended (or was stopped)
 * mid-line. A line longer than @p cap (0 = unlimited) sets
 * @p oversized: the excess bytes are consumed and discarded, so
 * memory stays bounded at cap and the stream is positioned at the
 * next line, but @p line is then truncated garbage, not a request.
 */
bool
readLineBounded(std::istream &in, std::string &line, std::size_t cap,
                bool &complete, bool &oversized)
{
    using traits = std::char_traits<char>;
    line.clear();
    complete = false;
    oversized = false;
    std::streambuf *buf = in.rdbuf();
    int ch = buf->sbumpc();
    if (traits::eq_int_type(ch, traits::eof())) {
        in.setstate(std::ios::eofbit | std::ios::failbit);
        return false;
    }
    for (; !traits::eq_int_type(ch, traits::eof());
         ch = buf->sbumpc()) {
        if (ch == '\n') {
            complete = true;
            break;
        }
        if (cap != 0 && line.size() >= cap)
            oversized = true; // keep consuming, stop accumulating
        else
            line.push_back(traits::to_char_type(ch));
    }
    if (traits::eq_int_type(ch, traits::eof()))
        in.setstate(std::ios::eofbit);
    return true;
}

} // namespace

Server::Server(const ServeOptions &options)
    : options_(options),
      pool_(ThreadPool::effectiveJobs(options.jobs))
{
    // Attach (or detach) the daemon-wide store up front: an unusable
    // --plan-dir must fail at startup, not on the first request.
    driver::installPlanStore(options_.store);
}

Server::~Server()
{
    drain();
    PlanCache::instance().setStore(nullptr);
}

ServeCounters
Server::counters() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
Server::serve(std::istream &in, std::ostream &out)
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        out_ = &out;
    }
    std::string line;
    bool complete = false;
    bool oversized = false;
    while (!stop_.load() &&
           readLineBounded(in, line, options_.maxLineBytes, complete,
                           oversized)) {
        // A stop-flag EOF can surface mid-line; the unterminated
        // fragment is half a request the client never finished, not
        // input to answer (a final newline-less line from a client
        // that simply closed cleanly still parses: stop_ is unset).
        if (!complete && stop_.load())
            break;
        if (oversized) {
            handleOversizedLine();
            continue;
        }
        const std::string request = trimmed(line);
        if (!request.empty())
            handleLine(request);
    }
    drain();
    const std::lock_guard<std::mutex> lock(mutex_);
    out_ = nullptr;
}

void
Server::handleLine(const std::string &line)
{
    const ParsedLine parsed = parseRequestLine(line);
    const std::chrono::steady_clock::time_point admitted_at =
        std::chrono::steady_clock::now();

    std::unique_lock<std::mutex> lock(mutex_);
    // Backpressure: responses flush in admission order, so a slow
    // in-flight request makes later (even immediate) responses
    // buffer in ready_. Cap that buffer at the admission depth by
    // pausing the reader — a flood of malformed or rejected lines
    // then blocks on the socket instead of growing daemon memory.
    idle_.wait(lock, [this] {
        return ready_.size() <= options_.queueDepth;
    });
    const std::uint64_t seq = nextSeq_++;

    if (!parsed.ok) {
        ++counters_.invalid;
        bump("serve.invalid");
        respondImmediate(seq, errorResponse(parsed.request.id,
                                            parsed.error));
        return;
    }
    const Request &request = parsed.request;

    if (request.type == RequestType::kStatus) {
        // Status is a barrier: drain everything admitted before it so
        // its counters and cache statistics are deterministic.
        idle_.wait(lock, [this] { return outstanding_ == 0; });
        ready_.emplace(seq, statusTextLocked(request.id));
        flushLocked();
        return;
    }

    // Bounded admission: beyond queueDepth outstanding requests the
    // caller gets a structured rejection, never a silent drop.
    if (outstanding_ >= options_.queueDepth) {
        ++counters_.rejected;
        bump("serve.rejected");
        respondImmediate(
            seq, errorResponse(
                     request.id,
                     "queue full (" + std::to_string(outstanding_) +
                         " outstanding, depth " +
                         std::to_string(options_.queueDepth) +
                         "); retry after a response drains"));
        return;
    }

    if (request.type == RequestType::kPrepare) {
        if (options_.store.planDir.empty()) {
            ++counters_.admitted;
            ++counters_.failed;
            bump("serve.admitted");
            bump("serve.failed");
            respondImmediate(
                seq, errorResponse(request.id,
                                   "prepare needs a plan store: start "
                                   "graphr_serve with --plan-dir"));
            return;
        }
        ++counters_.admitted;
        ++outstanding_;
        bump("serve.admitted");
        perf::Registry::instance()
            .counter("serve.queue_depth_peak")
            .recordMax(outstanding_);
        driver::PrepareSpec spec = request.prepare;
        spec.store = options_.store;
        spec.jobs = 1; // request-level concurrency comes from the pool
        pool_.submit([this, seq, id = request.id, spec, admitted_at] {
            if (deadlineExpired(admitted_at)) {
                // Expired while queued: skip the work entirely (the
                // finishJob override writes the timeout response).
                finishJob(seq, id, std::string(), false, admitted_at);
                return;
            }
            try {
                finishJob(seq, id,
                          prepareResponse(id,
                                          driver::runPrepare(spec,
                                                             nullptr)),
                          true, admitted_at);
            } catch (const std::exception &err) {
                finishJob(seq, id, errorResponse(id, err.what()),
                          false, admitted_at);
            }
        });
        return;
    }

    // Run and sweep requests execute identically — one SweepSpec
    // task on the pool (a run is the single-combination case, which
    // parseRequestLine already enforced). One task per request keeps
    // every worker busy under bursts; responses still come back in
    // admission order via the seq-ordered flush, and a failing
    // request answers alone without touching its neighbours.
    ++counters_.admitted;
    ++outstanding_;
    bump("serve.admitted");
    perf::Registry::instance()
        .counter("serve.queue_depth_peak")
        .recordMax(outstanding_);
    driver::SweepSpec spec = request.sweep;
    spec.store = options_.store;
    spec.jobs = 1; // request-level concurrency comes from the pool
    const char *type =
        request.type == RequestType::kRun ? "run" : "sweep";
    pool_.submit([this, seq, id = request.id, spec, type,
                  admitted_at] {
        if (deadlineExpired(admitted_at)) {
            // Expired while queued: skip the work entirely (the
            // finishJob override writes the timeout response).
            finishJob(seq, id, std::string(), false, admitted_at);
            return;
        }
        try {
            finishJob(seq, id,
                      resultsResponse(id, type,
                                      driver::runSweep(spec, nullptr)),
                      true, admitted_at);
        } catch (const std::exception &err) {
            finishJob(seq, id, errorResponse(id, err.what()), false,
                      admitted_at);
        }
    });
}

void
Server::handleOversizedLine()
{
    std::unique_lock<std::mutex> lock(mutex_);
    // Same backpressure as handleLine: the error response still
    // occupies an admission-order slot in ready_.
    idle_.wait(lock, [this] {
        return ready_.size() <= options_.queueDepth;
    });
    const std::uint64_t seq = nextSeq_++;
    ++counters_.invalid;
    bump("serve.invalid");
    bump("serve.oversized");
    // The id would be somewhere in the discarded bytes; a null id is
    // the honest answer (request.hh renders empty as null).
    respondImmediate(
        seq,
        errorResponse("",
                      "request line exceeds the " +
                          std::to_string(options_.maxLineBytes) +
                          "-byte limit; split the request or raise "
                          "--max-line-bytes"));
}

bool
Server::deadlineExpired(
    std::chrono::steady_clock::time_point admitted) const
{
    if (options_.requestTimeoutMs == 0)
        return false;
    return std::chrono::steady_clock::now() - admitted >
           std::chrono::milliseconds(options_.requestTimeoutMs);
}

void
Server::finishJob(std::uint64_t seq, const std::string &id,
                  std::string text, bool ok,
                  std::chrono::steady_clock::time_point admitted)
{
    // Latency is recorded outside the lock (the histogram is atomic):
    // admission to response-ready, per answered work request.
    const auto elapsed =
        std::chrono::steady_clock::now() - admitted;
    requestLatency().record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
    // Deadline check at completion: whether the work was skipped
    // while queued or merely finished late, the caller sees the same
    // structured timeout in the request's admission slot. Any result
    // computed on the way is abandoned — but the warm state it built
    // (plan cache, store artifacts) is not.
    const bool timed_out = deadlineExpired(admitted);
    if (timed_out) {
        ok = false;
        text = errorResponse(
            id, "timeout: request exceeded --request-timeout-ms=" +
                    std::to_string(options_.requestTimeoutMs) +
                    " and was abandoned");
        bump("serve.timeouts");
    } else {
        bump(ok ? "serve.completed" : "serve.failed");
    }

    const std::lock_guard<std::mutex> lock(mutex_);
    if (timed_out)
        ++counters_.timedOut;
    else if (ok)
        ++counters_.completed;
    else
        ++counters_.failed;
    ready_.emplace(seq, std::move(text));
    --outstanding_;
    flushLocked();
    // Wakes the status barrier (outstanding_ may have hit zero) and
    // the reader's backpressure wait (ready_ may have drained).
    idle_.notify_all();
}

void
Server::respondImmediate(std::uint64_t seq, std::string text)
{
    ready_.emplace(seq, std::move(text));
    flushLocked();
}

void
Server::flushLocked()
{
    if (out_ == nullptr)
        return;
    for (auto it = ready_.find(nextFlush_); it != ready_.end();
         it = ready_.find(nextFlush_)) {
        // One line per response, flushed immediately so pipelined
        // clients see answers as they drain, not at EOF.
        (*out_) << it->second << '\n' << std::flush;
        ready_.erase(it);
        ++nextFlush_;
    }
}

void
Server::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return outstanding_ == 0; });
    flushLocked();
}

std::string
Server::statusTextLocked(const std::string &id) const
{
    std::ostringstream os;
    {
        JsonWriter w(os, /*indent=*/0);
        w.beginObject();
        w.field("id", id);
        w.field("ok", true);
        w.field("type", "status");
        w.key("served");
        w.beginObject();
        w.field("admitted", counters_.admitted);
        w.field("completed", counters_.completed);
        w.field("failed", counters_.failed);
        w.field("rejected", counters_.rejected);
        w.field("invalid", counters_.invalid);
        w.field("timed_out", counters_.timedOut);
        w.endObject();
        w.field("jobs",
                static_cast<std::uint64_t>(pool_.numThreads()));
        w.field("queue_depth",
                static_cast<std::uint64_t>(options_.queueDepth));
        w.field("request_timeout_ms",
                static_cast<std::uint64_t>(options_.requestTimeoutMs));

        // Cumulative per-request latency (work requests only; the
        // registry is process-wide, so a process hosting several
        // Server instances reports their union). The status barrier
        // has drained every prior request, so count is deterministic
        // for a single-server process; the times are
        // wall-clock and inherently not. Median is histogram-derived
        // (~3% bucket resolution); min/max/count are exact.
        const perf::LatencyHistogram &latency = requestLatency();
        w.key("latency");
        w.beginObject();
        w.field("count", latency.count());
        w.field("min_ms",
                static_cast<double>(latency.min()) / 1e6);
        w.field("median_ms",
                static_cast<double>(latency.quantile(0.5)) / 1e6);
        w.field("max_ms",
                static_cast<double>(latency.max()) / 1e6);
        w.endObject();

        const PlanCache::Stats plan = PlanCache::instance().stats();
        w.key("plan_cache");
        w.beginObject();
        w.field("size", static_cast<std::uint64_t>(
                            PlanCache::instance().size()));
        w.field("hits", plan.hits);
        w.field("misses", plan.misses);
        w.endObject();

        const driver::GoldenCacheStats golden =
            driver::goldenCacheStats();
        w.key("golden_cache");
        w.beginObject();
        w.field("hits", golden.hits);
        w.field("misses", golden.misses);
        w.endObject();

        w.key("store");
        if (const std::shared_ptr<PlanStore> store =
                PlanCache::instance().store()) {
            const PlanStore::Stats stats = store->stats();
            w.beginObject();
            w.field("dir", store->directory());
            w.field("load_hits", stats.loadHits);
            w.field("load_misses", stats.loadMisses);
            w.field("load_rejects", stats.loadRejects);
            w.field("saves", stats.saves);
            w.endObject();
        } else {
            w.null();
        }

        // Degradation telemetry: every transparently absorbed fault
        // (retries, store loads degraded to re-prepare, abandoned
        // requests, fired failpoints). All zero on a healthy
        // fault-free run, so these bytes stay deterministic for the
        // smoke/chaos greps; a nonzero value is the daemon saying "I
        // survived something".
        w.key("robustness");
        w.beginObject();
        for (const char *name :
             {"store.degraded_loads", "store.retries", "serve.retries",
              "serve.timeouts", "failpoint.fires"}) {
            w.field(name,
                    perf::Registry::instance().counter(name).value());
        }
        w.endObject();
        w.endObject();
    }
    return os.str();
}

} // namespace graphr::service
