#include "server.hh"

#include <algorithm>
#include <exception>
#include <optional>
#include <sstream>

#include "common/json.hh"
#include "driver/golden_cache.hh"
#include "graphr/engine/plan_cache.hh"
#include "perf/counters.hh"
#include "store/plan_store.hh"

namespace graphr::service
{

namespace
{

/** Cumulative admission->response latency of work requests. */
perf::LatencyHistogram &
requestLatency()
{
    static perf::LatencyHistogram &histogram =
        perf::Registry::instance().latency("serve.request_ns");
    return histogram;
}

/** Publish one served-request event into the perf registry. */
void
bump(std::string_view name)
{
    perf::Registry::instance().counter(name).add();
}

/** Strip surrounding whitespace (JSONL lines may end in \r). */
std::string
trimmed(const std::string &line)
{
    std::size_t first = 0;
    std::size_t last = line.size();
    while (first < last &&
           (line[first] == ' ' || line[first] == '\t'))
        ++first;
    while (last > first &&
           (line[last - 1] == ' ' || line[last - 1] == '\t' ||
            line[last - 1] == '\r' || line[last - 1] == '\n'))
        --last;
    return line.substr(first, last - first);
}

/**
 * std::getline with a byte cap. Returns false only at immediate EOF
 * (no line at all). @p complete reports whether the terminating
 * newline was seen — false means the stream ended (or was stopped)
 * mid-line. A line longer than @p cap (0 = unlimited) sets
 * @p oversized: the excess bytes are consumed and discarded, so
 * memory stays bounded at cap and the stream is positioned at the
 * next line, but @p line is then truncated garbage, not a request.
 */
bool
readLineBounded(std::istream &in, std::string &line, std::size_t cap,
                bool &complete, bool &oversized)
{
    using traits = std::char_traits<char>;
    line.clear();
    complete = false;
    oversized = false;
    std::streambuf *buf = in.rdbuf();
    int ch = buf->sbumpc();
    if (traits::eq_int_type(ch, traits::eof())) {
        in.setstate(std::ios::eofbit | std::ios::failbit);
        return false;
    }
    for (; !traits::eq_int_type(ch, traits::eof());
         ch = buf->sbumpc()) {
        if (ch == '\n') {
            complete = true;
            break;
        }
        if (cap != 0 && line.size() >= cap)
            oversized = true; // keep consuming, stop accumulating
        else
            line.push_back(traits::to_char_type(ch));
    }
    if (traits::eq_int_type(ch, traits::eof()))
        in.setstate(std::ios::eofbit);
    return true;
}

} // namespace

Server::Server(const ServeOptions &options)
    : options_(options),
      pool_(ThreadPool::effectiveJobs(options.jobs))
{
    // Attach (or detach) the daemon-wide store up front: an unusable
    // --plan-dir must fail at startup, not on the first request.
    driver::installPlanStore(options_.store);
}

Server::~Server()
{
    drainAll();
    PlanCache::instance().setStore(nullptr);
}

ServeCounters
Server::counters() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

Server::SessionPtr
Server::openSession(ResponseSink sink)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    SessionPtr session(new Session(nextSessionId_++, std::move(sink)));
    sessions_.push_back(session);
    ++totalSessions_;
    return session;
}

void
Server::closeSession(const SessionPtr &session)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!session->open_)
        return;
    session->open_ = false;
    session->sink_ = nullptr;
    sessions_.erase(
        std::remove(sessions_.begin(), sessions_.end(), session),
        sessions_.end());
}

void
Server::serve(std::istream &in, std::ostream &out)
{
    const SessionPtr session =
        openSession([&out](std::string &&line) {
            // One line per response, flushed immediately so pipelined
            // clients see answers as they drain, not at EOF.
            out << line << '\n' << std::flush;
        });
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        session->blockingReader_ = true;
    }
    std::string line;
    bool complete = false;
    bool oversized = false;
    while (!stop_.load() &&
           readLineBounded(in, line, options_.maxLineBytes, complete,
                           oversized)) {
        // A stop-flag EOF can surface mid-line; the unterminated
        // fragment is half a request the client never finished, not
        // input to answer (a final newline-less line from a client
        // that simply closed cleanly still parses: stop_ is unset).
        if (!complete && stop_.load())
            break;
        if (oversized) {
            handleOversizedLine(session);
            continue;
        }
        const std::string request = trimmed(line);
        if (!request.empty())
            handleLine(session, request);
    }
    drainSession(*session);
    closeSession(session);
}

void
Server::handleLine(const SessionPtr &session, const std::string &line)
{
    const ParsedLine parsed = parseRequestLine(line);
    const std::chrono::steady_clock::time_point admitted_at =
        std::chrono::steady_clock::now();

    std::unique_lock<std::mutex> lock(mutex_);
    Session &sess = *session;
    // Backpressure for blocking readers: responses flush in admission
    // order, so a slow in-flight request makes later (even immediate)
    // responses buffer in ready_. Cap that buffer at the admission
    // depth by pausing the reader — a flood of malformed or rejected
    // lines then blocks on the pipe instead of growing daemon memory.
    // Event-loop sessions skip this (the loop thread must never
    // sleep); they apply backpressure at the socket via
    // sessionBacklog() instead.
    if (sess.blockingReader_) {
        idle_.wait(lock, [this, &sess] {
            return sess.ready_.size() <= options_.queueDepth;
        });
    }
    const std::uint64_t seq = sess.nextSeq_++;

    if (!parsed.ok) {
        ++counters_.invalid;
        ++sess.counters_.invalid;
        bump("serve.invalid");
        respondImmediate(sess, seq,
                         errorResponse(parsed.request.id,
                                       parsed.error));
        return;
    }
    const Request &request = parsed.request;

    if (request.type == RequestType::kStatus) {
        // Status is a barrier: drain everything admitted before it
        // (on every session) so its counters and cache statistics are
        // deterministic.
        idle_.wait(lock, [this] { return outstanding_ == 0; });
        sess.ready_.emplace(seq, statusTextLocked(request.id));
        flushSessionLocked(sess);
        return;
    }

    // Bounded admission, twice: beyond queueDepth outstanding
    // requests across all sessions — or connQueueDepth on this one —
    // the caller gets a structured rejection, never a silent drop.
    // The per-connection quota is checked second so a greedy
    // connection's rejections name its own bound, not the global one.
    if (outstanding_ >= options_.queueDepth) {
        ++counters_.rejected;
        ++sess.counters_.rejected;
        bump("serve.rejected");
        respondImmediate(
            sess, seq,
            errorResponse(
                request.id,
                "queue full (" + std::to_string(outstanding_) +
                    " outstanding, depth " +
                    std::to_string(options_.queueDepth) +
                    "); retry after a response drains"));
        return;
    }
    if (options_.connQueueDepth != 0 &&
        sess.outstanding_ >= options_.connQueueDepth) {
        ++counters_.rejected;
        ++sess.counters_.rejected;
        bump("serve.rejected");
        respondImmediate(
            sess, seq,
            errorResponse(
                request.id,
                "connection queue full (" +
                    std::to_string(sess.outstanding_) +
                    " outstanding on this connection, depth " +
                    std::to_string(options_.connQueueDepth) +
                    "); retry after a response drains"));
        return;
    }

    // Tenant namespace resolution. A failure (daemon has no store, or
    // the tenant subdirectory is unusable) is an answered request —
    // admitted then failed — not an admission rejection: the caller
    // asked something well-formed that this daemon cannot honour.
    std::shared_ptr<PlanStore> tenantStore;
    if (!request.tenant.empty()) {
        try {
            tenantStore = tenantStoreLocked(request.tenant);
        } catch (const std::exception &err) {
            ++counters_.admitted;
            ++counters_.failed;
            ++sess.counters_.admitted;
            ++sess.counters_.failed;
            bump("serve.admitted");
            bump("serve.failed");
            respondImmediate(
                sess, seq, errorResponse(request.id, err.what()));
            return;
        }
    }

    if (request.type == RequestType::kPrepare) {
        if (options_.store.planDir.empty()) {
            ++counters_.admitted;
            ++counters_.failed;
            ++sess.counters_.admitted;
            ++sess.counters_.failed;
            bump("serve.admitted");
            bump("serve.failed");
            respondImmediate(
                sess, seq,
                errorResponse(request.id,
                              "prepare needs a plan store: start "
                              "graphr_serve with --plan-dir"));
            return;
        }
        ++counters_.admitted;
        ++sess.counters_.admitted;
        ++outstanding_;
        ++sess.outstanding_;
        bump("serve.admitted");
        perf::Registry::instance()
            .counter("serve.queue_depth_peak")
            .recordMax(outstanding_);
        driver::PrepareSpec spec = request.prepare;
        spec.store = options_.store;
        if (tenantStore)
            spec.store.planDir = tenantStore->directory();
        spec.jobs = 1; // request-level concurrency comes from the pool
        pool_.submit([this, session, seq, id = request.id, spec,
                      admitted_at, tenant = request.tenant,
                      tenantStore] {
            // Bind this worker thread to the tenant's store for the
            // whole request: PlanCache::get and installPlanStore both
            // honour the override, so nothing the request does can
            // touch another tenant's artifacts.
            std::optional<PlanCache::ScopedStoreOverride> scope;
            if (tenantStore)
                scope.emplace(tenantStore);
            if (deadlineExpired(admitted_at)) {
                // Expired while queued: skip the work entirely (the
                // finishJob override writes the timeout response).
                finishJob(session, seq, id, std::string(), false,
                          admitted_at, tenant);
                return;
            }
            try {
                finishJob(session, seq, id,
                          prepareResponse(id,
                                          driver::runPrepare(spec,
                                                             nullptr)),
                          true, admitted_at, tenant);
            } catch (const std::exception &err) {
                finishJob(session, seq, id,
                          errorResponse(id, err.what()), false,
                          admitted_at, tenant);
            }
        });
        return;
    }

    // Run and sweep requests execute identically — one SweepSpec
    // task on the pool (a run is the single-combination case, which
    // parseRequestLine already enforced). One task per request keeps
    // every worker busy under bursts; responses still come back in
    // admission order via the seq-ordered flush, and a failing
    // request answers alone without touching its neighbours.
    ++counters_.admitted;
    ++sess.counters_.admitted;
    ++outstanding_;
    ++sess.outstanding_;
    bump("serve.admitted");
    perf::Registry::instance()
        .counter("serve.queue_depth_peak")
        .recordMax(outstanding_);
    driver::SweepSpec spec = request.sweep;
    spec.store = options_.store;
    spec.jobs = 1; // request-level concurrency comes from the pool
    const char *type =
        request.type == RequestType::kRun ? "run" : "sweep";
    pool_.submit([this, session, seq, id = request.id, spec, type,
                  admitted_at, tenant = request.tenant, tenantStore] {
        std::optional<PlanCache::ScopedStoreOverride> scope;
        if (tenantStore)
            scope.emplace(tenantStore);
        if (deadlineExpired(admitted_at)) {
            // Expired while queued: skip the work entirely (the
            // finishJob override writes the timeout response).
            finishJob(session, seq, id, std::string(), false,
                      admitted_at, tenant);
            return;
        }
        try {
            finishJob(session, seq, id,
                      resultsResponse(id, type,
                                      driver::runSweep(spec, nullptr)),
                      true, admitted_at, tenant);
        } catch (const std::exception &err) {
            finishJob(session, seq, id, errorResponse(id, err.what()),
                      false, admitted_at, tenant);
        }
    });
}

void
Server::handleOversizedLine(const SessionPtr &session)
{
    std::unique_lock<std::mutex> lock(mutex_);
    Session &sess = *session;
    // Same backpressure as handleLine: the error response still
    // occupies an admission-order slot in ready_.
    if (sess.blockingReader_) {
        idle_.wait(lock, [this, &sess] {
            return sess.ready_.size() <= options_.queueDepth;
        });
    }
    const std::uint64_t seq = sess.nextSeq_++;
    ++counters_.invalid;
    ++sess.counters_.invalid;
    bump("serve.invalid");
    bump("serve.oversized");
    // The id would be somewhere in the discarded bytes; a null id is
    // the honest answer (request.hh renders empty as null).
    respondImmediate(
        sess, seq,
        errorResponse("",
                      "request line exceeds the " +
                          std::to_string(options_.maxLineBytes) +
                          "-byte limit; split the request or raise "
                          "--max-line-bytes"));
}

std::size_t
Server::sessionBacklog(const Session &session) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<std::size_t>(session.outstanding_) +
           session.ready_.size();
}

void
Server::drainSession(const Session &session)
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock,
               [&session] { return session.outstanding_ == 0; });
}

void
Server::drainAll()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return outstanding_ == 0; });
}

bool
Server::deadlineExpired(
    std::chrono::steady_clock::time_point admitted) const
{
    if (options_.requestTimeoutMs == 0)
        return false;
    return std::chrono::steady_clock::now() - admitted >
           std::chrono::milliseconds(options_.requestTimeoutMs);
}

std::shared_ptr<PlanStore>
Server::tenantStoreLocked(const std::string &tenant)
{
    if (options_.store.planDir.empty()) {
        throw driver::DriverError(
            "tenant namespaces need a plan store: start graphr_serve "
            "with --plan-dir");
    }
    const auto it = tenantStores_.find(tenant);
    if (it != tenantStores_.end())
        return it->second;
    // The name was validated at parse time ([A-Za-z0-9_-] only), so
    // this path cannot escape the daemon's plan directory. The store
    // stays attached for the server's lifetime — its statistics are
    // cumulative, like the daemon-wide store's.
    std::shared_ptr<PlanStore> store;
    try {
        store = std::make_shared<PlanStore>(options_.store.planDir +
                                            "/" + tenant);
    } catch (const StoreError &err) {
        throw driver::DriverError(
            std::string("cannot use tenant namespace '") + tenant +
            "': " + err.what());
    }
    tenantStores_.emplace(tenant, store);
    return store;
}

void
Server::finishJob(const SessionPtr &session, std::uint64_t seq,
                  const std::string &id, std::string text, bool ok,
                  std::chrono::steady_clock::time_point admitted,
                  const std::string &tenant)
{
    // Latency is recorded outside the lock (the histogram is atomic):
    // admission to response-ready, per answered work request.
    const auto elapsed =
        std::chrono::steady_clock::now() - admitted;
    requestLatency().record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
    // Deadline check at completion: whether the work was skipped
    // while queued or merely finished late, the caller sees the same
    // structured timeout in the request's admission slot. Any result
    // computed on the way is abandoned — but the warm state it built
    // (plan cache, store artifacts) is not.
    const bool timed_out = deadlineExpired(admitted);
    if (timed_out) {
        ok = false;
        text = errorResponse(
            id, "timeout: request exceeded --request-timeout-ms=" +
                    std::to_string(options_.requestTimeoutMs) +
                    " and was abandoned");
        bump("serve.timeouts");
    } else {
        bump(ok ? "serve.completed" : "serve.failed");
    }

    const std::lock_guard<std::mutex> lock(mutex_);
    Session &sess = *session;
    if (timed_out) {
        ++counters_.timedOut;
        ++sess.counters_.timedOut;
    } else if (ok) {
        ++counters_.completed;
        ++sess.counters_.completed;
    } else {
        ++counters_.failed;
        ++sess.counters_.failed;
    }
    // Every answered work request counts as served for its tenant
    // (completed, failed or timed out — the tenant's namespace did
    // the work either way).
    if (!tenant.empty())
        ++tenantServed_[tenant];
    sess.ready_.emplace(seq, std::move(text));
    --outstanding_;
    --sess.outstanding_;
    flushSessionLocked(sess);
    // Wakes the status barrier (outstanding_ may have hit zero), the
    // drain waits and the blocking readers' backpressure wait (ready_
    // may have drained).
    idle_.notify_all();
}

void
Server::respondImmediate(Session &session, std::uint64_t seq,
                         std::string text)
{
    session.ready_.emplace(seq, std::move(text));
    flushSessionLocked(session);
}

void
Server::flushSessionLocked(Session &session)
{
    for (auto it = session.ready_.find(session.nextFlush_);
         it != session.ready_.end();
         it = session.ready_.find(session.nextFlush_)) {
        // A closed session's responses are computed and counted, then
        // discarded — the flush cursor still advances so drains
        // terminate.
        if (session.sink_)
            session.sink_(std::move(it->second));
        session.ready_.erase(it);
        ++session.nextFlush_;
    }
}

std::string
Server::statusTextLocked(const std::string &id) const
{
    std::ostringstream os;
    {
        JsonWriter w(os, /*indent=*/0);
        w.beginObject();
        w.field("id", id);
        w.field("ok", true);
        w.field("type", "status");
        w.key("served");
        w.beginObject();
        w.field("admitted", counters_.admitted);
        w.field("completed", counters_.completed);
        w.field("failed", counters_.failed);
        w.field("rejected", counters_.rejected);
        w.field("invalid", counters_.invalid);
        w.field("timed_out", counters_.timedOut);
        w.endObject();

        // The connection layer: sessions currently open, in open
        // order (ids are monotonic, so this is also conn-id order).
        // Deterministic fault-free: a lone stdin client always reads
        // active=1, total_accepted=1 and its own counters.
        w.key("connections");
        w.beginObject();
        w.field("active",
                static_cast<std::uint64_t>(sessions_.size()));
        w.field("total_accepted", totalSessions_);
        w.key("per_connection");
        w.beginArray();
        for (const SessionPtr &s : sessions_) {
            w.beginObject();
            w.field("conn", s->id_);
            w.field("admitted", s->counters_.admitted);
            w.field("rejected", s->counters_.rejected);
            w.field("completed", s->counters_.completed);
            w.field("failed", s->counters_.failed);
            w.endObject();
        }
        w.endArray();
        w.endObject();

        // Per-tenant answered-request counters, name-sorted (the
        // backing map is ordered). Empty until a request carries a
        // "tenant", so fault-free single-tenant runs stay byte-stable.
        w.key("tenants");
        w.beginObject();
        for (const auto &[name, served] : tenantServed_) {
            w.key(name);
            w.beginObject();
            w.field("served", served);
            w.endObject();
        }
        w.endObject();

        w.field("jobs",
                static_cast<std::uint64_t>(pool_.numThreads()));
        w.field("queue_depth",
                static_cast<std::uint64_t>(options_.queueDepth));
        w.field("conn_queue_depth",
                static_cast<std::uint64_t>(options_.connQueueDepth));
        w.field("request_timeout_ms",
                static_cast<std::uint64_t>(options_.requestTimeoutMs));

        // Cumulative per-request latency (work requests only; the
        // registry is process-wide, so a process hosting several
        // Server instances reports their union). The status barrier
        // has drained every prior request, so count is deterministic
        // for a single-server process; the times are
        // wall-clock and inherently not. Median is histogram-derived
        // (~3% bucket resolution); min/max/count are exact.
        const perf::LatencyHistogram &latency = requestLatency();
        w.key("latency");
        w.beginObject();
        w.field("count", latency.count());
        w.field("min_ms",
                static_cast<double>(latency.min()) / 1e6);
        w.field("median_ms",
                static_cast<double>(latency.quantile(0.5)) / 1e6);
        w.field("max_ms",
                static_cast<double>(latency.max()) / 1e6);
        w.endObject();

        const PlanCache::Stats plan = PlanCache::instance().stats();
        w.key("plan_cache");
        w.beginObject();
        w.field("size", static_cast<std::uint64_t>(
                            PlanCache::instance().size()));
        w.field("hits", plan.hits);
        w.field("misses", plan.misses);
        w.endObject();

        const driver::GoldenCacheStats golden =
            driver::goldenCacheStats();
        w.key("golden_cache");
        w.beginObject();
        w.field("hits", golden.hits);
        w.field("misses", golden.misses);
        w.endObject();

        w.key("store");
        if (const std::shared_ptr<PlanStore> store =
                PlanCache::instance().store()) {
            const PlanStore::Stats stats = store->stats();
            w.beginObject();
            w.field("dir", store->directory());
            w.field("load_hits", stats.loadHits);
            w.field("load_misses", stats.loadMisses);
            w.field("load_rejects", stats.loadRejects);
            w.field("saves", stats.saves);
            w.endObject();
        } else {
            w.null();
        }

        // Degradation telemetry: every transparently absorbed fault
        // (retries, store loads degraded to re-prepare, abandoned
        // requests, fired failpoints). All zero on a healthy
        // fault-free run, so these bytes stay deterministic for the
        // smoke/chaos greps; a nonzero value is the daemon saying "I
        // survived something".
        w.key("robustness");
        w.beginObject();
        for (const char *name :
             {"store.degraded_loads", "store.retries", "serve.retries",
              "serve.timeouts", "failpoint.fires"}) {
            w.field(name,
                    perf::Registry::instance().counter(name).value());
        }
        w.endObject();
        w.endObject();
    }
    return os.str();
}

} // namespace graphr::service
