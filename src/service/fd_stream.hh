/**
 * @file
 * iostream adapters over POSIX file descriptors.
 *
 * The serving core (server.hh) speaks std::istream/std::ostream so it
 * is testable with stringstreams; graphr_serve wraps stdin and
 * accepted sockets in these buffers to reuse the same session loop.
 * With a stop flag attached, reads poll with a bounded timeout and
 * re-check the flag each tick, so a SIGTERM surfaces as EOF within
 * half a second even when it lands in the unwinnable window between
 * a flag check and the blocking syscall — EOF being exactly the
 * server's graceful-drain path. Writes retry short writes and EINTR.
 */

#ifndef GRAPHR_SERVICE_FD_STREAM_HH
#define GRAPHR_SERVICE_FD_STREAM_HH

#include <array>
#include <atomic>
#include <streambuf>

namespace graphr::service
{

/**
 * Poll @p fd until readable; false on EOF-worthy conditions or once
 * @p stop (optional) is set — re-checked every 500 ms, so a signal
 * racing the blocking syscall cannot wedge the caller.
 */
bool waitReadable(int fd, const std::atomic<bool> *stop);

/** Read-side streambuf over a file descriptor (not owned). */
class FdInBuf : public std::streambuf
{
  public:
    /**
     * @param fd    descriptor to read from (caller closes it)
     * @param stop  optional flag; when set, the next refill reports
     *              EOF instead of blocking again
     */
    explicit FdInBuf(int fd, const std::atomic<bool> *stop = nullptr)
        : fd_(fd), stop_(stop)
    {
    }

  protected:
    int_type underflow() override;

  private:
    int fd_;
    const std::atomic<bool> *stop_;
    std::array<char, 4096> buffer_;
};

/**
 * Poll @p fd until writable. With @p stop set, succeeds only while
 * the fd is instantly writable: a draining client still receives
 * every computed response during shutdown, but a client that stopped
 * reading cannot park write() forever and wedge the graceful drain.
 */
bool waitWritable(int fd, const std::atomic<bool> *stop);

/** Write-side streambuf over a file descriptor (not owned). */
class FdOutBuf : public std::streambuf
{
  public:
    /**
     * @param fd    descriptor to write to (caller closes it)
     * @param stop  optional flag; once set, writes succeed only while
     *              the fd stays instantly writable — a blocked write
     *              gives up (the stream fails) instead of waiting on
     *              a client that no longer drains
     */
    explicit FdOutBuf(int fd, const std::atomic<bool> *stop = nullptr)
        : fd_(fd), stop_(stop)
    {
    }

  protected:
    int_type overflow(int_type c) override;
    int sync() override;
    std::streamsize xsputn(const char *s, std::streamsize n) override;

  private:
    /** write() everything, retrying short writes and EINTR. */
    bool writeAll(const char *data, std::streamsize n);

    int fd_;
    const std::atomic<bool> *stop_;
};

} // namespace graphr::service

#endif // GRAPHR_SERVICE_FD_STREAM_HH
