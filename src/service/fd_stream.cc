#include "fd_stream.hh"

#include <cerrno>
#include <poll.h>
#include <unistd.h>

#include "common/failpoint.hh"
#include "perf/counters.hh"

namespace graphr::service
{

namespace
{

/** One transparently retried transient fault (EINTR/EAGAIN/short
 *  transfer) on the serve fd paths. */
void
noteServeRetry()
{
    static perf::Counter &retries =
        perf::Registry::instance().counter("serve.retries");
    retries.add();
}

/**
 * The one poll loop both directions share. A signal can land between
 * a stop-flag check and a blocking syscall — the interrupt is then
 * consumed before the syscall starts and EINTR alone would never
 * fire; polling with a bounded timeout closes that race (the flag is
 * re-checked at least twice a second no matter how the signal
 * interleaves). @p drainOnStop selects the stop semantics: false
 * gives up the moment the flag is set (reads: stop means no more
 * input is wanted), true keeps succeeding while the fd is instantly
 * ready (writes: responses the server already computed still flush
 * to a client that is draining; only a blocked fd is abandoned).
 */
bool
waitFd(int fd, short events, const std::atomic<bool> *stop,
       bool drainOnStop)
{
    for (;;) {
        const bool stopping = stop != nullptr && stop->load();
        if (stopping && !drainOnStop)
            return false;
        pollfd waiter = {};
        waiter.fd = fd;
        waiter.events = events;
        const int timeout =
            stopping ? 0 : (stop != nullptr ? 500 : -1);
        const int ready = ::poll(&waiter, 1, timeout);
        if (ready > 0)
            return true;
        if (ready == 0) {
            if (stopping)
                return false; // stopping and the fd is not ready now
            continue;
        }
        if (errno == EINTR)
            continue; // signal: re-check the stop flag
        return false;
    }
}

} // namespace

bool
waitReadable(int fd, const std::atomic<bool> *stop)
{
    return waitFd(fd, POLLIN, stop, /*drainOnStop=*/false);
}

FdInBuf::int_type
FdInBuf::underflow()
{
    if (gptr() < egptr())
        return traits_type::to_int_type(*gptr());
    for (;;) {
        if (!waitReadable(fd_, stop_))
            return traits_type::eof();
        // A permanent read error (injectable: serve.read.eio) ends
        // the session as a clean EOF — the server drains and the
        // daemon survives to accept the next connection.
        if (GRAPHR_FAILPOINT("serve.read.eio"))
            return traits_type::eof();
        if (GRAPHR_FAILPOINT("serve.read.eintr")) {
            noteServeRetry();
            continue; // as if a signal interrupted the read
        }
        const ssize_t n = ::read(fd_, buffer_.data(), buffer_.size());
        if (n > 0) {
            setg(buffer_.data(), buffer_.data(), buffer_.data() + n);
            return traits_type::to_int_type(*gptr());
        }
        if (n == 0)
            return traits_type::eof();
        if (errno == EINTR || errno == EAGAIN) {
            noteServeRetry();
            continue; // the next iteration re-checks the stop flag
        }
        return traits_type::eof();
    }
}

bool
waitWritable(int fd, const std::atomic<bool> *stop)
{
    // A client that stops draining its pipe/socket would otherwise
    // park write() forever (observed holding the server mutex),
    // wedging the SIGTERM drain; but a stop with a *live* client
    // must still flush every computed response — hence drainOnStop.
    return waitFd(fd, POLLOUT, stop, /*drainOnStop=*/true);
}

bool
FdOutBuf::writeAll(const char *data, std::streamsize n)
{
    while (n > 0) {
        if (!waitWritable(fd_, stop_))
            return false;
        // A permanent write error (injectable: serve.write.eio)
        // fails the stream; the server abandons this client's
        // remaining responses but the daemon itself stays up.
        if (GRAPHR_FAILPOINT("serve.write.eio"))
            return false;
        std::streamsize len = n;
        if (len > 1 && GRAPHR_FAILPOINT("serve.write.short")) {
            len = 1; // deterministic short write; the loop resumes
            noteServeRetry();
        }
        const ssize_t written =
            ::write(fd_, data, static_cast<std::size_t>(len));
        if (written > 0) {
            data += written;
            n -= written;
            continue;
        }
        if (written < 0 && (errno == EINTR || errno == EAGAIN)) {
            noteServeRetry();
            continue;
        }
        return false;
    }
    return true;
}

FdOutBuf::int_type
FdOutBuf::overflow(int_type c)
{
    if (traits_type::eq_int_type(c, traits_type::eof()))
        return traits_type::not_eof(c);
    const char byte = traits_type::to_char_type(c);
    if (!writeAll(&byte, 1))
        return traits_type::eof();
    return c;
}

std::streamsize
FdOutBuf::xsputn(const char *s, std::streamsize n)
{
    return writeAll(s, n) ? n : 0;
}

int
FdOutBuf::sync()
{
    return 0; // unbuffered: every byte already went to the fd
}

} // namespace graphr::service
