#include "request.hh"

#include <sstream>

#include "common/json.hh"
#include "common/json_reader.hh"
#include "driver/run_result.hh"
#include "driver/spec_json.hh"

namespace graphr::service
{

namespace
{

/** Members the request envelope owns; spec parsing skips them. */
const std::vector<std::string> kEnvelopeKeys = {"id", "type",
                                                "tenant"};

} // namespace

bool
validTenantName(const std::string &name)
{
    if (name.empty() || name.size() > 64)
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

ParsedLine
parseRequestLine(const std::string &line)
{
    ParsedLine parsed;
    JsonValue root;
    try {
        root = JsonValue::parse(line);
    } catch (const JsonParseError &err) {
        parsed.error = err.what();
        return parsed;
    }
    if (!root.isObject()) {
        parsed.error = std::string("a request must be a JSON object, "
                                   "got ") +
                       root.typeName();
        return parsed;
    }

    // Recover the id first so every later failure can echo it.
    const JsonValue *id = root.find("id");
    if (id == nullptr) {
        parsed.error = "request needs a string 'id'";
        return parsed;
    }
    if (!id->isString() || id->asString().empty()) {
        parsed.error = "'id' must be a non-empty string";
        return parsed;
    }
    parsed.request.id = id->asString();

    const JsonValue *type = root.find("type");
    if (type == nullptr || !type->isString()) {
        parsed.error = "request needs a string 'type' "
                       "(run, sweep, prepare, status)";
        return parsed;
    }
    const std::string &name = type->asString();

    // The tenant namespace rides on work requests only (status
    // reports every tenant, so a tenant-scoped status would lie).
    if (const JsonValue *tenant = root.find("tenant");
        tenant != nullptr) {
        if (name == "status") {
            parsed.error =
                "status is not tenant-scoped (it reports every "
                "tenant); drop the 'tenant' member";
            return parsed;
        }
        if (!tenant->isString() ||
            !validTenantName(tenant->asString())) {
            parsed.error =
                "'tenant' must be 1-64 characters from [A-Za-z0-9_-] "
                "(it names the <plan-dir> subdirectory)";
            return parsed;
        }
        parsed.request.tenant = tenant->asString();
    }

    try {
        if (name == "run") {
            parsed.request.type = RequestType::kRun;
            parsed.request.sweep = driver::sweepSpecFromJson(
                root, /*single=*/true, kEnvelopeKeys);
        } else if (name == "sweep") {
            parsed.request.type = RequestType::kSweep;
            parsed.request.sweep = driver::sweepSpecFromJson(
                root, /*single=*/false, kEnvelopeKeys);
        } else if (name == "prepare") {
            parsed.request.type = RequestType::kPrepare;
            parsed.request.prepare =
                driver::prepareSpecFromJson(root, kEnvelopeKeys);
        } else if (name == "status") {
            parsed.request.type = RequestType::kStatus;
            driver::rejectUnknownMembers(root, kEnvelopeKeys,
                                         "status request");
        } else {
            parsed.error = "unknown request type '" + name +
                           "' (known: run, sweep, prepare, status)";
            return parsed;
        }
    } catch (const driver::DriverError &err) {
        parsed.error = err.what();
        return parsed;
    }
    parsed.ok = true;
    return parsed;
}

std::string
errorResponse(const std::string &id, const std::string &error)
{
    std::ostringstream os;
    {
        JsonWriter w(os, /*indent=*/0);
        w.beginObject();
        if (id.empty())
            w.key("id").null();
        else
            w.field("id", id);
        w.field("ok", false);
        w.field("error", error);
        w.endObject();
    }
    return os.str();
}

std::string
resultsResponse(const std::string &id, const char *type,
                const std::vector<driver::RunResult> &results)
{
    std::ostringstream os;
    {
        JsonWriter w(os, /*indent=*/0);
        w.beginObject();
        w.field("id", id);
        w.field("ok", true);
        w.field("type", type);
        w.key("results");
        w.beginArray();
        for (const driver::RunResult &r : results)
            r.toJson(w);
        w.endArray();
        w.endObject();
    }
    return os.str();
}

std::string
prepareResponse(const std::string &id,
                const std::vector<driver::PrepareResult> &prepared)
{
    std::ostringstream os;
    {
        JsonWriter w(os, /*indent=*/0);
        w.beginObject();
        w.field("id", id);
        w.field("ok", true);
        w.field("type", "prepare");
        w.key("prepared");
        w.beginArray();
        for (const driver::PrepareResult &p : prepared) {
            w.beginObject();
            w.field("dataset", p.dataset);
            w.field("variant", p.variant);
            w.field("edges", p.edges);
            w.field("tiles", p.tiles);
            w.field("artifact", p.file);
            w.field("reused", p.reused);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    return os.str();
}

} // namespace graphr::service
