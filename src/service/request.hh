/**
 * @file
 * The graphr_serve request/response grammar.
 *
 * One request is one JSON object on one line (JSONL). Every request
 * carries a caller-chosen "id" (a non-empty string) and a "type";
 * every response is one line echoing that id, so callers can pipeline
 * requests and match answers even though the daemon executes them
 * concurrently. The four request types:
 *
 *   {"id": "r1", "type": "run", "workload": "pagerank",
 *    "backend": "graphr", "dataset": "wiki-vote", "scale": 4}
 *   {"id": "s1", "type": "sweep", "workloads": ["all"],
 *    "backends": ["graphr", "outofcore"], "datasets": ["wiki-vote"]}
 *   {"id": "p1", "type": "prepare", "datasets": ["wiki-vote"]}
 *   {"id": "q1", "type": "status"}
 *
 * Responses are {"id": ..., "ok": true, "type": ..., ...payload} or
 * {"id": ..., "ok": false, "error": "..."}. Parsing is total: any
 * malformed line maps onto a structured error response (never a crash
 * or a silent drop), with the id echoed whenever it was recoverable.
 *
 * Spec members (workload/backend/dataset/params/scale/seed/nodes/
 * functional) are shared with the CLI flag surface via
 * driver/spec_json.hh; docs/CLI.md documents both side by side.
 */

#ifndef GRAPHR_SERVICE_REQUEST_HH
#define GRAPHR_SERVICE_REQUEST_HH

#include <string>
#include <vector>

#include "driver/driver.hh"
#include "driver/prepare.hh"

namespace graphr::service
{

/** The request types graphr_serve understands. */
enum class RequestType
{
    kRun,     ///< one workload x backend x dataset combination
    kSweep,   ///< a cross product of name lists
    kPrepare, ///< offline preprocessing into the daemon's plan store
    kStatus,  ///< cache occupancy + served-request counters
};

/** One parsed, validated request. */
struct Request
{
    std::string id;
    RequestType type = RequestType::kRun;
    /**
     * Optional tenant namespace for work requests: plan artifacts
     * live under `<plan-dir>/<tenant>/`. Validated by
     * validTenantName() at parse time, so a stored tenant can never
     * escape the plan directory. Empty = the daemon-wide namespace.
     */
    std::string tenant;
    /** Run/sweep payload (datasets list drives batching). */
    driver::SweepSpec sweep;
    /** Prepare payload (store/jobs are filled in by the server). */
    driver::PrepareSpec prepare;
};

/**
 * Whether @p name is a safe tenant namespace: 1-64 characters from
 * [A-Za-z0-9_-] only. No dots and no separators means no ".."
 * traversal, no absolute paths and no hidden files by construction.
 */
bool validTenantName(const std::string &name);

/** Outcome of parsing one JSONL line. */
struct ParsedLine
{
    /** False: `error` holds the structured failure, `request.id`
     *  the recovered id ("" when even the id was unreadable). */
    bool ok = false;
    Request request;
    std::string error;
};

/**
 * Parse and validate one request line. Never throws: malformed JSON,
 * a missing/empty id, an unknown type, unknown spec members and
 * unknown workload/backend names all come back as `ok == false` with
 * an actionable `error` message.
 */
ParsedLine parseRequestLine(const std::string &line);

/** {"id":...,"ok":false,"error":...} — one line, no trailing \n. */
std::string errorResponse(const std::string &id,
                          const std::string &error);

/**
 * {"id":...,"ok":true,"type":...,"results":[...]} — the compact
 * single-line form of driver::writeResultsJson, one RunResult object
 * per executed combination in spec order. Byte-identical results
 * produce byte-identical responses, which is what the serve tests
 * and CI smoke assert.
 */
std::string
resultsResponse(const std::string &id, const char *type,
                const std::vector<driver::RunResult> &results);

/** {"id":...,"ok":true,"type":"prepare","prepared":[...]}. */
std::string
prepareResponse(const std::string &id,
                const std::vector<driver::PrepareResult> &prepared);

} // namespace graphr::service

#endif // GRAPHR_SERVICE_REQUEST_HH
