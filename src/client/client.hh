/**
 * @file
 * Blocking JSONL client for graphr_serve's TCP mode.
 *
 * A Client is one connection: connect in the constructor, sendLine()
 * requests, recvLine() the admission-ordered responses. The read side
 * is buffered (a recv can return several responses, or half of one),
 * and an optional receive timeout turns a wedged daemon into a
 * ClientError instead of a hang. Deliberately dependency-light — it
 * links only libc — so anything in the tree (tests, the load
 * generator, the perf suite) can drive a daemon without pulling the
 * service layer in.
 *
 * Pipelining is the caller's choice: sendLine() N times then
 * recvLine() N times works, because the daemon answers each
 * connection in that connection's admission order.
 */

#ifndef GRAPHR_CLIENT_CLIENT_HH
#define GRAPHR_CLIENT_CLIENT_HH

#include <cstddef>
#include <stdexcept>
#include <string>

namespace graphr::client
{

/** Connection, send or receive failure (message says which). */
class ClientError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One blocking JSONL connection to a graphr_serve daemon. */
class Client
{
  public:
    /** Connect to 127.0.0.1:@p port; throws ClientError on refusal. */
    explicit Client(int port);

    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /**
     * Bound every subsequent recvLine() to @p ms milliseconds
     * (0 = wait forever, the default). Expiry throws ClientError.
     */
    void setRecvTimeoutMs(int ms);

    /** Send one request line (the trailing newline is added). */
    void sendLine(const std::string &line);

    /**
     * The next response line (newline stripped). Throws ClientError
     * on EOF with no buffered line, on a receive timeout, or on a
     * socket error.
     */
    std::string recvLine();

    /** sendLine + recvLine — the one-shot convenience. */
    std::string request(const std::string &line);

    /** Half-close the write side: the daemon sees EOF, finishes the
     *  in-flight requests, answers them, then closes. */
    void shutdownWrite();

  private:
    int fd_ = -1;
    std::string buffer_;   ///< received, not yet returned
    std::size_t start_ = 0; ///< first unconsumed byte in buffer_
};

} // namespace graphr::client

#endif // GRAPHR_CLIENT_CLIENT_HH
