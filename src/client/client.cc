#include "client.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace graphr::client
{

Client::Client(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw ClientError("cannot create socket: " +
                          std::string(std::strerror(errno)));
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const std::string what = std::strerror(errno);
        ::close(fd);
        throw ClientError("cannot connect to 127.0.0.1:" +
                          std::to_string(port) + ": " + what);
    }
    fd_ = fd;
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

Client::Client(Client &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)),
      start_(std::exchange(other.start_, 0))
{
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
        buffer_ = std::move(other.buffer_);
        start_ = std::exchange(other.start_, 0);
    }
    return *this;
}

void
Client::setRecvTimeoutMs(int ms)
{
    timeval tv = {};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void
Client::sendLine(const std::string &line)
{
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n =
            ::send(fd_, framed.data() + off, framed.size() - off,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ClientError("send failed: " +
                              std::string(std::strerror(errno)));
        }
        off += static_cast<std::size_t>(n);
    }
}

std::string
Client::recvLine()
{
    for (;;) {
        const std::size_t nl = buffer_.find('\n', start_);
        if (nl != std::string::npos) {
            std::string line = buffer_.substr(start_, nl - start_);
            start_ = nl + 1;
            // Compact once the consumed prefix dominates, so a
            // long-lived connection does not accrete every response
            // it ever read.
            if (start_ > 4096 && start_ * 2 > buffer_.size()) {
                buffer_.erase(0, start_);
                start_ = 0;
            }
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return line;
        }
        char chunk[16 * 1024];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            throw ClientError(
                "connection closed by daemon before a full "
                "response line");
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            throw ClientError("receive timed out");
        throw ClientError("recv failed: " +
                          std::string(std::strerror(errno)));
    }
}

std::string
Client::request(const std::string &line)
{
    sendLine(line);
    return recvLine();
}

void
Client::shutdownWrite()
{
    ::shutdown(fd_, SHUT_WR);
}

} // namespace graphr::client
