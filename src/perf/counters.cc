#include "counters.hh"

#include <cmath>

namespace graphr::perf
{

std::uint64_t
LatencyHistogram::bucketValue(std::size_t index)
{
    if (index < kMinor)
        return static_cast<std::uint64_t>(index);
    const int major =
        static_cast<int>(index / kMinor) + kMinorBits - 1;
    const std::uint64_t minor = index % kMinor;
    const std::uint64_t low = (std::uint64_t{1} << major) |
                              (minor << (major - kMinorBits));
    return low + (std::uint64_t{1} << (major - kMinorBits)) / 2;
}

std::uint64_t
LatencyHistogram::quantile(double q) const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q >= 1.0)
        return max(); // the exact recorded extreme, not a bucket mid
    // Rank of the q-th sample, 1-based and rounded up (q=0 -> first
    // sample; n=5, q=0.5 -> rank 3, the true median).
    const auto rank =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
    const std::uint64_t target = rank == 0 ? 1 : rank;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += buckets_[i].load(std::memory_order_relaxed);
        if (seen >= target) {
            const std::uint64_t v = bucketValue(i);
            // Clamp: the extreme buckets' representatives must not
            // over/undershoot the exact recorded extremes.
            return std::min(std::max(v, min()), max());
        }
    }
    return max();
}

void
LatencyHistogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<std::uint64_t>::max(),
               std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(std::string_view name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    if (it != counters_.end())
        return it->second;
    return counters_[std::string(name)];
}

LatencyHistogram &
Registry::latency(std::string_view name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = latencies_.find(name);
    if (it != latencies_.end())
        return it->second;
    return latencies_[std::string(name)];
}

std::map<std::string, std::uint64_t>
Registry::counterValues() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, counter] : counters_)
        out.emplace(name, counter.value());
    return out;
}

void
Registry::resetAll()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter.reset();
    for (auto &[name, histogram] : latencies_)
        histogram.reset();
}

} // namespace graphr::perf
