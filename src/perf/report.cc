#include "report.hh"

#include <fstream>
#include <sstream>
#include <thread>

#include "common/json.hh"
#include "common/json_reader.hh"
#include "common/table.hh"

namespace graphr::perf
{

BenchEnvironment
BenchEnvironment::current()
{
    BenchEnvironment env;
#if defined(__clang__)
    env.compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
    env.compiler = "gcc " __VERSION__;
#else
    env.compiler = "unknown";
#endif
#ifdef NDEBUG
    env.buildType = "release";
#else
    env.buildType = "debug";
#endif
    env.hardwareThreads = std::thread::hardware_concurrency();
    return env;
}

const BenchMetric *
BenchReport::find(const std::string &name) const
{
    for (const BenchMetric &m : metrics) {
        if (m.name == name)
            return &m;
    }
    return nullptr;
}

void
writeBenchJson(std::ostream &os, const BenchReport &report)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "graphr-bench");
    w.field("schema_version",
            static_cast<std::int64_t>(BenchReport::kSchemaVersion));
    w.field("suite", report.suite);

    w.key("environment");
    w.beginObject();
    w.field("compiler", report.environment.compiler);
    w.field("build_type", report.environment.buildType);
    w.field("hardware_threads", report.environment.hardwareThreads);
    w.endObject();

    w.key("metrics");
    w.beginArray();
    for (const BenchMetric &m : report.metrics) {
        w.beginObject();
        w.field("name", m.name);
        w.field("unit", m.unit);
        w.field("value", m.value);
        w.field("gated", m.gated);
        w.field("better", m.better);
        if (m.reps > 0) {
            w.key("repetition");
            w.beginObject();
            w.field("warmups", static_cast<std::uint64_t>(m.warmups));
            w.field("reps", static_cast<std::uint64_t>(m.reps));
            w.field("min", m.min);
            w.field("median", m.medianSeconds);
            w.field("iqr", m.iqrSeconds);
            w.key("samples");
            w.beginArray();
            for (const double s : m.samples)
                w.value(s);
            w.endArray();
            w.endObject();
        }
        if (!m.counters.empty()) {
            w.key("counters");
            w.beginObject();
            for (const auto &[name, value] : m.counters)
                w.field(name, value);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

namespace
{

/** Member that must exist, with a path-y error otherwise. */
const JsonValue &
required(const JsonValue &object, const char *key)
{
    const JsonValue *v = object.find(key);
    if (v == nullptr)
        throw PerfError(std::string("BENCH json: missing \"") + key +
                        "\"");
    return *v;
}

} // namespace

BenchReport
parseBenchReport(const JsonValue &root)
{
    if (!root.isObject())
        throw PerfError("BENCH json: top level must be an object");
    const std::string &schema = required(root, "schema").asString();
    if (schema != "graphr-bench")
        throw PerfError("BENCH json: unknown schema \"" + schema +
                        "\" (expected \"graphr-bench\")");
    const std::uint64_t version =
        required(root, "schema_version").asU64();
    if (version != BenchReport::kSchemaVersion)
        throw PerfError(
            "BENCH json: schema_version " + std::to_string(version) +
            " unsupported (this build reads version " +
            std::to_string(BenchReport::kSchemaVersion) + ")");

    BenchReport report;
    report.suite = required(root, "suite").asString();

    const JsonValue &env = required(root, "environment");
    report.environment.compiler =
        required(env, "compiler").asString();
    report.environment.buildType =
        required(env, "build_type").asString();
    report.environment.hardwareThreads =
        required(env, "hardware_threads").asU64();

    for (const JsonValue &item : required(root, "metrics").items()) {
        BenchMetric m;
        m.name = required(item, "name").asString();
        m.unit = required(item, "unit").asString();
        m.value = required(item, "value").asDouble();
        m.gated = required(item, "gated").asBool();
        m.better = required(item, "better").asString();
        if (m.better != "lower" && m.better != "higher")
            throw PerfError("BENCH json: metric \"" + m.name +
                            "\": better must be \"lower\" or "
                            "\"higher\", got \"" +
                            m.better + "\"");
        if (const JsonValue *rep = item.find("repetition")) {
            m.warmups = static_cast<unsigned>(
                required(*rep, "warmups").asU64());
            m.reps =
                static_cast<unsigned>(required(*rep, "reps").asU64());
            m.min = required(*rep, "min").asDouble();
            m.medianSeconds = required(*rep, "median").asDouble();
            m.iqrSeconds = required(*rep, "iqr").asDouble();
            for (const JsonValue &s :
                 required(*rep, "samples").items())
                m.samples.push_back(s.asDouble());
        }
        if (const JsonValue *counters = item.find("counters")) {
            for (const auto &[name, value] : counters->members())
                m.counters[name] = value.asU64();
        }
        report.metrics.push_back(std::move(m));
    }
    return report;
}

BenchReport
loadBenchFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw PerfError("cannot read BENCH file '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return parseBenchReport(JsonValue::parse(text.str()));
}

void
printBenchTable(std::ostream &os, const BenchReport &report)
{
    TextTable table;
    table.header(
        {"metric", "value", "unit", "median", "iqr", "gated"});
    for (const BenchMetric &m : report.metrics) {
        table.row({m.name, JsonWriter::formatDouble(m.value), m.unit,
                   m.reps > 0
                       ? JsonWriter::formatDouble(m.medianSeconds)
                       : "-",
                   m.reps > 0 ? JsonWriter::formatDouble(m.iqrSeconds)
                              : "-",
                   m.gated ? "yes" : "no"});
    }
    table.print(os);
}

} // namespace graphr::perf
