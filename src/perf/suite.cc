#include "suite.hh"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <filesystem>
#include <numeric>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "client/client.hh"
#include "common/json.hh"
#include "driver/dataset.hh"
#include "driver/driver.hh"
#include "driver/golden_cache.hh"
#include "graphr/engine/plan_cache.hh"
#include "common/random.hh"
#include "net/event_loop.hh"
#include "net/listener.hh"
#include "perf/bench.hh"
#include "rram/crossbar.hh"
#include "rram/simd/simd.hh"
#include "service/server.hh"
#include "store/plan_store.hh"

namespace graphr::perf
{

namespace
{

/**
 * Emits metrics into one report under a fixed repetition policy.
 * timed() records the ungated wall-clock trajectory point (median +
 * full repetition detail + counter deltas); scalar() records the
 * derived deterministic metrics the CI gate keys on.
 */
class SuiteBuilder
{
  public:
    SuiteBuilder(const SuiteOptions &options, BenchReport &report)
        : options_(options), report_(report)
    {
    }

    /** Measure fn and emit "<name>" (unit s, ungated, median). */
    RepStats
    timed(const std::string &name, const std::function<void()> &fn)
    {
        const RepStats stats = measure(
            RepOptions{options_.warmups, options_.reps}, fn);
        BenchMetric m;
        m.name = name;
        m.unit = "s";
        m.value = stats.median();
        m.gated = false;
        m.better = "lower";
        m.warmups = options_.warmups;
        m.reps = static_cast<unsigned>(stats.seconds.size());
        m.min = stats.min();
        m.medianSeconds = stats.median();
        m.iqrSeconds = stats.iqr();
        m.samples = stats.seconds;
        m.counters = stats.counterDeltas;
        log(name, m.value, "s");
        report_.metrics.push_back(std::move(m));
        return stats;
    }

    /** Emit one derived scalar metric. */
    void
    scalar(const std::string &name, double value,
           const std::string &unit, bool gated,
           const std::string &better = "lower")
    {
        BenchMetric m;
        m.name = name;
        m.unit = unit;
        m.value = value;
        m.gated = gated;
        m.better = better;
        log(name, value, unit);
        report_.metrics.push_back(std::move(m));
    }

    unsigned reps() const { return options_.reps; }

  private:
    void
    log(const std::string &name, double value,
        const std::string &unit)
    {
        if (options_.progress == nullptr)
            return;
        *options_.progress << "  " << name << " = "
                           << JsonWriter::formatDouble(value) << " "
                           << unit << "\n"
                           << std::flush;
    }

    SuiteOptions options_;
    BenchReport &report_;
};

/**
 * Dataset resolution with the pinned-seed invariant: every suite
 * dataset spec carries an explicit seed=..., and re-resolving the
 * same spec must yield the identical graph. check() fingerprints
 * each resolution and throws PerfError on drift, so a suite can
 * never silently measure a different graph per repetition.
 */
class FingerprintCheck
{
  public:
    explicit FingerprintCheck(std::string spec)
        : spec_(std::move(spec))
    {
    }

    driver::ResolvedDataset
    resolve()
    {
        driver::ResolvedDataset dataset =
            driver::resolveDataset(spec_);
        check(dataset.graph);
        return dataset;
    }

    void
    check(const CooGraph &graph)
    {
        const std::uint64_t fp = graphFingerprint(graph);
        if (expected_ == 0)
            expected_ = fp;
        else if (fp != expected_)
            throw PerfError(
                "dataset '" + spec_ +
                "' resolved to a different graph across "
                "repetitions — generator seeds must be pinned");
    }

    bool stable() const { return expected_ != 0; }

  private:
    std::string spec_;
    std::uint64_t expected_ = 0;
};

/** Scratch plan-store directory, removed on scope exit. */
class ScratchStoreDir
{
  public:
    ScratchStoreDir()
        : path_((std::filesystem::temp_directory_path() /
                 "graphr_perf_suite_store")
                    .string())
    {
        std::filesystem::remove_all(path_);
    }

    ~ScratchStoreDir() { std::filesystem::remove_all(path_); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Drop every process-wide warm level (memory only, not the store). */
void
dropCaches()
{
    PlanCache::instance().clear();
    driver::clearGoldenCache();
}

/**
 * The driver-sweep scenario: the workload x backend cross product on
 * one pinned graph, warm (warmups fill the plan/golden caches, so
 * the timed window measures steady-state execution). Gated metrics:
 * total simulated seconds (the model's deterministic output), run
 * count, and the warm-path invariant that no O(E log E) sort happens.
 */
void
sweepScenario(SuiteBuilder &b, const std::string &prefix,
              driver::SweepSpec spec)
{
    FingerprintCheck fp(spec.datasets.at(0));
    std::vector<driver::RunResult> results;
    const RepStats stats =
        b.timed(prefix + ".wall_s", [&spec, &results] {
            results = driver::runSweep(spec, nullptr);
        });
    // Re-resolve the dataset after the timed window: the sweep must
    // have run the graph the spec pins.
    fp.resolve();

    double sim_total = 0.0;
    for (const driver::RunResult &r : results)
        sim_total += r.seconds;
    b.scalar(prefix + ".sim_seconds_total", sim_total, "s", true);
    b.scalar(prefix + ".runs", static_cast<double>(results.size()),
             "count", true, "higher");
    b.scalar(prefix + ".sorts_per_rep",
             stats.perRep("preprocess.sorts"), "count", true);
    b.scalar(prefix + ".plan_cache_misses_per_rep",
             stats.perRep("plan_cache.misses"), "count", true);
}

/**
 * The PlanStore scenario: cold prepare (the O(E log E) sort a
 * storeless cold start pays) vs warm artifact load, plus the
 * artifact footprint. Gated metrics: sorts per repetition on both
 * paths and artifact bytes per edge.
 */
void
storeScenario(SuiteBuilder &b, const std::string &prefix,
              const std::string &dataset_spec)
{
    FingerprintCheck fp(dataset_spec);
    const driver::ResolvedDataset dataset = fp.resolve();
    const CooGraph &graph = dataset.graph;
    const TilingParams tiling;

    const RepStats cold =
        b.timed(prefix + ".cold_prepare_wall_s", [&graph, &tiling] {
            const TilePlan plan(graph, tiling);
            doNotOptimize(plan.meta.totalNnz());
        });
    b.scalar(prefix + ".cold_sorts_per_rep",
             cold.perRep("preprocess.sorts"), "count", true);

    const ScratchStoreDir dir;
    const PlanStore store(dir.path());
    const std::string artifact = store.save(TilePlan(graph, tiling),
                                            tiling);
    const double bytes = static_cast<double>(
        std::filesystem::file_size(artifact));
    b.scalar(prefix + ".artifact_bytes", bytes, "bytes", true);
    b.scalar(prefix + ".artifact_bytes_per_edge",
             bytes / static_cast<double>(graph.numEdges()), "bytes",
             true);

    const std::uint64_t fingerprint = graphFingerprint(graph);
    const RepStats warm = b.timed(
        prefix + ".warm_load_wall_s", [&store, fingerprint, &tiling] {
            doNotOptimize(store.load(fingerprint, tiling));
        });
    b.scalar(prefix + ".warm_sorts_per_rep",
             warm.perRep("preprocess.sorts"), "count", true);
    b.scalar(prefix + ".warm_load_hits_per_rep",
             warm.perRep("store.load_hits"), "count", true,
             "higher");
    fp.resolve();
}

/**
 * The compressed-artifact scenario: raw vs delta footprint of one
 * pinned graph's artifact plus the streaming-decode work of a warm
 * load. The byte counts and decode counters are deterministic
 * functions of the dataset, so they gate; only the wall clocks are
 * trajectory points.
 */
void
compressScenario(SuiteBuilder &b, const std::string &prefix,
                 const std::string &dataset_spec)
{
    FingerprintCheck fp(dataset_spec);
    const driver::ResolvedDataset dataset = fp.resolve();
    const CooGraph &graph = dataset.graph;
    const TilingParams tiling;
    const TilePlan plan(graph, tiling);

    const ScratchStoreDir dir;
    const PlanStore store(dir.path());

    // Raw footprint via the escape hatch. The suite runs these
    // scenarios on one thread, so toggling the env var cannot race a
    // concurrent save.
    ::setenv("GRAPHR_STORE_RAW", "1", 1);
    const double raw_bytes = static_cast<double>(
        std::filesystem::file_size(store.save(plan, tiling)));
    ::unsetenv("GRAPHR_STORE_RAW");

    // Compressed save overwrites the same artifact name.
    const std::string artifact = store.save(plan, tiling);
    const double bytes = static_cast<double>(
        std::filesystem::file_size(artifact));
    b.scalar(prefix + ".raw_bytes", raw_bytes, "bytes", true);
    b.scalar(prefix + ".bytes", bytes, "bytes", true);
    b.scalar(prefix + ".bytes_per_edge",
             bytes / static_cast<double>(graph.numEdges()), "bytes",
             true);
    b.scalar(prefix + ".compression_ratio", bytes / raw_bytes, "x",
             true);

    const std::uint64_t fingerprint = graphFingerprint(graph);
    const RepStats warm = b.timed(
        prefix + ".warm_decode_wall_s",
        [&store, fingerprint, &tiling] {
            doNotOptimize(store.load(fingerprint, tiling));
        });
    b.scalar(prefix + ".decoded_edges_per_rep",
             warm.perRep("store.codec.decoded_edges"), "count", true,
             "higher");
    b.scalar(prefix + ".decoded_tiles_per_rep",
             warm.perRep("store.codec.decoded_tiles"), "count", true,
             "higher");
    b.scalar(prefix + ".warm_sorts_per_rep",
             warm.perRep("preprocess.sorts"), "count", true);
    fp.resolve();
}

/**
 * The graphr_serve scenario: per-request latency of the daemon, warm
 * (process-resident PlanCache answers — the paper's online-phase
 * steady state) vs cold (caches dropped before every request — what
 * a one-shot process pays). Wall p50/p99 are the trajectory; the
 * gate keys on the deterministic cache/sort work per request.
 */
void
serveScenario(SuiteBuilder &b, const std::string &prefix,
              const std::string &dataset_spec)
{
    service::Server server(service::ServeOptions{});
    const std::string request =
        "{\"id\":\"bench\",\"type\":\"run\",\"workload\":\"pagerank\","
        "\"backend\":\"outofcore\",\"dataset\":\"" +
        dataset_spec + "\"}\n";
    const auto one_request = [&server, &request] {
        std::istringstream in(request);
        std::ostringstream out;
        server.serve(in, out);
        doNotOptimize(out.str().size());
    };

    const RepStats warm = b.timed(prefix + ".warm_wall_s",
                                  one_request);
    std::vector<double> sorted = warm.seconds;
    std::sort(sorted.begin(), sorted.end());
    b.scalar(prefix + ".warm_p50_s", quantileSorted(sorted, 0.5),
             "s", false);
    b.scalar(prefix + ".warm_p99_s", quantileSorted(sorted, 0.99),
             "s", false);
    b.scalar(prefix + ".warm_plan_cache_hits_per_rep",
             warm.perRep("plan_cache.hits"), "count", true,
             "higher");
    b.scalar(prefix + ".warm_sorts_per_rep",
             warm.perRep("preprocess.sorts"), "count", true);

    const RepStats cold =
        b.timed(prefix + ".cold_wall_s", [&one_request] {
            dropCaches();
            one_request();
        });
    sorted = cold.seconds;
    std::sort(sorted.begin(), sorted.end());
    b.scalar(prefix + ".cold_p50_s", quantileSorted(sorted, 0.5),
             "s", false);
    b.scalar(prefix + ".cold_p99_s", quantileSorted(sorted, 0.99),
             "s", false);
    b.scalar(prefix + ".cold_sorts_per_rep",
             cold.perRep("preprocess.sorts"), "count", true);
    // Cold state must not leak into whatever runs next.
    dropCaches();
}

/**
 * The concurrent-serving scenario: one daemon (Server + src/net/
 * event loop on an ephemeral loopback port), C closed-loop client
 * connections each sending R run requests through src/client/. The
 * timed window covers a whole burst — connect, C x R requests,
 * disconnect — so it exercises accept, round-robin dispatch and the
 * per-connection response ordering end to end. Wall p50/p99 are the
 * ungated trajectory; the gate keys on the deterministic work
 * metrics: ok responses per connection (every request must be
 * answered ok) and the per-connection fairness spread (zero under
 * identical closed-loop clients).
 */
void
concurrentServeScenario(SuiteBuilder &b, const std::string &prefix,
                        const std::string &dataset_spec,
                        unsigned connections, unsigned requests)
{
    service::ServeOptions options;
    options.jobs = 2;
    options.connQueueDepth = 8;
    service::Server server(options);
    std::ostringstream net_log; // accept/teardown noise stays out of
                                // the bench progress stream
    net::Listener listener(0, net_log);
    net::EventLoopOptions loop_opts;
    loop_opts.maxConnections = connections;
    net::EventLoop loop(server, listener, loop_opts, net_log);
    std::thread loop_thread([&loop] { loop.run(); });

    const std::string request_tmpl =
        "{\"id\":\"%ID%\",\"type\":\"run\",\"workload\":\"pagerank\","
        "\"backend\":\"outofcore\",\"dataset\":\"" +
        dataset_spec + "\"}";
    std::vector<std::uint64_t> conn_ok(connections, 0);
    const int port = listener.port();
    const auto burst = [&] {
        std::fill(conn_ok.begin(), conn_ok.end(), 0);
        std::vector<std::thread> clients;
        clients.reserve(connections);
        for (unsigned c = 0; c < connections; ++c) {
            clients.emplace_back([&, c] {
                try {
                    client::Client cl(port);
                    for (unsigned r = 0; r < requests; ++r) {
                        std::string req = request_tmpl;
                        req.replace(req.find("%ID%"), 4,
                                    "c" + std::to_string(c) + "-r" +
                                        std::to_string(r));
                        const std::string resp = cl.request(req);
                        if (resp.find("\"ok\":true") !=
                            std::string::npos)
                            ++conn_ok[c];
                    }
                } catch (const client::ClientError &) {
                    // Leave this connection's ok count short: the
                    // gated requests-per-connection metric then
                    // fails the comparison loudly.
                }
            });
        }
        for (std::thread &t : clients)
            t.join();
    };

    const RepStats stats = b.timed(prefix + ".wall_s", burst);
    std::vector<double> sorted = stats.seconds;
    std::sort(sorted.begin(), sorted.end());
    b.scalar(prefix + ".p50_s", quantileSorted(sorted, 0.5), "s",
             false);
    b.scalar(prefix + ".p99_s", quantileSorted(sorted, 0.99), "s",
             false);

    const auto [lo, hi] =
        std::minmax_element(conn_ok.begin(), conn_ok.end());
    const std::uint64_t total = std::accumulate(
        conn_ok.begin(), conn_ok.end(), std::uint64_t{0});
    b.scalar(prefix + ".requests_per_conn",
             static_cast<double>(total) /
                 static_cast<double>(connections),
             "count", true, "higher");
    b.scalar(prefix + ".fairness_spread",
             static_cast<double>(*hi - *lo), "count", true);

    server.requestStop();
    loop.wake();
    loop_thread.join();
    dropCaches();
}

/**
 * The crossbar MVM scenario: the SIMD-dispatched exact datapath on a
 * half-occupied crossbar. Wall-clock is the ungated trajectory (it
 * moves with the host's best kernel tier); the gate keys on the
 * machine-independent work metric — occupied wordlines processed per
 * repetition, identical across scalar/SSE/AVX2 because the occupancy
 * mask alone decides it. The active tier is recorded ungated so a
 * trajectory reader can attribute wall-clock moves.
 */
void
crossbarScenario(SuiteBuilder &b, const std::string &prefix)
{
    constexpr std::uint32_t kDim = 64;
    constexpr std::uint32_t kOccupied = 32;
    constexpr std::uint64_t kIters = 512;

    DeviceParams params;
    Crossbar cb(kDim, params);
    Rng rng(11);
    for (std::uint32_t r = 0; r < kOccupied; ++r) {
        const std::uint32_t row = r * kDim / kOccupied;
        for (std::uint32_t c = 0; c < kDim; ++c)
            cb.programValue(
                row, c,
                FixedPoint::fromRaw(static_cast<FixedPoint::Raw>(
                                        1 + rng.below(65535)),
                                    0));
    }
    std::vector<FixedPoint::Raw> x(kDim);
    for (auto &v : x)
        v = static_cast<FixedPoint::Raw>(rng.below(65536));

    const RepStats stats = b.timed(prefix + ".mvm_wall_s", [&] {
        for (std::uint64_t i = 0; i < kIters; ++i)
            doNotOptimize(cb.mvmRaw(x));
    });
    b.scalar(prefix + ".mvm_rows_per_rep",
             stats.perRep("crossbar.mvm_rows_processed"), "count",
             true);
    b.scalar(prefix + ".simd_level",
             static_cast<double>(cb.simdKernels().level), "enum",
             false, "higher");
}

/** The pinned-seed invariant as an explicit gated trajectory point. */
void
fingerprintScenario(SuiteBuilder &b, const std::string &prefix,
                    const std::string &dataset_spec)
{
    FingerprintCheck fp(dataset_spec);
    b.timed(prefix + ".resolve_wall_s", [&fp] { fp.resolve(); });
    b.scalar(prefix + ".fingerprint_stable",
             fp.stable() ? 1.0 : 0.0, "bool", true, "higher");
}

// ------------------------------------------------------------ suites

driver::SweepSpec
smallSweepSpec()
{
    driver::SweepSpec spec;
    spec.workloads = {"pagerank", "wcc"};
    spec.backends = {"graphr", "outofcore"};
    spec.datasets = {"rmat:vertices=256,edges=2048,seed=3"};
    spec.params = driver::ParamMap::parse("iterations=5");
    spec.jobs = 1;
    return spec;
}

/** CI-sized: every scenario, tiny graphs, seconds even under TSan. */
void
suiteSmall(SuiteBuilder &b)
{
    fingerprintScenario(b, "dataset.rmat_small",
                        "rmat:vertices=256,edges=2048,seed=3");
    crossbarScenario(b, "crossbar.small");
    sweepScenario(b, "sweep.small", smallSweepSpec());
    storeScenario(b, "store.small",
                  "rmat:vertices=2048,edges=16384,seed=7");
    compressScenario(b, "store.compress",
                     "rmat:vertices=2048,edges=16384,seed=7");
    serveScenario(b, "serve.small",
                  "rmat:vertices=1024,edges=8192,seed=5");
    concurrentServeScenario(b, "serve.concurrent",
                            "rmat:vertices=1024,edges=8192,seed=5",
                            /*connections=*/4, /*requests=*/4);
}

/** Developer-scale driver sweep: the full 6x6 matrix. */
void
suiteSweep(SuiteBuilder &b)
{
    driver::SweepSpec spec;
    spec.workloads = {"all"};
    spec.backends = {"all"};
    spec.datasets = {"rmat:vertices=4096,edges=32768,seed=3"};
    spec.params =
        driver::ParamMap::parse("epochs=1,features=8,iterations=10");
    spec.jobs = 1;
    sweepScenario(b, "sweep.matrix", spec);

    driver::SweepSpec parallel = spec;
    parallel.jobs = 4;
    sweepScenario(b, "sweep.matrix_jobs4", parallel);
}

/** Developer-scale store cold-vs-warm. */
void
suiteStore(SuiteBuilder &b)
{
    storeScenario(b, "store.medium",
                  "rmat:vertices=32768,edges=262144,seed=7");
    compressScenario(b, "store.compress_medium",
                     "rmat:vertices=32768,edges=262144,seed=7");
}

/** Developer-scale serve warm/cold request latency. */
void
suiteServe(SuiteBuilder &b)
{
    serveScenario(b, "serve.medium",
                  "rmat:vertices=16384,edges=131072,seed=5");
    concurrentServeScenario(b, "serve.concurrent_medium",
                            "rmat:vertices=16384,edges=131072,seed=5",
                            /*connections=*/8, /*requests=*/8);
}

struct SuiteEntry
{
    const char *name;
    void (*fn)(SuiteBuilder &);
};

constexpr SuiteEntry kSuites[] = {
    {"small", suiteSmall},
    {"sweep", suiteSweep},
    {"store", suiteStore},
    {"serve", suiteServe},
};

} // namespace

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    for (const SuiteEntry &entry : kSuites)
        names.emplace_back(entry.name);
    return names;
}

bool
isSuiteName(const std::string &name)
{
    for (const SuiteEntry &entry : kSuites) {
        if (name == entry.name)
            return true;
    }
    return false;
}

BenchReport
runSuite(const std::string &name, const SuiteOptions &options)
{
    const SuiteEntry *found = nullptr;
    for (const SuiteEntry &entry : kSuites) {
        if (name == entry.name) {
            found = &entry;
            break;
        }
    }
    if (found == nullptr) {
        std::string msg = "unknown bench suite '" + name +
                          "' (known:";
        for (const SuiteEntry &entry : kSuites)
            msg += std::string(" ") + entry.name;
        throw PerfError(msg + ")");
    }
    if (options.reps == 0)
        throw PerfError("bench needs at least one repetition");

    BenchReport report;
    report.suite = name;
    report.environment = BenchEnvironment::current();
    if (options.progress != nullptr)
        *options.progress << "suite " << name << " (" << options.reps
                          << " reps, " << options.warmups
                          << " warmups)\n"
                          << std::flush;
    SuiteBuilder builder(options, report);
    found->fn(builder);
    return report;
}

} // namespace graphr::perf
