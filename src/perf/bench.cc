#include "bench.hh"

#include <algorithm>
#include <chrono>

#include "perf/counters.hh"

namespace graphr::perf
{

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    return quantileSorted(values, 0.5);
}

double
quantileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (q <= 0.0)
        return sorted.front();
    if (q >= 1.0)
        return sorted.back();
    // Linear interpolation between closest ranks (type-7 quantile,
    // the numpy/R default).
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double
iqr(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    return quantileSorted(values, 0.75) - quantileSorted(values, 0.25);
}

double
RepStats::min() const
{
    if (seconds.empty())
        return 0.0;
    return *std::min_element(seconds.begin(), seconds.end());
}

double
RepStats::median() const
{
    return perf::median(seconds);
}

double
RepStats::iqr() const
{
    return perf::iqr(seconds);
}

double
RepStats::perRep(const std::string &counter) const
{
    const auto it = counterDeltas.find(counter);
    if (it == counterDeltas.end() || seconds.empty())
        return 0.0;
    return static_cast<double>(it->second) /
           static_cast<double>(seconds.size());
}

RepStats
measure(const RepOptions &options, const std::function<void()> &fn)
{
    if (options.reps == 0)
        throw PerfError("measure() needs at least one repetition");

    for (unsigned i = 0; i < options.warmups; ++i)
        fn();

    const std::map<std::string, std::uint64_t> before =
        Registry::instance().counterValues();

    RepStats stats;
    stats.seconds.reserve(options.reps);
    using Clock = std::chrono::steady_clock;
    for (unsigned i = 0; i < options.reps; ++i) {
        const Clock::time_point t0 = Clock::now();
        fn();
        const Clock::time_point t1 = Clock::now();
        stats.seconds.push_back(
            std::chrono::duration<double>(t1 - t0).count());
    }

    const std::map<std::string, std::uint64_t> after =
        Registry::instance().counterValues();
    for (const auto &[name, value] : after) {
        const auto it = before.find(name);
        const std::uint64_t prior =
            it == before.end() ? 0 : it->second;
        if (value > prior)
            stats.counterDeltas.emplace(name, value - prior);
    }
    return stats;
}

} // namespace graphr::perf
