/**
 * @file
 * The BENCH_*.json trajectory format: schema-versioned, diffable
 * performance records.
 *
 * One BenchReport is one run of one suite. Every metric carries:
 *  - value: the headline scalar the comparator diffs;
 *  - gated: whether `bench compare` fails the build on regression.
 *    Gated metrics are deterministic work/model metrics (simulated
 *    seconds, sorts performed, cache hits, artifact bytes) that are
 *    identical on any machine — the checked-in BENCH_0.json baseline
 *    is compared against fresh runs on whatever hardware CI has.
 *    Host wall-clock metrics are recorded for the trajectory but
 *    ungated by default (compare --gate-all opts them in for
 *    same-machine before/after checks);
 *  - better: "lower" or "higher", the improvement direction;
 *  - optional repetition detail (warmups/reps/min/median/iqr and the
 *    raw per-rep samples) and the perf-counter deltas observed over
 *    the timed window.
 *
 * Serialises through common/json (writer) and round-trips through
 * common/json_reader (parser), so the trajectory files are readable
 * by the same strict JSON stack the daemon uses.
 */

#ifndef GRAPHR_PERF_REPORT_HH
#define GRAPHR_PERF_REPORT_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "perf/bench.hh"

namespace graphr
{
class JsonValue;
}

namespace graphr::perf
{

/** One named trajectory point. */
struct BenchMetric
{
    std::string name;
    /** "s", "count", "bytes", ... (documentation, not semantics). */
    std::string unit = "s";
    /** The scalar the comparator diffs. */
    double value = 0.0;
    /** Whether `bench compare` gates on this metric by default. */
    bool gated = false;
    /** Improvement direction: "lower" or "higher". */
    std::string better = "lower";

    /** Repetition detail; present when reps > 0. */
    unsigned warmups = 0;
    unsigned reps = 0;
    double min = 0.0;
    double medianSeconds = 0.0;
    double iqrSeconds = 0.0;
    std::vector<double> samples;

    /** Counter deltas over the timed window (may be empty). */
    std::map<std::string, std::uint64_t> counters;
};

/** Build/host environment a report was produced under. */
struct BenchEnvironment
{
    std::string compiler;
    std::string buildType; ///< "release" or "debug" (NDEBUG)
    std::uint64_t hardwareThreads = 0;

    /** The environment of this process. */
    static BenchEnvironment current();
};

/** One suite run: the unit BENCH_*.json stores. */
struct BenchReport
{
    static constexpr int kSchemaVersion = 1;

    std::string suite;
    BenchEnvironment environment;
    std::vector<BenchMetric> metrics;

    /** Metric by exact name, or nullptr. */
    const BenchMetric *find(const std::string &name) const;
};

/** Emit a report as a BENCH_*.json document. */
void writeBenchJson(std::ostream &os, const BenchReport &report);

/**
 * Parse a BENCH document (the writeBenchJson shape). Throws
 * PerfError on a wrong schema marker/version or missing fields and
 * propagates JsonParseError on malformed JSON.
 */
BenchReport parseBenchReport(const JsonValue &root);

/** Read and parse a BENCH file; PerfError when unreadable. */
BenchReport loadBenchFile(const std::string &path);

/** Human-readable metric table (the bench subcommand's stdout). */
void printBenchTable(std::ostream &os, const BenchReport &report);

} // namespace graphr::perf

#endif // GRAPHR_PERF_REPORT_HH
