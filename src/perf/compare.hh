/**
 * @file
 * The regression gate: diff two BENCH_*.json trajectory points.
 *
 * compareBench() walks the baseline's metrics and classifies each
 * against the candidate: ok (within threshold), improved, regressed,
 * or missing (present in the baseline but absent from the candidate
 * — a gated metric silently disappearing is itself a gate failure,
 * otherwise a rename would "fix" any regression). Candidate-only
 * metrics are reported as new and never gate.
 *
 * Only gated metrics fail the gate by default (see report.hh for why
 * host wall-clock metrics are ungated); --gate-all widens the gate
 * to every metric for same-machine before/after comparisons.
 */

#ifndef GRAPHR_PERF_COMPARE_HH
#define GRAPHR_PERF_COMPARE_HH

#include <ostream>
#include <string>
#include <vector>

#include "perf/report.hh"

namespace graphr::perf
{

/** Gate policy. */
struct CompareOptions
{
    /**
     * Allowed regression, percent of the baseline value. The default
     * leaves room for the ~1e-12 relative drift of doubles
     * round-tripping through "%.12g" text, and for threshold
     * tweaking via `bench compare --threshold`.
     */
    double thresholdPct = 10.0;
    /** Gate every metric, not just the gated ones. */
    bool gateAll = false;
};

enum class MetricOutcome
{
    kOk,        ///< within threshold of the baseline
    kImproved,  ///< better than baseline by more than the threshold
    kRegressed, ///< worse than baseline by more than the threshold
    kMissing,   ///< in the baseline, absent from the candidate
    kNew,       ///< in the candidate only (informational)
};

/** One metric's comparison. */
struct MetricComparison
{
    std::string name;
    std::string unit;
    MetricOutcome outcome = MetricOutcome::kOk;
    /** Whether this metric can fail the gate under the options. */
    bool gating = false;
    double oldValue = 0.0;
    double newValue = 0.0;
    /** Signed percent change, positive = worse (direction-aware). */
    double deltaPct = 0.0;
};

/** The whole diff. */
struct CompareReport
{
    std::vector<MetricComparison> metrics;
    unsigned regressed = 0; ///< gating metrics that regressed
    unsigned missing = 0;   ///< gating metrics absent from candidate
    unsigned improved = 0;  ///< gating metrics that improved

    /** True when nothing gated regressed or went missing. */
    bool
    ok() const
    {
        return regressed == 0 && missing == 0;
    }
};

/** Diff @p candidate against @p baseline under @p options. */
CompareReport compareBench(const BenchReport &baseline,
                           const BenchReport &candidate,
                           const CompareOptions &options = {});

/** Per-metric report + verdict line (the CLI's stdout). */
void printCompareReport(std::ostream &os, const CompareReport &report,
                        const CompareOptions &options);

} // namespace graphr::perf

#endif // GRAPHR_PERF_COMPARE_HH
