#include "compare.hh"

#include <cmath>

#include "common/json.hh"
#include "common/table.hh"

namespace graphr::perf
{

namespace
{

/**
 * Signed percent change where positive always means "worse": the
 * direction-aware regression magnitude. A zero baseline cannot be
 * expressed as a percentage; any nonzero movement off a zero
 * baseline counts as +/-100% so a 0 -> N sort-count jump still
 * trips the gate.
 */
double
worsePct(const BenchMetric &baseline, double new_value)
{
    const double sign = baseline.better == "higher" ? -1.0 : 1.0;
    if (baseline.value == 0.0) {
        if (new_value == 0.0)
            return 0.0;
        return sign * (new_value > 0.0 ? 100.0 : -100.0);
    }
    return sign * 100.0 * (new_value - baseline.value) /
           std::abs(baseline.value);
}

} // namespace

CompareReport
compareBench(const BenchReport &baseline, const BenchReport &candidate,
             const CompareOptions &options)
{
    CompareReport report;
    for (const BenchMetric &old_metric : baseline.metrics) {
        MetricComparison cmp;
        cmp.name = old_metric.name;
        cmp.unit = old_metric.unit;
        cmp.gating = old_metric.gated || options.gateAll;
        cmp.oldValue = old_metric.value;

        const BenchMetric *new_metric =
            candidate.find(old_metric.name);
        if (new_metric == nullptr) {
            cmp.outcome = MetricOutcome::kMissing;
            if (cmp.gating)
                ++report.missing;
            report.metrics.push_back(cmp);
            continue;
        }
        cmp.newValue = new_metric->value;
        cmp.deltaPct = worsePct(old_metric, new_metric->value);
        if (cmp.deltaPct > options.thresholdPct) {
            cmp.outcome = MetricOutcome::kRegressed;
            if (cmp.gating)
                ++report.regressed;
        } else if (cmp.deltaPct < -options.thresholdPct) {
            cmp.outcome = MetricOutcome::kImproved;
            if (cmp.gating)
                ++report.improved;
        } else {
            cmp.outcome = MetricOutcome::kOk;
        }
        report.metrics.push_back(cmp);
    }

    for (const BenchMetric &new_metric : candidate.metrics) {
        if (baseline.find(new_metric.name) != nullptr)
            continue;
        MetricComparison cmp;
        cmp.name = new_metric.name;
        cmp.unit = new_metric.unit;
        cmp.outcome = MetricOutcome::kNew;
        cmp.newValue = new_metric.value;
        report.metrics.push_back(cmp);
    }
    return report;
}

namespace
{

const char *
outcomeLabel(MetricOutcome outcome, bool gating)
{
    switch (outcome) {
    case MetricOutcome::kOk:
        return "ok";
    case MetricOutcome::kImproved:
        return "improved";
    case MetricOutcome::kRegressed:
        return gating ? "REGRESSED" : "regressed*";
    case MetricOutcome::kMissing:
        return gating ? "MISSING" : "missing*";
    case MetricOutcome::kNew:
        return "new";
    }
    return "?";
}

std::string
pct(double v)
{
    // Two decimals is plenty for a percent delta; the sign carries
    // the direction-aware meaning (positive = worse). Negative zero
    // (a higher-is-better no-change) would print as "+-0.00%".
    if (v == 0.0)
        v = 0.0;
    return (v >= 0.0 ? "+" : "") + TextTable::num(v, 2) + "%";
}

} // namespace

void
printCompareReport(std::ostream &os, const CompareReport &report,
                   const CompareOptions &options)
{
    TextTable table;
    table.header({"metric", "old", "new", "delta", "verdict"});
    for (const MetricComparison &m : report.metrics) {
        const bool has_old = m.outcome != MetricOutcome::kNew;
        const bool has_new = m.outcome != MetricOutcome::kMissing;
        table.row(
            {m.name,
             has_old ? JsonWriter::formatDouble(m.oldValue) : "-",
             has_new ? JsonWriter::formatDouble(m.newValue) : "-",
             has_old && has_new ? pct(m.deltaPct) : "-",
             outcomeLabel(m.outcome, m.gating)});
    }
    table.print(os);
    os << "\n(threshold " << TextTable::num(options.thresholdPct, 2)
       << "%; positive delta = worse; '*' = not gated"
       << (options.gateAll ? "; --gate-all active" : "") << ")\n";
    if (report.ok()) {
        os << "gate OK";
        if (report.improved > 0)
            os << " (" << report.improved << " gated metric"
               << (report.improved == 1 ? "" : "s") << " improved)";
        os << "\n";
    } else {
        os << "gate FAILED: " << report.regressed
           << " gated metric(s) regressed, " << report.missing
           << " missing\n";
    }
}

} // namespace graphr::perf
