/**
 * @file
 * Process-wide performance counter registry.
 *
 * Hot paths across the engine (PlanCache hits/misses), the graph
 * layer (preprocessing sorts), the store (artifact loads/saves) and
 * the serving daemon (request latency, queue depth) publish into one
 * registry of named counters and latency histograms. The bench
 * harness (perf/bench.hh) snapshots the registry around timed
 * repetitions and records the deltas in BENCH_*.json, and
 * graphr_serve's status response reads the request-latency summary
 * from here.
 *
 * Counters are monotonic relaxed atomics: publishing from a hot path
 * costs one fetch_add, and concurrent readers only ever see a
 * consistent (if momentarily stale) value. Registration is
 * mutex-guarded; hot paths cache the returned reference in a
 * function-local static so the name lookup happens once per process.
 *
 * Latency histograms are fixed-size log-linear bucket arrays (no
 * allocation after construction, bounded memory for arbitrarily many
 * samples): count/min/max/sum are exact, quantiles are approximate
 * to one sub-bucket (~3% relative error), which is what a daemon
 * status line or a p99 trajectory point needs.
 */

#ifndef GRAPHR_PERF_COUNTERS_HH
#define GRAPHR_PERF_COUNTERS_HH

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace graphr::perf
{

/** One monotonic counter (relaxed atomic; see file comment). */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    /** Raise the counter to @p v if it is below (a peak gauge). */
    void
    recordMax(std::uint64_t v)
    {
        std::uint64_t cur = value_.load(std::memory_order_relaxed);
        while (cur < v && !value_.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed))
            ;
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Reset to zero. For tests and bench isolation only: resets
     *  racing concurrent add()s lose no more than the racing delta. */
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * Fixed-size log-linear latency histogram (nanosecond samples).
 * Values below 16 get exact buckets; above that, each power of two
 * is split into 16 linear sub-buckets, so quantiles are accurate to
 * ~3% relative error while min/max/count/sum stay exact.
 */
class LatencyHistogram
{
  public:
    static constexpr std::size_t kMinorBits = 4;
    static constexpr std::size_t kMinor = 1u << kMinorBits; // 16
    /** Majors 4..63 each contribute kMinor buckets after the 16
     *  exact small-value buckets. */
    static constexpr std::size_t kBuckets = kMinor + 60 * kMinor;

    void
    record(std::uint64_t ns)
    {
        buckets_[bucketIndex(ns)].fetch_add(
            1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(ns, std::memory_order_relaxed);
        // Peak/floor gauges (CAS loops; contention is negligible at
        // request granularity).
        std::uint64_t cur = min_.load(std::memory_order_relaxed);
        while (ns < cur && !min_.compare_exchange_weak(
                               cur, ns, std::memory_order_relaxed))
            ;
        cur = max_.load(std::memory_order_relaxed);
        while (ns > cur && !max_.compare_exchange_weak(
                               cur, ns, std::memory_order_relaxed))
            ;
    }

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Exact smallest recorded sample (0 when empty). */
    std::uint64_t
    min() const
    {
        const std::uint64_t v = min_.load(std::memory_order_relaxed);
        return v == std::numeric_limits<std::uint64_t>::max() ? 0 : v;
    }

    /** Exact largest recorded sample (0 when empty). */
    std::uint64_t
    max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /**
     * Approximate quantile (0 < q <= 1): the representative value of
     * the bucket holding the q-th sample, clamped to [min, max] so
     * e.g. quantile(1.0) == max() exactly. Returns 0 when empty.
     * Concurrent record()s make the answer approximate in time as
     * well as in value; both are fine for telemetry.
     */
    std::uint64_t quantile(double q) const;

    /** Reset everything. Same caveat as Counter::reset(). */
    void reset();

  private:
    static std::size_t
    bucketIndex(std::uint64_t v)
    {
        if (v < kMinor)
            return static_cast<std::size_t>(v);
        const int major = 63 - std::countl_zero(v); // floor(log2 v)
        const std::size_t minor = static_cast<std::size_t>(
            (v >> (major - kMinorBits)) & (kMinor - 1));
        return (static_cast<std::size_t>(major) - kMinorBits + 1) *
                   kMinor +
               minor;
    }

    /** Lower edge + half a sub-bucket: the bucket's representative. */
    static std::uint64_t bucketValue(std::size_t index);

    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{
        std::numeric_limits<std::uint64_t>::max()};
    std::atomic<std::uint64_t> max_{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/** The process-wide registry of named counters and histograms. */
class Registry
{
  public:
    static Registry &instance();

    /**
     * The counter registered under @p name, created at zero on first
     * use. The reference stays valid for the process lifetime; hot
     * paths cache it (function-local static) so the mutex-guarded
     * name lookup happens once.
     */
    Counter &counter(std::string_view name);

    /** Same contract as counter(), for latency histograms. */
    LatencyHistogram &latency(std::string_view name);

    /** Snapshot every counter (name -> value), sorted by name. */
    std::map<std::string, std::uint64_t> counterValues() const;

    /** Reset every counter and histogram (tests / bench isolation). */
    void resetAll();

  private:
    mutable std::mutex mutex_;
    /** std::map: node addresses are stable across insertions. */
    std::map<std::string, Counter, std::less<>> counters_;
    std::map<std::string, LatencyHistogram, std::less<>> latencies_;
};

} // namespace graphr::perf

#endif // GRAPHR_PERF_COUNTERS_HH
