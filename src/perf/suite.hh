/**
 * @file
 * Registry of representative benchmark scenarios.
 *
 * A suite is a named set of measurements over the real subsystems:
 * driver sweeps across workloads x backends, PlanStore cold-vs-warm
 * prepare, and graphr_serve warm/cold request latency. runSuite()
 * executes one and returns the BenchReport that `graphr_run bench`
 * serialises to BENCH_*.json.
 *
 * The "small" suite is sized for CI (seconds, also under
 * sanitizers); the others are the developer-scale versions of the
 * same scenarios. Every dataset in every suite is a generator spec
 * with an explicitly pinned seed, and the harness asserts the graph
 * fingerprint is identical across repetitions — a suite that
 * silently measured a different graph per rep would produce an
 * untrustworthy trajectory.
 */

#ifndef GRAPHR_PERF_SUITE_HH
#define GRAPHR_PERF_SUITE_HH

#include <ostream>
#include <string>
#include <vector>

#include "perf/report.hh"

namespace graphr::perf
{

/** How a suite run is executed. */
struct SuiteOptions
{
    /** Timed repetitions per measurement (>= 1). */
    unsigned reps = 5;
    /** Warmup (cache-filling) repetitions per measurement. */
    unsigned warmups = 1;
    /** Per-measurement progress lines (nullptr = silent). */
    std::ostream *progress = nullptr;
};

/** Registered suite names, in registry order. */
std::vector<std::string> suiteNames();

/** Whether @p name names a registered suite. */
bool isSuiteName(const std::string &name);

/**
 * Run one suite. Throws PerfError on an unknown name (listing the
 * known ones) or a failed suite invariant; anything the measured
 * subsystems throw propagates unchanged.
 */
BenchReport runSuite(const std::string &name,
                     const SuiteOptions &options = {});

} // namespace graphr::perf

#endif // GRAPHR_PERF_SUITE_HH
