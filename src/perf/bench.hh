/**
 * @file
 * Self-contained benchmark harness: a repetition controller over a
 * monotonic clock, plus the order-statistics helpers BENCH reports
 * are built from.
 *
 * No google-benchmark dependency — the old micro_kernels target
 * silently disappeared when the package was missing; everything here
 * builds from the repo alone. measure() runs warmup repetitions
 * (uncounted: they fill the plan/golden caches so warm-path metrics
 * measure the steady state), then N timed repetitions on
 * std::chrono::steady_clock, and reports min/median/IQR over the
 * per-repetition wall times together with the perf-counter deltas
 * (perf/counters.hh) accumulated across the timed window. The
 * counter deltas are what make CI gating possible: they are
 * deterministic work metrics (sorts performed, cache hits), immune
 * to host noise.
 */

#ifndef GRAPHR_PERF_BENCH_HH
#define GRAPHR_PERF_BENCH_HH

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace graphr::perf
{

/** Bad suite name, malformed BENCH file, or a failed invariant
 *  (e.g. a dataset fingerprint changing between repetitions). */
class PerfError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Repetition policy for one measurement. */
struct RepOptions
{
    /** Uncounted cache-filling repetitions before timing starts. */
    unsigned warmups = 1;
    /** Timed repetitions (>= 1). */
    unsigned reps = 5;
};

/** What one measured repetition window yields. */
struct RepStats
{
    /** Wall seconds per timed repetition, in execution order. */
    std::vector<double> seconds;
    /**
     * Perf-counter deltas over the whole timed window (counters that
     * did not move are omitted). Divide by seconds.size() for the
     * deterministic per-repetition rate.
     */
    std::map<std::string, std::uint64_t> counterDeltas;

    double min() const;
    double median() const;
    /** Interquartile range (q75 - q25): the robust spread measure. */
    double iqr() const;

    /** Counter delta divided by the repetition count (0 if absent). */
    double perRep(const std::string &counter) const;
};

/** Median of a sample set (empty -> 0). */
double median(std::vector<double> values);

/** Quantile by linear interpolation on a *sorted* sample set. */
double quantileSorted(const std::vector<double> &sorted, double q);

/** Interquartile range of a sample set (empty -> 0). */
double iqr(std::vector<double> values);

/**
 * Run @p fn options.warmups times untimed, then options.reps times
 * timed (steady_clock around each call), snapshotting the counter
 * registry across the timed window. Throws PerfError when reps == 0.
 */
RepStats measure(const RepOptions &options,
                 const std::function<void()> &fn);

/** Defeat dead-code elimination of a benchmark result. */
template <typename T>
inline void
doNotOptimize(const T &value)
{
#if defined(__GNUC__) || defined(__clang__)
    asm volatile("" : : "r,m"(value) : "memory");
#else
    // Fallback: escape through a volatile read.
    const volatile T *sink = &value;
    (void)*sink;
#endif
}

} // namespace graphr::perf

#endif // GRAPHR_PERF_BENCH_HH
