/**
 * @file
 * Grid partitioning of the adjacency matrix into blocks and subgraph
 * tiles (paper section 3.4, Fig. 12).
 *
 * Terminology follows the paper:
 *  - C: crossbar dimension (a crossbar is C x C),
 *  - N: crossbars per graph engine,
 *  - G: graph engines per GraphR node,
 *  - B: block size (vertices per block; a block is B x B and is the
 *    disk-load unit of the out-of-core setting),
 *  - a *subgraph* (here: tile) is the unit all GEs process together:
 *    C rows by C*N*G columns.
 *
 * Ordering (all column-major, the variant GraphR adopts in section
 * 3.3 because it minimises RegO):
 *  - blocks:    B(0,0) -> B(1,0) -> ... -> B(0,1) -> B(1,1) -> ...
 *  - tiles within a block: tile-row varies fastest (Eq. 6),
 *  - cells within a tile: column-major (Eq. 8).
 *
 * Note: the paper's Eq. 2 prints "IB = Bj + (V/B) x Bj"; taken with
 * the stated column-major block order B(0,0)->B(1,0)->B(0,1)->B(1,1)
 * this is a typo for BI = Bi + (V/B) x Bj, which is what we implement.
 * All indices here are 0-based (the paper mixes 0- and 1-based).
 */

#ifndef GRAPHR_GRAPH_PARTITION_HH
#define GRAPHR_GRAPH_PARTITION_HH

#include <cstdint>

#include "common/types.hh"

namespace graphr
{

/** Architectural tiling parameters (paper Fig. 9 legend). */
struct TilingParams
{
    std::uint32_t crossbarDim = 8;     ///< C
    std::uint32_t crossbarsPerGe = 32; ///< N
    std::uint32_t numGe = 64;          ///< G
    /**
     * Block size in vertices (B). 0 means "single block": the whole
     * (padded) graph fits in memory ReRAM, the common case in the
     * paper's evaluation ("in all experiments, graph data could fit
     * in memory").
     */
    std::uint32_t blockSize = 0;
};

/** Coordinates of one tile in the global grid. */
struct TileCoord
{
    std::uint64_t blockRow = 0; ///< Bi
    std::uint64_t blockCol = 0; ///< Bj
    std::uint64_t tileRow = 0;  ///< SIi' within the block
    std::uint64_t tileCol = 0;  ///< SIj' within the block

    bool operator==(const TileCoord &other) const = default;
};

/**
 * Pure index arithmetic for the block/tile/cell grid over a padded
 * |V| x |V| adjacency matrix. This class owns no edge data.
 */
class GridPartition
{
  public:
    /**
     * @param num_vertices real vertex count of the graph
     * @param params tiling parameters; blockSize 0 selects a single
     *        block covering the padded vertex range
     */
    GridPartition(VertexId num_vertices, const TilingParams &params);

    /** C in the paper. */
    std::uint32_t crossbarDim() const { return params_.crossbarDim; }
    /** N in the paper. */
    std::uint32_t crossbarsPerGe() const { return params_.crossbarsPerGe; }
    /** G in the paper. */
    std::uint32_t numGe() const { return params_.numGe; }
    /** Tile width: C * N * G columns. */
    std::uint64_t tileWidth() const { return tileWidth_; }
    /** Tile capacity in cells: C * tileWidth. */
    std::uint64_t tileCapacity() const { return tileCapacity_; }
    /** Effective block size B after padding. */
    std::uint64_t blockSize() const { return blockSize_; }
    /** Vertex count padded up so B | V and tiles divide B exactly. */
    std::uint64_t paddedVertices() const { return paddedVertices_; }
    /** Real (unpadded) vertex count. */
    VertexId numVertices() const { return numVertices_; }

    /** Blocks per dimension: paddedVertices / B. */
    std::uint64_t blocksPerDim() const { return blocksPerDim_; }
    /** Tile rows per block: B / C. */
    std::uint64_t tileRowsPerBlock() const { return tileRowsPerBlock_; }
    /** Tile columns per block: B / tileWidth. */
    std::uint64_t tileColsPerBlock() const { return tileColsPerBlock_; }
    /** Tiles per block. */
    std::uint64_t tilesPerBlock() const
    {
        return tileRowsPerBlock_ * tileColsPerBlock_;
    }
    /** Total blocks. */
    std::uint64_t numBlocks() const
    {
        return blocksPerDim_ * blocksPerDim_;
    }
    /** Total tiles in the global grid. */
    std::uint64_t numTiles() const
    {
        return numBlocks() * tilesPerBlock();
    }

    /** Column-major block index BI (Eq. 2, typo corrected). */
    std::uint64_t
    blockIndex(std::uint64_t block_row, std::uint64_t block_col) const
    {
        return block_row + blocksPerDim_ * block_col;
    }

    /** Global tile index SI of the tile containing cell (i, j). */
    std::uint64_t tileIndex(VertexId i, VertexId j) const;

    /** Tile coordinates for a global tile index (inverse of Eq. 6). */
    TileCoord tileCoord(std::uint64_t tile_index) const;

    /** First (row, column) covered by a tile. */
    void tileOrigin(const TileCoord &coord, std::uint64_t &row0,
                    std::uint64_t &col0) const;

    /**
     * Global order ID I(i, j) of a cell (Eq. 9): counts every cell —
     * zero or not — that precedes (i, j) in streaming-apply order.
     */
    std::uint64_t globalOrderId(VertexId i, VertexId j) const;

    /** Inverse of globalOrderId, for property tests. */
    void cellOfOrderId(std::uint64_t order_id, std::uint64_t &i,
                       std::uint64_t &j) const;

  private:
    VertexId numVertices_;
    TilingParams params_;
    std::uint64_t tileWidth_;
    std::uint64_t tileCapacity_;
    std::uint64_t blockSize_;
    std::uint64_t paddedVertices_;
    std::uint64_t blocksPerDim_;
    std::uint64_t tileRowsPerBlock_;
    std::uint64_t tileColsPerBlock_;
};

} // namespace graphr

#endif // GRAPHR_GRAPH_PARTITION_HH
