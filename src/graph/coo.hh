/**
 * @file
 * Coordinate-list (COO) graph container.
 */

#ifndef GRAPHR_GRAPH_COO_HH
#define GRAPHR_GRAPH_COO_HH

#include <span>
#include <vector>

#include "common/types.hh"
#include "graph/edge.hh"

namespace graphr
{

/**
 * A directed graph stored as a coordinate list, the representation
 * GraphR keeps in memory ReRAM and on disk (paper Fig. 4/5). Vertices
 * are implicit in [0, numVertices).
 */
class CooGraph
{
  public:
    CooGraph() = default;

    /** Construct from an explicit vertex count and edge list. */
    CooGraph(VertexId num_vertices, std::vector<Edge> edges);

    VertexId numVertices() const { return numVertices_; }
    EdgeId numEdges() const { return static_cast<EdgeId>(edges_.size()); }
    std::span<const Edge> edges() const { return edges_; }
    std::vector<Edge> &mutableEdges() { return edges_; }

    /** Append one edge; endpoints must be < numVertices(). */
    void addEdge(VertexId src, VertexId dst, Value weight = 1.0);

    /** Sort edges by (src, dst) — the paper's assumed initial order. */
    void sortBySource();

    /** Remove duplicate (src, dst) pairs, keeping the first weight. */
    void dedupe();

    /** Remove self loops (src == dst). */
    void removeSelfLoops();

    /** Out-degree of every vertex. */
    std::vector<EdgeId> outDegrees() const;

    /** In-degree of every vertex. */
    std::vector<EdgeId> inDegrees() const;

    /** Edge density |E| / |V|^2 (the x-axis of paper Fig. 21). */
    double density() const;

  private:
    VertexId numVertices_ = 0;
    std::vector<Edge> edges_;
};

} // namespace graphr

#endif // GRAPHR_GRAPH_COO_HH
