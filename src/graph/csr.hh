/**
 * @file
 * Compressed sparse row / column adjacency built from a COO graph.
 *
 * The golden (reference) algorithms and the CPU baseline traverse
 * these; GraphR itself streams the ordered COO list (paper Fig. 4
 * shows all three formats).
 */

#ifndef GRAPHR_GRAPH_CSR_HH
#define GRAPHR_GRAPH_CSR_HH

#include <span>
#include <vector>

#include "common/types.hh"
#include "graph/coo.hh"

namespace graphr
{

/** One adjacency entry: neighbour id plus edge weight. */
struct Adjacency
{
    VertexId neighbor = 0;
    Value weight = 1.0;
};

/**
 * Compressed sparse adjacency. Direction determines whether rows are
 * sources (CSR, out-edges) or destinations (CSC, in-edges).
 */
class CsrGraph
{
  public:
    enum class Direction { kOut, kIn };

    CsrGraph() = default;

    /** Build from a COO graph in O(|V| + |E|). */
    CsrGraph(const CooGraph &coo, Direction dir);

    VertexId numVertices() const { return numVertices_; }
    EdgeId numEdges() const { return static_cast<EdgeId>(adj_.size()); }
    Direction direction() const { return dir_; }

    /** Neighbours of vertex v (out- or in-neighbours per direction). */
    std::span<const Adjacency>
    neighbors(VertexId v) const
    {
        return std::span<const Adjacency>(adj_.data() + offsets_[v],
                                          adj_.data() + offsets_[v + 1]);
    }

    /** Degree of vertex v in this direction. */
    EdgeId
    degree(VertexId v) const
    {
        return offsets_[v + 1] - offsets_[v];
    }

    /** Row offset array (|V|+1 entries), exposed for the baselines. */
    std::span<const EdgeId> offsets() const { return offsets_; }

  private:
    VertexId numVertices_ = 0;
    Direction dir_ = Direction::kOut;
    std::vector<EdgeId> offsets_;
    std::vector<Adjacency> adj_;
};

} // namespace graphr

#endif // GRAPHR_GRAPH_CSR_HH
