#include "io.hh"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace graphr
{

namespace
{

constexpr std::array<char, 4> kMagic = {'G', 'R', 'P', 'H'};
constexpr std::uint32_t kVersion = 1;

std::ofstream
openOut(const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        GRAPHR_FATAL("cannot open ", path, " for writing");
    return os;
}

std::ifstream
openIn(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        GRAPHR_FATAL("cannot open ", path, " for reading");
    return is;
}

template <typename T>
void
writeRaw(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readRaw(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!is)
        GRAPHR_FATAL("truncated binary graph file");
    return value;
}

} // namespace

void
saveEdgeListText(const CooGraph &graph, std::ostream &os)
{
    os << "# vertices: " << graph.numVertices() << "\n";
    os << "# edges: " << graph.numEdges() << "\n";
    for (const Edge &e : graph.edges())
        os << e.src << " " << e.dst << " " << e.weight << "\n";
}

void
saveEdgeListText(const CooGraph &graph, const std::string &path)
{
    std::ofstream os = openOut(path);
    saveEdgeListText(graph, os);
}

CooGraph
loadEdgeListText(std::istream &is)
{
    std::vector<Edge> edges;
    VertexId declared_vertices = 0;
    VertexId max_id = 0;
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            // Optional "# vertices: N" header.
            const auto pos = line.find("vertices:");
            if (pos != std::string::npos) {
                declared_vertices = static_cast<VertexId>(
                    std::strtoull(line.c_str() + pos + 9, nullptr, 10));
            }
            continue;
        }
        std::istringstream ls(line);
        std::uint64_t src = 0;
        std::uint64_t dst = 0;
        double weight = 1.0;
        if (!(ls >> src >> dst)) {
            GRAPHR_FATAL("malformed edge at line ", line_no, ": '",
                         line, "'");
        }
        ls >> weight; // optional third column
        edges.push_back(Edge{static_cast<VertexId>(src),
                             static_cast<VertexId>(dst), weight});
        max_id = std::max(
            {max_id, static_cast<VertexId>(src),
             static_cast<VertexId>(dst)});
    }
    const VertexId nv =
        std::max<VertexId>(declared_vertices,
                           edges.empty() ? 1 : max_id + 1);
    return CooGraph(nv, std::move(edges));
}

CooGraph
loadEdgeListText(const std::string &path)
{
    std::ifstream is = openIn(path);
    return loadEdgeListText(is);
}

void
saveBinary(const CooGraph &graph, std::ostream &os)
{
    os.write(kMagic.data(), kMagic.size());
    writeRaw(os, kVersion);
    writeRaw(os, graph.numVertices());
    writeRaw(os, graph.numEdges());
    for (const Edge &e : graph.edges()) {
        writeRaw(os, e.src);
        writeRaw(os, e.dst);
        writeRaw(os, e.weight);
    }
}

void
saveBinary(const CooGraph &graph, const std::string &path)
{
    std::ofstream os = openOut(path);
    saveBinary(graph, os);
}

CooGraph
loadBinary(std::istream &is)
{
    std::array<char, 4> magic{};
    is.read(magic.data(), magic.size());
    if (!is || magic != kMagic)
        GRAPHR_FATAL("not a GraphR binary graph file");
    const auto version = readRaw<std::uint32_t>(is);
    if (version != kVersion)
        GRAPHR_FATAL("unsupported binary graph version ", version);
    const auto nv = readRaw<VertexId>(is);
    const auto ne = readRaw<EdgeId>(is);
    std::vector<Edge> edges;
    edges.reserve(ne);
    for (EdgeId i = 0; i < ne; ++i) {
        Edge e;
        e.src = readRaw<VertexId>(is);
        e.dst = readRaw<VertexId>(is);
        e.weight = readRaw<double>(is);
        edges.push_back(e);
    }
    return CooGraph(nv, std::move(edges));
}

CooGraph
loadBinary(const std::string &path)
{
    std::ifstream is = openIn(path);
    return loadBinary(is);
}

} // namespace graphr
