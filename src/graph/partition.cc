#include "partition.hh"

#include "common/logging.hh"

namespace graphr
{

namespace
{

/** Round value up to the next multiple of unit. */
std::uint64_t
roundUp(std::uint64_t value, std::uint64_t unit)
{
    return (value + unit - 1) / unit * unit;
}

} // namespace

GridPartition::GridPartition(VertexId num_vertices,
                             const TilingParams &params)
    : numVertices_(num_vertices), params_(params)
{
    GRAPHR_ASSERT(params_.crossbarDim > 0, "crossbar dim must be > 0");
    GRAPHR_ASSERT(params_.crossbarsPerGe > 0, "need >= 1 crossbar per GE");
    GRAPHR_ASSERT(params_.numGe > 0, "need >= 1 graph engine");
    GRAPHR_ASSERT(num_vertices > 0, "graph must have vertices");

    tileWidth_ = static_cast<std::uint64_t>(params_.crossbarDim) *
                 params_.crossbarsPerGe * params_.numGe;
    tileCapacity_ = params_.crossbarDim * tileWidth_;

    // A block must hold a whole number of tile rows (height C) and
    // tile columns (width C*N*G). Pad the requested block size (or
    // the vertex count for the single-block case) up to a multiple of
    // lcm(C, tileWidth) = tileWidth (C divides tileWidth).
    const std::uint64_t unit = tileWidth_;
    if (params_.blockSize == 0) {
        blockSize_ = roundUp(num_vertices, unit);
    } else {
        blockSize_ = roundUp(params_.blockSize, unit);
    }
    paddedVertices_ = roundUp(num_vertices, blockSize_);

    blocksPerDim_ = paddedVertices_ / blockSize_;
    tileRowsPerBlock_ = blockSize_ / params_.crossbarDim;
    tileColsPerBlock_ = blockSize_ / tileWidth_;
}

std::uint64_t
GridPartition::tileIndex(VertexId i, VertexId j) const
{
    GRAPHR_ASSERT(i < paddedVertices_ && j < paddedVertices_,
                  "cell (", i, ",", j, ") outside padded grid ",
                  paddedVertices_);
    // Eq. 1: block coordinates.
    const std::uint64_t block_row = i / blockSize_;
    const std::uint64_t block_col = j / blockSize_;
    const std::uint64_t bi = blockIndex(block_row, block_col);
    // Eq. 4: offsets within the block.
    const std::uint64_t i_in_block = i - block_row * blockSize_;
    const std::uint64_t j_in_block = j - block_col * blockSize_;
    // Eq. 5: tile coordinates within the block.
    const std::uint64_t tile_row = i_in_block / params_.crossbarDim;
    const std::uint64_t tile_col = j_in_block / tileWidth_;
    // Eq. 6 (0-based): column-major within the block, blocks first.
    return bi * tilesPerBlock() + tile_row + tile_col * tileRowsPerBlock_;
}

TileCoord
GridPartition::tileCoord(std::uint64_t tile_index) const
{
    GRAPHR_ASSERT(tile_index < numTiles(), "tile index ", tile_index,
                  " out of range ", numTiles());
    TileCoord coord;
    const std::uint64_t bi = tile_index / tilesPerBlock();
    const std::uint64_t in_block = tile_index % tilesPerBlock();
    coord.blockRow = bi % blocksPerDim_;
    coord.blockCol = bi / blocksPerDim_;
    coord.tileRow = in_block % tileRowsPerBlock_;
    coord.tileCol = in_block / tileRowsPerBlock_;
    return coord;
}

void
GridPartition::tileOrigin(const TileCoord &coord, std::uint64_t &row0,
                          std::uint64_t &col0) const
{
    row0 = coord.blockRow * blockSize_ +
           coord.tileRow * params_.crossbarDim;
    col0 = coord.blockCol * blockSize_ + coord.tileCol * tileWidth_;
}

std::uint64_t
GridPartition::globalOrderId(VertexId i, VertexId j) const
{
    const std::uint64_t si = tileIndex(i, j);
    const TileCoord coord = tileCoord(si);
    std::uint64_t row0 = 0;
    std::uint64_t col0 = 0;
    tileOrigin(coord, row0, col0);
    // Eq. 7: offsets within the tile.
    const std::uint64_t sub_i = i - row0;
    const std::uint64_t sub_j = j - col0;
    // Eq. 8 (0-based): column-major within the tile.
    const std::uint64_t sub = sub_i + sub_j * params_.crossbarDim;
    // Eq. 9 (0-based).
    return si * tileCapacity_ + sub;
}

void
GridPartition::cellOfOrderId(std::uint64_t order_id, std::uint64_t &i,
                             std::uint64_t &j) const
{
    GRAPHR_ASSERT(order_id < numTiles() * tileCapacity_,
                  "order id out of range");
    const std::uint64_t si = order_id / tileCapacity_;
    const std::uint64_t sub = order_id % tileCapacity_;
    const TileCoord coord = tileCoord(si);
    std::uint64_t row0 = 0;
    std::uint64_t col0 = 0;
    tileOrigin(coord, row0, col0);
    i = row0 + sub % params_.crossbarDim;
    j = col0 + sub / params_.crossbarDim;
}

} // namespace graphr
