#include "coo.hh"

#include <algorithm>

#include "common/logging.hh"

namespace graphr
{

CooGraph::CooGraph(VertexId num_vertices, std::vector<Edge> edges)
    : numVertices_(num_vertices), edges_(std::move(edges))
{
    for (const Edge &e : edges_) {
        GRAPHR_ASSERT(e.src < numVertices_ && e.dst < numVertices_,
                      "edge (", e.src, ",", e.dst, ") out of range for |V|=",
                      numVertices_);
    }
}

void
CooGraph::addEdge(VertexId src, VertexId dst, Value weight)
{
    GRAPHR_ASSERT(src < numVertices_ && dst < numVertices_,
                  "edge (", src, ",", dst, ") out of range for |V|=",
                  numVertices_);
    edges_.push_back(Edge{src, dst, weight});
}

void
CooGraph::sortBySource()
{
    std::sort(edges_.begin(), edges_.end(),
              [](const Edge &a, const Edge &b) {
                  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
              });
}

void
CooGraph::dedupe()
{
    sortBySource();
    auto last = std::unique(edges_.begin(), edges_.end(),
                            [](const Edge &a, const Edge &b) {
                                return a.src == b.src && a.dst == b.dst;
                            });
    edges_.erase(last, edges_.end());
}

void
CooGraph::removeSelfLoops()
{
    auto last = std::remove_if(edges_.begin(), edges_.end(),
                               [](const Edge &e) { return e.src == e.dst; });
    edges_.erase(last, edges_.end());
}

std::vector<EdgeId>
CooGraph::outDegrees() const
{
    std::vector<EdgeId> deg(numVertices_, 0);
    for (const Edge &e : edges_)
        ++deg[e.src];
    return deg;
}

std::vector<EdgeId>
CooGraph::inDegrees() const
{
    std::vector<EdgeId> deg(numVertices_, 0);
    for (const Edge &e : edges_)
        ++deg[e.dst];
    return deg;
}

double
CooGraph::density() const
{
    if (numVertices_ == 0)
        return 0.0;
    const double nv = static_cast<double>(numVertices_);
    return static_cast<double>(numEdges()) / (nv * nv);
}

} // namespace graphr
