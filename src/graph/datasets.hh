/**
 * @file
 * Named synthetic stand-ins for the paper's evaluation datasets.
 *
 * Table 3 of the paper lists seven datasets. This module regenerates
 * each as a synthetic graph with matching vertex/edge counts (R-MAT
 * for the six social/web graphs, bipartite ratings for Netflix). A
 * scale factor divides both counts so that the two >=69M-edge graphs
 * stay tractable on a laptop; density (|E|/|V|^2), which drives the
 * paper's sparsity sensitivity, is approximately preserved by scaling
 * vertices by sqrt(scale) and edges by scale.
 */

#ifndef GRAPHR_GRAPH_DATASETS_HH
#define GRAPHR_GRAPH_DATASETS_HH

#include <string>
#include <vector>

#include "graph/coo.hh"

namespace graphr
{

/** Identifier for each paper dataset (Table 3). */
enum class DatasetId
{
    kWikiVote,    ///< WV: 7.0K vertices, 103K edges
    kSlashdot,    ///< SD: 82K vertices, 948K edges
    kAmazon,      ///< AZ: 262K vertices, 1.2M edges
    kWebGoogle,   ///< WG: 0.88M vertices, 5.1M edges
    kLiveJournal, ///< LJ: 4.8M vertices, 69M edges
    kOrkut,       ///< OK: 3.0M vertices, 106M edges
    kNetflix,     ///< NF: 480K users x 17.8K movies, 99M ratings
};

/** Static description of one dataset. */
struct DatasetInfo
{
    DatasetId id;
    std::string shortName;  ///< e.g. "WV"
    std::string fullName;   ///< e.g. "WikiVote"
    VertexId paperVertices; ///< |V| reported in Table 3
    EdgeId paperEdges;      ///< |E| reported in Table 3
    bool bipartite;         ///< true only for Netflix
    VertexId paperUsers;    ///< Netflix only
    VertexId paperItems;    ///< Netflix only
};

/** All seven datasets in Table 3 order. */
const std::vector<DatasetInfo> &allDatasets();

/** Lookup by id. */
const DatasetInfo &datasetInfo(DatasetId id);

/**
 * Generate the synthetic stand-in for a dataset.
 *
 * @param id which dataset
 * @param scale divide |E| by this factor (and |V| by sqrt(scale));
 *        1 reproduces the paper's size exactly.
 * @param seed generator seed
 */
CooGraph makeDataset(DatasetId id, double scale = 1.0,
                     std::uint64_t seed = 42);

/**
 * Scale used by the bench binaries. Reads the GRAPHR_DATASET_SCALE
 * environment variable (default kDefaultBenchScale) so the full-size
 * graphs can be regenerated when more time/memory is available.
 */
double benchScale(DatasetId id);

/** Default bench scale for the large (>=69M edge) datasets. */
inline constexpr double kLargeBenchScale = 32.0;

/** Default bench scale for the small/medium datasets. */
inline constexpr double kSmallBenchScale = 4.0;

} // namespace graphr

#endif // GRAPHR_GRAPH_DATASETS_HH
