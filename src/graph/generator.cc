#include "generator.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace graphr
{

namespace
{

/** Smallest power of two >= n. */
VertexId
ceilPow2(VertexId n)
{
    return std::bit_ceil(n);
}

} // namespace

CooGraph
makeRmat(const RmatParams &params)
{
    GRAPHR_ASSERT(params.numVertices > 1, "R-MAT needs >= 2 vertices");
    const double sum = params.a + params.b + params.c + params.d;
    GRAPHR_ASSERT(std::abs(sum - 1.0) < 1e-6,
                  "R-MAT probabilities sum to ", sum);

    const VertexId padded = ceilPow2(params.numVertices);
    const int levels = std::countr_zero(padded);
    Rng rng(params.seed);

    std::vector<Edge> edges;
    edges.reserve(params.numEdges);
    while (edges.size() < params.numEdges) {
        VertexId row = 0;
        VertexId col = 0;
        for (int level = 0; level < levels; ++level) {
            // Per-level probability noise keeps the generated graph from
            // collapsing onto exact quadrant boundaries.
            const double r = rng.uniform();
            const VertexId bit = VertexId{1} << (levels - 1 - level);
            if (r < params.a) {
                // top-left: nothing to add
            } else if (r < params.a + params.b) {
                col |= bit;
            } else if (r < params.a + params.b + params.c) {
                row |= bit;
            } else {
                row |= bit;
                col |= bit;
            }
        }
        if (row >= params.numVertices || col >= params.numVertices)
            continue;
        if (params.removeSelfLoops && row == col)
            continue;
        const double w = params.maxWeight <= 1.0
                             ? 1.0
                             : 1.0 + std::floor(rng.uniform() *
                                                (params.maxWeight - 1.0));
        edges.push_back(Edge{row, col, w});
    }

    CooGraph graph(params.numVertices, std::move(edges));
    if (params.dedupe)
        graph.dedupe();
    return graph;
}

CooGraph
makeErdosRenyi(VertexId num_vertices, EdgeId num_edges, std::uint64_t seed,
               double max_weight)
{
    GRAPHR_ASSERT(num_vertices > 1, "ER needs >= 2 vertices");
    Rng rng(seed);
    std::vector<Edge> edges;
    edges.reserve(num_edges);
    while (edges.size() < num_edges) {
        const auto src = static_cast<VertexId>(rng.below(num_vertices));
        const auto dst = static_cast<VertexId>(rng.below(num_vertices));
        if (src == dst)
            continue;
        const double w = max_weight <= 1.0
                             ? 1.0
                             : 1.0 + std::floor(rng.uniform() *
                                                (max_weight - 1.0));
        edges.push_back(Edge{src, dst, w});
    }
    return CooGraph(num_vertices, std::move(edges));
}

CooGraph
makeGrid2d(VertexId width, VertexId height, std::uint64_t seed,
           double max_weight)
{
    GRAPHR_ASSERT(width > 0 && height > 0, "grid dimensions must be > 0");
    Rng rng(seed);
    const VertexId nv = width * height;
    std::vector<Edge> edges;
    edges.reserve(static_cast<std::size_t>(nv) * 4);
    auto id = [width](VertexId x, VertexId y) { return y * width + x; };
    auto weight = [&rng, max_weight]() {
        return 1.0 + std::floor(rng.uniform() * std::max(0.0,
                                                         max_weight - 1.0));
    };
    for (VertexId y = 0; y < height; ++y) {
        for (VertexId x = 0; x < width; ++x) {
            if (x + 1 < width) {
                const double w = weight();
                edges.push_back(Edge{id(x, y), id(x + 1, y), w});
                edges.push_back(Edge{id(x + 1, y), id(x, y), w});
            }
            if (y + 1 < height) {
                const double w = weight();
                edges.push_back(Edge{id(x, y), id(x, y + 1), w});
                edges.push_back(Edge{id(x, y + 1), id(x, y), w});
            }
        }
    }
    return CooGraph(nv, std::move(edges));
}

CooGraph
makeChain(VertexId num_vertices)
{
    GRAPHR_ASSERT(num_vertices > 0, "chain needs >= 1 vertex");
    std::vector<Edge> edges;
    edges.reserve(num_vertices - 1);
    for (VertexId v = 0; v + 1 < num_vertices; ++v)
        edges.push_back(Edge{v, v + 1, 1.0});
    return CooGraph(num_vertices, std::move(edges));
}

CooGraph
makeStar(VertexId num_vertices)
{
    GRAPHR_ASSERT(num_vertices > 1, "star needs >= 2 vertices");
    std::vector<Edge> edges;
    edges.reserve(num_vertices - 1);
    for (VertexId v = 1; v < num_vertices; ++v)
        edges.push_back(Edge{0, v, 1.0});
    return CooGraph(num_vertices, std::move(edges));
}

CooGraph
makeComplete(VertexId num_vertices)
{
    GRAPHR_ASSERT(num_vertices > 1, "complete graph needs >= 2 vertices");
    std::vector<Edge> edges;
    edges.reserve(static_cast<std::size_t>(num_vertices) *
                  (num_vertices - 1));
    for (VertexId s = 0; s < num_vertices; ++s)
        for (VertexId d = 0; d < num_vertices; ++d)
            if (s != d)
                edges.push_back(Edge{s, d, 1.0});
    return CooGraph(num_vertices, std::move(edges));
}

CooGraph
makeBipartiteRatings(VertexId num_users, VertexId num_items,
                     EdgeId num_ratings, std::uint64_t seed)
{
    GRAPHR_ASSERT(num_users > 0 && num_items > 0,
                  "bipartite graph needs users and items");
    Rng rng(seed);
    const VertexId nv = num_users + num_items;
    std::vector<Edge> edges;
    edges.reserve(num_ratings);
    for (EdgeId i = 0; i < num_ratings; ++i) {
        const auto user = static_cast<VertexId>(rng.below(num_users));
        const auto item = static_cast<VertexId>(
            num_users + rng.below(num_items));
        const double rating = 1.0 + std::floor(rng.uniform() * 5.0);
        edges.push_back(Edge{user, item, rating});
    }
    return CooGraph(nv, std::move(edges));
}

} // namespace graphr
