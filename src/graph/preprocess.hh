/**
 * @file
 * Edge-list preprocessing for the streaming-apply execution model
 * (paper section 3.4).
 *
 * Preprocessing sorts the COO edge list by the global order ID so
 * that all edges of one tile (subgraph) are contiguous and tiles
 * appear in streaming-apply (column-major) order. Loading a block or
 * tile then requires only sequential I/O. The paper performs this
 * once, offline, in software; so do we.
 */

#ifndef GRAPHR_GRAPH_PREPROCESS_HH
#define GRAPHR_GRAPH_PREPROCESS_HH

#include <span>
#include <vector>

#include "graph/coo.hh"
#include "graph/partition.hh"

namespace graphr
{

/** One non-empty tile in the ordered edge list. */
struct TileSpan
{
    std::uint64_t tileIndex = 0; ///< global tile index SI
    std::uint64_t firstEdge = 0; ///< offset into the ordered edge list
    std::uint64_t numEdges = 0;  ///< non-zeros in this tile
};

/**
 * Pull-based stream of already-ordered edges, one non-empty tile at a
 * time. This is the streaming-decode seam between the on-disk plan
 * store and the engine: a decoder materialises only one tile's edges
 * in scratch memory per step, and OrderedEdgeList drains the stream
 * without re-sorting. Implementations must yield tiles in strictly
 * increasing tileIndex order with each tile's edges in streaming-apply
 * (global order ID) order — the same canonical shape the sorting
 * constructor produces.
 */
class TileChunkSource
{
  public:
    struct Chunk
    {
        std::uint64_t tileIndex = 0;
        /** Edges of this tile; valid only until the next next(). */
        std::span<const Edge> edges;
    };

    virtual ~TileChunkSource() = default;

    /** Advance to the next non-empty tile; false at end of stream. */
    virtual bool next(Chunk &chunk) = 0;
    /** Total edges the stream will yield (for reservation). */
    virtual std::uint64_t totalEdges() const = 0;
    /** Total non-empty tiles the stream will yield. */
    virtual std::uint64_t totalTiles() const = 0;
};

/**
 * The ordered edge list plus the tile directory built from it. This
 * is the representation GraphR's controller streams out of memory
 * ReRAM; downstream consumers iterate non-empty tiles in order.
 */
class OrderedEdgeList
{
  public:
    /**
     * Preprocess a graph: compute I(i, j) for every edge, sort, and
     * build the non-empty tile directory. O(E log E).
     */
    OrderedEdgeList(const CooGraph &graph, const GridPartition &partition);

    /**
     * Adopt an already-ordered edge list and tile directory without
     * re-sorting: the deserialisation path of the on-disk plan store.
     * The caller (the store, after checksum validation) guarantees
     * the parts were produced by the sorting constructor under an
     * identical partition.
     */
    OrderedEdgeList(const GridPartition &partition,
                    std::vector<Edge> edges,
                    std::vector<TileSpan> tiles);

    /**
     * Drain a tile-at-a-time chunk source (streaming decode of a
     * compressed plan artifact) without re-sorting. The source
     * guarantees canonical streaming order; like the adopting
     * constructor this does not count as a preprocessing sort.
     */
    OrderedEdgeList(const GridPartition &partition,
                    TileChunkSource &chunks);

    const GridPartition &partition() const { return partition_; }
    std::span<const Edge> edges() const { return edges_; }
    std::span<const TileSpan> tiles() const { return tiles_; }

    /** Number of non-empty tiles ("subgraphs GEs actually process"). */
    std::uint64_t numNonEmptyTiles() const { return tiles_.size(); }

    /** Edges of one tile. */
    std::span<const Edge>
    tileEdges(const TileSpan &span) const
    {
        return std::span<const Edge>(edges_.data() + span.firstEdge,
                                     span.numEdges);
    }

    /**
     * Occupancy: average non-zeros per non-empty tile divided by the
     * tile capacity; this is the fraction of crossbar cells doing
     * useful work (the "waste due to sparsity" of section 1).
     */
    double occupancy() const;

    /** Non-empty tiles restricted to one block, in order. */
    std::vector<TileSpan> tilesOfBlock(std::uint64_t block_index) const;

    /**
     * Process-wide count of O(E log E) preprocessing sorts executed
     * (the adopting constructor does not count). Lets tests assert a
     * warm plan store makes a run sort-free.
     */
    static std::uint64_t sortsPerformed();

  private:
    GridPartition partition_;
    std::vector<Edge> edges_;
    std::vector<TileSpan> tiles_;
};

} // namespace graphr

#endif // GRAPHR_GRAPH_PREPROCESS_HH
