/**
 * @file
 * Synthetic graph generators.
 *
 * The paper evaluates on SNAP/network-repository datasets and the
 * Netflix prize matrix, none of which ship with this repository. Per
 * DESIGN.md section 2.2, each dataset is substituted by a generator
 * with matching vertex count, edge count, and degree skew: R-MAT for
 * the social/web graphs, a uniform bipartite sampler for Netflix, and
 * simple deterministic topologies for tests and examples.
 */

#ifndef GRAPHR_GRAPH_GENERATOR_HH
#define GRAPHR_GRAPH_GENERATOR_HH

#include <cstdint>

#include "graph/coo.hh"

namespace graphr
{

/** Parameters for the recursive-matrix (R-MAT) generator. */
struct RmatParams
{
    VertexId numVertices = 1024;
    EdgeId numEdges = 8192;
    /** Quadrant probabilities; must sum to ~1. Defaults follow Graph500. */
    double a = 0.57;
    double b = 0.19;
    double c = 0.19;
    double d = 0.05;
    /** Edge weights drawn uniformly from [1, maxWeight]. */
    double maxWeight = 1.0;
    std::uint64_t seed = 1;
    bool removeSelfLoops = true;
    bool dedupe = false;
};

/**
 * Generate a scale-free directed graph with R-MAT. The vertex count
 * is rounded up to a power of two internally and truncated back, as
 * in the reference implementation.
 */
CooGraph makeRmat(const RmatParams &params);

/** Uniform (Erdős–Rényi style) random directed multigraph. */
CooGraph makeErdosRenyi(VertexId num_vertices, EdgeId num_edges,
                        std::uint64_t seed, double max_weight = 1.0);

/**
 * 4-connected 2-D grid (road-network stand-in for the navigation
 * example); vertex (x, y) has id y * width + x. Edge weights are
 * uniform in [1, maxWeight].
 */
CooGraph makeGrid2d(VertexId width, VertexId height,
                    std::uint64_t seed = 7, double max_weight = 10.0);

/** Directed chain 0 -> 1 -> ... -> n-1 with unit weights. */
CooGraph makeChain(VertexId num_vertices);

/** Star: hub 0 points at every other vertex. */
CooGraph makeStar(VertexId num_vertices);

/** Complete directed graph without self loops (small n only). */
CooGraph makeComplete(VertexId num_vertices);

/**
 * Bipartite rating graph (Netflix stand-in): users [0, numUsers) each
 * rate items [numUsers, numUsers + numItems); ratings are 1..5.
 * Returned as a directed graph user -> item.
 */
CooGraph makeBipartiteRatings(VertexId num_users, VertexId num_items,
                              EdgeId num_ratings, std::uint64_t seed);

} // namespace graphr

#endif // GRAPHR_GRAPH_GENERATOR_HH
