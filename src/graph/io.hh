/**
 * @file
 * Graph serialisation: text edge lists (SNAP-compatible) and a
 * compact binary format.
 *
 * The paper's out-of-core workflow (Fig. 9) stores the preprocessed
 * edge list on disk and streams it block by block; these loaders are
 * the software side of that workflow and let users bring their own
 * graphs (e.g. real SNAP downloads) instead of the synthetic
 * stand-ins.
 */

#ifndef GRAPHR_GRAPH_IO_HH
#define GRAPHR_GRAPH_IO_HH

#include <iosfwd>
#include <string>

#include "graph/coo.hh"

namespace graphr
{

/**
 * Write "src dst weight" lines. Lines starting with '#' are comments
 * (SNAP convention); a header comment records the vertex count.
 */
void saveEdgeListText(const CooGraph &graph, std::ostream &os);
void saveEdgeListText(const CooGraph &graph, const std::string &path);

/**
 * Parse a text edge list. Accepts 2-column (unweighted, weight = 1)
 * and 3-column lines; skips blank lines and '#' comments. The vertex
 * count is max id + 1 unless a "# vertices: N" header is present.
 * Malformed lines are a fatal (user) error.
 */
CooGraph loadEdgeListText(std::istream &is);
CooGraph loadEdgeListText(const std::string &path);

/**
 * Binary format: magic "GRPH" + u32 version + u32 vertex count +
 * u64 edge count, then packed records of (u32 src, u32 dst,
 * f64 weight). Round-trips exactly.
 */
void saveBinary(const CooGraph &graph, std::ostream &os);
void saveBinary(const CooGraph &graph, const std::string &path);
CooGraph loadBinary(std::istream &is);
CooGraph loadBinary(const std::string &path);

} // namespace graphr

#endif // GRAPHR_GRAPH_IO_HH
