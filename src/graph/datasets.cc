#include "datasets.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "graph/generator.hh"

namespace graphr
{

const std::vector<DatasetInfo> &
allDatasets()
{
    static const std::vector<DatasetInfo> table = {
        {DatasetId::kWikiVote, "WV", "WikiVote", 7000, 103000, false, 0, 0},
        {DatasetId::kSlashdot, "SD", "Slashdot", 82000, 948000, false, 0, 0},
        {DatasetId::kAmazon, "AZ", "Amazon", 262000, 1200000, false, 0, 0},
        {DatasetId::kWebGoogle, "WG", "WebGoogle", 880000, 5100000, false, 0,
         0},
        {DatasetId::kLiveJournal, "LJ", "LiveJournal", 4800000, 69000000,
         false, 0, 0},
        {DatasetId::kOrkut, "OK", "Orkut", 3000000, 106000000, false, 0, 0},
        {DatasetId::kNetflix, "NF", "Netflix", 497800, 99000000, true,
         480000, 17800},
    };
    return table;
}

const DatasetInfo &
datasetInfo(DatasetId id)
{
    for (const DatasetInfo &info : allDatasets()) {
        if (info.id == id)
            return info;
    }
    GRAPHR_PANIC("unknown dataset id ", static_cast<int>(id));
}

CooGraph
makeDataset(DatasetId id, double scale, std::uint64_t seed)
{
    GRAPHR_ASSERT(scale >= 1.0, "scale must be >= 1, got ", scale);
    const DatasetInfo &info = datasetInfo(id);
    const double vertex_scale = std::sqrt(scale);

    if (info.bipartite) {
        const auto users = static_cast<VertexId>(
            std::max(16.0, info.paperUsers / vertex_scale));
        const auto items = static_cast<VertexId>(
            std::max(16.0, info.paperItems / vertex_scale));
        const auto ratings =
            static_cast<EdgeId>(info.paperEdges / scale);
        return makeBipartiteRatings(users, items, ratings, seed);
    }

    RmatParams params;
    params.numVertices = static_cast<VertexId>(
        std::max(64.0, info.paperVertices / vertex_scale));
    params.numEdges = static_cast<EdgeId>(info.paperEdges / scale);
    params.maxWeight = 15.0; // weighted for SSSP; ignored by PR/BFS
    params.seed = seed + static_cast<std::uint64_t>(id) * 1315423911ull;
    return makeRmat(params);
}

double
benchScale(DatasetId id)
{
    if (const char *env = std::getenv("GRAPHR_DATASET_SCALE")) {
        const double s = std::atof(env);
        if (s >= 1.0)
            return s;
        GRAPHR_WARN("ignoring GRAPHR_DATASET_SCALE=", env);
    }
    switch (id) {
      case DatasetId::kLiveJournal:
      case DatasetId::kOrkut:
      case DatasetId::kNetflix:
        return kLargeBenchScale;
      case DatasetId::kWebGoogle:
        return kSmallBenchScale * 2;
      default:
        return kSmallBenchScale;
    }
}

} // namespace graphr
