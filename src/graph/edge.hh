/**
 * @file
 * Edge record used by the coordinate-list (COO) representation.
 */

#ifndef GRAPHR_GRAPH_EDGE_HH
#define GRAPHR_GRAPH_EDGE_HH

#include "common/types.hh"

namespace graphr
{

/**
 * One directed, weighted edge. GraphR assumes a COO edge list as its
 * on-disk and memory-ReRAM representation (paper section 2.4); for
 * unweighted algorithms the weight is fixed at 1.
 */
struct Edge
{
    VertexId src = 0;
    VertexId dst = 0;
    Value weight = 1.0;

    bool
    operator==(const Edge &other) const
    {
        return src == other.src && dst == other.dst &&
               weight == other.weight;
    }
};

} // namespace graphr

#endif // GRAPHR_GRAPH_EDGE_HH
