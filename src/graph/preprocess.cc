#include "preprocess.hh"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <utility>

#include "common/logging.hh"
#include "perf/counters.hh"

namespace graphr
{

namespace
{

/** Counts every O(E log E) preprocessing sort, process-wide. */
std::atomic<std::uint64_t> g_sorts_performed{0};

} // namespace

std::uint64_t
OrderedEdgeList::sortsPerformed()
{
    return g_sorts_performed.load(std::memory_order_relaxed);
}

OrderedEdgeList::OrderedEdgeList(const CooGraph &graph,
                                 const GridPartition &partition)
    : partition_(partition)
{
    GRAPHR_ASSERT(graph.numVertices() == partition.numVertices(),
                  "partition built for |V|=", partition.numVertices(),
                  " but graph has |V|=", graph.numVertices());
    g_sorts_performed.fetch_add(1, std::memory_order_relaxed);
    static perf::Counter &sorts =
        perf::Registry::instance().counter("preprocess.sorts");
    sorts.add();

    const std::span<const Edge> input = graph.edges();
    std::vector<std::uint64_t> keys(input.size());
    std::vector<std::uint32_t> perm(input.size());
    for (std::size_t e = 0; e < input.size(); ++e) {
        keys[e] = partition_.globalOrderId(input[e].src, input[e].dst);
        perm[e] = static_cast<std::uint32_t>(e);
    }
    std::sort(perm.begin(), perm.end(),
              [&keys](std::uint32_t a, std::uint32_t b) {
                  return keys[a] < keys[b];
              });

    edges_.resize(input.size());
    for (std::size_t e = 0; e < input.size(); ++e)
        edges_[e] = input[perm[e]];

    // Build the non-empty tile directory in a single pass.
    const std::uint64_t capacity = partition_.tileCapacity();
    std::uint64_t prev_tile = ~std::uint64_t{0};
    for (std::size_t e = 0; e < edges_.size(); ++e) {
        const std::uint64_t tile = keys[perm[e]] / capacity;
        if (tile != prev_tile) {
            tiles_.push_back(TileSpan{tile, e, 1});
            prev_tile = tile;
        } else {
            ++tiles_.back().numEdges;
        }
    }
}

OrderedEdgeList::OrderedEdgeList(const GridPartition &partition,
                                 std::vector<Edge> edges,
                                 std::vector<TileSpan> tiles)
    : partition_(partition), edges_(std::move(edges)),
      tiles_(std::move(tiles))
{
}

OrderedEdgeList::OrderedEdgeList(const GridPartition &partition,
                                 TileChunkSource &chunks)
    : partition_(partition)
{
    edges_.reserve(chunks.totalEdges());
    tiles_.reserve(chunks.totalTiles());
    TileChunkSource::Chunk chunk;
    while (chunks.next(chunk)) {
        tiles_.push_back(TileSpan{chunk.tileIndex, edges_.size(),
                                  chunk.edges.size()});
        edges_.insert(edges_.end(), chunk.edges.begin(),
                      chunk.edges.end());
    }
}

double
OrderedEdgeList::occupancy() const
{
    if (tiles_.empty())
        return 0.0;
    const double nnz = static_cast<double>(edges_.size());
    const double cells = static_cast<double>(tiles_.size()) *
                         static_cast<double>(partition_.tileCapacity());
    return nnz / cells;
}

std::vector<TileSpan>
OrderedEdgeList::tilesOfBlock(std::uint64_t block_index) const
{
    const std::uint64_t per_block = partition_.tilesPerBlock();
    const std::uint64_t first = block_index * per_block;
    const std::uint64_t last = first + per_block;
    std::vector<TileSpan> out;
    for (const TileSpan &span : tiles_) {
        if (span.tileIndex >= first && span.tileIndex < last)
            out.push_back(span);
    }
    return out;
}

} // namespace graphr
