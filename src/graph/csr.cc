#include "csr.hh"

namespace graphr
{

CsrGraph::CsrGraph(const CooGraph &coo, Direction dir)
    : numVertices_(coo.numVertices()), dir_(dir)
{
    offsets_.assign(static_cast<std::size_t>(numVertices_) + 1, 0);
    for (const Edge &e : coo.edges()) {
        const VertexId key = dir == Direction::kOut ? e.src : e.dst;
        ++offsets_[key + 1];
    }
    for (std::size_t v = 0; v < numVertices_; ++v)
        offsets_[v + 1] += offsets_[v];

    adj_.resize(coo.edges().size());
    std::vector<EdgeId> cursor(offsets_.begin(), offsets_.end() - 1);
    for (const Edge &e : coo.edges()) {
        const VertexId key = dir == Direction::kOut ? e.src : e.dst;
        const VertexId other = dir == Direction::kOut ? e.dst : e.src;
        adj_[cursor[key]++] = Adjacency{other, e.weight};
    }
}

} // namespace graphr
