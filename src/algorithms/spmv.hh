/**
 * @file
 * Golden sparse matrix-vector multiplication (Table 2, first row).
 *
 * The paper's SpMV application computes, per iteration,
 *   y[dst] = sum over in-edges of (x[src] / outdeg(src)) * weight,
 * i.e. the transition-matrix product used by PageRank without the
 * teleport term.
 */

#ifndef GRAPHR_ALGORITHMS_SPMV_HH
#define GRAPHR_ALGORITHMS_SPMV_HH

#include <vector>

#include "graph/coo.hh"

namespace graphr
{

/**
 * One SpMV pass y = A^T x with A the weighted, out-degree-normalised
 * adjacency matrix (paper Table 2 processEdge/reduce definitions).
 * Vertices with zero out-degree contribute nothing.
 */
std::vector<Value> spmv(const CooGraph &graph, const std::vector<Value> &x);

/**
 * Plain y = A^T x without degree normalisation, used by tests to
 * validate the crossbar analog MVM against a digital computation.
 */
std::vector<Value> spmvRaw(const CooGraph &graph,
                           const std::vector<Value> &x);

} // namespace graphr

#endif // GRAPHR_ALGORITHMS_SPMV_HH
