#include "traversal.hh"

#include "common/logging.hh"

namespace graphr
{

namespace
{

TraversalResult
relax(const CooGraph &graph, VertexId source, bool unit_weights)
{
    GRAPHR_ASSERT(source < graph.numVertices(), "source ", source,
                  " out of range");
    const VertexId nv = graph.numVertices();

    TraversalResult result;
    result.dist.assign(nv, kInfDistance);
    result.parent.assign(nv, kInvalidVertex);
    result.dist[source] = 0.0;
    result.parent[source] = source;

    CsrGraph out(graph, CsrGraph::Direction::kOut);

    std::vector<Value> dist(nv, kInfDistance);
    dist[source] = 0.0;
    std::vector<bool> active(nv, false);
    active[source] = true;
    std::uint64_t active_count = 1;

    while (active_count > 0) {
        result.activePerRound.push_back(active_count);
        std::vector<bool> next_active(nv, false);
        std::uint64_t next_count = 0;
        for (VertexId u = 0; u < nv; ++u) {
            if (!active[u])
                continue;
            for (const Adjacency &adj : out.neighbors(u)) {
                const Value w = unit_weights ? 1.0 : adj.weight;
                GRAPHR_ASSERT(w >= 0.0, "negative edge weight");
                const Value cand = dist[u] + w;
                if (cand < dist[adj.neighbor]) {
                    dist[adj.neighbor] = cand;
                    result.parent[adj.neighbor] = u;
                    if (!next_active[adj.neighbor]) {
                        next_active[adj.neighbor] = true;
                        ++next_count;
                    }
                }
            }
        }
        active = std::move(next_active);
        active_count = next_count;
        ++result.iterations;
    }
    result.dist = std::move(dist);
    return result;
}

} // namespace

TraversalResult
sssp(const CooGraph &graph, VertexId source)
{
    return relax(graph, source, /*unit_weights=*/false);
}

TraversalResult
bfs(const CooGraph &graph, VertexId source)
{
    return relax(graph, source, /*unit_weights=*/true);
}

RelaxationSweep::RelaxationSweep(const CooGraph &graph, VertexId source,
                                 bool unit_weights)
    : graph_(graph), outAdj_(graph, CsrGraph::Direction::kOut),
      mode_(unit_weights ? WeightMode::kUnit : WeightMode::kOriginal)
{
    GRAPHR_ASSERT(source < graph.numVertices(), "source out of range");
    dist_.assign(graph.numVertices(), kInfDistance);
    active_.assign(graph.numVertices(), false);
    dist_[source] = 0.0;
    active_[source] = true;
    activeCount_ = 1;
}

RelaxationSweep::RelaxationSweep(const CooGraph &graph,
                                 std::vector<Value> init_labels,
                                 std::vector<bool> init_active,
                                 WeightMode mode)
    : graph_(graph), outAdj_(graph, CsrGraph::Direction::kOut),
      mode_(mode), dist_(std::move(init_labels)),
      active_(std::move(init_active))
{
    GRAPHR_ASSERT(dist_.size() == graph.numVertices() &&
                      active_.size() == graph.numVertices(),
                  "initial label/active length mismatch");
    activeCount_ = 0;
    for (const bool a : active_)
        activeCount_ += a ? 1 : 0;
}

std::uint64_t
RelaxationSweep::step()
{
    const VertexId nv = graph_.numVertices();
    std::vector<bool> next_active(nv, false);
    std::uint64_t updated = 0;
    for (VertexId u = 0; u < nv; ++u) {
        if (!active_[u])
            continue;
        for (const Adjacency &adj : outAdj_.neighbors(u)) {
            const Value w = mode_ == WeightMode::kOriginal ? adj.weight
                            : mode_ == WeightMode::kUnit   ? 1.0
                                                           : 0.0;
            const Value cand = dist_[u] + w;
            if (cand < dist_[adj.neighbor]) {
                dist_[adj.neighbor] = cand;
                if (!next_active[adj.neighbor]) {
                    next_active[adj.neighbor] = true;
                    ++updated;
                }
            }
        }
    }
    active_ = std::move(next_active);
    activeCount_ = updated;
    return updated;
}

} // namespace graphr
