/**
 * @file
 * Golden PageRank (paper Fig. 13 vertex program).
 */

#ifndef GRAPHR_ALGORITHMS_PAGERANK_HH
#define GRAPHR_ALGORITHMS_PAGERANK_HH

#include <vector>

#include "graph/coo.hh"

namespace graphr
{

/** PageRank configuration. */
struct PageRankParams
{
    double damping = 0.8;  ///< r in the paper (random-surf probability)
    int maxIterations = 20;
    double tolerance = 1e-6; ///< L1 convergence threshold; <=0 disables
};

/** Result of a PageRank run. */
struct PageRankResult
{
    std::vector<Value> ranks;
    int iterations = 0;
    bool converged = false;
};

/**
 * Reference PageRank: PR_{t+1} = r * M PR_t + (1 - r) * e, with
 * dangling-vertex mass redistributed uniformly so the ranks stay a
 * probability distribution.
 */
PageRankResult pagerank(const CooGraph &graph, const PageRankParams &params);

/** One synchronous PageRank iteration (exposed for the mappings). */
std::vector<Value> pagerankIteration(const CooGraph &graph,
                                     const std::vector<Value> &ranks,
                                     const std::vector<EdgeId> &out_degrees,
                                     double damping);

} // namespace graphr

#endif // GRAPHR_ALGORITHMS_PAGERANK_HH
