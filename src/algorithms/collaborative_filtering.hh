/**
 * @file
 * Golden collaborative filtering by matrix factorisation (paper
 * section 5.1: "On Netflix(NF), we run collaborative filtering (CF),
 * and the feature length used is 32").
 *
 * We implement alternating gradient-descent matrix factorisation over
 * the bipartite user-item rating graph: R ~= U V^T with feature
 * vectors of length K. Each epoch streams every rating, exactly the
 * edge-centric structure GraphR accelerates (the MACs of the
 * prediction u . v dominate, making CF a parallel-MAC workload).
 */

#ifndef GRAPHR_ALGORITHMS_COLLABORATIVE_FILTERING_HH
#define GRAPHR_ALGORITHMS_COLLABORATIVE_FILTERING_HH

#include <cstdint>
#include <vector>

#include "graph/coo.hh"

namespace graphr
{

/** CF/SGD hyper-parameters. */
struct CfParams
{
    VertexId numUsers = 0;      ///< vertices [0, numUsers) are users
    int featureLength = 32;     ///< K (paper uses 32)
    int epochs = 5;
    double learningRate = 0.01;
    double regularization = 0.05;
    std::uint64_t seed = 11;
};

/** Result of a CF training run. */
struct CfResult
{
    /** Row-major numUsers x K user factors. */
    std::vector<double> userFactors;
    /** Row-major numItems x K item factors. */
    std::vector<double> itemFactors;
    /** Training RMSE after each epoch. */
    std::vector<double> rmsePerEpoch;
};

/**
 * Train factors on a bipartite rating graph (edges user -> item with
 * weight = rating). Item vertex ids start at params.numUsers.
 */
CfResult collaborativeFiltering(const CooGraph &ratings,
                                const CfParams &params);

/** RMSE of the factor model over the rating edges. */
double cfRmse(const CooGraph &ratings, VertexId num_users, int k,
              const std::vector<double> &user_factors,
              const std::vector<double> &item_factors);

} // namespace graphr

#endif // GRAPHR_ALGORITHMS_COLLABORATIVE_FILTERING_HH
