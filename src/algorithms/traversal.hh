/**
 * @file
 * Golden BFS and SSSP (paper Fig. 14 / Table 2 vertex programs).
 *
 * Both are synchronous Bellman-Ford style relaxations: processEdge is
 * an addition, reduce is min — the paper's "parallel add-op" pattern.
 * BFS is SSSP with all edge weights forced to 1.
 */

#ifndef GRAPHR_ALGORITHMS_TRAVERSAL_HH
#define GRAPHR_ALGORITHMS_TRAVERSAL_HH

#include <vector>

#include "graph/coo.hh"
#include "graph/csr.hh"

namespace graphr
{

/** Result of an SSSP/BFS run. */
struct TraversalResult
{
    std::vector<Value> dist;       ///< distance label per vertex
    std::vector<VertexId> parent;  ///< shortest-path tree parent
    int iterations = 0;            ///< synchronous rounds executed
    /** Active-vertex count per round (drives the GraphR cost model). */
    std::vector<std::uint64_t> activePerRound;
};

/**
 * Synchronous single-source shortest paths. Edge weights must be
 * non-negative. Terminates when no distance label changes.
 */
TraversalResult sssp(const CooGraph &graph, VertexId source);

/** BFS: level labels; equals sssp() with unit weights. */
TraversalResult bfs(const CooGraph &graph, VertexId source);

/**
 * How edge weights enter the relaxation candidate label:
 * kOriginal -> label(u) + w (SSSP), kUnit -> label(u) + 1 (BFS),
 * kZero -> label(u) (WCC min-label propagation).
 */
enum class WeightMode
{
    kOriginal,
    kUnit,
    kZero,
};

/**
 * Round-by-round synchronous min-relaxation exposing the per-round
 * active set: used by the GraphR simulator to know which tiles a
 * round touches. Covers SSSP, BFS and WCC-style label propagation
 * (all the paper's parallel-add-op workloads).
 */
class RelaxationSweep
{
  public:
    /** Single-source form (SSSP/BFS). */
    RelaxationSweep(const CooGraph &graph, VertexId source,
                    bool unit_weights);

    /**
     * General form: explicit initial labels and active set, with a
     * weight mode (WCC uses all-active, label = id, kZero).
     */
    RelaxationSweep(const CooGraph &graph,
                    std::vector<Value> init_labels,
                    std::vector<bool> init_active, WeightMode mode);

    /** Vertices active at the start of the current round. */
    const std::vector<bool> &active() const { return active_; }

    /** Current distance labels. */
    const std::vector<Value> &dist() const { return dist_; }

    /** Whether any vertex is still active. */
    bool done() const { return activeCount_ == 0; }

    /** Count of active vertices. */
    std::uint64_t activeCount() const { return activeCount_; }

    /** Execute one synchronous round; returns updated-vertex count. */
    std::uint64_t step();

  private:
    const CooGraph &graph_;
    CsrGraph outAdj_;
    WeightMode mode_;
    std::vector<Value> dist_;
    std::vector<bool> active_;
    std::uint64_t activeCount_ = 0;
};

} // namespace graphr

#endif // GRAPHR_ALGORITHMS_TRAVERSAL_HH
