#include "collaborative_filtering.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace graphr
{

double
cfRmse(const CooGraph &ratings, VertexId num_users, int k,
       const std::vector<double> &user_factors,
       const std::vector<double> &item_factors)
{
    GRAPHR_ASSERT(ratings.numEdges() > 0, "no ratings");
    double sse = 0.0;
    for (const Edge &e : ratings.edges()) {
        const std::size_t u = static_cast<std::size_t>(e.src) * k;
        const std::size_t i =
            static_cast<std::size_t>(e.dst - num_users) * k;
        double pred = 0.0;
        for (int f = 0; f < k; ++f)
            pred += user_factors[u + f] * item_factors[i + f];
        const double err = pred - e.weight;
        sse += err * err;
    }
    return std::sqrt(sse / static_cast<double>(ratings.numEdges()));
}

CfResult
collaborativeFiltering(const CooGraph &ratings, const CfParams &params)
{
    GRAPHR_ASSERT(params.numUsers > 0 &&
                      params.numUsers < ratings.numVertices(),
                  "invalid user count ", params.numUsers);
    GRAPHR_ASSERT(params.featureLength > 0, "feature length must be > 0");
    const VertexId num_items = ratings.numVertices() - params.numUsers;
    const int k = params.featureLength;

    for (const Edge &e : ratings.edges()) {
        GRAPHR_ASSERT(e.src < params.numUsers, "rating source ", e.src,
                      " is not a user");
        GRAPHR_ASSERT(e.dst >= params.numUsers, "rating target ", e.dst,
                      " is not an item");
    }

    Rng rng(params.seed);
    CfResult result;
    result.userFactors.resize(static_cast<std::size_t>(params.numUsers) *
                              k);
    result.itemFactors.resize(static_cast<std::size_t>(num_items) * k);
    const double init_scale = 1.0 / std::sqrt(static_cast<double>(k));
    for (double &f : result.userFactors)
        f = rng.uniform() * init_scale;
    for (double &f : result.itemFactors)
        f = rng.uniform() * init_scale;

    for (int epoch = 0; epoch < params.epochs; ++epoch) {
        for (const Edge &e : ratings.edges()) {
            const std::size_t u = static_cast<std::size_t>(e.src) * k;
            const std::size_t i =
                static_cast<std::size_t>(e.dst - params.numUsers) * k;
            double pred = 0.0;
            for (int f = 0; f < k; ++f)
                pred += result.userFactors[u + f] *
                        result.itemFactors[i + f];
            const double err = e.weight - pred;
            for (int f = 0; f < k; ++f) {
                const double uf = result.userFactors[u + f];
                const double vf = result.itemFactors[i + f];
                result.userFactors[u + f] +=
                    params.learningRate *
                    (err * vf - params.regularization * uf);
                result.itemFactors[i + f] +=
                    params.learningRate *
                    (err * uf - params.regularization * vf);
            }
        }
        result.rmsePerEpoch.push_back(
            cfRmse(ratings, params.numUsers, k, result.userFactors,
                   result.itemFactors));
    }
    return result;
}

} // namespace graphr
