#include "wcc.hh"

#include <numeric>
#include <unordered_set>

#include "common/logging.hh"

namespace graphr
{

CooGraph
symmetrize(const CooGraph &graph)
{
    std::vector<Edge> edges;
    edges.reserve(graph.numEdges() * 2);
    for (const Edge &e : graph.edges()) {
        edges.push_back(e);
        if (e.src != e.dst)
            edges.push_back(Edge{e.dst, e.src, e.weight});
    }
    return CooGraph(graph.numVertices(), std::move(edges));
}

namespace
{

std::uint64_t
countDistinct(const std::vector<VertexId> &labels)
{
    std::unordered_set<VertexId> distinct(labels.begin(), labels.end());
    return distinct.size();
}

} // namespace

WccResult
wcc(const CooGraph &graph)
{
    GRAPHR_ASSERT(graph.numVertices() > 0, "empty graph");
    const CooGraph sym = symmetrize(graph);

    WccResult result;
    result.labels.resize(graph.numVertices());
    std::iota(result.labels.begin(), result.labels.end(), 0);

    bool changed = true;
    while (changed) {
        changed = false;
        for (const Edge &e : sym.edges()) {
            if (result.labels[e.src] < result.labels[e.dst]) {
                result.labels[e.dst] = result.labels[e.src];
                changed = true;
            }
        }
        ++result.iterations;
    }
    result.numComponents = countDistinct(result.labels);
    return result;
}

WccResult
wccUnionFind(const CooGraph &graph)
{
    const VertexId nv = graph.numVertices();
    std::vector<VertexId> parent(nv);
    std::iota(parent.begin(), parent.end(), 0);

    // Path-halving find.
    auto find = [&parent](VertexId v) {
        while (parent[v] != v) {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        return v;
    };
    for (const Edge &e : graph.edges()) {
        const VertexId a = find(e.src);
        const VertexId b = find(e.dst);
        if (a != b)
            parent[std::max(a, b)] = std::min(a, b);
    }

    WccResult result;
    result.labels.resize(nv);
    for (VertexId v = 0; v < nv; ++v) {
        // Canonical label: the minimum vertex id in the component.
        // After min-union, the root is already the minimum.
        result.labels[v] = find(v);
    }
    result.numComponents = countDistinct(result.labels);
    result.iterations = 1;
    return result;
}

RelaxationSweep
makeWccSweep(const CooGraph &sym_graph)
{
    std::vector<Value> labels(sym_graph.numVertices());
    for (VertexId v = 0; v < sym_graph.numVertices(); ++v)
        labels[v] = static_cast<Value>(v);
    std::vector<bool> active(sym_graph.numVertices(), true);
    return RelaxationSweep(sym_graph, std::move(labels),
                           std::move(active), WeightMode::kZero);
}

} // namespace graphr
