#include "spmv.hh"

#include "common/logging.hh"

namespace graphr
{

std::vector<Value>
spmv(const CooGraph &graph, const std::vector<Value> &x)
{
    GRAPHR_ASSERT(x.size() == graph.numVertices(),
                  "vector length ", x.size(), " != |V| ",
                  graph.numVertices());
    const std::vector<EdgeId> out_deg = graph.outDegrees();
    std::vector<Value> y(graph.numVertices(), 0.0);
    for (const Edge &e : graph.edges()) {
        if (out_deg[e.src] == 0)
            continue;
        y[e.dst] += x[e.src] / static_cast<double>(out_deg[e.src]) *
                    e.weight;
    }
    return y;
}

std::vector<Value>
spmvRaw(const CooGraph &graph, const std::vector<Value> &x)
{
    GRAPHR_ASSERT(x.size() == graph.numVertices(),
                  "vector length ", x.size(), " != |V| ",
                  graph.numVertices());
    std::vector<Value> y(graph.numVertices(), 0.0);
    for (const Edge &e : graph.edges())
        y[e.dst] += x[e.src] * e.weight;
    return y;
}

} // namespace graphr
