#include "pagerank.hh"

#include <cmath>

#include "common/logging.hh"

namespace graphr
{

std::vector<Value>
pagerankIteration(const CooGraph &graph, const std::vector<Value> &ranks,
                  const std::vector<EdgeId> &out_degrees, double damping)
{
    const VertexId nv = graph.numVertices();
    const double base = (1.0 - damping) / static_cast<double>(nv);
    std::vector<Value> next(nv, base);

    // Dangling vertices donate their mass uniformly so the vector
    // stays stochastic (standard PageRank fix; the paper's Fig. 13
    // elides it).
    double dangling = 0.0;
    for (VertexId v = 0; v < nv; ++v) {
        if (out_degrees[v] == 0)
            dangling += ranks[v];
    }
    const double dangling_share =
        damping * dangling / static_cast<double>(nv);
    for (VertexId v = 0; v < nv; ++v)
        next[v] += dangling_share;

    for (const Edge &e : graph.edges()) {
        next[e.dst] += damping * ranks[e.src] /
                       static_cast<double>(out_degrees[e.src]);
    }
    return next;
}

PageRankResult
pagerank(const CooGraph &graph, const PageRankParams &params)
{
    GRAPHR_ASSERT(graph.numVertices() > 0, "empty graph");
    const VertexId nv = graph.numVertices();
    const std::vector<EdgeId> out_degrees = graph.outDegrees();

    PageRankResult result;
    result.ranks.assign(nv, 1.0 / static_cast<double>(nv));

    for (int iter = 0; iter < params.maxIterations; ++iter) {
        std::vector<Value> next = pagerankIteration(
            graph, result.ranks, out_degrees, params.damping);
        double delta = 0.0;
        for (VertexId v = 0; v < nv; ++v)
            delta += std::abs(next[v] - result.ranks[v]);
        result.ranks = std::move(next);
        result.iterations = iter + 1;
        if (params.tolerance > 0.0 && delta < params.tolerance) {
            result.converged = true;
            break;
        }
    }
    return result;
}

} // namespace graphr
