/**
 * @file
 * Golden weakly connected components.
 *
 * Table 2 notes GraphR supports "more examples (but not all)" of
 * vertex programs; WCC by min-label propagation is the canonical
 * third parallel-add-op workload: processEdge is the identity
 * (an addition with weight 0), reduce is min, and the active list is
 * required. Labels propagate over the symmetrised edge set.
 */

#ifndef GRAPHR_ALGORITHMS_WCC_HH
#define GRAPHR_ALGORITHMS_WCC_HH

#include <vector>

#include "algorithms/traversal.hh"
#include "graph/coo.hh"

namespace graphr
{

/** Result of a WCC run. */
struct WccResult
{
    /** Component label per vertex (the minimum vertex id reachable). */
    std::vector<VertexId> labels;
    /** Number of distinct components. */
    std::uint64_t numComponents = 0;
    /** Synchronous propagation rounds executed. */
    int iterations = 0;
};

/** Min-label propagation over the symmetrised graph. */
WccResult wcc(const CooGraph &graph);

/**
 * Reference via disjoint-set union — used by tests to validate the
 * label-propagation result independently.
 */
WccResult wccUnionFind(const CooGraph &graph);

/** Edges plus their reverses (weights preserved). */
CooGraph symmetrize(const CooGraph &graph);

/**
 * The WCC relaxation over an already-symmetrised graph: every vertex
 * starts active with its own id as label, weights enter as zero.
 * Shared by every cost model that replays WCC rounds. The sweep
 * references `sym_graph`, which must outlive it.
 */
RelaxationSweep makeWccSweep(const CooGraph &sym_graph);

} // namespace graphr

#endif // GRAPHR_ALGORITHMS_WCC_HH
