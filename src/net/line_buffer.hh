/**
 * @file
 * Incremental JSONL framing with bounded memory.
 *
 * The event loop reads whatever bytes a socket has and feeds them in
 * here; LineBuffer cuts them into complete lines and applies the same
 * oversized-line discipline as the blocking reader (server.cc's
 * readLineBounded): a line longer than the cap is consumed and
 * discarded — memory stays bounded at the cap — and surfaces as one
 * kOversized event so the server can answer it with a structured
 * error instead of buffering a hostile request without limit.
 */

#ifndef GRAPHR_NET_LINE_BUFFER_HH
#define GRAPHR_NET_LINE_BUFFER_HH

#include <cstddef>
#include <deque>
#include <string>

namespace graphr::net
{

/** Byte stream -> line stream, one instance per connection. */
class LineBuffer
{
  public:
    /** @param maxLineBytes longest accepted line (0 = unlimited). */
    explicit LineBuffer(std::size_t maxLineBytes)
        : cap_(maxLineBytes)
    {
    }

    /** Feed @p n raw bytes from the socket. */
    void append(const char *data, std::size_t n);

    /**
     * Input hit clean EOF: promote a trailing newline-less fragment
     * to a line (a client that wrote its last request without a final
     * newline and closed still gets an answer). Do not call on the
     * stop-flag path — an unterminated fragment there is half a
     * request the client never finished.
     */
    void finish();

    enum class Next
    {
        kNone,      ///< no complete line buffered
        kLine,      ///< @p line holds the next complete line
        kOversized, ///< next line exceeded the cap (bytes discarded)
    };

    /** Pop the next framed line in arrival order. */
    Next pop(std::string &line);

    /** Complete lines framed and not yet popped. */
    std::size_t pendingLines() const { return complete_.size(); }

  private:
    struct Pending
    {
        bool oversized = false;
        std::string text;
    };

    std::size_t cap_;
    std::string partial_;     ///< bytes of the line in progress
    bool discarding_ = false; ///< line in progress exceeded cap_
    std::deque<Pending> complete_;
};

} // namespace graphr::net

#endif // GRAPHR_NET_LINE_BUFFER_HH
