#include "line_buffer.hh"

#include <cstring>

namespace graphr::net
{

void
LineBuffer::append(const char *data, std::size_t n)
{
    std::size_t i = 0;
    while (i < n) {
        const void *nl = std::memchr(data + i, '\n', n - i);
        const std::size_t end =
            nl != nullptr
                ? static_cast<std::size_t>(
                      static_cast<const char *>(nl) - data)
                : n;
        const std::size_t len = end - i;
        if (discarding_) {
            // Oversized line in progress: keep consuming, keep
            // nothing (matches readLineBounded's cap discipline).
        } else if (cap_ != 0 && partial_.size() + len > cap_) {
            discarding_ = true;
            partial_.clear();
            partial_.shrink_to_fit();
        } else {
            partial_.append(data + i, len);
        }
        if (nl == nullptr)
            break;
        if (discarding_) {
            complete_.push_back(Pending{true, {}});
            discarding_ = false;
        } else {
            complete_.push_back(Pending{false, std::move(partial_)});
            partial_.clear();
        }
        i = end + 1;
    }
}

void
LineBuffer::finish()
{
    if (discarding_) {
        complete_.push_back(Pending{true, {}});
        discarding_ = false;
    } else if (!partial_.empty()) {
        complete_.push_back(Pending{false, std::move(partial_)});
        partial_.clear();
    }
}

LineBuffer::Next
LineBuffer::pop(std::string &line)
{
    if (complete_.empty())
        return Next::kNone;
    Pending pending = std::move(complete_.front());
    complete_.pop_front();
    if (pending.oversized)
        return Next::kOversized;
    line = std::move(pending.text);
    return Next::kLine;
}

} // namespace graphr::net
