#include "listener.hh"

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/failpoint.hh"
#include "driver/driver.hh"

namespace graphr::net
{

namespace
{

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

Listener::Listener(int port, std::ostream &log)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw driver::DriverError("cannot create socket: " +
                                  std::string(std::strerror(errno)));
    // An immediately restarted daemon must be able to rebind its port
    // while the predecessor's sockets linger in TIME_WAIT.
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        const std::string what = std::strerror(errno);
        ::close(fd);
        throw driver::DriverError("cannot listen on 127.0.0.1:" +
                                  std::to_string(port) + ": " + what);
    }
    setNonBlocking(fd);

    sockaddr_in bound = {};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port = ntohs(bound.sin_port);
    fd_ = fd;
    port_ = port;
    log << "graphr_serve listening on 127.0.0.1:" << port << "\n"
        << std::flush;
}

Listener::~Listener() { close(); }

void
Listener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int
Listener::acceptClient(std::ostream &log)
{
    if (fd_ < 0)
        return -1;
    // The failpoint fires before the syscall: the pending connection
    // stays in the kernel backlog and is accepted on the next poll
    // pass, so an injected accept fault is transparently transient —
    // exactly what the chaos suite asserts.
    if (GRAPHR_FAILPOINT("net.accept.fail")) {
        log << "accept failed (injected fault), retrying\n"
            << std::flush;
        return -1;
    }
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
        // EAGAIN: poll readiness was spurious or another pass already
        // took the connection. ECONNABORTED: the client gave up while
        // queued. Both simply mean "nothing to accept right now".
        if (errno != EAGAIN && errno != EWOULDBLOCK &&
            errno != EINTR && errno != ECONNABORTED) {
            log << "accept failed: " << std::strerror(errno) << "\n"
                << std::flush;
        }
        return -1;
    }
    setNonBlocking(fd);
    return fd;
}

} // namespace graphr::net
