/**
 * @file
 * The multi-client connection layer of graphr_serve.
 *
 * One EventLoop thread multiplexes the listening socket and up to
 * maxConnections established client connections with poll(2). Each
 * connection owns a LineBuffer (bounded-memory JSONL framing) and one
 * service::Server Session; the loop frames lines, dispatches them
 * round-robin — one line per connection per pass, so a connection
 * that arrived with a hundred buffered requests cannot get them all
 * admitted before its siblings get one — and ships the Session's
 * admission-ordered responses back out through a per-connection
 * outbound buffer.
 *
 * Threading: run() owns all connection state and is the only caller
 * of socket syscalls. Worker threads deliver responses through each
 * session's sink, which appends to the connection's inbox under the
 * loop mutex and wakes the loop via a self-pipe — the loop thread
 * never blocks on a socket and workers never touch one.
 *
 * Backpressure is applied at the socket: a connection whose client
 * stops draining responses (outbound bytes beyond the cap) or whose
 * framed-line backlog is full stops being polled for reads; bytes
 * queue in the kernel and eventually in the client, not in the
 * daemon. Admission-level overload (queue depths) is the Server's
 * job and arrives as structured rejections, not as blocking.
 *
 * Shutdown (SIGTERM/SIGINT -> Server::requestStop): the listener
 * closes at receipt — stop accepting — established connections
 * dispatch the complete lines they have already framed, in-flight
 * requests finish and flush, then each connection closes and run()
 * returns. An unterminated trailing fragment is dropped, exactly like
 * the blocking reader's stop path.
 *
 * Fault injection: net.accept.fail (transient, listener), and
 * net.conn.read.fail / net.conn.write.fail (fatal for that one
 * connection: it is closed cleanly, its in-flight work completes and
 * is discarded, and sibling connections are untouched — the chaos
 * suite asserts their streams stay byte-identical).
 */

#ifndef GRAPHR_NET_EVENT_LOOP_HH
#define GRAPHR_NET_EVENT_LOOP_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "net/line_buffer.hh"
#include "net/listener.hh"
#include "service/server.hh"

namespace graphr::net
{

struct EventLoopOptions
{
    /** Simultaneous established connections; beyond this the
     *  listener is simply not polled, so extra clients wait in the
     *  kernel backlog instead of being turned away. */
    std::size_t maxConnections = 64;
    /** Longest accepted request line (the LineBuffer cap); mirror
     *  the server's maxLineBytes. */
    std::size_t maxLineBytes = 1 << 20;
    /** Stop reading a connection whose un-sent response bytes exceed
     *  this — the client is not draining. */
    std::size_t maxOutboundBytes = 1 << 20;
    /** Stop reading a connection holding this many framed,
     *  not-yet-dispatched lines. */
    std::size_t maxPendingLines = 256;
};

/** Counters the loop keeps about its own lifetime (fault-free runs
 *  leave the fault counters at zero). */
struct EventLoopStats
{
    std::uint64_t accepted = 0;    ///< connections accepted
    std::uint64_t readFaults = 0;  ///< connections torn down on read
    std::uint64_t writeFaults = 0; ///< connections torn down on write
};

/** One poll(2) loop serving many connections over one Server. */
class EventLoop
{
  public:
    /** @p log receives accept/teardown diagnostics (stderr in the
     *  daemon). Throws driver::DriverError if the self-pipe cannot
     *  be created. */
    EventLoop(service::Server &server, Listener &listener,
              const EventLoopOptions &options, std::ostream &log);

    ~EventLoop();

    EventLoop(const EventLoop &) = delete;
    EventLoop &operator=(const EventLoop &) = delete;

    /**
     * Serve until the server's stop flag is set and every connection
     * has drained. Call from exactly one thread; wake() is the only
     * other entry point that is safe concurrently.
     */
    void run();

    /** Nudge a run() blocked in poll() (self-pipe write; safe from
     *  any thread, including under the server mutex). */
    void wake();

    EventLoopStats stats() const;

  private:
    struct Connection;

    void acceptPending();
    /** Read every readable connection (one recv per connection per
     *  pass — fairness starts at the socket). */
    void readConnection(Connection &conn);
    /** Round-robin dispatch: one framed line per live connection per
     *  pass until every backlog is empty. */
    void dispatchLines();
    /** Move sink-delivered bytes into the send buffer and write what
     *  the socket accepts. */
    void flushConnection(Connection &conn);
    void teardown(Connection &conn, const char *why);
    void reapFinished();

    service::Server &server_;
    Listener &listener_;
    EventLoopOptions options_;
    std::ostream &log_;

    int wakeRead_ = -1;  ///< self-pipe read end (polled)
    int wakeWrite_ = -1; ///< self-pipe write end (wake() target)

    std::vector<std::unique_ptr<Connection>> conns_;
    std::size_t cursor_ = 0; ///< round-robin dispatch start
    bool stopping_ = false;

    mutable std::mutex mutex_; ///< guards inbox bytes and stats_
    EventLoopStats stats_;
};

} // namespace graphr::net

#endif // GRAPHR_NET_EVENT_LOOP_HH
