/**
 * @file
 * The daemon's loopback listening socket.
 *
 * Owns the listen fd for graphr_serve's TCP mode: binds 127.0.0.1
 * with SO_REUSEADDR (an immediate daemon restart must not fail on a
 * TIME_WAIT remnant of its predecessor), listens non-blocking so the
 * event loop's poll() readiness is authoritative, and supports being
 * closed early — the SIGTERM contract is "stop accepting at receipt,
 * finish what is in flight", which is exactly close() followed by the
 * event loop draining its connections.
 */

#ifndef GRAPHR_NET_LISTENER_HH
#define GRAPHR_NET_LISTENER_HH

#include <ostream>

namespace graphr::net
{

/** A non-blocking loopback listening socket (RAII over the fd). */
class Listener
{
  public:
    /**
     * Bind and listen on 127.0.0.1:@p port (0 = pick a free port).
     * Logs the bound address to @p log — with port 0 that line is how
     * callers learn the actual port. Throws driver::DriverError when
     * the address is unusable: fail at startup, not on first accept.
     */
    Listener(int port, std::ostream &log);

    ~Listener();

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    int fd() const { return fd_; }

    /** The bound port (resolved when constructed with port 0). */
    int port() const { return port_; }

    bool closed() const { return fd_ < 0; }

    /** Stop accepting: close the listen fd. Idempotent; established
     *  connections are unaffected (the event loop drains them). */
    void close();

    /**
     * Accept one pending connection without blocking; the returned fd
     * is non-blocking and owned by the caller. Returns -1 when
     * nothing is pending or on a transient error (EINTR, the
     * net.accept.fail failpoint, a connection that died in the
     * backlog) — the caller just polls again; pending connections are
     * never lost, only deferred.
     */
    int acceptClient(std::ostream &log);

  private:
    int fd_ = -1;
    int port_ = 0;
};

} // namespace graphr::net

#endif // GRAPHR_NET_LISTENER_HH
