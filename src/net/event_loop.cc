#include "event_loop.hh"

#include <cerrno>
#include <cstring>
#include <string>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include "common/failpoint.hh"
#include "driver/driver.hh"

namespace graphr::net
{

namespace
{

/** Strip surrounding whitespace (JSONL lines may end in \r). */
std::string
trimmed(const std::string &line)
{
    std::size_t first = 0;
    std::size_t last = line.size();
    while (first < last &&
           (line[first] == ' ' || line[first] == '\t'))
        ++first;
    while (last > first &&
           (line[last - 1] == ' ' || line[last - 1] == '\t' ||
            line[last - 1] == '\r' || line[last - 1] == '\n'))
        --last;
    return line.substr(first, last - first);
}

} // namespace

/**
 * One established client connection. The loop thread owns everything
 * except `inbox`, which worker threads append responses to under the
 * loop mutex (the session sink); flushConnection() splices it into
 * the loop-owned send buffer before writing.
 */
struct EventLoop::Connection
{
    int fd = -1;
    service::Server::SessionPtr session;
    LineBuffer lines;
    /** Sink-delivered response bytes (guarded by EventLoop::mutex_). */
    std::string inbox;
    /** Bytes being written to the socket (loop thread only). */
    std::string sendBuf;
    std::size_t sendOff = 0;
    /** No more reads (EOF, stop, or fault); close once drained. */
    bool closing = false;
    /** Torn down (fault or fully drained); reap will erase it. */
    bool dead = false;

    explicit Connection(std::size_t maxLineBytes)
        : lines(maxLineBytes)
    {
    }
};

EventLoop::EventLoop(service::Server &server, Listener &listener,
                     const EventLoopOptions &options,
                     std::ostream &log)
    : server_(server), listener_(listener), options_(options),
      log_(log)
{
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
        throw driver::DriverError(
            "cannot create event-loop wake pipe: " +
            std::string(std::strerror(errno)));
    }
    for (const int fd : fds) {
        const int flags = ::fcntl(fd, F_GETFL, 0);
        if (flags >= 0)
            ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
    wakeRead_ = fds[0];
    wakeWrite_ = fds[1];
}

EventLoop::~EventLoop()
{
    for (const std::unique_ptr<Connection> &conn : conns_) {
        if (conn->fd >= 0)
            ::close(conn->fd);
    }
    ::close(wakeRead_);
    ::close(wakeWrite_);
}

void
EventLoop::wake()
{
    const char byte = 'w';
    // A full pipe already guarantees a pending wake-up; EAGAIN (and
    // any other failure) is therefore ignorable.
    [[maybe_unused]] const ssize_t n =
        ::write(wakeWrite_, &byte, 1);
}

EventLoopStats
EventLoop::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
EventLoop::run()
{
    std::vector<pollfd> fds;
    std::vector<Connection *> owner; // fds[i] -> its connection
    while (true) {
        if (!stopping_ && server_.stopRequested()) {
            stopping_ = true;
            // The SIGTERM contract: stop accepting the moment the
            // signal lands, finish what is in flight. Closing the
            // listen fd here is the "stop accepting" half; connected
            // clients keep their already-framed lines.
            listener_.close();
            for (const std::unique_ptr<Connection> &conn : conns_)
                conn->closing = true;
        }

        reapFinished();
        if (stopping_ && conns_.empty())
            return;

        fds.clear();
        owner.clear();
        fds.push_back(pollfd{wakeRead_, POLLIN, 0});
        owner.push_back(nullptr);
        const bool acceptable = !stopping_ && !listener_.closed() &&
                                conns_.size() <
                                    options_.maxConnections;
        if (acceptable) {
            fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
            owner.push_back(nullptr);
        }
        for (const std::unique_ptr<Connection> &conn : conns_) {
            short events = 0;
            bool wantRead = !conn->closing;
            std::size_t queued = 0;
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                queued = conn->inbox.size();
            }
            queued += conn->sendBuf.size() - conn->sendOff;
            // Socket-level backpressure: a client that floods
            // requests or stops draining responses accumulates bytes
            // in its kernel buffers, not in the daemon.
            if (conn->lines.pendingLines() >=
                    options_.maxPendingLines ||
                queued >= options_.maxOutboundBytes)
                wantRead = false;
            if (wantRead)
                events |= POLLIN;
            if (queued > 0)
                events |= POLLOUT;
            // events == 0 still reports POLLERR/POLLHUP, which is
            // what a fully-backpressured connection is waiting on.
            fds.push_back(pollfd{conn->fd, events, 0});
            owner.push_back(conn.get());
        }

        // The 500 ms tick mirrors fd_stream's stop-flag polling: a
        // signal that lands outside poll() still stops the loop
        // within half a second.
        const int ready =
            ::poll(fds.data(),
                   static_cast<nfds_t>(fds.size()), 500);
        if (ready < 0 && errno != EINTR) {
            log_ << "event loop poll failed: "
                 << std::strerror(errno) << "\n"
                 << std::flush;
            return;
        }

        if (ready > 0 && (fds[0].revents & POLLIN) != 0) {
            char buf[256];
            while (::read(wakeRead_, buf, sizeof(buf)) > 0) {
            }
        }
        if (acceptable && (fds[1].revents & POLLIN) != 0)
            acceptPending();

        for (std::size_t i = 0; i < fds.size(); ++i) {
            Connection *conn = owner[i];
            if (conn == nullptr || conn->dead)
                continue;
            if ((fds[i].revents & (POLLERR | POLLNVAL)) != 0) {
                teardown(*conn, "socket error");
                continue;
            }
            if ((fds[i].revents & (POLLIN | POLLHUP)) != 0 &&
                !conn->closing)
                readConnection(*conn);
        }

        dispatchLines();

        for (const std::unique_ptr<Connection> &conn : conns_) {
            if (!conn->dead)
                flushConnection(*conn);
        }
    }
}

void
EventLoop::acceptPending()
{
    while (conns_.size() < options_.maxConnections) {
        const int fd = listener_.acceptClient(log_);
        if (fd < 0)
            return;
        auto conn =
            std::make_unique<Connection>(options_.maxLineBytes);
        conn->fd = fd;
        Connection *raw = conn.get();
        // The sink runs on worker threads under the server mutex:
        // append the response bytes under the loop mutex and nudge
        // poll(). Server::closeSession() drops the sink before the
        // Connection is ever destroyed, so `raw` cannot dangle.
        conn->session = server_.openSession(
            [this, raw](std::string &&line) {
                {
                    const std::lock_guard<std::mutex> lock(mutex_);
                    raw->inbox.append(line);
                    raw->inbox.push_back('\n');
                }
                wake();
            });
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.accepted;
        }
        conns_.push_back(std::move(conn));
    }
}

void
EventLoop::readConnection(Connection &conn)
{
    // One recv per connection per poll pass: fairness starts at the
    // socket — a fast talker cannot monopolise the loop, it gets one
    // buffer's worth per pass like everyone else.
    char buf[64 * 1024];
    if (GRAPHR_FAILPOINT("net.conn.read.fail")) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.readFaults;
        }
        teardown(conn, "read failed (injected fault)");
        return;
    }
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
        conn.lines.append(buf, static_cast<std::size_t>(n));
        return;
    }
    if (n == 0) {
        // Clean EOF: a trailing newline-less request still gets an
        // answer; the connection closes once everything drains.
        conn.lines.finish();
        conn.closing = true;
        return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        return;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.readFaults;
    }
    teardown(conn, std::strerror(errno));
}

void
EventLoop::dispatchLines()
{
    if (conns_.empty())
        return;
    // Round-robin, one line per connection per pass: admission order
    // interleaves across connections no matter how many requests one
    // of them has buffered up. The cursor rotates the starting
    // connection between cycles so ties do not always break the same
    // way.
    cursor_ = (cursor_ + 1) % conns_.size();
    bool dispatched = true;
    while (dispatched) {
        dispatched = false;
        const std::size_t count = conns_.size();
        for (std::size_t k = 0; k < count; ++k) {
            Connection &conn = *conns_[(cursor_ + k) % count];
            if (conn.dead)
                continue;
            std::string line;
            switch (conn.lines.pop(line)) {
            case LineBuffer::Next::kNone:
                continue;
            case LineBuffer::Next::kOversized:
                server_.handleOversizedLine(conn.session);
                break;
            case LineBuffer::Next::kLine: {
                const std::string request = trimmed(line);
                if (!request.empty())
                    server_.handleLine(conn.session, request);
                break;
            }
            }
            dispatched = true;
        }
    }
}

void
EventLoop::flushConnection(Connection &conn)
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!conn.inbox.empty()) {
            conn.sendBuf.append(conn.inbox);
            conn.inbox.clear();
        }
    }
    while (conn.sendOff < conn.sendBuf.size()) {
        if (GRAPHR_FAILPOINT("net.conn.write.fail")) {
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.writeFaults;
            }
            teardown(conn, "write failed (injected fault)");
            return;
        }
        const ssize_t n =
            ::write(conn.fd, conn.sendBuf.data() + conn.sendOff,
                    conn.sendBuf.size() - conn.sendOff);
        if (n > 0) {
            conn.sendOff += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return; // kernel buffer full; POLLOUT will resume us
        if (n < 0 && errno == EINTR)
            continue;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.writeFaults;
        }
        teardown(conn, std::strerror(errno));
        return;
    }
    conn.sendBuf.clear();
    conn.sendOff = 0;
}

void
EventLoop::teardown(Connection &conn, const char *why)
{
    log_ << "connection " << conn.session->id() << " closed: " << why
         << "\n"
         << std::flush;
    // closeSession drops the sink under the server mutex: after it
    // returns no worker can touch this connection's inbox again, so
    // marking it dead (reaped next cycle) is safe. In-flight requests
    // still finish — their responses are counted and discarded.
    server_.closeSession(conn.session);
    ::close(conn.fd);
    conn.fd = -1;
    conn.closing = true;
    conn.dead = true;
}

void
EventLoop::reapFinished()
{
    for (std::size_t i = 0; i < conns_.size();) {
        Connection &conn = *conns_[i];
        if (!conn.dead && conn.closing &&
            conn.lines.pendingLines() == 0 &&
            server_.sessionBacklog(*conn.session) == 0) {
            bool drained = false;
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                drained = conn.inbox.empty();
            }
            if (drained && conn.sendOff == conn.sendBuf.size()) {
                server_.closeSession(conn.session);
                ::close(conn.fd);
                conn.fd = -1;
                conn.dead = true;
            }
        }
        if (conn.dead) {
            conns_.erase(conns_.begin() +
                         static_cast<std::ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
    if (cursor_ >= conns_.size())
        cursor_ = 0;
}

} // namespace graphr::net
