#include "json_reader.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace graphr::detail
{

/** Cursor over the source text with offset-carrying errors. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue value = parseValue(0);
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing characters after the JSON value");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw JsonParseError("JSON error at byte " +
                             std::to_string(pos_) + ": " + what);
    }

    bool
    atEnd() const
    {
        return pos_ >= text_.size();
    }

    char
    peek() const
    {
        if (atEnd())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char
    take()
    {
        const char c = peek();
        ++pos_;
        return c;
    }

    void
    skipWhitespace()
    {
        while (!atEnd() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                            text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    void
    expect(char c)
    {
        if (take() != c)
            fail(std::string("expected '") + c + "'");
    }

    void
    expectLiteral(std::string_view word)
    {
        for (const char c : word) {
            if (atEnd() || text_[pos_] != c)
                fail("invalid literal (expected " + std::string(word) +
                     ")");
            ++pos_;
        }
    }

    JsonValue
    parseValue(int depth)
    {
        if (depth > JsonValue::kMaxDepth)
            fail("nesting deeper than " +
                 std::to_string(JsonValue::kMaxDepth) + " levels");
        skipWhitespace();
        const char c = peek();
        switch (c) {
        case '{':
            return parseObject(depth);
        case '[':
            return parseArray(depth);
        case '"':
            return makeString(parseString());
        case 't':
            expectLiteral("true");
            return makeBool(true);
        case 'f':
            expectLiteral("false");
            return makeBool(false);
        case 'n':
            expectLiteral("null");
            return JsonValue();
        default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            fail("unexpected character");
        }
    }

    static JsonValue
    makeBool(bool v)
    {
        JsonValue value;
        value.type_ = JsonValue::Type::kBool;
        value.bool_ = v;
        return value;
    }

    static JsonValue
    makeString(std::string s)
    {
        JsonValue value;
        value.type_ = JsonValue::Type::kString;
        value.text_ = std::move(s);
        return value;
    }

    /** Append a code point as UTF-8. */
    static void
    appendUtf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    std::uint32_t
    parseHex4()
    {
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = take();
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                fail("invalid \\u escape digit");
        }
        return value;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            const char c = take();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = take();
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                std::uint32_t cp = parseHex4();
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: a low surrogate must follow.
                    expect('\\');
                    expect('u');
                    const std::uint32_t lo = parseHex4();
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        fail("unpaired UTF-16 surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("unpaired UTF-16 surrogate");
                }
                appendUtf8(out, cp);
                break;
            }
            default:
                fail("invalid escape character");
            }
        }
    }

    /**
     * For a grammar-valid number token that from_chars reported out
     * of range: true when the magnitude underflowed toward zero
     * (effective decimal exponent negative), false when it
     * overflowed toward infinity. from_chars leaves the output value
     * unmodified on this error, so the token is the only evidence.
     */
    static bool
    numberUnderflows(const std::string &token)
    {
        std::size_t i = token[0] == '-' ? 1 : 0;
        // Mantissa digits with the '.' removed, tracking where the
        // point sat and where the first significant digit is.
        long point_pos = -1;
        long first_sig = -1;
        long digits = 0;
        for (; i < token.size(); ++i) {
            const char c = token[i];
            if (c == '.') {
                point_pos = digits;
                continue;
            }
            if (c == 'e' || c == 'E')
                break;
            if (c != '0' && first_sig < 0)
                first_sig = digits;
            ++digits;
        }
        if (first_sig < 0)
            return true; // all-zero mantissa cannot overflow
        if (point_pos < 0)
            point_pos = digits;
        long exponent = 0;
        if (i < token.size()) { // token[i] is 'e'/'E'
            ++i;
            bool negative = false;
            if (token[i] == '+' || token[i] == '-') {
                negative = token[i] == '-';
                ++i;
            }
            for (; i < token.size(); ++i) {
                if (exponent < 100000) // clamp: sign is all we need
                    exponent = exponent * 10 + (token[i] - '0');
            }
            if (negative)
                exponent = -exponent;
        }
        return point_pos - first_sig - 1 + exponent < 0;
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(
                           text_[pos_])))
            fail("invalid number");
        if (text_[pos_] == '0') {
            ++pos_;
        } else {
            while (!atEnd() && std::isdigit(static_cast<unsigned char>(
                                   text_[pos_])))
                ++pos_;
        }
        if (!atEnd() && text_[pos_] == '.') {
            ++pos_;
            if (atEnd() || !std::isdigit(static_cast<unsigned char>(
                               text_[pos_])))
                fail("digit required after decimal point");
            while (!atEnd() && std::isdigit(static_cast<unsigned char>(
                                   text_[pos_])))
                ++pos_;
        }
        if (!atEnd() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (!atEnd() && (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (atEnd() || !std::isdigit(static_cast<unsigned char>(
                               text_[pos_])))
                fail("digit required in exponent");
            while (!atEnd() && std::isdigit(static_cast<unsigned char>(
                                   text_[pos_])))
                ++pos_;
        }

        JsonValue value;
        value.type_ = JsonValue::Type::kNumber;
        value.text_ = std::string(text_.substr(start, pos_ - start));
        // from_chars, not strtod: locale-independent (a comma-decimal
        // LC_NUMERIC must not silently truncate "1.5" to 1.0) and
        // overflow is an explicit error — letting +-inf through would
        // sail past downstream range checks like `scale >= 1`.
        const auto [ptr, ec] = std::from_chars(
            value.text_.data(), value.text_.data() + value.text_.size(),
            value.number_);
        if (ec == std::errc::result_out_of_range) {
            // Underflow rounds to zero like any other subnormal loss
            // of precision; only overflow is rejected.
            if (!numberUnderflows(value.text_))
                fail("number out of range");
            value.number_ = 0.0;
        } else if (ec != std::errc() ||
                   ptr != value.text_.data() + value.text_.size()) {
            fail("invalid number");
        }
        return value;
    }

    JsonValue
    parseArray(int depth)
    {
        expect('[');
        JsonValue value;
        value.type_ = JsonValue::Type::kArray;
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        for (;;) {
            value.items_.push_back(parseValue(depth + 1));
            skipWhitespace();
            const char c = take();
            if (c == ']')
                return value;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    JsonValue
    parseObject(int depth)
    {
        expect('{');
        JsonValue value;
        value.type_ = JsonValue::Type::kObject;
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        for (;;) {
            skipWhitespace();
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            value.members_.emplace_back(std::move(key),
                                        parseValue(depth + 1));
            skipWhitespace();
            const char c = take();
            if (c == '}')
                return value;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace graphr::detail

namespace graphr
{

JsonValue
JsonValue::parse(std::string_view text)
{
    return detail::JsonParser(text).parseDocument();
}

const char *
JsonValue::typeName() const
{
    switch (type_) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
    }
    return "unknown";
}

void
JsonValue::requireType(Type t) const
{
    if (type_ != t) {
        JsonValue expected;
        expected.type_ = t;
        throw JsonParseError(std::string("expected a JSON ") +
                             expected.typeName() + ", got " +
                             typeName());
    }
}

bool
JsonValue::asBool() const
{
    requireType(Type::kBool);
    return bool_;
}

double
JsonValue::asDouble() const
{
    requireType(Type::kNumber);
    return number_;
}

const std::string &
JsonValue::asString() const
{
    requireType(Type::kString);
    return text_;
}

std::uint64_t
JsonValue::asU64() const
{
    requireType(Type::kNumber);
    // Fast path: the token is a plain non-negative integer.
    std::uint64_t direct = 0;
    const auto [ptr, ec] = std::from_chars(
        text_.data(), text_.data() + text_.size(), direct);
    if (ec == std::errc() && ptr == text_.data() + text_.size())
        return direct;
    // Exponent forms ("1e3"): accept exactly representable integers.
    if (number_ >= 0.0 && number_ <= 9007199254740992.0 &&
        std::floor(number_) == number_)
        return static_cast<std::uint64_t>(number_);
    throw JsonParseError("expected a non-negative integer, got '" +
                         text_ + "'");
}

const std::string &
JsonValue::numberToken() const
{
    requireType(Type::kNumber);
    return text_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    requireType(Type::kArray);
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    requireType(Type::kObject);
    return members_;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    requireType(Type::kObject);
    const JsonValue *found = nullptr;
    for (const auto &[name, value] : members_) {
        if (name == key)
            found = &value;
    }
    return found;
}

} // namespace graphr
