#include "json.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace graphr
{

JsonWriter::JsonWriter(std::ostream &os, int indent)
    : os_(os), indent_(indent)
{
}

JsonWriter::~JsonWriter()
{
    // A destructor must not throw/abort on a half-written document
    // (exceptions may be unwinding); unfinished output is the
    // caller's bug and shows up as invalid JSON downstream.
}

void
JsonWriter::indentLine()
{
    if (indent_ <= 0)
        return;
    os_ << "\n";
    os_ << std::string(stack_.size() * static_cast<std::size_t>(indent_),
                       ' ');
}

void
JsonWriter::separate()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // key() already emitted "name: "
    }
    if (stack_.empty())
        return; // top-level value
    GRAPHR_ASSERT(!stack_.back().isObject,
                  "JSON object members need key() before value()");
    if (stack_.back().hasItems)
        os_ << ",";
    stack_.back().hasItems = true;
    indentLine();
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    os_ << "{";
    stack_.push_back({/*isObject=*/true, /*hasItems=*/false});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    GRAPHR_ASSERT(!stack_.empty() && stack_.back().isObject,
                  "endObject() without matching beginObject()");
    const bool had_items = stack_.back().hasItems;
    stack_.pop_back();
    if (had_items)
        indentLine();
    os_ << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    os_ << "[";
    stack_.push_back({/*isObject=*/false, /*hasItems=*/false});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    GRAPHR_ASSERT(!stack_.empty() && !stack_.back().isObject,
                  "endArray() without matching beginArray()");
    const bool had_items = stack_.back().hasItems;
    stack_.pop_back();
    if (had_items)
        indentLine();
    os_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    GRAPHR_ASSERT(!stack_.empty() && stack_.back().isObject,
                  "key() is only valid inside an object");
    GRAPHR_ASSERT(!pendingKey_, "key() twice without a value");
    if (stack_.back().hasItems)
        os_ << ",";
    stack_.back().hasItems = true;
    indentLine();
    os_ << "\"" << escape(name) << "\":" << (indent_ > 0 ? " " : "");
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    separate();
    os_ << "\"" << escape(v) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string_view(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    os_ << formatDouble(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separate();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    os_ << "null";
    return *this;
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
JsonWriter::formatDouble(double v)
{
    // JSON has no inf/nan literals; clamp to null-adjacent strings is
    // worse than an explicit large sentinel, so emit them as strings.
    if (std::isnan(v))
        return "\"nan\"";
    if (std::isinf(v))
        return v > 0 ? "\"inf\"" : "\"-inf\"";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

} // namespace graphr
