#include "thread_pool.hh"

#include <chrono>
#include <utility>

#include "common/failpoint.hh"

namespace graphr
{

ThreadPool::ThreadPool(unsigned num_threads)
{
    const unsigned n = num_threads > 0 ? num_threads : 1;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++pending_;
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allIdle_.wait(lock, [this] { return pending_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // Injectable stall (pool.task.slow, `=ms` payload): models a
        // slow request without touching any workload code — the
        // deterministic trigger for the server's request deadline.
        std::uint64_t stall_ms = 50;
        if (GRAPHR_FAILPOINT_ARG("pool.task.slow", &stall_ms)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(stall_ms));
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --pending_;
            if (pending_ == 0)
                allIdle_.notify_all();
        }
    }
}

unsigned
ThreadPool::effectiveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace graphr
