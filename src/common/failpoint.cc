#include "failpoint.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "perf/counters.hh"

namespace graphr::failpoint
{

namespace
{

/**
 * Every site compiled into the tree, sorted. configure() validates
 * names against this list so a typo in GRAPHR_FAILPOINTS fails loudly
 * instead of silently disarming a chaos run, and the chaos harness
 * sweeps exactly this list (graphr_serve --list-failpoints).
 */
constexpr std::string_view kKnownSites[] = {
    "cache.build.fail",  ///< PlanCache factory throws mid-build
    "net.accept.fail",     ///< accept() reports a transient error
    "net.conn.read.fail",  ///< connection read reports an I/O error
    "net.conn.write.fail", ///< connection write reports an I/O error
    "pool.task.slow",    ///< worker stalls `=ms` (default 50) pre-task
    "serve.read.eintr",  ///< fd read reports a transient EINTR
    "serve.read.eio",    ///< fd read reports a permanent I/O error
    "serve.write.eio",   ///< fd write reports a permanent I/O error
    "serve.write.short", ///< fd write transfers a single byte
    "store.decode.fail", ///< compressed edge stream decode faults
    "store.fsync.fail",  ///< artifact temp-file fsync fails
    "store.mmap.fail",   ///< artifact mmap fails (buffered fallback)
    "store.open.fail",   ///< artifact file unreadable outright
    "store.read.eintr",  ///< buffered artifact read gets EINTR
    "store.read.short",  ///< buffered artifact read truncates early
    "store.rename.fail", ///< atomic publish rename fails
    "store.write.fail",  ///< artifact temp file cannot be opened
    "store.write.short", ///< artifact write transfers a single byte
};

/** One armed entry: the parsed spec plus its live hit/fire counts. */
struct Entry
{
    std::uint64_t nth = 1;      ///< 1-based hit index of first firing
    std::uint64_t count = 1;    ///< firings allowed (0 = unlimited)
    bool hasArg = false;
    std::uint64_t arg = 0;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
};

struct Registry
{
    std::mutex mutex;
    std::map<std::string, Entry, std::less<>> entries;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

bool
isKnownSite(std::string_view site)
{
    return std::binary_search(std::begin(kKnownSites),
                              std::end(kKnownSites), site);
}

std::uint64_t
parseCount(const std::string &entry, std::string_view what,
           std::string_view text)
{
    if (text.empty()) {
        throw FailpointError("failpoint entry '" + entry +
                             "': empty " + std::string(what));
    }
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') {
            throw FailpointError("failpoint entry '" + entry + "': " +
                                 std::string(what) +
                                 " must be a number or '*'");
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
}

/** Parse one `site[:count][@nth][=arg]` entry into the map. */
void
parseEntry(const std::string &entry,
           std::map<std::string, Entry, std::less<>> &out)
{
    std::string_view rest = entry;
    Entry parsed;

    const std::size_t eq = rest.find('=');
    if (eq != std::string_view::npos) {
        parsed.hasArg = true;
        parsed.arg = parseCount(entry, "arg", rest.substr(eq + 1));
        rest = rest.substr(0, eq);
    }
    const std::size_t at = rest.find('@');
    std::string_view nth_text;
    if (at != std::string_view::npos) {
        nth_text = rest.substr(at + 1);
        rest = rest.substr(0, at);
    }
    const std::size_t colon = rest.find(':');
    std::string_view count_text;
    if (colon != std::string_view::npos) {
        count_text = rest.substr(colon + 1);
        rest = rest.substr(0, colon);
    }

    if (!count_text.empty() || colon != std::string_view::npos) {
        parsed.count = count_text == "*"
                           ? 0
                           : parseCount(entry, "count", count_text);
        if (parsed.count == 0 && count_text != "*") {
            throw FailpointError("failpoint entry '" + entry +
                                 "': count must be >= 1 or '*'");
        }
    }
    if (!nth_text.empty() || at != std::string_view::npos) {
        if (nth_text == "*") {
            // `@*`: fire on every hit, whatever the count said.
            parsed.nth = 1;
            parsed.count = 0;
        } else {
            parsed.nth = parseCount(entry, "nth", nth_text);
            if (parsed.nth == 0) {
                throw FailpointError("failpoint entry '" + entry +
                                     "': nth is 1-based");
            }
        }
    }

    if (rest.empty())
        throw FailpointError("failpoint entry '" + entry +
                             "': empty site name");
    if (!isKnownSite(rest)) {
        std::string known;
        for (const std::string_view site : kKnownSites)
            known += " " + std::string(site);
        throw FailpointError("unknown failpoint site '" +
                             std::string(rest) + "' (known:" + known +
                             ")");
    }
    out[std::string(rest)] = parsed;
}

/** Reads GRAPHR_FAILPOINTS once, before main() (a bad spec is a user
 *  error: fail loudly at startup, not at the first armed site). */
const bool g_envLoaded = [] {
    const char *spec = std::getenv("GRAPHR_FAILPOINTS");
    if (spec == nullptr || spec[0] == '\0')
        return false;
    try {
        configure(spec);
    } catch (const FailpointError &err) {
        GRAPHR_FATAL("GRAPHR_FAILPOINTS: ", err.what());
    }
    return true;
}();

} // namespace

namespace detail
{

std::atomic<bool> g_armed{false};

bool
shouldFire(std::string_view site, std::uint64_t *arg)
{
    GRAPHR_ASSERT(isKnownSite(site),
                  "unregistered failpoint site ", site);
    Registry &r = registry();
    bool fire = false;
    {
        const std::lock_guard<std::mutex> lock(r.mutex);
        const auto it = r.entries.find(site);
        if (it == r.entries.end())
            return false;
        Entry &entry = it->second;
        ++entry.hits;
        fire = entry.hits >= entry.nth &&
               (entry.count == 0 || entry.fires < entry.count);
        if (fire) {
            ++entry.fires;
            if (entry.hasArg && arg != nullptr)
                *arg = entry.arg;
        }
    }
    if (fire) {
        // Cached reference: the registry lookup happens once.
        static perf::Counter &fires =
            perf::Registry::instance().counter("failpoint.fires");
        fires.add();
    }
    return fire;
}

} // namespace detail

void
configure(const std::string &spec)
{
    std::map<std::string, Entry, std::less<>> parsed;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        std::size_t end = spec.find(',', begin);
        if (end == std::string::npos)
            end = spec.size();
        const std::string entry = spec.substr(begin, end - begin);
        if (!entry.empty())
            parseEntry(entry, parsed);
        begin = end + 1;
    }

    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.entries = std::move(parsed);
    detail::g_armed.store(!r.entries.empty(),
                          std::memory_order_relaxed);
}

void
disarmAll()
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.entries.clear();
    detail::g_armed.store(false, std::memory_order_relaxed);
}

std::span<const std::string_view>
knownSites()
{
    return kKnownSites;
}

std::vector<SiteStats>
stats()
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<SiteStats> out;
    out.reserve(r.entries.size());
    for (const auto &[site, entry] : r.entries)
        out.push_back(SiteStats{site, entry.hits, entry.fires});
    return out;
}

} // namespace graphr::failpoint
