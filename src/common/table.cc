#include "table.hh"

#include <cmath>

#include "common/logging.hh"

namespace graphr
{

double
geomean(const std::vector<double> &values)
{
    GRAPHR_ASSERT(!values.empty(), "geomean of empty vector");
    double log_sum = 0.0;
    for (double v : values) {
        GRAPHR_ASSERT(v > 0.0, "geomean requires positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace graphr
