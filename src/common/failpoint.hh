/**
 * @file
 * Deterministic fault-injection points (failpoints).
 *
 * A failpoint is a named site in a hardened code path — a store read,
 * a socket write, a plan build — that can be told to fail (or stall)
 * on exactly the Nth time it is reached. Unlike probabilistic fault
 * injection, every run with the same spec takes the same branches, so
 * a chaos test that fires `store.read.short` on the third read fails
 * the same read every time and its assertions are exact.
 *
 * Activation comes from the `GRAPHR_FAILPOINTS` environment variable
 * (read once at process start) or from failpoint::configure() in
 * tests. The spec is a comma-separated list of entries:
 *
 *   site[:count][@nth][=arg]
 *
 *   site    one of the compiled-in site names (knownSites());
 *           unknown names are rejected loudly — a typo must not
 *           silently disarm a chaos run
 *   count   how many times to fire (default 1, `*` = every eligible
 *           hit)
 *   @nth    1-based hit index of the first firing (default 1, `@*` =
 *           fire on every hit, overriding count)
 *   =arg    optional unsigned payload a site may consult (e.g. the
 *           stall milliseconds of pool.task.slow)
 *
 *   GRAPHR_FAILPOINTS=store.read.short:1@3,serve.write.eio:1@*
 *       -> the third buffered store read comes back short once, and
 *          every serve-side socket write reports an I/O error.
 *
 * Sites are reached via the GRAPHR_FAILPOINT macros. When no spec is
 * configured (the production case) a site costs one relaxed atomic
 * load and a predictable branch; the registry mutex is only ever
 * touched while a spec is armed. Each firing bumps the process-wide
 * perf counter `failpoint.fires` (surfaced by `graphr_serve status`),
 * so a chaos harness can assert the injected fault actually happened.
 */

#ifndef GRAPHR_COMMON_FAILPOINT_HH
#define GRAPHR_COMMON_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace graphr::failpoint
{

/** Malformed GRAPHR_FAILPOINTS spec or unknown site name. */
class FailpointError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

namespace detail
{
/** True while any failpoint entry is armed (see enabled()). */
extern std::atomic<bool> g_armed;

/** Slow path of the macros: count the hit, decide, bump counters. */
bool shouldFire(std::string_view site, std::uint64_t *arg);
} // namespace detail

/**
 * The production fast path: one relaxed load, false (and branch-
 * predictable) whenever no spec is armed.
 */
inline bool
enabled()
{
    return detail::g_armed.load(std::memory_order_relaxed);
}

/**
 * Arm the registry from @p spec (the GRAPHR_FAILPOINTS grammar),
 * replacing any previous configuration and resetting all hit/fire
 * counts. An empty spec disarms every site. Throws FailpointError on
 * a malformed entry or an unknown site name.
 */
void configure(const std::string &spec);

/** Disarm every site and reset all hit/fire counts. */
void disarmAll();

/** Every compiled-in site name, sorted (the chaos sweep's worklist). */
std::span<const std::string_view> knownSites();

/** Observed hits/fires of one armed site (configure() resets). */
struct SiteStats
{
    std::string site;
    std::uint64_t hits = 0;  ///< times the site was reached
    std::uint64_t fires = 0; ///< times it actually fired
};

/** Stats for every currently armed site, sorted by name. */
std::vector<SiteStats> stats();

} // namespace graphr::failpoint

/**
 * True when the named failpoint should fire at this hit. The name
 * must be one of knownSites() — firing is the anomalous branch, so
 * callers write `if (GRAPHR_FAILPOINT("x")) <fail>;`.
 */
#define GRAPHR_FAILPOINT(site)                                               \
    (::graphr::failpoint::enabled() &&                                       \
     ::graphr::failpoint::detail::shouldFire(site, nullptr))

/** Like GRAPHR_FAILPOINT, but *argp picks up the entry's `=arg`
 *  payload when the spec carries one (left untouched otherwise). */
#define GRAPHR_FAILPOINT_ARG(site, argp)                                     \
    (::graphr::failpoint::enabled() &&                                       \
     ::graphr::failpoint::detail::shouldFire(site, argp))

#endif // GRAPHR_COMMON_FAILPOINT_HH
