/**
 * @file
 * Fixed-width text table formatting for bench output.
 *
 * Every bench binary prints the rows/series of the paper table or
 * figure it regenerates; this helper keeps that output aligned and
 * uniform.
 */

#ifndef GRAPHR_COMMON_TABLE_HH
#define GRAPHR_COMMON_TABLE_HH

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace graphr
{

/** A simple column-aligned text table. */
class TextTable
{
  public:
    /** Set the header row. */
    void
    header(std::vector<std::string> cells)
    {
        header_ = std::move(cells);
    }

    /** Append a data row (cells already formatted as strings). */
    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Format a double with the given precision. */
    static std::string
    num(double v, int precision = 2)
    {
        std::ostringstream oss;
        oss << std::fixed << std::setprecision(precision) << v;
        return oss.str();
    }

    /** Format a double in scientific notation. */
    static std::string
    sci(double v, int precision = 3)
    {
        std::ostringstream oss;
        oss << std::scientific << std::setprecision(precision) << v;
        return oss.str();
    }

    /** Render the table. */
    void
    print(std::ostream &os) const
    {
        std::vector<std::size_t> widths;
        auto grow = [&widths](const std::vector<std::string> &cells) {
            if (widths.size() < cells.size())
                widths.resize(cells.size(), 0);
            for (std::size_t i = 0; i < cells.size(); ++i)
                widths[i] = std::max(widths[i], cells[i].size());
        };
        grow(header_);
        for (const auto &r : rows_)
            grow(r);

        auto emit = [&](const std::vector<std::string> &cells) {
            for (std::size_t i = 0; i < cells.size(); ++i) {
                os << std::left << std::setw(static_cast<int>(widths[i] + 2))
                   << cells[i];
            }
            os << "\n";
        };
        emit(header_);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
        for (const auto &r : rows_)
            emit(r);
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Geometric mean of a vector of positive values. */
double geomean(const std::vector<double> &values);

} // namespace graphr

#endif // GRAPHR_COMMON_TABLE_HH
