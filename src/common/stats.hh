/**
 * @file
 * Lightweight named statistics: scalar counters and formatted dumps.
 *
 * Loosely modelled on gem5's stats package; every simulated component
 * registers counters in a StatGroup so benches can print coherent
 * breakdowns.
 */

#ifndef GRAPHR_COMMON_STATS_HH
#define GRAPHR_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace graphr
{

/** A group of named 64-bit counters with hierarchical names. */
class StatGroup
{
  public:
    /** Add delta to the named counter, creating it at zero if new. */
    void
    add(const std::string &name, std::uint64_t delta)
    {
        counters_[name] += delta;
    }

    /** Set a counter to an absolute value. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /** Read a counter; missing counters read as zero. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Whether the counter exists. */
    bool
    has(const std::string &name) const
    {
        return counters_.find(name) != counters_.end();
    }

    /** Merge another group into this one (summing counters). */
    void
    merge(const StatGroup &other)
    {
        for (const auto &[name, value] : other.counters_)
            counters_[name] += value;
    }

    /** Remove all counters. */
    void clear() { counters_.clear(); }

    /** Dump "name value" lines sorted by name. */
    void
    dump(std::ostream &os, const std::string &prefix = "") const
    {
        for (const auto &[name, value] : counters_)
            os << prefix << name << " " << value << "\n";
    }

    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace graphr

#endif // GRAPHR_COMMON_STATS_HH
