/**
 * @file
 * Small thread-safe keyed LRU used by the engine's PlanCache and the
 * driver's golden-result cache.
 *
 * Values are shared_ptrs: eviction never invalidates a value a caller
 * still holds. Capacity is small by design — cached values (tile
 * plans, golden rank vectors) are memory-heavy for large graphs.
 *
 * Built for the parallel sweep driver: lookups take a shared lock and
 * builds happen *outside* the cache lock with per-key
 * once-construction. The first thread to miss a key becomes its
 * builder; concurrent threads asking for the same key block on that
 * key's slot (never re-running the factory), while threads working on
 * different keys proceed independently. A failed build propagates its
 * exception to every waiter and drops the entry so later calls retry.
 */

#ifndef GRAPHR_COMMON_LRU_CACHE_HH
#define GRAPHR_COMMON_LRU_CACHE_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

namespace graphr
{

/** Hit/miss counters of one cache since construction or clear(). */
struct LruCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

/** LRU map Key -> shared_ptr<const Value> with build-on-miss. */
template <typename Key, typename Value, typename Hash>
class LruCache
{
  public:
    using ValuePtr = std::shared_ptr<const Value>;

    explicit LruCache(std::size_t capacity)
        : capacity_(capacity > 0 ? capacity : 1)
    {
    }

    /**
     * Return the cached value for @p key, building it with
     * @p factory() on a miss. @p cache_hit, when non-null, reports
     * whether the value was reused (including a wait on a build
     * another thread had in flight).
     */
    template <typename Factory>
    ValuePtr
    getOrBuild(const Key &key, Factory &&factory,
               bool *cache_hit = nullptr)
    {
        SlotPtr slot;
        {
            // Fast path: shared-lock lookup, no LRU mutation.
            std::shared_lock<std::shared_mutex> lock(mutex_);
            const auto it = index_.find(key);
            if (it != index_.end())
                slot = it->second->second;
        }
        bool builder = false;
        if (slot == nullptr) {
            std::unique_lock<std::shared_mutex> lock(mutex_);
            const auto it = index_.find(key);
            if (it != index_.end()) {
                slot = it->second->second;
            } else {
                slot = std::make_shared<Slot>();
                lru_.emplace_front(key, slot);
                index_.emplace(key, lru_.begin());
                misses_.fetch_add(1, std::memory_order_relaxed);
                evictOverflow();
                builder = true;
            }
        }

        if (builder) {
            // Build outside the cache lock: only threads wanting this
            // key wait; other keys are untouched.
            ValuePtr value;
            try {
                value = factory();
                publish(slot, value, nullptr);
            } catch (...) {
                publish(slot, nullptr, std::current_exception());
                dropIfStillMapped(key, slot);
                throw;
            }
            if (cache_hit != nullptr)
                *cache_hit = false;
            return value;
        }

        // Hit — possibly on a build still in flight.
        ValuePtr value;
        {
            std::unique_lock<std::mutex> slot_lock(slot->mutex);
            slot->ready.wait(slot_lock, [&slot] { return slot->done; });
            if (slot->error)
                std::rethrow_exception(slot->error);
            value = slot->value;
        }
        touchFront(key);
        if (cache_hit != nullptr)
            *cache_hit = true;
        return value;
    }

    /** Drop every entry and reset the statistics. */
    void
    clear()
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        lru_.clear();
        index_.clear();
        hits_.store(0, std::memory_order_relaxed);
        misses_.store(0, std::memory_order_relaxed);
    }

    std::size_t
    size() const
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        return lru_.size();
    }

    /** Change capacity (>= 1), evicting LRU entries if shrinking. */
    void
    setCapacity(std::size_t capacity)
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        capacity_ = capacity > 0 ? capacity : 1;
        evictOverflow();
    }

    LruCacheStats
    stats() const
    {
        return LruCacheStats{hits_.load(std::memory_order_relaxed),
                             misses_.load(std::memory_order_relaxed)};
    }

  private:
    /**
     * Per-key build rendezvous. Builders publish the value (or the
     * factory's exception) here; waiters block on `ready`. Waiters
     * hold the slot by shared_ptr, so eviction or clear() during an
     * in-flight build is harmless.
     */
    struct Slot
    {
        std::mutex mutex;
        std::condition_variable ready;
        bool done = false;
        ValuePtr value;
        std::exception_ptr error;
    };
    using SlotPtr = std::shared_ptr<Slot>;
    using LruList = std::list<std::pair<Key, SlotPtr>>;

    void
    publish(const SlotPtr &slot, ValuePtr value, std::exception_ptr err)
    {
        {
            std::lock_guard<std::mutex> slot_lock(slot->mutex);
            slot->value = std::move(value);
            slot->error = err;
            slot->done = true;
        }
        slot->ready.notify_all();
    }

    /** Remove a failed build's entry so later lookups retry. */
    void
    dropIfStillMapped(const Key &key, const SlotPtr &slot)
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        const auto it = index_.find(key);
        if (it != index_.end() && it->second->second == slot) {
            lru_.erase(it->second);
            index_.erase(it);
        }
    }

    /**
     * Record a hit. The recency bump needs the exclusive lock (list
     * splice), but LRU order is a heuristic, not correctness — so
     * under contention the bump is simply dropped and the hit path
     * never blocks behind other workers. Serial callers always get
     * the lock, keeping eviction order deterministic for them.
     */
    void
    touchFront(const Key &key)
    {
        hits_.fetch_add(1, std::memory_order_relaxed);
        std::unique_lock<std::shared_mutex> lock(mutex_,
                                                 std::try_to_lock);
        if (!lock.owns_lock())
            return;
        const auto it = index_.find(key);
        if (it != index_.end())
            lru_.splice(lru_.begin(), lru_, it->second);
    }

    void
    evictOverflow() ///< caller holds mutex_ exclusively
    {
        while (lru_.size() > capacity_) {
            index_.erase(lru_.back().first);
            lru_.pop_back();
        }
    }

    mutable std::shared_mutex mutex_;
    std::size_t capacity_;
    LruList lru_; ///< front = most recently used
    std::unordered_map<Key, typename LruList::iterator, Hash> index_;
    /** Lock-free counters: the hit path must not take mutex_. */
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace graphr

#endif // GRAPHR_COMMON_LRU_CACHE_HH
