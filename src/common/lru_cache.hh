/**
 * @file
 * Small thread-safe keyed LRU used by the engine's PlanCache and the
 * driver's golden-result cache.
 *
 * Values are shared_ptrs: eviction never invalidates a value a caller
 * still holds. Capacity is small by design — cached values (tile
 * plans, golden rank vectors) are memory-heavy for large graphs.
 * Builds happen under the lock, serialising concurrent misses for
 * the same key into one build; the simulator is effectively
 * single-threaded per process, so the simplicity wins.
 */

#ifndef GRAPHR_COMMON_LRU_CACHE_HH
#define GRAPHR_COMMON_LRU_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace graphr
{

/** Hit/miss counters of one cache since construction or clear(). */
struct LruCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

/** LRU map Key -> shared_ptr<const Value> with build-on-miss. */
template <typename Key, typename Value, typename Hash>
class LruCache
{
  public:
    using ValuePtr = std::shared_ptr<const Value>;

    explicit LruCache(std::size_t capacity)
        : capacity_(capacity > 0 ? capacity : 1)
    {
    }

    /**
     * Return the cached value for @p key, building it with
     * @p factory() on a miss. @p cache_hit, when non-null, reports
     * whether the value was reused.
     */
    template <typename Factory>
    ValuePtr
    getOrBuild(const Key &key, Factory &&factory,
               bool *cache_hit = nullptr)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = index_.find(key);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++stats_.hits;
            if (cache_hit != nullptr)
                *cache_hit = true;
            return it->second->second;
        }
        ValuePtr value = factory();
        lru_.emplace_front(key, value);
        index_.emplace(key, lru_.begin());
        ++stats_.misses;
        evictOverflow();
        if (cache_hit != nullptr)
            *cache_hit = false;
        return value;
    }

    /** Drop every entry and reset the statistics. */
    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        lru_.clear();
        index_.clear();
        stats_ = LruCacheStats{};
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return lru_.size();
    }

    /** Change capacity (>= 1), evicting LRU entries if shrinking. */
    void
    setCapacity(std::size_t capacity)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        capacity_ = capacity > 0 ? capacity : 1;
        evictOverflow();
    }

    LruCacheStats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stats_;
    }

  private:
    using LruList = std::list<std::pair<Key, ValuePtr>>;

    void
    evictOverflow() ///< caller holds mutex_
    {
        while (lru_.size() > capacity_) {
            index_.erase(lru_.back().first);
            lru_.pop_back();
        }
    }

    mutable std::mutex mutex_;
    std::size_t capacity_;
    LruList lru_; ///< front = most recently used
    std::unordered_map<Key, typename LruList::iterator, Hash> index_;
    LruCacheStats stats_;
};

} // namespace graphr

#endif // GRAPHR_COMMON_LRU_CACHE_HH
