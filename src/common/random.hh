/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the repository (graph generators, cell
 * variation models) draws from this xoshiro256** generator so runs are
 * exactly reproducible for a given seed, independent of the standard
 * library implementation.
 */

#ifndef GRAPHR_COMMON_RANDOM_HH
#define GRAPHR_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

namespace graphr
{

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain reference
 * algorithm), seeded via SplitMix64.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // SplitMix64 step.
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, bound). Bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection-free Lemire-style mapping is overkill here; modulo
        // bias is negligible for bounds far below 2^64.
        return next() % bound;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /** Approximate standard normal via sum of 12 uniforms (Irwin-Hall). */
    double
    normal(double mean = 0.0, double stddev = 1.0)
    {
        double s = 0.0;
        for (int i = 0; i < 12; ++i)
            s += uniform();
        return mean + stddev * (s - 6.0);
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

} // namespace graphr

#endif // GRAPHR_COMMON_RANDOM_HH
