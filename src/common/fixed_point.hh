/**
 * @file
 * 16-bit fixed-point arithmetic and 4-bit slicing.
 *
 * GraphR stores each 16-bit fixed-point operand as four 4-bit ReRAM
 * cells spread across four crossbars and recombines partial products
 * with the shift-and-add unit (paper section 3.2, "Data Format").
 * This header provides the quantisation, slicing and recombination
 * used by both the device model and the algorithm mappings.
 */

#ifndef GRAPHR_COMMON_FIXED_POINT_HH
#define GRAPHR_COMMON_FIXED_POINT_HH

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "common/logging.hh"

namespace graphr
{

/** Number of bits in a full fixed-point operand. */
inline constexpr int kValueBits = 16;

/** Resolution of one multi-level ReRAM cell (paper assumes 4-bit). */
inline constexpr int kCellBits = 4;

/** Number of 4-bit slices composing one 16-bit value. */
inline constexpr int kSlicesPerValue = kValueBits / kCellBits;

/**
 * Unsigned 16-bit fixed point with a configurable number of
 * fractional bits. Chosen per algorithm: PageRank uses Q0.15-style
 * scaling (values in [0, 1)); SSSP/BFS use integer distances (0
 * fractional bits).
 */
class FixedPoint
{
  public:
    /** Raw storage type: 16 bits of magnitude. */
    using Raw = std::uint16_t;

    FixedPoint() = default;

    /** Construct from raw bits. */
    static constexpr FixedPoint
    fromRaw(Raw raw, int frac_bits)
    {
        FixedPoint fp;
        fp.raw_ = raw;
        fp.fracBits_ = frac_bits;
        return fp;
    }

    /**
     * Quantise a non-negative real number. Values outside the
     * representable range saturate.
     */
    static FixedPoint
    quantize(double value, int frac_bits)
    {
        GRAPHR_ASSERT(frac_bits >= 0 && frac_bits <= kValueBits,
                      "frac_bits=", frac_bits);
        GRAPHR_ASSERT(value >= 0.0 || std::abs(value) < 1e-12,
                      "negative value ", value,
                      " not representable in unsigned fixed point");
        const double scaled = std::max(0.0, value) *
                              static_cast<double>(1u << frac_bits);
        const double max_raw = 65535.0;
        const double clamped = std::min(scaled, max_raw);
        FixedPoint fp;
        fp.raw_ = static_cast<Raw>(std::llround(clamped));
        fp.fracBits_ = frac_bits;
        return fp;
    }

    /** Recover the real value. */
    double
    toDouble() const
    {
        return static_cast<double>(raw_) /
               static_cast<double>(1u << fracBits_);
    }

    Raw raw() const { return raw_; }
    int fracBits() const { return fracBits_; }

    /** Extract the i-th 4-bit slice (slice 0 is least significant). */
    std::uint8_t
    slice(int i) const
    {
        GRAPHR_ASSERT(i >= 0 && i < kSlicesPerValue, "slice index ", i);
        return static_cast<std::uint8_t>((raw_ >> (i * kCellBits)) & 0xF);
    }

    /** All slices, least significant first. */
    std::array<std::uint8_t, kSlicesPerValue>
    slices() const
    {
        std::array<std::uint8_t, kSlicesPerValue> out{};
        for (int i = 0; i < kSlicesPerValue; ++i)
            out[static_cast<std::size_t>(i)] = slice(i);
        return out;
    }

    /**
     * Recombine per-slice partial sums with shift-and-add
     * (D3 << 12 | D2 << 8 | D1 << 4 | D0 in the paper's notation).
     * Partial sums are wider than 4 bits because a bitline sums many
     * cells, hence the 64-bit accumulator.
     */
    static std::uint64_t
    shiftAdd(const std::array<std::uint64_t, kSlicesPerValue> &partials)
    {
        std::uint64_t acc = 0;
        for (int i = kSlicesPerValue - 1; i >= 0; --i) {
            acc = (acc << kCellBits) +
                  partials[static_cast<std::size_t>(i)];
        }
        return acc;
    }

    bool operator==(const FixedPoint &other) const = default;

  private:
    Raw raw_ = 0;
    int fracBits_ = 0;
};

/**
 * Quantisation step size for a given number of fractional bits; the
 * worst-case representation error is half of this.
 */
inline constexpr double
quantStep(int frac_bits)
{
    return 1.0 / static_cast<double>(1u << frac_bits);
}

} // namespace graphr

#endif // GRAPHR_COMMON_FIXED_POINT_HH
