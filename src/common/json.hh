/**
 * @file
 * Minimal streaming JSON writer.
 *
 * The driver's report layer serialises RunResults to JSON; nothing in
 * the repo needs parsing or a DOM, so this is a small push-style
 * writer: begin/end nesting calls plus typed value emitters, with
 * comma/indent bookkeeping handled internally. Doubles are formatted
 * with "%.12g", which is deterministic for identical bit patterns —
 * golden-file tests rely on that.
 */

#ifndef GRAPHR_COMMON_JSON_HH
#define GRAPHR_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace graphr
{

/** Push-style JSON emitter with pretty-printing. */
class JsonWriter
{
  public:
    /** @param indent spaces per nesting level (0 = compact). */
    explicit JsonWriter(std::ostream &os, int indent = 2);

    /** Emitter is done only when every container has been closed. */
    ~JsonWriter();

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object member key; must be followed by a value or container. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(std::string_view name, T v)
    {
        key(name);
        return value(v);
    }

    /** Escape per RFC 8259 (quotes, backslash, control chars). */
    static std::string escape(std::string_view s);

    /** Deterministic double formatting ("%.12g"). */
    static std::string formatDouble(double v);

  private:
    /** Comma/newline/indent before any value or key at this level. */
    void separate();
    void indentLine();

    struct Level
    {
        bool isObject = false;
        bool hasItems = false;
    };

    std::ostream &os_;
    int indent_;
    bool pendingKey_ = false;
    std::vector<Level> stack_;
};

} // namespace graphr

#endif // GRAPHR_COMMON_JSON_HH
