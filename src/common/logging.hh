/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user-caused conditions (bad configuration)
 * and exits cleanly with an error code.
 */

#ifndef GRAPHR_COMMON_LOGGING_HH
#define GRAPHR_COMMON_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace graphr
{

namespace detail
{

/** Concatenate a pack of streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort on an internal simulator bug. */
#define GRAPHR_PANIC(...)                                                    \
    ::graphr::detail::panicImpl(__FILE__, __LINE__,                          \
                                ::graphr::detail::concat(__VA_ARGS__))

/** Exit(1) on a user error (bad parameters, malformed input). */
#define GRAPHR_FATAL(...)                                                    \
    ::graphr::detail::fatalImpl(__FILE__, __LINE__,                          \
                                ::graphr::detail::concat(__VA_ARGS__))

/** Non-fatal warning about questionable but tolerable conditions. */
#define GRAPHR_WARN(...)                                                     \
    ::graphr::detail::warnImpl(::graphr::detail::concat(__VA_ARGS__))

/** Informational status message. */
#define GRAPHR_INFORM(...)                                                   \
    ::graphr::detail::informImpl(::graphr::detail::concat(__VA_ARGS__))

/** panic() if the condition does not hold. */
#define GRAPHR_ASSERT(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            GRAPHR_PANIC("assertion failed: " #cond " ", __VA_ARGS__);       \
        }                                                                    \
    } while (false)

} // namespace graphr

#endif // GRAPHR_COMMON_LOGGING_HH
