/**
 * @file
 * Minimal fixed-size thread pool for the sweep driver.
 *
 * Deliberately work-stealing-free: one FIFO queue, a mutex and two
 * condition variables. Sweep tasks are coarse (whole simulation
 * runs), so queue contention is negligible and the simple design is
 * easy to reason about under ThreadSanitizer. Tasks must not throw —
 * callers capture their own errors (the driver stores an
 * exception_ptr per run and rethrows in deterministic order).
 */

#ifndef GRAPHR_COMMON_THREAD_POOL_HH
#define GRAPHR_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace graphr
{

/** Fixed-size FIFO thread pool. */
class ThreadPool
{
  public:
    /**
     * Spawn @p num_threads workers (>= 1; 0 is clamped to 1).
     * hardwareJobs() maps a user-facing "0 = auto" to the machine.
     */
    explicit ThreadPool(unsigned num_threads);

    /** Drains the queue (waits for every submitted task) and joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task. The pool must outlive every submitted task. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Resolve a --jobs value: 0 = hardware concurrency (>= 1). */
    static unsigned effectiveJobs(unsigned requested);

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable taskReady_;  ///< queue became non-empty
    std::condition_variable allIdle_;    ///< pending count hit zero
    std::deque<std::function<void()>> queue_;
    std::size_t pending_ = 0; ///< queued + currently running tasks
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace graphr

#endif // GRAPHR_COMMON_THREAD_POOL_HH
