/**
 * @file
 * FNV-1a 64-bit checksumming shared by the graph fingerprint and the
 * on-disk plan store.
 *
 * One primitive serves both so they cannot drift: a store artifact is
 * keyed by the graph fingerprint in its header and guarded by payload
 * and header checksums, and all three are the same byte-wise FNV-1a
 * fold. FNV-1a is not cryptographic — it guards against corruption
 * and staleness, not adversaries, which is all a local artifact cache
 * needs.
 */

#ifndef GRAPHR_COMMON_CHECKSUM_HH
#define GRAPHR_COMMON_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace graphr
{

/** Streaming FNV-1a 64-bit hasher. */
class Fnv1a64
{
  public:
    static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t kPrime = 1099511628211ull;

    /** Fold @p size raw bytes into the state. */
    void
    update(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            state_ ^= bytes[i];
            state_ *= kPrime;
        }
    }

    /**
     * Fold one 64-bit word, least-significant byte first — the layout
     * graphFingerprint() has always used, kept so fingerprints (and
     * the store files keyed by them) stay stable.
     */
    void
    updateWord(std::uint64_t word)
    {
        for (int i = 0; i < 8; ++i) {
            state_ ^= (word >> (8 * i)) & 0xffu;
            state_ *= kPrime;
        }
    }

    std::uint64_t digest() const { return state_; }

  private:
    std::uint64_t state_ = kOffset;
};

/** One-shot FNV-1a 64 over a byte range. */
inline std::uint64_t
fnv1a64(const void *data, std::size_t size)
{
    Fnv1a64 h;
    h.update(data, size);
    return h.digest();
}

} // namespace graphr

#endif // GRAPHR_COMMON_CHECKSUM_HH
