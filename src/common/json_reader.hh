/**
 * @file
 * Minimal strict JSON reader (the counterpart of json.hh's writer).
 *
 * The serving daemon accepts JSON-lines requests, so the repo now
 * needs parsing as well as emission. This is a small recursive-descent
 * parser producing an immutable JsonValue DOM: strict RFC 8259
 * grammar (no comments, no trailing commas, no bare values beyond the
 * five literals), a nesting-depth limit so hostile input cannot blow
 * the stack, and typed accessors that throw JsonParseError instead of
 * asserting — a malformed request must become a structured error
 * response, never a crash.
 *
 * Numbers keep their raw source token alongside the double value:
 * u64 reads (request seeds, counters) parse the token directly, so
 * integers above 2^53 survive, and string round-trips (ParamMap
 * values) preserve the user's spelling ("0.85" stays "0.85").
 */

#ifndef GRAPHR_COMMON_JSON_READER_HH
#define GRAPHR_COMMON_JSON_READER_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace graphr
{

namespace detail
{
class JsonParser;
}

/** Malformed JSON text or a type-mismatched accessor. */
class JsonParseError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One parsed JSON value (immutable after parse()). */
class JsonValue
{
  public:
    enum class Type
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    /**
     * Parse a complete JSON document. The whole text must be one
     * value (trailing non-whitespace is an error); nesting deeper
     * than kMaxDepth throws. Throws JsonParseError with a byte
     * offset on any malformed input.
     */
    static JsonValue parse(std::string_view text);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::kNull; }
    bool isBool() const { return type_ == Type::kBool; }
    bool isNumber() const { return type_ == Type::kNumber; }
    bool isString() const { return type_ == Type::kString; }
    bool isArray() const { return type_ == Type::kArray; }
    bool isObject() const { return type_ == Type::kObject; }

    /** Human-readable type name ("object", "number", ...). */
    const char *typeName() const;

    /** Typed reads; throw JsonParseError on a type mismatch. */
    bool asBool() const;
    double asDouble() const;
    const std::string &asString() const;

    /**
     * Non-negative integer read: parses the raw number token, so any
     * u64 survives; rejects negatives, fractions and values that do
     * not fit. Throws JsonParseError otherwise.
     */
    std::uint64_t asU64() const;

    /** The raw source token of a number ("0.85", "42", "1e-3"). */
    const std::string &numberToken() const;

    /** Array elements (throws unless isArray()). */
    const std::vector<JsonValue> &items() const;

    /**
     * Object members in source order (throws unless isObject()).
     * Duplicate keys are kept; find() resolves them last-wins, the
     * same rule ParamMap::parse applies to duplicate k=v entries.
     */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /** Last member with this key, or nullptr (throws unless object). */
    const JsonValue *find(std::string_view key) const;

    /** Nesting levels parse() accepts before giving up. */
    static constexpr int kMaxDepth = 64;

  private:
    friend class detail::JsonParser;

    void requireType(Type t) const;

    Type type_ = Type::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    /** String payload, or the raw token for numbers. */
    std::string text_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace graphr

#endif // GRAPHR_COMMON_JSON_READER_HH
