/**
 * @file
 * Fundamental scalar types shared by every GraphR module.
 */

#ifndef GRAPHR_COMMON_TYPES_HH
#define GRAPHR_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace graphr
{

/** Vertex identifier. Graphs up to 2^32 - 1 vertices are supported. */
using VertexId = std::uint32_t;

/** Edge count / edge index type. Large graphs exceed 2^32 edges. */
using EdgeId = std::uint64_t;

/** Edge weight / vertex property value used by golden algorithms. */
using Value = double;

/** Simulated time in picoseconds (integer to keep simulation exact). */
using PicoSeconds = std::uint64_t;

/** Simulated energy in femtojoules (integer, exact accumulation). */
using FemtoJoules = std::uint64_t;

/** Sentinel for "no vertex". */
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/** Sentinel used by BFS/SSSP for unreachable vertices ("M" in the paper). */
inline constexpr Value kInfDistance = std::numeric_limits<Value>::infinity();

/** Convert picoseconds to seconds. */
inline constexpr double
toSeconds(PicoSeconds ps)
{
    return static_cast<double>(ps) * 1e-12;
}

/** Convert femtojoules to joules. */
inline constexpr double
toJoules(FemtoJoules fj)
{
    return static_cast<double>(fj) * 1e-15;
}

/** Convert nanoseconds (floating) to integer picoseconds, rounding. */
inline constexpr PicoSeconds
nsToPs(double ns)
{
    return static_cast<PicoSeconds>(ns * 1e3 + 0.5);
}

/** Convert picojoules (floating) to integer femtojoules, rounding. */
inline constexpr FemtoJoules
pjToFj(double pj)
{
    return static_cast<FemtoJoules>(pj * 1e3 + 0.5);
}

} // namespace graphr

#endif // GRAPHR_COMMON_TYPES_HH
