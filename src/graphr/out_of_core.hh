/**
 * @file
 * Out-of-core execution driver (paper Fig. 9 and section 3.3's
 * "global processing order").
 *
 * When a graph exceeds the memory-ReRAM capacity, it is partitioned
 * into B x B blocks stored on disk in the preprocessed streaming-
 * apply order; an out-of-core framework (GridGraph in the paper)
 * loads each block with sequential I/O and hands it to the GraphR
 * node. Because the order is fully sequential, the disk can prefetch
 * the next block while the node processes the current one, so each
 * iteration costs max(disk stream, node processing) plus the block
 * switch overheads.
 *
 * This driver wraps GraphRNode with that block schedule and a simple
 * sequential-storage model.
 */

#ifndef GRAPHR_GRAPHR_OUT_OF_CORE_HH
#define GRAPHR_GRAPHR_OUT_OF_CORE_HH

#include "algorithms/pagerank.hh"
#include "graphr/node.hh"

namespace graphr
{

/** Sequential storage model (defaults: SATA-SSD class). */
struct StorageParams
{
    double seqBandwidthGBs = 0.5; ///< sustained sequential read
    double accessLatencyUs = 80.0; ///< per block-switch latency
    double energyPjPerByte = 10.0; ///< controller + transfer energy
};

/** Result of an out-of-core run. */
struct OutOfCoreReport
{
    SimReport node;       ///< accelerator-side report (all blocks)
    double diskSeconds = 0.0;  ///< raw disk streaming time
    double totalSeconds = 0.0; ///< pipelined end-to-end time
    double diskJoules = 0.0;
    double totalJoules = 0.0;
    std::uint64_t numBlocks = 0;
    std::uint64_t bytesStreamed = 0;
};

/**
 * Runs algorithms block-by-block through a GraphR node with disk
 * loading modelled per iteration.
 */
class OutOfCoreRunner
{
  public:
    /**
     * @param config node configuration; tiling.blockSize selects B
     *        (0 keeps the single-block in-memory behaviour)
     * @param storage disk model
     */
    OutOfCoreRunner(const GraphRConfig &config,
                    const StorageParams &storage);

    /** Out-of-core PageRank (every block streamed every iteration). */
    OutOfCoreReport runPageRank(const CooGraph &graph,
                                const PageRankParams &params);

    /** One out-of-core SpMV pass (a single full stream). */
    OutOfCoreReport runSpmv(const CooGraph &graph,
                            const std::vector<Value> &x);

    /**
     * Out-of-core BFS/SSSP: per round only blocks whose source range
     * intersects the active set are streamed (GridGraph's 2-level
     * selective scheduling, which GraphR inherits).
     */
    OutOfCoreReport runBfs(const CooGraph &graph, VertexId source);
    OutOfCoreReport runSssp(const CooGraph &graph, VertexId source);

    /**
     * Out-of-core WCC: selective rounds over the symmetrised edge
     * set (all sources start active; activity decays as labels
     * converge).
     */
    OutOfCoreReport runWcc(const CooGraph &graph);

    /** Out-of-core CF (every rating block streamed every epoch). */
    OutOfCoreReport runCf(const CooGraph &ratings, const CfParams &params);

    const GraphRConfig &config() const { return config_; }
    const StorageParams &storage() const { return storage_; }

  private:
    /**
     * Full-stream schedule: every iteration of the node report
     * streams the whole ordered edge list once (PageRank/SpMV/CF).
     */
    OutOfCoreReport sequentialSweeps(const CooGraph &graph,
                                     SimReport node_report) const;

    /**
     * Selective schedule: replay the relaxation rounds and stream a
     * block-row only when one of its sources is active (BFS/SSSP/WCC).
     */
    OutOfCoreReport selectiveRounds(const CooGraph &graph,
                                    SimReport node_report,
                                    RelaxationSweep &sweep) const;

    /** Disk time for one load of the given byte volume. */
    double streamSeconds(std::uint64_t bytes,
                         std::uint64_t block_switches) const;

    GraphRConfig config_;
    StorageParams storage_;
};

} // namespace graphr

#endif // GRAPHR_GRAPHR_OUT_OF_CORE_HH
