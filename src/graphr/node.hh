/**
 * @file
 * GraphRNode: the top-level simulated accelerator.
 *
 * One node owns memory ReRAM (holding the preprocessed COO edge
 * list), G graph engines of N crossbars each, the controller and the
 * streaming-apply scheduler (paper Fig. 8-11). The public entry
 * points run one algorithm end to end and return a SimReport with
 * simulated time, energy and workload statistics.
 *
 * Two execution modes (GraphRConfig::functional):
 *  - functional: edges are programmed into the modelled crossbars and
 *    results are computed through the analog datapath (bit-sliced
 *    fixed point). Exact but slow; used by tests and examples.
 *  - timing-only: semantics come from the golden algorithms; the node
 *    walks the tile stream and charges the cost model. Used by the
 *    benches on large graphs.
 *
 * Both modes charge identical event counts per processed tile (a
 * property test asserts this).
 */

#ifndef GRAPHR_GRAPHR_NODE_HH
#define GRAPHR_GRAPHR_NODE_HH

#include <optional>
#include <vector>

#include "algorithms/collaborative_filtering.hh"
#include "algorithms/pagerank.hh"
#include "algorithms/traversal.hh"
#include "graph/coo.hh"
#include "graphr/config.hh"
#include "graphr/cost_model.hh"
#include "graphr/sim_report.hh"

namespace graphr
{

/** A single GraphR accelerator node in the out-of-core setting. */
class GraphRNode
{
  public:
    explicit GraphRNode(GraphRConfig config = GraphRConfig{});

    const GraphRConfig &config() const { return config_; }

    /**
     * PageRank (parallel MAC; paper Fig. 13/16b).
     * @param ranks_out optional: final rank vector
     */
    SimReport runPageRank(const CooGraph &graph,
                          const PageRankParams &params,
                          std::vector<Value> *ranks_out = nullptr);

    /** One SpMV pass y = A^T x (parallel MAC; Table 2 row 1). */
    SimReport runSpmv(const CooGraph &graph, const std::vector<Value> &x,
                      std::vector<Value> *y_out = nullptr);

    /** BFS levels from a source (parallel add-op; Table 2 row 3). */
    SimReport runBfs(const CooGraph &graph, VertexId source,
                     std::vector<Value> *dist_out = nullptr);

    /** SSSP from a source (parallel add-op; paper Fig. 14/16c). */
    SimReport runSssp(const CooGraph &graph, VertexId source,
                      std::vector<Value> *dist_out = nullptr);

    /**
     * Weakly connected components by min-label propagation over the
     * symmetrised graph (parallel add-op with zero edge weight; the
     * natural third add-op vertex program alongside BFS/SSSP).
     */
    SimReport runWcc(const CooGraph &graph,
                     std::vector<VertexId> *labels_out = nullptr);

    /**
     * Collaborative filtering training (parallel MAC over the rating
     * matrix; section 5.1). Semantics always come from the golden
     * SGD; the node models the per-epoch tile schedule with
     * 2 * featureLength MAC passes per tile (one per feature per
     * direction).
     */
    SimReport runCf(const CooGraph &ratings, const CfParams &params);

  private:
    struct Prepared; // preprocessing products (defined in .cc)

    /** Initial state of an add-op (min-relaxation) execution. */
    struct AddOpSpec
    {
        std::vector<Value> initLabels;
        std::vector<bool> initActive;
        WeightMode mode = WeightMode::kOriginal;
    };

    /** Run preprocessing + metadata extraction for a graph. */
    Prepared prepare(const CooGraph &graph) const;

    /** Shared MAC-pattern driver (PageRank/SpMV/CF schedules). */
    SimReport runMacSweeps(const Prepared &prep, std::uint64_t sweeps,
                           std::uint32_t passes_per_tile,
                           const char *name);

    /** Shared add-op driver (BFS/SSSP/WCC). */
    SimReport runAddOpRounds(const Prepared &prep, const CooGraph &graph,
                             const AddOpSpec &spec, const char *name,
                             std::vector<Value> *dist_out);

    GraphRConfig config_;
    CostModel costModel_;
};

} // namespace graphr

#endif // GRAPHR_GRAPHR_NODE_HH
