/**
 * @file
 * GraphRNode: the top-level simulated accelerator.
 *
 * One node owns memory ReRAM (holding the preprocessed COO edge
 * list), G graph engines of N crossbars each, the controller and the
 * streaming-apply scheduler (paper Fig. 8-11). The public entry
 * points run one algorithm end to end and return a SimReport with
 * simulated time, energy and workload statistics.
 *
 * Two execution modes (GraphRConfig::functional):
 *  - functional: edges are programmed into the modelled crossbars and
 *    results are computed through the analog datapath (bit-sliced
 *    fixed point). Exact but slow; used by tests and examples.
 *  - timing-only: semantics come from the golden algorithms; the node
 *    walks the tile stream and charges the cost model. Used by the
 *    benches on large graphs.
 *
 * Both modes charge identical event counts per processed tile (a
 * property test asserts this).
 *
 * The node does not walk tiles itself: preprocessing products come
 * from the shared PlanCache (one prepare per graph x tiling across
 * all runners of the process) and both the timing accounting and the
 * functional datapath are driven by the TileExecutor from
 * per-algorithm MacSpec/AddOpSpec descriptions (graphr/engine/).
 */

#ifndef GRAPHR_GRAPHR_NODE_HH
#define GRAPHR_GRAPHR_NODE_HH

#include <vector>

#include "algorithms/collaborative_filtering.hh"
#include "algorithms/pagerank.hh"
#include "graph/coo.hh"
#include "graphr/config.hh"
#include "graphr/engine/tile_executor.hh"
#include "graphr/sim_report.hh"

namespace graphr
{

/** A single GraphR accelerator node in the out-of-core setting. */
class GraphRNode
{
  public:
    /** @throws ConfigError on an invalid configuration. */
    explicit GraphRNode(GraphRConfig config = GraphRConfig{});

    const GraphRConfig &config() const { return config_; }

    /**
     * PageRank (parallel MAC; paper Fig. 13/16b).
     * @param ranks_out optional: final rank vector
     */
    SimReport runPageRank(const CooGraph &graph,
                          const PageRankParams &params,
                          std::vector<Value> *ranks_out = nullptr);

    /** One SpMV pass y = A^T x (parallel MAC; Table 2 row 1). */
    SimReport runSpmv(const CooGraph &graph, const std::vector<Value> &x,
                      std::vector<Value> *y_out = nullptr);

    /** BFS levels from a source (parallel add-op; Table 2 row 3). */
    SimReport runBfs(const CooGraph &graph, VertexId source,
                     std::vector<Value> *dist_out = nullptr);

    /** SSSP from a source (parallel add-op; paper Fig. 14/16c). */
    SimReport runSssp(const CooGraph &graph, VertexId source,
                      std::vector<Value> *dist_out = nullptr);

    /**
     * Weakly connected components by min-label propagation over the
     * symmetrised graph (parallel add-op with zero edge weight; the
     * natural third add-op vertex program alongside BFS/SSSP).
     */
    SimReport runWcc(const CooGraph &graph,
                     std::vector<VertexId> *labels_out = nullptr);

    /**
     * Collaborative filtering training (parallel MAC over the rating
     * matrix; section 5.1). Semantics always come from the golden
     * SGD; the node models the per-epoch tile schedule with
     * 2 * featureLength MAC passes per tile (one per feature per
     * direction).
     */
    SimReport runCf(const CooGraph &ratings, const CfParams &params);

    /**
     * Engine counters of the most recent run* call: plan-cache hit,
     * functional tile programs/loads. Test and bench visibility only
     * — not part of the SimReport.
     */
    const EngineStats &lastEngineStats() const { return lastStats_; }

  private:
    /** Executor over the (cached) plan for this graph. */
    TileExecutor makeExecutor(const CooGraph &graph);

    GraphRConfig config_;
    EngineStats lastStats_;
};

} // namespace graphr

#endif // GRAPHR_GRAPHR_NODE_HH
