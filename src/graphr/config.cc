#include "config.hh"

#include <string>

#include "common/fixed_point.hh"

namespace graphr
{

namespace
{

[[noreturn]] void
reject(const std::string &what)
{
    throw ConfigError("invalid GraphRConfig: " + what);
}

} // namespace

void
GraphRConfig::validate() const
{
    if (tiling.crossbarDim == 0)
        reject("crossbarDim must be >= 1");
    if (tiling.crossbarDim > 64) {
        reject("crossbarDim " + std::to_string(tiling.crossbarDim) +
               " exceeds 64: per-tile row activity is tracked in a "
               "64-bit row mask");
    }
    if (tiling.crossbarsPerGe == 0)
        reject("crossbarsPerGe must be >= 1");
    if (tiling.numGe == 0)
        reject("numGe must be >= 1");
    if (weightFracBits < 0 || weightFracBits > kValueBits) {
        reject("weightFracBits " + std::to_string(weightFracBits) +
               " outside [0, " + std::to_string(kValueBits) + "]");
    }
    if (inputFracBits < 0 || inputFracBits > kValueBits) {
        reject("inputFracBits " + std::to_string(inputFracBits) +
               " outside [0, " + std::to_string(kValueBits) + "]");
    }
    if (bytesPerEdge == 0)
        reject("bytesPerEdge must be >= 1");
    if (variationSigma < 0.0)
        reject("variationSigma must be >= 0");
    if (iterationOverheadNs < 0.0)
        reject("iterationOverheadNs must be >= 0");
}

} // namespace graphr
