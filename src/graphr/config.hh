/**
 * @file
 * Top-level configuration of one GraphR node.
 */

#ifndef GRAPHR_GRAPHR_CONFIG_HH
#define GRAPHR_GRAPHR_CONFIG_HH

#include <stdexcept>

#include "graph/partition.hh"
#include "rram/device_params.hh"

namespace graphr
{

/**
 * Invalid GraphRConfig. Thrown (instead of GRAPHR_FATAL exiting) so
 * drivers can report cleanly and tests can assert on the error path.
 */
class ConfigError : public std::invalid_argument
{
  public:
    using std::invalid_argument::invalid_argument;
};

/**
 * When crossbar programming (and the matching memory-ReRAM edge
 * streaming) is charged.
 *
 * kPerSweep (default, the paper's streaming-apply model): every
 * sweep re-streams subgraphs from memory ReRAM into the GEs, paying
 * write energy per tile per sweep. Write *latency* is largely hidden
 * because a tile occupies only a fraction of the N*G crossbars: idle
 * banks program the next tiles while the current one evaluates
 * (TileCost::overlappedProgramNs).
 *
 * kOnce models a fully resident graph (section 3.2 notes a GE with
 * sALU/S&A bypassed is simply a memory ReRAM mat): programming and
 * streaming are charged a single time per run, analogous to the
 * baselines' excluded disk-load. Exposed for the ablation bench.
 */
enum class ProgramCharging
{
    kPerSweep,
    kOnce,
};

/**
 * Everything needed to instantiate a GraphR node. Defaults reproduce
 * the paper's evaluated configuration (section 5.2): 8x8 crossbars,
 * 32 per GE, 64 GEs, 16-bit values on 4-bit cells.
 */
struct GraphRConfig
{
    TilingParams tiling;
    DeviceParams device;

    /** Programming/streaming charge policy (see ProgramCharging). */
    ProgramCharging programCharging = ProgramCharging::kPerSweep;

    /**
     * Functional execution: actually program crossbars and compute
     * through the analog datapath (slow; exact validation). When
     * false, the node runs the cost model only and semantic results
     * come from the golden algorithms.
     */
    bool functional = false;

    /**
     * Overlap tile programming with the previous tile's evaluation
     * (double-buffered crossbar groups). On (default) models the
     * streaming-apply pipeline; off serialises the phases.
     */
    bool pipelineTiles = true;

    /** Fractional bits used to quantise edge weights. */
    int weightFracBits = 12;
    /** Fractional bits used to quantise vertex-property inputs. */
    int inputFracBits = 12;

    /** Per-iteration controller/convergence overhead (ns). */
    double iterationOverheadNs = 1000.0;

    /** Bytes per streamed COO edge (src, dst, 16-bit weight). */
    std::uint32_t bytesPerEdge = 10;

    /** Cell programming variation sigma in level units (0 = exact). */
    double variationSigma = 0.0;
    std::uint64_t variationSeed = 99;

    /**
     * Reject impossible configurations with a ConfigError. Every
     * runner (GraphRNode, MultiNodeGraphR, OutOfCoreRunner) validates
     * at construction. In particular crossbarDim is capped at 64:
     * tile row activity is packed into a uint64_t bitmask
     * (TileMeta::rowMask), so larger crossbars would shift out of
     * range — undefined behaviour, not just a wrong answer.
     */
    void validate() const;
};

} // namespace graphr

#endif // GRAPHR_GRAPHR_CONFIG_HH
