/**
 * @file
 * Multi-node GraphR (paper section 3.1: "multi-node: one can connect
 * different GraphR nodes ... to process large graphs. In this case,
 * each block is processed by a GraphR node. Data movements happen
 * between GraphR nodes.").
 *
 * The graph's destination range is split into contiguous stripes,
 * one per node; node k owns every edge whose destination falls in
 * its stripe (a block column of the global grid). Each iteration the
 * nodes sweep their stripes in parallel, then all-gather the updated
 * vertex properties over the interconnect so every node has the full
 * source vector for the next iteration.
 */

#ifndef GRAPHR_GRAPHR_MULTI_NODE_HH
#define GRAPHR_GRAPHR_MULTI_NODE_HH

#include <functional>
#include <vector>

#include "algorithms/pagerank.hh"
#include "graphr/node.hh"

namespace graphr
{

/** Inter-node link model (PCIe/NVLink-class point-to-point). */
struct LinkParams
{
    double bandwidthGBs = 8.0;
    double latencyUs = 2.0;
    double energyPjPerByte = 30.0;
    std::uint32_t bytesPerProperty = 2; ///< 16-bit fixed point
};

/** Outcome of a multi-node execution. */
struct MultiNodeReport
{
    std::uint32_t numNodes = 0;
    double seconds = 0.0;     ///< end-to-end (compute + all-gather)
    double joules = 0.0;      ///< all nodes + interconnect
    double commSeconds = 0.0; ///< all-gather time across iterations
    double commJoules = 0.0;
    std::uint64_t iterations = 0;
    /** Per-node single-sweep compute seconds (load balance view). */
    std::vector<double> nodeSweepSeconds;

    /** Fraction of end-to-end time spent communicating. */
    double
    commShare() const
    {
        return seconds > 0.0 ? commSeconds / seconds : 0.0;
    }
};

/** A cluster of GraphR nodes with destination-stripe partitioning. */
class MultiNodeGraphR
{
  public:
    MultiNodeGraphR(const GraphRConfig &config, std::uint32_t num_nodes,
                    const LinkParams &link = LinkParams{});

    std::uint32_t numNodes() const { return numNodes_; }

    /**
     * Multi-node PageRank: per-iteration parallel sweeps + property
     * all-gather. Iteration count comes from the golden run.
     */
    MultiNodeReport runPageRank(const CooGraph &graph,
                                const PageRankParams &params);

    /** One SpMV pass (a single parallel sweep + all-gather). */
    MultiNodeReport runSpmv(const CooGraph &graph);

    /**
     * Add-op workloads (BFS/SSSP/WCC): round count from the golden
     * run; each round every node sweeps its stripe and the updated
     * labels are all-gathered. Charging a full stripe sweep per round
     * is a conservative bound — sparse-frontier rounds touch fewer
     * tiles.
     */
    MultiNodeReport runBfs(const CooGraph &graph, VertexId source);
    MultiNodeReport runSssp(const CooGraph &graph, VertexId source);
    MultiNodeReport runWcc(const CooGraph &graph);

    /**
     * CF training: per epoch each node runs the GraphRNode CF tile
     * schedule (one MVM pass per feature) over its rating stripe and
     * the factor rows are all-gathered (featureLength properties per
     * vertex).
     */
    MultiNodeReport runCf(const CooGraph &ratings, const CfParams &params);

  private:
    /** Cost of one sweep over one node's stripe subgraph. */
    using SweepFn =
        std::function<SimReport(GraphRNode &, const CooGraph &)>;

    /**
     * Shared cost core: `iterations` rounds, each charging one
     * parallel stripe sweep (costed by `sweep_fn`) and one all-gather
     * of `props_per_vertex` properties per vertex.
     */
    MultiNodeReport runSweeps(const CooGraph &graph,
                              std::uint64_t iterations,
                              const SweepFn &sweep_fn,
                              double props_per_vertex);

    /** Edges of node k (destinations within its stripe). */
    std::vector<Edge> stripeEdges(const CooGraph &graph,
                                  std::uint32_t node) const;

    GraphRConfig config_;
    std::uint32_t numNodes_;
    LinkParams link_;
};

} // namespace graphr

#endif // GRAPHR_GRAPHR_MULTI_NODE_HH
