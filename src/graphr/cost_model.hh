/**
 * @file
 * Tile-level timing/energy cost model of the GraphR node.
 *
 * The model charges, per processed tile (paper section 3.2/3.3):
 *
 *  programming  — occupied wordlines are written serially per
 *                 crossbar, crossbars in parallel:
 *                 t_prog = maxRowsProgrammed * t_write
 *  MAC compute  — the driver applies the input slice-serially
 *                 (inputSlices array reads), the shared ADCs convert
 *                 every occupied physical bitline once per input
 *                 slice, sALU reduces one vector pass:
 *                 t_mac = inputSlices * t_read + t_adc + t_salu
 *  add-op       — per active source row: one array read (one-hot
 *                 select), bitline conversions, one comparator pass:
 *                 t_row = t_read + t_adc_row + t_salu
 *  streaming    — tile edges are read sequentially from memory
 *                 ReRAM at the streaming bandwidth.
 *
 * With pipelining enabled (default), programming of the next tile
 * overlaps evaluation of the current one, so a tile costs
 * max(t_prog, t_compute, t_stream); otherwise the phases add up.
 *
 * Energy is accounted by event counts in EnergyEvents and priced by
 * EnergyLedger; this class only decides how many events occur.
 */

#ifndef GRAPHR_GRAPHR_COST_MODEL_HH
#define GRAPHR_GRAPHR_COST_MODEL_HH

#include "graphr/config.hh"
#include "graphr/tile_meta.hh"
#include "rram/energy.hh"

namespace graphr
{

/** Time pieces of one tile activation (nanoseconds). */
struct TileCost
{
    double programNs = 0.0; ///< raw write latency of this tile
    double computeNs = 0.0;
    double streamNs = 0.0;
    /**
     * Programming throughput cost under bank overlap: a tile uses
     * only `crossbarsUsed` of the N*G crossbars, so while one bank
     * evaluates, up to floor(N*G / crossbarsUsed) tiles program
     * concurrently into idle banks. Write energy is still paid in
     * full; only the latency is hidden.
     */
    double overlappedProgramNs = 0.0;

    /** Effective latency charged to the tile. */
    double
    totalNs(bool pipelined) const
    {
        if (pipelined) {
            return std::max(
                {overlappedProgramNs, computeNs, streamNs});
        }
        return programNs + computeNs + streamNs;
    }
};

/** Computes per-tile costs and emits the matching energy events. */
class CostModel
{
  public:
    explicit CostModel(const GraphRConfig &config);

    /**
     * Cost of processing one tile in parallel-MAC mode (all rows at
     * once). Also appends the implied events to @p events.
     *
     * @param passes number of MVM evaluations over the programmed
     *        tile (1 for PageRank/SpMV; 2*K for CF, one per feature
     *        per direction). Programming and streaming are charged
     *        once; evaluation time/events scale with passes.
     */
    TileCost macTile(const TileMeta &meta, EnergyEvents &events,
                     std::uint32_t passes = 1) const;

    /**
     * Cost of processing one tile in parallel-add-op mode with the
     * given number of active source rows (>= 1).
     */
    TileCost addOpTile(const TileMeta &meta, std::uint32_t active_rows,
                       EnergyEvents &events) const;

    /** Per-iteration fixed overhead (controller + convergence). */
    double iterationOverheadNs() const
    {
        return config_.iterationOverheadNs;
    }

    /** ADC conversion time for a number of samples (ns). */
    double adcTimeNs(std::uint64_t samples) const;

    /** Concurrent-programming depth for a tile's crossbar footprint. */
    double programOverlapDepth(std::uint32_t crossbars_used) const;

    const GraphRConfig &config() const { return config_; }

  private:
    GraphRConfig config_;
    /** Total shared ADCs across the node: adcsPerGe * G. */
    double totalAdcs_;
    /** Total crossbars across the node: N * G. */
    double totalCrossbars_;
};

} // namespace graphr

#endif // GRAPHR_GRAPHR_COST_MODEL_HH
