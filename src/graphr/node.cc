#include "node.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "algorithms/spmv.hh"
#include "algorithms/traversal.hh"
#include "algorithms/wcc.hh"
#include "common/logging.hh"
#include "rram/graph_engine.hh"

namespace graphr
{

/** Preprocessing products shared by all algorithm drivers. */
struct GraphRNode::Prepared
{
    GridPartition partition;
    OrderedEdgeList ordered;
    TileMetaTable meta;

    Prepared(const CooGraph &graph, const TilingParams &tiling)
        : partition(graph.numVertices(), tiling),
          ordered(graph, partition), meta(ordered)
    {
    }
};

namespace
{

/** Bitmask of active rows [row0, row0 + dim) from an active vector. */
std::uint64_t
activeMask(const std::vector<bool> &active, std::uint64_t row0,
           std::uint32_t dim)
{
    std::uint64_t mask = 0;
    const std::uint64_t nv = active.size();
    for (std::uint32_t r = 0; r < dim; ++r) {
        const std::uint64_t v = row0 + r;
        if (v < nv && active[v])
            mask |= std::uint64_t{1} << r;
    }
    return mask;
}

/** Price accumulated events and fill the shared report fields. */
void
finalizeReport(SimReport &report, const DeviceParams &device,
               const EnergyEvents &events)
{
    EnergyLedger ledger(device);
    ledger.events() = events;
    report.events = events;
    report.energy = ledger.breakdown();
    // Peripheral (ADC/driver/controller) active power over busy time.
    report.energy.peripheral =
        device.peripheralActiveWatts * report.seconds;
    report.joules = report.energy.total();
}

} // namespace

GraphRNode::GraphRNode(GraphRConfig config)
    : config_(config), costModel_(config)
{
}

GraphRNode::Prepared
GraphRNode::prepare(const CooGraph &graph) const
{
    return Prepared(graph, config_.tiling);
}

SimReport
GraphRNode::runMacSweeps(const Prepared &prep, std::uint64_t sweeps,
                         std::uint32_t passes_per_tile, const char *name)
{
    SimReport report;
    report.algorithm = name;
    report.iterations = sweeps;
    report.occupancy = prep.ordered.occupancy();

    // One pass over the tile table yields both the per-sweep compute
    // phase and the programming/streaming (load) phase; the charging
    // policy decides whether the latter repeats per sweep.
    EnergyEvents tile_events;
    double load_ns = 0.0;       // program+stream phase, one sweep
    double compute_ns = 0.0;    // evaluation phase, one sweep
    double combined_ns = 0.0;   // all phases fused (kPerSweep)
    double prog_ns = 0.0;
    double stream_ns = 0.0;
    for (const TileMeta &meta : prep.meta.tiles()) {
        const TileCost cost =
            costModel_.macTile(meta, tile_events, passes_per_tile);
        prog_ns += cost.programNs;
        stream_ns += cost.streamNs;
        compute_ns += cost.computeNs;
        combined_ns += cost.totalNs(config_.pipelineTiles);
        load_ns += config_.pipelineTiles
                       ? std::max(cost.overlappedProgramNs,
                                  cost.streamNs)
                       : cost.programNs + cost.streamNs;
    }

    const double sweeps_d = static_cast<double>(sweeps);
    const double overhead_ns =
        costModel_.iterationOverheadNs() * sweeps_d;
    const bool once = config_.programCharging == ProgramCharging::kOnce;

    double total_ns = 0.0;
    if (once) {
        total_ns = load_ns + compute_ns * sweeps_d + overhead_ns;
        report.programSeconds = prog_ns * 1e-9;
        report.streamSeconds = stream_ns * 1e-9;
    } else {
        total_ns = combined_ns * sweeps_d + overhead_ns;
        report.programSeconds = prog_ns * 1e-9 * sweeps_d;
        report.streamSeconds = stream_ns * 1e-9 * sweeps_d;
    }
    report.computeSeconds = compute_ns * 1e-9 * sweeps_d;
    report.seconds = total_ns * 1e-9;

    const auto tiles = static_cast<std::uint64_t>(
        prep.meta.tiles().size());
    report.tilesProcessed = tiles * sweeps;
    report.tilesSkipped = (prep.partition.numTiles() - tiles) * sweeps;
    report.edgesProcessed = prep.meta.totalNnz() * sweeps;

    // Split events: programming/streaming vs evaluation.
    EnergyEvents load_events;
    load_events.arrayWrites = tile_events.arrayWrites;
    load_events.memBytes = tile_events.memBytes;
    EnergyEvents compute_events = tile_events;
    compute_events.arrayWrites = 0;
    compute_events.memBytes = 0;

    EnergyEvents total;
    for (std::uint64_t s = 0; s < sweeps; ++s)
        total += compute_events;
    if (once) {
        total += load_events;
    } else {
        for (std::uint64_t s = 0; s < sweeps; ++s)
            total += load_events;
    }
    finalizeReport(report, config_.device, total);
    return report;
}

SimReport
GraphRNode::runPageRank(const CooGraph &graph,
                        const PageRankParams &params,
                        std::vector<Value> *ranks_out)
{
    GRAPHR_ASSERT(graph.numVertices() > 0, "empty graph");
    const Prepared prep = prepare(graph);

    std::uint64_t iterations = 0;
    std::vector<Value> ranks;

    if (config_.functional) {
        // Execute through the modelled analog datapath.
        const VertexId nv = graph.numVertices();
        const std::vector<EdgeId> out_deg = graph.outDegrees();
        EnergyLedger scratch(config_.device);
        GraphEngineArray ge(
            config_.tiling.crossbarDim,
            config_.tiling.crossbarsPerGe * config_.tiling.numGe,
            config_.device, scratch);
        if (config_.variationSigma > 0.0)
            ge.setVariation(config_.variationSigma, config_.variationSeed);
        ge.salu().configure(SaluOp::kAdd);

        ranks.assign(nv, 1.0 / static_cast<double>(nv));
        std::vector<Edge> scaled;
        std::vector<double> input(config_.tiling.crossbarDim, 0.0);

        for (int iter = 0; iter < params.maxIterations; ++iter) {
            double dangling = 0.0;
            for (VertexId v = 0; v < nv; ++v) {
                if (out_deg[v] == 0)
                    dangling += ranks[v];
            }
            const double base =
                (1.0 - params.damping) / static_cast<double>(nv) +
                params.damping * dangling / static_cast<double>(nv);
            std::vector<Value> next(nv, base);

            for (std::size_t t = 0; t < prep.meta.tiles().size(); ++t) {
                const TileMeta &meta = prep.meta.tiles()[t];
                const TileSpan &span = prep.ordered.tiles()[t];
                scaled.clear();
                for (const Edge &e : prep.ordered.tileEdges(span)) {
                    scaled.push_back(Edge{
                        e.src, e.dst,
                        params.damping /
                            static_cast<double>(out_deg[e.src])});
                }
                ge.programTile(scaled, meta.row0, meta.col0,
                               config_.weightFracBits);
                for (std::uint32_t r = 0;
                     r < config_.tiling.crossbarDim; ++r) {
                    const std::uint64_t v = meta.row0 + r;
                    input[r] = v < nv ? ranks[v] : 0.0;
                }
                const std::vector<double> partial = ge.runMac(
                    input, config_.inputFracBits, config_.weightFracBits);
                for (std::uint64_t c = 0; c < partial.size(); ++c) {
                    const std::uint64_t v = meta.col0 + c;
                    if (v < nv && partial[c] != 0.0)
                        next[v] = ge.salu().reduce(next[v], partial[c]);
                }
            }

            double delta = 0.0;
            for (VertexId v = 0; v < nv; ++v)
                delta += std::abs(next[v] - ranks[v]);
            ranks = std::move(next);
            ++iterations;
            if (params.tolerance > 0.0 && delta < params.tolerance)
                break;
        }
    } else {
        const PageRankResult golden = pagerank(graph, params);
        iterations = static_cast<std::uint64_t>(golden.iterations);
        ranks = golden.ranks;
    }

    SimReport report = runMacSweeps(prep, iterations, 1, "pagerank");
    if (ranks_out != nullptr)
        *ranks_out = std::move(ranks);
    return report;
}

SimReport
GraphRNode::runSpmv(const CooGraph &graph, const std::vector<Value> &x,
                    std::vector<Value> *y_out)
{
    GRAPHR_ASSERT(x.size() == graph.numVertices(),
                  "input vector length mismatch");
    const Prepared prep = prepare(graph);

    std::vector<Value> y;
    if (config_.functional) {
        const VertexId nv = graph.numVertices();
        const std::vector<EdgeId> out_deg = graph.outDegrees();
        EnergyLedger scratch(config_.device);
        GraphEngineArray ge(
            config_.tiling.crossbarDim,
            config_.tiling.crossbarsPerGe * config_.tiling.numGe,
            config_.device, scratch);
        ge.salu().configure(SaluOp::kAdd);

        y.assign(nv, 0.0);
        std::vector<Edge> scaled;
        std::vector<double> input(config_.tiling.crossbarDim, 0.0);
        for (std::size_t t = 0; t < prep.meta.tiles().size(); ++t) {
            const TileMeta &meta = prep.meta.tiles()[t];
            const TileSpan &span = prep.ordered.tiles()[t];
            scaled.clear();
            for (const Edge &e : prep.ordered.tileEdges(span)) {
                scaled.push_back(Edge{
                    e.src, e.dst,
                    e.weight / static_cast<double>(out_deg[e.src])});
            }
            ge.programTile(scaled, meta.row0, meta.col0,
                           config_.weightFracBits);
            for (std::uint32_t r = 0; r < config_.tiling.crossbarDim;
                 ++r) {
                const std::uint64_t v = meta.row0 + r;
                input[r] = v < nv ? x[v] : 0.0;
            }
            const std::vector<double> partial = ge.runMac(
                input, config_.inputFracBits, config_.weightFracBits);
            for (std::uint64_t c = 0; c < partial.size(); ++c) {
                const std::uint64_t v = meta.col0 + c;
                if (v < nv && partial[c] != 0.0)
                    y[v] = ge.salu().reduce(y[v], partial[c]);
            }
        }
    } else {
        y = spmv(graph, x);
    }

    SimReport report = runMacSweeps(prep, 1, 1, "spmv");
    if (y_out != nullptr)
        *y_out = std::move(y);
    return report;
}

SimReport
GraphRNode::runAddOpRounds(const Prepared &prep, const CooGraph &graph,
                           const AddOpSpec &spec, const char *name,
                           std::vector<Value> *dist_out)
{
    const VertexId nv = graph.numVertices();
    const std::uint32_t dim = config_.tiling.crossbarDim;

    SimReport report;
    report.algorithm = name;
    report.occupancy = prep.ordered.occupancy();

    EnergyEvents events;
    double total_ns = 0.0;
    double prog_ns = 0.0;
    double comp_ns = 0.0;
    double stream_ns = 0.0;
    const bool once = config_.programCharging == ProgramCharging::kOnce;

    // Under kOnce the whole (preprocessed) graph is programmed into
    // ReRAM a single time before the rounds begin.
    if (once) {
        EnergyEvents load_events;
        for (const TileMeta &meta : prep.meta.tiles()) {
            const TileCost cost =
                costModel_.addOpTile(meta, 0, load_events);
            prog_ns += cost.programNs;
            stream_ns += cost.streamNs;
            total_ns += config_.pipelineTiles
                            ? std::max(cost.overlappedProgramNs,
                                       cost.streamNs)
                            : cost.programNs + cost.streamNs;
        }
        events += load_events;
    }

    // Timing walk: synchronous relaxation rounds; each round visits
    // every tile whose source range intersects the active set.
    RelaxationSweep sweep(graph, spec.initLabels, spec.initActive,
                          spec.mode);
    while (!sweep.done()) {
        const std::vector<bool> &active = sweep.active();
        for (const TileMeta &meta : prep.meta.tiles()) {
            const std::uint64_t mask =
                meta.rowMask & activeMask(active, meta.row0, dim);
            if (mask == 0) {
                ++report.tilesSkipped;
                continue;
            }
            const auto rows =
                static_cast<std::uint32_t>(std::popcount(mask));
            EnergyEvents tile_events;
            const TileCost cost =
                costModel_.addOpTile(meta, rows, tile_events);
            if (once) {
                // Graph is resident: only the evaluation phase runs.
                tile_events.arrayWrites = 0;
                tile_events.memBytes = 0;
                total_ns += cost.computeNs;
            } else {
                prog_ns += cost.programNs;
                stream_ns += cost.streamNs;
                total_ns += cost.totalNs(config_.pipelineTiles);
            }
            events += tile_events;
            comp_ns += cost.computeNs;
            ++report.tilesProcessed;
            report.activeRowOps += rows;
            std::uint64_t m = mask;
            while (m != 0) {
                const int r = std::countr_zero(m);
                report.edgesProcessed += meta.rowNnz[r];
                m &= m - 1;
            }
        }
        total_ns += costModel_.iterationOverheadNs();
        ++report.iterations;
        sweep.step();
    }

    report.seconds = total_ns * 1e-9;
    report.programSeconds = prog_ns * 1e-9;
    report.computeSeconds = comp_ns * 1e-9;
    report.streamSeconds = stream_ns * 1e-9;
    finalizeReport(report, config_.device, events);

    if (dist_out == nullptr)
        return report;

    if (!config_.functional) {
        *dist_out = sweep.dist();
        return report;
    }

    // Functional execution through the GE datapath.
    EnergyLedger scratch(config_.device);
    GraphEngineArray ge(dim,
                        config_.tiling.crossbarsPerGe *
                            config_.tiling.numGe,
                        config_.device, scratch);
    if (config_.variationSigma > 0.0)
        ge.setVariation(config_.variationSigma, config_.variationSeed);
    ge.salu().configure(SaluOp::kMin);

    std::vector<Value> dist = spec.initLabels;
    std::vector<bool> active = spec.initActive;
    std::uint64_t active_count = 0;
    for (const bool a : active)
        active_count += a ? 1 : 0;
    std::vector<Edge> rewritten_edges;

    while (active_count > 0) {
        std::vector<Value> next = dist;
        for (std::size_t t = 0; t < prep.meta.tiles().size(); ++t) {
            const TileMeta &meta = prep.meta.tiles()[t];
            const std::uint64_t mask =
                meta.rowMask & activeMask(active, meta.row0, dim);
            if (mask == 0)
                continue;
            const TileSpan &span = prep.ordered.tiles()[t];
            std::span<const Edge> tile_edges =
                prep.ordered.tileEdges(span);
            if (spec.mode != WeightMode::kOriginal) {
                rewritten_edges.assign(tile_edges.begin(),
                                       tile_edges.end());
                const double w =
                    spec.mode == WeightMode::kUnit ? 1.0 : 0.0;
                for (Edge &e : rewritten_edges)
                    e.weight = w;
                tile_edges = rewritten_edges;
            }
            // Integer distances/weights: 0 fractional bits is exact.
            // Parallel edges merge with min (relaxation semantics).
            ge.programTile(tile_edges, meta.row0, meta.col0, 0,
                           CombineMode::kMin);
            std::uint64_t m = mask;
            while (m != 0) {
                const int r = std::countr_zero(m);
                m &= m - 1;
                const std::vector<double> cand = ge.runAddOp(
                    static_cast<std::uint32_t>(r),
                    dist[meta.row0 + static_cast<std::uint64_t>(r)], 0);
                for (std::uint64_t c = 0; c < cand.size(); ++c) {
                    const std::uint64_t v = meta.col0 + c;
                    if (v < nv && cand[c] < kInfDistance)
                        next[v] = ge.salu().reduce(next[v], cand[c]);
                }
            }
        }

        active_count = 0;
        for (VertexId v = 0; v < nv; ++v) {
            active[v] = next[v] < dist[v];
            if (active[v])
                ++active_count;
        }
        dist = std::move(next);
    }
    *dist_out = std::move(dist);
    return report;
}

SimReport
GraphRNode::runBfs(const CooGraph &graph, VertexId source,
                   std::vector<Value> *dist_out)
{
    GRAPHR_ASSERT(source < graph.numVertices(), "source out of range");
    const Prepared prep = prepare(graph);
    AddOpSpec spec;
    spec.initLabels.assign(graph.numVertices(), kInfDistance);
    spec.initActive.assign(graph.numVertices(), false);
    spec.initLabels[source] = 0.0;
    spec.initActive[source] = true;
    spec.mode = WeightMode::kUnit;
    return runAddOpRounds(prep, graph, spec, "bfs", dist_out);
}

SimReport
GraphRNode::runSssp(const CooGraph &graph, VertexId source,
                    std::vector<Value> *dist_out)
{
    GRAPHR_ASSERT(source < graph.numVertices(), "source out of range");
    const Prepared prep = prepare(graph);
    AddOpSpec spec;
    spec.initLabels.assign(graph.numVertices(), kInfDistance);
    spec.initActive.assign(graph.numVertices(), false);
    spec.initLabels[source] = 0.0;
    spec.initActive[source] = true;
    spec.mode = WeightMode::kOriginal;
    return runAddOpRounds(prep, graph, spec, "sssp", dist_out);
}

SimReport
GraphRNode::runWcc(const CooGraph &graph,
                   std::vector<VertexId> *labels_out)
{
    // Min-label propagation needs both edge directions.
    const CooGraph sym = symmetrize(graph);
    const Prepared prep = prepare(sym);

    AddOpSpec spec;
    spec.initLabels.resize(sym.numVertices());
    for (VertexId v = 0; v < sym.numVertices(); ++v)
        spec.initLabels[v] = static_cast<Value>(v);
    spec.initActive.assign(sym.numVertices(), true);
    spec.mode = WeightMode::kZero;

    std::vector<Value> labels;
    SimReport report = runAddOpRounds(prep, sym, spec, "wcc",
                                      labels_out != nullptr ? &labels
                                                            : nullptr);
    if (labels_out != nullptr) {
        labels_out->resize(labels.size());
        for (std::size_t v = 0; v < labels.size(); ++v)
            (*labels_out)[v] = static_cast<VertexId>(labels[v]);
    }
    return report;
}

SimReport
GraphRNode::runCf(const CooGraph &ratings, const CfParams &params)
{
    GRAPHR_ASSERT(params.featureLength > 0, "feature length must be > 0");
    const Prepared prep = prepare(ratings);
    // One MVM pass per feature; the gradient updates reuse the pass
    // results through the sALU datapath.
    const auto passes =
        static_cast<std::uint32_t>(params.featureLength);
    return runMacSweeps(prep, static_cast<std::uint64_t>(params.epochs),
                        passes, "cf");
}

} // namespace graphr
