#include "node.hh"

#include <cmath>
#include <utility>

#include "algorithms/spmv.hh"
#include "algorithms/traversal.hh"
#include "algorithms/wcc.hh"
#include "common/logging.hh"
#include "graphr/engine/plan_cache.hh"

namespace graphr
{

namespace
{

/** Validate before any member uses the configuration. */
GraphRConfig
validated(GraphRConfig config)
{
    config.validate();
    return config;
}

} // namespace

GraphRNode::GraphRNode(GraphRConfig config)
    : config_(validated(std::move(config)))
{
}

TileExecutor
GraphRNode::makeExecutor(const CooGraph &graph)
{
    bool hit = false;
    TilePlanPtr plan =
        PlanCache::instance().get(graph, config_.tiling, &hit);
    TileExecutor exec(config_, std::move(plan));
    exec.stats().planCacheHit = hit;
    return exec;
}

SimReport
GraphRNode::runPageRank(const CooGraph &graph,
                        const PageRankParams &params,
                        std::vector<Value> *ranks_out)
{
    GRAPHR_ASSERT(graph.numVertices() > 0, "empty graph");
    TileExecutor exec = makeExecutor(graph);

    MacSpec spec;
    spec.name = "pagerank";

    std::uint64_t iterations = 0;
    std::vector<Value> ranks;
    // Function scope: referenced by spec.edgeScale below.
    std::vector<EdgeId> out_deg;

    if (config_.functional) {
        // Execute through the modelled analog datapath. The
        // programmed weight of an edge is its PageRank contribution
        // factor — constant across iterations, so resident tiles
        // (ProgramCharging::kOnce) are programmed once per run.
        const VertexId nv = graph.numVertices();
        out_deg = graph.outDegrees();
        spec.edgeScale = [damping = params.damping,
                          &out_deg](const Edge &e) {
            return damping / static_cast<double>(out_deg[e.src]);
        };

        ranks.assign(nv, 1.0 / static_cast<double>(nv));
        for (int iter = 0; iter < params.maxIterations; ++iter) {
            double dangling = 0.0;
            for (VertexId v = 0; v < nv; ++v) {
                if (out_deg[v] == 0)
                    dangling += ranks[v];
            }
            const double base =
                (1.0 - params.damping) / static_cast<double>(nv) +
                params.damping * dangling / static_cast<double>(nv);
            std::vector<Value> next(nv, base);
            exec.functionalMacSweep(spec, ranks, next);

            double delta = 0.0;
            for (VertexId v = 0; v < nv; ++v)
                delta += std::abs(next[v] - ranks[v]);
            ranks = std::move(next);
            ++iterations;
            if (params.tolerance > 0.0 && delta < params.tolerance)
                break;
        }
    } else {
        const PageRankResult golden = pagerank(graph, params);
        iterations = static_cast<std::uint64_t>(golden.iterations);
        ranks = golden.ranks;
    }

    spec.sweeps = iterations;
    SimReport report = exec.macReport(spec);
    lastStats_ = exec.stats();
    if (ranks_out != nullptr)
        *ranks_out = std::move(ranks);
    return report;
}

SimReport
GraphRNode::runSpmv(const CooGraph &graph, const std::vector<Value> &x,
                    std::vector<Value> *y_out)
{
    GRAPHR_ASSERT(x.size() == graph.numVertices(),
                  "input vector length mismatch");
    TileExecutor exec = makeExecutor(graph);

    MacSpec spec;
    spec.name = "spmv";
    spec.sweeps = 1;
    spec.applyVariation = false; // SpMV is the exact validation path

    std::vector<Value> y;
    if (config_.functional) {
        spec.edgeScale = [out_deg = graph.outDegrees()](const Edge &e) {
            return e.weight / static_cast<double>(out_deg[e.src]);
        };
        y.assign(graph.numVertices(), 0.0);
        exec.functionalMacSweep(spec, x, y);
    } else {
        y = spmv(graph, x);
    }

    SimReport report = exec.macReport(spec);
    lastStats_ = exec.stats();
    if (y_out != nullptr)
        *y_out = std::move(y);
    return report;
}

SimReport
GraphRNode::runBfs(const CooGraph &graph, VertexId source,
                   std::vector<Value> *dist_out)
{
    GRAPHR_ASSERT(source < graph.numVertices(), "source out of range");
    TileExecutor exec = makeExecutor(graph);
    AddOpSpec spec;
    spec.initLabels.assign(graph.numVertices(), kInfDistance);
    spec.initActive.assign(graph.numVertices(), false);
    spec.initLabels[source] = 0.0;
    spec.initActive[source] = true;
    spec.mode = WeightMode::kUnit;
    SimReport report = exec.addOpRun(graph, spec, "bfs", dist_out);
    lastStats_ = exec.stats();
    return report;
}

SimReport
GraphRNode::runSssp(const CooGraph &graph, VertexId source,
                    std::vector<Value> *dist_out)
{
    GRAPHR_ASSERT(source < graph.numVertices(), "source out of range");
    TileExecutor exec = makeExecutor(graph);
    AddOpSpec spec;
    spec.initLabels.assign(graph.numVertices(), kInfDistance);
    spec.initActive.assign(graph.numVertices(), false);
    spec.initLabels[source] = 0.0;
    spec.initActive[source] = true;
    spec.mode = WeightMode::kOriginal;
    SimReport report = exec.addOpRun(graph, spec, "sssp", dist_out);
    lastStats_ = exec.stats();
    return report;
}

SimReport
GraphRNode::runWcc(const CooGraph &graph,
                   std::vector<VertexId> *labels_out)
{
    // Min-label propagation needs both edge directions.
    const CooGraph sym = symmetrize(graph);
    TileExecutor exec = makeExecutor(sym);

    AddOpSpec spec;
    spec.initLabels.resize(sym.numVertices());
    for (VertexId v = 0; v < sym.numVertices(); ++v)
        spec.initLabels[v] = static_cast<Value>(v);
    spec.initActive.assign(sym.numVertices(), true);
    spec.mode = WeightMode::kZero;

    std::vector<Value> labels;
    SimReport report =
        exec.addOpRun(sym, spec, "wcc",
                      labels_out != nullptr ? &labels : nullptr);
    lastStats_ = exec.stats();
    if (labels_out != nullptr) {
        labels_out->resize(labels.size());
        for (std::size_t v = 0; v < labels.size(); ++v)
            (*labels_out)[v] = static_cast<VertexId>(labels[v]);
    }
    return report;
}

SimReport
GraphRNode::runCf(const CooGraph &ratings, const CfParams &params)
{
    GRAPHR_ASSERT(params.featureLength > 0, "feature length must be > 0");
    TileExecutor exec = makeExecutor(ratings);
    // One MVM pass per feature; the gradient updates reuse the pass
    // results through the sALU datapath.
    MacSpec spec;
    spec.name = "cf";
    spec.sweeps = static_cast<std::uint64_t>(params.epochs);
    spec.passesPerTile = static_cast<std::uint32_t>(params.featureLength);
    SimReport report = exec.macReport(spec);
    lastStats_ = exec.stats();
    return report;
}

} // namespace graphr
