#include "cost_model.hh"

namespace graphr
{

CostModel::CostModel(const GraphRConfig &config) : config_(config)
{
    totalAdcs_ = static_cast<double>(config_.device.adcsPerGe) *
                 config_.tiling.numGe;
    totalCrossbars_ = static_cast<double>(config_.tiling.crossbarsPerGe) *
                      config_.tiling.numGe;
}

double
CostModel::programOverlapDepth(std::uint32_t crossbars_used) const
{
    if (crossbars_used == 0)
        return 1.0;
    return std::max(1.0, totalCrossbars_ /
                             static_cast<double>(crossbars_used));
}

double
CostModel::adcTimeNs(std::uint64_t samples) const
{
    // adcSampleRateGsps is samples per nanosecond per ADC.
    return static_cast<double>(samples) /
           (totalAdcs_ * config_.device.adcSampleRateGsps);
}

TileCost
CostModel::macTile(const TileMeta &meta, EnergyEvents &events,
                   std::uint32_t passes) const
{
    const DeviceParams &dev = config_.device;
    const std::uint32_t dim = config_.tiling.crossbarDim;

    TileCost cost;
    cost.programNs = meta.maxRowsProgrammed * dev.writeLatencyNs;

    // One array read per input slice per occupied crossbar (all
    // crossbars evaluate in parallel, so latency is per-slice).
    const std::uint64_t read_ops =
        static_cast<std::uint64_t>(meta.crossbarsUsed) * dev.inputSlices *
        passes;
    // One conversion per occupied logical bitline per input slice
    // (paper section 3.2: a 64 ns GE cycle with a shared 1 GSps ADC
    // covers a subgraph evaluation; shift-and-add recombines weight
    // slices after conversion).
    const std::uint64_t samples =
        static_cast<std::uint64_t>(meta.crossbarsUsed) * dim *
        dev.inputSlices * passes;
    // Throughput model: a tile occupies only `crossbarsUsed` of the
    // N*G crossbars for its GE cycle, so sparse tiles evaluate
    // concurrently in disjoint crossbar banks (paper Fig. 11: each
    // GE scans its own subgraphs). The node-level per-tile cost is
    // the largest of the crossbar-occupancy, ADC and sALU terms.
    // The per-GE sALUs keep pace with their crossbars, so the sALU
    // latency is folded into the GE cycle.
    const double crossbar_ns =
        static_cast<double>(passes) * dev.geCycleNs *
        static_cast<double>(meta.crossbarsUsed) / totalCrossbars_;
    // Controller dispatch is a fixed serial cost per tile; it is what
    // makes very sparse graphs (many near-empty tiles per non-zero)
    // lose part of the advantage (paper Fig. 21).
    cost.computeNs =
        std::max(crossbar_ns, adcTimeNs(samples)) + dev.tileDispatchNs;

    cost.streamNs = static_cast<double>(meta.nnz * config_.bytesPerEdge) /
                    dev.memBandwidthGBs; // GB/s == bytes per ns
    cost.overlappedProgramNs =
        cost.programNs / programOverlapDepth(meta.crossbarsUsed);

    events.arrayWrites += static_cast<std::uint64_t>(meta.crossbarsUsed) *
                          meta.maxRowsProgrammed;
    events.arrayReads += read_ops;
    events.adcSamples += samples;
    events.sampleHolds += samples;
    events.shiftAdds += static_cast<std::uint64_t>(meta.nnzColumns) *
                        passes;
    events.saluOps += static_cast<std::uint64_t>(meta.nnzColumns) * passes;
    // RegI: C input reads; RegO: one read-modify-write per updated col.
    events.regAccesses +=
        (dim + 2ull * meta.nnzColumns) * passes;
    events.memBytes += meta.nnz * config_.bytesPerEdge;
    return cost;
}

TileCost
CostModel::addOpTile(const TileMeta &meta, std::uint32_t active_rows,
                     EnergyEvents &events) const
{
    const DeviceParams &dev = config_.device;
    const std::uint32_t dim = config_.tiling.crossbarDim;

    TileCost cost;
    cost.programNs = meta.maxRowsProgrammed * dev.writeLatencyNs;

    // Each active row is one serial step: a one-hot array read plus
    // conversions of the row's logical bitlines and a comparator
    // pass. Successive row activations are wordline-pipelined.
    const std::uint64_t samples_per_row =
        static_cast<std::uint64_t>(meta.crossbarsUsed) * dim;
    const double row_ns =
        dev.readLatencyNs / dev.addOpRowPipelineDepth +
        adcTimeNs(samples_per_row) + dev.saluLatencyNs;
    cost.computeNs = active_rows * row_ns + dev.tileDispatchNs;

    cost.streamNs = static_cast<double>(meta.nnz * config_.bytesPerEdge) /
                    dev.memBandwidthGBs;
    cost.overlappedProgramNs =
        cost.programNs / programOverlapDepth(meta.crossbarsUsed);

    events.arrayWrites += static_cast<std::uint64_t>(meta.crossbarsUsed) *
                          meta.maxRowsProgrammed;
    events.arrayReads += static_cast<std::uint64_t>(meta.crossbarsUsed) *
                         active_rows;
    events.adcSamples += samples_per_row * active_rows;
    events.sampleHolds += samples_per_row * active_rows;
    events.shiftAdds += samples_per_row * active_rows;
    // Comparator (min) per destination column per active row.
    events.saluOps += static_cast<std::uint64_t>(active_rows) * dim *
                      meta.crossbarsUsed;
    events.regAccesses += active_rows +
                          2ull * active_rows * dim * meta.crossbarsUsed;
    events.memBytes += meta.nnz * config_.bytesPerEdge;
    return cost;
}

} // namespace graphr
