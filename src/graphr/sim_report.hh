/**
 * @file
 * Result record of one simulated GraphR execution.
 */

#ifndef GRAPHR_GRAPHR_SIM_REPORT_HH
#define GRAPHR_GRAPHR_SIM_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "rram/energy.hh"

namespace graphr
{

class JsonWriter;

/** Timing and energy outcome of a GraphR run. */
struct SimReport
{
    std::string algorithm;

    /** Simulated wall-clock time in seconds. */
    double seconds = 0.0;
    /** Total energy in joules. */
    double joules = 0.0;
    /** Component energy breakdown. */
    EnergyBreakdown energy;
    /** Raw device event counts. */
    EnergyEvents events;

    // --- workload statistics ---
    std::uint64_t iterations = 0;     ///< algorithm iterations/rounds
    std::uint64_t tilesProcessed = 0; ///< tile (subgraph) activations
    std::uint64_t tilesSkipped = 0;   ///< empty tiles skipped
    std::uint64_t edgesProcessed = 0; ///< edge visits across iterations
    std::uint64_t activeRowOps = 0;   ///< add-op row activations
    double occupancy = 0.0;           ///< nnz / (tiles * capacity)

    // --- time breakdown (seconds) ---
    double programSeconds = 0.0; ///< crossbar write phases
    double computeSeconds = 0.0; ///< MVM + ADC + sALU phases
    double streamSeconds = 0.0;  ///< memory-ReRAM edge streaming

    /** Human-readable dump. */
    void print(std::ostream &os) const;

    /** Emit the report as one JSON object on the writer. */
    void toJson(JsonWriter &w) const;
};

} // namespace graphr

#endif // GRAPHR_GRAPHR_SIM_REPORT_HH
