#include "sim_report.hh"

#include <iomanip>

namespace graphr
{

void
SimReport::print(std::ostream &os) const
{
    os << "SimReport[" << algorithm << "]\n";
    os << std::scientific << std::setprecision(3);
    os << "  time          " << seconds << " s"
       << "  (program " << programSeconds << ", compute "
       << computeSeconds << ", stream " << streamSeconds << ")\n";
    os << "  energy        " << joules << " J"
       << "  (write " << energy.write << ", read " << energy.read
       << ", adc " << energy.adc << ", salu " << energy.salu << ", reg "
       << energy.reg << ", mem " << energy.memory << ", periph "
       << energy.peripheral << ")\n";
    os << std::defaultfloat;
    os << "  iterations    " << iterations << "\n";
    os << "  tiles         " << tilesProcessed << " processed, "
       << tilesSkipped << " skipped\n";
    os << "  edges         " << edgesProcessed << " visits\n";
    os << "  occupancy     " << occupancy << "\n";
}

} // namespace graphr
