#include "sim_report.hh"

#include <iomanip>

#include "common/json.hh"

namespace graphr
{

void
SimReport::print(std::ostream &os) const
{
    os << "SimReport[" << algorithm << "]\n";
    os << std::scientific << std::setprecision(3);
    os << "  time          " << seconds << " s"
       << "  (program " << programSeconds << ", compute "
       << computeSeconds << ", stream " << streamSeconds << ")\n";
    os << "  energy        " << joules << " J"
       << "  (write " << energy.write << ", read " << energy.read
       << ", adc " << energy.adc << ", salu " << energy.salu << ", reg "
       << energy.reg << ", mem " << energy.memory << ", periph "
       << energy.peripheral << ")\n";
    os << std::defaultfloat;
    os << "  iterations    " << iterations << "\n";
    os << "  tiles         " << tilesProcessed << " processed, "
       << tilesSkipped << " skipped\n";
    os << "  edges         " << edgesProcessed << " visits\n";
    os << "  occupancy     " << occupancy << "\n";
}

void
SimReport::toJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("algorithm", algorithm);
    w.field("seconds", seconds);
    w.field("joules", joules);
    w.key("time_breakdown");
    w.beginObject();
    w.field("program_seconds", programSeconds);
    w.field("compute_seconds", computeSeconds);
    w.field("stream_seconds", streamSeconds);
    w.endObject();
    w.key("energy_breakdown");
    w.beginObject();
    w.field("write", energy.write);
    w.field("read", energy.read);
    w.field("adc", energy.adc);
    w.field("sample_hold", energy.sampleHold);
    w.field("shift_add", energy.shiftAdd);
    w.field("salu", energy.salu);
    w.field("reg", energy.reg);
    w.field("memory", energy.memory);
    w.field("peripheral", energy.peripheral);
    w.endObject();
    w.field("iterations", iterations);
    w.field("tiles_processed", tilesProcessed);
    w.field("tiles_skipped", tilesSkipped);
    w.field("edges_processed", edgesProcessed);
    w.field("active_row_ops", activeRowOps);
    w.field("occupancy", occupancy);
    w.endObject();
}

} // namespace graphr
