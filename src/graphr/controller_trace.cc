#include "controller_trace.hh"

#include <sstream>

#include "common/logging.hh"

namespace graphr
{

std::string
ControllerOp::toString() const
{
    std::ostringstream oss;
    switch (kind) {
      case Kind::kLoadBlock:
        oss << "LOAD_BLOCK   block=" << tileIndex;
        break;
      case Kind::kLoadSubgraph:
        oss << "LOAD_SUBGRAPH tile=" << tileIndex << " edges="
            << payload;
        break;
      case Kind::kProcess:
        oss << "PROCESS      tile=" << tileIndex;
        break;
      case Kind::kReduce:
        oss << "REDUCE       tile=" << tileIndex << " values="
            << payload;
        break;
      case Kind::kApply:
        oss << "APPLY        iter=" << iteration;
        break;
      case Kind::kCheckConv:
        oss << "CHECK_CONV   iter=" << iteration;
        break;
    }
    oss << " it=" << iteration;
    return oss.str();
}

ControllerTrace::ControllerTrace(const OrderedEdgeList &ordered,
                                 std::uint64_t iterations)
{
    const GridPartition &part = ordered.partition();
    for (std::uint64_t it = 0; it < iterations; ++it) {
        std::uint64_t current_block = ~std::uint64_t{0};
        for (const TileSpan &span : ordered.tiles()) {
            const std::uint64_t block =
                span.tileIndex / part.tilesPerBlock();
            if (block != current_block) {
                ops_.push_back({ControllerOp::Kind::kLoadBlock, block,
                                it, 0});
                current_block = block;
            }
            ops_.push_back({ControllerOp::Kind::kLoadSubgraph,
                            span.tileIndex, it, span.numEdges});
            ops_.push_back(
                {ControllerOp::Kind::kProcess, span.tileIndex, it, 0});
            ops_.push_back({ControllerOp::Kind::kReduce, span.tileIndex,
                            it, span.numEdges});
        }
        ops_.push_back({ControllerOp::Kind::kApply, 0, it, 0});
        ops_.push_back({ControllerOp::Kind::kCheckConv, 0, it, 0});
    }
}

std::uint64_t
ControllerTrace::count(ControllerOp::Kind kind) const
{
    std::uint64_t n = 0;
    for (const ControllerOp &op : ops_)
        n += op.kind == kind ? 1 : 0;
    return n;
}

void
ControllerTrace::print(std::ostream &os) const
{
    for (const ControllerOp &op : ops_)
        os << op.toString() << "\n";
}

bool
ControllerTrace::wellFormed() const
{
    bool block_loaded = false;
    std::uint64_t expect_process_for = ~std::uint64_t{0};
    std::uint64_t expect_reduce_for = ~std::uint64_t{0};
    std::uint64_t last_iter = 0;
    bool conv_seen_for_iter = false;

    for (const ControllerOp &op : ops_) {
        if (op.iteration != last_iter) {
            if (!conv_seen_for_iter)
                return false; // iteration ended without CHECK_CONV
            last_iter = op.iteration;
            conv_seen_for_iter = false;
            block_loaded = false;
        }
        switch (op.kind) {
          case ControllerOp::Kind::kLoadBlock:
            block_loaded = true;
            break;
          case ControllerOp::Kind::kLoadSubgraph:
            if (!block_loaded)
                return false;
            if (expect_process_for != ~std::uint64_t{0})
                return false; // previous tile not processed
            expect_process_for = op.tileIndex;
            break;
          case ControllerOp::Kind::kProcess:
            if (op.tileIndex != expect_process_for)
                return false;
            expect_process_for = ~std::uint64_t{0};
            expect_reduce_for = op.tileIndex;
            break;
          case ControllerOp::Kind::kReduce:
            if (op.tileIndex != expect_reduce_for)
                return false;
            expect_reduce_for = ~std::uint64_t{0};
            break;
          case ControllerOp::Kind::kApply:
            break;
          case ControllerOp::Kind::kCheckConv:
            conv_seen_for_iter = true;
            break;
        }
    }
    return conv_seen_for_iter || ops_.empty();
}

} // namespace graphr
