#include "multi_node.hh"

#include <algorithm>

#include "algorithms/traversal.hh"
#include "algorithms/wcc.hh"
#include "common/logging.hh"

namespace graphr
{

MultiNodeGraphR::MultiNodeGraphR(const GraphRConfig &config,
                                 std::uint32_t num_nodes,
                                 const LinkParams &link)
    : config_(config), numNodes_(num_nodes), link_(link)
{
    config_.validate();
    GRAPHR_ASSERT(numNodes_ > 0, "need at least one node");
}

std::vector<Edge>
MultiNodeGraphR::stripeEdges(const CooGraph &graph,
                             std::uint32_t node) const
{
    const std::uint64_t stripe =
        (graph.numVertices() + numNodes_ - 1) / numNodes_;
    const std::uint64_t lo = static_cast<std::uint64_t>(node) * stripe;
    const std::uint64_t hi = lo + stripe;
    std::vector<Edge> edges;
    for (const Edge &e : graph.edges()) {
        if (e.dst >= lo && e.dst < hi)
            edges.push_back(e);
    }
    return edges;
}

MultiNodeReport
MultiNodeGraphR::runSweeps(const CooGraph &graph,
                           std::uint64_t iterations,
                           const SweepFn &sweep_fn,
                           double props_per_vertex)
{
    MultiNodeReport report;
    report.numNodes = numNodes_;
    report.iterations = iterations;

    // Per-node sweep cost: one sweep over the node's destination
    // stripe, costed by the workload's own node-level schedule.
    double max_sweep_s = 0.0;
    double sweep_joules = 0.0;
    for (std::uint32_t k = 0; k < numNodes_; ++k) {
        std::vector<Edge> edges = stripeEdges(graph, k);
        if (edges.empty()) {
            report.nodeSweepSeconds.push_back(0.0);
            continue;
        }
        const CooGraph sub(graph.numVertices(), std::move(edges));
        GraphRNode node(config_);
        const SimReport sweep = sweep_fn(node, sub);
        report.nodeSweepSeconds.push_back(sweep.seconds);
        max_sweep_s = std::max(max_sweep_s, sweep.seconds);
        sweep_joules += sweep.joules;
    }

    // All-gather: each node broadcasts its stripe's updated
    // properties to the other nodes every iteration.
    const double stripe_props =
        static_cast<double>(graph.numVertices()) / numNodes_ *
        props_per_vertex;
    const double bytes_sent_per_node =
        stripe_props * link_.bytesPerProperty * (numNodes_ - 1);
    const double comm_per_iter =
        numNodes_ > 1 ? bytes_sent_per_node /
                                (link_.bandwidthGBs * 1e9) +
                            link_.latencyUs * 1e-6
                      : 0.0;
    const double total_comm_bytes =
        bytes_sent_per_node * numNodes_ * static_cast<double>(iterations);

    const double iters = static_cast<double>(iterations);
    report.commSeconds = comm_per_iter * iters;
    report.commJoules =
        total_comm_bytes * link_.energyPjPerByte * 1e-12;
    report.seconds = (max_sweep_s + comm_per_iter) * iters;
    report.joules = sweep_joules * iters + report.commJoules;
    return report;
}

namespace
{

/** One SpMV-shaped sweep: the per-iteration tile schedule shared by
 *  PageRank and the add-op rounds' conservative bound. */
SimReport
spmvSweep(GraphRNode &node, const CooGraph &sub)
{
    const std::vector<Value> x(sub.numVertices(), 1.0);
    return node.runSpmv(sub, x);
}

} // namespace

MultiNodeReport
MultiNodeGraphR::runPageRank(const CooGraph &graph,
                             const PageRankParams &params)
{
    // Iteration count from the golden run (identical convergence on
    // every partitioning).
    const PageRankResult golden = pagerank(graph, params);
    return runSweeps(graph,
                     static_cast<std::uint64_t>(golden.iterations),
                     spmvSweep, /*props_per_vertex=*/1.0);
}

MultiNodeReport
MultiNodeGraphR::runSpmv(const CooGraph &graph)
{
    return runSweeps(graph, /*iterations=*/1, spmvSweep,
                     /*props_per_vertex=*/1.0);
}

MultiNodeReport
MultiNodeGraphR::runBfs(const CooGraph &graph, VertexId source)
{
    const TraversalResult golden = bfs(graph, source);
    return runSweeps(graph,
                     static_cast<std::uint64_t>(golden.iterations),
                     spmvSweep, /*props_per_vertex=*/1.0);
}

MultiNodeReport
MultiNodeGraphR::runSssp(const CooGraph &graph, VertexId source)
{
    const TraversalResult golden = sssp(graph, source);
    return runSweeps(graph,
                     static_cast<std::uint64_t>(golden.iterations),
                     spmvSweep, /*props_per_vertex=*/1.0);
}

MultiNodeReport
MultiNodeGraphR::runWcc(const CooGraph &graph)
{
    // Labels propagate over the symmetrised edge set; each node owns
    // the symmetrised edges of its destination stripe.
    const CooGraph sym = symmetrize(graph);
    const WccResult golden = wcc(graph);
    return runSweeps(sym, static_cast<std::uint64_t>(golden.iterations),
                     spmvSweep, /*props_per_vertex=*/1.0);
}

MultiNodeReport
MultiNodeGraphR::runCf(const CooGraph &ratings, const CfParams &params)
{
    // Per epoch each stripe runs the node's own CF tile schedule
    // (one MVM pass per feature, compute-phase scaling only); the
    // all-gather moves whole factor rows.
    CfParams epoch = params;
    epoch.epochs = 1;
    return runSweeps(
        ratings, static_cast<std::uint64_t>(params.epochs),
        [&epoch](GraphRNode &node, const CooGraph &sub) {
            return node.runCf(sub, epoch);
        },
        static_cast<double>(params.featureLength));
}

} // namespace graphr
