/**
 * @file
 * Precomputed per-tile activity metadata.
 *
 * The cost model needs, per non-empty tile: how many crossbars hold
 * non-zeros, the serial row-write depth, and which source rows carry
 * edges (to intersect with active sets for BFS/SSSP). Computing this
 * once after preprocessing keeps the per-iteration simulation loop a
 * cheap table walk, which matters when iterating large graphs.
 */

#ifndef GRAPHR_GRAPHR_TILE_META_HH
#define GRAPHR_GRAPHR_TILE_META_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/preprocess.hh"

namespace graphr
{

/** Static activity facts about one non-empty tile. */
struct TileMeta
{
    std::uint64_t tileIndex = 0;
    std::uint64_t row0 = 0; ///< first source vertex covered
    std::uint64_t col0 = 0; ///< first destination vertex covered
    std::uint64_t nnz = 0;
    std::uint32_t crossbarsUsed = 0;
    std::uint32_t maxRowsProgrammed = 0; ///< deepest crossbar write queue
    std::uint64_t rowMask = 0; ///< bit r set if tile row r has edges
    std::uint64_t nnzColumns = 0; ///< distinct destination columns
    /** Per-row nonzero count (indexed by tile-relative row). */
    std::vector<std::uint32_t> rowNnz;
};

/** Table of metadata for every non-empty tile, in streaming order. */
class TileMetaTable
{
  public:
    explicit TileMetaTable(const OrderedEdgeList &ordered);

    /**
     * Adopt precomputed metadata (the plan store's deserialisation
     * path; the store validates checksums before calling this).
     */
    TileMetaTable(std::vector<TileMeta> tiles, std::uint64_t total_nnz)
        : tiles_(std::move(tiles)), totalNnz_(total_nnz)
    {
    }

    const std::vector<TileMeta> &tiles() const { return tiles_; }

    std::uint64_t
    totalNnz() const
    {
        return totalNnz_;
    }

  private:
    std::vector<TileMeta> tiles_;
    std::uint64_t totalNnz_ = 0;
};

} // namespace graphr

#endif // GRAPHR_GRAPHR_TILE_META_HH
