#include "out_of_core.hh"

#include <algorithm>

#include "algorithms/traversal.hh"
#include "algorithms/wcc.hh"
#include "common/logging.hh"
#include "graphr/engine/plan_cache.hh"

namespace graphr
{

OutOfCoreRunner::OutOfCoreRunner(const GraphRConfig &config,
                                 const StorageParams &storage)
    : config_(config), storage_(storage)
{
    config_.validate();
    GRAPHR_ASSERT(storage_.seqBandwidthGBs > 0.0,
                  "storage bandwidth must be positive");
}

double
OutOfCoreRunner::streamSeconds(std::uint64_t bytes,
                               std::uint64_t block_switches) const
{
    return static_cast<double>(bytes) /
               (storage_.seqBandwidthGBs * 1e9) +
           static_cast<double>(block_switches) *
               storage_.accessLatencyUs * 1e-6;
}

OutOfCoreReport
OutOfCoreRunner::sequentialSweeps(const CooGraph &graph,
                                  SimReport node_report) const
{
    OutOfCoreReport report;
    report.node = std::move(node_report);

    // Only the block arithmetic is needed here — GridPartition is
    // pure index math, cheaper than even a plan-cache lookup.
    const GridPartition part(graph.numVertices(), config_.tiling);
    report.numBlocks = part.numBlocks();

    // Every iteration streams the whole ordered edge list once.
    const std::uint64_t iterations =
        std::max<std::uint64_t>(report.node.iterations, 1);
    const std::uint64_t bytes_per_iter =
        graph.numEdges() * config_.bytesPerEdge;
    report.bytesStreamed = bytes_per_iter * iterations;
    const double disk_per_iter =
        streamSeconds(bytes_per_iter, part.numBlocks());
    report.diskSeconds =
        disk_per_iter * static_cast<double>(iterations);

    // The sequential order lets the framework prefetch block i+1
    // while the node processes block i: per-iteration cost is the
    // max of the two streams.
    const double node_per_iter =
        report.node.seconds / static_cast<double>(iterations);
    report.totalSeconds = std::max(node_per_iter, disk_per_iter) *
                          static_cast<double>(iterations);

    report.diskJoules = static_cast<double>(report.bytesStreamed) *
                        storage_.energyPjPerByte * 1e-12;
    report.totalJoules = report.node.joules + report.diskJoules;
    return report;
}

OutOfCoreReport
OutOfCoreRunner::runPageRank(const CooGraph &graph,
                             const PageRankParams &params)
{
    GraphRNode node(config_);
    return sequentialSweeps(graph, node.runPageRank(graph, params));
}

OutOfCoreReport
OutOfCoreRunner::runSpmv(const CooGraph &graph,
                         const std::vector<Value> &x)
{
    GraphRNode node(config_);
    return sequentialSweeps(graph, node.runSpmv(graph, x));
}

OutOfCoreReport
OutOfCoreRunner::runCf(const CooGraph &ratings, const CfParams &params)
{
    GraphRNode node(config_);
    return sequentialSweeps(ratings, node.runCf(ratings, params));
}

OutOfCoreReport
OutOfCoreRunner::selectiveRounds(const CooGraph &graph,
                                 SimReport node_report,
                                 RelaxationSweep &sweep) const
{
    OutOfCoreReport report;
    report.node = std::move(node_report);

    const TilePlanPtr plan =
        PlanCache::instance().get(graph, config_.tiling);
    const GridPartition &part = plan->partition;
    report.numBlocks = part.numBlocks();
    const std::uint64_t block = part.blockSize();

    // Edge bytes per source block-row (selective scheduling unit),
    // off the plan's tile table: a tile's rows never straddle a
    // block boundary, so its whole nnz belongs to one block-row.
    std::vector<std::uint64_t> row_bytes(part.blocksPerDim(), 0);
    for (const TileMeta &meta : plan->meta.tiles())
        row_bytes[meta.row0 / block] += meta.nnz * config_.bytesPerEdge;

    // Replay the rounds; a block-row is streamed when any of its
    // sources is active.
    while (!sweep.done()) {
        const std::vector<bool> &active = sweep.active();
        for (std::uint64_t row = 0; row < part.blocksPerDim(); ++row) {
            const std::uint64_t lo = row * block;
            const std::uint64_t hi = std::min<std::uint64_t>(
                lo + block, graph.numVertices());
            bool any = false;
            for (std::uint64_t v = lo; v < hi && !any; ++v)
                any = active[v];
            if (!any)
                continue;
            report.bytesStreamed += row_bytes[row];
            report.diskSeconds += streamSeconds(
                row_bytes[row], part.blocksPerDim());
        }
        sweep.step();
    }

    report.totalSeconds = std::max(report.node.seconds,
                                   report.diskSeconds);
    report.diskJoules = static_cast<double>(report.bytesStreamed) *
                        storage_.energyPjPerByte * 1e-12;
    report.totalJoules = report.node.joules + report.diskJoules;
    return report;
}

OutOfCoreReport
OutOfCoreRunner::runBfs(const CooGraph &graph, VertexId source)
{
    GraphRNode node(config_);
    SimReport sim = node.runBfs(graph, source);
    RelaxationSweep sweep(graph, source, /*unit_weights=*/true);
    return selectiveRounds(graph, std::move(sim), sweep);
}

OutOfCoreReport
OutOfCoreRunner::runSssp(const CooGraph &graph, VertexId source)
{
    GraphRNode node(config_);
    SimReport sim = node.runSssp(graph, source);
    RelaxationSweep sweep(graph, source, /*unit_weights=*/false);
    return selectiveRounds(graph, std::move(sim), sweep);
}

OutOfCoreReport
OutOfCoreRunner::runWcc(const CooGraph &graph)
{
    GraphRNode node(config_);
    SimReport sim = node.runWcc(graph);

    const CooGraph sym = symmetrize(graph);
    RelaxationSweep sweep = makeWccSweep(sym);
    return selectiveRounds(sym, std::move(sim), sweep);
}

} // namespace graphr
