/**
 * @file
 * Controller operation trace (paper Fig. 10).
 *
 * The GraphR controller is a simple sequencer: load the next
 * subgraph's edges into GEs, fire the processEdge evaluation, reduce
 * through the sALU, and periodically check convergence. This module
 * records that instruction stream for a (small) run so users can
 * inspect and unit-test the exact schedule the cost model charges —
 * the simulator-facing equivalent of the paper's controller
 * pseudo-code.
 */

#ifndef GRAPHR_GRAPHR_CONTROLLER_TRACE_HH
#define GRAPHR_GRAPHR_CONTROLLER_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "graph/preprocess.hh"
#include "graphr/config.hh"

namespace graphr
{

/** One controller operation (Fig. 10 line). */
struct ControllerOp
{
    enum class Kind
    {
        kLoadBlock,    ///< sequential disk -> memory ReRAM
        kLoadSubgraph, ///< memory ReRAM -> GE crossbars (program)
        kProcess,      ///< evaluate processEdge in the GE array
        kReduce,       ///< sALU reduce into RegO
        kApply,        ///< commit RegO to vertex properties
        kCheckConv,    ///< convergence check at iteration end
    };

    Kind kind;
    std::uint64_t tileIndex = 0; ///< subgraph id (load/process/reduce)
    std::uint64_t iteration = 0;
    std::uint64_t payload = 0; ///< edges loaded / values reduced

    std::string toString() const;
};

/**
 * Generates the controller instruction stream for a MAC-pattern run
 * over a preprocessed graph (one sweep per iteration, column-major
 * tile order, as the cost model charges it).
 */
class ControllerTrace
{
  public:
    /**
     * Build the trace for @p iterations sweeps of the ordered edge
     * list. Intended for small graphs (the trace is O(tiles *
     * iterations)).
     */
    ControllerTrace(const OrderedEdgeList &ordered,
                    std::uint64_t iterations);

    const std::vector<ControllerOp> &ops() const { return ops_; }

    /** Number of ops of one kind. */
    std::uint64_t count(ControllerOp::Kind kind) const;

    /** Dump one op per line. */
    void print(std::ostream &os) const;

    /**
     * Validate the stream against the Fig. 10 grammar: every
     * kLoadSubgraph is followed by kProcess then kReduce for the
     * same tile; each iteration ends with kCheckConv; blocks load
     * before their subgraphs. Returns true when well-formed.
     */
    bool wellFormed() const;

  private:
    std::vector<ControllerOp> ops_;
};

} // namespace graphr

#endif // GRAPHR_GRAPHR_CONTROLLER_TRACE_HH
