/**
 * @file
 * TilePlan: the immutable product of streaming-apply preprocessing.
 *
 * GraphR preprocesses a graph once (offline, in software — paper
 * section 3.4): grid-partition the adjacency matrix, sort the COO
 * edge list into streaming-apply tile order (O(E log E)) and extract
 * the per-tile activity metadata the cost model consumes. Every
 * execution layer — single node, multi-node stripes, out-of-core
 * blocks, driver sweeps — walks the same three products, so they are
 * bundled here as one shareable, immutable plan. PlanCache
 * (plan_cache.hh) memoises plans per (graph fingerprint, tiling) so
 * repeated runs stop redoing the sort.
 */

#ifndef GRAPHR_GRAPHR_ENGINE_TILE_PLAN_HH
#define GRAPHR_GRAPHR_ENGINE_TILE_PLAN_HH

#include <cstdint>
#include <memory>

#include "graph/coo.hh"
#include "graph/partition.hh"
#include "graph/preprocess.hh"
#include "graphr/tile_meta.hh"

namespace graphr
{

/**
 * Preprocessing products shared by all tile-walking runners. Built
 * once per (graph, tiling); treated as immutable afterwards so one
 * instance can be shared across runs and backends — concurrent
 * readers need no synchronisation, which is what lets PlanCache hand
 * one TilePlanPtr to every worker of a parallel sweep.
 */
struct TilePlan
{
    GridPartition partition;
    OrderedEdgeList ordered;
    TileMetaTable meta;
    /** Fingerprint of the graph the plan was built from. */
    std::uint64_t fingerprint = 0;

    TilePlan(const CooGraph &graph, const TilingParams &tiling);

    /**
     * Assemble a plan from already-prepared parts (no sort): the
     * deserialisation path of the on-disk plan store. The parts must
     * come from a prior prepare under the same tiling — the store
     * validates checksums and fingerprints before calling this.
     */
    TilePlan(VertexId num_vertices, const TilingParams &tiling,
             std::vector<Edge> edges, std::vector<TileSpan> tile_spans,
             std::vector<TileMeta> tile_meta, std::uint64_t total_nnz,
             std::uint64_t graph_fingerprint);

    /**
     * Assemble a plan by draining a tile-at-a-time chunk source (the
     * streaming decode path of compressed plan artifacts): edges and
     * tile spans come from the cursor without a sort, and the per-tile
     * metadata is recomputed deterministically from the ordered list —
     * the same code path a fresh prepare takes, so downstream results
     * are byte-identical.
     */
    TilePlan(VertexId num_vertices, const TilingParams &tiling,
             TileChunkSource &chunks, std::uint64_t graph_fingerprint);
};

/** Plans are shared (cache + concurrent runners): ref-counted const. */
using TilePlanPtr = std::shared_ptr<const TilePlan>;

/**
 * Order-sensitive 64-bit FNV-1a fingerprint of a graph (vertex count,
 * edge count, every edge's endpoints and weight bits). O(E), which is
 * the price of a cache lookup — cheap next to the O(E log E) sort it
 * avoids on a hit.
 */
std::uint64_t graphFingerprint(const CooGraph &graph);

} // namespace graphr

#endif // GRAPHR_GRAPHR_ENGINE_TILE_PLAN_HH
