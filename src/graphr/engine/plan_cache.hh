/**
 * @file
 * Process-wide memoisation of TilePlans.
 *
 * The paper's preprocessing is performed once per graph and reused
 * for every subsequent run; the simulator mirrors that by caching
 * plans keyed by (graph fingerprint, tiling parameters). A
 * `--backend all` sweep that runs six algorithms across the GraphR
 * family then prepares each (graph, tiling) exactly once instead of
 * once per run, and repeated bench iterations hit the cache instead
 * of re-paying the O(E log E) sort.
 */

#ifndef GRAPHR_GRAPHR_ENGINE_PLAN_CACHE_HH
#define GRAPHR_GRAPHR_ENGINE_PLAN_CACHE_HH

#include <cstddef>
#include <memory>
#include <mutex>

#include "common/lru_cache.hh"
#include "graphr/engine/tile_plan.hh"

namespace graphr
{

class PlanStore;

/** LRU cache of TilePlans keyed by (graph fingerprint, tiling). */
class PlanCache
{
  public:
    using Stats = LruCacheStats;

    explicit PlanCache(std::size_t capacity = kDefaultCapacity)
        : cache_(capacity)
    {
    }

    /** The shared process-wide instance every runner uses. */
    static PlanCache &instance();

    /**
     * Look up (or build and insert) the plan for a graph under the
     * given tiling. @p cache_hit, when non-null, reports whether the
     * plan was reused.
     *
     * Thread-safe: lookups take a shared lock and each key is built
     * at most once (concurrent requesters for the same key block on
     * that entry only; different keys build in parallel). With a
     * store attached, a memory miss first tries a validated store
     * load; any store failure (missing, corrupt, stale) silently
     * degrades to a fresh prepare, and a failed write-through never
     * fails the get — persistence is strictly best-effort here.
     */
    TilePlanPtr get(const CooGraph &graph, const TilingParams &tiling,
                    bool *cache_hit = nullptr);

    /**
     * Attach (or with nullptr detach) an on-disk second level. With a
     * store attached, a memory miss first tries a validated store
     * load (skipping the O(E log E) sort entirely) and a fresh
     * prepare is written through to the store, best-effort.
     *
     * Thread-safe (mutex-guarded), but swapping stores mid-flight
     * changes where concurrent misses persist — long-lived processes
     * (graphr_serve) attach one store at startup and keep it.
     */
    void setStore(std::shared_ptr<PlanStore> store);

    /** The attached store, if any. Thread-safe snapshot. */
    std::shared_ptr<PlanStore> store() const;

    /**
     * Request-scoped store override (tenant namespaces). While an
     * instance is alive on a thread, get() consults the overriding
     * store instead of the process-wide one AND keys memory entries
     * under that store's namespace, so two tenants running the same
     * graph never share a plan that one of them could have poisoned
     * via its own artifact directory. installPlanStore() becomes a
     * no-op on the thread — the request-scoped store wins over any
     * spec-carried directory.
     *
     * Strictly thread-local and non-reentrant (one override per
     * thread at a time); graphr_serve's worker tasks are the intended
     * scope. The override applies only to PlanCache::get calls made
     * on this thread — code that fans further work across its own
     * pool must snapshot effectiveStore() first.
     */
    class ScopedStoreOverride
    {
      public:
        explicit ScopedStoreOverride(std::shared_ptr<PlanStore> store);
        ~ScopedStoreOverride();

        ScopedStoreOverride(const ScopedStoreOverride &) = delete;
        ScopedStoreOverride &
        operator=(const ScopedStoreOverride &) = delete;
    };

    /** True while this thread runs under a ScopedStoreOverride. */
    static bool storeOverrideActive();

    /** The store get() would consult on this thread: the thread's
     *  override when active, the process-wide store otherwise. */
    std::shared_ptr<PlanStore> effectiveStore() const;

    /**
     * Drop every entry and reset the statistics (the store, if any,
     * stays attached). Plans are shared_ptrs, so entries still held
     * by running executors remain valid after eviction.
     */
    void clear() { cache_.clear(); }

    /** Cached plan count. */
    std::size_t size() const { return cache_.size(); }

    /** Change capacity (>= 1), evicting LRU entries if shrinking. */
    void setCapacity(std::size_t capacity)
    {
        cache_.setCapacity(capacity);
    }

    Stats stats() const { return cache_.stats(); }

    /**
     * Default entry count: enough for a full `--backend all` sweep on
     * one dataset (graph + symmetrised graph + the multinode stripes
     * and their symmetrised variants) without thrashing.
     */
    static constexpr std::size_t kDefaultCapacity = 32;

  private:
    struct Key
    {
        std::uint64_t fingerprint = 0;
        /** 0 for the process-wide store; a hash of the overriding
         *  store's directory under a ScopedStoreOverride, so tenant
         *  plans occupy disjoint memory entries. */
        std::uint64_t storeNamespace = 0;
        std::uint32_t crossbarDim = 0;
        std::uint32_t crossbarsPerGe = 0;
        std::uint32_t numGe = 0;
        std::uint32_t blockSize = 0;

        bool operator==(const Key &other) const = default;
    };

    struct KeyHash
    {
        std::size_t operator()(const Key &key) const;
    };

    LruCache<Key, TilePlan, KeyHash> cache_;

    /** Optional durable second level (store/plan_store.hh). */
    mutable std::mutex storeMutex_;
    std::shared_ptr<PlanStore> store_;
};

} // namespace graphr

#endif // GRAPHR_GRAPHR_ENGINE_PLAN_CACHE_HH
