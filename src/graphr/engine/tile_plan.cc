#include "tile_plan.hh"

#include <bit>

namespace graphr
{

TilePlan::TilePlan(const CooGraph &graph, const TilingParams &tiling)
    : partition(graph.numVertices(), tiling),
      ordered(graph, partition), meta(ordered),
      fingerprint(graphFingerprint(graph))
{
}

namespace
{

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/** Mix one 64-bit word into an FNV-1a state, byte by byte. */
inline std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t word)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (word >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
    return h;
}

} // namespace

std::uint64_t
graphFingerprint(const CooGraph &graph)
{
    std::uint64_t h = kFnvOffset;
    h = fnvMix(h, graph.numVertices());
    h = fnvMix(h, graph.numEdges());
    for (const Edge &e : graph.edges()) {
        h = fnvMix(h, (static_cast<std::uint64_t>(e.src) << 32) |
                          static_cast<std::uint64_t>(e.dst));
        h = fnvMix(h, std::bit_cast<std::uint64_t>(
                          static_cast<double>(e.weight)));
    }
    return h;
}

} // namespace graphr
