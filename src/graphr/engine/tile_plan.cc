#include "tile_plan.hh"

#include <bit>
#include <utility>

#include "common/checksum.hh"
#include "common/logging.hh"

namespace graphr
{

TilePlan::TilePlan(const CooGraph &graph, const TilingParams &tiling)
    : partition(graph.numVertices(), tiling),
      ordered(graph, partition), meta(ordered),
      fingerprint(graphFingerprint(graph))
{
}

TilePlan::TilePlan(VertexId num_vertices, const TilingParams &tiling,
                   std::vector<Edge> edges,
                   std::vector<TileSpan> tile_spans,
                   std::vector<TileMeta> tile_meta,
                   std::uint64_t total_nnz,
                   std::uint64_t graph_fingerprint)
    : partition(num_vertices, tiling),
      ordered(partition, std::move(edges), std::move(tile_spans)),
      meta(std::move(tile_meta), total_nnz),
      fingerprint(graph_fingerprint)
{
    GRAPHR_ASSERT(ordered.tiles().size() == meta.tiles().size(),
                  "tile directory and metadata table disagree");
}

TilePlan::TilePlan(VertexId num_vertices, const TilingParams &tiling,
                   TileChunkSource &chunks,
                   std::uint64_t graph_fingerprint)
    : partition(num_vertices, tiling), ordered(partition, chunks),
      meta(ordered), fingerprint(graph_fingerprint)
{
}

std::uint64_t
graphFingerprint(const CooGraph &graph)
{
    Fnv1a64 h;
    h.updateWord(graph.numVertices());
    h.updateWord(graph.numEdges());
    for (const Edge &e : graph.edges()) {
        h.updateWord((static_cast<std::uint64_t>(e.src) << 32) |
                     static_cast<std::uint64_t>(e.dst));
        h.updateWord(std::bit_cast<std::uint64_t>(
            static_cast<double>(e.weight)));
    }
    return h.digest();
}

} // namespace graphr
