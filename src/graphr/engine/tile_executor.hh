/**
 * @file
 * TileExecutor: the one tile-walk shared by every GraphR runner.
 *
 * Before this layer existed the simulator carried five hand-rolled
 * copies of the same loop over the non-empty tile table — the MAC
 * timing walk, the PageRank and SpMV functional walks, and the add-op
 * timing and functional walks. The executor owns that loop once and
 * drives both the cost-model accounting and the functional GE
 * datapath from small per-algorithm specs:
 *
 *  - MacSpec describes a parallel-MAC schedule (PageRank, SpMV, CF):
 *    sweep count, MVM passes per tile, and — for functional runs —
 *    how an edge's programmed weight derives from the edge.
 *  - AddOpSpec describes a parallel-add-op relaxation (BFS, SSSP,
 *    WCC): initial labels, initial active set, weight mode.
 *
 * Under ProgramCharging::kOnce the functional path programs each tile
 * exactly once per run and replays the resident crossbar state on
 * later visits (TileSnapshot), matching the modelled program-once
 * semantics instead of re-paying the programming work every
 * iteration.
 */

#ifndef GRAPHR_GRAPHR_ENGINE_TILE_EXECUTOR_HH
#define GRAPHR_GRAPHR_ENGINE_TILE_EXECUTOR_HH

#include <functional>
#include <memory>
#include <vector>

#include "algorithms/traversal.hh"
#include "graphr/config.hh"
#include "graphr/cost_model.hh"
#include "graphr/engine/tile_plan.hh"
#include "graphr/sim_report.hh"

namespace graphr
{

/** Per-algorithm parallel-MAC schedule description. */
struct MacSpec
{
    const char *name = "mac";
    /** Timing sweeps over the tile table (algorithm iterations). */
    std::uint64_t sweeps = 1;
    /** MVM evaluations per programmed tile per sweep (CF: features). */
    std::uint32_t passesPerTile = 1;
    /**
     * Functional only: programmed weight of one edge (e.g. PageRank
     * programs damping / outDegree(src)). Null keeps raw weights.
     */
    std::function<double(const Edge &)> edgeScale;
    /**
     * Apply the configured cell-programming variation to this
     * schedule's functional datapath. SpMV turns it off: it is the
     * exactness-validation workload; variation belongs to the
     * algorithm-level resilience experiments (PageRank, add-op).
     */
    bool applyVariation = true;
};

/** Initial state of an add-op (min-relaxation) execution. */
struct AddOpSpec
{
    std::vector<Value> initLabels;
    std::vector<bool> initActive;
    WeightMode mode = WeightMode::kOriginal;
};

/** Counters one executor keeps about its run (tests and benches). */
struct EngineStats
{
    /** Whether the plan came out of the PlanCache (set by callers). */
    bool planCacheHit = false;
    /** Functional programTile() calls (crossbar write phases). */
    std::uint64_t functionalTilePrograms = 0;
    /** Resident-snapshot replays that replaced a reprogram. */
    std::uint64_t functionalTileLoads = 0;
};

/**
 * Walks one TilePlan for one run. Construct per run (cheap — the
 * heavy state is the shared plan); the same instance serves the
 * timing report and any functional sweeps of that run so resident
 * weights persist across iterations.
 *
 * Preconditions: @p config has passed GraphRConfig::validate (the
 * backends validate at construction) and its tiling matches the one
 * the plan was prepared under; @p plan is non-null. Thread-safety:
 * an instance is single-run, single-thread mutable state — parallel
 * sweeps give every run its own executor and share only the
 * immutable plan behind the TilePlanPtr. Functional walks mutate the
 * GE datapath and the stats; the timing-only macReport() is const
 * and touches neither.
 */
class TileExecutor
{
  public:
    TileExecutor(const GraphRConfig &config, TilePlanPtr plan);
    ~TileExecutor();

    TileExecutor(TileExecutor &&) noexcept;
    TileExecutor &operator=(TileExecutor &&) noexcept;

    const TilePlan &plan() const { return *plan_; }
    TilePlanPtr planPtr() const { return plan_; }

    /**
     * Timing/energy report of a parallel-MAC schedule: one pass over
     * the tile table priced by the cost model, multiplied out per the
     * program-charging policy. (The former GraphRNode::runMacSweeps.)
     */
    SimReport macReport(const MacSpec &spec) const;

    /**
     * One functional MAC sweep over every tile of the plan:
     * program (or, resident, reload) each tile, apply the matching
     * rows of @p input, and sALU-reduce the partial column sums into
     * @p accum. Both vectors are indexed by absolute vertex id.
     */
    void functionalMacSweep(const MacSpec &spec,
                            const std::vector<Value> &input,
                            std::vector<Value> &accum);

    /**
     * Complete add-op run: the timing walk over the relaxation rounds
     * (active-masked tiles priced by the cost model) and — in
     * functional mode, when @p labels_out is non-null — the GE
     * datapath execution. (The former GraphRNode::runAddOpRounds.)
     */
    SimReport addOpRun(const CooGraph &graph, const AddOpSpec &spec,
                       const char *name,
                       std::vector<Value> *labels_out);

    EngineStats &stats() { return stats_; }
    const EngineStats &stats() const { return stats_; }

  private:
    struct MacDatapath; ///< functional GE state (lazily built)

    bool
    residentWeights() const
    {
        return config_.programCharging == ProgramCharging::kOnce;
    }

    /** Functional GE execution of the relaxation to convergence. */
    std::vector<Value> functionalAddOpSolve(const CooGraph &graph,
                                            const AddOpSpec &spec);

    GraphRConfig config_;
    CostModel costModel_;
    TilePlanPtr plan_;
    std::unique_ptr<MacDatapath> mac_;
    EngineStats stats_;
};

} // namespace graphr

#endif // GRAPHR_GRAPHR_ENGINE_TILE_EXECUTOR_HH
