#include "plan_cache.hh"

namespace graphr
{

PlanCache &
PlanCache::instance()
{
    static PlanCache cache;
    return cache;
}

std::size_t
PlanCache::KeyHash::operator()(const Key &key) const
{
    // The fingerprint is already well mixed; fold the tiling in.
    std::uint64_t h = key.fingerprint;
    h ^= (static_cast<std::uint64_t>(key.crossbarDim) << 0) ^
         (static_cast<std::uint64_t>(key.crossbarsPerGe) << 16) ^
         (static_cast<std::uint64_t>(key.numGe) << 32) ^
         (static_cast<std::uint64_t>(key.blockSize) << 48);
    h *= 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(h ^ (h >> 32));
}

TilePlanPtr
PlanCache::get(const CooGraph &graph, const TilingParams &tiling,
               bool *cache_hit)
{
    const Key key{graphFingerprint(graph), tiling.crossbarDim,
                  tiling.crossbarsPerGe, tiling.numGe, tiling.blockSize};
    return cache_.getOrBuild(
        key,
        [&graph, &tiling] {
            return std::make_shared<const TilePlan>(graph, tiling);
        },
        cache_hit);
}

} // namespace graphr
