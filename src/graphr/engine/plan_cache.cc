#include "plan_cache.hh"

#include <stdexcept>
#include <utility>

#include "common/failpoint.hh"
#include "common/logging.hh"
#include "perf/counters.hh"
#include "store/plan_store.hh"

namespace graphr
{

PlanCache &
PlanCache::instance()
{
    static PlanCache cache;
    return cache;
}

std::size_t
PlanCache::KeyHash::operator()(const Key &key) const
{
    // The fingerprint is already well mixed; fold the tiling in.
    std::uint64_t h = key.fingerprint;
    h ^= (static_cast<std::uint64_t>(key.crossbarDim) << 0) ^
         (static_cast<std::uint64_t>(key.crossbarsPerGe) << 16) ^
         (static_cast<std::uint64_t>(key.numGe) << 32) ^
         (static_cast<std::uint64_t>(key.blockSize) << 48);
    h *= 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(h ^ (h >> 32));
}

void
PlanCache::setStore(std::shared_ptr<PlanStore> store)
{
    const std::lock_guard<std::mutex> lock(storeMutex_);
    store_ = std::move(store);
}

std::shared_ptr<PlanStore>
PlanCache::store() const
{
    const std::lock_guard<std::mutex> lock(storeMutex_);
    return store_;
}

TilePlanPtr
PlanCache::get(const CooGraph &graph, const TilingParams &tiling,
               bool *cache_hit)
{
    const std::uint64_t fingerprint = graphFingerprint(graph);
    const Key key{fingerprint, tiling.crossbarDim,
                  tiling.crossbarsPerGe, tiling.numGe, tiling.blockSize};
    // Snapshot once: the factory runs outside every cache lock.
    const std::shared_ptr<PlanStore> store = this->store();
    bool hit = false;
    TilePlanPtr plan = cache_.getOrBuild(
        key,
        [&graph, &tiling, fingerprint, &store] {
            // Injectable build failure: exercises LruCache's failed-
            // build contract (the exception reaches every waiter, the
            // slot is dropped, the next get() retries the build).
            if (GRAPHR_FAILPOINT("cache.build.fail")) {
                throw std::runtime_error(
                    "injected failure: failpoint cache.build.fail");
            }
            if (store != nullptr) {
                if (TilePlanPtr loaded = store->load(fingerprint, tiling))
                    return loaded;
            }
            TilePlanPtr built =
                std::make_shared<const TilePlan>(graph, tiling);
            if (store != nullptr) {
                // Write-through is best-effort: a full disk must not
                // kill the run that could recompute the plan anyway.
                try {
                    store->save(*built, tiling);
                } catch (const StoreError &err) {
                    GRAPHR_WARN("plan store: ", err.what(),
                                " — continuing without persisting");
                }
            }
            return built;
        },
        &hit);
    // Publish into the process-wide perf registry (perf/counters.hh);
    // the references are resolved once, the hot path pays one
    // relaxed fetch_add.
    static perf::Counter &hits =
        perf::Registry::instance().counter("plan_cache.hits");
    static perf::Counter &misses =
        perf::Registry::instance().counter("plan_cache.misses");
    (hit ? hits : misses).add();
    if (cache_hit != nullptr)
        *cache_hit = hit;
    return plan;
}

} // namespace graphr
