#include "plan_cache.hh"

#include <stdexcept>
#include <utility>

#include "common/checksum.hh"
#include "common/failpoint.hh"
#include "common/logging.hh"
#include "perf/counters.hh"
#include "store/plan_store.hh"

namespace graphr
{

namespace
{

/**
 * The thread's request-scoped store override. A plain pointer pair
 * (value + active flag) rather than a thread_local shared_ptr with a
 * non-trivial destructor: the RAII guard owns the shared_ptr, the TLS
 * slot only borrows it for the guard's lifetime.
 */
thread_local const std::shared_ptr<PlanStore> *t_storeOverride =
    nullptr;

} // namespace

PlanCache &
PlanCache::instance()
{
    static PlanCache cache;
    return cache;
}

PlanCache::ScopedStoreOverride::ScopedStoreOverride(
    std::shared_ptr<PlanStore> store)
{
    GRAPHR_ASSERT(t_storeOverride == nullptr,
                  "nested PlanCache store overrides are not supported");
    // The override lives exactly as long as this guard; storing the
    // address of a heap copy keeps the TLS slot trivially destructible.
    t_storeOverride =
        new std::shared_ptr<PlanStore>(std::move(store));
}

PlanCache::ScopedStoreOverride::~ScopedStoreOverride()
{
    delete t_storeOverride;
    t_storeOverride = nullptr;
}

bool
PlanCache::storeOverrideActive()
{
    return t_storeOverride != nullptr;
}

std::shared_ptr<PlanStore>
PlanCache::effectiveStore() const
{
    if (t_storeOverride != nullptr)
        return *t_storeOverride;
    return store();
}

std::size_t
PlanCache::KeyHash::operator()(const Key &key) const
{
    // The fingerprint is already well mixed; fold the tiling in.
    std::uint64_t h = key.fingerprint;
    h ^= key.storeNamespace * 0xff51afd7ed558ccdull;
    h ^= (static_cast<std::uint64_t>(key.crossbarDim) << 0) ^
         (static_cast<std::uint64_t>(key.crossbarsPerGe) << 16) ^
         (static_cast<std::uint64_t>(key.numGe) << 32) ^
         (static_cast<std::uint64_t>(key.blockSize) << 48);
    h *= 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(h ^ (h >> 32));
}

void
PlanCache::setStore(std::shared_ptr<PlanStore> store)
{
    const std::lock_guard<std::mutex> lock(storeMutex_);
    store_ = std::move(store);
}

std::shared_ptr<PlanStore>
PlanCache::store() const
{
    const std::lock_guard<std::mutex> lock(storeMutex_);
    return store_;
}

TilePlanPtr
PlanCache::get(const CooGraph &graph, const TilingParams &tiling,
               bool *cache_hit)
{
    const std::uint64_t fingerprint = graphFingerprint(graph);
    // Snapshot once: the factory runs outside every cache lock. Under
    // a request-scoped override (tenant namespace) the entry is keyed
    // by the overriding store's directory too, so tenants never share
    // a memory entry one of them could have seeded from its own
    // artifact directory.
    const std::shared_ptr<PlanStore> store = effectiveStore();
    const std::uint64_t ns =
        storeOverrideActive() && store != nullptr
            ? fnv1a64(store->directory().data(),
                      store->directory().size())
            : 0;
    const Key key{fingerprint,
                  ns,
                  tiling.crossbarDim,
                  tiling.crossbarsPerGe,
                  tiling.numGe,
                  tiling.blockSize};
    bool hit = false;
    TilePlanPtr plan = cache_.getOrBuild(
        key,
        [&graph, &tiling, fingerprint, &store] {
            // Injectable build failure: exercises LruCache's failed-
            // build contract (the exception reaches every waiter, the
            // slot is dropped, the next get() retries the build).
            if (GRAPHR_FAILPOINT("cache.build.fail")) {
                throw std::runtime_error(
                    "injected failure: failpoint cache.build.fail");
            }
            if (store != nullptr) {
                if (TilePlanPtr loaded = store->load(fingerprint, tiling))
                    return loaded;
            }
            TilePlanPtr built =
                std::make_shared<const TilePlan>(graph, tiling);
            if (store != nullptr) {
                // Write-through is best-effort: a full disk must not
                // kill the run that could recompute the plan anyway.
                try {
                    store->save(*built, tiling);
                } catch (const StoreError &err) {
                    GRAPHR_WARN("plan store: ", err.what(),
                                " — continuing without persisting");
                }
            }
            return built;
        },
        &hit);
    // Publish into the process-wide perf registry (perf/counters.hh);
    // the references are resolved once, the hot path pays one
    // relaxed fetch_add.
    static perf::Counter &hits =
        perf::Registry::instance().counter("plan_cache.hits");
    static perf::Counter &misses =
        perf::Registry::instance().counter("plan_cache.misses");
    (hit ? hits : misses).add();
    if (cache_hit != nullptr)
        *cache_hit = hit;
    return plan;
}

} // namespace graphr
