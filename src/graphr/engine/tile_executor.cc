#include "tile_executor.hh"

#include <algorithm>
#include <bit>
#include <optional>
#include <span>

#include "common/logging.hh"
#include "rram/graph_engine.hh"

namespace graphr
{

namespace
{

/** Bitmask of active rows [row0, row0 + dim) from an active vector. */
std::uint64_t
activeMask(const std::vector<bool> &active, std::uint64_t row0,
           std::uint32_t dim)
{
    std::uint64_t mask = 0;
    const std::uint64_t nv = active.size();
    for (std::uint32_t r = 0; r < dim; ++r) {
        const std::uint64_t v = row0 + r;
        if (v < nv && active[v])
            mask |= std::uint64_t{1} << r;
    }
    return mask;
}

/** Price accumulated events and fill the shared report fields. */
void
finalizeReport(SimReport &report, const DeviceParams &device,
               const EnergyEvents &events)
{
    EnergyLedger ledger(device);
    ledger.events() = events;
    report.events = events;
    report.energy = ledger.breakdown();
    // Peripheral (ADC/driver/controller) active power over busy time.
    report.energy.peripheral =
        device.peripheralActiveWatts * report.seconds;
    report.joules = report.energy.total();
}

} // namespace

/** Functional MAC state: scratch ledger, GE array, resident tiles. */
struct TileExecutor::MacDatapath
{
    EnergyLedger scratch;
    GraphEngineArray ge;
    /** Per-tile resident snapshot (ProgramCharging::kOnce only). */
    std::vector<std::optional<TileSnapshot>> resident;

    MacDatapath(const GraphRConfig &config, std::size_t num_tiles,
                bool resident_mode, bool apply_variation)
        : scratch(config.device),
          ge(config.tiling.crossbarDim,
             config.tiling.crossbarsPerGe * config.tiling.numGe,
             config.device, scratch)
    {
        if (apply_variation && config.variationSigma > 0.0)
            ge.setVariation(config.variationSigma, config.variationSeed);
        ge.salu().configure(SaluOp::kAdd);
        if (resident_mode)
            resident.resize(num_tiles);
    }
};

TileExecutor::TileExecutor(const GraphRConfig &config, TilePlanPtr plan)
    : config_(config), costModel_(config), plan_(std::move(plan))
{
    GRAPHR_ASSERT(plan_ != nullptr, "executor needs a plan");
}

TileExecutor::~TileExecutor() = default;
TileExecutor::TileExecutor(TileExecutor &&) noexcept = default;
TileExecutor &TileExecutor::operator=(TileExecutor &&) noexcept = default;

SimReport
TileExecutor::macReport(const MacSpec &spec) const
{
    SimReport report;
    report.algorithm = spec.name;
    report.iterations = spec.sweeps;
    report.occupancy = plan_->ordered.occupancy();

    // One pass over the tile table yields both the per-sweep compute
    // phase and the programming/streaming (load) phase; the charging
    // policy decides whether the latter repeats per sweep.
    EnergyEvents tile_events;
    double load_ns = 0.0;    // program+stream phase, one sweep
    double compute_ns = 0.0; // evaluation phase, one sweep
    double combined_ns = 0.0; // all phases fused (kPerSweep)
    double prog_ns = 0.0;
    double stream_ns = 0.0;
    for (const TileMeta &meta : plan_->meta.tiles()) {
        const TileCost cost =
            costModel_.macTile(meta, tile_events, spec.passesPerTile);
        prog_ns += cost.programNs;
        stream_ns += cost.streamNs;
        compute_ns += cost.computeNs;
        combined_ns += cost.totalNs(config_.pipelineTiles);
        load_ns += config_.pipelineTiles
                       ? std::max(cost.overlappedProgramNs,
                                  cost.streamNs)
                       : cost.programNs + cost.streamNs;
    }

    const double sweeps_d = static_cast<double>(spec.sweeps);
    const double overhead_ns =
        costModel_.iterationOverheadNs() * sweeps_d;
    const bool once = config_.programCharging == ProgramCharging::kOnce;

    double total_ns = 0.0;
    if (once) {
        total_ns = load_ns + compute_ns * sweeps_d + overhead_ns;
        report.programSeconds = prog_ns * 1e-9;
        report.streamSeconds = stream_ns * 1e-9;
    } else {
        total_ns = combined_ns * sweeps_d + overhead_ns;
        report.programSeconds = prog_ns * 1e-9 * sweeps_d;
        report.streamSeconds = stream_ns * 1e-9 * sweeps_d;
    }
    report.computeSeconds = compute_ns * 1e-9 * sweeps_d;
    report.seconds = total_ns * 1e-9;

    const auto tiles = static_cast<std::uint64_t>(
        plan_->meta.tiles().size());
    report.tilesProcessed = tiles * spec.sweeps;
    report.tilesSkipped =
        (plan_->partition.numTiles() - tiles) * spec.sweeps;
    report.edgesProcessed = plan_->meta.totalNnz() * spec.sweeps;

    // Split events: programming/streaming vs evaluation.
    EnergyEvents load_events;
    load_events.arrayWrites = tile_events.arrayWrites;
    load_events.memBytes = tile_events.memBytes;
    EnergyEvents compute_events = tile_events;
    compute_events.arrayWrites = 0;
    compute_events.memBytes = 0;

    EnergyEvents total;
    for (std::uint64_t s = 0; s < spec.sweeps; ++s)
        total += compute_events;
    if (once) {
        total += load_events;
    } else {
        for (std::uint64_t s = 0; s < spec.sweeps; ++s)
            total += load_events;
    }
    finalizeReport(report, config_.device, total);
    return report;
}

void
TileExecutor::functionalMacSweep(const MacSpec &spec,
                                 const std::vector<Value> &input,
                                 std::vector<Value> &accum)
{
    const std::uint64_t nv = input.size();
    GRAPHR_ASSERT(accum.size() == nv, "accumulator length ",
                  accum.size(), " != input length ", nv);
    if (!mac_) {
        mac_ = std::make_unique<MacDatapath>(
            config_, plan_->meta.tiles().size(), residentWeights(),
            spec.applyVariation);
    }
    GraphEngineArray &ge = mac_->ge;

    std::vector<Edge> scaled;
    std::vector<double> in_rows(config_.tiling.crossbarDim, 0.0);
    std::vector<double> partial; // reused across tiles (hot loop)
    const std::vector<TileMeta> &tiles = plan_->meta.tiles();
    for (std::size_t t = 0; t < tiles.size(); ++t) {
        const TileMeta &meta = tiles[t];
        if (residentWeights() && mac_->resident[t].has_value()) {
            ge.loadTile(*mac_->resident[t]);
            ++stats_.functionalTileLoads;
        } else {
            const TileSpan &span = plan_->ordered.tiles()[t];
            std::span<const Edge> tile_edges =
                plan_->ordered.tileEdges(span);
            if (spec.edgeScale) {
                scaled.clear();
                for (const Edge &e : tile_edges)
                    scaled.push_back(
                        Edge{e.src, e.dst, spec.edgeScale(e)});
                tile_edges = scaled;
            }
            ge.programTile(tile_edges, meta.row0, meta.col0,
                           config_.weightFracBits);
            ++stats_.functionalTilePrograms;
            if (residentWeights())
                mac_->resident[t] = ge.saveTile(config_.weightFracBits);
        }
        for (std::uint32_t r = 0; r < config_.tiling.crossbarDim; ++r) {
            const std::uint64_t v = meta.row0 + r;
            in_rows[r] = v < nv ? input[v] : 0.0;
        }
        ge.runMacInto(in_rows, config_.inputFracBits,
                      config_.weightFracBits, partial);
        for (std::uint64_t c = 0; c < partial.size(); ++c) {
            const std::uint64_t v = meta.col0 + c;
            if (v < nv && partial[c] != 0.0)
                accum[v] = ge.salu().reduce(accum[v], partial[c]);
        }
    }
}

SimReport
TileExecutor::addOpRun(const CooGraph &graph, const AddOpSpec &spec,
                       const char *name, std::vector<Value> *labels_out)
{
    const std::uint32_t dim = config_.tiling.crossbarDim;

    SimReport report;
    report.algorithm = name;
    report.occupancy = plan_->ordered.occupancy();

    EnergyEvents events;
    double total_ns = 0.0;
    double prog_ns = 0.0;
    double comp_ns = 0.0;
    double stream_ns = 0.0;
    const bool once = config_.programCharging == ProgramCharging::kOnce;

    // Under kOnce the whole (preprocessed) graph is programmed into
    // ReRAM a single time before the rounds begin.
    if (once) {
        EnergyEvents load_events;
        for (const TileMeta &meta : plan_->meta.tiles()) {
            const TileCost cost =
                costModel_.addOpTile(meta, 0, load_events);
            prog_ns += cost.programNs;
            stream_ns += cost.streamNs;
            total_ns += config_.pipelineTiles
                            ? std::max(cost.overlappedProgramNs,
                                       cost.streamNs)
                            : cost.programNs + cost.streamNs;
        }
        events += load_events;
    }

    // Timing walk: synchronous relaxation rounds; each round visits
    // every tile whose source range intersects the active set.
    RelaxationSweep sweep(graph, spec.initLabels, spec.initActive,
                          spec.mode);
    while (!sweep.done()) {
        const std::vector<bool> &active = sweep.active();
        for (const TileMeta &meta : plan_->meta.tiles()) {
            const std::uint64_t mask =
                meta.rowMask & activeMask(active, meta.row0, dim);
            if (mask == 0) {
                ++report.tilesSkipped;
                continue;
            }
            const auto rows =
                static_cast<std::uint32_t>(std::popcount(mask));
            EnergyEvents tile_events;
            const TileCost cost =
                costModel_.addOpTile(meta, rows, tile_events);
            if (once) {
                // Graph is resident: only the evaluation phase runs.
                tile_events.arrayWrites = 0;
                tile_events.memBytes = 0;
                total_ns += cost.computeNs;
            } else {
                prog_ns += cost.programNs;
                stream_ns += cost.streamNs;
                total_ns += cost.totalNs(config_.pipelineTiles);
            }
            events += tile_events;
            comp_ns += cost.computeNs;
            ++report.tilesProcessed;
            report.activeRowOps += rows;
            std::uint64_t m = mask;
            while (m != 0) {
                const int r = std::countr_zero(m);
                report.edgesProcessed += meta.rowNnz[r];
                m &= m - 1;
            }
        }
        total_ns += costModel_.iterationOverheadNs();
        ++report.iterations;
        sweep.step();
    }

    report.seconds = total_ns * 1e-9;
    report.programSeconds = prog_ns * 1e-9;
    report.computeSeconds = comp_ns * 1e-9;
    report.streamSeconds = stream_ns * 1e-9;
    finalizeReport(report, config_.device, events);

    if (labels_out == nullptr)
        return report;

    if (!config_.functional) {
        *labels_out = sweep.dist();
        return report;
    }
    *labels_out = functionalAddOpSolve(graph, spec);
    return report;
}

std::vector<Value>
TileExecutor::functionalAddOpSolve(const CooGraph &graph,
                                   const AddOpSpec &spec)
{
    const VertexId nv = graph.numVertices();
    const std::uint32_t dim = config_.tiling.crossbarDim;

    EnergyLedger scratch(config_.device);
    GraphEngineArray ge(dim,
                        config_.tiling.crossbarsPerGe *
                            config_.tiling.numGe,
                        config_.device, scratch);
    if (config_.variationSigma > 0.0)
        ge.setVariation(config_.variationSigma, config_.variationSeed);
    ge.salu().configure(SaluOp::kMin);

    const std::vector<TileMeta> &tiles = plan_->meta.tiles();
    // Resident mode: a tile is programmed on its first activation and
    // replayed on every later one.
    std::vector<std::optional<TileSnapshot>> snapshots(
        residentWeights() ? tiles.size() : 0);

    std::vector<Value> dist = spec.initLabels;
    std::vector<bool> active = spec.initActive;
    std::uint64_t active_count = 0;
    for (const bool a : active)
        active_count += a ? 1 : 0;
    std::vector<Edge> rewritten_edges;
    std::vector<double> cand; // reused across rows (hot loop)

    while (active_count > 0) {
        std::vector<Value> next = dist;
        for (std::size_t t = 0; t < tiles.size(); ++t) {
            const TileMeta &meta = tiles[t];
            const std::uint64_t mask =
                meta.rowMask & activeMask(active, meta.row0, dim);
            if (mask == 0)
                continue;
            if (residentWeights() && snapshots[t].has_value()) {
                ge.loadTile(*snapshots[t]);
                ++stats_.functionalTileLoads;
            } else {
                const TileSpan &span = plan_->ordered.tiles()[t];
                std::span<const Edge> tile_edges =
                    plan_->ordered.tileEdges(span);
                if (spec.mode != WeightMode::kOriginal) {
                    rewritten_edges.assign(tile_edges.begin(),
                                           tile_edges.end());
                    const double w =
                        spec.mode == WeightMode::kUnit ? 1.0 : 0.0;
                    for (Edge &e : rewritten_edges)
                        e.weight = w;
                    tile_edges = rewritten_edges;
                }
                // Integer distances/weights: 0 fractional bits is
                // exact. Parallel edges merge with min (relaxation
                // semantics).
                ge.programTile(tile_edges, meta.row0, meta.col0, 0,
                               CombineMode::kMin);
                ++stats_.functionalTilePrograms;
                if (residentWeights())
                    snapshots[t] = ge.saveTile(0);
            }
            std::uint64_t m = mask;
            while (m != 0) {
                const int r = std::countr_zero(m);
                m &= m - 1;
                ge.runAddOpInto(
                    static_cast<std::uint32_t>(r),
                    dist[meta.row0 + static_cast<std::uint64_t>(r)],
                    0, cand);
                for (std::uint64_t c = 0; c < cand.size(); ++c) {
                    const std::uint64_t v = meta.col0 + c;
                    if (v < nv && cand[c] < kInfDistance)
                        next[v] = ge.salu().reduce(next[v], cand[c]);
                }
            }
        }

        active_count = 0;
        for (VertexId v = 0; v < nv; ++v) {
            active[v] = next[v] < dist[v];
            if (active[v])
                ++active_count;
        }
        dist = std::move(next);
    }
    return dist;
}

} // namespace graphr
