#include "tile_meta.hh"

#include <algorithm>
#include <bit>
#include <unordered_set>

#include "common/logging.hh"

namespace graphr
{

TileMetaTable::TileMetaTable(const OrderedEdgeList &ordered)
{
    const GridPartition &part = ordered.partition();
    const std::uint32_t dim = part.crossbarDim();
    GRAPHR_ASSERT(dim <= 64, "tile row mask supports C <= 64");
    const std::uint64_t num_crossbars = part.tileWidth() / dim;

    tiles_.reserve(ordered.tiles().size());
    std::vector<std::uint64_t> cb_rows(num_crossbars, 0);
    for (const TileSpan &span : ordered.tiles()) {
        TileMeta meta;
        meta.tileIndex = span.tileIndex;
        meta.nnz = span.numEdges;
        totalNnz_ += span.numEdges;

        const TileCoord coord = part.tileCoord(span.tileIndex);
        part.tileOrigin(coord, meta.row0, meta.col0);
        meta.rowNnz.assign(dim, 0);

        std::fill(cb_rows.begin(), cb_rows.end(), 0);
        std::unordered_set<std::uint64_t> cols;
        for (const Edge &e : ordered.tileEdges(span)) {
            const std::uint64_t row = e.src - meta.row0;
            const std::uint64_t col = e.dst - meta.col0;
            GRAPHR_ASSERT(row < dim && col < part.tileWidth(),
                          "edge outside its tile");
            meta.rowMask |= std::uint64_t{1} << row;
            ++meta.rowNnz[row];
            cb_rows[col / dim] |= std::uint64_t{1} << row;
            cols.insert(col);
        }
        meta.nnzColumns = cols.size();
        for (std::uint64_t mask : cb_rows) {
            if (mask == 0)
                continue;
            ++meta.crossbarsUsed;
            meta.maxRowsProgrammed = std::max(
                meta.maxRowsProgrammed,
                static_cast<std::uint32_t>(std::popcount(mask)));
        }
        tiles_.push_back(std::move(meta));
    }
}

} // namespace graphr
