/**
 * @file
 * PIM baseline: analytical Tesseract-like model (paper section 5.6).
 *
 * Tesseract [4] places one in-order core in each vault of a Hybrid
 * Memory Cube and scales with the HMC's internal bandwidth. The model
 * charges per-edge instruction work across all vault cores, a
 * cross-cube message penalty for the remote Put fraction, an internal
 * bandwidth roofline, and per-iteration barrier synchronisation.
 * Energy is active power times time; HMC DRAM layers plus logic-layer
 * cores draw substantially more static+dynamic power than ReRAM,
 * which is where GraphR's energy advantage comes from.
 */

#ifndef GRAPHR_BASELINES_PIM_MODEL_HH
#define GRAPHR_BASELINES_PIM_MODEL_HH

#include "algorithms/collaborative_filtering.hh"
#include "baselines/baseline_report.hh"
#include "graph/coo.hh"

namespace graphr
{

/** Tesseract-like PIM parameters (16 cubes, 32 vaults each). */
struct PimParams
{
    std::uint32_t cubes = 16;
    std::uint32_t vaultsPerCube = 32;
    double coreGhz = 1.0;
    /**
     * Cycles per edge visit on a cache-less in-order vault core:
     * dominated by local DRAM-layer accesses (~3 accesses x ~50 ns
     * at 1 GHz), partially hidden by the prefetcher.
     */
    double cyclesPerEdge = 150.0;
    double remoteMsgCycles = 200.0;  ///< remote Put network + remote core
    double internalBandwidthTBs = 8.0;
    double barrierUs = 5.0;          ///< per-iteration synchronisation
    double loadImbalance = 1.5;      ///< skewed-degree slowdown
    /**
     * Extra work factor for BFS/SSSP rounds: the interrupt-driven
     * remote Put mechanism over small, skewed frontiers leaves most
     * vault cores idle and retries congested queues.
     */
    double traversalWorkInflation = 3.0;
    double activeWatts = 160.0;      ///< 16 cubes x ~10 W under load
};

/** Analytical Tesseract-like execution model. */
class PimModel
{
  public:
    explicit PimModel(PimParams params = PimParams{});

    const PimParams &params() const { return params_; }

    std::uint32_t
    totalCores() const
    {
        return params_.cubes * params_.vaultsPerCube;
    }

    BaselineReport runPageRank(const CooGraph &graph,
                               std::uint64_t iterations);
    BaselineReport runSpmv(const CooGraph &graph);
    BaselineReport runBfs(const CooGraph &graph, VertexId source);
    BaselineReport runSssp(const CooGraph &graph, VertexId source);
    BaselineReport runWcc(const CooGraph &graph);
    BaselineReport runCf(const CooGraph &ratings, const CfParams &params);

    /** Seconds to process a batch of edge visits (exposed for tests). */
    double edgeBatchSeconds(std::uint64_t edges) const;

  private:
    void finalize(BaselineReport &report, double seconds) const;

    PimParams params_;
};

} // namespace graphr

#endif // GRAPHR_BASELINES_PIM_MODEL_HH
