#include "pim_model.hh"

#include "algorithms/traversal.hh"
#include "algorithms/wcc.hh"
#include "common/logging.hh"
#include "graph/csr.hh"

namespace graphr
{

PimModel::PimModel(PimParams params) : params_(params)
{
    GRAPHR_ASSERT(params_.cubes > 0 && params_.vaultsPerCube > 0,
                  "bad PIM configuration");
}

double
PimModel::edgeBatchSeconds(std::uint64_t edges) const
{
    // The remote fraction of edges crosses cubes: with vertices
    // hash-partitioned over #cubes, (cubes-1)/cubes of destinations
    // are remote and pay the message cost.
    const double remote_frac =
        static_cast<double>(params_.cubes - 1) / params_.cubes;
    const double cycles_per_edge =
        params_.cyclesPerEdge + remote_frac * params_.remoteMsgCycles;
    const double compute_s =
        static_cast<double>(edges) * cycles_per_edge *
        params_.loadImbalance /
        (static_cast<double>(totalCores()) * params_.coreGhz * 1e9);

    // Internal bandwidth roofline: edge record + vertex line traffic.
    constexpr double bytes_per_edge = 32.0;
    const double bw_s = static_cast<double>(edges) * bytes_per_edge /
                        (params_.internalBandwidthTBs * 1e12);
    return std::max(compute_s, bw_s);
}

void
PimModel::finalize(BaselineReport &report, double seconds) const
{
    report.seconds = seconds;
    report.joules = params_.activeWatts * seconds;
}

BaselineReport
PimModel::runPageRank(const CooGraph &graph, std::uint64_t iterations)
{
    BaselineReport report;
    report.platform = "pim";
    report.algorithm = "pagerank";
    report.iterations = iterations;
    report.edgesProcessed = graph.numEdges() * iterations;

    const double per_iter =
        edgeBatchSeconds(graph.numEdges()) + params_.barrierUs * 1e-6;
    finalize(report, per_iter * static_cast<double>(iterations));
    return report;
}

BaselineReport
PimModel::runSpmv(const CooGraph &graph)
{
    BaselineReport report = runPageRank(graph, 1);
    report.algorithm = "spmv";
    return report;
}

namespace
{

BaselineReport
pimRelaxation(const CooGraph &graph, RelaxationSweep &sweep,
              const char *name, const PimModel &model,
              const PimParams &params)
{
    BaselineReport report;
    report.platform = "pim";
    report.algorithm = name;

    CsrGraph out(graph, CsrGraph::Direction::kOut);
    double seconds = 0.0;
    while (!sweep.done()) {
        const std::vector<bool> &active = sweep.active();
        std::uint64_t frontier_edges = 0;
        for (VertexId u = 0; u < graph.numVertices(); ++u) {
            if (active[u])
                frontier_edges += out.degree(u);
        }
        // Small frontiers cannot use all vault cores; retain a
        // minimum serial cost of one edge per active round. Frontier
        // skew and Put-queue congestion inflate the round's work.
        seconds += model.edgeBatchSeconds(std::max<std::uint64_t>(
                       frontier_edges, 1)) *
                       params.traversalWorkInflation +
                   params.barrierUs * 1e-6;
        report.edgesProcessed += frontier_edges;
        ++report.iterations;
        sweep.step();
    }
    report.seconds = seconds;
    report.joules = params.activeWatts * seconds;
    return report;
}

} // namespace

BaselineReport
PimModel::runBfs(const CooGraph &graph, VertexId source)
{
    RelaxationSweep sweep(graph, source, /*unit_weights=*/true);
    return pimRelaxation(graph, sweep, "bfs", *this, params_);
}

BaselineReport
PimModel::runSssp(const CooGraph &graph, VertexId source)
{
    RelaxationSweep sweep(graph, source, /*unit_weights=*/false);
    return pimRelaxation(graph, sweep, "sssp", *this, params_);
}

BaselineReport
PimModel::runWcc(const CooGraph &graph)
{
    const CooGraph sym = symmetrize(graph);
    RelaxationSweep sweep = makeWccSweep(sym);
    return pimRelaxation(sym, sweep, "wcc", *this, params_);
}

BaselineReport
PimModel::runCf(const CooGraph &ratings, const CfParams &cf)
{
    BaselineReport report;
    report.platform = "pim";
    report.algorithm = "cf";
    report.iterations = static_cast<std::uint64_t>(cf.epochs);
    report.edgesProcessed = ratings.numEdges() * cf.epochs;

    // Each rating costs 6K MAC-class operations on the in-order
    // cores; treat K MACs as K cycles.
    const double k = static_cast<double>(cf.featureLength);
    const double cycles = static_cast<double>(ratings.numEdges()) * 6.0 *
                          k * params_.loadImbalance;
    const double compute_s =
        cycles / (static_cast<double>(totalCores()) * params_.coreGhz *
                  1e9);
    const double bytes =
        static_cast<double>(ratings.numEdges()) * (8.0 + 3.0 * k * 4.0);
    const double bw_s = bytes / (params_.internalBandwidthTBs * 1e12);
    const double per_epoch =
        std::max(compute_s, bw_s) + params_.barrierUs * 1e-6;
    finalize(report, per_epoch * static_cast<double>(cf.epochs));
    return report;
}

} // namespace graphr
