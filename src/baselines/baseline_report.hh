/**
 * @file
 * Common result record for the CPU/GPU/PIM baseline models.
 */

#ifndef GRAPHR_BASELINES_BASELINE_REPORT_HH
#define GRAPHR_BASELINES_BASELINE_REPORT_HH

#include <cstdint>
#include <string>

namespace graphr
{

/** Time/energy outcome of one baseline execution. */
struct BaselineReport
{
    std::string platform;  ///< "cpu", "gpu" or "pim"
    std::string algorithm;
    double seconds = 0.0;
    double joules = 0.0;
    std::uint64_t iterations = 0;
    std::uint64_t edgesProcessed = 0;
    /** Sequential bytes streamed (edge data). */
    std::uint64_t sequentialBytes = 0;
    /** Random accesses issued (vertex data). */
    std::uint64_t randomAccesses = 0;
    /** DRAM line fetches (CPU model only). */
    std::uint64_t dramAccesses = 0;
};

} // namespace graphr

#endif // GRAPHR_BASELINES_BASELINE_REPORT_HH
