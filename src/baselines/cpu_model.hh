/**
 * @file
 * CPU baseline: GridGraph-style edge-centric processing on the
 * paper's Xeon E5-2630 v3 platform (Table 4).
 *
 * The model is trace-driven: it replays the dual-sliding-window
 * access pattern (sequential edge streaming, random source-vertex
 * reads, random destination-vertex updates; paper Fig. 2) through the
 * CacheHierarchy and charges per-edge instruction work on top. The
 * measured per-thread cycle count is divided by an effective
 * parallelism factor: graph kernels on this class of machine are
 * memory-bound well before all 32 hardware threads are busy, so the
 * factor is lower than the thread count.
 *
 * Energy = package power * time + DRAM access energy, matching the
 * paper's methodology of estimating CPU energy from Intel
 * specifications.
 */

#ifndef GRAPHR_BASELINES_CPU_MODEL_HH
#define GRAPHR_BASELINES_CPU_MODEL_HH

#include "algorithms/collaborative_filtering.hh"
#include "algorithms/pagerank.hh"
#include "baselines/baseline_report.hh"
#include "baselines/cache_sim.hh"
#include "graph/coo.hh"

namespace graphr
{

/** CPU platform parameters (defaults: 2x Xeon E5-2630 v3). */
struct CpuParams
{
    double frequencyGhz = 2.4;
    std::uint32_t threads = 32;       ///< 2 sockets x 8 cores x 2 SMT
    double effectiveParallelism = 6.0; ///< memory-bound scaling limit
    double packageWatts = 170.0;      ///< 2 x 85 W TDP
    /** Instruction work per edge visit (issue-limited cycles). */
    double cyclesPerEdge = 5.0;
    /** Instruction work per vertex update in the apply phase. */
    double cyclesPerVertex = 2.0;
    /** Per-iteration software overhead in microseconds. */
    double iterationOverheadUs = 50.0;
    /** MACs per rating for CF (2K for SGD forward+backward). */
    double cyclesPerMac = 1.0;
    /** GridGraph grid dimension P (selective-scheduling granularity). */
    std::uint32_t gridP = 32;
    CacheHierarchyParams cache;
};

/** Trace-driven GridGraph-like CPU execution model. */
class CpuModel
{
  public:
    explicit CpuModel(CpuParams params = CpuParams{});

    const CpuParams &params() const { return params_; }

    /** PageRank for a given iteration count (per-iteration replay). */
    BaselineReport runPageRank(const CooGraph &graph,
                               std::uint64_t iterations);

    /** One SpMV pass. */
    BaselineReport runSpmv(const CooGraph &graph);

    /** BFS from a source. */
    BaselineReport runBfs(const CooGraph &graph, VertexId source);

    /** SSSP from a source. */
    BaselineReport runSssp(const CooGraph &graph, VertexId source);

    /** WCC by min-label propagation over the symmetrised graph. */
    BaselineReport runWcc(const CooGraph &graph);

    /** CF training (GraphChi-style, per the paper's CPU setup). */
    BaselineReport runCf(const CooGraph &ratings, const CfParams &params);

  private:
    /**
     * Replay one full edge sweep (every edge visited once) through
     * the cache hierarchy; returns serial cycles consumed.
     */
    double edgeSweepCycles(const CooGraph &graph, CacheHierarchy &cache,
                           BaselineReport &report);

    /** Convert serial cycles to wall-clock seconds. */
    double cyclesToSeconds(double cycles) const;

    /** Fill energy from time and DRAM traffic. */
    void finalize(BaselineReport &report, double seconds,
                  const CacheStats &stats) const;

    CpuParams params_;
};

} // namespace graphr

#endif // GRAPHR_BASELINES_CPU_MODEL_HH
