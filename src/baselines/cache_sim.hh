/**
 * @file
 * Multi-level set-associative cache + DRAM model.
 *
 * The CPU baseline (GridGraph-style dual sliding windows) is
 * trace-driven: each vertex/edge access goes through this hierarchy
 * and the model accumulates cycles and DRAM traffic. The hierarchy
 * defaults mirror the paper's Xeon E5-2630 v3 (Table 4): 32 KB L1D,
 * 256 KB L2, 20 MB shared L3, 64 B lines.
 */

#ifndef GRAPHR_BASELINES_CACHE_SIM_HH
#define GRAPHR_BASELINES_CACHE_SIM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace graphr
{

/** Configuration of one cache level. */
struct CacheLevelParams
{
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t associativity = 8;
    std::uint32_t lineBytes = 64;
    std::uint32_t hitCycles = 4;
};

/** Hierarchy configuration plus DRAM behaviour. */
struct CacheHierarchyParams
{
    CacheLevelParams l1{32 * 1024, 8, 64, 4};
    CacheLevelParams l2{256 * 1024, 8, 64, 12};
    CacheLevelParams l3{20 * 1024 * 1024, 20, 64, 38};
    std::uint32_t dramCycles = 250;    ///< ~104 ns at 2.4 GHz
    double dramEnergyPjPerLine = 1280; ///< ~20 pJ/bit * 64 B
};

/** Access statistics accumulated by the hierarchy. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l3Hits = 0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t cycles = 0;

    CacheStats &operator+=(const CacheStats &other);
};

/** One set-associative LRU cache level. */
class CacheLevel
{
  public:
    explicit CacheLevel(const CacheLevelParams &params);

    /** Look up a line address; inserts on miss. True on hit. */
    bool access(std::uint64_t line_addr);

    std::uint32_t hitCycles() const { return params_.hitCycles; }

    void reset();

  private:
    CacheLevelParams params_;
    std::uint64_t numSets_;
    /** ways per set: tag (line address) per way; 0 = invalid. */
    std::vector<std::uint64_t> tags_;
    /** LRU stamps parallel to tags_. */
    std::vector<std::uint64_t> stamps_;
    std::uint64_t clock_ = 0;
};

/** Three-level inclusive hierarchy with a flat DRAM backend. */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(
        const CacheHierarchyParams &params = CacheHierarchyParams{});

    /**
     * Perform one data access at a byte address; returns the latency
     * in cycles and updates the statistics.
     */
    std::uint32_t access(std::uint64_t byte_addr);

    const CacheStats &stats() const { return stats_; }
    const CacheHierarchyParams &params() const { return params_; }

    void reset();

  private:
    CacheHierarchyParams params_;
    CacheLevel l1_;
    CacheLevel l2_;
    CacheLevel l3_;
    CacheStats stats_;
};

} // namespace graphr

#endif // GRAPHR_BASELINES_CACHE_SIM_HH
