#include "cpu_model.hh"

#include "algorithms/traversal.hh"
#include "algorithms/wcc.hh"
#include "common/logging.hh"
#include "graph/csr.hh"

namespace graphr
{

namespace
{

/** Synthetic address map: disjoint regions per data structure. */
constexpr std::uint64_t kSrcPropBase = 0;
constexpr std::uint64_t kDstPropBase = 1ull << 40;
constexpr std::uint64_t kEdgeBase = 1ull << 41;
constexpr std::uint64_t kFactorBase = 1ull << 42;
constexpr std::uint32_t kPropBytes = 8;
constexpr std::uint32_t kEdgeBytes = 12;

} // namespace

CpuModel::CpuModel(CpuParams params) : params_(params)
{
    GRAPHR_ASSERT(params_.effectiveParallelism >= 1.0,
                  "parallelism must be >= 1");
}

double
CpuModel::cyclesToSeconds(double cycles) const
{
    return cycles / (params_.frequencyGhz * 1e9) /
           params_.effectiveParallelism;
}

void
CpuModel::finalize(BaselineReport &report, double seconds,
                   const CacheStats &stats) const
{
    report.seconds = seconds;
    report.dramAccesses = stats.dramAccesses;
    const double dram_j = static_cast<double>(stats.dramAccesses) *
                          params_.cache.dramEnergyPjPerLine * 1e-12;
    report.joules = params_.packageWatts * seconds + dram_j;
}

double
CpuModel::edgeSweepCycles(const CooGraph &graph, CacheHierarchy &cache,
                          BaselineReport &report)
{
    double cycles = 0.0;
    std::uint64_t edge_cursor = kEdgeBase;
    for (const Edge &e : graph.edges()) {
        // Sequential edge stream (GridGraph reads blocks in order).
        cycles += cache.access(edge_cursor);
        edge_cursor += kEdgeBytes;
        // Random source read and destination update (paper Fig. 2b).
        cycles += cache.access(kSrcPropBase +
                               static_cast<std::uint64_t>(e.src) *
                                   kPropBytes);
        cycles += cache.access(kDstPropBase +
                               static_cast<std::uint64_t>(e.dst) *
                                   kPropBytes);
        cycles += params_.cyclesPerEdge;
    }
    report.edgesProcessed += graph.numEdges();
    report.sequentialBytes +=
        graph.numEdges() * static_cast<std::uint64_t>(kEdgeBytes);
    report.randomAccesses += 2 * graph.numEdges();
    return cycles;
}

BaselineReport
CpuModel::runPageRank(const CooGraph &graph, std::uint64_t iterations)
{
    BaselineReport report;
    report.platform = "cpu";
    report.algorithm = "pagerank";
    report.iterations = iterations;

    CacheHierarchy cache(params_.cache);
    // Replay one sweep; iterations have identical footprints, so the
    // steady-state sweep cost is multiplied (keeps big runs cheap).
    BaselineReport sweep_counts;
    const double sweep_cycles =
        edgeSweepCycles(graph, cache, sweep_counts) +
        static_cast<double>(graph.numVertices()) * params_.cyclesPerVertex;

    const double it = static_cast<double>(iterations);
    report.edgesProcessed = sweep_counts.edgesProcessed * iterations;
    report.sequentialBytes = sweep_counts.sequentialBytes * iterations;
    report.randomAccesses = sweep_counts.randomAccesses * iterations;

    CacheStats stats = cache.stats();
    stats.dramAccesses = static_cast<std::uint64_t>(
        static_cast<double>(stats.dramAccesses) * it);
    const double seconds =
        cyclesToSeconds(sweep_cycles * it) +
        it * params_.iterationOverheadUs * 1e-6;
    finalize(report, seconds, stats);
    return report;
}

BaselineReport
CpuModel::runSpmv(const CooGraph &graph)
{
    BaselineReport report = runPageRank(graph, 1);
    report.algorithm = "spmv";
    return report;
}

namespace
{

/**
 * Shared relaxation trace replay (BFS/SSSP/WCC).
 *
 * GridGraph is an edge-streaming system: an iteration streams whole
 * edge blocks and skips a block only when its entire source chunk is
 * inactive (2-level selective scheduling). It cannot traverse a
 * per-vertex frontier the way Gunrock does, so inactive-source edges
 * inside an active chunk still cost their stream bytes plus a bitmap
 * check.
 */
BaselineReport
relaxationTrace(const CooGraph &graph, RelaxationSweep &sweep,
                const char *name, const CpuParams &params)
{
    BaselineReport report;
    report.platform = "cpu";
    report.algorithm = name;

    CsrGraph out(graph, CsrGraph::Direction::kOut);
    CacheHierarchy cache(params.cache);

    // GridGraph-style P x P grid: P chosen so a vertex chunk is
    // cache-resident; chunk = source range of one block row.
    const VertexId chunk = std::max<VertexId>(
        4096, graph.numVertices() / params.gridP);

    double cycles = 0.0;
    while (!sweep.done()) {
        const std::vector<bool> &active = sweep.active();
        for (VertexId base = 0; base < graph.numVertices();
             base += chunk) {
            const VertexId end =
                std::min<VertexId>(base + chunk, graph.numVertices());
            bool chunk_active = false;
            for (VertexId u = base; u < end && !chunk_active; ++u)
                chunk_active = active[u];
            if (!chunk_active)
                continue; // whole block skipped by the scheduler

            for (VertexId u = base; u < end; ++u) {
                const EdgeId first = out.offsets()[u];
                EdgeId idx = first;
                const bool is_active = active[u];
                for (const Adjacency &adj : out.neighbors(u)) {
                    // Edge block streams sequentially regardless of
                    // per-source activity.
                    cycles += cache.access(kEdgeBase + idx * kEdgeBytes);
                    ++idx;
                    if (is_active) {
                        cycles += cache.access(
                            kSrcPropBase +
                            static_cast<std::uint64_t>(u) * kPropBytes);
                        cycles += cache.access(
                            kDstPropBase +
                            static_cast<std::uint64_t>(adj.neighbor) *
                                kPropBytes);
                        cycles += params.cyclesPerEdge;
                        report.randomAccesses += 1;
                    } else {
                        cycles += 2.0; // active-bitmap check only
                    }
                    ++report.edgesProcessed;
                }
                report.sequentialBytes +=
                    (idx - first) *
                    static_cast<std::uint64_t>(kEdgeBytes);
            }
        }
        cycles += params.iterationOverheadUs * 1e-6 *
                  params.frequencyGhz * 1e9;
        ++report.iterations;
        sweep.step();
    }

    const double seconds =
        cycles / (params.frequencyGhz * 1e9) /
        params.effectiveParallelism;
    report.seconds = seconds;
    report.dramAccesses = cache.stats().dramAccesses;
    const double dram_j = static_cast<double>(cache.stats().dramAccesses) *
                          params.cache.dramEnergyPjPerLine * 1e-12;
    report.joules = params.packageWatts * seconds + dram_j;
    return report;
}

} // namespace

BaselineReport
CpuModel::runBfs(const CooGraph &graph, VertexId source)
{
    RelaxationSweep sweep(graph, source, /*unit_weights=*/true);
    return relaxationTrace(graph, sweep, "bfs", params_);
}

BaselineReport
CpuModel::runSssp(const CooGraph &graph, VertexId source)
{
    RelaxationSweep sweep(graph, source, /*unit_weights=*/false);
    return relaxationTrace(graph, sweep, "sssp", params_);
}

BaselineReport
CpuModel::runWcc(const CooGraph &graph)
{
    const CooGraph sym = symmetrize(graph);
    RelaxationSweep sweep = makeWccSweep(sym);
    return relaxationTrace(sym, sweep, "wcc", params_);
}

BaselineReport
CpuModel::runCf(const CooGraph &ratings, const CfParams &cf)
{
    BaselineReport report;
    report.platform = "cpu";
    report.algorithm = "cf";
    report.iterations = static_cast<std::uint64_t>(cf.epochs);

    CacheHierarchy cache(params_.cache);
    const std::uint32_t k = static_cast<std::uint32_t>(cf.featureLength);
    const std::uint32_t factor_bytes = k * 8;
    const std::uint32_t lines_per_factor =
        (factor_bytes + params_.cache.l1.lineBytes - 1) /
        params_.cache.l1.lineBytes;

    // One epoch replayed (epochs are identical sweeps).
    double cycles = 0.0;
    std::uint64_t edge_cursor = kEdgeBase;
    for (const Edge &e : ratings.edges()) {
        cycles += cache.access(edge_cursor);
        edge_cursor += kEdgeBytes;
        for (std::uint32_t l = 0; l < lines_per_factor; ++l) {
            cycles += cache.access(
                kSrcPropBase +
                static_cast<std::uint64_t>(e.src) * factor_bytes +
                l * params_.cache.l1.lineBytes);
            cycles += cache.access(
                kFactorBase +
                static_cast<std::uint64_t>(e.dst) * factor_bytes +
                l * params_.cache.l1.lineBytes);
        }
        // 2K MACs for the prediction plus 4K for the two updates.
        cycles += 6.0 * k * params_.cyclesPerMac;
    }

    const double epochs = static_cast<double>(cf.epochs);
    report.edgesProcessed = ratings.numEdges() * cf.epochs;
    report.sequentialBytes =
        ratings.numEdges() * static_cast<std::uint64_t>(kEdgeBytes) *
        cf.epochs;
    report.randomAccesses =
        2ull * lines_per_factor * ratings.numEdges() * cf.epochs;

    CacheStats stats = cache.stats();
    stats.dramAccesses = static_cast<std::uint64_t>(
        static_cast<double>(stats.dramAccesses) * epochs);
    const double seconds = cyclesToSeconds(cycles * epochs);
    finalize(report, seconds, stats);
    return report;
}

} // namespace graphr
