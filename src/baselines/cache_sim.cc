#include "cache_sim.hh"

#include "common/logging.hh"

namespace graphr
{

CacheStats &
CacheStats::operator+=(const CacheStats &other)
{
    accesses += other.accesses;
    l1Hits += other.l1Hits;
    l2Hits += other.l2Hits;
    l3Hits += other.l3Hits;
    dramAccesses += other.dramAccesses;
    cycles += other.cycles;
    return *this;
}

CacheLevel::CacheLevel(const CacheLevelParams &params) : params_(params)
{
    GRAPHR_ASSERT(params_.lineBytes > 0 && params_.associativity > 0,
                  "bad cache level parameters");
    numSets_ = params_.sizeBytes /
               (static_cast<std::uint64_t>(params_.lineBytes) *
                params_.associativity);
    GRAPHR_ASSERT(numSets_ > 0, "cache too small for its associativity");
    tags_.assign(numSets_ * params_.associativity, 0);
    stamps_.assign(numSets_ * params_.associativity, 0);
}

void
CacheLevel::reset()
{
    std::fill(tags_.begin(), tags_.end(), 0);
    std::fill(stamps_.begin(), stamps_.end(), 0);
    clock_ = 0;
}

bool
CacheLevel::access(std::uint64_t line_addr)
{
    // Tag 0 marks invalid entries; offset stored tags by 1.
    const std::uint64_t tag = line_addr + 1;
    const std::uint64_t set = line_addr % numSets_;
    const std::size_t base = set * params_.associativity;
    ++clock_;

    std::size_t victim = base;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < params_.associativity; ++w) {
        const std::size_t idx = base + w;
        if (tags_[idx] == tag) {
            stamps_[idx] = clock_;
            return true;
        }
        if (stamps_[idx] < oldest) {
            oldest = stamps_[idx];
            victim = idx;
        }
    }
    tags_[victim] = tag;
    stamps_[victim] = clock_;
    return false;
}

CacheHierarchy::CacheHierarchy(const CacheHierarchyParams &params)
    : params_(params), l1_(params.l1), l2_(params.l2), l3_(params.l3)
{
}

void
CacheHierarchy::reset()
{
    l1_.reset();
    l2_.reset();
    l3_.reset();
    stats_ = CacheStats{};
}

std::uint32_t
CacheHierarchy::access(std::uint64_t byte_addr)
{
    const std::uint64_t line = byte_addr / params_.l1.lineBytes;
    ++stats_.accesses;
    std::uint32_t latency = l1_.hitCycles();
    if (l1_.access(line)) {
        ++stats_.l1Hits;
    } else {
        latency += l2_.hitCycles();
        if (l2_.access(line)) {
            ++stats_.l2Hits;
        } else {
            latency += l3_.hitCycles();
            if (l3_.access(line)) {
                ++stats_.l3Hits;
            } else {
                latency += params_.dramCycles;
                ++stats_.dramAccesses;
            }
        }
    }
    stats_.cycles += latency;
    return latency;
}

} // namespace graphr
