#include "gpu_model.hh"

#include "algorithms/traversal.hh"
#include "algorithms/wcc.hh"
#include "common/logging.hh"
#include "graph/csr.hh"

namespace graphr
{

namespace
{

constexpr double kEdgeBytes = 8.0;   ///< packed (dst, weight) in CSR
constexpr double kVertexBytes = 8.0; ///< property + frontier flag

} // namespace

GpuModel::GpuModel(GpuParams params) : params_(params)
{
    GRAPHR_ASSERT(params_.bandwidthEfficiency > 0.0 &&
                      params_.bandwidthEfficiency <= 1.0,
                  "bad bandwidth efficiency");
}

double
GpuModel::transferSeconds(const CooGraph &graph) const
{
    const double bytes =
        static_cast<double>(graph.numEdges()) * 12.0 +
        static_cast<double>(graph.numVertices()) * kVertexBytes;
    return bytes / (params_.pcieBandwidthGBs * 1e9);
}

void
GpuModel::finalize(BaselineReport &report, double kernel_seconds,
                   double transfer_seconds) const
{
    report.seconds = kernel_seconds + transfer_seconds;
    report.joules = params_.boardWatts * kernel_seconds +
                    params_.idleWatts * transfer_seconds;
}

BaselineReport
GpuModel::runPageRank(const CooGraph &graph, std::uint64_t iterations)
{
    BaselineReport report;
    report.platform = "gpu";
    report.algorithm = "pagerank";
    report.iterations = iterations;
    report.edgesProcessed = graph.numEdges() * iterations;

    // Per iteration: stream all edges, gather source ranks (random,
    // transaction-wasteful), update destination sums.
    const double bytes_per_iter =
        static_cast<double>(graph.numEdges()) *
            (kEdgeBytes + 8.0 * params_.randomTransactionWaste) +
        static_cast<double>(graph.numVertices()) * 2.0 * kVertexBytes;
    const double bw = params_.memBandwidthGBs * 1e9 *
                      params_.bandwidthEfficiency;
    const double kernel_s =
        static_cast<double>(iterations) *
        (bytes_per_iter / bw + params_.kernelLaunchUs * 1e-6);
    report.sequentialBytes = static_cast<std::uint64_t>(
        bytes_per_iter * static_cast<double>(iterations));
    finalize(report, kernel_s, transferSeconds(graph));
    return report;
}

BaselineReport
GpuModel::runSpmv(const CooGraph &graph)
{
    BaselineReport report = runPageRank(graph, 1);
    report.algorithm = "spmv";
    return report;
}

namespace
{

BaselineReport
gpuRelaxation(const CooGraph &graph, RelaxationSweep &sweep,
              const char *name, const GpuParams &params)
{
    BaselineReport report;
    report.platform = "gpu";
    report.algorithm = name;

    // Replay the synchronous rounds to obtain per-round frontier and
    // edge volumes (Gunrock advance+filter).
    CsrGraph out(graph, CsrGraph::Direction::kOut);
    const double bw = params.memBandwidthGBs * 1e9 *
                      params.bandwidthEfficiency;

    double kernel_s = 0.0;
    double bytes_total = 0.0;
    while (!sweep.done()) {
        const std::vector<bool> &active = sweep.active();
        std::uint64_t frontier_edges = 0;
        std::uint64_t frontier_vertices = 0;
        for (VertexId u = 0; u < graph.numVertices(); ++u) {
            if (!active[u])
                continue;
            ++frontier_vertices;
            frontier_edges += out.degree(u);
        }
        // Advance reads frontier edges + labels (random gathers pay
        // the transaction waste), filter compacts the new frontier;
        // re-relaxations and atomic serialisation inflate the work.
        const double bytes =
            (static_cast<double>(frontier_edges) *
                 (kEdgeBytes + 8.0 * params.randomTransactionWaste) +
             static_cast<double>(frontier_vertices) * kVertexBytes *
                 3.0) *
            params.traversalWorkInflation;
        kernel_s += bytes / bw + 2.0 * params.kernelLaunchUs * 1e-6;
        bytes_total += bytes;
        report.edgesProcessed += frontier_edges;
        ++report.iterations;
        sweep.step();
    }
    report.sequentialBytes = static_cast<std::uint64_t>(bytes_total);

    const double transfer_bytes =
        static_cast<double>(graph.numEdges()) * 12.0 +
        static_cast<double>(graph.numVertices()) * kVertexBytes;
    const double transfer_s =
        transfer_bytes / (params.pcieBandwidthGBs * 1e9);
    report.seconds = kernel_s + transfer_s;
    report.joules =
        params.boardWatts * kernel_s + params.idleWatts * transfer_s;
    return report;
}

} // namespace

BaselineReport
GpuModel::runBfs(const CooGraph &graph, VertexId source)
{
    RelaxationSweep sweep(graph, source, /*unit_weights=*/true);
    return gpuRelaxation(graph, sweep, "bfs", params_);
}

BaselineReport
GpuModel::runSssp(const CooGraph &graph, VertexId source)
{
    RelaxationSweep sweep(graph, source, /*unit_weights=*/false);
    return gpuRelaxation(graph, sweep, "sssp", params_);
}

BaselineReport
GpuModel::runWcc(const CooGraph &graph)
{
    const CooGraph sym = symmetrize(graph);
    RelaxationSweep sweep = makeWccSweep(sym);
    return gpuRelaxation(sym, sweep, "wcc", params_);
}

BaselineReport
GpuModel::runCf(const CooGraph &ratings, const CfParams &cf)
{
    BaselineReport report;
    report.platform = "gpu";
    report.algorithm = "cf";
    report.iterations = static_cast<std::uint64_t>(cf.epochs);
    report.edgesProcessed = ratings.numEdges() * cf.epochs;

    const double k = static_cast<double>(cf.featureLength);
    // Per epoch: SGD update throughput (latency/atomic-bound, see
    // GpuParams::sgdUpdatesPerSecond) against factor-row traffic.
    const double bytes =
        static_cast<double>(ratings.numEdges()) *
        (kEdgeBytes + 3.0 * k * 4.0); // fp32 factors, read+write
    const double compute_s = static_cast<double>(ratings.numEdges()) /
                             params_.sgdUpdatesPerSecond;
    const double memory_s = bytes / (params_.memBandwidthGBs * 1e9 *
                                     params_.bandwidthEfficiency);
    const double kernel_s = static_cast<double>(cf.epochs) *
                            (std::max(compute_s, memory_s) +
                             params_.kernelLaunchUs * 1e-6);
    report.sequentialBytes = static_cast<std::uint64_t>(
        bytes * static_cast<double>(cf.epochs));
    finalize(report, kernel_s, transferSeconds(ratings));
    return report;
}

} // namespace graphr
