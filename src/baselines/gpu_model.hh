/**
 * @file
 * GPU baseline: analytical model of Gunrock/CuMF on a Tesla K40c
 * (paper Table 5, section 5.5).
 *
 * Graph kernels on this GPU are memory-bandwidth bound, so the model
 * is a roofline over per-iteration byte traffic with an achievable-
 * bandwidth efficiency factor, plus per-kernel launch overhead and
 * the host-to-device PCIe transfer the paper explicitly counts
 * against the GPU ("with considering the data transfer time between
 * CPU memory and GPU memory — an overhead GraphR does not incur").
 * CF is additionally bounded by SGEMM-like compute throughput.
 * Energy is board power times busy time (the paper reads it from
 * nvidia-smi).
 */

#ifndef GRAPHR_BASELINES_GPU_MODEL_HH
#define GRAPHR_BASELINES_GPU_MODEL_HH

#include "algorithms/collaborative_filtering.hh"
#include "baselines/baseline_report.hh"
#include "graph/coo.hh"

namespace graphr
{

/** GPU platform parameters (defaults: NVIDIA Tesla K40c). */
struct GpuParams
{
    double memBandwidthGBs = 288.0;
    /**
     * Achievable bandwidth fraction for graph kernels on Kepler:
     * irregular access streams reach a quarter of peak in practice.
     */
    double bandwidthEfficiency = 0.18;
    /**
     * Wasted-fetch multiplier on random vertex gathers: an 8-byte
     * property read costs a 32-byte minimum GDDR transaction, and
     * Kepler-class coalescing recovers little of it on graph
     * frontiers.
     */
    double randomTransactionWaste = 4.0;
    double peakSpTflops = 4.29;
    /**
     * Achieved SGD update throughput for CF (CuMF_SGD class on
     * Kepler): latency- and atomic-bound, far below the flop peak.
     */
    double sgdUpdatesPerSecond = 1.2e8;
    double pcieBandwidthGBs = 12.0;
    double kernelLaunchUs = 15.0;
    double boardWatts = 235.0;
    double idleWatts = 25.0; ///< charged during PCIe transfer
    /**
     * Work inflation for BFS/SSSP: Gunrock's delta-stepping-style
     * relaxation re-visits edges and its atomic label updates
     * serialise within warps, multiplying the useful traffic.
     */
    double traversalWorkInflation = 3.5;
};

/** Analytical Gunrock-like GPU execution model. */
class GpuModel
{
  public:
    explicit GpuModel(GpuParams params = GpuParams{});

    const GpuParams &params() const { return params_; }

    BaselineReport runPageRank(const CooGraph &graph,
                               std::uint64_t iterations);
    BaselineReport runSpmv(const CooGraph &graph);
    BaselineReport runBfs(const CooGraph &graph, VertexId source);
    BaselineReport runSssp(const CooGraph &graph, VertexId source);
    BaselineReport runWcc(const CooGraph &graph);
    BaselineReport runCf(const CooGraph &ratings, const CfParams &params);

  private:
    /** Host-to-device transfer time for the graph, in seconds. */
    double transferSeconds(const CooGraph &graph) const;

    /** Finish time/energy accounting. */
    void finalize(BaselineReport &report, double kernel_seconds,
                  double transfer_seconds) const;

    GpuParams params_;
};

} // namespace graphr

#endif // GRAPHR_BASELINES_GPU_MODEL_HH
