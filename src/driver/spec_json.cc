#include "spec_json.hh"

#include <algorithm>

namespace graphr::driver
{

namespace
{

/** Accumulates which members were consumed so unknowns are errors. */
class MemberReader
{
  public:
    MemberReader(const JsonValue &object,
                 const std::vector<std::string> &extra_keys)
        : object_(object), consumed_(extra_keys)
    {
    }

    /** The member value, or nullptr when absent; marks it consumed. */
    const JsonValue *
    find(const std::string &key)
    {
        consumed_.push_back(key);
        return object_.find(key);
    }

    /** Throw DriverError on any member no reader asked about. */
    void
    rejectUnknown(const std::string &context) const
    {
        for (const auto &[key, value] : object_.members()) {
            if (std::find(consumed_.begin(), consumed_.end(), key) ==
                consumed_.end()) {
                std::string msg = context + ": unknown member '" +
                                  key + "' (accepted:";
                for (const std::string &k : consumed_)
                    msg += " " + k;
                msg += ")";
                throw DriverError(msg);
            }
        }
    }

  private:
    const JsonValue &object_;
    std::vector<std::string> consumed_;
};

/** Wrap the reader's type errors in driver terms. */
[[noreturn]] void
badType(const std::string &key, const JsonValue &value,
        const char *expected)
{
    throw DriverError("member '" + key + "' must be a " + expected +
                      ", got " + value.typeName());
}

std::string
asStringField(const std::string &key, const JsonValue &value)
{
    if (!value.isString())
        badType(key, value, "string");
    return value.asString();
}

/**
 * Read a name list from the singular ("workload": "x") or plural
 * ("workloads": ["x", "y"]) member. Both present is an error; both
 * absent keeps @p fallback.
 */
std::vector<std::string>
nameList(MemberReader &reader, const std::string &singular,
         const std::string &plural,
         const std::vector<std::string> &fallback)
{
    const JsonValue *one = reader.find(singular);
    const JsonValue *many = reader.find(plural);
    if (one != nullptr && many != nullptr)
        throw DriverError("give either '" + singular + "' or '" +
                          plural + "', not both");
    if (one != nullptr)
        return {asStringField(singular, *one)};
    if (many == nullptr)
        return fallback;
    if (!many->isArray())
        badType(plural, *many, "array of strings");
    std::vector<std::string> names;
    for (const JsonValue &item : many->items()) {
        if (!item.isString())
            badType(plural, item, "array of strings");
        names.push_back(item.asString());
    }
    if (names.empty())
        throw DriverError("member '" + plural + "' must not be empty");
    return names;
}

/** "params": {"damping": 0.85, "source": 3} -> ParamMap. */
ParamMap
paramsFromJson(const JsonValue &params)
{
    if (!params.isObject())
        throw DriverError("member 'params' must be an object of "
                          "string/number/bool values, got " +
                          std::string(params.typeName()));
    ParamMap map;
    for (const auto &[key, value] : params.members()) {
        if (value.isString()) {
            map.set(key, value.asString());
        } else if (value.isNumber()) {
            // The raw token keeps the user's spelling, so ParamMap's
            // typed reads see exactly what a --param flag would.
            map.set(key, value.numberToken());
        } else if (value.isBool()) {
            map.set(key, value.asBool() ? "true" : "false");
        } else {
            throw DriverError("param '" + key +
                              "' must be a string, number or bool, "
                              "got " +
                              std::string(value.typeName()));
        }
    }
    return map;
}

double
scaleFromJson(const std::string &key, const JsonValue &value)
{
    if (!value.isNumber())
        badType(key, value, "number");
    const double scale = value.asDouble();
    // Negated form so NaN is rejected too (matches the CLI).
    if (!(scale >= 1.0))
        throw DriverError("member 'scale' must be >= 1");
    return scale;
}

std::uint64_t
u64FromJson(const std::string &key, const JsonValue &value)
{
    try {
        return value.asU64();
    } catch (const JsonParseError &err) {
        throw DriverError("member '" + key + "': " + err.what());
    }
}

} // namespace

SweepSpec
sweepSpecFromJson(const JsonValue &request, bool single,
                  const std::vector<std::string> &extraKeys)
{
    if (!request.isObject())
        throw DriverError("a request must be a JSON object, got " +
                          std::string(request.typeName()));
    MemberReader reader(request, extraKeys);
    SweepSpec spec;
    spec.workloads =
        nameList(reader, "workload", "workloads", {"pagerank"});
    spec.backends = nameList(reader, "backend", "backends", {"graphr"});
    spec.datasets = nameList(reader, "dataset", "datasets", {});
    if (spec.datasets.empty())
        throw DriverError("a run/sweep request needs 'dataset' or "
                          "'datasets'");

    if (const JsonValue *params = reader.find("params"))
        spec.params = paramsFromJson(*params);
    if (const JsonValue *scale = reader.find("scale"))
        spec.scale = scaleFromJson("scale", *scale);
    if (const JsonValue *seed = reader.find("seed"))
        spec.seed = u64FromJson("seed", *seed);
    if (const JsonValue *nodes = reader.find("nodes")) {
        const std::uint64_t n = u64FromJson("nodes", *nodes);
        if (n == 0 || n > 65536)
            throw DriverError("member 'nodes' must be in [1, 65536]");
        spec.backendOptions.numNodes = static_cast<std::uint32_t>(n);
    }
    if (const JsonValue *functional = reader.find("functional")) {
        if (!functional->isBool())
            badType("functional", *functional, "bool");
        spec.backendOptions.config.functional = functional->asBool();
    }
    reader.rejectUnknown(single ? "run request" : "sweep request");

    // Unknown workload/backend names fail here, at admission, so the
    // requester gets the structured error before anything executes.
    spec.workloads = expandWorkloadNames(spec.workloads);
    spec.backends = expandBackendNames(spec.backends);

    if (single && (spec.workloads.size() != 1 ||
                   spec.backends.size() != 1 ||
                   spec.datasets.size() != 1)) {
        throw DriverError(
            "a run request names exactly one workload x backend x "
            "dataset combination (use type 'sweep' for lists)");
    }
    return spec;
}

PrepareSpec
prepareSpecFromJson(const JsonValue &request,
                    const std::vector<std::string> &extraKeys)
{
    if (!request.isObject())
        throw DriverError("a request must be a JSON object, got " +
                          std::string(request.typeName()));
    MemberReader reader(request, extraKeys);
    PrepareSpec spec;
    spec.datasets = nameList(reader, "dataset", "datasets", {});
    if (spec.datasets.empty())
        throw DriverError("a prepare request needs 'dataset' or "
                          "'datasets'");
    if (const JsonValue *scale = reader.find("scale"))
        spec.scale = scaleFromJson("scale", *scale);
    if (const JsonValue *seed = reader.find("seed"))
        spec.seed = u64FromJson("seed", *seed);
    if (const JsonValue *symmetrized = reader.find("symmetrized")) {
        if (!symmetrized->isBool())
            badType("symmetrized", *symmetrized, "bool");
        spec.symmetrized = symmetrized->asBool();
    }
    reader.rejectUnknown("prepare request");
    return spec;
}

void
rejectUnknownMembers(const JsonValue &request,
                     const std::vector<std::string> &accepted,
                     const std::string &context)
{
    MemberReader(request, accepted).rejectUnknown(context);
}

} // namespace graphr::driver
