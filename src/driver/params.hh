/**
 * @file
 * key=value parameter maps for the workload driver.
 *
 * CLI flags like `--param damping=0.85` and spec strings like
 * `rmat:vertices=1024,edges=8192` both reduce to a ParamMap: an
 * ordered set of string key/value pairs with typed accessors. Reads
 * are tracked so callers can reject unknown keys — a misspelled
 * parameter must be an error, not a silently ignored default.
 *
 * Driver-layer user errors throw DriverError (instead of the
 * simulator's GRAPHR_FATAL exit) so the CLI can print clean messages
 * and tests can assert on the error paths.
 */

#ifndef GRAPHR_DRIVER_PARAMS_HH
#define GRAPHR_DRIVER_PARAMS_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace graphr::driver
{

/** User-facing driver error (bad name, malformed spec, bad value). */
class DriverError : public std::runtime_error
{
  public:
    explicit DriverError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Split on a delimiter, dropping empty parts ("a,,b" -> {a, b}). */
std::vector<std::string> splitList(const std::string &text,
                                   char delim = ',');

/** Ordered key=value map with typed, consumption-tracked reads. */
class ParamMap
{
  public:
    ParamMap() = default;

    /**
     * Parse "k1=v1,k2=v2". Empty string yields an empty map.
     * Throws DriverError on entries without '=' or with empty keys;
     * duplicate keys: last one wins.
     */
    static ParamMap parse(const std::string &text);

    /** Insert/overwrite one pair. */
    void set(const std::string &key, const std::string &value);

    /** Merge other's pairs over this map's. */
    void merge(const ParamMap &other);

    bool has(const std::string &key) const;
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    /** Typed reads; return the default when the key is absent and
     *  throw DriverError when the value does not parse. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;
    double getDouble(const std::string &key, double def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    std::uint64_t getU64(const std::string &key, std::uint64_t def) const;
    bool getBool(const std::string &key, bool def) const;

    /** Range-checked 32-bit reads (values that feed int/VertexId
     *  fields); out-of-range values throw instead of wrapping. */
    std::int32_t getInt32(const std::string &key, std::int32_t def) const;
    std::uint32_t getU32(const std::string &key, std::uint32_t def) const;

    /** Keys never read by any typed accessor, in insertion order. */
    std::vector<std::string> unreadKeys() const;

    /**
     * Throw DriverError listing unread keys, if any. `context` names
     * what was being parsed (e.g. "workload pagerank").
     */
    void rejectUnread(const std::string &context) const;

    /** All keys in insertion order (read or not). */
    std::vector<std::string> keys() const;

  private:
    struct Entry
    {
        std::string key;
        std::string value;
        mutable bool read = false;
    };

    const Entry *find(const std::string &key) const;

    std::vector<Entry> entries_;
};

} // namespace graphr::driver

#endif // GRAPHR_DRIVER_PARAMS_HH
