/**
 * @file
 * Argument parsing for the graphr_run CLI.
 *
 * Kept out of the binary's main() so the parser is unit-testable:
 * parseCli() maps an argv vector onto a SweepSpec plus output
 * options, throwing DriverError on anything malformed.
 */

#ifndef GRAPHR_DRIVER_CLI_HH
#define GRAPHR_DRIVER_CLI_HH

#include <algorithm>
#include <string>
#include <vector>

#include "driver/driver.hh"
#include "driver/prepare.hh"

namespace graphr::driver
{

/** What a graphr_run invocation asks for. */
enum class CliCommand
{
    kRun,          ///< default: execute a run/sweep
    kPrepare,      ///< offline preprocessing into a plan store
    kStoreStats,   ///< list a plan store's artifacts
    kBench,        ///< run a perf suite, emit BENCH_*.json
    kBenchCompare, ///< diff two BENCH files (the regression gate)
};

/** Parsed graphr_run invocation. */
struct CliOptions
{
    CliCommand command = CliCommand::kRun;
    SweepSpec sweep;
    /** Prepare subcommand spec (kPrepare; shares the flag surface). */
    PrepareSpec prepare;

    /** Bench subcommand (kBench): suite + repetition policy. Plain
     *  fields (not perf::SuiteOptions) keep driver/ free of a perf/
     *  dependency; apps/graphr_run.cc does the mapping. */
    std::string benchSuite = "small";
    unsigned benchReps = 5;
    unsigned benchWarmups = 1;

    /** Bench compare subcommand (kBenchCompare). */
    std::string compareOldPath;
    std::string compareNewPath;
    double compareThresholdPct = 10.0;
    bool compareGateAll = false;

    /** Write the JSON report here ("" = no file, "-" = stdout). */
    std::string outPath;
    /** Print the workload x backend seconds matrix after a sweep. */
    bool matrix = false;
    /** List registries and exit. */
    bool list = false;
    /** Print usage and exit. */
    bool help = false;

    /** True when the spec names more than one combination. */
    bool
    isSweep() const
    {
        const auto has_all = [](const std::vector<std::string> &v) {
            return std::find(v.begin(), v.end(), "all") != v.end();
        };
        return sweep.datasets.size() > 1 ||
               sweep.workloads.size() > 1 ||
               sweep.backends.size() > 1 || has_all(sweep.workloads) ||
               has_all(sweep.backends);
    }
};

/**
 * Parse CLI arguments (argv without the program name).
 *
 * Subcommands (first non-flag argument):
 *   prepare             offline preprocessing: write plan artifacts
 *                       for every --dataset into --plan-dir
 *   store stats         list the artifacts in --plan-dir
 *   bench               run a perf suite (--suite/--reps/--warmups),
 *                       write BENCH json to --out
 *   bench compare OLD NEW  diff two BENCH files; --threshold PCT and
 *                       --gate-all set the gate policy
 * Unknown subcommands are a DriverError naming the known ones.
 *
 * Flags:
 *   --algo a[,b...]     workloads ("all" = whole registry)
 *   --backend a[,b...]  backends ("all" = whole registry)
 *   --dataset spec      dataset spec; repeat the flag for several
 *                       (specs contain commas, so no comma-splitting)
 *   --param k=v         workload parameter; repeatable
 *   --scale f           Table-3 dataset scale divisor (>= 1)
 *   --seed n            generator seed
 *   --jobs n            parallel sweep workers (0 = hardware threads)
 *   --nodes n           cluster size for the multinode backend
 *   --functional        run GraphR backends in functional mode
 *   --plan-dir path     durable plan store directory (see store/)
 *   --out path          write the JSON report ("-" = stdout)
 *   --matrix            print the workload x backend seconds matrix
 *   --list              list workloads/backends/datasets and exit
 *   --help              usage
 */
CliOptions parseCli(const std::vector<std::string> &args);

/** Usage text for --help and error messages. */
std::string usageText();

/** Registry listing for --list. */
std::string listText();

} // namespace graphr::driver

#endif // GRAPHR_DRIVER_CLI_HH
