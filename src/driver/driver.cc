#include "driver.hh"

#include <algorithm>

namespace graphr::driver
{

namespace
{

std::vector<std::string>
expandNames(const std::vector<std::string> &names,
            const std::vector<std::string> &registry,
            const std::string &what)
{
    std::vector<std::string> out;
    for (const std::string &name : names) {
        if (name == "all") {
            for (const std::string &r : registry) {
                if (std::find(out.begin(), out.end(), r) == out.end())
                    out.push_back(r);
            }
            continue;
        }
        if (std::find(registry.begin(), registry.end(), name) ==
            registry.end()) {
            std::string msg =
                "unknown " + what + " '" + name + "' (known:";
            for (const std::string &r : registry)
                msg += " " + r;
            msg += ")";
            throw DriverError(msg);
        }
        if (std::find(out.begin(), out.end(), name) == out.end())
            out.push_back(name);
    }
    if (out.empty())
        throw DriverError("no " + what + " selected");
    return out;
}

} // namespace

std::vector<std::string>
expandWorkloadNames(const std::vector<std::string> &names)
{
    return expandNames(names, allWorkloadNames(), "workload");
}

std::vector<std::string>
expandBackendNames(const std::vector<std::string> &names)
{
    return expandNames(names, allBackendNames(), "backend");
}

RunResult
runOne(const RunSpec &spec)
{
    const Workload workload = makeWorkload(spec.workload, spec.params);
    const ResolvedDataset dataset =
        resolveDataset(spec.dataset, spec.scale, spec.seed);
    const std::unique_ptr<Backend> backend =
        makeBackend(spec.backend, spec.backendOptions);
    return backend->run(workload, dataset);
}

std::vector<RunResult>
runSweep(const SweepSpec &spec, std::ostream *progress)
{
    if (spec.datasets.empty())
        throw DriverError("sweep needs at least one dataset");

    const std::vector<std::string> workload_names =
        expandWorkloadNames(spec.workloads);
    const std::vector<std::string> backend_names =
        expandBackendNames(spec.backends);

    // Validate every name and parse parameters before the first
    // (possibly expensive) run.
    std::vector<Workload> workloads;
    for (const std::string &name : workload_names)
        workloads.push_back(makeWorkload(name, spec.params));
    std::vector<std::unique_ptr<Backend>> backends;
    for (const std::string &name : backend_names)
        backends.push_back(makeBackend(name, spec.backendOptions));

    std::vector<RunResult> results;
    for (const std::string &dataset_spec : spec.datasets) {
        const ResolvedDataset dataset =
            resolveDataset(dataset_spec, spec.scale, spec.seed);
        for (const Workload &workload : workloads) {
            for (const std::unique_ptr<Backend> &backend : backends) {
                if (progress) {
                    *progress << "running " << workload.name << " x "
                              << backend->name() << " x "
                              << dataset.name << " ..." << std::endl;
                }
                results.push_back(backend->run(workload, dataset));
            }
        }
    }
    return results;
}

} // namespace graphr::driver
