#include "driver.hh"

#include <algorithm>
#include <exception>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/thread_pool.hh"
#include "graphr/engine/plan_cache.hh"

namespace graphr::driver
{

namespace
{

std::vector<std::string>
expandNames(const std::vector<std::string> &names,
            const std::vector<std::string> &registry,
            const std::string &what)
{
    std::vector<std::string> out;
    for (const std::string &name : names) {
        if (name == "all") {
            for (const std::string &r : registry) {
                if (std::find(out.begin(), out.end(), r) == out.end())
                    out.push_back(r);
            }
            continue;
        }
        if (std::find(registry.begin(), registry.end(), name) ==
            registry.end()) {
            std::string msg =
                "unknown " + what + " '" + name + "' (known:";
            for (const std::string &r : registry)
                msg += " " + r;
            msg += ")";
            throw DriverError(msg);
        }
        if (std::find(out.begin(), out.end(), name) == out.end())
            out.push_back(name);
    }
    if (out.empty())
        throw DriverError("no " + what + " selected");
    return out;
}

/**
 * One progress line, built off-stream and written in a single
 * mutex-guarded call so concurrent workers never interleave
 * mid-line. Byte-identical to the serial "running ... ..." + endl.
 */
void
announceRun(std::ostream *progress, std::mutex &progress_mutex,
            const std::string &workload, const std::string &backend,
            const std::string &dataset)
{
    if (progress == nullptr)
        return;
    std::ostringstream line;
    line << "running " << workload << " x " << backend << " x "
         << dataset << " ...\n";
    const std::lock_guard<std::mutex> lock(progress_mutex);
    *progress << line.str() << std::flush;
}

/**
 * Per-sweep dataset memo: each distinct dataset spec is resolved by
 * exactly one worker (std::call_once); everyone else blocks on that
 * slot instead of re-generating the graph. A resolution error is
 * captured and rethrown to every requester.
 */
struct DatasetSlot
{
    std::once_flag once;
    std::shared_ptr<const ResolvedDataset> value;
    std::exception_ptr error;
};

/** The sweep cross product, dataset-major (the serial loop order). */
struct Combo
{
    std::size_t dataset = 0;
    std::size_t workload = 0;
    std::size_t backend = 0;
};

std::vector<RunResult>
runSweepParallel(const SweepSpec &spec,
                 const std::vector<std::string> &workload_names,
                 const std::vector<Workload> &workloads,
                 const std::vector<std::string> &backend_names,
                 unsigned jobs, std::ostream *progress)
{
    std::vector<Combo> combos;
    combos.reserve(spec.datasets.size() * workloads.size() *
                   backend_names.size());
    for (std::size_t d = 0; d < spec.datasets.size(); ++d)
        for (std::size_t w = 0; w < workloads.size(); ++w)
            for (std::size_t b = 0; b < backend_names.size(); ++b)
                combos.push_back(Combo{d, w, b});

    std::vector<DatasetSlot> slots(spec.datasets.size());
    const auto ensureDataset =
        [&spec, &slots](std::size_t d)
        -> std::shared_ptr<const ResolvedDataset> {
        DatasetSlot &slot = slots[d];
        std::call_once(slot.once, [&spec, &slot, d] {
            try {
                slot.value = std::make_shared<const ResolvedDataset>(
                    resolveDataset(spec.datasets[d], spec.scale,
                                   spec.seed));
            } catch (...) {
                slot.error = std::current_exception();
            }
        });
        if (slot.error)
            std::rethrow_exception(slot.error);
        return slot.value;
    };

    // Each worker writes only its own pre-assigned result slot, so
    // the merged vector comes out in spec order regardless of which
    // worker finishes first — the JSON/table output is byte-identical
    // to the serial path.
    std::vector<RunResult> results(combos.size());
    std::vector<std::exception_ptr> errors(combos.size());
    std::mutex progress_mutex;
    {
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(jobs, combos.size())));
        for (std::size_t i = 0; i < combos.size(); ++i) {
            pool.submit([&, i] {
                const Combo &combo = combos[i];
                try {
                    const std::shared_ptr<const ResolvedDataset>
                        dataset = ensureDataset(combo.dataset);
                    announceRun(progress, progress_mutex,
                                workload_names[combo.workload],
                                backend_names[combo.backend],
                                dataset->name);
                    // A fresh backend per run: instances are cheap
                    // (configuration only) and private state keeps
                    // runs schedule-independent.
                    const std::unique_ptr<Backend> backend =
                        makeBackend(backend_names[combo.backend],
                                    spec.backendOptions);
                    results[i] =
                        backend->run(workloads[combo.workload],
                                     *dataset);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        }
        pool.wait();
    }

    // Deterministic error surface: the first failure in spec order
    // wins, matching what a serial sweep would have thrown.
    for (const std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return results;
}

} // namespace

std::vector<std::string>
expandWorkloadNames(const std::vector<std::string> &names)
{
    return expandNames(names, allWorkloadNames(), "workload");
}

std::vector<std::string>
expandBackendNames(const std::vector<std::string> &names)
{
    return expandNames(names, allBackendNames(), "backend");
}

void
installPlanStore(const StoreSpec &spec)
{
    // A request-scoped override (graphr_serve tenant namespaces) wins
    // over any spec-carried directory: the worker task has already
    // bound this thread to the tenant's store, and re-pointing the
    // process-wide store from under concurrent requests is exactly
    // the hazard the override exists to avoid.
    if (PlanCache::storeOverrideActive())
        return;
    if (spec.planDir.empty()) {
        PlanCache::instance().setStore(nullptr);
        return;
    }
    // Re-installing the directory that is already attached keeps the
    // resident store (and its cumulative statistics): a long-lived
    // graphr_serve process runs every request through here.
    const std::shared_ptr<PlanStore> current =
        PlanCache::instance().store();
    if (current && current->directory() == spec.planDir)
        return;
    try {
        PlanCache::instance().setStore(
            std::make_shared<PlanStore>(spec.planDir));
    } catch (const StoreError &err) {
        throw DriverError(std::string("cannot use --plan-dir: ") +
                          err.what());
    }
}

RunResult
runOne(const RunSpec &spec)
{
    installPlanStore(spec.store);
    const Workload workload = makeWorkload(spec.workload, spec.params);
    const ResolvedDataset dataset =
        resolveDataset(spec.dataset, spec.scale, spec.seed);
    const std::unique_ptr<Backend> backend =
        makeBackend(spec.backend, spec.backendOptions);
    return backend->run(workload, dataset);
}

std::vector<RunResult>
runSweep(const SweepSpec &spec, std::ostream *progress)
{
    if (spec.datasets.empty())
        throw DriverError("sweep needs at least one dataset");
    installPlanStore(spec.store);

    const std::vector<std::string> workload_names =
        expandWorkloadNames(spec.workloads);
    const std::vector<std::string> backend_names =
        expandBackendNames(spec.backends);

    // Validate every name and parse parameters before the first
    // (possibly expensive) run.
    std::vector<Workload> workloads;
    for (const std::string &name : workload_names)
        workloads.push_back(makeWorkload(name, spec.params));
    std::vector<std::unique_ptr<Backend>> backends;
    for (const std::string &name : backend_names)
        backends.push_back(makeBackend(name, spec.backendOptions));

    const unsigned jobs = ThreadPool::effectiveJobs(spec.jobs);
    if (jobs > 1) {
        return runSweepParallel(spec, workload_names, workloads,
                                backend_names, jobs, progress);
    }

    std::vector<RunResult> results;
    std::mutex progress_mutex;
    for (const std::string &dataset_spec : spec.datasets) {
        const ResolvedDataset dataset =
            resolveDataset(dataset_spec, spec.scale, spec.seed);
        for (const Workload &workload : workloads) {
            for (const std::unique_ptr<Backend> &backend : backends) {
                announceRun(progress, progress_mutex, workload.name,
                            backend->name(), dataset.name);
                results.push_back(backend->run(workload, dataset));
            }
        }
    }
    return results;
}

} // namespace graphr::driver
