/**
 * @file
 * Top-level workload driver: one entry point for any
 * algorithm x backend x dataset combination.
 *
 * runOne() executes a single combination; runSweep() cross-products
 * name lists (the "all" wildcard expands to the full registry) and
 * collects the unified results, which serialise to JSON or the text
 * table/matrix formats (run_result.hh). The graphr_run CLI is a thin
 * shell over these two calls, and benches/examples can use them
 * instead of hand-wiring graph -> config -> backend -> report.
 */

#ifndef GRAPHR_DRIVER_DRIVER_HH
#define GRAPHR_DRIVER_DRIVER_HH

#include <ostream>
#include <string>
#include <vector>

#include "driver/backend.hh"
#include "store/plan_store.hh"

namespace graphr::driver
{

/** One fully named run. */
struct RunSpec
{
    std::string workload = "pagerank";
    std::string backend = "graphr";
    std::string dataset = "rmat:vertices=1024,edges=8192";
    /** Workload key=value parameters (workload.hh). */
    ParamMap params;
    /** Scale divisor for Table-3 datasets. */
    double scale = 1.0;
    /** Generator seed for table/generator datasets. */
    std::uint64_t seed = 42;
    BackendOptions backendOptions;
    /** Durable plan store (--plan-dir); empty planDir = none. */
    StoreSpec store;
};

/** Execute one combination. Throws DriverError on bad names/params. */
RunResult runOne(const RunSpec &spec);

/** A cross-product of runs. */
struct SweepSpec
{
    /** Registry names; "all" anywhere expands to the whole registry. */
    std::vector<std::string> workloads = {"all"};
    std::vector<std::string> backends = {"all"};
    /** Dataset specs (dataset.hh); resolved once each. */
    std::vector<std::string> datasets;
    ParamMap params;
    double scale = 1.0;
    std::uint64_t seed = 42;
    BackendOptions backendOptions;
    /**
     * Worker threads executing the cross product (1 = serial,
     * 0 = hardware concurrency). Results are merged back in spec
     * order, so the output is byte-identical at any job count; every
     * run seeds its own RNGs, so results are independent of the
     * execution schedule.
     */
    std::uint32_t jobs = 1;
    /**
     * Durable plan store (--plan-dir): with a non-empty planDir every
     * backend's preprocessing goes through the on-disk second level
     * of PlanCache — cold runs write artifacts through, warm runs
     * skip the O(E log E) sort. Empty = in-memory caching only.
     */
    StoreSpec store;
};

/**
 * Run the full cross product, dataset-major. When `progress` is
 * non-null a one-line status is streamed per run (written atomically,
 * so parallel runs never interleave mid-line).
 */
std::vector<RunResult> runSweep(const SweepSpec &spec,
                                std::ostream *progress = nullptr);

/** Expand a name list: "all" -> registry, otherwise verify names. */
std::vector<std::string>
expandWorkloadNames(const std::vector<std::string> &names);
std::vector<std::string>
expandBackendNames(const std::vector<std::string> &names);

/**
 * Attach the described store to the process-wide PlanCache (detach
 * when planDir is empty). Called by runOne/runSweep/runPrepare; maps
 * an unusable directory onto DriverError with an actionable message.
 */
void installPlanStore(const StoreSpec &spec);

} // namespace graphr::driver

#endif // GRAPHR_DRIVER_DRIVER_HH
