/**
 * @file
 * Offline preprocessing driver: the `graphr_run prepare` and
 * `graphr_run store stats` subcommands.
 *
 * `prepare` performs the paper's offline step ahead of time: resolve
 * each dataset, run the streaming-apply preprocessing, and persist
 * the TilePlan artifacts into a plan store — in parallel across
 * datasets over the shared ThreadPool. A later online run (any
 * backend) with the same --plan-dir then starts sort-free. Both the
 * plain and the symmetrised edge set are prepared, because WCC (and
 * the out-of-core selective scheduler) execute on the symmetrised
 * graph.
 */

#ifndef GRAPHR_DRIVER_PREPARE_HH
#define GRAPHR_DRIVER_PREPARE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "graph/partition.hh"
#include "store/plan_store.hh"

namespace graphr::driver
{

/** What `graphr_run prepare` should preprocess. */
struct PrepareSpec
{
    /** Dataset specs (dataset.hh), each prepared independently. */
    std::vector<std::string> datasets;
    /** Where artifacts go; planDir must be non-empty. */
    StoreSpec store;
    double scale = 1.0;
    std::uint64_t seed = 42;
    /** Parallel workers across datasets (0 = hardware threads). */
    std::uint32_t jobs = 1;
    /** Tiling to prepare for (defaults match GraphRConfig). */
    TilingParams tiling;
    /** Also prepare symmetrize(graph) (WCC / selective runs). */
    bool symmetrized = true;
};

/** Outcome of preparing one (dataset, variant). */
struct PrepareResult
{
    std::string dataset;     ///< canonical dataset name
    std::string variant;     ///< "plain" or "symmetrized"
    std::uint64_t fingerprint = 0;
    std::uint64_t edges = 0;
    std::uint64_t tiles = 0;
    bool reused = false; ///< a valid artifact already existed
    std::string file;    ///< artifact file name in the store
};

/**
 * Run the offline preprocessing for every dataset in @p spec,
 * writing artifacts through the plan store. Results come back in
 * spec order regardless of job count. Throws DriverError on bad
 * dataset specs or an unusable store directory.
 */
std::vector<PrepareResult> runPrepare(const PrepareSpec &spec,
                                      std::ostream *progress = nullptr);

/** Human-readable listing of every artifact in a store directory. */
std::string storeStatsText(const StoreSpec &store);

} // namespace graphr::driver

#endif // GRAPHR_DRIVER_PREPARE_HH
