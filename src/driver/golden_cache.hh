/**
 * @file
 * Golden-result cache for the workload driver.
 *
 * The three baseline backends (cpu/gpu/pim) take their PageRank
 * iteration count from the golden run so every backend converges
 * identically. Before this cache, a `--backend all` sweep recomputed
 * that golden PageRank once per baseline; now it is computed once per
 * (graph, parameters) and shared — the ROADMAP's "redundant golden
 * recomputation" open item.
 *
 * Keyed by the graph fingerprint (engine/tile_plan.hh) plus the
 * PageRank parameters, so any dataset spec that resolves to the same
 * graph shares one entry. Entries are shared_ptrs: eviction never
 * invalidates a result a caller still holds.
 */

#ifndef GRAPHR_DRIVER_GOLDEN_CACHE_HH
#define GRAPHR_DRIVER_GOLDEN_CACHE_HH

#include <cstdint>
#include <memory>

#include "algorithms/pagerank.hh"
#include "graph/coo.hh"

namespace graphr::driver
{

/** Hit/miss counters of the golden PageRank cache. */
struct GoldenCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

/**
 * Golden PageRank for (graph, params), computed once per key and
 * memoised process-wide.
 */
std::shared_ptr<const PageRankResult>
cachedGoldenPageRank(const CooGraph &graph, const PageRankParams &params);

GoldenCacheStats goldenCacheStats();

/** Drop all entries and reset the statistics. */
void clearGoldenCache();

} // namespace graphr::driver

#endif // GRAPHR_DRIVER_GOLDEN_CACHE_HH
