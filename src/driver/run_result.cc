#include "run_result.hh"

#include <algorithm>

#include "baselines/baseline_report.hh"
#include "common/json.hh"
#include "common/table.hh"
#include "graphr/multi_node.hh"
#include "graphr/out_of_core.hh"
#include "graphr/sim_report.hh"

namespace graphr::driver
{

void
RunResult::absorb(const SimReport &sim)
{
    seconds = sim.seconds;
    joules = sim.joules;
    iterations = sim.iterations;
    edgesProcessed = sim.edgesProcessed;
    addExtra("program_seconds", sim.programSeconds);
    addExtra("compute_seconds", sim.computeSeconds);
    addExtra("stream_seconds", sim.streamSeconds);
    addExtra("tiles_processed",
             static_cast<double>(sim.tilesProcessed));
    addExtra("tiles_skipped", static_cast<double>(sim.tilesSkipped));
    addExtra("occupancy", sim.occupancy);
}

void
RunResult::absorb(const BaselineReport &baseline)
{
    seconds = baseline.seconds;
    joules = baseline.joules;
    iterations = baseline.iterations;
    edgesProcessed = baseline.edgesProcessed;
    addExtra("sequential_bytes",
             static_cast<double>(baseline.sequentialBytes));
    addExtra("random_accesses",
             static_cast<double>(baseline.randomAccesses));
    if (baseline.dramAccesses > 0)
        addExtra("dram_accesses",
                 static_cast<double>(baseline.dramAccesses));
}

void
RunResult::absorb(const MultiNodeReport &multi)
{
    seconds = multi.seconds;
    joules = multi.joules;
    iterations = multi.iterations;
    addExtra("num_nodes", static_cast<double>(multi.numNodes));
    addExtra("comm_seconds", multi.commSeconds);
    addExtra("comm_joules", multi.commJoules);
    addExtra("comm_share", multi.commShare());
    if (!multi.nodeSweepSeconds.empty()) {
        const auto [lo, hi] =
            std::minmax_element(multi.nodeSweepSeconds.begin(),
                                multi.nodeSweepSeconds.end());
        addExtra("sweep_seconds_min", *lo);
        addExtra("sweep_seconds_max", *hi);
    }
}

void
RunResult::absorb(const OutOfCoreReport &ooc)
{
    seconds = ooc.totalSeconds;
    joules = ooc.totalJoules;
    iterations = ooc.node.iterations;
    edgesProcessed = ooc.node.edgesProcessed;
    addExtra("node_seconds", ooc.node.seconds);
    addExtra("disk_seconds", ooc.diskSeconds);
    addExtra("disk_joules", ooc.diskJoules);
    addExtra("num_blocks", static_cast<double>(ooc.numBlocks));
    addExtra("bytes_streamed",
             static_cast<double>(ooc.bytesStreamed));
}

void
RunResult::toJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("workload", workload);
    w.field("backend", backend);
    w.field("dataset", dataset);
    w.field("vertices", vertices);
    w.field("edges", edges);
    w.field("seconds", seconds);
    w.field("joules", joules);
    w.field("iterations", iterations);
    w.field("edges_processed", edgesProcessed);
    if (!extra.empty()) {
        w.key("extra");
        w.beginObject();
        for (const auto &[name, value] : extra)
            w.field(name, value);
        w.endObject();
    }
    w.endObject();
}

void
writeResultsJson(std::ostream &os, const std::vector<RunResult> &results)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("results");
    w.beginArray();
    for (const RunResult &r : results)
        r.toJson(w);
    w.endArray();
    w.endObject();
    os << "\n";
}

void
printResultsTable(std::ostream &os,
                  const std::vector<RunResult> &results)
{
    TextTable table;
    table.header({"workload", "backend", "dataset", "|V|", "|E|",
                  "seconds", "joules", "iters"});
    for (const RunResult &r : results) {
        table.row({r.workload, r.backend, r.dataset,
                   std::to_string(r.vertices), std::to_string(r.edges),
                   TextTable::sci(r.seconds), TextTable::sci(r.joules),
                   std::to_string(r.iterations)});
    }
    table.print(os);
}

void
printMatrix(std::ostream &os, const std::vector<RunResult> &results)
{
    // One matrix per dataset; preserve first-seen order on all axes.
    std::vector<std::string> datasets;
    std::vector<std::string> workloads;
    std::vector<std::string> backends;
    for (const RunResult &r : results) {
        if (std::find(datasets.begin(), datasets.end(), r.dataset) ==
            datasets.end())
            datasets.push_back(r.dataset);
        if (std::find(workloads.begin(), workloads.end(), r.workload) ==
            workloads.end())
            workloads.push_back(r.workload);
        if (std::find(backends.begin(), backends.end(), r.backend) ==
            backends.end())
            backends.push_back(r.backend);
    }

    bool first = true;
    for (const std::string &d : datasets) {
        if (!first)
            os << "\n";
        first = false;
        if (datasets.size() > 1)
            os << "dataset: " << d << "\n";

        TextTable table;
        std::vector<std::string> header = {"seconds"};
        header.insert(header.end(), backends.begin(), backends.end());
        table.header(header);
        for (const std::string &w : workloads) {
            std::vector<std::string> row = {w};
            for (const std::string &b : backends) {
                const auto it = std::find_if(
                    results.begin(), results.end(),
                    [&](const RunResult &r) {
                        return r.workload == w && r.backend == b &&
                               r.dataset == d;
                    });
                row.push_back(it == results.end()
                                  ? std::string("-")
                                  : TextTable::sci(it->seconds));
            }
            table.row(row);
        }
        table.print(os);
    }
}

} // namespace graphr::driver
