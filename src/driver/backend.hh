/**
 * @file
 * Backend registry: execution targets a workload can run on.
 *
 * One interface wraps every model in the repo:
 *  - "graphr"    single GraphR node (graphr/node)
 *  - "multinode" GraphR cluster with stripe partitioning
 *  - "outofcore" GraphR node + disk block streaming
 *  - "cpu"       GridGraph-style Xeon baseline
 *  - "gpu"       Gunrock/CuMF-style Tesla K40c baseline
 *  - "pim"       Tesseract-style HMC baseline
 *
 * Every backend accepts every registered workload, so a sweep can
 * cross-product the full algorithm x backend matrix (paper Tables
 * 2/4/5 in one invocation).
 */

#ifndef GRAPHR_DRIVER_BACKEND_HH
#define GRAPHR_DRIVER_BACKEND_HH

#include <memory>
#include <string>
#include <vector>

#include "baselines/cpu_model.hh"
#include "baselines/gpu_model.hh"
#include "baselines/pim_model.hh"
#include "driver/dataset.hh"
#include "driver/run_result.hh"
#include "driver/workload.hh"
#include "graphr/config.hh"
#include "graphr/multi_node.hh"
#include "graphr/out_of_core.hh"

namespace graphr::driver
{

/** Shared knobs for instantiating any backend. */
struct BackendOptions
{
    /** GraphR node configuration (graphr/multinode/outofcore). */
    GraphRConfig config;
    /** Cluster size for "multinode". */
    std::uint32_t numNodes = 4;
    LinkParams link;
    /** Disk model for "outofcore". */
    StorageParams storage;
    CpuParams cpu;
    GpuParams gpu;
    PimParams pim;
};

/** An execution target: runs a workload on a graph. */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** Registry name ("graphr", "cpu", ...). */
    virtual const std::string &name() const = 0;

    /**
     * Execute the workload on the dataset and return the unified
     * result (workload/backend/dataset/vertices/edges prefilled).
     * Throws DriverError on invalid requests (e.g. out-of-range
     * source vertex).
     */
    virtual RunResult run(const Workload &workload,
                          const ResolvedDataset &dataset) = 0;
};

/** Registry names, in canonical order. */
const std::vector<std::string> &allBackendNames();

/** Instantiate by name; throws DriverError listing valid names. */
std::unique_ptr<Backend> makeBackend(const std::string &name,
                                     const BackendOptions &options);

} // namespace graphr::driver

#endif // GRAPHR_DRIVER_BACKEND_HH
