/**
 * @file
 * Dataset resolver: one string names any graph the driver can run on.
 *
 * Accepted spec forms:
 *  - Table-3 names: "wiki-vote", "WV", "orkut", "netflix", ... —
 *    matched case-insensitively against the DatasetId table with
 *    '-'/'_' ignored; generated at the requested scale.
 *  - Generator specs: "rmat:vertices=1024,edges=8192,seed=1",
 *    "er:vertices=...,edges=...", "grid:width=8,height=8",
 *    "chain:n=16", "star:n=32", "complete:n=8",
 *    "bipartite:users=64,items=32,ratings=512".
 *  - Files: "file:path" explicitly, or any spec containing a '/' —
 *    ".bin"/".grph" loads the binary format, anything else the text
 *    edge list (graph/io).
 *
 * Unknown names throw DriverError listing what is known.
 */

#ifndef GRAPHR_DRIVER_DATASET_HH
#define GRAPHR_DRIVER_DATASET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "driver/params.hh"
#include "graph/coo.hh"

namespace graphr::driver
{

/** A graph resolved from a dataset spec. */
struct ResolvedDataset
{
    std::string name; ///< canonical name for reports
    CooGraph graph;
    /** True for user->item rating graphs (Netflix, bipartite:...). */
    bool bipartite = false;
    /** Users in a bipartite graph (max src + 1); 0 otherwise. */
    VertexId numUsers = 0;
};

/**
 * Resolve a dataset spec string.
 *
 * @param spec  see file comment for the accepted forms
 * @param scale Table-3 datasets are generated at 1/scale of the
 *              paper's edge count (>= 1); ignored for other forms
 * @param seed  generator seed for table and generator specs (a
 *              spec-level seed=... overrides it)
 */
ResolvedDataset resolveDataset(const std::string &spec,
                               double scale = 1.0,
                               std::uint64_t seed = 42);

/** Table-3 dataset names ("wiki-vote", ...) the resolver accepts. */
std::vector<std::string> knownDatasetNames();

} // namespace graphr::driver

#endif // GRAPHR_DRIVER_DATASET_HH
