#include "cli.hh"

#include <sstream>

namespace graphr::driver
{

namespace
{

/** Reuse ParamMap's strict typed parsing for a single flag value
 *  (set(), not parse(), so commas in the value are not split). */
ParamMap
oneFlag(const std::string &flag, const std::string &value)
{
    ParamMap map;
    map.set(flag, value);
    return map;
}

/**
 * Parse `bench [...]` / `bench compare OLD NEW [...]` (args starts
 * at the "bench" word). The bench flag surface is disjoint from the
 * run/sweep one, so it gets its own loops; compare is the only
 * graphr_run command taking positional arguments.
 */
CliOptions
parseBenchCli(CliOptions opts, const std::vector<std::string> &args)
{
    const auto next = [&args](std::size_t &i,
                              const std::string &flag)
        -> const std::string & {
        if (i + 1 >= args.size())
            throw DriverError("flag " + flag + " needs a value");
        return args[++i];
    };

    if (args.size() > 1 && args[1] == "compare") {
        opts.command = CliCommand::kBenchCompare;
        std::vector<std::string> positional;
        for (std::size_t i = 2; i < args.size(); ++i) {
            const std::string &arg = args[i];
            if (arg == "--threshold") {
                opts.compareThresholdPct =
                    oneFlag(arg, next(i, arg)).getDouble(arg, 10.0);
                // Negated so NaN is rejected too.
                if (!(opts.compareThresholdPct >= 0.0))
                    throw DriverError("--threshold must be >= 0");
            } else if (arg == "--gate-all") {
                opts.compareGateAll = true;
            } else if (arg == "--help" || arg == "-h") {
                opts.help = true;
            } else if (!arg.empty() && arg[0] == '-') {
                throw DriverError("unknown bench compare flag '" +
                                  arg + "' (see --help)");
            } else {
                positional.push_back(arg);
            }
        }
        if (opts.help)
            return opts;
        if (positional.size() != 2)
            throw DriverError(
                "bench compare needs exactly two BENCH files: "
                "bench compare OLD NEW");
        opts.compareOldPath = positional[0];
        opts.compareNewPath = positional[1];
        return opts;
    }

    opts.command = CliCommand::kBench;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--suite") {
            opts.benchSuite = next(i, arg);
            if (opts.benchSuite.empty())
                throw DriverError("--suite got an empty name");
        } else if (arg == "--reps") {
            opts.benchReps =
                oneFlag(arg, next(i, arg)).getU32(arg, 5);
            if (opts.benchReps == 0 || opts.benchReps > 1000)
                throw DriverError("--reps must be in [1, 1000]");
        } else if (arg == "--warmups") {
            opts.benchWarmups =
                oneFlag(arg, next(i, arg)).getU32(arg, 1);
            if (opts.benchWarmups > 1000)
                throw DriverError("--warmups must be in [0, 1000]");
        } else if (arg == "--out" || arg == "-o") {
            opts.outPath = next(i, arg);
        } else if (arg == "--help" || arg == "-h") {
            opts.help = true;
        } else {
            throw DriverError("unknown bench flag '" + arg +
                              "' (see --help)");
        }
    }
    return opts;
}

} // namespace

CliOptions
parseCli(const std::vector<std::string> &args)
{
    CliOptions opts;
    // The CLI defaults to a single cheap combination (the help text
    // documents this); "all" is an explicit opt-in to the 6x6 sweep.
    opts.sweep.workloads = {"pagerank"};
    opts.sweep.backends = {"graphr"};
    opts.sweep.datasets.clear();

    auto next = [&args](std::size_t &i,
                        const std::string &flag) -> const std::string & {
        if (i + 1 >= args.size())
            throw DriverError("flag " + flag + " needs a value");
        return args[++i];
    };

    // A leading non-flag word selects a subcommand.
    std::size_t first = 0;
    if (!args.empty() && !args[0].empty() && args[0][0] != '-') {
        if (args[0] == "prepare") {
            opts.command = CliCommand::kPrepare;
            first = 1;
        } else if (args[0] == "bench") {
            // The bench surface is disjoint from the run/sweep flag
            // set, so it parses in its own loop and returns early.
            return parseBenchCli(std::move(opts), args);
        } else if (args[0] == "store") {
            if (args.size() < 2 || args[1] != "stats") {
                throw DriverError(
                    "store needs an action: 'store stats' "
                    "(see --help)");
            }
            opts.command = CliCommand::kStoreStats;
            first = 2;
        } else {
            throw DriverError("unknown subcommand '" + args[0] +
                              "' (known: prepare, store stats; or "
                              "flags for a run — see --help)");
        }
    }

    for (std::size_t i = first; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--algo" || arg == "-a") {
            opts.sweep.workloads = splitList(next(i, arg));
            if (opts.sweep.workloads.empty())
                throw DriverError("--algo got an empty list");
        } else if (arg == "--backend" || arg == "-b") {
            opts.sweep.backends = splitList(next(i, arg));
            if (opts.sweep.backends.empty())
                throw DriverError("--backend got an empty list");
        } else if (arg == "--dataset" || arg == "-d") {
            opts.sweep.datasets.push_back(next(i, arg));
        } else if (arg == "--param" || arg == "-p") {
            opts.sweep.params.merge(ParamMap::parse(next(i, arg)));
        } else if (arg == "--scale") {
            opts.sweep.scale =
                oneFlag(arg, next(i, arg)).getDouble(arg, 1.0);
            // Negated form so NaN is rejected too.
            if (!(opts.sweep.scale >= 1.0))
                throw DriverError("--scale must be >= 1");
        } else if (arg == "--seed") {
            opts.sweep.seed =
                oneFlag(arg, next(i, arg)).getU64(arg, 42);
        } else if (arg == "--jobs" || arg == "-j") {
            const std::uint32_t n =
                oneFlag(arg, next(i, arg)).getU32(arg, 1);
            if (n > 1024)
                throw DriverError("--jobs must be in [0, 1024]");
            opts.sweep.jobs = n;
        } else if (arg == "--nodes") {
            const std::uint32_t n =
                oneFlag(arg, next(i, arg)).getU32(arg, 4);
            if (n == 0 || n > 65536)
                throw DriverError("--nodes must be in [1, 65536]");
            opts.sweep.backendOptions.numNodes = n;
        } else if (arg == "--functional") {
            opts.sweep.backendOptions.config.functional = true;
        } else if (arg == "--plan-dir") {
            opts.sweep.store.planDir = next(i, arg);
            if (opts.sweep.store.planDir.empty())
                throw DriverError("--plan-dir got an empty path");
        } else if (arg == "--out" || arg == "-o") {
            opts.outPath = next(i, arg);
        } else if (arg == "--matrix") {
            opts.matrix = true;
        } else if (arg == "--list") {
            opts.list = true;
        } else if (arg == "--help" || arg == "-h") {
            opts.help = true;
        } else {
            throw DriverError("unknown flag '" + arg +
                              "' (see --help)");
        }
    }

    if (opts.sweep.datasets.empty() &&
        opts.command == CliCommand::kRun) {
        // A sensible default keeps `graphr_run --algo pagerank`
        // usable without memorising the spec grammar. The prepare
        // subcommand instead requires explicit datasets: writing
        // surprise artifacts for a default graph helps nobody.
        opts.sweep.datasets.push_back(
            "rmat:vertices=1024,edges=8192");
    }

    // The prepare subcommand shares the flag surface; project the
    // relevant fields onto its spec.
    opts.prepare.datasets = opts.sweep.datasets;
    opts.prepare.store = opts.sweep.store;
    opts.prepare.scale = opts.sweep.scale;
    opts.prepare.seed = opts.sweep.seed;
    opts.prepare.jobs = opts.sweep.jobs;
    opts.prepare.tiling = opts.sweep.backendOptions.config.tiling;
    return opts;
}

std::string
usageText()
{
    std::ostringstream os;
    os << "graphr_run — unified GraphR workload driver\n\n"
       << "usage: graphr_run [subcommand] [flags]\n\n"
       << "subcommands (default: execute a run/sweep):\n"
       << "  prepare             offline preprocessing: sort/tile every\n"
       << "                      --dataset and persist the plan\n"
       << "                      artifacts into --plan-dir\n"
       << "  store stats         list the artifacts in --plan-dir\n"
       << "  bench               run a perf suite and print/emit a\n"
       << "                      BENCH json trajectory point\n"
       << "                      (--suite NAME, --reps N, --warmups N,\n"
       << "                      --out FILE)\n"
       << "  bench compare OLD NEW  diff two BENCH files; exits non-zero\n"
       << "                      when a gated metric regresses by more\n"
       << "                      than --threshold PCT (default 10;\n"
       << "                      --gate-all gates wall-clock metrics "
          "too)\n\n"
       << "flags:\n"
       << "  --algo, -a a[,b...] workloads, or 'all' (default pagerank)\n"
       << "  --backend, -b ...   backends, or 'all' (default graphr)\n"
       << "  --dataset, -d spec  dataset; repeat the flag for several\n"
       << "                      (default rmat:vertices=1024,edges=8192)\n"
       << "  --param, -p k=v     workload parameter (repeatable)\n"
       << "  --scale f           Table-3 dataset scale divisor (>= 1)\n"
       << "  --seed n            generator seed (default 42)\n"
       << "  --jobs, -j n        parallel sweep workers (default 1;\n"
       << "                      0 = all hardware threads); output is\n"
       << "                      byte-identical at any job count\n"
       << "  --nodes n           multinode cluster size (default 4)\n"
       << "  --functional        bit-exact analog datapath (slow)\n"
       << "  --plan-dir path     durable preprocessing store: runs load\n"
       << "                      prepared plans from here (skipping the\n"
       << "                      edge sort) and write new ones through\n"
       << "  --out, -o path      write JSON report ('-' = stdout)\n"
       << "  --matrix            print workload x backend matrix\n"
       << "  --list              list workloads/backends/datasets\n"
       << "  --help, -h          this text\n\n"
       << "full reference (plus the graphr_serve daemon): docs/CLI.md\n\n"
       << "examples:\n"
       << "  graphr_run --algo pagerank --backend graphr "
          "--dataset wiki-vote --scale 4 --out report.json\n"
       << "  graphr_run --algo all --backend all "
          "--dataset rmat:vertices=4096,edges=32768 --matrix\n"
       << "  graphr_run --algo sssp --backend outofcore "
          "--dataset grid:width=64,height=64 --param source=0\n"
       << "  graphr_run prepare --dataset wiki-vote --scale 4 "
          "--plan-dir plans/\n"
       << "  graphr_run --algo all --backend outofcore "
          "--dataset wiki-vote --scale 4 --plan-dir plans/\n"
       << "  graphr_run store stats --plan-dir plans/\n";
    return os.str();
}

std::string
listText()
{
    std::ostringstream os;
    os << "workloads:\n";
    for (const WorkloadInfo &info : allWorkloads()) {
        os << "  " << info.name << " — " << info.description << " ["
           << info.pattern << "]";
        if (!info.paramKeys.empty()) {
            os << " params:";
            for (const std::string &k : info.paramKeys)
                os << " " << k;
        }
        os << "\n";
    }
    os << "\nbackends:\n";
    for (const std::string &name : allBackendNames())
        os << "  " << name << "\n";
    os << "\ndatasets (Table 3, generated at --scale):\n";
    for (const std::string &name : knownDatasetNames())
        os << "  " << name << "\n";
    os << "\nplus generator specs (rmat: er: grid: chain: star: "
          "complete: bipartite:) and file:<path> edge lists\n";
    return os.str();
}

} // namespace graphr::driver
