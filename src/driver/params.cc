#include "params.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace graphr::driver
{

std::vector<std::string>
splitList(const std::string &text, char delim)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t end = text.find(delim, start);
        const std::string part =
            text.substr(start, end == std::string::npos
                                   ? std::string::npos
                                   : end - start);
        if (!part.empty())
            parts.push_back(part);
        if (end == std::string::npos)
            break;
        start = end + 1;
    }
    return parts;
}

ParamMap
ParamMap::parse(const std::string &text)
{
    ParamMap map;
    if (text.empty())
        return map;
    for (const std::string &part : splitList(text, ',')) {
        const std::size_t eq = part.find('=');
        if (eq == std::string::npos || eq == 0) {
            throw DriverError("malformed parameter '" + part +
                              "' (expected key=value)");
        }
        map.set(part.substr(0, eq), part.substr(eq + 1));
    }
    return map;
}

void
ParamMap::set(const std::string &key, const std::string &value)
{
    for (Entry &e : entries_) {
        if (e.key == key) {
            e.value = value;
            return;
        }
    }
    entries_.push_back({key, value, false});
}

void
ParamMap::merge(const ParamMap &other)
{
    for (const Entry &e : other.entries_)
        set(e.key, e.value);
}

const ParamMap::Entry *
ParamMap::find(const std::string &key) const
{
    for (const Entry &e : entries_) {
        if (e.key == key) {
            e.read = true;
            return &e;
        }
    }
    return nullptr;
}

bool
ParamMap::has(const std::string &key) const
{
    for (const Entry &e : entries_) {
        if (e.key == key)
            return true;
    }
    return false;
}

std::string
ParamMap::getString(const std::string &key, const std::string &def) const
{
    const Entry *e = find(key);
    return e ? e->value : def;
}

double
ParamMap::getDouble(const std::string &key, double def) const
{
    const Entry *e = find(key);
    if (!e)
        return def;
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(e->value.c_str(), &end);
    if (end == e->value.c_str() || *end != '\0') {
        throw DriverError("parameter '" + key + "': '" + e->value +
                          "' is not a number");
    }
    if (errno == ERANGE && std::abs(v) == HUGE_VAL) {
        throw DriverError("parameter '" + key + "': '" + e->value +
                          "' is out of range");
    }
    return v;
}

std::int64_t
ParamMap::getInt(const std::string &key, std::int64_t def) const
{
    const Entry *e = find(key);
    if (!e)
        return def;
    char *end = nullptr;
    errno = 0;
    const long long v = std::strtoll(e->value.c_str(), &end, 10);
    if (end == e->value.c_str() || *end != '\0') {
        throw DriverError("parameter '" + key + "': '" + e->value +
                          "' is not an integer");
    }
    if (errno == ERANGE) {
        throw DriverError("parameter '" + key + "': '" + e->value +
                          "' is out of range");
    }
    return v;
}

std::uint64_t
ParamMap::getU64(const std::string &key, std::uint64_t def) const
{
    const std::int64_t v =
        getInt(key, static_cast<std::int64_t>(def));
    if (v < 0) {
        throw DriverError("parameter '" + key +
                          "' must be non-negative");
    }
    return static_cast<std::uint64_t>(v);
}

bool
ParamMap::getBool(const std::string &key, bool def) const
{
    const Entry *e = find(key);
    if (!e)
        return def;
    if (e->value == "true" || e->value == "1" || e->value == "yes")
        return true;
    if (e->value == "false" || e->value == "0" || e->value == "no")
        return false;
    throw DriverError("parameter '" + key + "': '" + e->value +
                      "' is not a boolean");
}

std::int32_t
ParamMap::getInt32(const std::string &key, std::int32_t def) const
{
    const std::int64_t v = getInt(key, def);
    if (v < std::numeric_limits<std::int32_t>::min() ||
        v > std::numeric_limits<std::int32_t>::max()) {
        throw DriverError("parameter '" + key +
                          "' is out of the 32-bit range");
    }
    return static_cast<std::int32_t>(v);
}

std::uint32_t
ParamMap::getU32(const std::string &key, std::uint32_t def) const
{
    const std::uint64_t v = getU64(key, def);
    if (v > std::numeric_limits<std::uint32_t>::max()) {
        throw DriverError("parameter '" + key +
                          "' is out of the 32-bit range");
    }
    return static_cast<std::uint32_t>(v);
}

std::vector<std::string>
ParamMap::unreadKeys() const
{
    std::vector<std::string> out;
    for (const Entry &e : entries_) {
        if (!e.read)
            out.push_back(e.key);
    }
    return out;
}

void
ParamMap::rejectUnread(const std::string &context) const
{
    const std::vector<std::string> unread = unreadKeys();
    if (unread.empty())
        return;
    std::string msg = "unknown parameter(s) for " + context + ":";
    for (const std::string &k : unread)
        msg += " '" + k + "'";
    throw DriverError(msg);
}

std::vector<std::string>
ParamMap::keys() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.key);
    return out;
}

} // namespace graphr::driver
