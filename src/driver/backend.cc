#include "backend.hh"

#include "algorithms/pagerank.hh"
#include "driver/golden_cache.hh"
#include "graphr/node.hh"

namespace graphr::driver
{

namespace
{

/** Common result header every backend fills the same way. */
RunResult
makeResult(const std::string &backend, const Workload &workload,
           const ResolvedDataset &dataset)
{
    RunResult r;
    r.workload = workload.name;
    r.backend = backend;
    r.dataset = dataset.name;
    r.vertices = dataset.graph.numVertices();
    r.edges = dataset.graph.numEdges();
    return r;
}

/** Validate a BFS/SSSP source against the graph. */
VertexId
checkedSource(const Workload &workload, const ResolvedDataset &dataset)
{
    if (workload.params.source >= dataset.graph.numVertices()) {
        throw DriverError(
            "source vertex " + std::to_string(workload.params.source) +
            " out of range for dataset '" + dataset.name + "' (|V| = " +
            std::to_string(dataset.graph.numVertices()) + ")");
    }
    return workload.params.source;
}

/**
 * CF parameters adjusted to the dataset: a bipartite graph knows its
 * user/item split; on a general graph the first half of the vertex
 * range is treated as users unless users=... was given.
 */
CfParams
effectiveCf(const Workload &workload, const ResolvedDataset &dataset)
{
    CfParams cf = workload.params.cf;
    if (cf.numUsers == 0) {
        cf.numUsers = dataset.bipartite
                          ? dataset.numUsers
                          : std::max<VertexId>(
                                1, dataset.graph.numVertices() / 2);
    }
    if (cf.numUsers >= dataset.graph.numVertices()) {
        throw DriverError("cf users=" + std::to_string(cf.numUsers) +
                          " leaves no item vertices on dataset '" +
                          dataset.name + "'");
    }
    return cf;
}

/**
 * Shared dispatch for any runner exposing the GraphR-family method
 * surface (GraphRNode, OutOfCoreRunner): one run* entry per workload,
 * SpMV taking an explicit input vector.
 */
template <typename Runner>
RunResult
runGraphRFamily(Runner &runner, const std::string &backend_name,
                const Workload &workload,
                const ResolvedDataset &dataset)
{
    RunResult result = makeResult(backend_name, workload, dataset);
    const CooGraph &graph = dataset.graph;
    switch (workload.kind) {
      case WorkloadKind::kPageRank:
        result.absorb(
            runner.runPageRank(graph, workload.params.pagerank));
        break;
      case WorkloadKind::kSpmv: {
        const std::vector<Value> x(graph.numVertices(), 1.0);
        result.absorb(runner.runSpmv(graph, x));
        break;
      }
      case WorkloadKind::kBfs:
        result.absorb(
            runner.runBfs(graph, checkedSource(workload, dataset)));
        break;
      case WorkloadKind::kSssp:
        result.absorb(
            runner.runSssp(graph, checkedSource(workload, dataset)));
        break;
      case WorkloadKind::kWcc:
        result.absorb(runner.runWcc(graph));
        break;
      case WorkloadKind::kCf:
        result.absorb(
            runner.runCf(graph, effectiveCf(workload, dataset)));
        break;
    }
    return result;
}

/** The paper's evaluated GraphR node. */
class GraphRBackend : public Backend
{
  public:
    explicit GraphRBackend(const BackendOptions &options)
        : config_(options.config)
    {
    }

    const std::string &
    name() const override
    {
        static const std::string n = "graphr";
        return n;
    }

    RunResult
    run(const Workload &workload, const ResolvedDataset &dataset) override
    {
        GraphRNode node(config_);
        return runGraphRFamily(node, name(), workload, dataset);
    }

  private:
    GraphRConfig config_;
};

/** GraphR cluster with destination-stripe partitioning. */
class MultiNodeBackend : public Backend
{
  public:
    explicit MultiNodeBackend(const BackendOptions &options)
        : cluster_(options.config, options.numNodes, options.link)
    {
    }

    const std::string &
    name() const override
    {
        static const std::string n = "multinode";
        return n;
    }

    RunResult
    run(const Workload &workload, const ResolvedDataset &dataset) override
    {
        RunResult result = makeResult(name(), workload, dataset);
        const CooGraph &graph = dataset.graph;
        switch (workload.kind) {
          case WorkloadKind::kPageRank:
            result.absorb(
                cluster_.runPageRank(graph, workload.params.pagerank));
            break;
          case WorkloadKind::kSpmv:
            result.absorb(cluster_.runSpmv(graph));
            break;
          case WorkloadKind::kBfs:
            result.absorb(cluster_.runBfs(
                graph, checkedSource(workload, dataset)));
            break;
          case WorkloadKind::kSssp:
            result.absorb(cluster_.runSssp(
                graph, checkedSource(workload, dataset)));
            break;
          case WorkloadKind::kWcc:
            result.absorb(cluster_.runWcc(graph));
            break;
          case WorkloadKind::kCf:
            result.absorb(
                cluster_.runCf(graph, effectiveCf(workload, dataset)));
            break;
        }
        return result;
    }

  private:
    MultiNodeGraphR cluster_;
};

/** GraphR node fed block-by-block from modelled disk. */
class OutOfCoreBackend : public Backend
{
  public:
    explicit OutOfCoreBackend(const BackendOptions &options)
        : runner_(options.config, options.storage)
    {
    }

    const std::string &
    name() const override
    {
        static const std::string n = "outofcore";
        return n;
    }

    RunResult
    run(const Workload &workload, const ResolvedDataset &dataset) override
    {
        return runGraphRFamily(runner_, name(), workload, dataset);
    }

  private:
    OutOfCoreRunner runner_;
};

/**
 * Shared dispatch for the three baseline models (identical method
 * surface; PageRank takes the golden iteration count so baselines
 * and GraphR converge identically).
 */
template <typename Model>
RunResult
runBaseline(Model &model, const std::string &backend_name,
            const Workload &workload, const ResolvedDataset &dataset)
{
    RunResult result = makeResult(backend_name, workload, dataset);
    const CooGraph &graph = dataset.graph;
    switch (workload.kind) {
      case WorkloadKind::kPageRank: {
        // Cached: a `--backend all` sweep computes the golden
        // iteration count once, not once per baseline backend.
        const std::shared_ptr<const PageRankResult> golden =
            cachedGoldenPageRank(graph, workload.params.pagerank);
        result.absorb(model.runPageRank(
            graph, static_cast<std::uint64_t>(golden->iterations)));
        break;
      }
      case WorkloadKind::kSpmv:
        result.absorb(model.runSpmv(graph));
        break;
      case WorkloadKind::kBfs:
        result.absorb(
            model.runBfs(graph, checkedSource(workload, dataset)));
        break;
      case WorkloadKind::kSssp:
        result.absorb(
            model.runSssp(graph, checkedSource(workload, dataset)));
        break;
      case WorkloadKind::kWcc:
        result.absorb(model.runWcc(graph));
        break;
      case WorkloadKind::kCf:
        result.absorb(
            model.runCf(graph, effectiveCf(workload, dataset)));
        break;
    }
    return result;
}

class CpuBackend : public Backend
{
  public:
    explicit CpuBackend(const BackendOptions &options)
        : model_(options.cpu)
    {
    }

    const std::string &
    name() const override
    {
        static const std::string n = "cpu";
        return n;
    }

    RunResult
    run(const Workload &workload, const ResolvedDataset &dataset) override
    {
        return runBaseline(model_, name(), workload, dataset);
    }

  private:
    CpuModel model_;
};

class GpuBackend : public Backend
{
  public:
    explicit GpuBackend(const BackendOptions &options)
        : model_(options.gpu)
    {
    }

    const std::string &
    name() const override
    {
        static const std::string n = "gpu";
        return n;
    }

    RunResult
    run(const Workload &workload, const ResolvedDataset &dataset) override
    {
        return runBaseline(model_, name(), workload, dataset);
    }

  private:
    GpuModel model_;
};

class PimBackend : public Backend
{
  public:
    explicit PimBackend(const BackendOptions &options)
        : model_(options.pim)
    {
    }

    const std::string &
    name() const override
    {
        static const std::string n = "pim";
        return n;
    }

    RunResult
    run(const Workload &workload, const ResolvedDataset &dataset) override
    {
        return runBaseline(model_, name(), workload, dataset);
    }

  private:
    PimModel model_;
};

} // namespace

const std::vector<std::string> &
allBackendNames()
{
    static const std::vector<std::string> names = {
        "graphr", "multinode", "outofcore", "cpu", "gpu", "pim",
    };
    return names;
}

std::unique_ptr<Backend>
makeBackend(const std::string &name, const BackendOptions &options)
{
    if (name == "graphr")
        return std::make_unique<GraphRBackend>(options);
    if (name == "multinode")
        return std::make_unique<MultiNodeBackend>(options);
    if (name == "outofcore")
        return std::make_unique<OutOfCoreBackend>(options);
    if (name == "cpu")
        return std::make_unique<CpuBackend>(options);
    if (name == "gpu")
        return std::make_unique<GpuBackend>(options);
    if (name == "pim")
        return std::make_unique<PimBackend>(options);
    std::string msg = "unknown backend '" + name + "' (known:";
    for (const std::string &n : allBackendNames())
        msg += " " + n;
    msg += ")";
    throw DriverError(msg);
}

} // namespace graphr::driver
