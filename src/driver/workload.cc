#include "workload.hh"

#include <algorithm>
#include <cmath>

namespace graphr::driver
{

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> table = {
        {WorkloadKind::kSpmv, "spmv",
         "one sparse matrix-vector pass y = A^T x", "parallel MAC",
         {}},
        {WorkloadKind::kPageRank, "pagerank",
         "PageRank with dangling-mass redistribution", "parallel MAC",
         {"damping (0.8)", "iterations (20)", "tolerance (1e-6)"}},
        {WorkloadKind::kBfs, "bfs", "BFS levels from a source",
         "parallel add-op", {"source (0)"}},
        {WorkloadKind::kSssp, "sssp",
         "single-source shortest paths (Bellman-Ford rounds)",
         "parallel add-op", {"source (0)"}},
        {WorkloadKind::kWcc, "wcc",
         "weakly connected components by min-label propagation",
         "parallel add-op", {}},
        {WorkloadKind::kCf, "cf",
         "collaborative filtering (matrix factorisation) training",
         "parallel MAC",
         {"features (32)", "epochs (5)", "users (bipartite split)",
          "lr (0.01)", "reg (0.05)", "cf_seed (11)"}},
    };
    return table;
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const WorkloadInfo &info : allWorkloads())
        names.push_back(info.name);
    return names;
}

const WorkloadInfo &
findWorkload(const std::string &name)
{
    for (const WorkloadInfo &info : allWorkloads()) {
        if (info.name == name)
            return info;
    }
    std::string msg = "unknown workload '" + name + "' (known:";
    for (const WorkloadInfo &info : allWorkloads())
        msg += " " + info.name;
    msg += ")";
    throw DriverError(msg);
}

namespace
{

/**
 * Every key any workload understands. A sweep applies one ParamMap to
 * several workloads, so a key belonging to a different workload is
 * tolerated; a key belonging to none is always an error.
 */
const std::vector<std::string> &
allParamKeys()
{
    static const std::vector<std::string> keys = {
        "damping", "iterations", "tolerance", // pagerank
        "source",                             // bfs/sssp
        "features", "epochs", "users", "lr", "reg",
        "cf_seed", // cf
    };
    return keys;
}

} // namespace

Workload
makeWorkload(const std::string &name, const ParamMap &params)
{
    const WorkloadInfo &info = findWorkload(name);

    for (const std::string &key : params.keys()) {
        const std::vector<std::string> &known = allParamKeys();
        if (std::find(known.begin(), known.end(), key) == known.end()) {
            std::string msg = "unknown parameter '" + key +
                              "' (known:";
            for (const std::string &k : known)
                msg += " " + k;
            msg += ")";
            throw DriverError(msg);
        }
    }

    Workload w;
    w.kind = info.kind;
    w.name = info.name;

    switch (info.kind) {
      case WorkloadKind::kPageRank:
        w.params.pagerank.damping =
            params.getDouble("damping", w.params.pagerank.damping);
        w.params.pagerank.maxIterations = params.getInt32(
            "iterations", w.params.pagerank.maxIterations);
        w.params.pagerank.tolerance =
            params.getDouble("tolerance", w.params.pagerank.tolerance);
        if (w.params.pagerank.maxIterations <= 0)
            throw DriverError("pagerank iterations must be positive");
        // Negated forms so NaN is rejected too.
        if (!(w.params.pagerank.damping > 0.0 &&
              w.params.pagerank.damping < 1.0))
            throw DriverError("pagerank damping must be in (0, 1)");
        if (std::isnan(w.params.pagerank.tolerance))
            throw DriverError("pagerank tolerance must be a number");
        break;
      case WorkloadKind::kBfs:
      case WorkloadKind::kSssp:
        w.params.source = params.getU32("source", 0);
        break;
      case WorkloadKind::kCf:
        w.params.cf.featureLength =
            params.getInt32("features", w.params.cf.featureLength);
        w.params.cf.epochs =
            params.getInt32("epochs", w.params.cf.epochs);
        w.params.cf.numUsers = params.getU32("users", 0);
        w.params.cf.learningRate =
            params.getDouble("lr", w.params.cf.learningRate);
        w.params.cf.regularization =
            params.getDouble("reg", w.params.cf.regularization);
        w.params.cf.seed = params.getU64("cf_seed", w.params.cf.seed);
        if (w.params.cf.featureLength <= 0 || w.params.cf.epochs <= 0)
            throw DriverError("cf features/epochs must be positive");
        break;
      case WorkloadKind::kSpmv:
      case WorkloadKind::kWcc:
        break;
    }
    return w;
}

} // namespace graphr::driver
