#include "prepare.hh"

#include <algorithm>
#include <exception>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "algorithms/wcc.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "driver/dataset.hh"
#include "driver/driver.hh"
#include "graphr/engine/plan_cache.hh"
#include "graphr/engine/tile_plan.hh"

namespace graphr::driver
{

namespace
{

/**
 * Prepare one graph variant directly against the store: a valid
 * artifact is reused, otherwise the plan is built (the O(E log E)
 * sort) and persisted. Deliberately bypasses the in-memory PlanCache
 * so `prepare` always leaves a durable artifact behind, even when
 * this process has the plan memoised already.
 */
PrepareResult
prepareVariant(const PlanStore &store, const std::string &dataset,
               const std::string &variant, const CooGraph &graph,
               const TilingParams &tiling)
{
    PrepareResult result;
    result.dataset = dataset;
    result.variant = variant;
    result.fingerprint = graphFingerprint(graph);
    if (TilePlanPtr loaded = store.load(result.fingerprint, tiling)) {
        result.reused = true;
        result.edges = loaded->ordered.edges().size();
        result.tiles = loaded->ordered.tiles().size();
    } else {
        const auto plan =
            std::make_shared<const TilePlan>(graph, tiling);
        store.save(*plan, tiling);
        result.edges = plan->ordered.edges().size();
        result.tiles = plan->ordered.tiles().size();
    }
    result.file = PlanStore::fileName(result.fingerprint, tiling);
    return result;
}

void
announcePrepare(std::ostream *progress, std::mutex &progress_mutex,
                const std::string &dataset)
{
    if (progress == nullptr)
        return;
    std::ostringstream line;
    line << "preparing " << dataset << " ...\n";
    const std::lock_guard<std::mutex> lock(progress_mutex);
    *progress << line.str() << std::flush;
}

} // namespace

std::vector<PrepareResult>
runPrepare(const PrepareSpec &spec, std::ostream *progress)
{
    if (spec.datasets.empty())
        throw DriverError("prepare needs at least one --dataset");
    if (spec.store.planDir.empty())
        throw DriverError("prepare needs --plan-dir <directory> to "
                          "write artifacts into");

    // Open the store once, with the driver-level error mapping (an
    // unusable directory reports as a user error, not a crash), and
    // leave it attached so follow-up runs in this process benefit.
    // Under a request-scoped override (tenant namespaces) the install
    // is a no-op and the override's store is the one to fill.
    installPlanStore(spec.store);
    const std::shared_ptr<PlanStore> store =
        PlanCache::instance().effectiveStore();

    const std::size_t variants = spec.symmetrized ? 2 : 1;
    std::vector<PrepareResult> results(spec.datasets.size() * variants);
    std::vector<std::exception_ptr> errors(spec.datasets.size());
    std::mutex progress_mutex;
    {
        const unsigned jobs = ThreadPool::effectiveJobs(spec.jobs);
        ThreadPool pool(static_cast<unsigned>(std::min<std::size_t>(
            jobs, spec.datasets.size())));
        for (std::size_t d = 0; d < spec.datasets.size(); ++d) {
            pool.submit([&, d] {
                try {
                    const ResolvedDataset dataset = resolveDataset(
                        spec.datasets[d], spec.scale, spec.seed);
                    announcePrepare(progress, progress_mutex,
                                    dataset.name);
                    results[d * variants] = prepareVariant(
                        *store, dataset.name, "plain", dataset.graph,
                        spec.tiling);
                    if (spec.symmetrized) {
                        results[d * variants + 1] = prepareVariant(
                            *store, dataset.name, "symmetrized",
                            symmetrize(dataset.graph), spec.tiling);
                    }
                } catch (...) {
                    errors[d] = std::current_exception();
                }
            });
        }
        pool.wait();
    }
    // First failure in spec order wins (matches runSweep's contract).
    for (const std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return results;
}

std::string
storeStatsText(const StoreSpec &spec)
{
    if (spec.planDir.empty())
        throw DriverError("store stats needs --plan-dir <directory>");
    std::unique_ptr<PlanStore> store;
    try {
        store = std::make_unique<PlanStore>(spec.planDir,
                                            PlanStore::Mode::kReadOnly);
    } catch (const StoreError &err) {
        throw DriverError(std::string("cannot use --plan-dir: ") +
                          err.what());
    }

    const std::vector<PlanArtifactInfo> artifacts = store->list();
    std::ostringstream os;
    os << "plan store " << store->directory() << ": "
       << artifacts.size() << " artifact"
       << (artifacts.size() == 1 ? "" : "s") << "\n";
    if (artifacts.empty())
        return os.str();

    os << "\n";
    TextTable table;
    table.header({"file", "vertices", "edges", "tiles", "tiling",
                  "v", "codec", "KiB", "payloadKiB", "B/edge",
                  "status"});
    for (const PlanArtifactInfo &a : artifacts) {
        std::ostringstream tiling;
        tiling << "C" << a.tiling.crossbarDim << " N"
               << a.tiling.crossbarsPerGe << " G" << a.tiling.numGe
               << " B" << a.tiling.blockSize;
        // Payload bytes per edge: the compression-ratio column (a
        // raw edge record is 16 bytes, so "delta" artifacts should
        // sit far below that).
        const std::string per_edge =
            a.edges == 0 ? "-"
                         : TextTable::num(
                               static_cast<double>(a.payloadBytes) /
                                   static_cast<double>(a.edges),
                               2);
        table.row({a.file, std::to_string(a.vertices),
                   std::to_string(a.edges), std::to_string(a.tiles),
                   tiling.str(),
                   a.version == 0 ? "?" : std::to_string(a.version),
                   a.codec.empty() ? "?" : a.codec,
                   TextTable::num(static_cast<double>(a.bytes) / 1024.0,
                                  1),
                   TextTable::num(
                       static_cast<double>(a.payloadBytes) / 1024.0, 1),
                   per_edge,
                   a.valid ? "ok" : "corrupt: " + a.issue});
    }
    table.print(os);
    return os.str();
}

} // namespace graphr::driver
