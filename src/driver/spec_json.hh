/**
 * @file
 * JSON request grammar -> driver specs.
 *
 * The graphr_serve daemon describes work as JSON objects; this module
 * maps those objects onto the same SweepSpec/PrepareSpec the CLI
 * builds from flags, so both front ends validate against one registry
 * and execute through one code path. Field names mirror the CLI flags
 * (docs/CLI.md documents the grammar side by side):
 *
 *   {"workload": "pagerank", "backend": "graphr",
 *    "dataset": "wiki-vote", "params": {"damping": 0.85},
 *    "scale": 4, "seed": 42, "nodes": 4, "functional": false}
 *
 * Plural forms take arrays ("workloads": ["pagerank", "wcc"],
 * "backends": [...], "datasets": [...]); for workloads and backends
 * "all" expands against the registry exactly as on the command line
 * (datasets are explicit specs — there is no dataset registry).
 * Unknown members, wrong types and unknown registry names all throw
 * DriverError with an actionable message — the serving layer turns
 * that into a structured error response.
 */

#ifndef GRAPHR_DRIVER_SPEC_JSON_HH
#define GRAPHR_DRIVER_SPEC_JSON_HH

#include "common/json_reader.hh"
#include "driver/driver.hh"
#include "driver/prepare.hh"

namespace graphr::driver
{

/**
 * Map a JSON request object onto a SweepSpec.
 *
 * Accepted members: workload/workloads, backend/backends,
 * dataset/datasets (at least one required), params (object of
 * string/number/bool values), scale, seed, nodes, functional.
 * Workload and backend names are validated against the registries
 * here (unknown names throw DriverError); dataset specs are validated
 * when they are resolved at execution time, like the CLI.
 *
 * @param single  require the spec to name exactly one
 *                workload x backend x dataset combination (the "run"
 *                request type); list-valued or "all" members throw.
 * @param extraKeys  members the caller handles itself (e.g. "id",
 *                "type") — present-but-unconsumed keys outside this
 *                list throw DriverError, mirroring
 *                ParamMap::rejectUnread.
 */
SweepSpec
sweepSpecFromJson(const JsonValue &request, bool single,
                  const std::vector<std::string> &extraKeys);

/**
 * Map a JSON request object onto a PrepareSpec. Accepted members:
 * dataset/datasets (required), scale, seed, symmetrized. The store
 * directory and job count are daemon-owned and must be filled in by
 * the caller.
 */
PrepareSpec
prepareSpecFromJson(const JsonValue &request,
                    const std::vector<std::string> &extraKeys);

/**
 * Throw DriverError for any member of @p request outside @p accepted
 * ("context: unknown member 'x' (accepted: ...)") — the same
 * rejection the spec parsers above apply, for payload-less request
 * types (graphr_serve's "status").
 */
void rejectUnknownMembers(const JsonValue &request,
                          const std::vector<std::string> &accepted,
                          const std::string &context);

} // namespace graphr::driver

#endif // GRAPHR_DRIVER_SPEC_JSON_HH
