#include "golden_cache.hh"

#include <bit>

#include "common/lru_cache.hh"
#include "graphr/engine/tile_plan.hh"
#include "perf/counters.hh"

namespace graphr::driver
{

namespace
{

struct Key
{
    std::uint64_t fingerprint = 0;
    double damping = 0.0;
    int maxIterations = 0;
    double tolerance = 0.0;

    bool operator==(const Key &other) const = default;
};

struct KeyHash
{
    std::size_t
    operator()(const Key &key) const
    {
        std::uint64_t h = key.fingerprint;
        h ^= std::bit_cast<std::uint64_t>(key.damping) *
             0x9e3779b97f4a7c15ull;
        h ^= static_cast<std::uint64_t>(key.maxIterations) << 17;
        h ^= std::bit_cast<std::uint64_t>(key.tolerance) *
             0xc2b2ae3d27d4eb4full;
        return static_cast<std::size_t>(h ^ (h >> 32));
    }
};

/** Small LRU: golden rank vectors for huge graphs are memory-heavy. */
LruCache<Key, PageRankResult, KeyHash> &
goldenCache()
{
    static LruCache<Key, PageRankResult, KeyHash> cache(16);
    return cache;
}

} // namespace

std::shared_ptr<const PageRankResult>
cachedGoldenPageRank(const CooGraph &graph, const PageRankParams &params)
{
    const Key key{graphFingerprint(graph), params.damping,
                  params.maxIterations, params.tolerance};
    bool hit = false;
    std::shared_ptr<const PageRankResult> result =
        goldenCache().getOrBuild(
            key,
            [&graph, &params] {
                return std::make_shared<const PageRankResult>(
                    pagerank(graph, params));
            },
            &hit);
    static perf::Counter &hits =
        perf::Registry::instance().counter("golden_cache.hits");
    static perf::Counter &misses =
        perf::Registry::instance().counter("golden_cache.misses");
    (hit ? hits : misses).add();
    return result;
}

GoldenCacheStats
goldenCacheStats()
{
    const LruCacheStats stats = goldenCache().stats();
    return GoldenCacheStats{stats.hits, stats.misses};
}

void
clearGoldenCache()
{
    goldenCache().clear();
}

} // namespace graphr::driver
