#include "dataset.hh"

#include <algorithm>
#include <cctype>

#include "graph/datasets.hh"
#include "graph/generator.hh"
#include "graph/io.hh"

namespace graphr::driver
{

namespace
{

/** Lowercase with '-' and '_' removed: "Wiki-Vote" -> "wikivote". */
std::string
canonical(const std::string &name)
{
    std::string out;
    for (const char c : name) {
        if (c == '-' || c == '_')
            continue;
        out += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

/** Kebab-case of a table full name: "WikiVote" -> "wiki-vote". */
std::string
kebab(const std::string &name)
{
    std::string out;
    for (const char c : name) {
        if (std::isupper(static_cast<unsigned char>(c)) && !out.empty())
            out += '-';
        out += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

const DatasetInfo *
findTableEntry(const std::string &spec)
{
    const std::string want = canonical(spec);
    for (const DatasetInfo &info : allDatasets()) {
        if (want == canonical(info.shortName) ||
            want == canonical(info.fullName))
            return &info;
    }
    return nullptr;
}

/** Highest source id + 1 (the user count of a user->item graph). */
VertexId
maxSrcPlusOne(const CooGraph &graph)
{
    VertexId users = 0;
    for (const Edge &e : graph.edges())
        users = std::max(users, e.src + 1);
    return users;
}

ResolvedDataset
resolveGenerator(const std::string &kind, const ParamMap &params,
                 std::uint64_t seed)
{
    ResolvedDataset out;
    out.name = kind;
    if (kind == "rmat") {
        RmatParams p;
        p.numVertices = params.getU32("vertices", p.numVertices);
        p.numEdges = params.getU64("edges", p.numEdges);
        p.a = params.getDouble("a", p.a);
        p.b = params.getDouble("b", p.b);
        p.c = params.getDouble("c", p.c);
        p.d = params.getDouble("d", p.d);
        p.maxWeight = params.getDouble("maxweight", p.maxWeight);
        p.seed = params.getU64("seed", seed);
        params.rejectUnread("dataset spec 'rmat'");
        out.graph = makeRmat(p);
    } else if (kind == "er") {
        const VertexId v =
            params.getU32("vertices", 1024);
        const EdgeId e = params.getU64("edges", 8192);
        const double w = params.getDouble("maxweight", 1.0);
        const std::uint64_t s = params.getU64("seed", seed);
        params.rejectUnread("dataset spec 'er'");
        out.graph = makeErdosRenyi(v, e, s, w);
    } else if (kind == "grid") {
        const VertexId width =
            params.getU32("width", 16);
        const VertexId height =
            params.getU32("height", 16);
        const double w = params.getDouble("maxweight", 10.0);
        const std::uint64_t s = params.getU64("seed", seed);
        params.rejectUnread("dataset spec 'grid'");
        out.graph = makeGrid2d(width, height, s, w);
    } else if (kind == "chain") {
        const VertexId n = params.getU32("n", 16);
        params.rejectUnread("dataset spec 'chain'");
        out.graph = makeChain(n);
    } else if (kind == "star") {
        const VertexId n = params.getU32("n", 16);
        params.rejectUnread("dataset spec 'star'");
        out.graph = makeStar(n);
    } else if (kind == "complete") {
        const VertexId n = params.getU32("n", 8);
        params.rejectUnread("dataset spec 'complete'");
        out.graph = makeComplete(n);
    } else if (kind == "bipartite") {
        const VertexId users =
            params.getU32("users", 64);
        const VertexId items =
            params.getU32("items", 32);
        const EdgeId ratings = params.getU64("ratings", 512);
        const std::uint64_t s = params.getU64("seed", seed);
        params.rejectUnread("dataset spec 'bipartite'");
        out.graph = makeBipartiteRatings(users, items, ratings, s);
        out.bipartite = true;
        out.numUsers = users;
    } else {
        std::string msg =
            "unknown dataset '" + kind + "' (known: ";
        for (const std::string &n : knownDatasetNames())
            msg += n + " ";
        msg += "rmat: er: grid: chain: star: complete: bipartite: "
               "file:<path>)";
        throw DriverError(msg);
    }
    return out;
}

ResolvedDataset
loadFile(const std::string &path)
{
    ResolvedDataset out;
    // Report under the file name, not the whole path.
    const std::size_t slash = path.find_last_of('/');
    out.name =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const bool binary = path.size() >= 4 &&
                        (path.ends_with(".bin") || path.ends_with(".grph"));
    out.graph = binary ? loadBinary(path) : loadEdgeListText(path);
    return out;
}

} // namespace

ResolvedDataset
resolveDataset(const std::string &spec, double scale, std::uint64_t seed)
{
    if (spec.empty())
        throw DriverError("empty dataset spec");
    if (!(scale >= 1.0)) // negated so NaN is rejected too
        throw DriverError("dataset scale must be >= 1");

    // Explicit file prefix or a path-looking spec.
    if (spec.starts_with("file:"))
        return loadFile(spec.substr(5));

    const std::size_t colon = spec.find(':');
    const std::string kind =
        colon == std::string::npos ? spec : spec.substr(0, colon);
    const ParamMap params =
        colon == std::string::npos
            ? ParamMap{}
            : ParamMap::parse(spec.substr(colon + 1));

    if (colon == std::string::npos &&
        spec.find('/') != std::string::npos)
        return loadFile(spec);

    if (const DatasetInfo *info = findTableEntry(kind)) {
        // Table names take spec-level scale/seed overrides:
        // "wiki-vote:scale=8,seed=3".
        const double eff_scale = params.getDouble("scale", scale);
        const std::uint64_t eff_seed = params.getU64("seed", seed);
        params.rejectUnread("dataset '" + kebab(info->fullName) + "'");
        if (!(eff_scale >= 1.0))
            throw DriverError("dataset scale must be >= 1");
        ResolvedDataset out;
        out.name = kebab(info->fullName);
        out.graph = makeDataset(info->id, eff_scale, eff_seed);
        out.bipartite = info->bipartite;
        if (out.bipartite)
            out.numUsers = maxSrcPlusOne(out.graph);
        return out;
    }

    return resolveGenerator(kind, params, seed);
}

std::vector<std::string>
knownDatasetNames()
{
    std::vector<std::string> names;
    for (const DatasetInfo &info : allDatasets())
        names.push_back(kebab(info.fullName));
    return names;
}

} // namespace graphr::driver
