/**
 * @file
 * Workload registry: the algorithms a backend can be asked to run.
 *
 * Covers the paper's five application classes (Table 2): PageRank and
 * SpMV (parallel MAC), BFS and SSSP (parallel add-op traversal), WCC
 * (add-op label propagation) and collaborative filtering (MAC over
 * the rating matrix). Each workload owns a small parameter struct
 * populated from key=value strings; unknown keys are an error.
 */

#ifndef GRAPHR_DRIVER_WORKLOAD_HH
#define GRAPHR_DRIVER_WORKLOAD_HH

#include <string>
#include <vector>

#include "algorithms/collaborative_filtering.hh"
#include "algorithms/pagerank.hh"
#include "common/types.hh"
#include "driver/params.hh"

namespace graphr::driver
{

/** The algorithm families the driver can dispatch. */
enum class WorkloadKind
{
    kPageRank,
    kSpmv,
    kBfs,
    kSssp,
    kWcc,
    kCf,
};

/** Registry row for one workload. */
struct WorkloadInfo
{
    WorkloadKind kind;
    std::string name;        ///< CLI name, e.g. "pagerank"
    std::string description; ///< one-line summary
    std::string pattern;     ///< "parallel MAC" / "parallel add-op"
    /** Documented key=value parameters, "key (default)" form. */
    std::vector<std::string> paramKeys;
};

/**
 * Parameters for one workload execution. Only the members matching
 * the kind are meaningful.
 */
struct WorkloadParams
{
    PageRankParams pagerank; ///< pagerank: damping/iterations/tolerance
    CfParams cf;             ///< cf: features/epochs/users/lr/reg/seed
    VertexId source = 0;     ///< bfs/sssp: source vertex
};

/** A fully resolved workload request. */
struct Workload
{
    WorkloadKind kind = WorkloadKind::kPageRank;
    std::string name;
    WorkloadParams params;
};

/** All registered workloads, in Table-2 order. */
const std::vector<WorkloadInfo> &allWorkloads();

/** Registry names, in order ("pagerank", "spmv", ...). */
std::vector<std::string> allWorkloadNames();

/** Lookup by name; throws DriverError listing valid names. */
const WorkloadInfo &findWorkload(const std::string &name);

/**
 * Build a Workload from a name and key=value parameters. Keys no
 * registered workload understands throw DriverError; keys belonging
 * to a *different* workload are tolerated, because a sweep applies
 * one parameter map across several workloads.
 */
Workload makeWorkload(const std::string &name, const ParamMap &params);

} // namespace graphr::driver

#endif // GRAPHR_DRIVER_WORKLOAD_HH
