/**
 * @file
 * Unified result record for any (workload, backend, dataset) run.
 *
 * Every backend — the GraphR node, the multi-node cluster, the
 * out-of-core runner and the CPU/GPU/PIM baselines — reduces its
 * native report (SimReport, MultiNodeReport, OutOfCoreReport,
 * BaselineReport) to this one shape: the headline time/energy/work
 * numbers all backends share, plus an ordered list of named extra
 * metrics for backend-specific detail. Serialises to JSON
 * (common/json) and to the common/table text format.
 */

#ifndef GRAPHR_DRIVER_RUN_RESULT_HH
#define GRAPHR_DRIVER_RUN_RESULT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace graphr
{
class JsonWriter;
struct SimReport;
struct BaselineReport;
struct MultiNodeReport;
struct OutOfCoreReport;
} // namespace graphr

namespace graphr::driver
{

/** Outcome of one driver run. */
struct RunResult
{
    std::string workload;
    std::string backend;
    std::string dataset;

    std::uint64_t vertices = 0;
    std::uint64_t edges = 0;

    double seconds = 0.0;
    double joules = 0.0;
    std::uint64_t iterations = 0;
    std::uint64_t edgesProcessed = 0;

    /** Backend-specific metrics, in emission order. */
    std::vector<std::pair<std::string, double>> extra;

    void
    addExtra(const std::string &name, double value)
    {
        extra.emplace_back(name, value);
    }

    /** Fold a backend-native report into the shared fields. */
    void absorb(const SimReport &sim);
    void absorb(const BaselineReport &baseline);
    void absorb(const MultiNodeReport &multi);
    void absorb(const OutOfCoreReport &ooc);

    /** Emit as one JSON object. */
    void toJson(JsonWriter &w) const;
};

/**
 * Write a whole result set as a JSON document:
 * {"results": [...]} with one object per run.
 */
void writeResultsJson(std::ostream &os,
                      const std::vector<RunResult> &results);

/** Aligned text table, one row per result (common/table format). */
void printResultsTable(std::ostream &os,
                       const std::vector<RunResult> &results);

/**
 * Table-2-style matrix: one row per workload, one column per backend,
 * cells are simulated seconds ("-" where no result exists).
 */
void printMatrix(std::ostream &os,
                 const std::vector<RunResult> &results);

} // namespace graphr::driver

#endif // GRAPHR_DRIVER_RUN_RESULT_HH
