/**
 * @file
 * ReRAM device, ADC and peripheral timing/energy parameters.
 *
 * Values follow the paper's evaluation setup (section 5.2):
 *  - cell read/write latency 29.31 ns / 50.88 ns and energy
 *    1.08 pJ / 3.91 nJ from Niu et al. [44] (NVSim inputs),
 *  - 4-bit multi-level cells (conservative vs the 5-bit of [26]),
 *  - one 1.0 GSps ADC serving eight 8-bitline crossbars per GE
 *    (64 ns GE cycle), ADC energy from the Murmann survey [41],
 *  - register (RegI/RegO) energy from a CACTI-32nm-like estimate,
 *  - HRS/LRS 25 MOhm / 50 kOhm, 0.7 V read, 2.0 V write.
 *
 * Everything is a plain aggregate so ablation benches can sweep any
 * field.
 */

#ifndef GRAPHR_RRAM_DEVICE_PARAMS_HH
#define GRAPHR_RRAM_DEVICE_PARAMS_HH

#include "common/fixed_point.hh"
#include "common/types.hh"

namespace graphr
{

/** Electrical and timing constants for the ReRAM array and periphery. */
struct DeviceParams
{
    // --- ReRAM cell / array (Niu et al. [44]) ---
    double readLatencyNs = 29.31;  ///< array read latency
    double writeLatencyNs = 50.88; ///< array write latency
    double readEnergyPj = 1.08;    ///< energy per array read operation
    double writeEnergyPj = 3910.0; ///< energy per array write op (3.91 nJ)
    double hrsOhm = 25e6;          ///< high resistance state
    double lrsOhm = 50e3;          ///< low resistance state
    double readVoltage = 0.7;      ///< V_r
    double writeVoltage = 2.0;     ///< V_w

    // --- Cell resolution ---
    int cellBits = kCellBits;          ///< 4-bit MLC
    int valueBits = kValueBits;        ///< 16-bit fixed point operands
    int inputSlices = kSlicesPerValue; ///< driver passes per input value

    // --- ADC (Murmann survey [41], ~8-bit 1.0 GSps SAR class) ---
    double adcSampleRateGsps = 1.0; ///< samples per ns
    double adcEnergyPerSamplePj = 2.0;
    /**
     * Shared ADCs per graph engine. The paper's example shares one
     * 1.0 GSps ADC across eight 8-bitline crossbars; with N = 32
     * crossbars per GE that provisioning corresponds to two ADCs per
     * GE at the evaluated occupancies.
     */
    int adcsPerGe = 2;

    // --- Sample & hold ---
    double sampleHoldEnergyPj = 0.01;

    // --- Shift & add and sALU (simple 16-bit datapath ops) ---
    double shiftAddEnergyPj = 0.2;
    double saluLatencyNs = 1.0;  ///< per reduce operation batch
    double saluEnergyPj = 0.05;  ///< per scalar reduce op

    // --- RegI/RegO (CACTI 6.5 @32 nm class SRAM register file) ---
    double regAccessEnergyPj = 1.1; ///< per 16-bit access
    double regAccessLatencyNs = 0.5;

    // --- Memory ReRAM streaming (sequential COO reads) ---
    double memReadEnergyPjPerByte = 0.5;
    double memBandwidthGBs = 76.8; ///< sequential stream bandwidth

    // --- GE cycle (paper: 64 ns) ---
    double geCycleNs = 64.0;

    /**
     * Wordline pipelining depth for the add-op pattern: successive
     * one-hot row activations overlap their precharge/activate/sense
     * stages, so the steady-state row rate is readLatency / depth.
     */
    int addOpRowPipelineDepth = 8;

    /** Controller dispatch cost per tile activation (ns). */
    double tileDispatchNs = 2.0;

    /**
     * Peripheral active power of the node while busy (W): the shared
     * ADCs dominate (ISAAC reports ~58% of a 66 W ReRAM accelerator
     * in ADCs), plus drivers, S/H bias, sALUs, controller and I/O.
     * ReRAM cells themselves have near-zero leakage (paper section
     * 5.5), but the mixed-signal periphery does not.
     */
    double peripheralActiveWatts = 55.0;

    /** Conductance levels one cell can represent. */
    int
    cellLevels() const
    {
        return 1 << cellBits;
    }

    /** Slices (physical cells) per stored value. */
    int
    slicesPerValue() const
    {
        return valueBits / cellBits;
    }
};

} // namespace graphr

#endif // GRAPHR_RRAM_DEVICE_PARAMS_HH
